/**
 * @file
 * Scenario subsystem tests: the hand-rolled JSON reader, CoreParams
 * override application, whole-config validation, spec parsing with
 * grid expansion, the stats registry emitters, and an end-to-end
 * equivalence check of a scenario run against direct simulation.
 */

#include <cstdio>
#include <cstdlib>

#include <gtest/gtest.h>

#include "base/json.hh"
#include "base/stats.hh"
#include "sim/scenario.hh"
#include "sim/validate.hh"
#include "workload/program_cache.hh"

using namespace rix;

namespace
{

/** Parse or fail the test. */
JsonValue
parseOk(const std::string &text)
{
    std::string err;
    JsonValue v = JsonValue::parse(text, &err);
    EXPECT_EQ(err, "") << text;
    return v;
}

std::string
parseErr(const std::string &text)
{
    std::string err;
    JsonValue::parse(text, &err);
    EXPECT_NE(err, "") << text;
    return err;
}

class ScenarioEnvGuard : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        unsetenv("RIX_BENCH");
        unsetenv("RIX_SCALE");
    }
    void TearDown() override { SetUp(); }
};

} // namespace

// ---- JSON reader ----------------------------------------------------

TEST(Json, ScalarsAndNesting)
{
    const JsonValue v = parseOk(
        "{\"a\": 1, \"b\": -2.5, \"c\": true, \"d\": null, "
        "\"e\": \"x\\ny\", \"f\": [1, 2, 3], \"g\": {\"h\": false}}");
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.find("a")->asNumber(), 1.0);
    EXPECT_TRUE(v.find("a")->isIntegral());
    EXPECT_EQ(v.find("b")->asNumber(), -2.5);
    EXPECT_FALSE(v.find("b")->isIntegral());
    EXPECT_TRUE(v.find("c")->asBool());
    EXPECT_TRUE(v.find("d")->isNull());
    EXPECT_EQ(v.find("e")->asString(), "x\ny");
    ASSERT_TRUE(v.find("f")->isArray());
    EXPECT_EQ(v.find("f")->items().size(), 3u);
    EXPECT_EQ(v.find("f")->items()[2].asNumber(), 3.0);
    EXPECT_FALSE(v.find("g")->find("h")->asBool());
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, ObjectsPreserveDocumentOrder)
{
    const JsonValue v = parseOk("{\"z\": 1, \"a\": 2, \"m\": 3}");
    ASSERT_EQ(v.members().size(), 3u);
    EXPECT_EQ(v.members()[0].first, "z");
    EXPECT_EQ(v.members()[1].first, "a");
    EXPECT_EQ(v.members()[2].first, "m");
}

TEST(Json, StringEscapes)
{
    EXPECT_EQ(parseOk("\"a\\t\\\"b\\\\c\\u0041\"").asString(),
              "a\t\"b\\cA");
    EXPECT_EQ(jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(Json, ExponentsAreNotIntegral)
{
    EXPECT_FALSE(parseOk("1e3").isIntegral());
    EXPECT_EQ(parseOk("1e3").asNumber(), 1000.0);
    EXPECT_TRUE(parseOk("-7").isIntegral());
}

TEST(Json, ParseErrorsCarryPosition)
{
    EXPECT_NE(parseErr("{\"a\": 1,}").find("line 1"), std::string::npos);
    EXPECT_NE(parseErr("{\n  \"a\": zz\n}").find("line 2"),
              std::string::npos);
    parseErr("");
    parseErr("{\"a\": 1} trailing");
    parseErr("[1, 2");
    parseErr("\"unterminated");
    EXPECT_NE(parseErr("{\"a\": 1, \"a\": 2}").find("duplicate"),
              std::string::npos);
}

TEST(Json, NumberFormatting)
{
    EXPECT_EQ(jsonNumber(3.0), "3");
    EXPECT_EQ(jsonNumber(-42.0), "-42");
    EXPECT_EQ(jsonNumber(0.5), "0.5");
    EXPECT_EQ(jsonNumber(20000000.0), "20000000");
}

// ---- CoreParams overrides -------------------------------------------

TEST(ParamOverride, AppliesAcrossGroups)
{
    CoreParams p;
    EXPECT_EQ(applyCoreParamOverride(p, "rs_size", parseOk("20")), "");
    EXPECT_EQ(p.rsSize, 20u);
    EXPECT_EQ(applyCoreParamOverride(p, "shared_load_store_port",
                                     parseOk("true")), "");
    EXPECT_TRUE(p.sharedLoadStorePort);
    EXPECT_EQ(applyCoreParamOverride(p, "integ.mode", parseOk("\"off\"")),
              "");
    EXPECT_EQ(int(p.integ.mode), int(IntegrationMode::Off));
    EXPECT_EQ(applyCoreParamOverride(p, "integ.lisp",
                                     parseOk("\"oracle\"")), "");
    EXPECT_EQ(int(p.integ.lisp), int(LispMode::Oracle));
    EXPECT_EQ(applyCoreParamOverride(p, "integ.it_assoc", parseOk("2")),
              "");
    EXPECT_EQ(p.integ.itAssoc, 2u);
    EXPECT_EQ(applyCoreParamOverride(p, "mem.l1d.size_bytes",
                                     parseOk("8192")), "");
    EXPECT_EQ(p.mem.l1d.sizeBytes, 8192u);
    EXPECT_EQ(applyCoreParamOverride(p, "mem.dtlb.entries", parseOk("32")),
              "");
    EXPECT_EQ(p.mem.dtlb.entries, 32u);
    EXPECT_EQ(applyCoreParamOverride(p, "bpred.btb_entries",
                                     parseOk("2048")), "");
    EXPECT_EQ(p.bpred.btbEntries, 2048u);
    EXPECT_EQ(applyCoreParamOverride(p, "mem.mem_latency", parseOk("120")),
              "");
    EXPECT_EQ(p.mem.memLatency, 120u);
}

TEST(ParamOverride, RejectsBadKeysAndTypes)
{
    CoreParams p;
    EXPECT_NE(applyCoreParamOverride(p, "bogus", parseOk("1")), "");
    EXPECT_NE(applyCoreParamOverride(p, "integ.bogus", parseOk("1")), "");
    EXPECT_NE(applyCoreParamOverride(p, "mem.l9.assoc", parseOk("1")), "");
    // Type mismatches.
    EXPECT_NE(applyCoreParamOverride(p, "rs_size", parseOk("\"20\"")), "");
    EXPECT_NE(applyCoreParamOverride(p, "rs_size", parseOk("2.5")), "");
    EXPECT_NE(applyCoreParamOverride(p, "rs_size", parseOk("-1")), "");
    EXPECT_NE(applyCoreParamOverride(p, "shared_load_store_port",
                                     parseOk("1")), "");
    EXPECT_NE(applyCoreParamOverride(p, "integ.mode",
                                     parseOk("\"sideways\"")), "");
    // Errors must name the offending key.
    const std::string err =
        applyCoreParamOverride(p, "integ.it_entries", parseOk("true"));
    EXPECT_NE(err.find("integ.it_entries"), std::string::npos) << err;
}

// ---- whole-config validation ----------------------------------------

TEST(ValidateParams, DefaultAndPresetConfigsAreValid)
{
    EXPECT_EQ(validateCoreParams(CoreParams{}), "");
}

TEST(ValidateParams, NamesTheOffendingField)
{
    CoreParams p;
    p.integ.itEntries = 100;
    const std::string err = validateCoreParams(p);
    EXPECT_NE(err.find("integ.it_entries"), std::string::npos) << err;

    CoreParams q;
    q.mem.l1d.sizeBytes = 12345;
    EXPECT_NE(validateCoreParams(q).find("mem.l1d.size_bytes"),
              std::string::npos);

    CoreParams r;
    r.integ.lispEntries = 0;
    EXPECT_NE(validateCoreParams(r).find("integ.lisp_entries"),
              std::string::npos);

    CoreParams s;
    s.bpred.btbEntries = 100;
    EXPECT_NE(validateCoreParams(s).find("bpred.btb_entries"),
              std::string::npos);

    CoreParams t;
    t.mem.dtlb.entries = 96; // 96/4 = 24 sets: not a power of two
    EXPECT_NE(validateCoreParams(t).find("mem.dtlb"), std::string::npos);
}

TEST(ValidateParams, ReportsEveryViolationAtOnce)
{
    CoreParams p;
    p.rsSize = 0;
    p.integ.itEntries = 100;
    p.mem.l1d.assoc = 0;
    const std::string err = validateCoreParams(p);
    EXPECT_NE(err.find("rs_size"), std::string::npos) << err;
    EXPECT_NE(err.find("integ.it_entries"), std::string::npos) << err;
    EXPECT_NE(err.find("mem.l1d.assoc"), std::string::npos) << err;
}

TEST(ValidateParams, CatchesPipelineDeadlocks)
{
    CoreParams p;
    p.fetchWidth = 0;
    EXPECT_NE(validateCoreParams(p).find("fetch_width"),
              std::string::npos);

    CoreParams q;
    q.storeSlots = 0; // stores could never issue...
    EXPECT_NE(validateCoreParams(q), "");
    q.sharedLoadStorePort = true; // ...unless the port is shared
    EXPECT_EQ(validateCoreParams(q), "");

    CoreParams r;
    r.integ.numPhysRegs = 64; // < logical regs + ROB
    EXPECT_NE(validateCoreParams(r).find("integ.num_phys_regs"),
              std::string::npos);
}

// ---- spec parsing and grid expansion --------------------------------

using Scenario = ScenarioEnvGuard;

TEST_F(Scenario, ParsesConfigsAndDefaults)
{
    const ScenarioSpec spec = parseScenario(
        "{\"name\": \"t\", \"workloads\": [\"mcf\", \"gcc\"],"
        " \"scale\": 2, \"max_retired\": 1000,"
        " \"base\": {\"rs_size\": 30},"
        " \"configs\": ["
        "   {\"label\": \"a\", \"set\": {\"integ.mode\": \"off\"}},"
        "   {\"label\": \"b\", \"set\": {\"integ.it_assoc\": 1}}]}");
    EXPECT_EQ(spec.name, "t");
    EXPECT_EQ(spec.render, "jsonl");
    ASSERT_EQ(spec.workloads.size(), 2u);
    EXPECT_EQ(spec.workloads[0], "mcf");
    EXPECT_EQ(spec.scale, 2u);
    EXPECT_EQ(spec.maxRetired, 1000u);
    EXPECT_EQ(spec.maxCycles, 200'000'000u);
    ASSERT_EQ(spec.configs.size(), 2u);
    EXPECT_EQ(spec.configs[0].label, "a");
    EXPECT_EQ(spec.configs[0].params.rsSize, 30u);      // base applied
    EXPECT_EQ(int(spec.configs[0].params.integ.mode),
              int(IntegrationMode::Off));
    EXPECT_EQ(spec.configs[1].params.rsSize, 30u);
    EXPECT_EQ(spec.configs[1].params.integ.itAssoc, 1u);
    EXPECT_EQ(spec.configIndex("b"), 1);
    EXPECT_EQ(spec.configIndex("nope"), -1);
}

TEST_F(Scenario, GridExpandsFirstAxisSlowest)
{
    const ScenarioSpec spec = parseScenario(
        "{\"workloads\": [\"mcf\"],"
        " \"grid\": {\"rs_size\": [10, 20], \"integ.it_assoc\": [1, 4]}}");
    ASSERT_EQ(spec.configs.size(), 4u);
    EXPECT_EQ(spec.configs[0].label, "rs_size=10;integ.it_assoc=1");
    EXPECT_EQ(spec.configs[1].label, "rs_size=10;integ.it_assoc=4");
    EXPECT_EQ(spec.configs[2].label, "rs_size=20;integ.it_assoc=1");
    EXPECT_EQ(spec.configs[3].label, "rs_size=20;integ.it_assoc=4");
    EXPECT_EQ(spec.configs[3].params.rsSize, 20u);
    EXPECT_EQ(spec.configs[3].params.integ.itAssoc, 4u);
}

TEST_F(Scenario, GridCrossesEveryConfig)
{
    const ScenarioSpec spec = parseScenario(
        "{\"workloads\": [\"mcf\"],"
        " \"configs\": [{\"label\": \"x\"}, "
        "               {\"label\": \"y\", \"set\": {\"rs_size\": 20}}],"
        " \"grid\": {\"integ.gen_bits\": [4, 8]}}");
    ASSERT_EQ(spec.configs.size(), 4u);
    EXPECT_EQ(spec.configs[0].label, "x;integ.gen_bits=4");
    EXPECT_EQ(spec.configs[3].label, "y;integ.gen_bits=8");
    EXPECT_EQ(spec.configs[3].params.rsSize, 20u);
    EXPECT_EQ(spec.configs[3].params.integ.genBits, 8u);
}

TEST_F(Scenario, EnvOverridesSpec)
{
    setenv("RIX_SCALE", "3", 1);
    setenv("RIX_BENCH", "gzip", 1);
    const ScenarioSpec spec = parseScenario(
        "{\"workloads\": [\"mcf\", \"gcc\"], \"scale\": 1,"
        " \"configs\": [{\"label\": \"a\"}]}");
    EXPECT_EQ(spec.scale, 3u);
    ASSERT_EQ(spec.workloads.size(), 1u);
    EXPECT_EQ(spec.workloads[0], "gzip");
}

TEST_F(Scenario, SpecErrorsAreFatal)
{
    EXPECT_EXIT(parseScenario("{\"bogus\": 1}"),
                ::testing::ExitedWithCode(1), "unknown top-level field");
    EXPECT_EXIT(parseScenario("not json"), ::testing::ExitedWithCode(1),
                "line 1");
    EXPECT_EXIT(parseScenario("{\"workloads\": [\"nope\"]}"),
                ::testing::ExitedWithCode(1), "unknown workload 'nope'");
    EXPECT_EXIT(parseScenario("{\"scale\": 0}"),
                ::testing::ExitedWithCode(1), "'scale'");
    EXPECT_EXIT(parseScenario("{\"configs\": [{\"label\": \"a\"}, "
                              "{\"label\": \"a\"}]}"),
                ::testing::ExitedWithCode(1), "duplicate config label");
    EXPECT_EXIT(parseScenario("{\"configs\": [{\"label\": \"a\", "
                              "\"set\": {\"rs_size\": true}}]}"),
                ::testing::ExitedWithCode(1), "rs_size");
    EXPECT_EXIT(parseScenario("{\"render\": \"fig9\"}"),
                ::testing::ExitedWithCode(1), "unknown render");
    EXPECT_EXIT(parseScenario("{}"), ::testing::ExitedWithCode(1),
                "needs a 'grid'");
}

TEST_F(Scenario, RunMatchesDirectSimulation)
{
    const ScenarioSpec spec = parseScenario(
        "{\"name\": \"tiny\", \"workloads\": [\"gcc\"],"
        " \"max_retired\": 50000, \"max_cycles\": 1000000,"
        " \"configs\": ["
        "  {\"label\": \"off\", \"set\": {\"integ.mode\": \"off\"}},"
        "  {\"label\": \"rev\", \"set\": {\"integ.mode\": \"reverse\"}}]}");
    const ScenarioResults res = runScenario(spec);
    ASSERT_EQ(res.jobs.size(), 2u);

    CoreParams off;
    off.integ.mode = IntegrationMode::Off;
    const SimReport direct = runSimulation(
        globalProgramCache().get("gcc", 1), off, 50000, 1000000);
    EXPECT_EQ(res.report(0, 0).core.cycles, direct.core.cycles);
    EXPECT_EQ(res.report(0, 0).core.retired, direct.core.retired);
    EXPECT_EQ(res.report(0, 0).l1dMisses, direct.l1dMisses);
    // The +reverse config genuinely differs.
    EXPECT_NE(res.report(0, 1).core.integrated(), 0u);
}

TEST_F(Scenario, RendersJsonlAndCsv)
{
    ScenarioSpec spec = parseScenario(
        "{\"name\": \"tiny\", \"workloads\": [\"gcc\"],"
        " \"max_retired\": 20000,"
        " \"configs\": [{\"label\": \"a\"}]}");
    const ScenarioResults res = runScenario(spec);

    char *buf = nullptr;
    size_t len = 0;
    FILE *mem = open_memstream(&buf, &len);
    renderScenario(spec, res, mem);
    fclose(mem);
    std::string jsonl(buf, len);
    free(buf);
    // One row, valid JSON, carrying labels and substrate stats.
    std::string err;
    const JsonValue row = JsonValue::parse(
        jsonl.substr(0, jsonl.find('\n')), &err);
    EXPECT_EQ(err, "");
    EXPECT_EQ(row.find("workload")->asString(), "gcc");
    EXPECT_EQ(row.find("config")->asString(), "a");
    EXPECT_TRUE(row.find("l1d_misses") != nullptr);
    EXPECT_TRUE(row.find("ipc") != nullptr);

    spec.render = "csv";
    buf = nullptr;
    mem = open_memstream(&buf, &len);
    renderScenario(spec, res, mem);
    fclose(mem);
    std::string csv(buf, len);
    free(buf);
    EXPECT_NE(csv.find("scenario,workload,config"), std::string::npos);
    EXPECT_NE(csv.find("tiny,gcc,a"), std::string::npos);
}

// ---- stats registry --------------------------------------------------

TEST(StatRegistry, CsvUnionsColumnsAcrossRows)
{
    StatRegistry reg;
    StatRegistry::Row &r1 = reg.addRow();
    r1.label("workload", "mcf");
    r1.stats.set("alpha", 1);
    StatRegistry::Row &r2 = reg.addRow();
    r2.label("workload", "gcc");
    r2.label("extra", "e");
    r2.stats.set("beta", 2.5);

    char *buf = nullptr;
    size_t len = 0;
    FILE *mem = open_memstream(&buf, &len);
    reg.writeCsv(mem);
    fclose(mem);
    std::string csv(buf, len);
    free(buf);
    EXPECT_EQ(csv, "workload,extra,alpha,beta\n"
                   "mcf,,1,\n"
                   "gcc,e,,2.5\n");
}

TEST(StatRegistry, JsonLinesEscapeAndType)
{
    StatRegistry reg;
    StatRegistry::Row &r = reg.addRow();
    r.label("config", "a\"b");
    r.stats.set("x", 3);

    char *buf = nullptr;
    size_t len = 0;
    FILE *mem = open_memstream(&buf, &len);
    reg.writeJsonLines(mem);
    fclose(mem);
    std::string out(buf, len);
    free(buf);
    EXPECT_EQ(out, "{\"config\": \"a\\\"b\", \"x\": 3}\n");
}
