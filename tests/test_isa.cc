/**
 * @file
 * ISA tests: opcode traits, instruction classification and helpers,
 * 64-bit encode/decode round-trips (parameterized over every opcode),
 * and disassembly.
 */

#include <gtest/gtest.h>

#include "isa/decoded.hh"
#include "isa/inst.hh"

using namespace rix;

TEST(Opcode, NamesRoundTrip)
{
    for (unsigned i = 0; i < numOpcodes; ++i) {
        const Opcode op = Opcode(i);
        EXPECT_EQ(opFromName(opName(op)), op) << opName(op);
    }
    EXPECT_EQ(opFromName("bogus"), Opcode::NUM_OPCODES);
}

TEST(Opcode, ClassPredicates)
{
    EXPECT_TRUE(isLoadOp(Opcode::LDQ));
    EXPECT_TRUE(isLoadOp(Opcode::LDL));
    EXPECT_FALSE(isLoadOp(Opcode::STQ));
    EXPECT_TRUE(isStoreOp(Opcode::STL));
    EXPECT_EQ(memAccessSize(Opcode::LDQ), 8u);
    EXPECT_EQ(memAccessSize(Opcode::LDL), 4u);
    EXPECT_EQ(memAccessSize(Opcode::STQ), 8u);
    EXPECT_EQ(inverseOfStore(Opcode::STQ), Opcode::LDQ);
    EXPECT_EQ(inverseOfStore(Opcode::STL), Opcode::LDL);
    EXPECT_TRUE(hasArithmeticInverse(Opcode::LDA));
    EXPECT_TRUE(hasArithmeticInverse(Opcode::ADDQI));
    EXPECT_FALSE(hasArithmeticInverse(Opcode::MULQ));
}

TEST(Opcode, Latencies)
{
    EXPECT_EQ(opTraits(Opcode::ADDQ).latency, 1u);
    EXPECT_EQ(opTraits(Opcode::MULQ).latency, 3u);
    EXPECT_EQ(opTraits(Opcode::DIVQ).latency, 12u);
    EXPECT_EQ(opTraits(Opcode::FMUL).latency, 4u);
}

TEST(Instruction, SourceDestConventions)
{
    Instruction add = makeRR(Opcode::ADDQ, 3, 1, 2);
    EXPECT_TRUE(add.writesReg());
    EXPECT_EQ(add.src1(), 1);
    EXPECT_EQ(add.src2(), 2);

    Instruction ld = makeLoad(Opcode::LDQ, 5, 16, 7);
    EXPECT_TRUE(ld.isLoad());
    EXPECT_TRUE(ld.isMem());
    EXPECT_EQ(ld.src1(), 7);
    EXPECT_FALSE(ld.hasSrc2());
    EXPECT_EQ(ld.accessSize(), 8u);

    Instruction st = makeStore(Opcode::STL, 4, 8, 9);
    EXPECT_TRUE(st.isStore());
    EXPECT_FALSE(st.writesReg());
    EXPECT_EQ(st.src1(), 9); // base
    EXPECT_EQ(st.src2(), 4); // data
    EXPECT_EQ(st.accessSize(), 4u);

    Instruction br = makeBranch(Opcode::BEQ, 2, 100);
    EXPECT_TRUE(br.isCondBranch());
    EXPECT_TRUE(br.isControl());
    EXPECT_FALSE(br.writesReg());

    Instruction call = makeCall(50);
    EXPECT_TRUE(call.isCall());
    EXPECT_TRUE(call.writesReg());
    EXPECT_EQ(call.rc, regRa);

    Instruction ret = makeIndirect(Opcode::RET, regRa);
    EXPECT_TRUE(ret.isReturn());
    EXPECT_TRUE(ret.isControl());
}

TEST(Instruction, ZeroRegisterWritesDiscarded)
{
    Instruction i = makeRI(Opcode::ADDQI, regZero, 1, 5);
    EXPECT_FALSE(i.writesReg());
}

TEST(Instruction, ControlClassification)
{
    EXPECT_TRUE(makeJump(3).isDirectJump());
    EXPECT_TRUE(makeJump(3).isControl());
    EXPECT_FALSE(makeNop().isControl());
    EXPECT_TRUE(makeHalt().isHalt());
    EXPECT_TRUE(makeSyscall(1).isSyscall());
}

TEST(Disassemble, Formats)
{
    EXPECT_EQ(disassemble(makeRR(Opcode::ADDQ, 3, 1, 2)),
              "addq r3, r1, r2");
    EXPECT_EQ(disassemble(makeRI(Opcode::ADDQI, 3, 1, -5)),
              "addqi r3, r1, -5");
    EXPECT_EQ(disassemble(makeLoad(Opcode::LDQ, 5, 16, 30)),
              "ldq r5, 16(r30)");
    EXPECT_EQ(disassemble(makeStore(Opcode::STQ, 4, 8, 30)),
              "stq r4, 8(r30)");
    EXPECT_EQ(disassemble(makeRI(Opcode::LDA, 30, 30, -32)),
              "lda r30, -32(r30)");
    EXPECT_EQ(disassemble(makeBranch(Opcode::BNE, 2, 7)), "bne r2, @7");
    EXPECT_EQ(disassemble(makeHalt()), "halt");
}

// Parameterized encode/decode round trip over every opcode.
class EncodingRoundTrip : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(EncodingRoundTrip, RoundTrips)
{
    Instruction i;
    i.op = Opcode(GetParam());
    i.ra = 31;
    i.rb = 17;
    i.rc = 1;
    i.imm = -123456;
    bool ok = false;
    Instruction d = decode(encode(i), &ok);
    EXPECT_TRUE(ok);
    EXPECT_EQ(d, i);
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, EncodingRoundTrip,
                         ::testing::Range(0u, numOpcodes));

TEST(Encoding, ImmediateExtremes)
{
    for (s32 imm : {0, 1, -1, INT32_MAX, INT32_MIN}) {
        Instruction i = makeRI(Opcode::ADDQI, 2, 3, imm);
        bool ok = false;
        EXPECT_EQ(decode(encode(i), &ok).imm, imm);
        EXPECT_TRUE(ok);
    }
}

TEST(Encoding, InvalidOpcodeRejected)
{
    bool ok = true;
    Instruction d = decode(~u64(0), &ok);
    EXPECT_FALSE(ok);
    EXPECT_TRUE(d.isNop());
}

TEST(Regs, Conventions)
{
    EXPECT_EQ(regZero, 31);
    EXPECT_EQ(regSp, 30);
    EXPECT_EQ(regRa, 26);
    EXPECT_TRUE(isCalleeSaved(9));
    EXPECT_TRUE(isCalleeSaved(15));
    EXPECT_FALSE(isCalleeSaved(8));
    EXPECT_FALSE(isCalleeSaved(16));
}
