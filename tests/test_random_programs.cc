/**
 * @file
 * Property-based testing with randomly generated programs.
 *
 * A generator emits random-but-well-formed programs (bounded loops,
 * data-dependent branches, loads/stores into a scratch region, calls
 * with proper frames) and every generated program is executed on the
 * cycle-level core under multiple integration configurations and
 * compared against the functional emulator. This sweeps the state
 * space far beyond the hand-written workloads: arbitrary register
 * dataflow, odd immediate mixes, reconvergence shapes and accidental
 * IT collisions.
 */

#include <gtest/gtest.h>

#include "assembler/builder.hh"
#include "base/log.hh"
#include "sim/simulator.hh"

using namespace rix;

namespace
{

/** Generate a random, halting program from @p seed. */
Program
generate(u64 seed)
{
    Rng rng(seed);
    Builder b(strfmt("rand%llu", (unsigned long long)seed));
    b.randomQuads("data", 64, rng);
    b.space("scratch", 512);

    const LogReg regs[] = {1, 2, 3, 4, 5, 6, 7, 8, 16, 17, 22, 23};
    auto reg = [&]() { return regs[rng.below(std::size(regs))]; };

    // A leaf function with a proper frame, used by call sites below.
    b.br("main");
    b.bind("leaf");
    b.lda(regSp, -16, regSp);
    b.stq(regRa, 0, regSp);
    for (int i = 0; i < 3; ++i)
        b.emit(makeRI(Opcode::ADDQI, 16, 16, s32(rng.range(-9, 9))));
    b.mulqi(0, 16, 3);
    b.ldq(regRa, 0, regSp);
    b.lda(regSp, 16, regSp);
    b.ret();

    b.bind("main");
    // Outer bounded loop: the only back edge, so termination is
    // structural.
    const s32 iters = s32(200 + rng.below(300));
    b.li(14, iters); // s5 = loop counter
    b.li(13, 0);     // s4 = checksum
    b.bind("top");

    const int body = 12 + int(rng.below(20));
    for (int i = 0; i < body; ++i) {
        switch (rng.below(10)) {
          case 0:
          case 1: // reg-reg ALU
          {
            static const Opcode ops[] = {Opcode::ADDQ, Opcode::SUBQ,
                                         Opcode::AND, Opcode::BIS,
                                         Opcode::XOR, Opcode::CMPLT,
                                         Opcode::MULQ};
            b.emit(makeRR(ops[rng.below(std::size(ops))], reg(), reg(),
                          reg()));
            break;
          }
          case 2:
          case 3: // reg-imm ALU (dense immediates stress the IT index)
          {
            static const Opcode ops[] = {Opcode::ADDQI, Opcode::SUBQI,
                                         Opcode::ANDI, Opcode::XORI,
                                         Opcode::SLLI, Opcode::SRLI};
            Opcode op = ops[rng.below(std::size(ops))];
            s32 imm = (op == Opcode::SLLI || op == Opcode::SRLI)
                          ? s32(rng.below(63))
                          : s32(rng.range(-64, 64));
            b.emit(makeRI(op, reg(), reg(), imm));
            break;
          }
          case 4: // scratch load (bounded address)
          {
            LogReg addr = reg();
            b.andi(addr, addr, 0x1f8); // 0..504, 8-aligned
            b.addqi(addr, addr, s32(b.dataAddr("scratch")));
            b.ldq(reg(), 0, addr);
            break;
          }
          case 5: // scratch store
          {
            LogReg addr = reg();
            b.andi(addr, addr, 0x1f8);
            b.addqi(addr, addr, s32(b.dataAddr("scratch")));
            b.stq(reg(), 0, addr);
            break;
          }
          case 6: // forward data-dependent branch (reconvergent)
          {
            const std::string skip = b.genLabel("skip");
            LogReg c = reg();
            b.andi(c, c, s32(1 + rng.below(3)));
            switch (rng.below(4)) {
              case 0: b.beq(c, skip); break;
              case 1: b.bne(c, skip); break;
              case 2: b.bgt(c, skip); break;
              default: b.ble(c, skip); break;
            }
            for (unsigned k = 0; k < 1 + rng.below(4); ++k)
                b.emit(makeRI(Opcode::ADDQI, reg(), reg(),
                              s32(rng.range(-5, 5))));
            b.bind(skip);
            break;
          }
          case 7: // call the leaf
            b.emit(makeRI(Opcode::ADDQI, 16, 16, 1));
            b.jsr("leaf");
            b.xor_(13, 13, 0);
            break;
          case 8: // spill-slot style store+reload via gp
            b.stq(reg(), s32(rng.below(8)) * 8, regGp);
            b.ldq(reg(), s32(rng.below(8)) * 8, regGp);
            break;
          default: // fold into the checksum
            b.xor_(13, 13, reg());
            break;
        }
    }

    b.subqi(14, 14, 1);
    b.bne(14, "top");
    b.syscall(s32(SyscallCode::Emit), 13);
    b.halt();
    b.entry("main");
    return b.finish();
}

} // namespace

class RandomPrograms : public ::testing::TestWithParam<u64>
{
};

TEST_P(RandomPrograms, AllModesMatchEmulator)
{
    Program p = generate(GetParam());

    // Sanity: the generated program halts on the emulator.
    Emulator e(p);
    e.run(5'000'000);
    ASSERT_TRUE(e.halted());

    for (IntegrationMode m :
         {IntegrationMode::Off, IntegrationMode::Squash,
          IntegrationMode::General, IntegrationMode::Reverse}) {
        EXPECT_EQ(verifyAgainstEmulator(p, integrationParams(m),
                                        10'000'000, 50'000'000),
                  "")
            << "seed " << GetParam() << " mode "
            << integrationModeName(m);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrograms,
                         ::testing::Range(u64(1), u64(21)));

TEST(RandomProgramsCheckpoint, RandomizedResumePointsMatchFullRun)
{
    // Sampled-simulation invariant on arbitrary programs: a full
    // detailed run and fast-forward-to-K + detailed-from-checkpoint
    // retire identical instruction streams, for random programs and
    // random K. The detailed resume's stream identity is enforced
    // instruction-by-instruction by the DIVA checker (any divergence
    // panics); here we additionally pin the endpoints: retired count,
    // final architectural registers, memory and program output.
    const CoreParams params = integrationParams(IntegrationMode::Reverse);
    for (u64 seed = 300; seed < 305; ++seed) {
        Program p = generate(seed);

        Core full(p, params);
        full.run(10'000'000, 50'000'000);
        ASSERT_TRUE(full.halted()) << "seed " << seed;
        const u64 total = full.stats().retired;
        ASSERT_GT(total, 2u);

        Rng rng(seed ^ 0xc0ffee);
        for (int trial = 0; trial < 3; ++trial) {
            const u64 k = 1 + rng.below(total - 2);

            Emulator ff(p);
            ff.run(k);
            const Checkpoint ckpt = ff.snapshot();

            // Functional resume tail == continuous functional stream.
            Emulator cont(p);
            cont.run(k);
            Emulator resumed(p);
            resumed.restore(ckpt);
            for (u64 i = k; i < total; ++i) {
                const StepResult a = cont.step();
                const StepResult b = resumed.step();
                ASSERT_EQ(a.pc, b.pc)
                    << "seed " << seed << " k " << k << " step " << i;
                ASSERT_EQ(a.nextPc, b.nextPc);
                ASSERT_EQ(a.destValue, b.destValue);
                ASSERT_EQ(a.halted, b.halted);
            }

            // Detailed resume retires exactly the remaining stream.
            Core core(p, params);
            core.reset(p, params, ckpt);
            core.run(10'000'000, 50'000'000);
            ASSERT_TRUE(core.halted()) << "seed " << seed << " k " << k;
            EXPECT_EQ(core.stats().retired, total - k)
                << "seed " << seed << " k " << k;
            for (unsigned r = 0; r < numLogRegs; ++r)
                EXPECT_EQ(core.golden().reg(LogReg(r)),
                          full.golden().reg(LogReg(r)))
                    << "seed " << seed << " k " << k << " r" << r;
            EXPECT_EQ(core.golden().output(), full.golden().output())
                << "seed " << seed << " k " << k;
            EXPECT_TRUE(core.golden().memory().contentEquals(
                full.golden().memory()))
                << "seed " << seed << " k " << k;
        }
    }
}

TEST(RandomProgramsExtra, SmallWindowsStress)
{
    // Tiny window + tiny IT: maximum squash/replacement churn.
    for (u64 seed = 100; seed < 106; ++seed) {
        Program p = generate(seed);
        CoreParams cp = integrationParams(IntegrationMode::Reverse);
        cp.robSize = 16;
        cp.rsSize = 8;
        cp.maxMemOps = 8;
        cp.fetchQueueSize = 4;
        cp.integ.itEntries = 32;
        cp.integ.itAssoc = 2;
        cp.integ.numPhysRegs = 128;
        EXPECT_EQ(verifyAgainstEmulator(p, cp, 10'000'000, 80'000'000),
                  "")
            << "seed " << seed;
    }
}
