/**
 * @file
 * Property-based testing with randomly generated programs.
 *
 * A generator emits random-but-well-formed programs (bounded loops,
 * data-dependent branches, loads/stores into a scratch region, calls
 * with proper frames) and every generated program is executed on the
 * cycle-level core under multiple integration configurations and
 * compared against the functional emulator. This sweeps the state
 * space far beyond the hand-written workloads: arbitrary register
 * dataflow, odd immediate mixes, reconvergence shapes and accidental
 * IT collisions.
 */

#include <gtest/gtest.h>

#include "base/log.hh"
#include "base/rng.hh"
#include "sim/simulator.hh"
#include "workload/randprog.hh"

using namespace rix;

namespace
{

/** The shared library generator with its default shape (the shape
 *  this suite historically hand-rolled; see workload/randprog.hh). */
Program
generate(u64 seed)
{
    return generateRandomProgram(seed);
}

} // namespace

class RandomPrograms : public ::testing::TestWithParam<u64>
{
};

TEST_P(RandomPrograms, AllModesMatchEmulator)
{
    Program p = generate(GetParam());

    // Sanity: the generated program halts on the emulator.
    Emulator e(p);
    e.run(5'000'000);
    ASSERT_TRUE(e.halted());

    for (IntegrationMode m :
         {IntegrationMode::Off, IntegrationMode::Squash,
          IntegrationMode::General, IntegrationMode::Reverse}) {
        EXPECT_EQ(verifyAgainstEmulator(p, integrationParams(m),
                                        10'000'000, 50'000'000),
                  "")
            << "seed " << GetParam() << " mode "
            << integrationModeName(m);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrograms,
                         ::testing::Range(u64(1), u64(21)));

TEST(RandomProgramsCheckpoint, RandomizedResumePointsMatchFullRun)
{
    // Sampled-simulation invariant on arbitrary programs: a full
    // detailed run and fast-forward-to-K + detailed-from-checkpoint
    // retire identical instruction streams, for random programs and
    // random K. The detailed resume's stream identity is enforced
    // instruction-by-instruction by the DIVA checker (any divergence
    // panics); here we additionally pin the endpoints: retired count,
    // final architectural registers, memory and program output.
    const CoreParams params = integrationParams(IntegrationMode::Reverse);
    for (u64 seed = 300; seed < 305; ++seed) {
        Program p = generate(seed);

        Core full(p, params);
        full.run(10'000'000, 50'000'000);
        ASSERT_TRUE(full.halted()) << "seed " << seed;
        const u64 total = full.stats().retired;
        ASSERT_GT(total, 2u);

        Rng rng(seed ^ 0xc0ffee);
        for (int trial = 0; trial < 3; ++trial) {
            const u64 k = 1 + rng.below(total - 2);

            Emulator ff(p);
            ff.run(k);
            const Checkpoint ckpt = ff.snapshot();

            // Functional resume tail == continuous functional stream.
            Emulator cont(p);
            cont.run(k);
            Emulator resumed(p);
            resumed.restore(ckpt);
            for (u64 i = k; i < total; ++i) {
                const StepResult a = cont.step();
                const StepResult b = resumed.step();
                ASSERT_EQ(a.pc, b.pc)
                    << "seed " << seed << " k " << k << " step " << i;
                ASSERT_EQ(a.nextPc, b.nextPc);
                ASSERT_EQ(a.destValue, b.destValue);
                ASSERT_EQ(a.halted, b.halted);
            }

            // Detailed resume retires exactly the remaining stream.
            Core core(p, params);
            core.reset(p, params, ckpt);
            core.run(10'000'000, 50'000'000);
            ASSERT_TRUE(core.halted()) << "seed " << seed << " k " << k;
            EXPECT_EQ(core.stats().retired, total - k)
                << "seed " << seed << " k " << k;
            for (unsigned r = 0; r < numLogRegs; ++r)
                EXPECT_EQ(core.golden().reg(LogReg(r)),
                          full.golden().reg(LogReg(r)))
                    << "seed " << seed << " k " << k << " r" << r;
            EXPECT_EQ(core.golden().output(), full.golden().output())
                << "seed " << seed << " k " << k;
            EXPECT_TRUE(core.golden().memory().contentEquals(
                full.golden().memory()))
                << "seed " << seed << " k " << k;
        }
    }
}

TEST(RandomProgramsExtra, SmallWindowsStress)
{
    // Tiny window + tiny IT: maximum squash/replacement churn.
    for (u64 seed = 100; seed < 106; ++seed) {
        Program p = generate(seed);
        CoreParams cp = integrationParams(IntegrationMode::Reverse);
        cp.robSize = 16;
        cp.rsSize = 8;
        cp.maxMemOps = 8;
        cp.fetchQueueSize = 4;
        cp.integ.itEntries = 32;
        cp.integ.itAssoc = 2;
        cp.integ.numPhysRegs = 128;
        EXPECT_EQ(verifyAgainstEmulator(p, cp, 10'000'000, 80'000'000),
                  "")
            << "seed " << seed;
    }
}
