/**
 * @file
 * Result-store tests: framed round-trips, the durability/recovery
 * contract (torn tails truncated at *every* byte offset, bit flips
 * isolating the valid prefix, empty/foreign/wrong-version files
 * rejected), concurrent appends, and the strict validation of the
 * store path knobs.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "store/result_store.hh"

using namespace rix;

namespace
{

std::string
tmpPath(const char *tag)
{
    return ::testing::TempDir() + "rix_store_" + tag + "_" +
           std::to_string(getpid()) + ".rixstore";
}

StoreMeta
testMeta(u64 numJobs)
{
    StoreMeta m;
    m.kind = StoreKind::Sweep;
    m.gitRev = "deadbee";
    m.specName = "unit";
    m.specHash = 0x1234567890abcdefull;
    m.scale = 2;
    m.workloadsCsv = "mcf,twolf";
    m.numJobs = numJobs;
    m.specText = "{\"name\": \"unit\"}";
    return m;
}

/** A record whose every field is a recognizable function of @p i, so
 *  a recovered record proves byte-exact round-tripping. */
StoreRecord
testRecord(u64 i)
{
    StoreRecord r;
    r.jobIndex = i;
    r.configLabel = "cfg" + std::to_string(i % 3);
    r.result.status = JobStatus::Ok;
    r.result.attempts = unsigned(1 + i % 2);
    r.result.wallSeconds = 0.25 * double(i + 1);
    r.result.report.workload = i % 2 ? "twolf" : "mcf";
    r.result.report.halted = i % 2 == 0;
    r.result.report.l1dMisses = 1000 + i;
    r.result.report.l2Misses = 2000 + i;
    r.result.report.dtlbMisses = 3000 + i;
    r.result.report.core.cycles = 100000 + 7 * i;
    r.result.report.core.retired = 50000 + 13 * i;
    r.result.report.core.integratedDirect = 17 * i;
    r.result.report.core.integByDistance[3][1] = 23 * i;
    r.result.report.core.rsOccupancySum = 29 * i * i;
    return r;
}

void
expectRecordEqual(const StoreRecord &a, const StoreRecord &b)
{
    EXPECT_EQ(a.jobIndex, b.jobIndex);
    EXPECT_EQ(a.configLabel, b.configLabel);
    EXPECT_EQ(a.result.status, b.result.status);
    EXPECT_EQ(a.result.attempts, b.result.attempts);
    EXPECT_EQ(a.result.wallSeconds, b.result.wallSeconds);
    EXPECT_EQ(a.result.error, b.result.error);
    EXPECT_EQ(a.result.report.workload, b.result.report.workload);
    EXPECT_EQ(a.result.report.halted, b.result.report.halted);
    EXPECT_EQ(a.result.report.l1dMisses, b.result.report.l1dMisses);
    EXPECT_EQ(a.result.report.dtlbMisses, b.result.report.dtlbMisses);
    EXPECT_EQ(0, memcmp(&a.result.report.core, &b.result.report.core,
                        sizeof(CoreStats)));
}

std::string
slurp(const std::string &path)
{
    FILE *f = fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << path;
    std::string data;
    char buf[4096];
    size_t n;
    while ((n = fread(buf, 1, sizeof(buf), f)) > 0)
        data.append(buf, n);
    fclose(f);
    return data;
}

void
spit(const std::string &path, const std::string &data)
{
    FILE *f = fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr) << path;
    ASSERT_EQ(fwrite(data.data(), 1, data.size(), f), data.size());
    fclose(f);
}

/** Create a store with @p n test records and return its path. */
std::string
buildStore(const char *tag, u64 n)
{
    const std::string path = tmpPath(tag);
    ::remove(path.c_str());
    std::string err;
    auto store = ResultStore::create(path, testMeta(n), &err);
    EXPECT_NE(store, nullptr) << err;
    for (u64 i = 0; i < n; ++i)
        EXPECT_EQ(store->append(testRecord(i)), "");
    return path;
}

} // namespace

TEST(Store, CreateAppendReopenRoundTrip)
{
    const std::string path = buildStore("roundtrip", 5);

    std::string err;
    ResultStore::Recovery rec;
    auto store = ResultStore::openReadOnly(path, &err, &rec);
    ASSERT_NE(store, nullptr) << err;
    EXPECT_EQ(rec.validRecords, 5u);
    EXPECT_EQ(rec.droppedBytes, 0u);

    const StoreMeta want = testMeta(5);
    EXPECT_EQ(store->meta().kind, StoreKind::Sweep);
    EXPECT_EQ(store->meta().gitRev, want.gitRev);
    EXPECT_EQ(store->meta().specName, want.specName);
    EXPECT_EQ(store->meta().specHash, want.specHash);
    EXPECT_EQ(store->meta().scale, want.scale);
    EXPECT_EQ(store->meta().workloadsCsv, want.workloadsCsv);
    EXPECT_EQ(store->meta().numJobs, 5u);
    EXPECT_EQ(store->meta().specText, want.specText);

    ASSERT_EQ(store->records().size(), 5u);
    for (u64 i = 0; i < 5; ++i)
        expectRecordEqual(store->records()[i], testRecord(i));

    ::remove(path.c_str());
}

TEST(Store, CreateRefusesExistingFile)
{
    const std::string path = buildStore("exists", 1);
    std::string err;
    EXPECT_EQ(ResultStore::create(path, testMeta(1), &err), nullptr);
    EXPECT_NE(err.find("already exists"), std::string::npos) << err;
    ::remove(path.c_str());
}

TEST(Store, ReadOnlyHandleRefusesAppend)
{
    const std::string path = buildStore("ro", 1);
    std::string err;
    auto store = ResultStore::openReadOnly(path, &err);
    ASSERT_NE(store, nullptr) << err;
    EXPECT_NE(store->append(testRecord(9)).find("read-only"),
              std::string::npos);
    ::remove(path.c_str());
}

// kill -9 can stop the writer at any byte offset. Truncate a valid
// store at *every* possible length and demand: the open never fails,
// recovery keeps exactly the complete records the prefix holds, and
// the truncated (recovered) store accepts appends that a reopen then
// sees — i.e. a torn tail costs at most the record being written.
TEST(Store, TornTailRecoveredAtEveryByteOffset)
{
    const std::string path = buildStore("torn", 3);
    const std::string data = slurp(path);
    const std::string copy = tmpPath("torn_copy");

    // Locate each record's end: frames chain from the end of the
    // header frame (magic + version + framed meta).
    std::vector<size_t> recordEnds;
    {
        std::string err;
        auto full = ResultStore::openReadOnly(path, &err);
        ASSERT_NE(full, nullptr);
        ASSERT_EQ(full->records().size(), 3u);
    }
    const size_t headerEnd = [&]() {
        u32 metaLen;
        memcpy(&metaLen, data.data() + 12, 4);
        return size_t(12 + 8 + metaLen);
    }();
    size_t off = headerEnd;
    while (off < data.size()) {
        u32 len;
        memcpy(&len, data.data() + off, 4);
        off += 8 + len;
        recordEnds.push_back(off);
    }
    ASSERT_EQ(recordEnds.size(), 3u);
    ASSERT_EQ(recordEnds.back(), data.size());

    for (size_t cut = headerEnd; cut <= data.size(); ++cut) {
        spit(copy, data.substr(0, cut));
        std::string err;
        ResultStore::Recovery rec;
        auto store = ResultStore::openForAppend(copy, &err, &rec);
        ASSERT_NE(store, nullptr)
            << "cut at " << cut << " bytes: " << err;

        size_t complete = 0;
        while (complete < recordEnds.size() &&
               recordEnds[complete] <= cut)
            ++complete;
        ASSERT_EQ(store->records().size(), complete)
            << "cut at " << cut << " bytes";
        for (size_t i = 0; i < complete; ++i)
            expectRecordEqual(store->records()[i], testRecord(i));

        // The recovered store keeps working: append once, reopen,
        // and the stream is the valid prefix plus the new record.
        ASSERT_EQ(store->append(testRecord(77)), "");
        store.reset();
        auto reopened = ResultStore::openReadOnly(copy, &err, &rec);
        ASSERT_NE(reopened, nullptr) << err;
        ASSERT_EQ(reopened->records().size(), complete + 1);
        expectRecordEqual(reopened->records().back(), testRecord(77));
        EXPECT_EQ(rec.droppedBytes, 0u) << "truncation left torn bytes";
    }
    ::remove(path.c_str());
    ::remove(copy.c_str());
}

// A flipped bit anywhere in a record frame fails its checksum; the
// stream ends there (frame lengths chain the records together), so
// recovery keeps exactly the records before the corrupt one.
TEST(Store, BitFlippedRecordIsolatesValidPrefix)
{
    const std::string path = buildStore("flip", 3);
    const std::string data = slurp(path);
    const std::string copy = tmpPath("flip_copy");

    const size_t headerEnd = [&]() {
        u32 metaLen;
        memcpy(&metaLen, data.data() + 12, 4);
        return size_t(12 + 8 + metaLen);
    }();
    // Frame boundaries of the three records.
    std::vector<size_t> starts;
    size_t off = headerEnd;
    while (off < data.size()) {
        starts.push_back(off);
        u32 len;
        memcpy(&len, data.data() + off, 4);
        off += 8 + len;
    }
    ASSERT_EQ(starts.size(), 3u);

    // Flip one bit inside record 1 (its length field, its checksum
    // field, and a payload byte), expect exactly record 0 to survive.
    for (const size_t target :
         {starts[1], starts[1] + 4, starts[1] + 8 + 40}) {
        std::string mutated = data;
        mutated[target] = char(mutated[target] ^ 0x10);
        spit(copy, mutated);

        std::string err;
        ResultStore::Recovery rec;
        auto store = ResultStore::openReadOnly(copy, &err, &rec);
        ASSERT_NE(store, nullptr) << err;
        ASSERT_EQ(store->records().size(), 1u)
            << "flip at offset " << target;
        expectRecordEqual(store->records()[0], testRecord(0));
        EXPECT_EQ(rec.droppedBytes, mutated.size() - starts[1]);
    }
    ::remove(path.c_str());
    ::remove(copy.c_str());
}

TEST(Store, EmptyFileIsAnError)
{
    const std::string path = tmpPath("empty");
    spit(path, "");
    std::string err;
    EXPECT_EQ(ResultStore::openForAppend(path, &err), nullptr);
    EXPECT_NE(err.find("empty"), std::string::npos) << err;
    ::remove(path.c_str());
}

TEST(Store, ForeignFileIsAnError)
{
    const std::string path = tmpPath("foreign");
    spit(path, "definitely not a rix store\n");
    std::string err;
    EXPECT_EQ(ResultStore::openReadOnly(path, &err), nullptr);
    EXPECT_NE(err.find("bad magic"), std::string::npos) << err;
    ::remove(path.c_str());
}

TEST(Store, WrongVersionHeaderIsAnError)
{
    const std::string path = buildStore("version", 2);
    std::string data = slurp(path);
    const u32 bogus = ResultStore::formatVersion + 1;
    memcpy(&data[8], &bogus, 4); // version field follows the magic
    spit(path, data);

    std::string err;
    EXPECT_EQ(ResultStore::openForAppend(path, &err), nullptr);
    EXPECT_NE(err.find("version"), std::string::npos) << err;
    ::remove(path.c_str());
}

TEST(Store, CorruptHeaderIsAnError)
{
    const std::string path = buildStore("corrupthdr", 1);
    std::string data = slurp(path);
    data[14] = char(data[14] ^ 0x01); // inside the meta frame
    spit(path, data);

    std::string err;
    EXPECT_EQ(ResultStore::openReadOnly(path, &err), nullptr);
    EXPECT_NE(err.find("header"), std::string::npos) << err;
    ::remove(path.c_str());
}

TEST(Store, ConcurrentAppendsAllSurvive)
{
    const std::string path = tmpPath("concurrent");
    ::remove(path.c_str());
    std::string err;
    auto store = ResultStore::create(path, testMeta(100), &err);
    ASSERT_NE(store, nullptr) << err;

    // 4 writers x 25 appends through one handle — the sweep pool's
    // retire-hook pattern.
    std::vector<std::thread> writers;
    for (unsigned t = 0; t < 4; ++t)
        writers.emplace_back([&store, t]() {
            for (u64 i = 0; i < 25; ++i)
                ASSERT_EQ(store->append(testRecord(t * 25 + i)), "");
        });
    for (std::thread &w : writers)
        w.join();
    store.reset();

    ResultStore::Recovery rec;
    auto reopened = ResultStore::openReadOnly(path, &err, &rec);
    ASSERT_NE(reopened, nullptr) << err;
    ASSERT_EQ(reopened->records().size(), 100u);
    EXPECT_EQ(rec.droppedBytes, 0u);
    std::vector<bool> seen(100, false);
    for (const StoreRecord &r : reopened->records()) {
        ASSERT_LT(r.jobIndex, 100u);
        EXPECT_FALSE(seen[r.jobIndex]) << "duplicate " << r.jobIndex;
        seen[r.jobIndex] = true;
        expectRecordEqual(r, testRecord(r.jobIndex));
    }
    ::remove(path.c_str());
}

// ---- strict knob validation ----------------------------------------

TEST(StoreKnobsDeathTest, EnvStoreDirValidation)
{
    unsetenv("RIX_STORE_DIR");
    EXPECT_EQ(envStoreDir(), "");

    setenv("RIX_STORE_DIR", "", 1);
    EXPECT_DEATH(envStoreDir(), "RIX_STORE_DIR: empty value");

    setenv("RIX_STORE_DIR", "/nonexistent/rix/store/dir", 1);
    EXPECT_DEATH(envStoreDir(), "RIX_STORE_DIR: cannot access");

    const std::string file = tmpPath("envfile");
    spit(file, "x");
    setenv("RIX_STORE_DIR", file.c_str(), 1);
    EXPECT_DEATH(envStoreDir(), "is not a directory");
    ::remove(file.c_str());

    setenv("RIX_STORE_DIR", ::testing::TempDir().c_str(), 1);
    EXPECT_EQ(envStoreDir(), ::testing::TempDir());
    unsetenv("RIX_STORE_DIR");
}

TEST(StoreKnobsDeathTest, StorePathValidation)
{
    EXPECT_DEATH(requireStorePathUsable("rix run --store", ""),
                 "empty path");
    EXPECT_DEATH(
        requireStorePathUsable("rix run --store", ::testing::TempDir()),
        "is a directory, not a store file");
    EXPECT_DEATH(requireStorePathUsable("rix run --store",
                                        "/nonexistent/dir/a.rixstore"),
                 "does not exist");
    // A usable path (missing file, writable parent) passes silently.
    requireStorePathUsable("rix run --store", tmpPath("usable"));
}
