/**
 * @file
 * Integration-engine tests: class eligibility policy, the decision
 * flow (lookup + register eligibility + LISP), entry creation rules
 * (direct entries only on failed integration; reverse entries for
 * stack stores and stack-pointer decrements), and the worked scenarios
 * of the paper's Figures 2 and 3 at the engine level.
 */

#include <gtest/gtest.h>

#include "core/integration.hh"

using namespace rix;

namespace
{

struct EngineFixture : ::testing::Test
{
    EngineFixture()
        : params(makeParams()), regs(params), engine(params, regs)
    {
    }

    static IntegrationParams
    makeParams()
    {
        IntegrationParams p;
        p.mode = IntegrationMode::Reverse;
        p.itEntries = 64;
        p.itAssoc = 4;
        p.numPhysRegs = 64;
        return p;
    }

    RenameCandidate
    cand(const Instruction &inst, PhysReg s1 = invalidPhysReg,
         u8 g1 = 0, PhysReg s2 = invalidPhysReg, u8 g2 = 0,
         InstAddr pc = 0, unsigned depth = 0)
    {
        RenameCandidate c;
        c.inst = inst;
        c.pc = pc;
        c.callDepth = depth;
        c.seq = ++seq;
        c.hasSrc1 = s1 != invalidPhysReg;
        c.src1 = s1;
        c.src1Gen = g1;
        c.hasSrc2 = s2 != invalidPhysReg;
        c.src2 = s2;
        c.src2Gen = g2;
        return c;
    }

    IntegrationParams params;
    RegStateVector regs;
    IntegrationEngine engine;
    u64 seq = 0;
};

} // namespace

TEST(EngineStatic, ClassPolicy)
{
    EXPECT_TRUE(
        IntegrationEngine::classIntegrates(makeRR(Opcode::ADDQ, 1, 2, 3)));
    EXPECT_TRUE(
        IntegrationEngine::classIntegrates(makeLoad(Opcode::LDQ, 1, 0, 2)));
    EXPECT_TRUE(IntegrationEngine::classIntegrates(
        makeBranch(Opcode::BEQ, 1, 5)));
    // Stores, jumps, calls, syscalls, nops never integrate.
    EXPECT_FALSE(IntegrationEngine::classIntegrates(
        makeStore(Opcode::STQ, 1, 0, 2)));
    EXPECT_FALSE(IntegrationEngine::classIntegrates(makeJump(3)));
    EXPECT_FALSE(IntegrationEngine::classIntegrates(makeCall(3)));
    EXPECT_FALSE(IntegrationEngine::classIntegrates(makeSyscall(1)));
    EXPECT_FALSE(IntegrationEngine::classIntegrates(makeNop()));
    // Writes to r31 produce nothing to reuse.
    EXPECT_FALSE(IntegrationEngine::classIntegrates(
        makeRR(Opcode::ADDQ, regZero, 2, 3)));
}

TEST_F(EngineFixture, DirectReuseFlow)
{
    PhysReg in = regs.allocate();
    regs.markReady(in);

    Instruction add = makeRI(Opcode::ADDQI, 3, 1, 8);
    RenameCandidate c1 = cand(add, in, regs.gen(in));
    IntegrationResult r1 = engine.tryIntegrate(c1);
    EXPECT_FALSE(r1.integrated); // empty table

    PhysReg out = regs.allocate();
    regs.markReady(out);
    engine.recordEntries(c1, true, out, regs.gen(out), false);

    // A later instance with the same input integrates the output.
    RenameCandidate c2 = cand(add, in, regs.gen(in));
    IntegrationResult r2 = engine.tryIntegrate(c2);
    ASSERT_TRUE(r2.integrated);
    EXPECT_EQ(r2.preg, out);
    EXPECT_FALSE(r2.reverse);
    EXPECT_EQ(r2.producerSeq, c1.seq);
}

TEST_F(EngineFixture, IntegrationFailsOnIneligibleRegister)
{
    PhysReg in = regs.allocate();
    regs.markReady(in);
    Instruction add = makeRI(Opcode::ADDQI, 3, 1, 8);
    RenameCandidate c1 = cand(add, in, regs.gen(in));
    PhysReg out = regs.allocate(); // never marked ready
    engine.recordEntries(c1, true, out, regs.gen(out), false);
    regs.releaseSquash(out); // 0/F: unexecuted squashed register
    IntegrationResult r = engine.tryIntegrate(cand(add, in, regs.gen(in)));
    EXPECT_FALSE(r.integrated);
}

TEST_F(EngineFixture, LispSuppressesLoads)
{
    PhysReg base = regs.allocate();
    regs.markReady(base);
    Instruction ld = makeLoad(Opcode::LDQ, 4, 16, 2);
    RenameCandidate c1 = cand(ld, base, regs.gen(base), invalidPhysReg, 0,
                              /*pc=*/77);
    PhysReg out = regs.allocate();
    regs.markReady(out);
    engine.recordEntries(c1, true, out, regs.gen(out), false);

    RenameCandidate c2 = cand(ld, base, regs.gen(base), invalidPhysReg, 0,
                              77);
    EXPECT_TRUE(engine.tryIntegrate(c2).integrated);

    engine.lisp().trainMisintegration(77);
    IntegrationResult r = engine.tryIntegrate(
        cand(ld, base, regs.gen(base), invalidPhysReg, 0, 77));
    EXPECT_FALSE(r.integrated);
    EXPECT_TRUE(r.suppressed);
}

TEST_F(EngineFixture, StackStoreCreatesReverseEntry)
{
    // Figure 3: stq data, 8(sp) creates <ldq/8, sp, -> data>.
    PhysReg sp = regs.allocate();
    regs.markReady(sp);
    PhysReg data = regs.allocate();
    regs.markReady(data);

    Instruction st = makeStore(Opcode::STQ, 20, 8, regSp);
    RenameCandidate cs = cand(st, sp, regs.gen(sp), data, regs.gen(data));
    engine.recordEntries(cs, false, invalidPhysReg, 0, false);
    EXPECT_EQ(engine.reverseEntriesCreated(), 1u);

    // The register fill integrates the store's data register.
    Instruction ld = makeLoad(Opcode::LDQ, 20, 8, regSp);
    IntegrationResult r = engine.tryIntegrate(cand(ld, sp, regs.gen(sp)));
    ASSERT_TRUE(r.integrated);
    EXPECT_TRUE(r.reverse);
    EXPECT_EQ(r.preg, data);
}

TEST_F(EngineFixture, NonStackStoreCreatesNoReverseEntry)
{
    PhysReg base = regs.allocate();
    PhysReg data = regs.allocate();
    Instruction st = makeStore(Opcode::STQ, 20, 8, /*base=*/5);
    engine.recordEntries(cand(st, base, regs.gen(base), data,
                              regs.gen(data)),
                         false, invalidPhysReg, 0, false);
    EXPECT_EQ(engine.reverseEntriesCreated(), 0u);
}

TEST_F(EngineFixture, SpDecrementCreatesInverseEntry)
{
    // Figure 3: lda sp,-32(sp) creates the entry that lets
    // lda sp,32(sp) reclaim the old stack-pointer register.
    PhysReg old_sp = regs.allocate();
    regs.markReady(old_sp);
    PhysReg new_sp = regs.allocate();
    regs.markReady(new_sp);

    Instruction dec = makeRI(Opcode::LDA, regSp, regSp, -32);
    engine.recordEntries(cand(dec, old_sp, regs.gen(old_sp)), true,
                         new_sp, regs.gen(new_sp), false);
    EXPECT_EQ(engine.reverseEntriesCreated(), 1u);

    Instruction inc = makeRI(Opcode::LDA, regSp, regSp, 32);
    IntegrationResult r =
        engine.tryIntegrate(cand(inc, new_sp, regs.gen(new_sp)));
    ASSERT_TRUE(r.integrated);
    EXPECT_TRUE(r.reverse);
    EXPECT_EQ(r.preg, old_sp);
}

TEST_F(EngineFixture, SpIncrementCreatesNoReverseEntry)
{
    PhysReg sp = regs.allocate();
    PhysReg out = regs.allocate();
    Instruction inc = makeRI(Opcode::LDA, regSp, regSp, 32);
    engine.recordEntries(cand(inc, sp, regs.gen(sp)), true, out,
                         regs.gen(out), false);
    EXPECT_EQ(engine.reverseEntriesCreated(), 0u);
}

TEST_F(EngineFixture, IntegratedInstructionCreatesNoDirectEntry)
{
    PhysReg in = regs.allocate();
    regs.markReady(in);
    Instruction add = makeRI(Opcode::ADDQI, 3, 1, 8);
    const u64 before = engine.directEntriesCreated();
    engine.recordEntries(cand(add, in, regs.gen(in)), true, 10, 0,
                         /*integrated=*/true);
    EXPECT_EQ(engine.directEntriesCreated(), before);
}

TEST_F(EngineFixture, BranchOutcomeReuse)
{
    PhysReg in = regs.allocate();
    regs.markReady(in);
    Instruction br = makeBranch(Opcode::BNE, 2, 50);
    RenameCandidate c1 = cand(br, in, regs.gen(in));
    ITHandle h = engine.recordEntries(c1, false, invalidPhysReg, 0, false);
    // Outcome unknown yet: no integration.
    EXPECT_FALSE(engine.tryIntegrate(cand(br, in, regs.gen(in))).integrated);
    engine.fillBranchOutcome(h, true);
    IntegrationResult r = engine.tryIntegrate(cand(br, in, regs.gen(in)));
    ASSERT_TRUE(r.integrated);
    EXPECT_TRUE(r.isBranch);
    EXPECT_TRUE(r.taken);
}

TEST_F(EngineFixture, ModeOffNeverIntegrates)
{
    IntegrationParams p = makeParams();
    p.mode = IntegrationMode::Off;
    RegStateVector rs(p);
    IntegrationEngine eng(p, rs);
    PhysReg in = rs.allocate();
    rs.markReady(in);
    Instruction add = makeRI(Opcode::ADDQI, 3, 1, 8);
    RenameCandidate c;
    c.inst = add;
    c.hasSrc1 = true;
    c.src1 = in;
    c.src1Gen = rs.gen(in);
    eng.recordEntries(c, true, 9, 0, false);
    EXPECT_FALSE(eng.tryIntegrate(c).integrated);
}

TEST_F(EngineFixture, PipelinedWritesDelayVisibility)
{
    // With a write delay of 8 renamed instructions, an entry created at
    // seq S is invisible to lookups before S+8 (the section 3.3
    // pipelined-integration model) and visible after.
    IntegrationParams pp = makeParams();
    pp.itWriteDelay = 8;
    RegStateVector rs(pp);
    IntegrationEngine eng(pp, rs);

    PhysReg in = rs.allocate();
    rs.markReady(in);
    Instruction add = makeRI(Opcode::ADDQI, 3, 1, 8);

    RenameCandidate c1;
    c1.inst = add;
    c1.seq = 10;
    c1.hasSrc1 = true;
    c1.src1 = in;
    c1.src1Gen = rs.gen(in);
    PhysReg out = rs.allocate();
    rs.markReady(out);
    eng.recordEntries(c1, true, out, rs.gen(out), false);
    EXPECT_EQ(eng.pendingWrites(), 1u);

    RenameCandidate c2 = c1;
    c2.seq = 14; // within the write delay: no reuse
    EXPECT_FALSE(eng.tryIntegrate(c2).integrated);

    RenameCandidate c3 = c1;
    c3.seq = 19; // past the delay: entry drained and visible
    EXPECT_TRUE(eng.tryIntegrate(c3).integrated);
    EXPECT_EQ(eng.pendingWrites(), 0u);
}

TEST_F(EngineFixture, PipelinedBranchOutcomeSurvivesDrain)
{
    IntegrationParams pp = makeParams();
    pp.itWriteDelay = 8;
    RegStateVector rs(pp);
    IntegrationEngine eng(pp, rs);

    PhysReg in = rs.allocate();
    rs.markReady(in);
    Instruction br = makeBranch(Opcode::BNE, 2, 50);
    RenameCandidate c1;
    c1.inst = br;
    c1.seq = 5;
    c1.hasSrc1 = true;
    c1.src1 = in;
    c1.src1Gen = rs.gen(in);
    ITHandle h = eng.recordEntries(c1, false, invalidPhysReg, 0, false);
    EXPECT_TRUE(h.isPending);
    // Outcome arrives while the entry is still in the write stage.
    eng.fillBranchOutcome(h, true);

    RenameCandidate c2 = c1;
    c2.seq = 20;
    IntegrationResult r = eng.tryIntegrate(c2);
    ASSERT_TRUE(r.integrated);
    EXPECT_TRUE(r.taken);
}

TEST_F(EngineFixture, Figure2Scenario)
{
    // Simplified Figure 2: two add instances share one register
    // simultaneously (refcount 1 -> 2), a third integrates after the
    // mapping is shadowed (0/T).
    PhysReg p1 = regs.allocate();
    regs.markReady(p1); // holds R1
    Instruction i1 = makeRI(Opcode::ADDQI, 2, 1, 1); // addqi R2, R1, 1
    RenameCandidate c1 = cand(i1, p1, regs.gen(p1), invalidPhysReg, 0, 0x10);
    PhysReg p4 = regs.allocate();
    regs.markReady(p4);
    engine.recordEntries(c1, true, p4, regs.gen(p4), false);

    // New instance integrates p4 while the original mapping is live.
    IntegrationResult r =
        engine.tryIntegrate(cand(i1, p1, regs.gen(p1), invalidPhysReg, 0,
                                 0x10));
    ASSERT_TRUE(r.integrated);
    regs.addRef(p4);
    EXPECT_EQ(regs.count(p4), 2); // simultaneous sharing (1/T -> 2/T)

    // Shadow both mappings: register idles at 0/T, still reusable.
    regs.releaseOverwrite(p4);
    regs.releaseOverwrite(p4);
    EXPECT_EQ(regs.count(p4), 0);
    EXPECT_TRUE(
        engine.tryIntegrate(cand(i1, p1, regs.gen(p1), invalidPhysReg, 0,
                                 0x10))
            .integrated);
}
