/**
 * @file
 * Reference-count state-vector tests: the paper's section 2.2
 * machinery. FIFO allocation, pinning, simultaneous sharing, the two
 * zero-reference states (0/F garbage vs 0/T integration-eligible, the
 * deadlock-avoidance rule), generation counters, per-mode eligibility,
 * saturation, leak-freedom and snapshot/restore.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "base/rng.hh"
#include "core/reg_state.hh"

using namespace rix;

namespace
{

IntegrationParams
smallParams(unsigned regs = 64, unsigned refbits = 4, unsigned genbits = 4)
{
    IntegrationParams p;
    p.numPhysRegs = regs;
    p.refBits = refbits;
    p.genBits = genbits;
    return p;
}

} // namespace

TEST(RegState, AllocateFifoOrder)
{
    RegStateVector rs(smallParams(64));
    PhysReg a = rs.allocate();
    PhysReg b = rs.allocate();
    EXPECT_NE(a, b);
    EXPECT_EQ(rs.count(a), 1);
    EXPECT_TRUE(rs.valid(a));
    EXPECT_FALSE(rs.ready(a));
    // Freed registers are reclaimed in FIFO order: after releasing a
    // then b, a long allocation run returns a before b.
    rs.releaseOverwrite(a);
    rs.releaseOverwrite(b);
    std::vector<PhysReg> order;
    for (int i = 0; i < 64; ++i)
        order.push_back(rs.allocate());
    auto ia = std::find(order.begin(), order.end(), a);
    auto ib = std::find(order.begin(), order.end(), b);
    ASSERT_NE(ia, order.end());
    ASSERT_NE(ib, order.end());
    EXPECT_LT(ia - order.begin(), ib - order.begin());
}

TEST(RegState, PinnedNeverFreedOrEligible)
{
    RegStateVector rs(smallParams(64));
    PhysReg z = rs.allocate();
    rs.pin(z);
    EXPECT_TRUE(rs.pinned(z));
    rs.releaseOverwrite(z); // no-op on pinned
    EXPECT_EQ(rs.count(z), 1);
    EXPECT_FALSE(rs.eligible(z, rs.gen(z), IntegrationMode::General));
}

TEST(RegState, SimultaneousSharing)
{
    RegStateVector rs(smallParams(64));
    PhysReg r = rs.allocate();
    rs.markReady(r);
    rs.addRef(r);
    rs.addRef(r);
    EXPECT_EQ(rs.count(r), 3);
    rs.releaseOverwrite(r);
    rs.releaseOverwrite(r);
    EXPECT_EQ(rs.count(r), 1);
    EXPECT_TRUE(rs.valid(r));
    rs.releaseOverwrite(r);
    EXPECT_EQ(rs.count(r), 0);
    EXPECT_TRUE(rs.valid(r)); // 0/T: still integration-eligible
    EXPECT_EQ(rs.zeroOrigin(r), ZeroOrigin::Shadowed);
}

TEST(RegState, SquashOfExecutedIsEligible)
{
    RegStateVector rs(smallParams(64));
    PhysReg r = rs.allocate();
    rs.markReady(r); // executed
    rs.releaseSquash(r);
    EXPECT_TRUE(rs.valid(r)); // 0/T
    EXPECT_EQ(rs.zeroOrigin(r), ZeroOrigin::Squashed);
    EXPECT_TRUE(rs.eligible(r, rs.gen(r), IntegrationMode::Squash));
    EXPECT_TRUE(rs.eligible(r, rs.gen(r), IntegrationMode::General));
}

TEST(RegState, SquashOfUnexecutedIsGarbage)
{
    // The deadlock-avoidance rule: a squashed register whose value was
    // never computed must be 0/F.
    RegStateVector rs(smallParams(64));
    PhysReg r = rs.allocate(); // not marked ready
    rs.releaseSquash(r);
    EXPECT_FALSE(rs.valid(r));
    EXPECT_FALSE(rs.eligible(r, rs.gen(r), IntegrationMode::Squash));
    EXPECT_FALSE(rs.eligible(r, rs.gen(r), IntegrationMode::General));
}

TEST(RegState, SquashModeRequiresSquashOrigin)
{
    RegStateVector rs(smallParams(64));
    PhysReg r = rs.allocate();
    rs.markReady(r);
    rs.releaseOverwrite(r); // shadowed, not squashed
    EXPECT_FALSE(rs.eligible(r, rs.gen(r), IntegrationMode::Squash));
    EXPECT_TRUE(rs.eligible(r, rs.gen(r), IntegrationMode::General));
}

TEST(RegState, SquashModeRejectsActiveRegisters)
{
    RegStateVector rs(smallParams(64));
    PhysReg r = rs.allocate();
    rs.markReady(r);
    // Active (count 1) register: general reuse allows sharing, squash
    // reuse's ownership discipline does not.
    EXPECT_FALSE(rs.eligible(r, rs.gen(r), IntegrationMode::Squash));
    EXPECT_TRUE(rs.eligible(r, rs.gen(r), IntegrationMode::General));
}

TEST(RegState, GenerationMismatchBlocksEligibility)
{
    RegStateVector rs(smallParams(64));
    PhysReg r = rs.allocate();
    rs.markReady(r);
    const u8 old_gen = rs.gen(r);
    rs.releaseOverwrite(r);
    // Burn through the free list until r is reallocated.
    PhysReg got;
    do {
        got = rs.allocate();
        rs.markReady(got);
        rs.releaseOverwrite(got);
    } while (got != r);
    EXPECT_NE(rs.gen(r), old_gen);
    EXPECT_FALSE(rs.eligible(r, old_gen, IntegrationMode::General));
    EXPECT_TRUE(rs.eligible(r, rs.gen(r), IntegrationMode::General));
    // With generation checking disabled (ablation), the stale entry
    // would match.
    EXPECT_TRUE(rs.eligible(r, old_gen, IntegrationMode::General, false));
}

TEST(RegState, GenerationWraps)
{
    RegStateVector rs(smallParams(40, 4, 2)); // 2-bit generations
    PhysReg r = rs.allocate();
    const u8 g0 = rs.gen(r);
    for (int i = 0; i < 4; ++i) {
        rs.releaseOverwrite(r);
        PhysReg got;
        do {
            got = rs.allocate();
            if (got != r)
                rs.releaseSquash(got);
        } while (got != r);
    }
    EXPECT_EQ(rs.gen(r), g0); // wrapped around 2^2 reallocations
}

TEST(RegState, RefcountSaturation)
{
    IntegrationParams p = smallParams(64, 2); // max count 3
    RegStateVector rs(p);
    PhysReg r = rs.allocate();
    rs.markReady(r);
    rs.addRef(r);
    rs.addRef(r);
    EXPECT_TRUE(rs.refSaturated(r));
    // Saturated registers are not eligible (integration must fail and
    // allocate a fresh register, as in section 3.3).
    EXPECT_FALSE(rs.eligible(r, rs.gen(r), IntegrationMode::General));
}

TEST(RegState, ReuseAfterZeroRevivesValid)
{
    RegStateVector rs(smallParams(64));
    PhysReg r = rs.allocate();
    rs.markReady(r);
    rs.releaseOverwrite(r);
    EXPECT_EQ(rs.count(r), 0);
    rs.addRef(r); // integration of an idle 0/T register
    EXPECT_EQ(rs.count(r), 1);
    EXPECT_TRUE(rs.valid(r));
    rs.releaseSquash(r);
    EXPECT_TRUE(rs.valid(r)); // value was computed; back to 0/T
}

TEST(RegState, NoLeaksAfterChurn)
{
    RegStateVector rs(smallParams(40));
    Rng rng(3);
    std::vector<PhysReg> live;
    for (int i = 0; i < 10000; ++i) {
        if (rs.canAllocate() && (live.empty() || rng.chance(500))) {
            PhysReg r = rs.allocate();
            if (rng.chance(700))
                rs.markReady(r);
            live.push_back(r);
        } else if (!live.empty()) {
            size_t k = rng.below(live.size());
            PhysReg r = live[k];
            live.erase(live.begin() + s64(k));
            rng.chance(500) ? rs.releaseOverwrite(r)
                            : rs.releaseSquash(r);
        }
        ASSERT_TRUE(rs.checkNoLeaks());
    }
}

TEST(RegState, SnapshotRestore)
{
    RegStateVector rs(smallParams(64));
    PhysReg a = rs.allocate();
    rs.markReady(a);
    rs.addRef(a);
    auto snap = rs.snapshot();
    PhysReg b = rs.allocate();
    rs.releaseSquash(b);
    rs.releaseOverwrite(a);
    rs.restore(snap);
    EXPECT_EQ(rs.count(a), 2);
    EXPECT_TRUE(rs.ready(a));
    EXPECT_TRUE(rs.checkNoLeaks());
}

TEST(RegState, ExhaustionDetectable)
{
    RegStateVector rs(smallParams(34));
    for (int i = 0; i < 34; ++i) {
        ASSERT_TRUE(rs.canAllocate());
        rs.allocate();
    }
    EXPECT_FALSE(rs.canAllocate());
    EXPECT_EQ(rs.freeCount(), 0u);
}
