/**
 * @file
 * Cycle-level core tests: basic execution correctness against the
 * emulator on directed programs, branch misprediction recovery, memory
 * disambiguation (forwarding, violations, collision prediction),
 * resource limits, and pipeline timing sanity.
 */

#include <gtest/gtest.h>

#include "assembler/parser.hh"
#include "base/log.hh"
#include "cpu/core.hh"
#include "sim/simulator.hh"

using namespace rix;

namespace
{

Program &
keep(Program p)
{
    static std::vector<std::unique_ptr<Program>> pool;
    pool.push_back(std::make_unique<Program>(std::move(p)));
    return *pool.back();
}

/** Run a text program on the core and check against the emulator. */
void
expectMatchesEmulator(const std::string &src, const CoreParams &cp)
{
    Program &p = keep(assembleTextOrDie(src, "t"));
    std::string err = verifyAgainstEmulator(p, cp, 2'000'000, 20'000'000);
    EXPECT_EQ(err, "");
}

} // namespace

TEST(CorePipeline, StraightLine)
{
    expectMatchesEmulator(R"(
        addqi t0, zero, 3
        addqi t1, zero, 4
        mulq t2, t0, t1
        subq t3, t2, t0
        halt
    )",
                          baselineParams());
}

TEST(CorePipeline, TightLoop)
{
    expectMatchesEmulator(R"(
        addqi t0, zero, 100
        addqi t1, zero, 0
loop:   addq t1, t1, t0
        subqi t0, t0, 1
        bne t0, loop
        syscall 1, t1
        halt
    )",
                          baselineParams());
}

TEST(CorePipeline, CallsAndStack)
{
    expectMatchesEmulator(R"(
f:      lda sp, -16(sp)
        stq ra, 0(sp)
        stq s0, 8(sp)
        addqi s0, a0, 7
        mulqi v0, s0, 3
        ldq s0, 8(sp)
        ldq ra, 0(sp)
        lda sp, 16(sp)
        ret
main:   addqi t3, zero, 20
        addqi s1, zero, 0
loop:   mv a0, t3
        jsr f
        addq s1, s1, v0
        subqi t3, t3, 1
        bne t3, loop
        syscall 1, s1
        halt
        .entry main
    )",
                          baselineParams());
}

TEST(CorePipeline, DataDependentBranches)
{
    // Alternating and data-driven branches exercise misprediction
    // recovery (map-table restore, RAS/history repair).
    expectMatchesEmulator(R"(
        addqi t0, zero, 0x55aa
        addqi t1, zero, 64
        addqi t2, zero, 0
loop:   andi t3, t0, 1
        beq t3, even
        addqi t2, t2, 3
        br join
even:   subqi t2, t2, 1
join:   srli t0, t0, 1
        bne t0, keepmask
        addqi t0, zero, 0x55aa
keepmask: subqi t1, t1, 1
        bne t1, loop
        syscall 1, t2
        halt
    )",
                          baselineParams());
}

TEST(CorePipeline, StoreLoadForwarding)
{
    expectMatchesEmulator(R"(
        .data
buf:    .space 128
        .text
        addqi t0, zero, 500
        addqi t1, zero, 0
loop:   stq t0, buf(zero)
        ldq t2, buf(zero)     # forwards from the store
        addq t1, t1, t2
        subqi t0, t0, 1
        bne t0, loop
        syscall 1, t1
        halt
    )",
                          baselineParams());
}

TEST(CorePipeline, MemoryOrderViolationRecovers)
{
    // A store whose address resolves late (behind a multiply chain)
    // conflicting with a younger speculative load: the violation squash
    // and the collision-history-table training must preserve
    // architectural correctness.
    expectMatchesEmulator(R"(
        .data
cell:   .quad 1
        .text
        addqi t5, zero, 40
        addqi s1, zero, 0
        addqi t4, zero, cell
loop:   mulqi t0, t5, 3       # slow address computation
        andi t0, t0, 0
        addq t0, t0, t4       # = &cell, but late
        stq t5, 0(t0)
        ldq t1, cell(zero)    # same address, issues speculatively
        addq s1, s1, t1
        subqi t5, t5, 1
        bne t5, loop
        syscall 1, s1
        halt
    )",
                          baselineParams());
}

TEST(CorePipeline, PartialOverlapHandledConservatively)
{
    expectMatchesEmulator(R"(
        .data
cell:   .quad 0x1122334455667788
        .text
        addqi t0, zero, 0x99
        stl t0, cell(zero)     # 4-byte store
        ldq t1, cell(zero)     # 8-byte load overlaps partially
        syscall 1, t1
        halt
    )",
                          baselineParams());
}

TEST(CorePipeline, IndirectJumpTable)
{
    expectMatchesEmulator(R"(
main:   addqi t9, zero, 3
        addqi s1, zero, 0
outer:  andi t0, t9, 3
        addqi t1, zero, disp
        addq t1, t1, t0
        jmp t1
disp:   br h0
        br h1
        br h2
        br h3
h0:     addqi s1, s1, 1
        br join
h1:     addqi s1, s1, 10
        br join
h2:     addqi s1, s1, 100
        br join
h3:     addqi s1, s1, 1000
join:   subqi t9, t9, 1
        bge t9, outer
        syscall 1, s1
        halt
        .entry main
    )",
                          baselineParams());
}

TEST(CorePipeline, RecursionDepth)
{
    expectMatchesEmulator(R"(
fib:    lda sp, -24(sp)
        stq ra, 0(sp)
        stq s0, 8(sp)
        stq s1, 16(sp)
        mv s0, a0
        cmplti t0, s0, 2
        beq t0, rec
        mv v0, s0
        br out
rec:    subqi a0, s0, 1
        jsr fib
        mv s1, v0
        subqi a0, s0, 2
        jsr fib
        addq v0, v0, s1
out:    ldq s1, 16(sp)
        ldq s0, 8(sp)
        ldq ra, 0(sp)
        lda sp, 24(sp)
        ret
main:   addqi a0, zero, 12
        jsr fib
        syscall 1, v0
        halt
        .entry main
    )",
                          baselineParams());
}

TEST(CorePipeline, TimingSanity)
{
    // A trivially parallel block should get IPC well above 1 on the
    // 4-way machine, and a serial dependence chain close to 1.
    Program &par = keep(assembleTextOrDie(R"(
        addqi t9, zero, 2000
loop:   addqi t1, zero, 1
        addqi t2, zero, 2
        addqi t3, zero, 3
        addqi t4, zero, 4
        addqi t5, zero, 5
        addqi t6, zero, 6
        subqi t9, t9, 1
        bne t9, loop
        halt
    )",
                                          "par"));
    Core c1(par, baselineParams());
    c1.run();
    EXPECT_GT(c1.stats().ipc(), 1.8);

    Program &ser = keep(assembleTextOrDie(R"(
        addqi t9, zero, 2000
        addqi t1, zero, 1
loop:   addq t1, t1, t1
        srli t1, t1, 1
        addq t1, t1, t1
        srli t1, t1, 1
        subqi t9, t9, 1
        bne t9, loop
        halt
    )",
                                          "ser"));
    Core c2(ser, baselineParams());
    c2.run();
    EXPECT_LT(c2.stats().ipc(), 2.0);
    EXPECT_GT(c2.stats().ipc(), 0.5);
}

TEST(CorePipeline, MispredictPenaltyVisible)
{
    // An unpredictable branch stream should cost real cycles compared
    // with a perfectly biased one of the same instruction count.
    auto run_with = [&](const char *cond) {
        Program &p = keep(assembleTextOrDie(strfmt(R"(
        addqi t9, zero, 4000
        addqi t0, zero, 0x9e3779b9
        addqi s1, zero, 0
loop:   mulqi t0, t0, 25214903
        addqi t0, t0, 11
        srli t1, t0, 16
        andi t1, t1, %s
        beq t1, skip
        addqi s1, s1, 1
skip:   subqi t9, t9, 1
        bne t9, loop
        halt
        )",
                                                   cond),
                                            "b"));
        Core c(p, baselineParams());
        c.run();
        return c.stats();
    };
    const CoreStats biased = run_with("0");   // andi -> always 0: taken
    const CoreStats random = run_with("1");   // 50/50
    EXPECT_GT(random.branchMispredicts, biased.branchMispredicts + 500);
    EXPECT_GT(random.cycles, biased.cycles);
    EXPECT_GT(random.avgMispredResolveLat(), 5.0);
}

TEST(CorePipeline, RobAndRsLimitsRespected)
{
    Program &p = keep(assembleTextOrDie(R"(
        addqi t9, zero, 3000
loop:   mulq t1, t9, t9
        mulq t2, t1, t9
        subqi t9, t9, 1
        bne t9, loop
        halt
    )",
                                        "lim"));
    CoreParams cp = baselineParams();
    cp.robSize = 16;
    cp.rsSize = 4;
    Core c(p, cp);
    c.run();
    EXPECT_TRUE(c.halted());
    EXPECT_LE(c.stats().robOccupancySum / c.stats().cycles, 16u);
    EXPECT_LE(c.stats().rsOccupancySum / c.stats().cycles, 4u);
}

TEST(CorePipeline, ReducedConfigsStillCorrect)
{
    const char *src = R"(
        addqi t9, zero, 300
        addqi s1, zero, 0
loop:   mulqi t1, t9, 17
        stq t1, 0(gp)
        ldq t2, 0(gp)
        addq s1, s1, t2
        subqi t9, t9, 1
        bne t9, loop
        syscall 1, s1
        halt
    )";
    expectMatchesEmulator(src, reducedRsParams(baselineParams()));
    expectMatchesEmulator(src, reducedIssueParams(baselineParams()));
    expectMatchesEmulator(
        src, reducedRsParams(reducedIssueParams(baselineParams())));
}

TEST(CorePipeline, ChtLearnsCollisions)
{
    // Same directed violation program as above; after training, the
    // violation count must stop growing linearly (the CHT stalls the
    // load instead).
    Program &p = keep(assembleTextOrDie(R"(
        .data
cell:   .quad 1
        .text
        addqi t5, zero, 200
        addqi s1, zero, 0
        addqi t4, zero, cell
loop:   mulqi t0, t5, 3
        andi t0, t0, 0
        addq t0, t0, t4
        stq t5, 0(t0)
        ldq t1, cell(zero)
        addq s1, s1, t1
        subqi t5, t5, 1
        bne t5, loop
        halt
    )",
                                        "cht"));
    Core c(p, baselineParams());
    c.run();
    EXPECT_TRUE(c.halted());
    EXPECT_GT(c.stats().memOrderViolations, 0u);
    // 200 iterations but far fewer violations: the predictor kicked in.
    EXPECT_LT(c.stats().memOrderViolations, 50u);
}

TEST(CorePipeline, WatchdogFiresOnLivelock)
{
    // A program that never halts within the cycle limit simply stops at
    // the limit (the watchdog only fires on zero retirement progress,
    // which correct programs never exhibit).
    Program &p = keep(assembleTextOrDie(R"(
loop:   addqi t0, t0, 1
        br loop
    )",
                                        "inf"));
    Core c(p, baselineParams());
    c.run(~u64(0), 20000);
    EXPECT_FALSE(c.halted());
    EXPECT_GT(c.stats().retired, 1000u);
}

// ---- DynInst pool / handle machinery ----

TEST(DynInstPool, ExhaustionGrowsAndRecycles)
{
    DynInstPool pool(8); // one pre-sized slab's worth
    const size_t cap0 = pool.capacity();
    std::vector<InstHandle> held;
    // Exhaust the initial capacity and keep going: the pool must grow
    // by whole slabs rather than fail.
    for (size_t i = 0; i < cap0 + 3 * DynInstPool::slabInsts; ++i) {
        const InstHandle h = pool.alloc();
        pool.get(h).seq = InstSeqNum(i + 1);
        held.push_back(h);
    }
    EXPECT_GT(pool.capacity(), cap0);
    EXPECT_EQ(pool.inUse(), held.size());
    // All handles are distinct live records.
    for (size_t i = 0; i < held.size(); ++i)
        EXPECT_EQ(pool.get(held[i]).seq, InstSeqNum(i + 1));

    // Release everything; re-allocation recycles without growth.
    const size_t cap1 = pool.capacity();
    for (InstHandle h : held)
        pool.release(h);
    EXPECT_EQ(pool.inUse(), 0u);
    for (size_t i = 0; i < cap1; ++i) {
        const InstHandle h = pool.alloc();
        // Recycled records come back fully reset.
        EXPECT_EQ(pool.get(h).seq, 0u);
        EXPECT_FALSE(pool.get(h).renamed);
        EXPECT_EQ(pool.get(h).pdest, invalidPhysReg);
        EXPECT_EQ(pool.get(h).selfHandle, h);
    }
    EXPECT_EQ(pool.capacity(), cap1); // no growth needed
}

TEST(DynInstPool, ReleaseInvalidatesStaleRefs)
{
    DynInstPool pool(4);
    const InstHandle h = pool.alloc();
    pool.get(h).seq = 42;
    // A (handle, seq) pair held by an event queue validates while the
    // record is live...
    EXPECT_EQ(pool.get(h).seq, 42u);
    pool.release(h);
    // ...and must fail validation immediately after release, before
    // the slot is ever reused (squash correctness depends on this).
    EXPECT_NE(pool.get(h).seq, 42u);
}

TEST(DynInstPool, HandleStabilityAcrossGrowth)
{
    // Growing the pool appends slabs; records reachable through old
    // handles must not move (raw pointers stay valid).
    DynInstPool pool(1);
    const InstHandle h = pool.alloc();
    DynInst *before = &pool.get(h);
    before->pc = 1234;
    std::vector<InstHandle> more;
    for (unsigned i = 0; i < 5 * DynInstPool::slabInsts; ++i)
        more.push_back(pool.alloc());
    EXPECT_EQ(&pool.get(h), before);
    EXPECT_EQ(pool.get(h).pc, 1234u);
}

TEST(CorePipeline, PoolStableAcrossHeavySquashing)
{
    // A branchy, misprediction-heavy program at a tiny ROB: every
    // squash releases and recycles pool records; architectural results
    // must still match the emulator exactly (handle-validation bugs
    // show up as DIVA panics or wrong outputs here).
    CoreParams cp = baselineParams();
    cp.robSize = 12;
    cp.rsSize = 6;
    cp.fetchQueueSize = 4;
    expectMatchesEmulator(R"(
        addqi t9, zero, 1500
        addqi t0, zero, 0x9e3779b9
        addqi s1, zero, 0
loop:   mulqi t0, t0, 25214903
        addqi t0, t0, 11
        srli t1, t0, 13
        andi t1, t1, 1
        beq t1, skip
        addqi s1, s1, 3
        br join
skip:   subqi s1, s1, 1
join:   subqi t9, t9, 1
        bne t9, loop
        syscall 1, s1
        halt
    )",
                          cp);
}
