/**
 * @file
 * Unit tests for the base library: bit utilities, deterministic RNG,
 * saturating counters, histograms and the statistics registry.
 */

#include <gtest/gtest.h>

#include "base/bitutil.hh"
#include "base/histogram.hh"
#include "base/rng.hh"
#include "base/sat_counter.hh"
#include "base/stats.hh"

using namespace rix;

TEST(BitUtil, Mask)
{
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(1), 1u);
    EXPECT_EQ(mask(8), 0xffu);
    EXPECT_EQ(mask(63), 0x7fffffffffffffffull);
    EXPECT_EQ(mask(64), ~u64(0));
}

TEST(BitUtil, Bits)
{
    EXPECT_EQ(bits(0xdeadbeef, 15, 8), 0xbeu);
    EXPECT_EQ(bits(0xff00, 15, 8), 0xffu);
    EXPECT_EQ(bits(0xff00, 7, 0), 0u);
    EXPECT_EQ(bits(~u64(0), 63, 0), ~u64(0));
}

TEST(BitUtil, SignExtend)
{
    EXPECT_EQ(sext(0xff, 8), -1);
    EXPECT_EQ(sext(0x7f, 8), 127);
    EXPECT_EQ(sext(0x80, 8), -128);
    EXPECT_EQ(sext(0xffff, 16), -1);
    EXPECT_EQ(sext(0, 16), 0);
}

TEST(BitUtil, Log2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1025), 11u);
}

TEST(BitUtil, Pow2AndAlign)
{
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(4096));
    EXPECT_FALSE(isPow2(0));
    EXPECT_FALSE(isPow2(3));
    EXPECT_EQ(alignDown(0x1234, 16), 0x1230u);
    EXPECT_EQ(alignUp(0x1234, 16), 0x1240u);
    EXPECT_EQ(alignUp(0x1240, 16), 0x1240u);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BelowInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    bool lo = false, hi = false;
    for (int i = 0; i < 20000; ++i) {
        s64 v = r.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        lo |= v == -3;
        hi |= v == 3;
    }
    EXPECT_TRUE(lo);
    EXPECT_TRUE(hi);
}

TEST(Rng, ChanceRoughlyCalibrated)
{
    Rng r(11);
    int hits = 0;
    for (int i = 0; i < 100000; ++i)
        hits += r.chance(250);
    EXPECT_NEAR(hits / 100000.0, 0.25, 0.02);
}

TEST(SatCounter, SaturatesHigh)
{
    SatCounter c(2, 0);
    for (int i = 0; i < 10; ++i)
        c.increment();
    EXPECT_EQ(c.value(), 3);
    EXPECT_TRUE(c.predictTaken());
    EXPECT_TRUE(c.saturated());
}

TEST(SatCounter, SaturatesLow)
{
    SatCounter c(2, 3);
    for (int i = 0; i < 10; ++i)
        c.decrement();
    EXPECT_EQ(c.value(), 0);
    EXPECT_FALSE(c.predictTaken());
    EXPECT_TRUE(c.saturated());
}

TEST(SatCounter, Threshold)
{
    SatCounter c(2, 1);
    EXPECT_FALSE(c.predictTaken()); // 1 of max 3
    c.increment();
    EXPECT_TRUE(c.predictTaken()); // 2 of max 3
}

TEST(SatCounter, TrainFollowsDirection)
{
    SatCounter c(3, 4);
    c.train(true);
    EXPECT_EQ(c.value(), 5);
    c.train(false);
    c.train(false);
    EXPECT_EQ(c.value(), 3);
}

TEST(Histogram, Bucketing)
{
    Histogram h({4, 16, 64});
    h.sample(1);
    h.sample(4);
    h.sample(5);
    h.sample(64);
    h.sample(65);
    EXPECT_EQ(h.bucketCount(0), 2u); // <=4
    EXPECT_EQ(h.bucketCount(1), 1u); // <=16
    EXPECT_EQ(h.bucketCount(2), 1u); // <=64
    EXPECT_EQ(h.bucketCount(3), 1u); // overflow
    EXPECT_EQ(h.totalSamples(), 5u);
}

TEST(Histogram, CumulativeAndMean)
{
    Histogram h({10, 100});
    h.sample(5, 3);
    h.sample(50);
    EXPECT_DOUBLE_EQ(h.cumulativeFraction(0), 0.75);
    EXPECT_DOUBLE_EQ(h.cumulativeFraction(1), 1.0);
    EXPECT_DOUBLE_EQ(h.mean(), (5.0 * 3 + 50) / 4);
    h.reset();
    EXPECT_EQ(h.totalSamples(), 0u);
}

TEST(Stats, StatSetBasics)
{
    StatSet s;
    s.set("a", 1.5);
    s.add("a", 0.5);
    EXPECT_TRUE(s.has("a"));
    EXPECT_FALSE(s.has("b"));
    EXPECT_DOUBLE_EQ(s.get("a"), 2.0);
    EXPECT_DOUBLE_EQ(s.get("b", -1.0), -1.0);
    EXPECT_NE(s.format().find("a = 2"), std::string::npos);
}

TEST(Stats, Means)
{
    EXPECT_DOUBLE_EQ(arithMean({1, 2, 3}), 2.0);
    EXPECT_DOUBLE_EQ(geoMean({1, 4}), 2.0);
    EXPECT_DOUBLE_EQ(arithMean({}), 0.0);
    EXPECT_DOUBLE_EQ(geoMean({}), 0.0);
}

TEST(Counter, IncrementForms)
{
    Counter c;
    ++c;
    c++;
    c += 3;
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}
