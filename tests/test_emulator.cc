/**
 * @file
 * Functional emulator tests: per-opcode ALU semantics, memory access,
 * control flow (calls, returns, indirect jumps), syscalls, the
 * preview/commit split used by the DIVA checker, and sparse memory.
 */

#include <cstring>
#include <gtest/gtest.h>

#include "assembler/builder.hh"
#include "assembler/parser.hh"
#include "emu/emulator.hh"

using namespace rix;

namespace
{

/** Run a text program to halt and return the emulator. */
Emulator
runAsm(const std::string &src)
{
    static std::vector<std::unique_ptr<Program>> keep;
    keep.push_back(
        std::make_unique<Program>(assembleTextOrDie(src, "t")));
    Emulator e(*keep.back());
    e.run(1'000'000);
    return e;
}

} // namespace

struct AluCase
{
    const char *expr;
    u64 a, b;
    u64 expected;
};

class AluSemantics : public ::testing::TestWithParam<AluCase>
{
};

TEST_P(AluSemantics, Computes)
{
    const AluCase &c = GetParam();
    Instruction i = makeRR(opFromName(c.expr), 3, 1, 2);
    EXPECT_EQ(aluCompute(i, c.a, c.b), c.expected) << c.expr;
}

INSTANTIATE_TEST_SUITE_P(
    Ops, AluSemantics,
    ::testing::Values(
        AluCase{"addq", 5, 3, 8}, AluCase{"subq", 5, 3, 2},
        AluCase{"subq", 3, 5, u64(-2)}, AluCase{"and", 0xf0f, 0xff, 0x0f},
        AluCase{"bis", 0xf00, 0x0f, 0xf0f},
        AluCase{"xor", 0xff, 0x0f, 0xf0}, AluCase{"sll", 1, 12, 4096},
        AluCase{"sll", 1, 64 + 3, 8}, // shift amount masked to 6 bits
        AluCase{"srl", u64(-1), 60, 15},
        AluCase{"sra", u64(-16), 2, u64(-4)},
        AluCase{"cmpeq", 4, 4, 1}, AluCase{"cmpeq", 4, 5, 0},
        AluCase{"cmplt", u64(-1), 0, 1}, AluCase{"cmplt", 0, u64(-1), 0},
        AluCase{"cmple", 3, 3, 1},
        AluCase{"mulq", 7, 6, 42},
        AluCase{"divq", 42, 6, 7},
        AluCase{"divq", 42, 0, 0},        // divide-by-zero guarded
        AluCase{"divq", u64(-42), 6, u64(-7)},
        AluCase{"fadd", 10, 20, 30}));

TEST(AluImmediates, Semantics)
{
    EXPECT_EQ(aluCompute(makeRI(Opcode::ADDQI, 3, 1, -5), 10, 0), 5u);
    EXPECT_EQ(aluCompute(makeRI(Opcode::SUBQI, 3, 1, 3), 10, 0), 7u);
    EXPECT_EQ(aluCompute(makeRI(Opcode::LDA, 3, 1, 16), 100, 0), 116u);
    EXPECT_EQ(aluCompute(makeRI(Opcode::SLLI, 3, 1, 4), 2, 0), 32u);
    EXPECT_EQ(aluCompute(makeRI(Opcode::CMPLTI, 3, 1, 5), 4, 0), 1u);
    EXPECT_EQ(aluCompute(makeRI(Opcode::MULQI, 3, 1, 9), 9, 0), 81u);
}

TEST(BranchCond, AllConditions)
{
    auto taken = [](Opcode op, s64 v) {
        return branchTaken(makeBranch(op, 1, 0), u64(v));
    };
    EXPECT_TRUE(taken(Opcode::BEQ, 0));
    EXPECT_FALSE(taken(Opcode::BEQ, 1));
    EXPECT_TRUE(taken(Opcode::BNE, -1));
    EXPECT_TRUE(taken(Opcode::BLT, -1));
    EXPECT_FALSE(taken(Opcode::BLT, 0));
    EXPECT_TRUE(taken(Opcode::BGE, 0));
    EXPECT_TRUE(taken(Opcode::BGT, 1));
    EXPECT_FALSE(taken(Opcode::BGT, 0));
    EXPECT_TRUE(taken(Opcode::BLE, 0));
    EXPECT_TRUE(taken(Opcode::BLE, -5));
}

TEST(Emulator, CountedLoop)
{
    Emulator e = runAsm(R"(
        addqi t0, zero, 5
        addqi t1, zero, 0
loop:   addq t1, t1, t0
        subqi t0, t0, 1
        bne t0, loop
        halt
    )");
    EXPECT_TRUE(e.halted());
    EXPECT_EQ(e.reg(2), 15u); // 5+4+3+2+1
}

TEST(Emulator, LoadStoreRoundTrip)
{
    Emulator e = runAsm(R"(
        .data
buf:    .space 64
        .text
        addqi t0, zero, 0x1234
        stq t0, buf(zero)
        ldq t1, buf(zero)
        stl t0, 16(gp)
        ldl t2, 16(gp)
        halt
    )");
    EXPECT_EQ(e.reg(2), 0x1234u);
    EXPECT_EQ(e.reg(3), 0x1234u);
}

TEST(Emulator, LdlSignExtends)
{
    Emulator e = runAsm(R"(
        .data
x:      .quad 0xffffffff
        .text
        ldl t0, x(zero)
        ldq t1, x(zero)
        halt
    )");
    EXPECT_EQ(e.reg(1), ~u64(0)); // sign-extended -1
    EXPECT_EQ(e.reg(2), 0xffffffffu);
}

TEST(Emulator, CallAndReturn)
{
    Emulator e = runAsm(R"(
f:      addqi v0, a0, 100
        ret
main:   addqi a0, zero, 5
        jsr f
        halt
        .entry main
    )");
    EXPECT_EQ(e.reg(0), 105u);
    EXPECT_EQ(e.reg(regRa), 4u); // return address after jsr
}

TEST(Emulator, IndirectJump)
{
    Emulator e = runAsm(R"(
main:   addqi t0, zero, 4
        jmp t0
        addqi t1, zero, 1  # skipped
        halt
target: addqi t1, zero, 2
        halt
        .entry main
    )");
    // jmp goes to slot 4 (label target is the 5th line = index 4).
    EXPECT_EQ(e.reg(2), 2u);
}

TEST(Emulator, StackConventionInitialized)
{
    Builder b("t");
    b.mv(1, regSp);
    b.mv(2, regGp);
    b.halt();
    Program p = b.finish();
    Emulator e(p);
    e.run(10);
    EXPECT_EQ(e.reg(1), p.stackBase);
    EXPECT_EQ(e.reg(2), p.dataBase);
}

TEST(Emulator, SyscallEmit)
{
    Emulator e = runAsm(R"(
        addqi t0, zero, 77
        syscall 1, t0
        addqi t0, zero, 88
        syscall 1, t0
        halt
    )");
    ASSERT_EQ(e.output().size(), 2u);
    EXPECT_EQ(e.output()[0], 77u);
    EXPECT_EQ(e.output()[1], 88u);
}

TEST(Emulator, ZeroRegisterImmutable)
{
    Emulator e = runAsm(R"(
        addqi zero, zero, 55
        addqi t0, zero, 1
        halt
    )");
    EXPECT_EQ(e.reg(regZero), 0u);
    EXPECT_EQ(e.reg(1), 1u);
}

TEST(Emulator, HaltStopsExecution)
{
    Emulator e = runAsm("halt\naddqi t0, zero, 9");
    EXPECT_TRUE(e.halted());
    EXPECT_EQ(e.reg(1), 0u);
    EXPECT_EQ(e.instsExecuted(), 1u);
    // Stepping after halt is a no-op.
    StepResult r = e.step();
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(e.instsExecuted(), 1u);
}

TEST(Emulator, PreviewDoesNotMutate)
{
    Program p = assembleTextOrDie(R"(
        addqi t0, zero, 3
        stq t0, 0(gp)
        halt
    )");
    Emulator e(p);
    StepResult r1 = e.preview();
    StepResult r2 = e.preview();
    EXPECT_EQ(r1.destValue, r2.destValue);
    EXPECT_EQ(e.instsExecuted(), 0u);
    e.commit(r1);
    EXPECT_EQ(e.instsExecuted(), 1u);
    EXPECT_EQ(e.reg(1), 3u);
    // Preview of the store reports address and data without writing.
    StepResult st = e.preview();
    EXPECT_TRUE(st.isMemAccess);
    EXPECT_EQ(st.destValue, 3u);
    EXPECT_EQ(e.memory().read64(st.memAddr), 0u);
    e.commit(st);
    EXPECT_EQ(e.memory().read64(st.memAddr), 3u);
}

TEST(Emulator, ResetRestoresInitialState)
{
    Program p = assembleTextOrDie("addqi t0, zero, 5\nstq t0, 0(gp)\nhalt");
    Emulator e(p);
    e.run(10);
    EXPECT_TRUE(e.halted());
    e.reset();
    EXPECT_FALSE(e.halted());
    EXPECT_EQ(e.reg(1), 0u);
    EXPECT_EQ(e.memory().read64(p.dataBase), 0u);
}

TEST(Memory, SparseDefaultZero)
{
    Memory m;
    EXPECT_EQ(m.read64(0xdeadbeef000), 0u);
    EXPECT_EQ(m.numPages(), 0u);
}

TEST(Memory, ReadWriteSizes)
{
    Memory m;
    m.write(0x1000, 0x1122334455667788ull, 8);
    EXPECT_EQ(m.read(0x1000, 8), 0x1122334455667788ull);
    EXPECT_EQ(m.read(0x1000, 4), 0x55667788u);
    EXPECT_EQ(m.read(0x1000, 1), 0x88u);
    EXPECT_EQ(m.read(0x1004, 4), 0x11223344u);
    m.write8(0x1000, 0xff);
    EXPECT_EQ(m.read(0x1000, 2), 0x77ffu);
}

TEST(Memory, CrossPageAccess)
{
    Memory m;
    const Addr a = Memory::pageBytes - 4;
    m.write(a, 0xaabbccdd11223344ull, 8);
    EXPECT_EQ(m.read(a, 8), 0xaabbccdd11223344ull);
    EXPECT_EQ(m.numPages(), 2u);
}

TEST(Memory, ContentEquals)
{
    Memory a, b;
    a.write64(0x100, 7);
    EXPECT_FALSE(a.contentEquals(b));
    b.write64(0x100, 7);
    EXPECT_TRUE(a.contentEquals(b));
    // A touched-but-zero page equals an untouched one.
    a.write64(0x900000, 1);
    a.write64(0x900000, 0);
    EXPECT_TRUE(a.contentEquals(b));
}

TEST(Memory, WriteBlock)
{
    Memory m;
    m.writeBlock(0x2000, {1, 2, 3, 4});
    EXPECT_EQ(m.read(0x2000, 4), 0x04030201u);
}
