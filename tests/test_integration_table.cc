/**
 * @file
 * Integration-table tests: PC vs opcode indexing/tagging, input and
 * generation matching, LRU replacement, exact-duplicate overwrite,
 * branch-outcome handles, reverse entries in the unified table, and
 * index-distribution properties of the call-depth mix.
 */

#include <set>

#include <gtest/gtest.h>

#include "core/integration_table.hh"
#include "core/lisp.hh"

using namespace rix;

namespace
{

IntegrationParams
params(IntegrationMode mode, unsigned entries = 64, unsigned assoc = 4)
{
    IntegrationParams p;
    p.mode = mode;
    p.itEntries = entries;
    p.itAssoc = assoc;
    return p;
}

ITKey
key(Opcode op, s32 imm, PhysReg in1, u8 gen1, u64 pc = 0,
    unsigned depth = 0)
{
    ITKey k;
    k.op = op;
    k.imm = imm;
    k.pc = pc;
    k.callDepth = depth;
    k.hasIn1 = true;
    k.in1 = in1;
    k.gen1 = gen1;
    return k;
}

} // namespace

TEST(ItTable, InsertAndLookupOpcodeMode)
{
    IntegrationTable it(params(IntegrationMode::OpcodeIndexed));
    it.insert(key(Opcode::ADDQI, 8, 5, 1), true, 40, 2, false, false, 7);
    ITEntry *e = it.lookup(key(Opcode::ADDQI, 8, 5, 1));
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->out, 40);
    EXPECT_EQ(e->outGen, 2);
    EXPECT_EQ(e->createSeq, 7u);
}

TEST(ItTable, InputMismatchMisses)
{
    IntegrationTable it(params(IntegrationMode::OpcodeIndexed));
    it.insert(key(Opcode::ADDQI, 8, 5, 1), true, 40, 2, false, false, 0);
    EXPECT_EQ(it.lookup(key(Opcode::ADDQI, 8, 6, 1)), nullptr); // reg
    EXPECT_EQ(it.lookup(key(Opcode::ADDQI, 9, 5, 1)), nullptr); // imm
    EXPECT_EQ(it.lookup(key(Opcode::SUBQI, 8, 5, 1)), nullptr); // op
}

TEST(ItTable, GenerationMismatchMisses)
{
    IntegrationTable it(params(IntegrationMode::OpcodeIndexed));
    it.insert(key(Opcode::ADDQI, 8, 5, 1), true, 40, 2, false, false, 0);
    EXPECT_EQ(it.lookup(key(Opcode::ADDQI, 8, 5, 2)), nullptr);
}

TEST(ItTable, GenCheckingAblatable)
{
    IntegrationParams p = params(IntegrationMode::OpcodeIndexed);
    p.useGenCounters = false;
    IntegrationTable it(p);
    it.insert(key(Opcode::ADDQI, 8, 5, 1), true, 40, 2, false, false, 0);
    EXPECT_NE(it.lookup(key(Opcode::ADDQI, 8, 5, 9)), nullptr);
}

TEST(ItTable, PcModeTagsByPc)
{
    IntegrationTable it(params(IntegrationMode::General));
    it.insert(key(Opcode::ADDQI, 8, 5, 1, /*pc=*/100), true, 40, 2,
              false, false, 0);
    // Same operation at a different PC misses under PC indexing...
    EXPECT_EQ(it.lookup(key(Opcode::ADDQI, 8, 5, 1, 200)), nullptr);
    // ...and hits at the creating PC.
    EXPECT_NE(it.lookup(key(Opcode::ADDQI, 8, 5, 1, 100)), nullptr);
}

TEST(ItTable, OpcodeModeIgnoresPc)
{
    IntegrationTable it(params(IntegrationMode::OpcodeIndexed));
    it.insert(key(Opcode::ADDQI, 8, 5, 1, 100), true, 40, 2, false,
              false, 0);
    EXPECT_NE(it.lookup(key(Opcode::ADDQI, 8, 5, 1, 200)), nullptr);
}

TEST(ItTable, CallDepthChangesSetButNotTag)
{
    IntegrationTable it(params(IntegrationMode::OpcodeIndexed, 64, 1));
    ITKey k0 = key(Opcode::ADDQI, 8, 5, 1, 0, /*depth=*/0);
    ITKey k3 = key(Opcode::ADDQI, 8, 5, 1, 0, /*depth=*/3);
    // Different depths index different sets (the whole point of the
    // call-depth mix).
    EXPECT_NE(it.index(k0), it.index(k3));
    it.insert(k0, true, 40, 2, false, false, 0);
    EXPECT_EQ(it.lookup(k3), nullptr);
    EXPECT_NE(it.lookup(k0), nullptr);
}

TEST(ItTable, LruReplacementWithinSet)
{
    // Direct-mapped-by-construction: 4 entries, 4-way = one set.
    IntegrationTable it(params(IntegrationMode::OpcodeIndexed, 4, 4));
    for (int i = 0; i < 4; ++i)
        it.insert(key(Opcode::ADDQI, i, 5, 1), true, PhysReg(10 + i), 0,
                  false, false, u64(i));
    it.lookup(key(Opcode::ADDQI, 0, 5, 1)); // touch entry 0
    it.insert(key(Opcode::ADDQI, 9, 5, 1), true, 50, 0, false, false, 9);
    EXPECT_NE(it.lookup(key(Opcode::ADDQI, 0, 5, 1)), nullptr);
    EXPECT_EQ(it.lookup(key(Opcode::ADDQI, 1, 5, 1)), nullptr); // LRU out
    EXPECT_GE(it.replacements(), 1u);
}

TEST(ItTable, DuplicateInsertOverwrites)
{
    IntegrationTable it(params(IntegrationMode::OpcodeIndexed, 4, 4));
    it.insert(key(Opcode::ADDQI, 8, 5, 1), true, 40, 2, false, false, 1);
    it.insert(key(Opcode::ADDQI, 8, 5, 1), true, 41, 3, false, false, 2);
    ITEntry *e = it.lookup(key(Opcode::ADDQI, 8, 5, 1));
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->out, 41);
    // Only one way consumed: the other three still hold nothing.
    int valid = 0;
    for (int i = 0; i < 4; ++i)
        valid += it.lookup(key(Opcode::ADDQI, i + 100, 5, 1)) != nullptr;
    EXPECT_EQ(valid, 0);
}

TEST(ItTable, BranchOutcomeHandle)
{
    IntegrationTable it(params(IntegrationMode::OpcodeIndexed));
    ITKey k = key(Opcode::BEQ, 50, 5, 1);
    ITHandle h = it.insert(k, false, invalidPhysReg, 0, false, true, 0);
    ITEntry *e = it.lookup(k);
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(e->isBranch);
    EXPECT_FALSE(e->outcomeValid);
    it.fillBranchOutcome(h, true);
    e = it.lookup(k);
    EXPECT_TRUE(e->outcomeValid);
    EXPECT_TRUE(e->taken);
}

TEST(ItTable, StaleHandleIgnored)
{
    IntegrationTable it(params(IntegrationMode::OpcodeIndexed, 4, 4));
    ITKey k = key(Opcode::BEQ, 50, 5, 1);
    ITHandle h = it.insert(k, false, invalidPhysReg, 0, false, true, 0);
    // Evict by filling the (single) set with four other entries.
    for (int i = 0; i < 4; ++i)
        it.insert(key(Opcode::ADDQI, i, 5, 1), true, PhysReg(i), 0,
                  false, false, 0);
    it.fillBranchOutcome(h, true); // must not corrupt a reused slot
    EXPECT_EQ(it.at(h), nullptr);
}

TEST(ItTable, InvalidateByHandle)
{
    IntegrationTable it(params(IntegrationMode::OpcodeIndexed));
    ITKey k = key(Opcode::LDQ, 16, 30, 0);
    ITHandle h = it.insert(k, true, 77, 0, false, false, 0);
    EXPECT_NE(it.lookup(k), nullptr);
    it.invalidate(h);
    EXPECT_EQ(it.lookup(k), nullptr);
}

TEST(ItTable, ReverseEntriesCoexist)
{
    IntegrationTable it(params(IntegrationMode::Reverse));
    // A store creates the complementary load's entry.
    ITKey rk = key(Opcode::LDQ, 8, /*base sp preg*/ 31, 0);
    it.insert(rk, true, /*data preg*/ 20, 1, /*reverse=*/true, false, 5);
    ITEntry *e = it.lookup(rk);
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(e->reverse);
    EXPECT_EQ(e->out, 20);
}

TEST(ItTable, FullyAssociativeSingleSet)
{
    IntegrationTable it(params(IntegrationMode::OpcodeIndexed, 16, 16));
    EXPECT_EQ(it.numSets(), 1u);
    for (int i = 0; i < 16; ++i)
        it.insert(key(Opcode::ADDQI, i, 5, 1), true, PhysReg(i), 0,
                  false, false, 0);
    int found = 0;
    for (int i = 0; i < 16; ++i)
        found += it.lookup(key(Opcode::ADDQI, i, 5, 1)) != nullptr;
    EXPECT_EQ(found, 16);
}

TEST(ItTable, CallDepthIndexSpreadsDenseImmediates)
{
    // The motivation for the call-depth mix: dense stack-frame
    // immediates (0, 8, 16, ...) with one opcode must spread over more
    // sets when depths vary.
    IntegrationParams p = params(IntegrationMode::OpcodeIndexed, 256, 1);
    IntegrationTable with_cd(p);
    p.useCallDepthIndex = false;
    IntegrationTable without_cd(p);
    std::set<u32> s_with, s_without;
    for (unsigned d = 0; d < 8; ++d) {
        for (s32 imm = 0; imm < 32; imm += 8) {
            s_with.insert(with_cd.index(key(Opcode::LDQ, imm, 1, 0, 0, d)));
            s_without.insert(
                without_cd.index(key(Opcode::LDQ, imm, 1, 0, 0, d)));
        }
    }
    EXPECT_GT(s_with.size(), s_without.size());
}

TEST(LispTest, SuppressAfterTraining)
{
    Lisp lisp(64, 2);
    EXPECT_FALSE(lisp.suppress(123));
    lisp.trainMisintegration(123);
    EXPECT_TRUE(lisp.suppress(123));
    EXPECT_FALSE(lisp.suppress(124));
    EXPECT_EQ(lisp.trainings(), 1u);
    EXPECT_GE(lisp.suppressions(), 1u);
}

TEST(LispTest, OverbiasedNeverForgets)
{
    Lisp lisp(64, 2);
    lisp.trainMisintegration(5);
    for (int i = 0; i < 1000; ++i)
        EXPECT_TRUE(lisp.suppress(5));
}

TEST(LispTest, LruWithinSet)
{
    Lisp lisp(2, 2); // one set, two ways
    lisp.trainMisintegration(1);
    lisp.trainMisintegration(2);
    lisp.suppress(1); // touch
    lisp.trainMisintegration(3); // evicts 2
    EXPECT_TRUE(lisp.suppress(1));
    EXPECT_FALSE(lisp.suppress(2));
    EXPECT_TRUE(lisp.suppress(3));
}

TEST(LispTest, ResetClears)
{
    Lisp lisp(64, 2);
    lisp.trainMisintegration(9);
    lisp.reset();
    EXPECT_FALSE(lisp.suppress(9));
}
