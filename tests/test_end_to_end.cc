/**
 * @file
 * The repository's central property test (DESIGN.md invariant 1):
 * for every workload and every integration mode, the cycle-level core
 * must retire exactly the functional emulator's architectural state —
 * final registers, memory image, emitted output and instruction count.
 * DIVA guarantees this by construction; these tests prove the
 * guarantee holds through mispredictions, squashes, mis-integrations
 * and every reuse mechanism, on all 80 workload x mode combinations.
 */

#include <gtest/gtest.h>

#include "sim/simulator.hh"
#include "workload/workload.hh"

using namespace rix;

namespace
{

struct Combo
{
    std::string workload;
    IntegrationMode mode;
    LispMode lisp;
};

std::vector<Combo>
allCombos()
{
    std::vector<Combo> out;
    for (const auto &w : workloadNames()) {
        for (IntegrationMode m :
             {IntegrationMode::Off, IntegrationMode::Squash,
              IntegrationMode::General, IntegrationMode::OpcodeIndexed,
              IntegrationMode::Reverse})
            out.push_back({w, m, LispMode::Realistic});
        // Oracle suppression on the full mechanism as well.
        out.push_back({w, IntegrationMode::Reverse, LispMode::Oracle});
    }
    return out;
}

const Program &
cachedProgram(const std::string &name)
{
    static std::map<std::string, Program> cache;
    auto it = cache.find(name);
    if (it == cache.end())
        it = cache.emplace(name, buildWorkload(name, 1)).first;
    return it->second;
}

} // namespace

class EndToEnd : public ::testing::TestWithParam<Combo>
{
};

TEST_P(EndToEnd, ArchitecturalStateMatchesEmulator)
{
    const Combo &c = GetParam();
    CoreParams cp = integrationParams(c.mode, c.lisp);
    const std::string err =
        verifyAgainstEmulator(cachedProgram(c.workload), cp, 20'000'000,
                              100'000'000);
    EXPECT_EQ(err, "") << c.workload << " / "
                       << integrationModeName(c.mode) << " / "
                       << lispModeName(c.lisp);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloadsAllModes, EndToEnd, ::testing::ValuesIn(allCombos()),
    [](const ::testing::TestParamInfo<Combo> &info) {
        std::string n = info.param.workload;
        n += "_";
        n += integrationModeName(info.param.mode);
        n += "_";
        n += lispModeName(info.param.lisp);
        std::string out;
        for (char ch : n)
            out += (isalnum((unsigned char)ch) ? ch : '_');
        return out;
    });

TEST(EndToEndExtras, ReducedComplexityConfigsCorrect)
{
    // Figure 7 machine shapes with full integration: still exact.
    for (const char *w : {"crafty", "gzip", "vortex"}) {
        for (int shape = 0; shape < 3; ++shape) {
            CoreParams cp = integrationParams(IntegrationMode::Reverse);
            if (shape == 0)
                cp = reducedRsParams(cp);
            else if (shape == 1)
                cp = reducedIssueParams(cp);
            else
                cp = reducedRsParams(reducedIssueParams(cp));
            EXPECT_EQ(verifyAgainstEmulator(cachedProgram(w), cp,
                                            20'000'000, 100'000'000),
                      "")
                << w << " shape " << shape;
        }
    }
}

TEST(EndToEndExtras, TinyItAndFewRegsCorrect)
{
    // Pathologically small integration resources must only cost
    // performance, never correctness.
    CoreParams cp = integrationParams(IntegrationMode::Reverse);
    cp.integ.itEntries = 16;
    cp.integ.itAssoc = 1;
    cp.integ.numPhysRegs = 192;
    cp.integ.genBits = 1;
    cp.integ.refBits = 1;
    EXPECT_EQ(verifyAgainstEmulator(cachedProgram("crafty"), cp,
                                    20'000'000, 100'000'000),
              "");
}

TEST(EndToEndExtras, NoGenCountersStillCorrect)
{
    // Without generation counters register mis-integrations occur;
    // DIVA must clean all of them up.
    CoreParams cp = integrationParams(IntegrationMode::OpcodeIndexed);
    cp.integ.useGenCounters = false;
    EXPECT_EQ(verifyAgainstEmulator(cachedProgram("vortex"), cp,
                                    20'000'000, 100'000'000),
              "");
}

TEST(EndToEndExtras, PipelinedIntegrationCorrect)
{
    // Section 3.3 pipelined integration: delaying IT writes by 16
    // renamed instructions (a 4-stage pipeline on the 4-wide machine)
    // only loses reuse, never correctness; most integrations survive.
    CoreParams cp = integrationParams(IntegrationMode::Reverse);
    cp.integ.itWriteDelay = 16;
    EXPECT_EQ(verifyAgainstEmulator(cachedProgram("vortex"), cp,
                                    20'000'000, 100'000'000),
              "");

    CoreParams base = integrationParams(IntegrationMode::Reverse);
    Core c0(cachedProgram("vortex"), base);
    c0.run(20'000'000, 100'000'000);
    Core c1(cachedProgram("vortex"), cp);
    c1.run(20'000'000, 100'000'000);
    ASSERT_GT(c0.stats().integrated(), 0u);
    // The paper bounds the *direct/squash* loss near 20%. Reverse
    // integration suffers more here because the synthetic functions
    // are small (save->restore gaps below the write delay), so the
    // overall retention bound is looser.
    EXPECT_GT(double(c1.stats().integrated()),
              0.4 * double(c0.stats().integrated()));
    // Direct integration alone retains most of its rate.
    EXPECT_GT(double(c1.stats().integratedDirect),
              0.6 * double(c0.stats().integratedDirect));
}

TEST(EndToEndExtras, LispOffStillCorrect)
{
    // With no load suppression at all, every stale reload flushes; the
    // entry invalidation on mis-integration guarantees progress.
    CoreParams cp = integrationParams(IntegrationMode::Reverse,
                                      LispMode::Off);
    EXPECT_EQ(verifyAgainstEmulator(cachedProgram("twolf"), cp,
                                    20'000'000, 100'000'000),
              "");
}
