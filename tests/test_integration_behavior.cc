/**
 * @file
 * End-to-end behaviour of the three paper extensions on the live
 * pipeline: directed programs that must produce general reuse,
 * squash reuse, reverse integration (speculative memory bypassing),
 * load mis-integrations with LISP learning, and the Figure 2/3
 * dynamics — all while retiring architecturally correct state.
 */

#include <gtest/gtest.h>

#include "assembler/parser.hh"
#include "cpu/core.hh"
#include "sim/simulator.hh"

using namespace rix;

namespace
{

Program &
keep(Program p)
{
    static std::vector<std::unique_ptr<Program>> pool;
    pool.push_back(std::make_unique<Program>(std::move(p)));
    return *pool.back();
}

CoreStats
runMode(Program &p, IntegrationMode mode,
        LispMode lisp = LispMode::Realistic)
{
    // Correctness first: every mode must match the emulator.
    CoreParams cp = integrationParams(mode, lisp);
    EXPECT_EQ(verifyAgainstEmulator(p, cp, 2'000'000, 20'000'000), "");
    Core c(p, cp);
    c.run(2'000'000, 20'000'000);
    return c.stats();
}

} // namespace

TEST(IntegrationBehavior, GeneralReuseOnInvariantLoop)
{
    Program &p = keep(assembleTextOrDie(R"(
        addqi t9, zero, 2000
        addqi s1, zero, 0
loop:   addqi t1, gp, 64      # unhoisted invariant
        ldq t2, 0(t1)         # invariant load
        addq s1, s1, t2
        subqi t9, t9, 1
        bne t9, loop
        syscall 1, s1
        halt
    )",
                                        "inv"));
    const CoreStats squash = runMode(p, IntegrationMode::Squash);
    const CoreStats general = runMode(p, IntegrationMode::General);
    // Squash reuse cannot touch these (nothing squashes); general
    // reuse integrates the invariant pair almost every iteration.
    EXPECT_LT(squash.integrationRate(), 0.02);
    EXPECT_GT(general.integrationRate(), 0.25);
    EXPECT_GT(general.integByType[2][0], 1000u); // ALU direct
    EXPECT_GT(general.integByType[1][0], 1000u); // load direct
}

TEST(IntegrationBehavior, SquashReuseAfterMispredicts)
{
    // A 50/50 branch whose arms reconverge: wrong-path work past the
    // join point is squashed and then re-fetched — squash reuse.
    Program &p = keep(assembleTextOrDie(R"(
        addqi t9, zero, 4000
        addqi t0, zero, 0x12345
        addqi s1, zero, 0
loop:   mulqi t0, t0, 25214903
        addqi t0, t0, 11
        srli t1, t0, 17
        andi t1, t1, 1
        beq t1, skip
        addqi s1, s1, 1
skip:   addqi t3, gp, 8       # reconvergent, reusable work
        ldq t4, 0(t3)
        xor s1, s1, t4
        subqi t9, t9, 1
        bne t9, loop
        syscall 1, s1
        halt
    )",
                                        "sq"));
    const CoreStats off = runMode(p, IntegrationMode::Off);
    const CoreStats squash = runMode(p, IntegrationMode::Squash);
    EXPECT_GT(off.branchMispredicts, 500u);
    EXPECT_GT(squash.integrated(), 200u);
    // Squash reuse only reuses squash-freed registers.
    EXPECT_GT(squash.integByStatus[3][0], 0u); // shadow/squash status
}

TEST(IntegrationBehavior, ReverseIntegrationBypassesSaveRestore)
{
    Program &p = keep(assembleTextOrDie(R"(
leaf:   lda sp, -24(sp)
        stq ra, 0(sp)
        stq s0, 8(sp)
        stq s1, 16(sp)
        addq v0, a0, s0
        addqi s0, a0, 1       # overwrite s0/s1 in the body
        addqi s1, a0, 2
        addqi t8, zero, 30    # long body: the saves retire meanwhile
body:   mulqi v0, v0, 3
        srli v0, v0, 1
        subqi t8, t8, 1
        bne t8, body
        ldq s1, 16(sp)        # restores: reverse-integration targets
        ldq s0, 8(sp)
        ldq ra, 0(sp)
        lda sp, 24(sp)
        ret
main:   addqi s0, zero, 5
        addqi s1, zero, 6
        addqi t9, zero, 1500
        addqi s2, zero, 0
loop:   mv a0, t9
        jsr leaf
        addq s2, s2, v0
        subqi t9, t9, 1
        bne t9, loop
        syscall 1, s2
        halt
        .entry main
    )",
                                        "rev"));
    const CoreStats opcode = runMode(p, IntegrationMode::OpcodeIndexed);
    const CoreStats reverse = runMode(p, IntegrationMode::Reverse);
    EXPECT_EQ(opcode.integratedReverse, 0u);
    // Per call: 3 fills + 1 sp-increment are reverse-integrable.
    EXPECT_GT(reverse.integratedReverse, 4000u);
    // Stack loads dominate the reverse stream (Figure 5 Type).
    EXPECT_GT(reverse.integByType[0][1], 2500u);
    // Most reverse integrations happen after the creating store
    // retired (Figure 5 Status: bottom striped portions).
    EXPECT_GT(reverse.integByStatus[2][1] + reverse.integByStatus[3][1],
              reverse.integByStatus[0][1] + reverse.integByStatus[1][1]);
}

TEST(IntegrationBehavior, SquashModeLacksGeneralReuse)
{
    // The ownership discipline: with only squash reuse, an actively
    // mapped register is never shared (refcount stays <= 1).
    Program &p = keep(assembleTextOrDie(R"(
        addqi t9, zero, 1000
loop:   addqi t1, gp, 64
        addqi t2, gp, 64     # same value computed at another PC
        addq t3, t1, t2
        xor s1, s1, t3
        subqi t9, t9, 1
        bne t9, loop
        syscall 1, s1
        halt
    )",
                                        "own"));
    const CoreStats squash = runMode(p, IntegrationMode::Squash);
    for (int r = 0; r < 2; ++r)
        for (int b = 1; b < 4; ++b)
            EXPECT_EQ(squash.integByRefcount[b][r], 0u)
                << "refcount bucket " << b;
}

TEST(IntegrationBehavior, OpcodeIndexingEnablesCrossPcReuse)
{
    // Two static instructions computing the same value from the same
    // register: PC indexing keeps them apart, opcode indexing shares.
    Program &p = keep(assembleTextOrDie(R"(
        addqi t9, zero, 1500
        addqi s1, zero, 0
loop:   addqi t1, gp, 128
        ldq t2, 0(t1)
        addqi t3, gp, 128    # duplicate site
        ldq t4, 0(t3)
        addq s1, s1, t2
        addq s1, s1, t4
        subqi t9, t9, 1
        bne t9, loop
        syscall 1, s1
        halt
    )",
                                        "dup"));
    const CoreStats general = runMode(p, IntegrationMode::General);
    const CoreStats opcode = runMode(p, IntegrationMode::OpcodeIndexed);
    EXPECT_GT(opcode.integrated(), general.integrated());
}

TEST(IntegrationBehavior, LoadMisintegrationAndLispLearning)
{
    // A spill slot updated every iteration: its reload's IT entry is
    // stale by the time it is reused -> load mis-integration; the LISP
    // then suppresses that load for good.
    Program &p = keep(assembleTextOrDie(R"(
        lda sp, -16(sp)
        addqi t0, zero, 0
        stq t0, 8(sp)
        addqi t9, zero, 800
        addqi s1, zero, 0
loop:   ldq t1, 8(sp)        # reload (mis-integration source)
        addqi t1, t1, 1
        stq t1, 8(sp)        # update invalidates the reuse
        addq s1, s1, t1
        subqi t9, t9, 1
        bne t9, loop
        lda sp, 16(sp)
        syscall 1, s1
        halt
    )",
                                        "mis"));
    const CoreStats gen = runMode(p, IntegrationMode::General);
    EXPECT_GT(gen.misintLoads, 0u);
    // Overbiased LISP: one or two flushes, then suppression forever.
    EXPECT_LT(gen.misintLoads, 10u);

    // Reverse integration flips the story: the store's reverse entry
    // provides the *current* data register, so the reload integrates
    // correctly (speculative memory bypassing of the spill slot).
    const CoreStats rev = runMode(p, IntegrationMode::Reverse);
    EXPECT_GT(rev.integratedReverse, 300u);
}

TEST(IntegrationBehavior, IntegratedBranchResolvesEarly)
{
    // A branch whose outcome is reusable (same condition register):
    // integration resolves it at rename, cutting resolution latency.
    Program &p = keep(assembleTextOrDie(R"(
        addqi t9, zero, 3000
        addqi t0, zero, 0x5a5a
        addqi s1, zero, 0
loop:   mulqi t0, t0, 69069
        addqi t0, t0, 5
        srli t1, t0, 13
        andi t1, t1, 1
        beq t1, a
        addqi s1, s1, 2
        br join
a:      addqi s1, s1, 1
join:   beq t1, b             # same condition: outcome reusable
        addqi s1, s1, 4
b:      subqi t9, t9, 1
        bne t9, loop
        syscall 1, s1
        halt
    )",
                                        "brx"));
    const CoreStats off = runMode(p, IntegrationMode::Off);
    const CoreStats gen = runMode(p, IntegrationMode::General);
    EXPECT_GT(gen.integByType[3][0], 500u); // integrated branches
    EXPECT_LE(gen.avgMispredResolveLat(), off.avgMispredResolveLat());
}

TEST(IntegrationBehavior, OracleSuppressionBeatsRealistic)
{
    Program &p = keep(assembleTextOrDie(R"(
        lda sp, -16(sp)
        addqi t0, zero, 0
        stq t0, 8(sp)
        addqi t9, zero, 600
loop:   ldq t1, 8(sp)
        addqi t1, t1, 3
        stq t1, 8(sp)
        xor s1, s1, t1
        subqi t9, t9, 1
        bne t9, loop
        lda sp, 16(sp)
        syscall 1, s1
        halt
    )",
                                        "orc"));
    const CoreStats real =
        runMode(p, IntegrationMode::General, LispMode::Realistic);
    const CoreStats oracle =
        runMode(p, IntegrationMode::General, LispMode::Oracle);
    EXPECT_LE(oracle.misintegrations, real.misintegrations);
    EXPECT_GT(oracle.oracleSuppressions, 0u);
}

TEST(IntegrationBehavior, RegisterFileNeverLeaks)
{
    Program &p = keep(assembleTextOrDie(R"(
        addqi t9, zero, 2500
        addqi t0, zero, 0x777
loop:   mulqi t0, t0, 1664525
        addqi t0, t0, 1013904223
        srli t1, t0, 20
        andi t1, t1, 1
        beq t1, s
        addqi s1, s1, 1
s:      addqi t2, gp, 32
        ldq t3, 0(t2)
        xor s1, s1, t3
        subqi t9, t9, 1
        bne t9, loop
        halt
    )",
                                        "leak"));
    CoreParams cp = integrationParams(IntegrationMode::Reverse);
    Core c(p, cp);
    c.run(2'000'000, 20'000'000);
    ASSERT_TRUE(c.halted());
    EXPECT_TRUE(c.regStateVector().checkNoLeaks());
    // After everything retires only the architectural mappings remain.
    unsigned live = 0;
    for (PhysReg r = 0; r < c.regStateVector().numRegs(); ++r)
        if (c.regStateVector().count(r) > 0)
            ++live;
    EXPECT_LE(live, numLogRegs + 1);
}

TEST(IntegrationBehavior, IntegrationReducesExecutedInstructions)
{
    Program &p = keep(assembleTextOrDie(R"(
        addqi t9, zero, 2000
loop:   addqi t1, gp, 64
        ldq t2, 0(t1)
        addqi t3, gp, 72
        ldq t4, 0(t3)
        addq s1, s1, t2
        xor s1, s1, t4
        subqi t9, t9, 1
        bne t9, loop
        halt
    )",
                                        "exec"));
    const CoreStats off = runMode(p, IntegrationMode::Off);
    const CoreStats rev = runMode(p, IntegrationMode::Reverse);
    EXPECT_LT(rev.issued, off.issued);
    EXPECT_LT(rev.issuedLoads, off.issuedLoads);
    EXPECT_LE(rev.avgRsOccupancy(), off.avgRsOccupancy() + 0.01);
}
