/**
 * @file
 * Memory-system timing-model tests: bus occupancy, cache hit/miss/LRU/
 * MSHR behaviour, hit-under-fill, writebacks, TLB, write buffer, and
 * the composed three-level hierarchy (including the MLP property: N
 * independent misses overlap instead of serializing).
 */

#include <gtest/gtest.h>

#include "emu/memory.hh"
#include "mem/bus.hh"
#include "mem/cache.hh"
#include "mem/hierarchy.hh"
#include "mem/tlb.hh"
#include "mem/write_buffer.hh"

using namespace rix;

TEST(Bus, TransferCycles)
{
    Bus b(32, 1);
    EXPECT_EQ(b.transferCycles(32), 1u);
    EXPECT_EQ(b.transferCycles(33), 2u);
    EXPECT_EQ(b.transferCycles(64), 2u);
    Bus quarter(32, 4);
    EXPECT_EQ(quarter.transferCycles(64), 8u);
}

TEST(Bus, SerializesOverlappingTransfers)
{
    Bus b(32, 1);
    EXPECT_EQ(b.transfer(10, 64), 12u);
    EXPECT_EQ(b.transfer(10, 64), 14u); // waits for the first
    EXPECT_EQ(b.transfer(100, 32), 101u); // idle gap
    EXPECT_EQ(b.transfers(), 3u);
}

namespace
{

CacheParams
tinyCache()
{
    CacheParams p;
    p.name = "tiny";
    p.sizeBytes = 256; // 4 sets x 2 ways x 32B
    p.lineBytes = 32;
    p.assoc = 2;
    p.hitLatency = 2;
    p.numMshrs = 2;
    return p;
}

Cache::MissHandler
fixedMiss(Cycle lat)
{
    return [lat](Addr, Cycle now) { return now + lat; };
}

} // namespace

TEST(CacheTest, HitAfterFill)
{
    Cache c(tinyCache());
    auto r1 = c.access(0x1000, false, 0, fixedMiss(50));
    EXPECT_FALSE(r1.hit);
    EXPECT_GE(r1.ready, 50u);
    auto r2 = c.access(0x1008, false, 100, fixedMiss(50));
    EXPECT_TRUE(r2.hit); // same line
    EXPECT_EQ(r2.ready, 102u);
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(CacheTest, HitUnderFillDelaysToFill)
{
    Cache c(tinyCache());
    auto r1 = c.access(0x1000, false, 0, fixedMiss(100));
    auto r2 = c.access(0x1000, false, 10, fixedMiss(100));
    EXPECT_TRUE(r2.hit);
    EXPECT_GE(r2.ready, r1.ready); // cannot beat the fill
}

TEST(CacheTest, MshrMergesSameLine)
{
    Cache c(tinyCache());
    // Two accesses to the same line while the miss is outstanding:
    // the second merges instead of allocating a second MSHR. Use
    // distinct addresses within the line so the tag was inserted by
    // the first access... the tag IS inserted eagerly, so probe the
    // merge path via a different line mapping to the same set.
    c.access(0x1000, false, 0, fixedMiss(100));
    EXPECT_EQ(c.mshrMerges(), 0u);
    // Fill a second way, then a third line evicts; while the victim's
    // fill is outstanding a re-access to the *same* missing line that
    // was just evicted merges in the MSHR.
    c.access(0x2000, false, 1, fixedMiss(100)); // same set, way 2
    c.access(0x3000, false, 2, fixedMiss(100)); // evicts 0x1000's line
    c.access(0x1000, false, 3, fixedMiss(100)); // evicts 0x2000's line
    auto merged = c.access(0x3000, false, 4, fixedMiss(100));
    (void)merged;
    EXPECT_GE(c.mshrMerges() + c.hits(), 1u);
}

TEST(CacheTest, LruVictimSelection)
{
    Cache c(tinyCache());
    c.access(0x1000, false, 0, fixedMiss(1));
    c.access(0x2000, false, 10, fixedMiss(1)); // same set
    c.access(0x1000, false, 20, fixedMiss(1)); // touch first again
    c.access(0x3000, false, 30, fixedMiss(1)); // evicts 0x2000 (LRU)
    EXPECT_TRUE(c.probe(0x1000));
    EXPECT_FALSE(c.probe(0x2000));
    EXPECT_TRUE(c.probe(0x3000));
}

TEST(CacheTest, DirtyEvictionWritesBack)
{
    Cache c(tinyCache());
    int writebacks = 0;
    auto wb = [&](Addr, Cycle) { ++writebacks; };
    c.access(0x1000, true, 0, fixedMiss(1), wb);
    c.access(0x2000, false, 10, fixedMiss(1), wb);
    c.access(0x3000, false, 20, fixedMiss(1), wb); // evicts dirty 0x1000
    EXPECT_EQ(writebacks, 1);
    EXPECT_EQ(c.writebacks(), 1u);
}

TEST(CacheTest, MshrExhaustionDelays)
{
    Cache c(tinyCache()); // 2 MSHRs
    c.access(0x1000, false, 0, fixedMiss(100));
    c.access(0x2000, false, 0, fixedMiss(100));
    auto r = c.access(0x8000, false, 0, fixedMiss(100));
    EXPECT_GE(r.ready, 100u); // had to wait for an MSHR
    EXPECT_GT(c.mshrStallCycles(), 0u);
}

TEST(TlbTest, HitMissAndFill)
{
    Tlb t({4, 2, 8192, 30});
    EXPECT_EQ(t.access(0x0), 30u);
    EXPECT_EQ(t.access(0x100), 0u); // same page
    EXPECT_EQ(t.access(0x2000), 30u);
    EXPECT_EQ(t.misses(), 2u);
    EXPECT_EQ(t.hits(), 1u);
    EXPECT_TRUE(t.probe(0x0));
    t.flush();
    EXPECT_FALSE(t.probe(0x0));
}

TEST(TlbTest, LruReplacement)
{
    Tlb t({2, 2, 8192, 30}); // 1 set, 2 ways
    t.access(0x0);
    t.access(0x2000);
    t.access(0x0);      // touch
    t.access(0x4000);   // evicts 0x2000
    EXPECT_TRUE(t.probe(0x0));
    EXPECT_FALSE(t.probe(0x2000));
}

TEST(WriteBufferTest, CapacityAndDrain)
{
    WriteBuffer wb(2);
    EXPECT_FALSE(wb.full());
    wb.push(0x100, 5);
    wb.push(0x200, 5);
    EXPECT_TRUE(wb.full());
    int drained = 0;
    wb.tick(5, [&](Addr) { ++drained; });
    EXPECT_EQ(drained, 0); // same-cycle entries wait
    wb.tick(6, [&](Addr) { ++drained; });
    EXPECT_EQ(drained, 1);
    EXPECT_FALSE(wb.full());
    wb.tick(7, [&](Addr) { ++drained; });
    EXPECT_EQ(drained, 2);
    wb.tick(8, [&](Addr) { ++drained; });
    EXPECT_EQ(drained, 2); // empty
}

TEST(Hierarchy, HitLatencies)
{
    MemHierarchy h({});
    // First access misses everywhere.
    Cycle first = h.read(0x10000, 0);
    EXPECT_GT(first, 80u);
    // Second access to the same line is an L1 hit at +2.
    Cycle second = h.read(0x10008, 1000);
    EXPECT_EQ(second, 1002u);
}

TEST(Hierarchy, L2HitFasterThanMemory)
{
    MemHierarchyParams p;
    MemHierarchy h(p);
    h.read(0x20000, 0); // fill L1 + L2
    // Evict from tiny... instead access a different line in the same L2
    // line (64B): 0x20020 is a different L1 line but the same L2 line.
    Cycle t = h.read(0x20020, 1000);
    EXPECT_LT(t, 1000 + p.memLatency);
    EXPECT_GT(t, 1000 + p.l1d.hitLatency);
}

TEST(Hierarchy, TlbMissAddsLatency)
{
    MemHierarchyParams p;
    MemHierarchy h(p);
    h.read(0x40000, 0);
    Cycle hit = h.read(0x40000, 1000); // TLB + L1 hit
    // A fresh page but same L1 line cannot exist; use a new page and
    // compare against hit + miss penalty.
    Cycle t = h.read(0x40000 + 64 * 8192, 2000);
    EXPECT_GE(t - 2000, (hit - 1000) + p.dtlb.missLatency);
}

TEST(Hierarchy, IndependentMissesOverlap)
{
    // The MLP property: 8 misses to distinct lines issued back-to-back
    // must complete in far less than 8 serial memory latencies.
    MemHierarchyParams p;
    MemHierarchy h(p);
    Cycle last = 0;
    for (int i = 0; i < 8; ++i)
        last = std::max(last, h.read(0x100000 + u64(i) * 4096, Cycle(i)));
    EXPECT_LT(last, 2 * (p.memLatency + 30));
}

TEST(Hierarchy, IfetchUsesItlbAndL1i)
{
    MemHierarchyParams p;
    MemHierarchy h(p);
    h.ifetch(0x100, 0);
    EXPECT_EQ(h.itlb().misses(), 1u);
    EXPECT_EQ(h.l1i().misses(), 1u);
    Cycle t = h.ifetch(0x104, 500);
    EXPECT_EQ(t, 500 + p.l1i.hitLatency);
}

TEST(Hierarchy, WritesAllocate)
{
    MemHierarchy h({});
    h.write(0x50000, 0);
    EXPECT_TRUE(h.l1d().probe(0x50000));
    Cycle t = h.write(0x50008, 1000);
    EXPECT_EQ(t, 1002u);
}

// ---- sparse simulated memory (emu/memory) ----

TEST(SparseMemory, ZeroFillSemantics)
{
    Memory m;
    // Untouched memory reads as zero at any size and address.
    EXPECT_EQ(m.read64(0), 0u);
    EXPECT_EQ(m.read(0xdeadbeef000, 8), 0u);
    EXPECT_EQ(m.read8(~Addr(0)), 0u);
    EXPECT_EQ(m.numPages(), 0u); // reads must not materialize pages

    // A write materializes exactly one page; its untouched bytes are 0.
    m.write64(0x1000, 0x1122334455667788ull);
    EXPECT_EQ(m.numPages(), 1u);
    EXPECT_EQ(m.read64(0x1000), 0x1122334455667788ull);
    EXPECT_EQ(m.read64(0x1008), 0u);
    EXPECT_EQ(m.read8(0x1fff), 0u);
}

TEST(SparseMemory, CrossPageStraddle)
{
    Memory m;
    // An 8-byte write straddling a page boundary (4 KiB pages).
    const Addr boundary = 3 * Memory::pageBytes;
    const Addr addr = boundary - 4;
    m.write64(addr, 0x0807060504030201ull);
    EXPECT_EQ(m.numPages(), 2u);
    EXPECT_EQ(m.read64(addr), 0x0807060504030201ull);
    // Byte-wise split across the two pages, little-endian.
    EXPECT_EQ(m.read32(addr), 0x04030201u);
    EXPECT_EQ(m.read32(boundary), 0x08070605u);
    // Straddling read where only one side is materialized.
    Memory half;
    half.write32(boundary, 0xaabbccddu);
    EXPECT_EQ(half.read64(boundary - 4), 0xaabbccdd00000000ull);
}

TEST(SparseMemory, PageCacheAfterClearAndRetouch)
{
    Memory m;
    m.write64(0x2000, 42);
    m.write64(0x2000 + Memory::pageBytes, 43);
    // Warm both read-cache and write-cache slots on page 2.
    EXPECT_EQ(m.read64(0x2000), 42u);

    m.clear();
    // The last-page cache must not serve stale pages after clear().
    EXPECT_EQ(m.numPages(), 0u);
    EXPECT_EQ(m.read64(0x2000), 0u);

    // Re-touch the same page: fresh zero-filled storage, and the cache
    // serves the new page afterwards.
    m.write64(0x2000, 99);
    EXPECT_EQ(m.read64(0x2000), 99u);
    EXPECT_EQ(m.read64(0x2008), 0u);
    EXPECT_EQ(m.numPages(), 1u);
}

TEST(SparseMemory, CacheSurvivesMaterializationOfOtherPages)
{
    Memory m;
    m.write64(0x5000, 7);
    EXPECT_EQ(m.read64(0x5000), 7u);
    // Materialize many fresh pages to force table growth/rehash while
    // the read cache points at page 5's storage.
    for (unsigned i = 0; i < 200; ++i)
        m.write64(Addr(0x100000) + Addr(i) * Memory::pageBytes, i);
    EXPECT_EQ(m.read64(0x5000), 7u);
    for (unsigned i = 0; i < 200; ++i)
        EXPECT_EQ(m.read64(Addr(0x100000) + Addr(i) * Memory::pageBytes),
                  u64(i));
    EXPECT_EQ(m.numPages(), 201u);
}

TEST(SparseMemory, ContentEqualsIgnoresZeroPages)
{
    Memory a, b;
    a.write64(0x3000, 5);
    b.write64(0x3000, 5);
    // Materialized-but-zero pages must not break equality.
    EXPECT_EQ(a.read64(0x9000), 0u);
    b.write64(0x9000, 0);
    EXPECT_TRUE(a.contentEquals(b));
    EXPECT_TRUE(b.contentEquals(a));
    b.write8(0x3001, 1);
    EXPECT_FALSE(a.contentEquals(b));
}
