/**
 * @file
 * Malformed-input hardening of the hand-rolled JSON reader: fuzz-
 * adjacent cases — truncation at every structural point, adversarial
 * nesting depth, overflowing numbers, duplicate keys, leading zeros —
 * must produce precise line/col diagnostics, never crashes or silent
 * garbage values.
 */

#include <gtest/gtest.h>

#include "base/json.hh"

using namespace rix;

namespace
{

std::string
parseErr(const std::string &text)
{
    std::string err;
    JsonValue::parse(text, &err);
    return err;
}

} // namespace

TEST(JsonMalformed, TruncationAtEveryStructuralPoint)
{
    const char *const cases[] = {
        "",                 // empty document
        "{",                // open object
        "{\"a\"",           // key without colon
        "{\"a\":",          // colon without value
        "{\"a\":1",         // missing closing brace
        "{\"a\":1,",        // trailing comma, then nothing
        "[",                // open array
        "[1,",              // array trailing comma
        "[1",               // missing closing bracket
        "\"abc",            // unterminated string
        "\"ab\\",           // escape at end of input
        "\"ab\\u12",        // truncated \u escape
        "tru",              // truncated keyword
        "-",                // sign without digits
        "1.",               // decimal point without digits
        "1e",               // exponent without digits
        "1e+",              // signed exponent without digits
    };
    for (const char *text : cases) {
        const std::string err = parseErr(text);
        EXPECT_NE(err, "") << "'" << text << "' parsed successfully";
        EXPECT_NE(err.find("line "), std::string::npos) << err;
        EXPECT_NE(err.find("col "), std::string::npos) << err;
    }
}

TEST(JsonMalformed, TrailingContentRejected)
{
    EXPECT_NE(parseErr("{} {}"), "");
    EXPECT_NE(parseErr("1 2"), "");
    EXPECT_EQ(parseErr("{}  \n\t "), "");
}

TEST(JsonMalformed, DeepNestingIsAnErrorNotAStackOverflow)
{
    // Comfortably inside the limit: fine.
    {
        std::string ok(100, '[');
        ok += "1";
        ok.append(100, ']');
        EXPECT_EQ(parseErr(ok), "");
    }
    // Adversarial: tens of thousands of brackets must be a clean
    // diagnostic (historically this recursed once per bracket and
    // smashed the stack).
    {
        std::string deep(50'000, '[');
        const std::string err = parseErr(deep);
        ASSERT_NE(err, "");
        EXPECT_NE(err.find("nesting deeper"), std::string::npos) << err;
    }
    // Same through objects.
    {
        std::string deep;
        for (int i = 0; i < 5'000; ++i)
            deep += "{\"k\":";
        const std::string err = parseErr(deep);
        ASSERT_NE(err, "");
        EXPECT_NE(err.find("nesting deeper"), std::string::npos) << err;
    }
}

TEST(JsonMalformed, OverflowingNumbersRejected)
{
    EXPECT_NE(parseErr("1e999"), "");
    EXPECT_NE(parseErr("-1e999"), "");
    EXPECT_NE(parseErr("{\"x\": 1e400}"), "");
    // Huge but representable stays fine (range checks belong to the
    // typed coercions).
    EXPECT_EQ(parseErr("1e308"), "");
    EXPECT_EQ(parseErr("123456789012345678901234567890"), "");
}

TEST(JsonMalformed, CoerceCountRejectsOutOfRange)
{
    std::string err;
    u64 out = 0;

    JsonValue v = JsonValue::parse("18446744073709551616", &err); // 2^64
    ASSERT_EQ(err, "");
    EXPECT_NE(jsonCoerceCount(v, ~u64(0), &out), "");

    v = JsonValue::parse("1e20", &err);
    ASSERT_EQ(err, "");
    EXPECT_NE(jsonCoerceCount(v, ~u64(0), &out), ""); // non-integral

    v = JsonValue::parse("-1", &err);
    ASSERT_EQ(err, "");
    EXPECT_NE(jsonCoerceCount(v, ~u64(0), &out), "");

    v = JsonValue::parse("4096", &err);
    ASSERT_EQ(err, "");
    EXPECT_EQ(jsonCoerceCount(v, ~u64(0), &out), "");
    EXPECT_EQ(out, 4096u);
}

TEST(JsonMalformed, DuplicateKeysRejectedAtAnyDepth)
{
    const std::string top = parseErr("{\"a\":1,\"a\":2}");
    ASSERT_NE(top, "");
    EXPECT_NE(top.find("duplicate"), std::string::npos) << top;

    const std::string nested =
        parseErr("{\"x\": {\"grid\": {\"k\": 1, \"k\": 2}}}");
    ASSERT_NE(nested, "");
    EXPECT_NE(nested.find("duplicate"), std::string::npos) << nested;

    // Same key in *different* objects is fine.
    EXPECT_EQ(parseErr("{\"x\": {\"k\": 1}, \"y\": {\"k\": 2}}"), "");
}

TEST(JsonMalformed, LeadingZerosRejected)
{
    EXPECT_NE(parseErr("01"), "");
    EXPECT_NE(parseErr("-012"), "");
    EXPECT_NE(parseErr("[00]"), "");
    EXPECT_EQ(parseErr("0"), "");
    EXPECT_EQ(parseErr("-0"), "");
    EXPECT_EQ(parseErr("0.5"), "");
    EXPECT_EQ(parseErr("0e3"), "");
}

TEST(JsonMalformed, ErrorPositionsAreprecise)
{
    // The failure is on line 3.
    const std::string err = parseErr("{\n  \"a\": 1,\n  \"b\": tru\n}");
    ASSERT_NE(err, "");
    EXPECT_NE(err.find("line 3"), std::string::npos) << err;

    const std::string err2 = parseErr("{\"a\": \x01\"x\"}");
    ASSERT_NE(err2, "");

    const std::string err3 = parseErr("\"bad \x02 char\"");
    ASSERT_NE(err3, "");
    EXPECT_NE(err3.find("control character"), std::string::npos) << err3;
}

TEST(JsonMalformed, WellFormedInputStillParses)
{
    std::string err;
    const JsonValue v = JsonValue::parse(
        R"({"name": "x", "vals": [1, 2.5, -3, true, null],
            "nested": {"deep": {"deeper": "A\n"}}})",
        &err);
    ASSERT_EQ(err, "");
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.find("name")->asString(), "x");
    EXPECT_EQ(v.find("vals")->items().size(), 5u);
    EXPECT_TRUE(v.find("vals")->items()[0].isIntegral());
    EXPECT_FALSE(v.find("vals")->items()[1].isIntegral());
    EXPECT_EQ(v.find("nested")->find("deep")->find("deeper")->asString(),
              "A\n");
}
