/**
 * @file
 * Sweep-engine tests: the serial-equivalence guarantee (RIX_JOBS=1 and
 * RIX_JOBS=N produce bit-identical SimReports), submission-order
 * result collection, and the Core reset() path producing simulations
 * indistinguishable from a freshly constructed core.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "sim/presets.hh"
#include "sim/sweep.hh"
#include "workload/program_cache.hh"

using namespace rix;

namespace
{

/** Bit-exact comparison of everything simulated in a report. */
void
expectIdentical(const SimReport &a, const SimReport &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.halted, b.halted);
    EXPECT_EQ(a.core.cycles, b.core.cycles);
    EXPECT_EQ(a.core.retired, b.core.retired);
    EXPECT_EQ(a.core.integratedDirect, b.core.integratedDirect);
    EXPECT_EQ(a.core.integratedReverse, b.core.integratedReverse);
    EXPECT_EQ(a.core.misintegrations, b.core.misintegrations);
    EXPECT_EQ(a.l1dMisses, b.l1dMisses);
    EXPECT_EQ(a.l2Misses, b.l2Misses);
    EXPECT_EQ(a.dtlbMisses, b.dtlbMisses);
    // CoreStats is all plain counters: compare every field at once.
    EXPECT_EQ(memcmp(&a.core, &b.core, sizeof(CoreStats)), 0)
        << a.workload << ": some CoreStats field differs";
}

std::vector<SimJob>
smallJobList()
{
    std::vector<SimJob> jobs;
    for (const char *bm : {"gzip", "mcf", "crafty"}) {
        for (int cfg = 0; cfg < 3; ++cfg) {
            SimJob j;
            j.workload = bm;
            j.scale = 1;
            j.params = cfg == 0 ? baselineParams()
                       : cfg == 1
                           ? integrationParams(IntegrationMode::Reverse)
                           : integrationParams(IntegrationMode::General,
                                               LispMode::Oracle);
            jobs.push_back(j);
        }
    }
    return jobs;
}

} // namespace

TEST(Sweep, ParallelBitIdenticalToSerial)
{
    const std::vector<SimJob> jobs = smallJobList();

    SweepRunner serial(1);
    SweepRunner parallel(4);
    const auto a = serial.run(jobs);
    const auto b = parallel.run(jobs);

    ASSERT_EQ(a.size(), jobs.size());
    ASSERT_EQ(b.size(), jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i)
        expectIdentical(a[i].report, b[i].report);
}

TEST(Sweep, ResultsInSubmissionOrder)
{
    const std::vector<SimJob> jobs = smallJobList();
    const auto res = SweepRunner(4).run(jobs);
    ASSERT_EQ(res.size(), jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(res[i].report.workload, jobs[i].workload);
        EXPECT_TRUE(res[i].report.halted);
        EXPECT_GT(res[i].wallSeconds, 0.0);
    }
}

TEST(Sweep, ReusedContextMatchesFreshCore)
{
    const Program &gzip = globalProgramCache().get("gzip", 1);
    const Program &mcf = globalProgramCache().get("mcf", 1);

    // Reference reports from fresh cores.
    const SimReport fresh_gzip = runSimulation(
        gzip, integrationParams(IntegrationMode::Reverse));
    const SimReport fresh_mcf = runSimulation(mcf, baselineParams());

    // One context recycled across programs AND configurations
    // (baseline vs reverse changes IT geometry use, mcf's memory image
    // dwarfs gzip's): every run must match its fresh-core reference.
    SimContext ctx;
    const SimReport r1 = ctx.run(gzip,
                                 integrationParams(IntegrationMode::Reverse),
                                 20'000'000, 200'000'000);
    const SimReport r2 =
        ctx.run(mcf, baselineParams(), 20'000'000, 200'000'000);
    const SimReport r3 = ctx.run(gzip,
                                 integrationParams(IntegrationMode::Reverse),
                                 20'000'000, 200'000'000);

    expectIdentical(r1, fresh_gzip);
    expectIdentical(r2, fresh_mcf);
    expectIdentical(r3, fresh_gzip); // reuse after a different config
}

TEST(Sweep, GeometryChangesAcrossReuse)
{
    // The fig6 pattern: the same context cycles through IT geometries
    // and physical-register counts. Each point must equal a fresh run.
    const Program &gzip = globalProgramCache().get("gzip", 1);

    CoreParams big = integrationParams(IntegrationMode::Reverse);
    big.integ.itEntries = 4096;
    big.integ.itAssoc = 4096;
    big.integ.numPhysRegs = 4096;

    CoreParams tiny = integrationParams(IntegrationMode::Reverse);
    tiny.integ.itEntries = 64;
    tiny.integ.itAssoc = 64;

    const SimReport fresh_big = runSimulation(gzip, big);
    const SimReport fresh_tiny = runSimulation(gzip, tiny);

    SimContext ctx;
    const SimReport r_big = ctx.run(gzip, big, 20'000'000, 200'000'000);
    const SimReport r_tiny = ctx.run(gzip, tiny, 20'000'000, 200'000'000);
    const SimReport r_big2 = ctx.run(gzip, big, 20'000'000, 200'000'000);

    expectIdentical(r_big, fresh_big);
    expectIdentical(r_tiny, fresh_tiny);
    expectIdentical(r_big2, fresh_big);
}
