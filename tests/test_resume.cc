/**
 * @file
 * Durable sweep execution tests: journaled runs, resume from a
 * partial (torn) store re-running exactly the missing jobs with
 * bit-identical merged results — full and sampled specs — plus the
 * kill-9-mid-sweep drill the store exists for.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

#include "sim/scenario.hh"
#include "store/result_store.hh"
#include "store/sweep_store.hh"

using namespace rix;

namespace
{

constexpr const char *plainSpec =
    "{\"name\": \"resume_unit\", \"workloads\": [\"mcf\", \"twolf\"],"
    " \"scale\": 1, \"max_retired\": 200000, \"max_cycles\": 2000000,"
    " \"render\": \"jsonl\","
    " \"configs\": [{\"label\": \"base\", \"set\": {}},"
    "  {\"label\": \"reverse\","
    "   \"set\": {\"integ.mode\": \"reverse\"}}]}";

constexpr const char *sampledSpec =
    "{\"name\": \"resume_sampled\", \"workloads\": [\"mcf\"],"
    " \"scale\": 1, \"render\": \"jsonl\","
    " \"configs\": [{\"label\": \"base\","
    "   \"set\": {\"integ.mode\": \"off\"}},"
    "  {\"label\": \"reverse\","
    "   \"set\": {\"integ.mode\": \"reverse\"}}],"
    " \"sampling\": {\"fast_forward\": 20000, \"warmup\": 2000,"
    "  \"measure\": 8000, \"repeat\": 2}}";

class ResumeTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        unsetenv("RIX_BENCH");
        unsetenv("RIX_SCALE");
        setenv("RIX_JOBS", "2", 1);
    }
    void
    TearDown() override
    {
        unsetenv("RIX_BENCH");
        unsetenv("RIX_SCALE");
        unsetenv("RIX_JOBS");
    }
};

std::string
tmpStore(const char *tag)
{
    return ::testing::TempDir() + "rix_resume_" + tag + "_" +
           std::to_string(getpid()) + ".rixstore";
}

/** Everything simulated, bit for bit; wall time deliberately not. */
void
expectSimIdentical(const SimJobResult &a, const SimJobResult &b,
                   const char *what, size_t i)
{
    EXPECT_EQ(a.status, b.status) << what << " job " << i;
    EXPECT_EQ(a.report.workload, b.report.workload)
        << what << " job " << i;
    EXPECT_EQ(a.report.halted, b.report.halted) << what << " job " << i;
    EXPECT_EQ(0, memcmp(&a.report.core, &b.report.core,
                        sizeof(CoreStats)))
        << what << " job " << i << " CoreStats differ";
    EXPECT_EQ(a.report.l1dMisses, b.report.l1dMisses)
        << what << " job " << i;
    EXPECT_EQ(a.report.l1iMisses, b.report.l1iMisses)
        << what << " job " << i;
    EXPECT_EQ(a.report.l2Misses, b.report.l2Misses)
        << what << " job " << i;
    EXPECT_EQ(a.report.dtlbMisses, b.report.dtlbMisses)
        << what << " job " << i;
    EXPECT_EQ(a.report.itlbMisses, b.report.itlbMisses)
        << what << " job " << i;
}

size_t
fileSize(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0 ? size_t(st.st_size) : 0;
}

/** Truncate a copy of @p path holding @p keepRecords records, plus
 *  @p garbageBytes of torn tail, at @p copy. */
void
truncatedCopy(const std::string &path, const std::string &copy,
              size_t keepRecords, size_t garbageBytes)
{
    FILE *f = fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::string data;
    char buf[4096];
    size_t n;
    while ((n = fread(buf, 1, sizeof(buf), f)) > 0)
        data.append(buf, n);
    fclose(f);

    u32 metaLen;
    memcpy(&metaLen, data.data() + 12, 4);
    size_t off = 12 + 8 + metaLen;
    for (size_t i = 0; i < keepRecords; ++i) {
        ASSERT_LT(off, data.size());
        u32 len;
        memcpy(&len, data.data() + off, 4);
        off += 8 + len;
    }
    std::string cut = data.substr(0, off);
    for (size_t i = 0; i < garbageBytes; ++i)
        cut += char(0x5a ^ int(i));

    FILE *o = fopen(copy.c_str(), "wb");
    ASSERT_NE(o, nullptr);
    ASSERT_EQ(fwrite(cut.data(), 1, cut.size(), o), cut.size());
    fclose(o);
}

} // namespace

TEST_F(ResumeTest, JournaledRunMatchesPlainRun)
{
    const ScenarioSpec spec = parseScenario(plainSpec);
    const FaultPolicy policy;
    const ScenarioResults plain = runScenario(spec, policy);

    const std::string path = tmpStore("journal");
    ::remove(path.c_str());
    std::string err;
    auto store =
        ResultStore::create(path, makeSweepMeta(plainSpec, spec), &err);
    ASSERT_NE(store, nullptr) << err;
    const ScenarioResults stored = runScenario(spec, policy, store.get());

    ASSERT_EQ(stored.jobs.size(), plain.jobs.size());
    for (size_t i = 0; i < plain.jobs.size(); ++i)
        expectSimIdentical(plain.jobs[i], stored.jobs[i], "journaled", i);

    // Every ok job landed in the journal, keyed by expansion index.
    // Records appear in *retirement* order (parallel pool), so assert
    // against the index, not the file position: config-minor over two
    // configs means even indices are "base", odd are "reverse".
    ASSERT_EQ(store->records().size(), 4u);
    std::vector<bool> seen(4, false);
    for (const StoreRecord &r : store->records()) {
        ASSERT_LT(r.jobIndex, 4u);
        EXPECT_FALSE(seen[r.jobIndex]);
        seen[r.jobIndex] = true;
        expectSimIdentical(r.result,
                           stored.jobs[r.jobIndex], "record", r.jobIndex);
        EXPECT_EQ(r.configLabel,
                  r.jobIndex % 2 ? "reverse" : "base");
    }
    ::remove(path.c_str());
}

TEST_F(ResumeTest, PartialStoreResumesBitIdentical)
{
    const ScenarioSpec spec = parseScenario(plainSpec);
    const FaultPolicy policy;

    const std::string full = tmpStore("full");
    ::remove(full.c_str());
    std::string err;
    auto store =
        ResultStore::create(full, makeSweepMeta(plainSpec, spec), &err);
    ASSERT_NE(store, nullptr) << err;
    const ScenarioResults ref = runScenario(spec, policy, store.get());
    store.reset();

    // Crash facsimile: only job 0's record survived, then 5 torn
    // bytes. Resume must drop the tail, reuse job 0 verbatim, re-run
    // jobs 1..3, and merge bit-identically.
    const std::string part = tmpStore("part");
    truncatedCopy(full, part, 1, 5);
    ResultStore::Recovery rec;
    auto resumed = ResultStore::openForAppend(part, &err, &rec);
    ASSERT_NE(resumed, nullptr) << err;
    EXPECT_EQ(rec.validRecords, 1u);
    EXPECT_EQ(rec.droppedBytes, 5u);
    // Records land in retirement order, so the surviving record is
    // whichever job the parallel pool journaled first.
    const size_t kept = resumed->records()[0].jobIndex;

    const ScenarioResults res = runScenario(spec, policy, resumed.get());
    ASSERT_EQ(res.jobs.size(), ref.jobs.size());
    for (size_t i = 0; i < ref.jobs.size(); ++i)
        expectSimIdentical(ref.jobs[i], res.jobs[i], "resumed", i);
    // The journaled job was not re-simulated: its stored wall time —
    // physically unreproducible otherwise — came back verbatim.
    EXPECT_EQ(res.jobs[kept].wallSeconds, ref.jobs[kept].wallSeconds);

    // And the store is now complete: a second resume runs nothing.
    resumed.reset();
    auto again = ResultStore::openForAppend(part, &err);
    ASSERT_NE(again, nullptr) << err;
    ASSERT_EQ(again->records().size(), 4u);
    const ScenarioResults res2 = runScenario(spec, policy, again.get());
    for (size_t i = 0; i < ref.jobs.size(); ++i) {
        expectSimIdentical(ref.jobs[i], res2.jobs[i], "re-resumed", i);
        EXPECT_EQ(res2.jobs[i].wallSeconds, res.jobs[i].wallSeconds);
    }
    ::remove(full.c_str());
    ::remove(part.c_str());
}

TEST_F(ResumeTest, SampledSpecResumesBitIdentical)
{
    const ScenarioSpec spec = parseScenario(sampledSpec);
    ASSERT_EQ(spec.sampling.intervals.size(), 2u);
    const FaultPolicy policy;

    const std::string full = tmpStore("sampled_full");
    ::remove(full.c_str());
    std::string err;
    auto store = ResultStore::create(
        full, makeSweepMeta(sampledSpec, spec), &err);
    ASSERT_NE(store, nullptr) << err;
    const ScenarioResults ref = runScenario(spec, policy, store.get());
    store.reset();
    ASSERT_TRUE(ref.isSampled());
    ASSERT_EQ(ref.intervalJobs.size(), 4u); // 2 configs x 2 intervals
    ASSERT_EQ(ref.jobs.size(), 2u);         // merged points

    // Keep only the first interval record: the resumed run re-runs
    // the other three intervals and the *merged* rollup must come out
    // bit-identical — the acceptance contract for sampled sweeps.
    const std::string part = tmpStore("sampled_part");
    truncatedCopy(full, part, 1, 3);
    ResultStore::Recovery rec;
    auto resumed = ResultStore::openForAppend(part, &err, &rec);
    ASSERT_NE(resumed, nullptr) << err;
    EXPECT_EQ(rec.validRecords, 1u);

    const ScenarioResults res = runScenario(spec, policy, resumed.get());
    ASSERT_TRUE(res.isSampled());
    ASSERT_EQ(res.intervalJobs.size(), ref.intervalJobs.size());
    for (size_t i = 0; i < ref.intervalJobs.size(); ++i)
        expectSimIdentical(ref.intervalJobs[i], res.intervalJobs[i],
                           "interval", i);
    for (size_t i = 0; i < ref.jobs.size(); ++i)
        expectSimIdentical(ref.jobs[i], res.jobs[i], "merged", i);
    ASSERT_EQ(res.sampled.size(), ref.sampled.size());
    for (size_t i = 0; i < ref.sampled.size(); ++i) {
        EXPECT_EQ(res.sampled[i].measuredInsts,
                  ref.sampled[i].measuredInsts);
        EXPECT_EQ(res.sampled[i].measuredCycles,
                  ref.sampled[i].measuredCycles);
        EXPECT_EQ(res.sampled[i].totalInsts, ref.sampled[i].totalInsts);
        EXPECT_EQ(res.sampled[i].exact, ref.sampled[i].exact);
    }
    ::remove(full.c_str());
    ::remove(part.c_str());
}

TEST_F(ResumeTest, MismatchedStoreIsFatal)
{
    const ScenarioSpec spec = parseScenario(plainSpec);
    const FaultPolicy policy;

    // Job-count mismatch: a store of a different expansion.
    const std::string path = tmpStore("mismatch");
    ::remove(path.c_str());
    StoreMeta meta = makeSweepMeta(plainSpec, spec);
    meta.numJobs = 7;
    std::string err;
    auto store = ResultStore::create(path, meta, &err);
    ASSERT_NE(store, nullptr) << err;
    EXPECT_EXIT(runScenario(spec, policy, store.get()),
                ::testing::ExitedWithCode(1), "expands to 4");
    ::remove(path.c_str());

    // A serve journal is not a sweep store.
    StoreMeta serveMeta;
    serveMeta.kind = StoreKind::Serve;
    serveMeta.specName = "serve";
    auto journal = ResultStore::create(path, serveMeta, &err);
    ASSERT_NE(journal, nullptr) << err;
    EXPECT_EXIT(runScenario(spec, policy, journal.get()),
                ::testing::ExitedWithCode(1), "serve journal");
    ::remove(path.c_str());
}

// The drill the subsystem exists for: a journaled sweep killed with
// SIGKILL at a random point mid-run, resumed in a fresh process
// (facsimile: this one), finishing with results bit-identical to an
// uninterrupted reference run.
TEST_F(ResumeTest, Kill9MidSweepResumeFinishesBitIdentical)
{
    const ScenarioSpec spec = parseScenario(plainSpec);
    const FaultPolicy policy;
    const ScenarioResults ref = runScenario(spec, policy);

    const std::string path = tmpStore("kill9");
    ::remove(path.c_str());

    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        // Child: serial journaled run, no gtest machinery, hard exit.
        setenv("RIX_JOBS", "1", 1);
        std::string err;
        auto store = ResultStore::create(
            path, makeSweepMeta(plainSpec, spec), &err);
        if (!store)
            _exit(97);
        runScenario(spec, policy, store.get());
        _exit(0);
    }

    // Parent: the moment the first record is durable, kill -9. The
    // child may occasionally finish first — then the kill is a no-op
    // and the resume degenerates to a re-render, still asserted
    // identical.
    const size_t headerFloor = 12; // magic + version; records follow
    for (int spin = 0; spin < 5000; ++spin) {
        if (fileSize(path) > headerFloor + 600)
            break;
        usleep(1000);
    }
    kill(child, SIGKILL);
    int wstatus = 0;
    ASSERT_EQ(waitpid(child, &wstatus, 0), child);
    ASSERT_TRUE(WIFSIGNALED(wstatus) || WIFEXITED(wstatus));
    if (WIFEXITED(wstatus))
        ASSERT_EQ(WEXITSTATUS(wstatus), 0);

    std::string err;
    ResultStore::Recovery rec;
    auto store = ResultStore::openForAppend(path, &err, &rec);
    ASSERT_NE(store, nullptr) << "store unrecoverable after kill -9: "
                              << err;
    ASSERT_LE(store->records().size(), 4u);

    const ScenarioResults res = runScenario(spec, policy, store.get());
    ASSERT_EQ(res.jobs.size(), ref.jobs.size());
    for (size_t i = 0; i < ref.jobs.size(); ++i)
        expectSimIdentical(ref.jobs[i], res.jobs[i], "killed+resumed", i);
    ASSERT_EQ(store->records().size(), 4u);
    ::remove(path.c_str());
}

// File-level acceptance: `rix run --store` then `rix resume` of the
// completed store renders a byte-identical document (stored wall
// times included — nothing is re-simulated).
TEST_F(ResumeTest, ResumeOfCompleteStoreRendersIdenticalDocument)
{
    const std::string specFile =
        ::testing::TempDir() + "resume_spec_" +
        std::to_string(getpid()) + ".json";
    FILE *sf = fopen(specFile.c_str(), "w");
    ASSERT_NE(sf, nullptr);
    fputs(plainSpec, sf);
    fclose(sf);

    const std::string path = tmpStore("render");
    ::remove(path.c_str());
    const FaultPolicy policy;

    char *bufA = nullptr, *bufB = nullptr;
    size_t lenA = 0, lenB = 0;
    FILE *outA = open_memstream(&bufA, &lenA);
    ASSERT_EQ(runScenarioFileStored(specFile, path, outA, policy), 0);
    fclose(outA);

    FILE *outB = open_memstream(&bufB, &lenB);
    ResumeOptions opts;
    opts.ignoreRev = true; // store rev == build rev here, but explicit
    ASSERT_EQ(resumeStoreFile(path, outB, policy, opts), 0);
    fclose(outB);

    EXPECT_EQ(std::string(bufA, lenA), std::string(bufB, lenB));
    EXPECT_GT(lenA, 0u);
    free(bufA);
    free(bufB);
    ::remove(path.c_str());
    ::remove(specFile.c_str());
}
