/**
 * @file
 * Checkpoint determinism tests: restore(snapshot()) followed by N
 * steps must be bit-identical — registers, memory, StepResults — to N
 * continuous steps, in both memory-snapshot forms, across emulator
 * reuse (reset to a different program in between), and through the
 * detailed core's reset-from-checkpoint path.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "cpu/core.hh"
#include "emu/emulator.hh"
#include "sim/presets.hh"
#include "sim/simulator.hh"
#include "workload/workload.hh"

using namespace rix;

namespace
{

/** Field-wise StepResult equality (Instruction has no operator==). */
void
expectSameStep(const StepResult &a, const StepResult &b, u64 step)
{
    EXPECT_EQ(a.pc, b.pc) << "step " << step;
    EXPECT_EQ(a.nextPc, b.nextPc) << "step " << step;
    EXPECT_EQ(a.inst.op, b.inst.op) << "step " << step;
    EXPECT_EQ(a.inst.ra, b.inst.ra) << "step " << step;
    EXPECT_EQ(a.inst.rb, b.inst.rb) << "step " << step;
    EXPECT_EQ(a.inst.rc, b.inst.rc) << "step " << step;
    EXPECT_EQ(a.inst.imm, b.inst.imm) << "step " << step;
    EXPECT_EQ(a.wroteReg, b.wroteReg) << "step " << step;
    EXPECT_EQ(a.destReg, b.destReg) << "step " << step;
    EXPECT_EQ(a.destValue, b.destValue) << "step " << step;
    EXPECT_EQ(a.isMemAccess, b.isMemAccess) << "step " << step;
    EXPECT_EQ(a.memAddr, b.memAddr) << "step " << step;
    EXPECT_EQ(a.halted, b.halted) << "step " << step;
}

void
expectSameArchState(const Emulator &a, const Emulator &b)
{
    EXPECT_EQ(a.pc(), b.pc());
    EXPECT_EQ(a.halted(), b.halted());
    EXPECT_EQ(a.instsExecuted(), b.instsExecuted());
    for (unsigned r = 0; r < numLogRegs; ++r)
        EXPECT_EQ(a.reg(LogReg(r)), b.reg(LogReg(r))) << "r" << r;
    EXPECT_EQ(a.output(), b.output());
    EXPECT_TRUE(a.memory().contentEquals(b.memory()));
}

/** Continue both emulators @p n steps and demand identical streams. */
void
expectSameContinuation(Emulator &ref, Emulator &resumed, u64 n)
{
    for (u64 i = 0; i < n; ++i)
        expectSameStep(ref.step(), resumed.step(), i);
    expectSameArchState(ref, resumed);
}

} // namespace

TEST(Checkpoint, MemoryPageExportImportRoundTrip)
{
    Memory m;
    // Scattered touches, including page 0 and a page-straddling write.
    m.write64(0x0, 0x1122334455667788ull);
    m.write64(0x10000, 42);
    m.write8(0x10fff, 0xab);   // last byte of a page
    m.write64(0x20ffc, ~u64(0)); // straddles two pages
    m.write32(0x7fff0000, 7);

    const auto pages = m.exportPages();
    // Sorted by page number, no duplicates.
    for (size_t i = 1; i < pages.size(); ++i)
        EXPECT_LT(pages[i - 1].pageNumber, pages[i].pageNumber);

    Memory n;
    n.importPages(pages);
    EXPECT_TRUE(m.contentEquals(n));
    EXPECT_EQ(n.read64(0x20ffc), ~u64(0));
}

TEST(Checkpoint, MemoryExportDiffImageOmitsPristinePages)
{
    // Image: 8 KiB spanning two pages starting mid-page at 0x800.
    std::vector<u8> image(0x2000);
    for (size_t i = 0; i < image.size(); ++i)
        image[i] = u8(i * 7 + 1);
    const Addr base = 0x800;

    Memory m;
    m.writeBlock(base, image);
    // Every touched page matches the pristine image: empty diff.
    EXPECT_EQ(m.exportPagesDiffImage(base, image).size(), 0u);

    m.write64(0x1000, ~u64(0)); // dirty a page inside the image
    m.write64(0x9000, 3);       // dirty a page outside the image
    m.write64(0xa000, 0);       // touch-only (all zero): still pristine
    const auto diff = m.exportPagesDiffImage(base, image);
    ASSERT_EQ(diff.size(), 2u);
    EXPECT_EQ(diff[0].pageNumber, 0x1000u / Memory::pageBytes);
    EXPECT_EQ(diff[1].pageNumber, 0x9000u / Memory::pageBytes);

    // Bytes of a partially-covered page beyond the image end count as
    // zero: writing there makes the page differ.
    m.write8(base + image.size() + 16, 0xab);
    EXPECT_EQ(m.exportPagesDiffImage(base, image).size(), 3u);
}

class CheckpointRoundTrip : public ::testing::TestWithParam<bool>
{
};

TEST_P(CheckpointRoundTrip, ResumeBitIdentical)
{
    const bool diff = GetParam();
    const Program prog = buildWorkload("gzip", 1);

    Emulator ref(prog);
    ref.run(10'000);
    const Checkpoint ckpt = ref.snapshot(diff);
    EXPECT_EQ(ckpt.icount, 10'000u);
    EXPECT_EQ(ckpt.diffVsImage, diff);

    Emulator resumed(prog);
    resumed.run(123); // arbitrary garbage state; restore must erase it
    resumed.restore(ckpt);
    expectSameArchState(ref, resumed);
    expectSameContinuation(ref, resumed, 20'000);
}

INSTANTIATE_TEST_SUITE_P(BothMemoryForms, CheckpointRoundTrip,
                         ::testing::Bool());

TEST(Checkpoint, DiffVsImageIsCompact)
{
    // mcf carries a multi-megabyte data image it only partially
    // touches early on; the diff snapshot must not carry the image.
    const Program prog = buildWorkload("mcf", 1);
    Emulator emu(prog);
    emu.run(5'000);

    const Checkpoint full = emu.snapshot(/*diff_vs_image=*/false);
    const Checkpoint diff = emu.snapshot(/*diff_vs_image=*/true);
    EXPECT_LT(diff.pages.size(), full.pages.size() / 2)
        << "diff " << diff.memoryBytes() << "B vs full "
        << full.memoryBytes() << "B";

    // Both restore to the same state.
    Emulator a(prog), b(prog);
    a.restore(full);
    b.restore(diff);
    expectSameArchState(a, b);
    expectSameContinuation(a, b, 10'000);
}

TEST(Checkpoint, SurvivesEmulatorReuseAcrossPrograms)
{
    const Program progA = buildWorkload("gzip", 1);
    const Program progB = buildWorkload("crafty", 1);

    Emulator ref(progA);
    ref.run(8'000);

    Emulator reused(progA);
    reused.run(8'000);
    const Checkpoint ckpt = reused.snapshot();

    // Recycle the emulator for a different program (the sweep-worker
    // pattern), then come back.
    reused.reset(progB);
    reused.run(5'000);
    reused.restore(progA, ckpt);

    expectSameArchState(ref, reused);
    expectSameContinuation(ref, reused, 15'000);
}

TEST(Checkpoint, HaltedCheckpointStaysHalted)
{
    const Program prog = buildWorkload("gzip", 1);
    Emulator emu(prog);
    emu.run(100'000'000);
    ASSERT_TRUE(emu.halted());
    const u64 total = emu.instsExecuted();

    const Checkpoint ckpt = emu.snapshot();
    EXPECT_TRUE(ckpt.halted);

    Emulator resumed(prog);
    resumed.restore(ckpt);
    EXPECT_TRUE(resumed.halted());
    EXPECT_EQ(resumed.instsExecuted(), total);
    EXPECT_TRUE(resumed.step().halted); // stepping past HALT is a no-op
    EXPECT_EQ(resumed.instsExecuted(), total);

    // The detailed core from a halted checkpoint has nothing to run.
    Core core(prog, baselineParams());
    core.reset(prog, baselineParams(), ckpt);
    EXPECT_TRUE(core.halted());
    const Core::RunResult rr = core.run(1'000, 1'000'000);
    EXPECT_EQ(rr.retired, 0u);
    EXPECT_TRUE(rr.halted);
}

TEST(Checkpoint, CoreResetFromInitialCheckpointMatchesFreshRun)
{
    const Program prog = buildWorkload("mcf", 1);
    const CoreParams params = integrationParams(IntegrationMode::Reverse);

    SimReport fresh = runSimulation(prog, params);

    Emulator emu(prog);
    const Checkpoint start = emu.snapshot(); // at instruction 0

    Core core(prog, params);
    core.run(100, 10'000); // dirty the context first
    core.reset(prog, params, start);
    core.run(~u64(0), ~Cycle(0));
    SimReport resumed = collectReport(core, prog.name);

    EXPECT_EQ(fresh.halted, resumed.halted);
    EXPECT_EQ(memcmp(&fresh.core, &resumed.core, sizeof(CoreStats)), 0)
        << "CoreStats differ between fresh run and checkpoint-at-0 run";
    EXPECT_EQ(fresh.l1dMisses, resumed.l1dMisses);
    EXPECT_EQ(fresh.l1iMisses, resumed.l1iMisses);
    EXPECT_EQ(fresh.l2Misses, resumed.l2Misses);
    EXPECT_EQ(fresh.dtlbMisses, resumed.dtlbMisses);
    EXPECT_EQ(fresh.itlbMisses, resumed.itlbMisses);
}

TEST(Checkpoint, CoreResumesMidRunAndFinishesTheArchitecturalStream)
{
    const Program prog = buildWorkload("gzip", 1);
    const CoreParams params = integrationParams(IntegrationMode::Reverse);

    // Reference: the whole run, detailed, plus the total inst count.
    Core full(prog, params);
    full.run(~u64(0), ~Cycle(0));
    ASSERT_TRUE(full.halted());
    const u64 total = full.stats().retired;

    for (const u64 k : {u64(1), u64(5'000), total - 1}) {
        Emulator ff(prog);
        ff.run(k);
        const Checkpoint ckpt = ff.snapshot();

        Core core(prog, params);
        core.reset(prog, params, ckpt);
        core.run(~u64(0), ~Cycle(0));
        EXPECT_TRUE(core.halted()) << "k=" << k;
        // The detailed resume retires exactly the remaining stream...
        EXPECT_EQ(core.stats().retired, total - k) << "k=" << k;
        // ...and lands in the same architectural end state.
        for (unsigned r = 0; r < numLogRegs; ++r)
            EXPECT_EQ(core.golden().reg(LogReg(r)),
                      full.golden().reg(LogReg(r)))
                << "k=" << k << " r" << r;
        EXPECT_EQ(core.golden().output(), full.golden().output())
            << "k=" << k;
        EXPECT_TRUE(core.golden().memory().contentEquals(
            full.golden().memory()))
            << "k=" << k;
    }
}
