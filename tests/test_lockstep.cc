/**
 * @file
 * Retire-time lockstep checker: enablement (params key, RIX_CHECK env),
 * clean runs, composition with checkpoint resume and reused contexts,
 * and the divergence-report rendering. The checker's ability to
 * actually *fail* is proven by tests/test_fault_injection.cc in the
 * -DRIX_FAULT_INJECT=ON build.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "base/json.hh"
#include "cpu/core.hh"
#include "sim/presets.hh"
#include "sim/scenario.hh"
#include "sim/simulator.hh"
#include "workload/randprog.hh"

using namespace rix;

namespace
{

CoreParams
lockstepParams()
{
    CoreParams p = integrationParams(IntegrationMode::Reverse);
    p.check.lockstep = true;
    return p;
}

} // namespace

TEST(Lockstep, OffByDefault)
{
    const Program p = generateRandomProgram(3);
    Core core(p, integrationParams(IntegrationMode::Reverse));
    EXPECT_FALSE(core.lockstepEnabled());
    EXPECT_EQ(core.shadowEmulator(), nullptr);
    core.run(10'000'000, 50'000'000);
    EXPECT_TRUE(core.halted());
    EXPECT_EQ(core.divergence(), nullptr);
}

TEST(Lockstep, CleanRunShadowTracksGolden)
{
    const Program p = generateRandomProgram(7);
    Core core(p, lockstepParams());
    ASSERT_TRUE(core.lockstepEnabled());
    core.run(10'000'000, 50'000'000);
    ASSERT_TRUE(core.halted());
    EXPECT_EQ(core.divergence(), nullptr);

    // The shadow marched through exactly the committed stream.
    const Emulator *shadow = core.shadowEmulator();
    ASSERT_NE(shadow, nullptr);
    EXPECT_TRUE(shadow->halted());
    EXPECT_EQ(shadow->instsExecuted(), core.golden().instsExecuted());
    EXPECT_EQ(shadow->pc(), core.golden().pc());
    for (unsigned r = 0; r < numLogRegs; ++r)
        EXPECT_EQ(shadow->reg(LogReg(r)), core.golden().reg(LogReg(r)))
            << "r" << r;
    EXPECT_EQ(shadow->output(), core.golden().output());
    EXPECT_TRUE(shadow->memory().contentEquals(core.golden().memory()));
}

TEST(Lockstep, VerifyAgainstEmulatorCleanWithChecking)
{
    const Program p = generateRandomProgram(9);
    EXPECT_EQ(verifyAgainstEmulator(p, lockstepParams()), "");
}

TEST(Lockstep, EnvKnobForcesOnAndResetReevaluates)
{
    const Program p = generateRandomProgram(4);
    const CoreParams plain = integrationParams(IntegrationMode::Reverse);

    setenv("RIX_CHECK", "1", 1);
    Core core(p, plain);
    EXPECT_TRUE(core.lockstepEnabled());
    core.run(10'000'000, 50'000'000);
    EXPECT_TRUE(core.halted());
    EXPECT_EQ(core.divergence(), nullptr);

    // RIX_CHECK=0 and unset both disable again at the next reset.
    setenv("RIX_CHECK", "0", 1);
    core.reset(p, plain);
    EXPECT_FALSE(core.lockstepEnabled());
    unsetenv("RIX_CHECK");
    core.reset(p, plain);
    EXPECT_FALSE(core.lockstepEnabled());
}

TEST(LockstepDeath, EnvKnobRejectsGarbage)
{
    const Program p = generateRandomProgram(5);
    const CoreParams plain = integrationParams(IntegrationMode::Reverse);
    setenv("RIX_CHECK", "yes", 1);
    EXPECT_EXIT({ Core core(p, plain); }, ::testing::ExitedWithCode(1),
                "RIX_CHECK must be 0 or 1");
    unsetenv("RIX_CHECK");
}

TEST(Lockstep, ScenarioKeyParses)
{
    std::string err;
    const JsonValue on = JsonValue::parse("true", &err);
    ASSERT_EQ(err, "");
    CoreParams p;
    EXPECT_FALSE(p.check.lockstep);
    EXPECT_EQ(applyCoreParamOverride(p, "check.lockstep", on), "");
    EXPECT_TRUE(p.check.lockstep);

    const JsonValue num = JsonValue::parse("1", &err);
    EXPECT_NE(applyCoreParamOverride(p, "check.lockstep", num), "");
    EXPECT_NE(applyCoreParamOverride(p, "check.nonsense", on), "");
}

TEST(Lockstep, ComposesWithCheckpointResume)
{
    const Program p = generateRandomProgram(11);
    const CoreParams params = lockstepParams();

    Core full(p, params);
    full.run(10'000'000, 50'000'000);
    ASSERT_TRUE(full.halted());
    ASSERT_EQ(full.divergence(), nullptr);
    const u64 total = full.stats().retired;
    ASSERT_GT(total, 100u);

    for (u64 k : {u64(1), total / 3, total - 1}) {
        Emulator ff(p);
        ff.run(k);
        const Checkpoint ckpt = ff.snapshot();

        Core core(p, params);
        core.reset(p, params, ckpt);
        ASSERT_TRUE(core.lockstepEnabled());
        // The shadow is seeded from the same checkpoint, not replayed
        // from the program start.
        ASSERT_NE(core.shadowEmulator(), nullptr);
        EXPECT_EQ(core.shadowEmulator()->instsExecuted(), k);

        core.run(10'000'000, 50'000'000);
        ASSERT_TRUE(core.halted()) << "k " << k;
        EXPECT_EQ(core.divergence(), nullptr) << "k " << k;
        EXPECT_EQ(core.stats().retired, total - k);
        for (unsigned r = 0; r < numLogRegs; ++r)
            EXPECT_EQ(core.golden().reg(LogReg(r)),
                      full.golden().reg(LogReg(r)))
                << "k " << k << " r" << r;
        EXPECT_EQ(core.shadowEmulator()->instsExecuted(),
                  core.golden().instsExecuted());
    }
}

TEST(Lockstep, ComposesWithReusedContexts)
{
    const Program a = generateRandomProgram(21);
    const Program b = generateRandomProgram(22);
    const CoreParams checked = lockstepParams();
    const CoreParams plain = integrationParams(IntegrationMode::General);

    // Fresh-core references.
    Core refA(a, checked);
    refA.run(10'000'000, 50'000'000);
    ASSERT_TRUE(refA.halted());
    Core refB(b, plain);
    refB.run(10'000'000, 50'000'000);
    ASSERT_TRUE(refB.halted());

    // One context cycled through program/param/enablement changes.
    Core core(a, checked);
    core.run(10'000'000, 50'000'000);
    ASSERT_TRUE(core.halted());
    EXPECT_EQ(core.divergence(), nullptr);
    EXPECT_EQ(core.stats().cycles, refA.stats().cycles);

    core.reset(b, plain);
    EXPECT_FALSE(core.lockstepEnabled());
    core.run(10'000'000, 50'000'000);
    ASSERT_TRUE(core.halted());
    EXPECT_EQ(core.stats().cycles, refB.stats().cycles);

    core.reset(a, checked);
    ASSERT_TRUE(core.lockstepEnabled());
    core.run(10'000'000, 50'000'000);
    ASSERT_TRUE(core.halted());
    EXPECT_EQ(core.divergence(), nullptr);
    EXPECT_EQ(core.stats().cycles, refA.stats().cycles);
}

TEST(Lockstep, TimingUnaffectedByChecking)
{
    // The shadow is an observer: cycle-level results are bit-identical
    // with checking on and off.
    const Program p = generateRandomProgram(31);
    const CoreParams plain = integrationParams(IntegrationMode::Reverse);

    Core off(p, plain);
    off.run(10'000'000, 50'000'000);
    Core on(p, lockstepParams());
    on.run(10'000'000, 50'000'000);
    ASSERT_TRUE(off.halted());
    ASSERT_TRUE(on.halted());
    EXPECT_EQ(off.stats().cycles, on.stats().cycles);
    EXPECT_EQ(off.stats().retired, on.stats().retired);
    EXPECT_EQ(off.stats().misintegrations, on.stats().misintegrations);
    EXPECT_EQ(off.stats().squashedInsts, on.stats().squashedInsts);
}

TEST(Lockstep, ReportFormatCarriesEverything)
{
    DivergenceReport r;
    r.diverged = true;
    r.kind = "value";
    r.icount = 1234;
    r.pc = 17;
    r.disasm = "addq r3, r1, r2";
    r.reason = "pipeline produced destination value 1, architecturally 2";
    r.goldenState = "  golden-regs\n";
    r.shadowState = "  shadow-regs\n";
    const std::string text = r.format();
    EXPECT_NE(text.find("value"), std::string::npos);
    EXPECT_NE(text.find("1234"), std::string::npos);
    EXPECT_NE(text.find("addq r3, r1, r2"), std::string::npos);
    EXPECT_NE(text.find("golden-regs"), std::string::npos);
    EXPECT_NE(text.find("shadow-regs"), std::string::npos);

    DivergenceReport clean;
    EXPECT_EQ(clean.format(), "no divergence");
}
