/**
 * @file
 * Regression-gate tests: `rix compare` exit-code classification over
 * synthetic stores — clean (0), throughput drift (1), simulated-field
 * divergence (2, dominating drift), and operational errors (3) — plus
 * the trajectory render's shape.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "store/compare.hh"
#include "store/result_store.hh"

using namespace rix;

namespace
{

std::string
tmpPath(const char *tag)
{
    return ::testing::TempDir() + "rix_cmp_" + tag + "_" +
           std::to_string(getpid()) + ".rixstore";
}

StoreMeta
gateMeta(const char *rev)
{
    StoreMeta m;
    m.kind = StoreKind::Sweep;
    m.gitRev = rev;
    m.specName = "gate";
    m.specHash = 0xfeedfacecafef00dull;
    m.scale = 1;
    m.workloadsCsv = "mcf,twolf";
    m.numJobs = 4;
    m.specText = "{}";
    return m;
}

StoreRecord
gateRecord(u64 i, double wallScale = 1.0, u64 counterNudge = 0)
{
    StoreRecord r;
    r.jobIndex = i;
    r.configLabel = i % 2 ? "reverse" : "base";
    r.result.status = JobStatus::Ok;
    r.result.wallSeconds = 0.1 * double(i + 1) * wallScale;
    r.result.report.workload = i < 2 ? "mcf" : "twolf";
    r.result.report.halted = true;
    r.result.report.l1dMisses = 500 + i;
    r.result.report.core.cycles = 100000 + i;
    r.result.report.core.retired = 80000 + i;
    r.result.report.core.misintegrations = 11 * i + counterNudge;
    return r;
}

/** Build a store at a fresh path; records configured per test. */
std::string
buildStore(const char *tag, const char *rev, double wallScale = 1.0,
           u64 counterNudge = 0, u64 numRecords = 4)
{
    const std::string path = tmpPath(tag);
    ::remove(path.c_str());
    std::string err;
    auto store = ResultStore::create(path, gateMeta(rev), &err);
    EXPECT_NE(store, nullptr) << err;
    for (u64 i = 0; i < numRecords; ++i)
        EXPECT_EQ(store->append(gateRecord(i, wallScale, counterNudge)),
                  "");
    return path;
}

/** Run compareStores with output captured; returns the exit code and
 *  hands back the rendered trajectory. */
int
runCompare(const std::string &a, const std::string &b,
           const CompareOptions &opts, std::string *trajectory = nullptr)
{
    char *buf = nullptr;
    size_t len = 0;
    FILE *out = open_memstream(&buf, &len);
    EXPECT_NE(out, nullptr);
    const int rc = compareStores(a, b, opts, out);
    fclose(out);
    if (trajectory)
        trajectory->assign(buf, len);
    free(buf);
    return rc;
}

} // namespace

TEST(Compare, IdenticalStoresExitZero)
{
    const std::string a = buildStore("id_a", "aaaaaaa");
    const std::string b = buildStore("id_b", "bbbbbbb");
    std::string traj;
    EXPECT_EQ(runCompare(a, b, CompareOptions{}, &traj), 0);

    // Trajectory: per-workload lines plus one aggregate per store,
    // each tagged with the producing revision.
    EXPECT_NE(traj.find("\"bench\": \"mcf\""), std::string::npos);
    EXPECT_NE(traj.find("\"bench\": \"twolf\""), std::string::npos);
    EXPECT_NE(traj.find("\"bench\": \"aggregate\""), std::string::npos);
    EXPECT_NE(traj.find("\"rev\": \"aaaaaaa\""), std::string::npos);
    EXPECT_NE(traj.find("\"rev\": \"bbbbbbb\""), std::string::npos);
    ::remove(a.c_str());
    ::remove(b.c_str());
}

TEST(Compare, ThroughputDriftBeyondToleranceExitOne)
{
    const std::string a = buildStore("dr_a", "aaaaaaa");
    // Same counters, 2x the wall time: -50% KIPS.
    const std::string b = buildStore("dr_b", "bbbbbbb", 2.0);

    EXPECT_EQ(runCompare(a, b, CompareOptions{}), 1);

    // A generous tolerance absorbs it...
    CompareOptions loose;
    loose.tolerance = 0.60;
    EXPECT_EQ(runCompare(a, b, loose), 0);

    // ...and --sim-only ignores the tier entirely.
    CompareOptions simOnly;
    simOnly.simOnly = true;
    EXPECT_EQ(runCompare(a, b, simOnly), 0);
    ::remove(a.c_str());
    ::remove(b.c_str());
}

TEST(Compare, SimulatedFieldDivergenceExitTwoDominatesDrift)
{
    const std::string a = buildStore("dv_a", "aaaaaaa");
    // One counter nudged AND massive wall drift: divergence wins.
    const std::string b = buildStore("dv_b", "bbbbbbb", 10.0, 1);

    EXPECT_EQ(runCompare(a, b, CompareOptions{}), 2);

    // --sim-only still reports divergence: it skips drift, not bugs.
    CompareOptions simOnly;
    simOnly.simOnly = true;
    EXPECT_EQ(runCompare(a, b, simOnly), 2);
    ::remove(a.c_str());
    ::remove(b.c_str());
}

TEST(Compare, SubstrateCounterDivergenceDetected)
{
    const std::string a = buildStore("sub_a", "aaaaaaa");
    const std::string b = tmpPath("sub_b");
    ::remove(b.c_str());
    std::string err;
    auto store = ResultStore::create(b, gateMeta("bbbbbbb"), &err);
    ASSERT_NE(store, nullptr) << err;
    for (u64 i = 0; i < 4; ++i) {
        StoreRecord r = gateRecord(i);
        if (i == 2)
            r.result.report.dtlbMisses = 99999; // not in CoreStats
        ASSERT_EQ(store->append(r), "");
    }
    store.reset();
    EXPECT_EQ(runCompare(a, b, CompareOptions{}), 2);
    ::remove(a.c_str());
    ::remove(b.c_str());
}

TEST(Compare, MissingJobsCompareIntersectionUnlessCompleteRequired)
{
    const std::string a = buildStore("mi_a", "aaaaaaa");
    const std::string b = buildStore("mi_b", "bbbbbbb", 1.0, 0,
                                     /*numRecords=*/2);

    // Intersection (jobs 0..1) is identical: clean.
    EXPECT_EQ(runCompare(a, b, CompareOptions{}), 0);

    CompareOptions strict;
    strict.requireComplete = true;
    EXPECT_EQ(runCompare(a, b, strict), 3);
    ::remove(a.c_str());
    ::remove(b.c_str());
}

TEST(Compare, OperationalErrorsExitThree)
{
    const std::string a = buildStore("op_a", "aaaaaaa");

    // Unreadable candidate.
    EXPECT_EQ(runCompare(a, tmpPath("op_missing"), CompareOptions{}), 3);

    // Mismatched sweep identity.
    const std::string other = tmpPath("op_other");
    ::remove(other.c_str());
    StoreMeta m = gateMeta("bbbbbbb");
    m.specHash ^= 1;
    std::string err;
    auto store = ResultStore::create(other, m, &err);
    ASSERT_NE(store, nullptr) << err;
    store.reset();
    EXPECT_EQ(runCompare(a, other, CompareOptions{}), 3);

    // Nothing journaled ok on one side: nothing to compare.
    const std::string empty = tmpPath("op_empty");
    ::remove(empty.c_str());
    auto e = ResultStore::create(empty, gateMeta("ccccccc"), &err);
    ASSERT_NE(e, nullptr) << err;
    e.reset();
    EXPECT_EQ(runCompare(a, empty, CompareOptions{}), 3);

    // Failed records are not comparable material either.
    const std::string failed = tmpPath("op_failed");
    ::remove(failed.c_str());
    auto f = ResultStore::create(failed, gateMeta("ddddddd"), &err);
    ASSERT_NE(f, nullptr) << err;
    for (u64 i = 0; i < 4; ++i) {
        StoreRecord r = gateRecord(i);
        r.result.status = JobStatus::Crash;
        r.result.error = "injected";
        ASSERT_EQ(f->append(r), "");
    }
    f.reset();
    EXPECT_EQ(runCompare(a, failed, CompareOptions{}), 3);

    ::remove(a.c_str());
    ::remove(other.c_str());
    ::remove(empty.c_str());
    ::remove(failed.c_str());
}
