/**
 * @file
 * Fault-containment tests: injected hangs, crashes and transients stay
 * inside their job — the sweep completes every healthy job with
 * structured statuses, the watchdog reaps hangs, the retry policy
 * recovers transients, --strict restores fail-fast, and the fault
 * knobs (RIX_TIMEOUT_MS / RIX_RETRIES) are validated fatally.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <thread>

#include "base/fault.hh"
#include "sim/presets.hh"
#include "sim/sweep.hh"

using namespace rix;

namespace
{

SimJob
job(const char *workload, JobInject inject = JobInject::None)
{
    SimJob j;
    j.workload = workload;
    j.scale = 1;
    j.maxRetired = 100'000;
    j.params = baselineParams();
    j.inject = inject;
    return j;
}

FaultPolicy
quickPolicy()
{
    FaultPolicy p;
    p.timeoutMs = 1000;
    p.retries = 2;
    p.backoffBaseMs = 1; // keep tests fast
    p.backoffCapMs = 2;
    return p;
}

} // namespace

TEST(FaultContainment, HealthyJobsCompleteAroundFailingOnes)
{
    std::vector<SimJob> jobs = {
        job("gzip"),
        job("mcf", JobInject::Crash),
        job("crafty"),
        job("gzip", JobInject::Hang),
        job("mcf"),
    };
    SweepRunner runner(4);
    FaultPolicy policy = quickPolicy();
    // Long enough that a healthy job on an oversubscribed CI runner is
    // never reaped; the hang still times out well inside the test.
    policy.timeoutMs = 2000;
    policy.retries = 0;
    const auto res = runner.run(jobs, policy);

    ASSERT_EQ(res.size(), jobs.size());
    EXPECT_EQ(res[0].status, JobStatus::Ok);
    EXPECT_EQ(res[1].status, JobStatus::Crash);
    EXPECT_EQ(res[2].status, JobStatus::Ok);
    EXPECT_EQ(res[3].status, JobStatus::Timeout);
    EXPECT_EQ(res[4].status, JobStatus::Ok);
    // The healthy results are real simulations, not placeholders.
    EXPECT_GT(res[0].report.core.retired, 0u);
    EXPECT_GT(res[4].report.core.retired, 0u);
    // The failed ones carry diagnostics.
    EXPECT_NE(res[1].error.find("injected crash"), std::string::npos);
    EXPECT_NE(res[3].error.find("watchdog"), std::string::npos);
}

TEST(FaultContainment, FailuresDontPerturbNeighboringResults)
{
    // The acceptance bar: a sweep with K poisoned jobs must produce
    // bit-identical simulated numbers for the other N-K.
    std::vector<SimJob> clean = {job("gzip"), job("mcf")};
    std::vector<SimJob> dirty = {job("gzip"), job("crafty", JobInject::Crash),
                                 job("mcf")};
    SweepRunner runner(2);
    const FaultPolicy policy = quickPolicy();
    const auto a = runner.run(clean, policy);
    const auto b = runner.run(dirty, policy);
    ASSERT_EQ(a.size(), 2u);
    ASSERT_EQ(b.size(), 3u);
    EXPECT_EQ(a[0].report.core.cycles, b[0].report.core.cycles);
    EXPECT_EQ(a[0].report.core.retired, b[0].report.core.retired);
    EXPECT_EQ(a[1].report.core.cycles, b[2].report.core.cycles);
    EXPECT_EQ(a[1].report.core.retired, b[2].report.core.retired);
}

TEST(FaultContainment, TransientFailureRecoversByRetry)
{
    SimContext ctx;
    const SimJobResult r =
        runJobContained(ctx, job("gzip", JobInject::Transient),
                        quickPolicy());
    EXPECT_EQ(r.status, JobStatus::Ok);
    EXPECT_EQ(r.attempts, 2u); // failed once, recovered once
    EXPECT_GT(r.report.core.retired, 0u);
}

TEST(FaultContainment, TransientExhaustsRetryBudget)
{
    SimContext ctx;
    FaultPolicy policy = quickPolicy();
    policy.retries = 0; // transient fires on attempt 1: no recovery
    const SimJobResult r =
        runJobContained(ctx, job("gzip", JobInject::Transient), policy);
    EXPECT_EQ(r.status, JobStatus::Transient);
    EXPECT_EQ(r.attempts, 1u);
}

TEST(FaultContainment, WatchdogReapsHangWithinTimeout)
{
    SimContext ctx;
    FaultPolicy policy = quickPolicy();
    policy.timeoutMs = 100;
    policy.retries = 1;
    const auto t0 = std::chrono::steady_clock::now();
    const SimJobResult r =
        runJobContained(ctx, job("gzip", JobInject::Hang), policy);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    EXPECT_EQ(r.status, JobStatus::Timeout);
    EXPECT_EQ(r.attempts, 2u); // timeouts are transient: one retry
    // Two 100 ms watchdog windows plus backoff; nowhere near a hang.
    EXPECT_LT(elapsed, 5.0);
}

TEST(FaultContainment, UnknownWorkloadIsInvalidNotFatal)
{
    SimContext ctx;
    const SimJobResult r =
        runJobContained(ctx, job("nonexistent"), quickPolicy());
    EXPECT_EQ(r.status, JobStatus::Invalid);
    EXPECT_NE(r.error.find("unknown workload"), std::string::npos);
    EXPECT_EQ(r.attempts, 1u); // permanent: never retried
}

TEST(FaultContainment, InvalidConfigIsInvalidNotFatal)
{
    SimContext ctx;
    SimJob j = job("gzip");
    j.params.fetchWidth = 0;
    const SimJobResult r = runJobContained(ctx, j, quickPolicy());
    EXPECT_EQ(r.status, JobStatus::Invalid);
    EXPECT_FALSE(r.error.empty());
}

TEST(FaultContainment, HangWithWatchdogDisabledIsAnError)
{
    // timeoutMs == 0 disables the watchdog; an injected hang would
    // then block forever, so the injector refuses to start it.
    SimContext ctx;
    FaultPolicy policy = quickPolicy();
    policy.timeoutMs = 0;
    const SimJobResult r =
        runJobContained(ctx, job("gzip", JobInject::Hang), policy);
    EXPECT_EQ(r.status, JobStatus::Crash);
}

TEST(FaultContainment, StrictModeDiesOnFirstFailure)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    std::vector<SimJob> jobs = {job("gzip"),
                                job("mcf", JobInject::Crash)};
    FaultPolicy policy = quickPolicy();
    policy.strict = true;
    EXPECT_DEATH(
        {
            SweepRunner runner(1);
            runner.run(jobs, policy);
        },
        "strict");
}

TEST(FaultContainment, BackoffGrowsExponentiallyAndCaps)
{
    FaultPolicy p;
    p.backoffBaseMs = 10;
    p.backoffCapMs = 2000;
    EXPECT_EQ(p.backoffMs(1), 10u);
    EXPECT_EQ(p.backoffMs(2), 20u);
    EXPECT_EQ(p.backoffMs(3), 40u);
    EXPECT_EQ(p.backoffMs(12), 2000u); // capped
    EXPECT_EQ(p.backoffMs(60), 2000u); // no overflow wraparound
}

TEST(FaultContainment, StatusNamesRoundTrip)
{
    for (int i = 0; i < 8; ++i) {
        const JobStatus s = JobStatus(i);
        JobStatus back = JobStatus::Ok;
        EXPECT_TRUE(jobStatusFromName(jobStatusName(s), &back));
        EXPECT_EQ(back, s);
    }
    JobStatus ignored;
    EXPECT_FALSE(jobStatusFromName("bogus", &ignored));
}

TEST(FaultContainment, EnvKnobsAreStrictlyValidated)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    setenv("RIX_TIMEOUT_MS", "soon", 1);
    EXPECT_DEATH(FaultPolicy::fromEnv(), "RIX_TIMEOUT_MS");
    setenv("RIX_TIMEOUT_MS", "-5", 1);
    EXPECT_DEATH(FaultPolicy::fromEnv(), "RIX_TIMEOUT_MS");
    unsetenv("RIX_TIMEOUT_MS");

    setenv("RIX_RETRIES", "many", 1);
    EXPECT_DEATH(FaultPolicy::fromEnv(), "RIX_RETRIES");
    setenv("RIX_RETRIES", "101", 1);
    EXPECT_DEATH(FaultPolicy::fromEnv(), "RIX_RETRIES");
    unsetenv("RIX_RETRIES");

    setenv("RIX_TIMEOUT_MS", "250", 1);
    setenv("RIX_RETRIES", "7", 1);
    const FaultPolicy p = FaultPolicy::fromEnv();
    EXPECT_EQ(p.timeoutMs, 250u);
    EXPECT_EQ(p.retries, 7u);
    unsetenv("RIX_TIMEOUT_MS");
    unsetenv("RIX_RETRIES");
}

TEST(FaultContainment, CancelTokenDeadlineFires)
{
    CancelToken token;
    token.arm(30);
    EXPECT_EQ(token.poll(), CancelReason::None);
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    EXPECT_EQ(token.poll(), CancelReason::Deadline);
    EXPECT_EQ(token.firedReason(), CancelReason::Deadline);
}

TEST(FaultContainment, CancelTokenExternalWinsRace)
{
    CancelToken token;
    token.arm(10'000);
    token.cancel(CancelReason::External);
    EXPECT_EQ(token.poll(), CancelReason::External);
    // First cause sticks even if the deadline later passes.
    token.cancel(CancelReason::Deadline);
    EXPECT_EQ(token.firedReason(), CancelReason::External);
}
