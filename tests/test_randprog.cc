/**
 * @file
 * The random-program generator library (src/workload/randprog.hh):
 * structural halting within the declared budget, bit-identical
 * regeneration from (seed, config), and the config knobs provably
 * changing program shape.
 */

#include <gtest/gtest.h>

#include "emu/emulator.hh"
#include "workload/randprog.hh"

using namespace rix;

namespace
{

size_t
countOp(const Program &p, Opcode op)
{
    size_t n = 0;
    for (const Instruction &inst : p.code)
        n += inst.op == op ? 1 : 0;
    return n;
}

size_t
countCondBranches(const Program &p)
{
    size_t n = 0;
    for (const Instruction &inst : p.code)
        n += inst.isCondBranch() ? 1 : 0;
    return n;
}

} // namespace

TEST(RandProg, HaltsWithinDeclaredBudget)
{
    std::vector<RandProgConfig> shapes(3);
    shapes[1].callDepth = 6;
    shapes[1].branchWeight = 6;
    shapes[2].callDepth = 0;
    shapes[2].memWeight = 6;
    shapes[2].memFootprint = 64;
    shapes[2].bodyOpsMin = 40;
    shapes[2].bodyOpsMax = 80;

    for (size_t c = 0; c < shapes.size(); ++c) {
        const u64 budget = randProgInstBudget(shapes[c]);
        for (u64 seed = 1; seed <= 8; ++seed) {
            const Program p = generateRandomProgram(seed, shapes[c]);
            Emulator e(p);
            e.run(budget);
            EXPECT_TRUE(e.halted())
                << "shape " << c << " seed " << seed << " did not halt "
                << "within " << budget << " instructions";
        }
    }
}

TEST(RandProg, BitIdenticalRegeneration)
{
    RandProgConfig cfg;
    cfg.callDepth = 3;
    cfg.branchWeight = 4;
    for (u64 seed : {u64(1), u64(17), u64(123456789)}) {
        const Program a = generateRandomProgram(seed, cfg);
        const Program b = generateRandomProgram(seed, cfg);
        ASSERT_EQ(a.code.size(), b.code.size());
        for (size_t i = 0; i < a.code.size(); ++i)
            ASSERT_TRUE(a.code[i] == b.code[i]) << "slot " << i;
        EXPECT_EQ(a.data, b.data);
        EXPECT_EQ(a.entry, b.entry);
        EXPECT_EQ(a.name, b.name);
    }
}

TEST(RandProg, DifferentSeedsDiffer)
{
    const Program a = generateRandomProgram(1);
    const Program b = generateRandomProgram(2);
    bool differ = a.code.size() != b.code.size();
    for (size_t i = 0; !differ && i < a.code.size(); ++i)
        differ = !(a.code[i] == b.code[i]);
    EXPECT_TRUE(differ);
}

TEST(RandProg, CallDepthKnobChangesShape)
{
    RandProgConfig flat;
    flat.callDepth = 0;
    const Program none = generateRandomProgram(5, flat);
    EXPECT_EQ(countOp(none, Opcode::JSR), 0u);
    EXPECT_EQ(countOp(none, Opcode::RET), 0u);

    RandProgConfig deep;
    deep.callDepth = 5;
    const Program chain = generateRandomProgram(5, deep);
    // One RET per chain level, and at least the chain's static JSRs.
    EXPECT_EQ(countOp(chain, Opcode::RET), 5u);
    EXPECT_GE(countOp(chain, Opcode::JSR), 4u);

    // The chain actually executes nested calls.
    Emulator e(chain);
    e.run(randProgInstBudget(deep));
    EXPECT_TRUE(e.halted());
}

TEST(RandProg, BranchWeightKnobChangesShape)
{
    RandProgConfig straight;
    straight.branchWeight = 0;
    const Program a = generateRandomProgram(6, straight);
    // Only the loop back edge remains.
    EXPECT_EQ(countCondBranches(a), 1u);

    RandProgConfig branchy;
    branchy.branchWeight = 8;
    const Program b = generateRandomProgram(6, branchy);
    EXPECT_GT(countCondBranches(b), 3u);
}

TEST(RandProg, MemFootprintKnobChangesShape)
{
    RandProgConfig small;
    small.memFootprint = 64;
    RandProgConfig big;
    big.memFootprint = 4096;
    const Program a = generateRandomProgram(8, small);
    const Program b = generateRandomProgram(8, big);
    // The scratch reservation is part of the data image.
    EXPECT_GT(b.data.size(), a.data.size() + 3000);

    // Both shapes still execute to completion.
    Emulator ea(a), eb(b);
    ea.run(randProgInstBudget(small));
    eb.run(randProgInstBudget(big));
    EXPECT_TRUE(ea.halted());
    EXPECT_TRUE(eb.halted());
}

TEST(RandProg, InvalidConfigsRejected)
{
    RandProgConfig c;
    c.memFootprint = 100; // not a power of two
    EXPECT_NE(validateRandProgConfig(c), "");

    c = RandProgConfig{};
    c.bodyOpsMin = 0;
    EXPECT_NE(validateRandProgConfig(c), "");

    c = RandProgConfig{};
    c.itersMin = 50;
    c.itersMax = 10; // empty range
    EXPECT_NE(validateRandProgConfig(c), "");

    c = RandProgConfig{};
    c.dataQuads = 4; // spill arm needs 8
    EXPECT_NE(validateRandProgConfig(c), "");

    // Unreasonably large shapes are rejected, not allocated.
    c = RandProgConfig{};
    c.bodyOpsMax = 1'000'000'000;
    EXPECT_NE(validateRandProgConfig(c), "");

    c = RandProgConfig{};
    c.dataQuads = 500'000'000;
    EXPECT_NE(validateRandProgConfig(c), "");

    c = RandProgConfig{};
    c.memFootprint = 1u << 30;
    EXPECT_NE(validateRandProgConfig(c), "");

    c = RandProgConfig{};
    EXPECT_EQ(validateRandProgConfig(c), "");
}

TEST(RandProgDeath, GenerateRejectsInvalidConfig)
{
    RandProgConfig c;
    c.memFootprint = 24;
    EXPECT_EXIT({ generateRandomProgram(1, c); },
                ::testing::ExitedWithCode(1), "mem_footprint");
}
