/**
 * @file
 * Unit tests for the fixed-size thread pool behind the sweep engine:
 * submission-order result collection, exception propagation through
 * futures, drain-on-destruction shutdown, and the RIX_JOBS knob.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "base/thread_pool.hh"

using namespace rix;

TEST(ThreadPool, ResultsCollectInSubmissionOrder)
{
    ThreadPool pool(4);
    std::vector<std::future<int>> futs;
    // Make early tasks slow so later tasks finish first; the futures
    // must still deliver each task's own value in submission order.
    for (int i = 0; i < 32; ++i) {
        futs.push_back(pool.submit([i]() {
            if (i < 4)
                std::this_thread::sleep_for(std::chrono::milliseconds(20));
            return i * i;
        }));
    }
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(futs[i].get(), i * i);
}

TEST(ThreadPool, ExceptionPropagatesToCollector)
{
    ThreadPool pool(2);
    auto ok = pool.submit([]() { return 7; });
    auto bad = pool.submit([]() -> int {
        throw std::runtime_error("job exploded");
    });
    auto also_ok = pool.submit([]() { return 9; });

    EXPECT_EQ(ok.get(), 7);
    EXPECT_THROW(bad.get(), std::runtime_error);
    // A throwing task must not take its worker down with it.
    EXPECT_EQ(also_ok.get(), 9);
}

TEST(ThreadPool, DestructorDrainsQueuedWork)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 64; ++i)
            pool.submit([&ran]() { ran.fetch_add(1); });
        // No get() on purpose: destruction alone must run everything.
    }
    EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, ConcurrentExceptionsReachTheirOwnFutures)
{
    // Many tasks throwing at once from different workers: each
    // exception must land in exactly its own future, with its own
    // message, and every healthy task must still deliver its value.
    ThreadPool pool(4);
    std::vector<std::future<int>> futs;
    for (int i = 0; i < 64; ++i) {
        futs.push_back(pool.submit([i]() -> int {
            if (i % 3 == 0)
                throw std::runtime_error("task " + std::to_string(i));
            return i;
        }));
    }
    for (int i = 0; i < 64; ++i) {
        if (i % 3 == 0) {
            try {
                futs[i].get();
                FAIL() << "task " << i << " should have thrown";
            } catch (const std::runtime_error &e) {
                EXPECT_EQ(std::string(e.what()),
                          "task " + std::to_string(i));
            }
        } else {
            EXPECT_EQ(futs[i].get(), i);
        }
    }
}

TEST(ThreadPool, CancelPendingBreaksFuturesOfDroppedTasks)
{
    ThreadPool pool(1);
    std::atomic<bool> started{false}, release{false};
    std::atomic<int> ran{0};
    // Occupy the only worker so everything behind it stays queued.
    auto gate = pool.submit([&]() {
        started.store(true);
        while (!release.load())
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        return 0;
    });
    // Wait until the worker actually holds the gate task; otherwise
    // cancelPending() could legitimately drop the gate itself.
    while (!started.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::vector<std::future<int>> queued;
    for (int i = 0; i < 8; ++i)
        queued.push_back(pool.submit([&ran, i]() {
            ran.fetch_add(1);
            return i;
        }));

    const size_t dropped = pool.cancelPending();
    release.store(true);
    EXPECT_EQ(gate.get(), 0);
    EXPECT_EQ(dropped, 8u);
    EXPECT_EQ(ran.load(), 0);
    // Dropped tasks' futures complete exceptionally (broken promise),
    // never block: a collector sees "skipped", not a hang.
    for (auto &f : queued)
        EXPECT_THROW(f.get(), std::future_error);

    // The pool remains fully usable after a cancellation.
    auto after = pool.submit([]() { return 5; });
    EXPECT_EQ(after.get(), 5);
}

TEST(ThreadPool, CancelDuringDestructorDrainIsRaceFree)
{
    // Hammer the cancel/drain race: cancelPending() runs concurrently
    // with the destructor draining the queue. The cancel is issued
    // from a task *on the pool* — unlike an external thread, a running
    // task cannot outlive the object (the destructor joins only after
    // every in-flight task returns), so this is the strongest race
    // the API actually permits. Whatever the interleaving, every
    // future must complete — by value or by broken promise — and
    // nothing may crash or hang.
    for (int round = 0; round < 20; ++round) {
        std::vector<std::future<int>> futs;
        std::future<size_t> dropped;
        {
            ThreadPool pool(2);
            dropped = pool.submit(
                [&pool]() { return pool.cancelPending(); });
            for (int i = 0; i < 32; ++i)
                futs.push_back(pool.submit([i]() { return i; }));
            // Pool destructor drains here, racing the cancel task.
        }
        int delivered = 0, broken = 0;
        for (auto &f : futs) {
            try {
                f.get();
                ++delivered;
            } catch (const std::future_error &) {
                ++broken;
            }
        }
        EXPECT_EQ(delivered + broken, 32);
        EXPECT_EQ(size_t(broken), dropped.get());
    }
}

TEST(ThreadPool, ZeroThreadsClampsToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1u);
    auto f = pool.submit([]() { return 42; });
    EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, JobsFromEnvKnob)
{
    setenv("RIX_JOBS", "3", 1);
    EXPECT_EQ(jobsFromEnv(), 3u);
    setenv("RIX_JOBS", "1", 1);
    EXPECT_EQ(jobsFromEnv(), 1u);
    unsetenv("RIX_JOBS");
    EXPECT_GE(jobsFromEnv(), 1u);
}

TEST(ThreadPoolDeathTest, JobsFromEnvRejectsZeroAndGarbage)
{
    // Historically strtoul mapped "0" and garbage to a silent serial
    // fallback; the strict parser must fail loudly instead.
    setenv("RIX_JOBS", "0", 1);
    EXPECT_EXIT(jobsFromEnv(), ::testing::ExitedWithCode(1),
                "RIX_JOBS: must be >= 1");
    setenv("RIX_JOBS", "abc", 1);
    EXPECT_EXIT(jobsFromEnv(), ::testing::ExitedWithCode(1),
                "RIX_JOBS: invalid value 'abc'");
    setenv("RIX_JOBS", "4x", 1);
    EXPECT_EXIT(jobsFromEnv(), ::testing::ExitedWithCode(1),
                "RIX_JOBS: invalid value '4x'");
    setenv("RIX_JOBS", "", 1);
    EXPECT_EXIT(jobsFromEnv(), ::testing::ExitedWithCode(1),
                "RIX_JOBS: empty value");
    setenv("RIX_JOBS", "99999", 1);
    EXPECT_EXIT(jobsFromEnv(), ::testing::ExitedWithCode(1),
                "RIX_JOBS: 99999 workers");
    unsetenv("RIX_JOBS");
}
