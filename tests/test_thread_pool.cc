/**
 * @file
 * Unit tests for the fixed-size thread pool behind the sweep engine:
 * submission-order result collection, exception propagation through
 * futures, drain-on-destruction shutdown, and the RIX_JOBS knob.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "base/thread_pool.hh"

using namespace rix;

TEST(ThreadPool, ResultsCollectInSubmissionOrder)
{
    ThreadPool pool(4);
    std::vector<std::future<int>> futs;
    // Make early tasks slow so later tasks finish first; the futures
    // must still deliver each task's own value in submission order.
    for (int i = 0; i < 32; ++i) {
        futs.push_back(pool.submit([i]() {
            if (i < 4)
                std::this_thread::sleep_for(std::chrono::milliseconds(20));
            return i * i;
        }));
    }
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(futs[i].get(), i * i);
}

TEST(ThreadPool, ExceptionPropagatesToCollector)
{
    ThreadPool pool(2);
    auto ok = pool.submit([]() { return 7; });
    auto bad = pool.submit([]() -> int {
        throw std::runtime_error("job exploded");
    });
    auto also_ok = pool.submit([]() { return 9; });

    EXPECT_EQ(ok.get(), 7);
    EXPECT_THROW(bad.get(), std::runtime_error);
    // A throwing task must not take its worker down with it.
    EXPECT_EQ(also_ok.get(), 9);
}

TEST(ThreadPool, DestructorDrainsQueuedWork)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 64; ++i)
            pool.submit([&ran]() { ran.fetch_add(1); });
        // No get() on purpose: destruction alone must run everything.
    }
    EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, ZeroThreadsClampsToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1u);
    auto f = pool.submit([]() { return 42; });
    EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, JobsFromEnvKnob)
{
    setenv("RIX_JOBS", "3", 1);
    EXPECT_EQ(jobsFromEnv(), 3u);
    setenv("RIX_JOBS", "1", 1);
    EXPECT_EQ(jobsFromEnv(), 1u);
    unsetenv("RIX_JOBS");
    EXPECT_GE(jobsFromEnv(), 1u);
}

TEST(ThreadPoolDeathTest, JobsFromEnvRejectsZeroAndGarbage)
{
    // Historically strtoul mapped "0" and garbage to a silent serial
    // fallback; the strict parser must fail loudly instead.
    setenv("RIX_JOBS", "0", 1);
    EXPECT_EXIT(jobsFromEnv(), ::testing::ExitedWithCode(1),
                "RIX_JOBS: must be >= 1");
    setenv("RIX_JOBS", "abc", 1);
    EXPECT_EXIT(jobsFromEnv(), ::testing::ExitedWithCode(1),
                "RIX_JOBS: invalid value 'abc'");
    setenv("RIX_JOBS", "4x", 1);
    EXPECT_EXIT(jobsFromEnv(), ::testing::ExitedWithCode(1),
                "RIX_JOBS: invalid value '4x'");
    setenv("RIX_JOBS", "", 1);
    EXPECT_EXIT(jobsFromEnv(), ::testing::ExitedWithCode(1),
                "RIX_JOBS: empty value");
    setenv("RIX_JOBS", "99999", 1);
    EXPECT_EXIT(jobsFromEnv(), ::testing::ExitedWithCode(1),
                "RIX_JOBS: 99999 workers");
    unsetenv("RIX_JOBS");
}
