/**
 * @file
 * Bounds tests for the byte-budgeted, ref-counted LRU cache behind
 * `rix serve`: pinned entries survive any pressure, the budget holds
 * under churn, and eviction is invisible to correctness — a rebuilt
 * entry is bit-identical to the cold build.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "base/lru_cache.hh"
#include "emu/emulator.hh"
#include "workload/workload.hh"

using namespace rix;

namespace
{

/** Payload with an explicit size so tests control the byte math. */
struct Blob
{
    std::string body;
    int generation = 0;
};

LruCache<int, Blob>
makeCache(size_t budget)
{
    return LruCache<int, Blob>(
        budget, [](const Blob &b) { return b.body.size(); });
}

Blob
blob(int key, size_t bytes, int generation = 0)
{
    return Blob{std::string(bytes, char('a' + key % 26)), generation};
}

} // namespace

TEST(LruCache, HitsShareOneBuild)
{
    auto cache = makeCache(1024);
    int builds = 0;
    auto build = [&]() {
        ++builds;
        return blob(1, 10);
    };
    auto a = cache.get(1, build);
    auto b = cache.get(1, build);
    EXPECT_EQ(builds, 1);
    EXPECT_EQ(a.get(), b.get());
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(LruCache, EvictsLeastRecentlyUsedFirstUnderBudget)
{
    auto cache = makeCache(100);
    cache.get(1, [] { return blob(1, 40); });
    cache.get(2, [] { return blob(2, 40); });
    cache.get(1, [] { return blob(1, 40); }); // touch: 2 is now LRU
    cache.get(3, [] { return blob(3, 40); }); // 120 bytes: evict 2
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_LE(cache.bytes(), 100u);
    EXPECT_TRUE(cache.peek(1));
    EXPECT_FALSE(cache.peek(2));
    EXPECT_TRUE(cache.peek(3));
}

TEST(LruCache, PinnedEntriesAreNeverEvicted)
{
    auto cache = makeCache(100);
    auto pinned = cache.get(1, [] { return blob(1, 80); });
    // Churn far past the budget while key 1 stays referenced.
    for (int k = 2; k < 30; ++k)
        cache.get(k, [k] { return blob(k, 60); });
    EXPECT_TRUE(cache.peek(1));
    EXPECT_EQ(pinned->body, blob(1, 80).body);
    // Once the pin drops, the next insertion brings totals back under
    // budget (the budget is a hard bound on unpinned content).
    pinned.reset();
    cache.get(99, [] { return blob(99, 10); });
    EXPECT_LE(cache.bytes(), 100u);
}

TEST(LruCache, ByteBudgetHoldsUnderChurn)
{
    auto cache = makeCache(1000);
    for (int round = 0; round < 50; ++round)
        for (int k = 0; k < 20; ++k)
            cache.get(k, [k] { return blob(k, 90); });
    // 20 live keys x 90 bytes = 1800 demanded, budget 1000: unpinned
    // content must have been clamped every insertion.
    EXPECT_LE(cache.bytes(), 1000u);
    EXPECT_GT(cache.evictions(), 0u);
    EXPECT_LE(cache.size(), 12u); // 1000 / 90
}

TEST(LruCache, ZeroBudgetCachesNothingButStillServes)
{
    auto cache = makeCache(0);
    auto a = cache.get(1, [] { return blob(1, 10, 1); });
    EXPECT_EQ(a->generation, 1);
    a.reset();
    // Eviction runs at insertion time: the next (unrelated) build
    // sweeps out everything unpinned.
    cache.get(2, [] { return blob(2, 10); });
    EXPECT_FALSE(cache.peek(1));
    auto b = cache.get(1, [] { return blob(1, 10, 2); });
    EXPECT_EQ(b->generation, 2); // rebuilt: nothing was retained
    EXPECT_EQ(cache.evictions(), 2u);
}

TEST(LruCache, FailedBuildIsRetryable)
{
    auto cache = makeCache(100);
    EXPECT_THROW(cache.get(1,
                           []() -> Blob {
                               throw std::runtime_error("flaky build");
                           }),
                 std::runtime_error);
    auto v = cache.get(1, [] { return blob(1, 10); });
    EXPECT_TRUE(v);
    EXPECT_EQ(cache.misses(), 2u);
}

TEST(LruCache, ConcurrentSameKeyBuildsOnce)
{
    auto cache = makeCache(1 << 20);
    std::atomic<int> builds{0};
    std::vector<std::thread> threads;
    std::vector<LruCache<int, Blob>::Ptr> got(8);
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&, t]() {
            got[t] = cache.get(7, [&]() {
                builds.fetch_add(1);
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(5));
                return blob(7, 100);
            });
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(builds.load(), 1);
    for (int t = 1; t < 8; ++t)
        EXPECT_EQ(got[t].get(), got[0].get());
}

TEST(LruCache, ConcurrentDistinctKeysDontSerialize)
{
    auto cache = makeCache(1 << 20);
    std::vector<std::thread> threads;
    std::atomic<int> peak{0}, active{0};
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&, t]() {
            cache.get(t, [&]() {
                const int now = active.fetch_add(1) + 1;
                int p = peak.load();
                while (now > p && !peak.compare_exchange_weak(p, now))
                    ;
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(30));
                active.fetch_sub(1);
                return blob(t, 10);
            });
        });
    }
    for (auto &th : threads)
        th.join();
    // Builds of different keys run outside the cache mutex; with four
    // threads sleeping 30 ms each, at least two must have overlapped.
    EXPECT_GE(peak.load(), 2);
}

TEST(LruCache, EvictedProgramRebuildsBitIdentical)
{
    // The real daemon invariant: deterministic builders make eviction
    // invisible. Build a workload program, force it out, rebuild, and
    // compare every architectural byte.
    LruCache<std::string, Program> cache(
        1, [](const Program &p) {
            return p.code.size() * sizeof(Instruction) + p.data.size();
        });
    auto build = []() { return buildWorkload("gzip", 1); };
    auto first = cache.get("gzip@1", build);
    const std::vector<Instruction> code = first->code;
    const std::vector<u8> data = first->data;
    const InstAddr entry = first->entry;
    first.reset();
    cache.get("other", [] { return buildWorkload("mcf", 1); });
    ASSERT_FALSE(cache.peek("gzip@1")); // budget 1 byte: evicted

    auto again = cache.get("gzip@1", build);
    EXPECT_EQ(cache.misses(), 3u);
    ASSERT_EQ(again->code.size(), code.size());
    EXPECT_EQ(memcmp(again->code.data(), code.data(),
                     code.size() * sizeof(Instruction)),
              0);
    EXPECT_EQ(again->data, data);
    EXPECT_EQ(again->entry, entry);
}

TEST(LruCache, EvictedCheckpointRebuildsBitIdentical)
{
    LruCache<std::string, Checkpoint> cache(
        1, [](const Checkpoint &c) { return c.memoryBytes(); });
    const Program prog = buildWorkload("gzip", 1);
    auto build = [&prog]() {
        Emulator emu(prog);
        emu.run(5000);
        return emu.snapshot();
    };
    auto first = cache.get("ck", build);
    const Checkpoint saved = *first;
    first.reset();
    cache.get("other", build);
    ASSERT_FALSE(cache.peek("ck"));

    auto again = cache.get("ck", build);
    EXPECT_EQ(again->icount, saved.icount);
    EXPECT_EQ(again->pc, saved.pc);
    EXPECT_EQ(again->regs, saved.regs);
    EXPECT_EQ(again->output, saved.output);
    ASSERT_EQ(again->pages.size(), saved.pages.size());
    for (size_t i = 0; i < saved.pages.size(); ++i) {
        EXPECT_EQ(again->pages[i].pageNumber, saved.pages[i].pageNumber);
        EXPECT_EQ(again->pages[i].bytes, saved.pages[i].bytes);
    }
}
