/**
 * @file
 * Integration tests for the `rix serve` daemon, driven in-process
 * through a real Unix socket: protocol behavior, fault containment
 * (poisoned jobs never take the daemon down), backpressure under a
 * tiny admission bound, bounded cache memory across a large mixed
 * request storm, and the graceful drain contract.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "base/json.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "store/result_store.hh"

using namespace rix;

namespace
{

std::string
socketPath(const char *tag)
{
    return "/tmp/rix_test_" + std::string(tag) + "_" +
           std::to_string(getpid()) + ".sock";
}

ServeOptions
testOptions(const char *tag)
{
    ServeOptions o;
    o.socketPath = socketPath(tag);
    o.workers = 2;
    o.allowInject = true;
    // Generous: only a safety net. Tests that exercise the watchdog
    // use a per-request timeout_ms (or their own policy) — a healthy
    // job on an oversubscribed CI runner must never be reaped.
    o.policy.timeoutMs = 10'000;
    o.policy.retries = 1;
    o.policy.backoffBaseMs = 1;
    o.policy.backoffCapMs = 2;
    return o;
}

/** Parse a response line and return its "status" (or the parse error). */
std::string
statusOf(const std::string &line)
{
    std::string err;
    const JsonValue doc = JsonValue::parse(line, &err);
    if (!err.empty() || !doc.isObject())
        return "unparseable: " + line;
    const JsonValue *s = doc.find("status");
    return s && s->isString() ? s->asString() : "missing-status";
}

double
numberField(const std::string &line, const char *name)
{
    std::string err;
    const JsonValue doc = JsonValue::parse(line, &err);
    const JsonValue *v =
        err.empty() && doc.isObject() ? doc.find(name) : nullptr;
    return v && v->isNumber() ? v->asNumber() : -1.0;
}

} // namespace

TEST(Serve, PingStatsShutdownRoundTrip)
{
    Server server(testOptions("basic"));
    ASSERT_EQ(server.start(), "");

    ServeClient client;
    ASSERT_EQ(client.connect(server.options().socketPath), "");
    std::string resp;

    ASSERT_TRUE(client.sendLine("{\"op\": \"ping\"}"));
    ASSERT_TRUE(client.recvLine(&resp));
    EXPECT_EQ(statusOf(resp), "ok");

    ASSERT_TRUE(client.sendLine("{\"op\": \"stats\"}"));
    ASSERT_TRUE(client.recvLine(&resp));
    EXPECT_EQ(statusOf(resp), "ok");
    EXPECT_EQ(numberField(resp, "requests"), 2.0);

    ASSERT_TRUE(client.sendLine("{\"op\": \"shutdown\"}"));
    ASSERT_TRUE(client.recvLine(&resp));
    EXPECT_EQ(statusOf(resp), "ok");
    server.waitShutdown();
}

TEST(Serve, MalformedLinesNeverKillTheConnection)
{
    Server server(testOptions("malformed"));
    ASSERT_EQ(server.start(), "");
    ServeClient client;
    ASSERT_EQ(client.connect(server.options().socketPath), "");

    const char *garbage[] = {
        "not json at all",
        "[1, 2, 3]",
        "{\"op\": 42}",
        "{\"op\": \"run\"}",
        "{\"op\": \"run\", \"workload\": \"gzip\", \"scale\": 0}",
        "{\"op\": \"run\", \"workload\": \"gzip\", \"wat\": 1}",
        "{\"op\": \"conquer\"}",
    };
    std::string resp;
    for (const char *line : garbage) {
        ASSERT_TRUE(client.sendLine(line)) << line;
        ASSERT_TRUE(client.recvLine(&resp)) << line;
        EXPECT_EQ(statusOf(resp), "invalid") << line;
    }
    // The connection — and the daemon — are still fully serviceable.
    ASSERT_TRUE(client.sendLine("{\"op\": \"ping\"}"));
    ASSERT_TRUE(client.recvLine(&resp));
    EXPECT_EQ(statusOf(resp), "ok");
    EXPECT_EQ(server.stats().malformed.load(), 7u);

    server.requestShutdown();
    server.waitShutdown();
}

TEST(Serve, PoisonedJobsNeverKillTheDaemon)
{
    Server server(testOptions("poison"));
    ASSERT_EQ(server.start(), "");
    ServeClient client;
    ASSERT_EQ(client.connect(server.options().socketPath), "");

    // Pipeline crashes, hangs, transients and healthy work shuffled
    // together; every request must come back with its own id and the
    // right status, healthy results unperturbed.
    ASSERT_TRUE(client.sendLine(
        "{\"op\": \"run\", \"id\": \"h1\", \"workload\": \"gzip\", "
        "\"max_retired\": 50000}"));
    ASSERT_TRUE(client.sendLine(
        "{\"op\": \"run\", \"id\": \"c1\", \"workload\": \"mcf\", "
        "\"inject\": \"crash\"}"));
    ASSERT_TRUE(client.sendLine(
        "{\"op\": \"run\", \"id\": \"t1\", \"workload\": \"mcf\", "
        "\"inject\": \"transient\", \"max_retired\": 50000}"));
    ASSERT_TRUE(client.sendLine(
        "{\"op\": \"run\", \"id\": \"g1\", \"workload\": \"gzip\", "
        "\"inject\": \"hang\", \"timeout_ms\": 100}"));
    ASSERT_TRUE(client.sendLine(
        "{\"op\": \"run\", \"id\": \"h2\", \"workload\": \"gzip\", "
        "\"max_retired\": 50000}"));

    std::map<std::string, std::string> statusById;
    std::map<std::string, double> retiredById;
    for (int i = 0; i < 5; ++i) {
        std::string resp;
        ASSERT_TRUE(client.recvLine(&resp));
        std::string err;
        const JsonValue doc = JsonValue::parse(resp, &err);
        ASSERT_EQ(err, "") << resp;
        const JsonValue *id = doc.find("id");
        ASSERT_TRUE(id && id->isString()) << resp;
        statusById[id->asString()] = statusOf(resp);
        retiredById[id->asString()] = numberField(resp, "retired");
    }
    EXPECT_EQ(statusById["h1"], "ok");
    EXPECT_EQ(statusById["h2"], "ok");
    EXPECT_EQ(statusById["c1"], "crash");
    EXPECT_EQ(statusById["t1"], "ok"); // recovered by retry
    EXPECT_EQ(statusById["g1"], "timeout");
    // Identical healthy requests, identical simulated numbers.
    EXPECT_GT(retiredById["h1"], 0.0);
    EXPECT_EQ(retiredById["h1"], retiredById["h2"]);
    EXPECT_GE(server.stats().retries.load(), 1u);

    server.requestShutdown();
    server.waitShutdown();
}

TEST(Serve, BackpressureRejectsBeyondQueueDepth)
{
    ServeOptions opts = testOptions("backpressure");
    opts.queueDepth = 2;
    opts.workers = 1;
    opts.policy.timeoutMs = 300;
    opts.policy.retries = 0;
    Server server(opts);
    ASSERT_EQ(server.start(), "");
    ServeClient client;
    ASSERT_EQ(client.connect(opts.socketPath), "");

    // One hang occupies the only worker for its whole timeout; the
    // next job waits in the queue; everything past queueDepth=2 must
    // bounce immediately with "overloaded".
    for (int i = 0; i < 6; ++i) {
        ASSERT_TRUE(client.sendLine(
            "{\"op\": \"run\", \"id\": " + std::to_string(i) +
            ", \"workload\": \"gzip\", \"inject\": \"hang\"}"));
    }
    int overloaded = 0, timedOut = 0;
    for (int i = 0; i < 6; ++i) {
        std::string resp;
        ASSERT_TRUE(client.recvLine(&resp));
        const std::string s = statusOf(resp);
        overloaded += s == "overloaded";
        timedOut += s == "timeout";
    }
    EXPECT_EQ(overloaded, 4);
    EXPECT_EQ(timedOut, 2);
    EXPECT_EQ(server.stats().overloaded.load(), 4u);
    EXPECT_EQ(server.stats().admitted.load(), 2u);

    server.requestShutdown();
    server.waitShutdown();
}

TEST(Serve, HundredMixedRequestsFlatMemory)
{
    // The acceptance bar: >= 100 mixed requests (healthy, malformed,
    // poisoned) on one daemon; every one answered, memory bounded by
    // the cache budget throughout.
    ServeOptions opts = testOptions("storm");
    opts.cacheBytes = 1 << 20; // tight: force eviction under churn
    opts.workers = 4;
    opts.queueDepth = 256;
    Server server(opts);
    ASSERT_EQ(server.start(), "");
    ServeClient client;
    ASSERT_EQ(client.connect(opts.socketPath), "");

    const char *workloads[] = {"gzip", "mcf", "crafty", "bzip2", "gcc"};
    int sent = 0;
    for (int i = 0; i < 120; ++i) {
        std::string line;
        switch (i % 6) {
          case 0:
          case 1:
          case 2:
            line = "{\"op\": \"run\", \"id\": " + std::to_string(i) +
                   ", \"workload\": \"" +
                   workloads[(i / 6) % 5] +
                   "\", \"max_retired\": 20000}";
            break;
          case 3:
            line = "{\"op\": \"run\", \"id\": " + std::to_string(i) +
                   ", \"workload\": \"" + workloads[i % 5] +
                   "\", \"inject\": \"crash\"}";
            break;
          case 4:
            line = "this is not a request";
            break;
          case 5:
            line = "{\"op\": \"stats\"}";
            break;
        }
        ASSERT_TRUE(client.sendLine(line));
        ++sent;
    }
    int ok = 0, crash = 0, invalid = 0;
    for (int i = 0; i < sent; ++i) {
        std::string resp;
        ASSERT_TRUE(client.recvLine(&resp)) << "response " << i;
        const std::string s = statusOf(resp);
        ok += s == "ok";
        crash += s == "crash";
        invalid += s == "invalid";
    }
    EXPECT_EQ(ok + crash + invalid, sent);
    EXPECT_EQ(crash, 20);
    EXPECT_EQ(invalid, 20);
    EXPECT_EQ(ok, 80); // 60 runs + 20 stats

    // Flat memory: both caches clamped to their half of the budget
    // (nothing is pinned once the jobs finished).
    EXPECT_LE(server.programCache().bytes(), opts.cacheBytes / 2);
    EXPECT_GT(server.programCache().hits(), 0u);
    EXPECT_EQ(server.stats().completed.load(), 80u);
    EXPECT_EQ(server.queueDepth(), 0u);

    server.requestShutdown();
    server.waitShutdown();
}

TEST(Serve, SampledRunsShareCheckpointsAcrossRequests)
{
    Server server(testOptions("sampled"));
    ASSERT_EQ(server.start(), "");
    ServeClient client;
    ASSERT_EQ(client.connect(server.options().socketPath), "");

    const std::string req =
        "{\"op\": \"run\", \"workload\": \"gzip\", \"max_retired\": "
        "5000, \"checkpoint_at\": 10000, \"warmup\": 500}";
    std::string first, second;
    ASSERT_TRUE(client.sendLine(req));
    ASSERT_TRUE(client.recvLine(&first));
    ASSERT_TRUE(client.sendLine(req));
    ASSERT_TRUE(client.recvLine(&second));
    EXPECT_EQ(statusOf(first), "ok");
    // Bit-identical repeat: the checkpoint came from the LRU cache
    // the second time, and the simulated numbers must not notice.
    EXPECT_EQ(numberField(first, "retired"), 5000.0);
    EXPECT_EQ(numberField(first, "retired"),
              numberField(second, "retired"));
    EXPECT_EQ(numberField(first, "cycles"),
              numberField(second, "cycles"));

    server.requestShutdown();
    server.waitShutdown();
}

TEST(Serve, ShutdownDrainsAdmittedJobs)
{
    ServeOptions opts = testOptions("drain");
    opts.workers = 2;
    Server server(opts);
    ASSERT_EQ(server.start(), "");
    ServeClient client;
    ASSERT_EQ(client.connect(opts.socketPath), "");

    // Admit real work, then immediately ask for shutdown: every
    // admitted job must still complete and deliver its response
    // before the socket closes.
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(client.sendLine(
            "{\"op\": \"run\", \"id\": " + std::to_string(i) +
            ", \"workload\": \"mcf\", \"max_retired\": 50000}"));
    ASSERT_TRUE(client.sendLine("{\"op\": \"shutdown\"}"));

    int okRuns = 0, acks = 0;
    for (int i = 0; i < 5; ++i) {
        std::string resp;
        ASSERT_TRUE(client.recvLine(&resp)) << "response " << i;
        const std::string s = statusOf(resp);
        if (numberField(resp, "retired") > 0)
            ++okRuns;
        else if (s == "ok")
            ++acks;
    }
    EXPECT_EQ(okRuns, 4);
    EXPECT_EQ(acks, 1);
    server.waitShutdown();
    EXPECT_EQ(server.stats().completed.load(), 4u);

    // After the drain the socket is gone: new connections fail.
    ServeClient late;
    EXPECT_NE(late.connect(opts.socketPath), "");
}

TEST(Serve, RunsAfterShutdownAreRefused)
{
    ServeOptions opts = testOptions("late");
    Server server(opts);
    ASSERT_EQ(server.start(), "");
    ServeClient client;
    ASSERT_EQ(client.connect(opts.socketPath), "");

    server.requestShutdown();
    // The reader may or may not still accept the line depending on
    // drain progress; when it does, the answer is "shutting-down",
    // never silent job loss.
    if (client.sendLine("{\"op\": \"run\", \"workload\": \"gzip\"}")) {
        std::string resp;
        if (client.recvLine(&resp))
            EXPECT_EQ(statusOf(resp), "shutting-down");
    }
    server.waitShutdown();
    EXPECT_EQ(server.stats().admitted.load(), 0u);
}

TEST(Serve, InjectRequiresOptIn)
{
    ServeOptions opts = testOptions("noinject");
    opts.allowInject = false;
    Server server(opts);
    ASSERT_EQ(server.start(), "");
    ServeClient client;
    ASSERT_EQ(client.connect(opts.socketPath), "");

    ASSERT_TRUE(client.sendLine(
        "{\"op\": \"run\", \"workload\": \"gzip\", \"inject\": "
        "\"crash\"}"));
    std::string resp;
    ASSERT_TRUE(client.recvLine(&resp));
    EXPECT_EQ(statusOf(resp), "invalid");
    EXPECT_EQ(server.stats().admitted.load(), 0u);

    server.requestShutdown();
    server.waitShutdown();
}

TEST(Serve, BadSocketPathFailsWithOneDiagnostic)
{
    ServeOptions opts = testOptions("bad");
    opts.socketPath = "/nonexistent-dir/rix.sock";
    Server server(opts);
    const std::string err = server.start();
    ASSERT_NE(err, "");
    EXPECT_NE(err.find("cannot bind"), std::string::npos);
    EXPECT_EQ(err.find('\n'), std::string::npos); // single line

    ServeOptions longOpts = testOptions("long");
    longOpts.socketPath = "/tmp/" + std::string(200, 'x') + ".sock";
    Server longServer(longOpts);
    EXPECT_NE(longServer.start().find("too long"), std::string::npos);
}

// ---- RIX_STORE_DIR journaling ---------------------------------------

TEST(Serve, JournalsOkResultsAcrossRestarts)
{
    const std::string journal = "/tmp/rix_test_journal_" +
                                std::to_string(getpid()) + ".rixstore";
    ::remove(journal.c_str());

    ServeOptions opts = testOptions("journal");
    opts.storePath = journal;
    {
        Server server(opts);
        ASSERT_EQ(server.start(), "");
        ServeClient client;
        ASSERT_EQ(client.connect(opts.socketPath), "");

        // Two clean runs and one injected crash: only ok results are
        // journaled — failures are worth a resubmit, not a tombstone.
        ASSERT_TRUE(client.sendLine(
            "{\"op\": \"run\", \"id\": 1, \"workload\": \"gzip\", "
            "\"max_retired\": 20000}"));
        ASSERT_TRUE(client.sendLine(
            "{\"op\": \"run\", \"id\": 2, \"workload\": \"mcf\", "
            "\"max_retired\": 20000}"));
        ASSERT_TRUE(client.sendLine(
            "{\"op\": \"run\", \"id\": 3, \"workload\": \"gzip\", "
            "\"inject\": \"crash\"}"));
        std::string resp;
        for (int i = 0; i < 3; ++i)
            ASSERT_TRUE(client.recvLine(&resp));
        server.requestShutdown();
        server.waitShutdown();
        EXPECT_EQ(server.stats().journaled.load(), 2u);
    }

    std::string err;
    auto store = ResultStore::openReadOnly(journal, &err);
    ASSERT_NE(store, nullptr) << err;
    EXPECT_EQ(store->meta().kind, StoreKind::Serve);
    ASSERT_EQ(store->records().size(), 2u);
    for (const StoreRecord &r : store->records()) {
        EXPECT_TRUE(r.result.ok());
        EXPECT_GT(r.result.report.core.retired, 0u);
    }

    // A restarted daemon resumes the same journal; indices stay
    // monotonic across the generations.
    const u64 maxBefore = std::max(store->records()[0].jobIndex,
                                   store->records()[1].jobIndex);
    store.reset();
    {
        Server server(opts);
        ASSERT_EQ(server.start(), "");
        ServeClient client;
        ASSERT_EQ(client.connect(opts.socketPath), "");
        ASSERT_TRUE(client.sendLine(
            "{\"op\": \"run\", \"id\": 4, \"workload\": \"mcf\", "
            "\"max_retired\": 20000}"));
        std::string resp;
        ASSERT_TRUE(client.recvLine(&resp));
        EXPECT_EQ(statusOf(resp), "ok");
        server.requestShutdown();
        server.waitShutdown();
    }
    store = ResultStore::openReadOnly(journal, &err);
    ASSERT_NE(store, nullptr) << err;
    ASSERT_EQ(store->records().size(), 3u);
    EXPECT_GT(store->records().back().jobIndex, maxBefore);
    ::remove(journal.c_str());
}

// ---- submitBatch transient-failure retries --------------------------

namespace
{

/**
 * A deliberately flaky daemon facsimile: a raw AF_UNIX server whose
 * first connection answers exactly one request and then slams the
 * connection shut (the client sees ECONNRESET / EOF mid-batch); every
 * later connection answers everything. Runs until the listener is
 * closed.
 */
class FlakyServer
{
  public:
    explicit FlakyServer(const std::string &path) : path_(path)
    {
        ::unlink(path_.c_str());
        fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);
        EXPECT_EQ(::bind(fd_, reinterpret_cast<sockaddr *>(&addr),
                         sizeof(addr)), 0);
        EXPECT_EQ(::listen(fd_, 8), 0);
        thread_ = std::thread([this]() { loop(); });
    }

    ~FlakyServer()
    {
        ::shutdown(fd_, SHUT_RDWR);
        ::close(fd_);
        thread_.join();
        ::unlink(path_.c_str());
    }

    int connections() const { return conns_.load(); }

  private:
    void
    loop()
    {
        for (;;) {
            const int c = ::accept(fd_, nullptr, nullptr);
            if (c < 0)
                return;
            const int n = conns_.fetch_add(1) + 1;
            serveConn(c, /*dropAfterOne=*/n == 1);
            ::close(c);
        }
    }

    void
    serveConn(int c, bool dropAfterOne)
    {
        std::string pending;
        int answered = 0;
        char buf[4096];
        for (;;) {
            const size_t nl = pending.find('\n');
            if (nl == std::string::npos) {
                const ssize_t n = ::recv(c, buf, sizeof(buf), 0);
                if (n <= 0)
                    return;
                pending.append(buf, size_t(n));
                continue;
            }
            const std::string line = pending.substr(0, nl);
            pending.erase(0, nl + 1);
            std::string err;
            const JsonValue doc = JsonValue::parse(line, &err);
            const JsonValue *id =
                err.empty() && doc.isObject() ? doc.find("id") : nullptr;
            const std::string resp = "{\"id\": " +
                                     (id ? id->dump() : "null") +
                                     ", \"status\": \"ok\"}\n";
            if (::send(c, resp.data(), resp.size(), MSG_NOSIGNAL) < 0)
                return;
            if (dropAfterOne && ++answered >= 1)
                return; // abrupt close mid-batch
        }
    }

    std::string path_;
    int fd_ = -1;
    std::atomic<int> conns_{0};
    std::thread thread_;
};

} // namespace

TEST(SubmitBatch, ReconnectsAndResendsUnansweredRequests)
{
    const std::string path = socketPath("flaky");
    FlakyServer flaky(path);

    std::vector<std::string> lines = {
        "{\"op\": \"ping\", \"id\": 1}",
        "{\"op\": \"ping\", \"id\": 2}",
        "{\"op\": \"ping\", \"id\": 3}",
    };
    SubmitOptions opts;
    opts.maxAttempts = 5;
    opts.backoffStartMs = 1;
    opts.backoffCapMs = 4;

    std::vector<std::string> responses;
    const SubmitOutcome out = submitBatch(
        path, lines,
        [&responses](const std::string &r) { responses.push_back(r); },
        opts);

    EXPECT_TRUE(out.complete) << out.error;
    EXPECT_EQ(out.answered, 3u);
    EXPECT_GE(out.reconnects, 1u);
    EXPECT_GE(flaky.connections(), 2);
    ASSERT_EQ(responses.size(), 3u);
    // Every id answered exactly once, whatever the arrival order.
    std::map<std::string, int> seen;
    for (const std::string &r : responses)
        ++seen[r.substr(0, r.find(','))];
    EXPECT_EQ(seen.size(), 3u);
}

TEST(SubmitBatch, GivesUpAfterBoundedAttempts)
{
    SubmitOptions opts;
    opts.maxAttempts = 3;
    opts.backoffStartMs = 1;
    opts.backoffCapMs = 2;

    size_t delivered = 0;
    const SubmitOutcome out = submitBatch(
        "/tmp/rix_test_never_listening.sock",
        {"{\"op\": \"ping\", \"id\": 1}"},
        [&delivered](const std::string &) { ++delivered; }, opts);

    EXPECT_FALSE(out.complete);
    EXPECT_EQ(delivered, 0u);
    EXPECT_EQ(out.answered, 0u);
    EXPECT_NE(out.error.find("connect"), std::string::npos)
        << out.error;
}

TEST(SubmitBatch, EmptyBatchIsTriviallyComplete)
{
    const SubmitOutcome out = submitBatch(
        "/tmp/rix_test_never_listening.sock", {},
        [](const std::string &) {});
    EXPECT_TRUE(out.complete);
    EXPECT_EQ(out.answered, 0u);
}
