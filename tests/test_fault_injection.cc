/**
 * @file
 * Fault-injection self-test of the differential-verification
 * subsystem: under cmake -DRIX_FAULT_INJECT=ON the execute stage
 * deliberately flips one bit of every ADDQ result, and this suite
 * proves the subsystem can actually fail — the lockstep checker
 * catches the bug at the exact architectural instruction, `rix fuzz`
 * finds it, and the minimizer shrinks the failing program to a
 * handful of instructions with a replayable reproducer.
 *
 * In a normal build the same suite asserts the *absence* of all of
 * that: the handcrafted program and a small fuzz campaign run clean.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "assembler/builder.hh"
#include "cpu/core.hh"
#include "sim/fuzz.hh"
#include "sim/presets.hh"

using namespace rix;

namespace
{

/** li, li, addq (arch index 2), dependent addq, emit, halt. */
Program
addqProgram()
{
    Builder b("addq_probe");
    b.li(1, 5);
    b.li(2, 7);
    b.addq(3, 1, 2);
    b.addq(4, 3, 2);
    b.syscall(s32(SyscallCode::Emit), 4);
    b.halt();
    return b.finish();
}

CoreParams
lockstepParams()
{
    CoreParams p = integrationParams(IntegrationMode::Reverse);
    p.check.lockstep = true;
    return p;
}

} // namespace

TEST(FaultInjection, LockstepCatchesTheFaultAtTheExactInstruction)
{
    const Program p = addqProgram();
    Core core(p, lockstepParams());
    core.run(1000, 10'000);

    if (!buildHasInjectedFault()) {
        EXPECT_TRUE(core.halted());
        EXPECT_EQ(core.divergence(), nullptr);
        EXPECT_EQ(core.golden().reg(LogReg(3)), 12u);
        return;
    }

    // The first ADDQ is architectural instruction 2 (after the two
    // load-immediates); the checker must stop exactly there.
    EXPECT_FALSE(core.halted());
    const DivergenceReport *d = core.divergence();
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->kind, "value");
    EXPECT_EQ(d->icount, 2u);
    EXPECT_EQ(d->pc, core.golden().pc());
    EXPECT_NE(d->disasm.find("addq"), std::string::npos) << d->disasm;
    EXPECT_NE(d->reason.find("destination value"), std::string::npos)
        << d->reason;
    // Both architectural states are part of the report.
    EXPECT_NE(d->goldenState.find("r3"), std::string::npos);
    EXPECT_NE(d->shadowState.find("r3"), std::string::npos);
}

TEST(FaultInjection, WithoutLockstepTheFaultStillPanics)
{
    if (!buildHasInjectedFault())
        GTEST_SKIP() << "normal build: nothing to panic about";
    const Program p = addqProgram();
    CoreParams params = integrationParams(IntegrationMode::Reverse);
    EXPECT_DEATH(
        {
            Core core(p, params);
            core.run(1000, 10'000);
        },
        "DIVA mismatch");
}

TEST(FaultInjection, FuzzFindsMinimizesAndWritesReproducer)
{
    FuzzOptions opts;
    opts.seeds = 5;
    // Small programs keep both the campaign and the shrink fast.
    opts.prog.itersMin = 20;
    opts.prog.itersMax = 40;
    opts.prog.bodyOpsMin = 8;
    opts.prog.bodyOpsMax = 16;
    opts.reproPath = ::testing::TempDir() + "fuzz_repro_fault.txt";
    remove(opts.reproPath.c_str());

    const FuzzResult res = runFuzz(opts);

    if (!buildHasInjectedFault()) {
        EXPECT_FALSE(res.failed);
        return;
    }

    ASSERT_TRUE(res.failed);
    const FuzzFailure &f = res.failure;
    EXPECT_TRUE(f.report.diverged);

    // The acceptance bar: the shrinker gets a random failing program
    // down to a trivially-readable core.
    EXPECT_LE(f.liveInsts, 25u);
    EXPECT_GT(f.liveInsts, 0u);
    EXPECT_GT(f.minimizeRuns, 0u);

    // The reproducer file exists and names the essentials.
    ASSERT_EQ(res.reproFile, opts.reproPath);
    FILE *file = fopen(res.reproFile.c_str(), "r");
    ASSERT_NE(file, nullptr);
    std::string text;
    char buf[4096];
    size_t n;
    while ((n = fread(buf, 1, sizeof(buf), file)) > 0)
        text.append(buf, n);
    fclose(file);
    EXPECT_NE(text.find("# seed:"), std::string::npos);
    EXPECT_NE(text.find("# config:"), std::string::npos);
    EXPECT_NE(text.find("lockstep divergence"), std::string::npos);
    EXPECT_NE(text.find("# replay:"), std::string::npos);
    remove(res.reproFile.c_str());

    // Replayability: the recorded (seed, config) alone reproduces the
    // divergence.
    FuzzOptions replay = opts;
    replay.seeds = 1;
    replay.firstSeed = f.seed;
    replay.onlyConfig = f.configLabel;
    replay.minimize = false;
    replay.reproPath = ::testing::TempDir() + "fuzz_repro_replay.txt";
    const FuzzResult again = runFuzz(replay);
    ASSERT_TRUE(again.failed);
    EXPECT_EQ(again.failure.seed, f.seed);
    EXPECT_EQ(again.failure.configLabel, f.configLabel);
    EXPECT_EQ(again.failure.report.icount, f.report.icount);
    remove(replay.reproPath.c_str());

    // The minimized program still fails on its own.
    CoreParams params = fuzzPanel("", f.configLabel)[0].params;
    Core core(f.minimized, params);
    core.run(10'000'000, 50'000'000);
    EXPECT_NE(core.divergence(), nullptr);
}
