/**
 * @file
 * Branch-prediction substrate tests: bimodal and gshare learning,
 * hybrid chooser adaptation, speculative-history checkpoint/restore,
 * BTB tagging and LRU, and RAS push/pop with TOS repair.
 */

#include <gtest/gtest.h>

#include "bpred/predictor.hh"

using namespace rix;

TEST(Bimodal, LearnsBias)
{
    BimodalPredictor p(64);
    for (int i = 0; i < 8; ++i)
        p.update(5, true);
    EXPECT_TRUE(p.predict(5));
    for (int i = 0; i < 8; ++i)
        p.update(5, false);
    EXPECT_FALSE(p.predict(5));
}

TEST(Gshare, LearnsHistoryCorrelation)
{
    GsharePredictor p(256, 4);
    // Alternating branch: global history disambiguates.
    for (int i = 0; i < 200; ++i) {
        const bool dir = (i % 2) == 0;
        const u64 h = p.history();
        const bool pred = p.predict(9);
        (void)pred;
        p.update(9, h, dir);
        p.speculate(dir);
    }
    // After training, predictions should track the alternation.
    int correct = 0;
    for (int i = 0; i < 20; ++i) {
        const bool dir = (i % 2) == 0;
        if (p.predict(9) == dir)
            ++correct;
        const u64 h = p.history();
        p.update(9, h, dir);
        p.speculate(dir);
    }
    EXPECT_GE(correct, 18);
}

TEST(Gshare, HistoryRestore)
{
    GsharePredictor p(64, 6);
    p.speculate(true);
    p.speculate(true);
    const u64 h = p.history();
    p.speculate(false);
    EXPECT_NE(p.history(), h);
    p.restoreHistory(h);
    EXPECT_EQ(p.history(), h);
}

TEST(Hybrid, PredictsAndTrains)
{
    HybridPredictor h({});
    for (int i = 0; i < 50; ++i) {
        auto pr = h.predict(33);
        h.update(33, pr, true);
    }
    EXPECT_TRUE(h.predict(33).taken);
}

TEST(Btb, TagsDistinguishPcs)
{
    Btb btb(16, 2);
    InstAddr t = 0;
    EXPECT_FALSE(btb.lookup(100, &t));
    btb.update(100, 777);
    EXPECT_TRUE(btb.lookup(100, &t));
    EXPECT_EQ(t, 777u);
    // Same set, different tag.
    EXPECT_FALSE(btb.lookup(100 + 8 * 16, &t));
}

TEST(Btb, UpdateOverwritesTarget)
{
    Btb btb(16, 2);
    btb.update(5, 10);
    btb.update(5, 20);
    InstAddr t = 0;
    EXPECT_TRUE(btb.lookup(5, &t));
    EXPECT_EQ(t, 20u);
}

TEST(Btb, LruEviction)
{
    Btb btb(4, 2); // 2 sets x 2 ways
    btb.update(0, 1);
    btb.update(2, 2); // same set (even pcs)
    InstAddr t;
    btb.lookup(0, &t); // touch 0
    btb.update(4, 3);  // evicts 2
    EXPECT_TRUE(btb.lookup(0, &t));
    EXPECT_FALSE(btb.lookup(2, &t));
    EXPECT_TRUE(btb.lookup(4, &t));
}

TEST(Ras, PushPop)
{
    ReturnAddressStack ras(8);
    ras.push(10);
    ras.push(20);
    EXPECT_EQ(ras.depth(), 2u);
    EXPECT_EQ(ras.pop(), 20u);
    EXPECT_EQ(ras.pop(), 10u);
    EXPECT_EQ(ras.depth(), 0u);
    EXPECT_EQ(ras.pop(), 0u); // underflow predicts 0
}

TEST(Ras, CheckpointRepair)
{
    ReturnAddressStack ras(8);
    ras.push(10);
    auto cp = ras.save();
    ras.push(20); // wrong path
    ras.pop();
    ras.pop();
    ras.restore(cp);
    EXPECT_EQ(ras.depth(), 1u);
    EXPECT_EQ(ras.pop(), 10u);
}

TEST(Ras, WrapsCircularly)
{
    ReturnAddressStack ras(4);
    for (InstAddr i = 1; i <= 6; ++i)
        ras.push(i);
    // Oldest entries overwritten; the most recent four survive.
    EXPECT_EQ(ras.pop(), 6u);
    EXPECT_EQ(ras.pop(), 5u);
    EXPECT_EQ(ras.pop(), 4u);
    EXPECT_EQ(ras.pop(), 3u);
}

TEST(PredictorUnit, DirectJumpAndCall)
{
    BranchPredictorUnit bp({});
    BranchPrediction pred;
    InstAddr next = bp.predict(makeJump(42), 10, &pred);
    EXPECT_EQ(next, 42u);
    EXPECT_TRUE(pred.isControl);

    next = bp.predict(makeCall(100), 20, &pred);
    EXPECT_EQ(next, 100u);
    EXPECT_EQ(bp.callDepth(), 1u);

    next = bp.predict(makeIndirect(Opcode::RET, regRa), 100, &pred);
    EXPECT_EQ(next, 21u); // RAS: return to call site + 1
    EXPECT_EQ(bp.callDepth(), 0u);
}

TEST(PredictorUnit, CallDepthTracksNesting)
{
    BranchPredictorUnit bp({});
    BranchPrediction pred;
    bp.predict(makeCall(100), 1, &pred);
    EXPECT_EQ(pred.callDepth, 0u); // depth *at* the call instruction
    bp.predict(makeCall(200), 101, &pred);
    EXPECT_EQ(pred.callDepth, 1u);
    bp.predict(makeRR(Opcode::ADDQ, 1, 2, 3), 201, &pred);
    EXPECT_EQ(pred.callDepth, 2u);
}

TEST(PredictorUnit, RepairBeforeRestoresRasAndHistory)
{
    BranchPredictorUnit bp({});
    BranchPrediction outer;
    bp.predict(makeCall(100), 1, &outer);
    BranchPrediction wrong;
    bp.predict(makeCall(200), 101, &wrong); // wrong-path call
    EXPECT_EQ(bp.callDepth(), 2u);
    bp.repairBefore(wrong);
    EXPECT_EQ(bp.callDepth(), 1u);
    BranchPrediction pred;
    EXPECT_EQ(bp.predict(makeIndirect(Opcode::RET, regRa), 150, &pred),
              2u);
}

TEST(PredictorUnit, ApplyOutcomeReplaysEffect)
{
    BranchPredictorUnit bp({});
    BranchPrediction pred;
    bp.predict(makeBranch(Opcode::BEQ, 1, 50), 10, &pred);
    const u64 h = bp.direction().history();
    bp.repairBefore(pred);
    bp.applyOutcome(makeBranch(Opcode::BEQ, 1, 50), 10, pred.predTaken);
    EXPECT_EQ(bp.direction().history(), h);

    bp.applyOutcome(makeCall(77), 30, true);
    EXPECT_EQ(bp.callDepth(), 1u);
    bp.applyOutcome(makeIndirect(Opcode::RET, regRa), 80, true);
    EXPECT_EQ(bp.callDepth(), 0u);
}

TEST(PredictorUnit, IndirectJumpUsesBtb)
{
    BranchPredictorUnit bp({});
    BranchPrediction pred;
    Instruction jmp = makeIndirect(Opcode::JMP, 5);
    // Untrained: falls through.
    EXPECT_EQ(bp.predict(jmp, 10, &pred), 11u);
    bp.update(jmp, 10, pred, true, 99);
    EXPECT_EQ(bp.predict(jmp, 10, &pred), 99u);
}
