/**
 * @file
 * Workload-suite tests, parameterized over all 16 benchmark instances:
 * programs build, halt on the functional emulator within budget, emit a
 * checksum, are deterministic, and scale with the scale parameter.
 */

#include <gtest/gtest.h>

#include "emu/emulator.hh"
#include "workload/workload.hh"

using namespace rix;

class WorkloadSuite : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadSuite, BuildsAndHalts)
{
    Program p = buildWorkload(GetParam(), 1);
    EXPECT_FALSE(p.code.empty());
    Emulator e(p);
    e.run(30'000'000);
    ASSERT_TRUE(e.halted()) << GetParam();
    EXPECT_GT(e.instsExecuted(), 10'000u) << "suspiciously small";
    EXPECT_LT(e.instsExecuted(), 5'000'000u) << "suspiciously large";
}

TEST_P(WorkloadSuite, EmitsChecksum)
{
    Program p = buildWorkload(GetParam(), 1);
    Emulator e(p);
    e.run(30'000'000);
    ASSERT_TRUE(e.halted());
    EXPECT_FALSE(e.output().empty());
}

TEST_P(WorkloadSuite, Deterministic)
{
    Program p1 = buildWorkload(GetParam(), 1);
    Program p2 = buildWorkload(GetParam(), 1);
    Emulator a(p1), b(p2);
    a.run(30'000'000);
    b.run(30'000'000);
    EXPECT_EQ(a.instsExecuted(), b.instsExecuted());
    EXPECT_EQ(a.output(), b.output());
}

TEST_P(WorkloadSuite, ScaleGrowsWork)
{
    Program p1 = buildWorkload(GetParam(), 1);
    Program p2 = buildWorkload(GetParam(), 2);
    Emulator a(p1), b(p2);
    a.run(60'000'000);
    b.run(60'000'000);
    ASSERT_TRUE(a.halted());
    ASSERT_TRUE(b.halted());
    EXPECT_GT(b.instsExecuted(), a.instsExecuted() * 3 / 2);
}

INSTANTIATE_TEST_SUITE_P(
    All, WorkloadSuite, ::testing::ValuesIn(workloadNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string n = info.param;
        for (char &c : n)
            if (c == '.')
                c = '_';
        return n;
    });

TEST(WorkloadRegistry, SixteenBenchmarks)
{
    EXPECT_EQ(allWorkloads().size(), 16u);
    // Paper reporting order: bzip2 first, vpr.r last.
    EXPECT_EQ(workloadNames().front(), "bzip2");
    EXPECT_EQ(workloadNames().back(), "vpr.r");
}

TEST(WorkloadRegistry, DescriptionsPresent)
{
    for (const auto &w : allWorkloads())
        EXPECT_GT(strlen(w.description), 10u) << w.name;
}

TEST(WorkloadCharacter, EonIsMemoryHeavy)
{
    // The paper singles out eon's load/store mix (45% on real SPEC;
    // the synthetic trace keeps it the most memory-op-dense of the
    // loop benchmarks).
    auto mem_rate = [](const char *name) {
        Program p = buildWorkload(name, 1);
        Emulator e(p);
        u64 mem = 0, total = 0;
        while (!e.halted() && total < 5'000'000) {
            StepResult r = e.step();
            ++total;
            mem += r.inst.isMem();
        }
        return double(mem) / double(total);
    };
    const double eon = mem_rate("eon.c");
    EXPECT_GT(eon, 0.27);
    EXPECT_GT(eon, mem_rate("crafty"));
}

TEST(WorkloadCharacter, CallIntensityOrdering)
{
    // vortex must be much more call-intensive than gzip.
    auto call_rate = [](const char *name) {
        Program p = buildWorkload(name, 1);
        Emulator e(p);
        u64 calls = 0, total = 0;
        while (!e.halted() && total < 5'000'000) {
            StepResult r = e.step();
            ++total;
            calls += r.inst.isCall();
        }
        return double(calls) / double(total);
    };
    EXPECT_GT(call_rate("vortex"), 10 * call_rate("gzip") + 1e-9);
}

TEST(WorkloadCharacter, McfTouchesLargeFootprint)
{
    Program p = buildWorkload("mcf", 1);
    // 2MB arcs + 2MB costs: the image alone busts the 2MB L2.
    EXPECT_GT(p.data.size(), 3u * 1024 * 1024);
}

TEST(WorkloadRegistry, UnknownNameDies)
{
    EXPECT_DEATH(buildWorkload("nonexistent"), "unknown workload");
}
