/**
 * @file
 * Observability tests (PR 9): pipeline-trace invariants (monotone
 * stage cycles, exact retire window, squash causes), the Konata golden
 * format and file round-trip, the zero-overhead contract (simulated
 * state bit-identical with tracing on or off), interval metrics
 * summing to the end-of-run aggregates, strict environment parsing,
 * the host-phase profiler, and Histogram::quantile.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <thread>

#include "base/histogram.hh"
#include "base/stats.hh"
#include "cpu/core.hh"
#include "trace/metrics.hh"
#include "trace/profiler.hh"
#include "trace/trace.hh"
#include "workload/workload.hh"

using namespace rix;

namespace
{

const Program &
cachedProgram(const std::string &name)
{
    static std::map<std::string, Program> cache;
    auto it = cache.find(name);
    if (it == cache.end())
        it = cache.emplace(name, buildWorkload(name, 1)).first;
    return it->second;
}

/** In-memory sink: keeps every event for invariant checks. */
struct CollectingSink : TraceSink
{
    std::vector<TraceEvent> events;

  protected:
    void write(const TraceEvent &ev) override { events.push_back(ev); }
};

void
expectMonotone(const TraceEvent &ev)
{
    EXPECT_LE(ev.fetch, ev.decode);
    EXPECT_LE(ev.decode, ev.rename);
    EXPECT_LE(ev.rename, ev.issue);
    EXPECT_LE(ev.issue, ev.complete);
    EXPECT_LE(ev.complete, ev.retire);
}

/** Scoped environment override (restores/unsets on destruction). */
struct EnvGuard
{
    EnvGuard(const char *name, const char *value) : name_(name)
    {
        setenv(name, value, /*overwrite=*/1);
    }
    ~EnvGuard() { unsetenv(name_); }
    const char *name_;
};

} // namespace

// ---- Histogram::quantile -------------------------------------------

TEST(HistogramQuantile, EmptyAndBasics)
{
    Histogram h({10, 20, 50});
    EXPECT_EQ(h.quantile(0.5), 0u); // empty histogram

    h.sample(5, 50);   // <= 10
    h.sample(15, 30);  // <= 20
    h.sample(100, 20); // overflow
    EXPECT_EQ(h.quantile(0.5), 10u);
    EXPECT_EQ(h.quantile(0.8), 20u);
    // Overflow samples saturate to the last bound.
    EXPECT_EQ(h.quantile(0.95), 50u);
    EXPECT_EQ(h.quantile(1.0), 50u);
}

// ---- host-phase profiler -------------------------------------------

TEST(Profiler, ScopedPhaseCountsOnlyWhenEnabled)
{
    HostProfiler &p = hostProfiler();
    p.reset();
    p.setEnabled(false);
    {
        ScopedPhase t(HostPhase::Decode);
    }
    EXPECT_EQ(p.calls(HostPhase::Decode), 0u);

    p.setEnabled(true);
    {
        ScopedPhase t(HostPhase::Decode);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_EQ(p.calls(HostPhase::Decode), 1u);
    EXPECT_GT(p.nanos(HostPhase::Decode), 0u);

    StatSet s;
    p.exportTo(s);
    EXPECT_TRUE(s.has("host_decode_s"));
    EXPECT_TRUE(s.has("host_decode_calls"));
    EXPECT_TRUE(s.has("host_detailed_sim_s"));
    EXPECT_EQ(s.get("host_decode_calls"), 1.0);
    EXPECT_GT(s.get("host_decode_s"), 0.0);

    p.setEnabled(false);
    p.reset();
}

// ---- TraceEvent clamping -------------------------------------------

TEST(TraceEvent, StampsClampedMonotone)
{
    DynInst di;
    di.seq = 9;
    di.pc = 0x10;
    di.inst = makeRR(Opcode::ADDQ, 3, 1, 2);
    di.fetchCycle = 100;
    di.renameReadyCycle = 99; // stamped "before" fetch: must clamp up
    di.renameCycle = 105;
    di.issueCycle = 0;   // never issued (integrated)
    di.completeCycle = 104;

    const TraceEvent ev =
        makeTraceEvent(di, /*now=*/103, /*retired=*/true,
                       SquashCause::None, /*retire_index=*/7);
    expectMonotone(ev);
    EXPECT_EQ(ev.fetch, 100u);
    EXPECT_EQ(ev.decode, 100u);
    EXPECT_EQ(ev.rename, 105u);
    EXPECT_EQ(ev.issue, 105u);
    EXPECT_EQ(ev.complete, 105u);
    EXPECT_EQ(ev.retire, 105u);
    EXPECT_TRUE(ev.retired);
    EXPECT_EQ(ev.retireIndex, 7u);
    EXPECT_EQ(ev.cause, SquashCause::None);

    const TraceEvent sq = makeTraceEvent(di, 103, /*retired=*/false,
                                         SquashCause::Branch, 99);
    EXPECT_FALSE(sq.retired);
    EXPECT_EQ(sq.retireIndex, 0u);
    EXPECT_EQ(sq.cause, SquashCause::Branch);
}

// ---- Konata golden format ------------------------------------------

TEST(Konata, GoldenFormat)
{
    TraceEvent ev;
    ev.seq = 7;
    ev.pc = 0x40;
    ev.inst = makeRR(Opcode::ADDQ, 3, 1, 2);
    ev.fetch = 10;
    ev.decode = 11;
    ev.rename = 12;
    ev.issue = 13;
    ev.complete = 15;
    ev.retire = 20;
    ev.retired = true;

    TraceEvent sq = ev;
    sq.seq = 8;
    sq.retired = false;
    sq.cause = SquashCause::Branch;

    char *buf = nullptr;
    size_t len = 0;
    FILE *mem = open_memstream(&buf, &len);
    ASSERT_NE(mem, nullptr);
    {
        KonataTraceSink sink(mem); // dtor fcloses, finalizing buf/len
        sink.emit(ev);
        sink.emit(sq);
        EXPECT_EQ(sink.numEvents(), 2u);
        EXPECT_EQ(sink.numRetired(), 1u);
        EXPECT_EQ(sink.numSquashed(), 1u);
    }
    const std::string text(buf, len);
    free(buf);

    EXPECT_EQ(text,
              "O3PipeView:fetch:10:0x00000040:0:7:addq r3, r1, r2\n"
              "O3PipeView:decode:11\n"
              "O3PipeView:rename:12\n"
              "O3PipeView:dispatch:12\n"
              "O3PipeView:issue:13\n"
              "O3PipeView:complete:15\n"
              "O3PipeView:retire:20:store:0\n"
              "O3PipeView:fetch:10:0x00000040:0:8:addq r3, r1, r2\n"
              "O3PipeView:decode:11\n"
              "O3PipeView:rename:12\n"
              "O3PipeView:dispatch:12\n"
              "O3PipeView:issue:13\n"
              "O3PipeView:complete:15\n"
              "O3PipeView:retire:0:store:0\n");
}

// ---- core-attached tracing -----------------------------------------

TEST(Trace, WindowIsExactAndStagesMonotone)
{
    const Program &prog = cachedProgram("mcf");
    CoreParams params;
    Core core(prog, params);
    CollectingSink sink;
    core.setTraceSink(&sink, /*start=*/100, /*count=*/500);
    core.run(5'000'000, 50'000'000);
    ASSERT_GE(core.stats().retired, 600u);

    u64 retired = 0;
    u64 lastIndex = 0;
    for (const TraceEvent &ev : sink.events) {
        expectMonotone(ev);
        if (!ev.retired)
            continue;
        if (retired)
            EXPECT_EQ(ev.retireIndex, lastIndex + 1);
        else
            EXPECT_EQ(ev.retireIndex, 100u);
        lastIndex = ev.retireIndex;
        ++retired;
    }
    // Exactly the [100, 600) slice of the retire stream.
    EXPECT_EQ(retired, 500u);
    EXPECT_EQ(sink.numRetired(), 500u);
    EXPECT_EQ(lastIndex, 599u);
}

TEST(Trace, SquashedEventsCarryACause)
{
    const Program &prog = cachedProgram("mcf");
    CoreParams params;
    Core core(prog, params);
    CollectingSink sink;
    core.setTraceSink(&sink, 0, ~u64(0));
    core.run(200'000, 2'000'000);

    u64 squashed = 0;
    for (const TraceEvent &ev : sink.events) {
        if (ev.retired) {
            EXPECT_EQ(ev.cause, SquashCause::None);
            continue;
        }
        ++squashed;
        EXPECT_NE(ev.cause, SquashCause::None)
            << "squashed seq " << ev.seq << " has no cause";
        EXPECT_EQ(ev.retireIndex, 0u);
    }
    // mcf under the default predictor mispredicts: wrong-path work
    // must show up as squash events.
    EXPECT_GT(squashed, 0u);
    EXPECT_EQ(squashed, sink.numSquashed());
}

TEST(Trace, SimulatedStateBitIdenticalTracingOnOrOff)
{
    const Program &prog = cachedProgram("mcf");
    CoreParams params;

    Core off(prog, params);
    off.run(200'000, 2'000'000);

    Core on(prog, params);
    CollectingSink sink;
    on.setTraceSink(&sink, 0, 100'000);
    on.run(200'000, 2'000'000);
    EXPECT_GT(sink.numEvents(), 0u);

    const CoreStats &a = off.stats();
    const CoreStats &b = on.stats();
    EXPECT_EQ(memcmp(&a, &b, sizeof(CoreStats)), 0);
    EXPECT_EQ(off.halted(), on.halted());
    EXPECT_EQ(off.memHierarchy().l1d().misses(),
              on.memHierarchy().l1d().misses());
    EXPECT_EQ(off.memHierarchy().l2().misses(),
              on.memHierarchy().l2().misses());
}

TEST(Trace, KonataFileRoundTrip)
{
    const std::string path = ::testing::TempDir() + "rix_trace_rt.txt";
    TraceConfig cfg;
    cfg.enabled = true;
    std::string err;
    std::unique_ptr<TraceSink> sink = openTraceSink(cfg, path, &err);
    ASSERT_NE(sink, nullptr) << err;

    const Program &prog = cachedProgram("mcf");
    CoreParams params;
    Core core(prog, params);
    core.setTraceSink(sink.get(), 0, 2'000);
    core.run(100'000, 1'000'000);
    sink->flush();

    // Reparse: every event renders exactly one fetch and one retire
    // line; retired events carry a nonzero retire cycle, squashed a
    // zero one.
    FILE *f = fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    u64 fetchLines = 0, retireLines = 0, retiredNonzero = 0;
    char line[512];
    while (fgets(line, sizeof(line), f)) {
        if (strncmp(line, "O3PipeView:fetch:", 17) == 0)
            ++fetchLines;
        else if (strncmp(line, "O3PipeView:retire:", 18) == 0) {
            ++retireLines;
            if (strncmp(line, "O3PipeView:retire:0:", 20) != 0)
                ++retiredNonzero;
        }
    }
    fclose(f);
    remove(path.c_str());

    EXPECT_EQ(fetchLines, sink->numEvents());
    EXPECT_EQ(retireLines, sink->numEvents());
    EXPECT_EQ(retiredNonzero, sink->numRetired());
    EXPECT_EQ(sink->numRetired(), 2'000u);
}

// ---- interval metrics ----------------------------------------------

TEST(Metrics, IntervalsSumToEndOfRunAggregates)
{
    const Program &prog = cachedProgram("mcf");
    CoreParams params;
    Core core(prog, params);
    MetricsRecorder rec(1'000);
    core.setMetrics(&rec);
    core.run(100'000, 1'000'000);

    ASSERT_GT(rec.intervals().size(), 1u);
    CoreStats sum{};
    MetricsMemCounters mem;
    u64 prevEnd = 0;
    for (const MetricsRecorder::Interval &iv : rec.intervals()) {
        EXPECT_LT(iv.cycleStart, iv.cycleEnd);
        if (prevEnd) {
            EXPECT_EQ(iv.cycleStart, prevEnd); // contiguous partition
        }
        prevEnd = iv.cycleEnd;
        CoreStats::accumulate(sum, iv.delta);
        mem.l1d += iv.mem.l1d;
        mem.l1i += iv.mem.l1i;
        mem.l2 += iv.mem.l2;
        mem.dtlb += iv.mem.dtlb;
        mem.itlb += iv.mem.itlb;
    }

    const CoreStats &fin = core.stats();
    EXPECT_EQ(memcmp(&sum, &fin, sizeof(CoreStats)), 0);
    EXPECT_EQ(prevEnd, fin.cycles);
    EXPECT_EQ(mem.l1d, core.memHierarchy().l1d().misses());
    EXPECT_EQ(mem.l1i, core.memHierarchy().l1i().misses());
    EXPECT_EQ(mem.l2, core.memHierarchy().l2().misses());
    EXPECT_EQ(mem.dtlb, core.memHierarchy().dtlb().misses());
    EXPECT_EQ(mem.itlb, core.memHierarchy().itlb().misses());
}

TEST(Metrics, MetricsDoNotPerturbSimulatedState)
{
    const Program &prog = cachedProgram("mcf");
    CoreParams params;

    Core off(prog, params);
    off.run(100'000, 1'000'000);

    Core on(prog, params);
    MetricsRecorder rec(777); // deliberately unaligned interval
    on.setMetrics(&rec);
    on.run(100'000, 1'000'000);

    const CoreStats &a = off.stats();
    const CoreStats &b = on.stats();
    EXPECT_EQ(memcmp(&a, &b, sizeof(CoreStats)), 0);
}

TEST(Metrics, WriteJsonlRendersOneRowPerInterval)
{
    const Program &prog = cachedProgram("mcf");
    CoreParams params;
    Core core(prog, params);
    MetricsRecorder rec(10'000);
    core.setMetrics(&rec);
    core.run(50'000, 500'000);
    ASSERT_GT(rec.intervals().size(), 0u);

    const std::string path =
        ::testing::TempDir() + "rix_metrics_rt.jsonl";
    std::string err;
    ASSERT_TRUE(rec.writeJsonl(path, {{"workload", "mcf"}}, &err))
        << err;

    FILE *f = fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    u64 lines = 0;
    char line[8192];
    while (fgets(line, sizeof(line), f)) {
        ++lines;
        EXPECT_NE(strstr(line, "\"workload\": \"mcf\""), nullptr);
        EXPECT_NE(strstr(line, "\"interval\""), nullptr);
        EXPECT_NE(strstr(line, "\"cycle_start\""), nullptr);
        EXPECT_NE(strstr(line, "\"retired\""), nullptr);
    }
    fclose(f);
    remove(path.c_str());
    EXPECT_EQ(lines, rec.intervals().size());
}

TEST(MetricsDeathTest, ZeroIntervalIsFatal)
{
    EXPECT_DEATH(MetricsRecorder rec(0), "positive");
}

// ---- strict environment parsing ------------------------------------

TEST(TraceEnv, AppliesValidValues)
{
    EnvGuard t("RIX_TRACE", "/tmp/t.jsonl");
    EnvGuard s("RIX_TRACE_START", "5");
    EnvGuard c("RIX_TRACE_COUNT", "7");
    const TraceConfig cfg = applyTraceEnv(TraceConfig{});
    EXPECT_TRUE(cfg.enabled);
    EXPECT_EQ(cfg.out, "/tmp/t.jsonl");
    EXPECT_EQ(cfg.format, "jsonl"); // sniffed from the suffix
    EXPECT_EQ(cfg.start, 5u);
    EXPECT_EQ(cfg.count, 7u);
    EXPECT_EQ(cfg.end(), 12u);

    EnvGuard k("RIX_TRACE", "/tmp/t.txt");
    EXPECT_EQ(applyTraceEnv(TraceConfig{}).format, "konata");
}

TEST(TraceEnv, MetricsEveryEnables)
{
    EnvGuard e("RIX_METRICS_EVERY", "2500");
    const MetricsConfig cfg = applyMetricsEnv(MetricsConfig{});
    EXPECT_TRUE(cfg.enabled);
    EXPECT_EQ(cfg.every, 2'500u);
}

TEST(TraceEnvDeathTest, EmptyTraceFileIsFatal)
{
    EnvGuard g("RIX_TRACE", "");
    EXPECT_DEATH(applyTraceEnv(TraceConfig{}), "RIX_TRACE");
}

TEST(TraceEnvDeathTest, GarbageStartIsFatal)
{
    EnvGuard g("RIX_TRACE_START", "abc");
    EXPECT_DEATH(applyTraceEnv(TraceConfig{}), "RIX_TRACE_START");
}

TEST(TraceEnvDeathTest, ZeroCountIsFatal)
{
    EnvGuard g("RIX_TRACE_COUNT", "0");
    EXPECT_DEATH(applyTraceEnv(TraceConfig{}), "RIX_TRACE_COUNT");
}

TEST(TraceEnvDeathTest, TrailingJunkCountIsFatal)
{
    EnvGuard g("RIX_TRACE_COUNT", "12x");
    EXPECT_DEATH(applyTraceEnv(TraceConfig{}), "RIX_TRACE_COUNT");
}

TEST(TraceEnvDeathTest, ZeroMetricsEveryIsFatal)
{
    EnvGuard g("RIX_METRICS_EVERY", "0");
    EXPECT_DEATH(applyMetricsEnv(MetricsConfig{}), "RIX_METRICS_EVERY");
}

TEST(TraceEnvDeathTest, GarbageMetricsEveryIsFatal)
{
    EnvGuard g("RIX_METRICS_EVERY", "10 thousand");
    EXPECT_DEATH(applyMetricsEnv(MetricsConfig{}), "RIX_METRICS_EVERY");
}
