/**
 * @file
 * Unit tests for the process-wide program cache: exactly one
 * construction per (workload, scale) key, stable shared references,
 * and safe concurrent lookup from many threads.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "base/thread_pool.hh"
#include "workload/program_cache.hh"

using namespace rix;

namespace
{

std::atomic<int> builderCalls{0};

Program
countingBuilder(const std::string &name, u64 scale)
{
    builderCalls.fetch_add(1);
    return buildWorkload(name, scale);
}

} // namespace

TEST(ProgramCache, BuildsEachKeyOnce)
{
    builderCalls = 0;
    ProgramCache cache(countingBuilder);

    const Program &a = cache.get("gzip", 1);
    const Program &b = cache.get("gzip", 1);
    EXPECT_EQ(&a, &b); // shared, not copied
    EXPECT_EQ(builderCalls.load(), 1);
    EXPECT_EQ(cache.builds(), 1u);

    // A different scale is a different program.
    const Program &c = cache.get("gzip", 2);
    EXPECT_NE(&a, &c);
    EXPECT_EQ(builderCalls.load(), 2);

    // A different workload too.
    cache.get("mcf", 1);
    EXPECT_EQ(builderCalls.load(), 3);
    EXPECT_EQ(cache.size(), 3u);
}

TEST(ProgramCache, ReferencesStayValidAcrossInserts)
{
    ProgramCache cache;
    const Program &first = cache.get("gzip", 1);
    const std::string name = first.name;
    const size_t code = first.codeSize();
    // Populate many more slots; the first reference must not move.
    for (const std::string &w : {"mcf", "parser", "twolf", "vortex"})
        cache.get(w, 1);
    EXPECT_EQ(first.name, name);
    EXPECT_EQ(first.codeSize(), code);
}

TEST(ProgramCache, ConcurrentLookupBuildsOnce)
{
    builderCalls = 0;
    ProgramCache cache(countingBuilder);

    // Hammer the same two keys from many threads at once; every thread
    // must see the same object and each key must build exactly once.
    std::vector<std::thread> threads;
    std::vector<const Program *> seen(16, nullptr);
    for (int t = 0; t < 16; ++t) {
        threads.emplace_back([&cache, &seen, t]() {
            const char *name = (t % 2) ? "gzip" : "gcc";
            const Program *p = nullptr;
            for (int i = 0; i < 8; ++i)
                p = &cache.get(name, 1);
            seen[t] = p;
        });
    }
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(builderCalls.load(), 2);
    EXPECT_EQ(cache.builds(), 2u);
    for (int t = 0; t < 16; ++t) {
        EXPECT_NE(seen[t], nullptr);
        EXPECT_EQ(seen[t], seen[t % 2]); // same object per key
    }
}

TEST(ProgramCache, GlobalInstanceIsShared)
{
    const Program &a = globalProgramCache().get("gzip", 1);
    const Program &b = globalProgramCache().get("gzip", 1);
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(a.name, "gzip");
}
