/**
 * @file
 * Assembler tests: builder label resolution, data segment layout, text
 * parser syntax (registers, aliases, memory operands, directives) and
 * error reporting.
 */

#include <gtest/gtest.h>

#include "assembler/builder.hh"
#include "assembler/parser.hh"

using namespace rix;

TEST(Builder, ForwardAndBackwardLabels)
{
    Builder b("t");
    b.bind("top");
    b.addqi(1, 1, 1);
    b.br("bottom"); // forward reference
    b.br("top");    // backward reference
    b.bind("bottom");
    b.halt();
    Program p = b.finish();
    EXPECT_EQ(p.code[1].imm, 3); // bottom
    EXPECT_EQ(p.code[2].imm, 0); // top
}

TEST(Builder, DataSymbols)
{
    Builder b("t");
    Addr a = b.quad("x", 42);
    Addr y = b.quads("y", {1, 2, 3});
    Addr c = b.space("z", 100, 16);
    EXPECT_EQ(a, b.dataAddr("x"));
    EXPECT_EQ(y, b.dataAddr("y"));
    EXPECT_EQ(c % 16, 0u);
    b.halt();
    Program p = b.finish();
    EXPECT_EQ(p.dataSymbol("x"), a);
    // Initialized image contains the quad values.
    u64 v;
    memcpy(&v, &p.data[p.dataSymbol("y") - p.dataBase], 8);
    EXPECT_EQ(v, 1u);
}

TEST(Builder, EntryPoint)
{
    Builder b("t");
    b.nop();
    b.bind("main");
    b.halt();
    b.entry("main");
    Program p = b.finish();
    EXPECT_EQ(p.entry, 1u);
}

TEST(Builder, LiCodeResolves)
{
    Builder b("t");
    b.liCode(1, "target");
    b.bind("target");
    b.halt();
    Program p = b.finish();
    EXPECT_EQ(p.code[0].imm, 1);
}

TEST(Builder, GenLabelUnique)
{
    Builder b("t");
    EXPECT_NE(b.genLabel("L"), b.genLabel("L"));
}

TEST(ParserTest, RegistersAndAliases)
{
    EXPECT_EQ(parseRegister("r0"), 0u);
    EXPECT_EQ(parseRegister("r31"), 31u);
    EXPECT_EQ(parseRegister("sp"), 30u);
    EXPECT_EQ(parseRegister("ra"), 26u);
    EXPECT_EQ(parseRegister("zero"), 31u);
    EXPECT_EQ(parseRegister("s0"), 9u);
    EXPECT_EQ(parseRegister("a0"), 16u);
    EXPECT_EQ(parseRegister("t0"), 1u);
    EXPECT_EQ(parseRegister("r32"), numLogRegs);
    EXPECT_EQ(parseRegister("x5"), numLogRegs);
}

TEST(ParserTest, BasicProgram)
{
    Program p = assembleTextOrDie(R"(
        # a tiny loop
        .data
buf:    .space 64
val:    .quad 7, 8
        .text
main:   addqi t0, zero, 10
loop:   subqi t0, t0, 1
        bne t0, loop
        ldq t1, val(zero)
        stq t1, buf(zero)
        halt
        .entry main
    )");
    EXPECT_EQ(p.entry, 0u);
    EXPECT_EQ(p.code.size(), 6u);
    EXPECT_EQ(p.code[0].op, Opcode::ADDQI);
    EXPECT_EQ(p.code[2].op, Opcode::BNE);
    EXPECT_EQ(p.code[2].imm, 1); // loop label
    EXPECT_EQ(p.code[3].op, Opcode::LDQ);
    EXPECT_EQ(Addr(u32(p.code[3].imm)), p.dataSymbol("val"));
}

TEST(ParserTest, MemoryOperandForms)
{
    Program p = assembleTextOrDie(R"(
        ldq t0, 16(sp)
        stq t0, -8(sp)
        lda sp, -32(sp)
        ret
    )");
    EXPECT_EQ(p.code[0].imm, 16);
    EXPECT_EQ(p.code[0].ra, regSp);
    EXPECT_EQ(p.code[1].imm, -8);
    EXPECT_EQ(p.code[1].rb, 1); // t0 data
    EXPECT_EQ(p.code[2].op, Opcode::LDA);
    EXPECT_EQ(p.code[2].imm, -32);
    EXPECT_EQ(p.code[3].op, Opcode::RET);
    EXPECT_EQ(p.code[3].ra, regRa);
}

TEST(ParserTest, CallForms)
{
    Program p = assembleTextOrDie(R"(
f:      ret
main:   jsr f
        jsr f, t5
        jmp t5
        halt
        .entry main
    )");
    EXPECT_EQ(p.code[1].rc, regRa);
    EXPECT_EQ(p.code[2].rc, 6u); // t5
    EXPECT_EQ(p.code[3].op, Opcode::JMP);
}

TEST(ParserTest, Errors)
{
    std::string err;
    bool ok = true;
    assembleText("bogus r1, r2, r3", "t", &err, &ok);
    EXPECT_FALSE(ok);
    EXPECT_NE(err.find("unknown mnemonic"), std::string::npos);

    assembleText("br nowhere", "t", &err, &ok);
    EXPECT_FALSE(ok);
    EXPECT_NE(err.find("undefined label"), std::string::npos);

    assembleText("addq r1, r2", "t", &err, &ok);
    EXPECT_FALSE(ok);

    assembleText("x: nop\nx: nop", "t", &err, &ok);
    EXPECT_FALSE(ok);
    EXPECT_NE(err.find("redefined"), std::string::npos);
}

TEST(ParserTest, CommentsAndBlankLines)
{
    Program p = assembleTextOrDie(R"(
        ; comment style two
        # comment style one

        nop ; trailing
        halt
    )");
    EXPECT_EQ(p.code.size(), 2u);
}

TEST(ParserTest, HexImmediates)
{
    Program p = assembleTextOrDie("addqi t0, zero, 0x10\nhalt");
    EXPECT_EQ(p.code[0].imm, 16);
}

TEST(ProgramTest, FetchOutOfRangeIsNop)
{
    Builder b("t");
    b.halt();
    Program p = b.finish();
    EXPECT_TRUE(p.fetch(12345).isNop());
}
