/**
 * @file
 * Coverage-guided fuzzing: the CoverageMap itself (bit plumbing,
 * serialization, signatures), the zero-overhead attach discipline,
 * mutation and corpus reproducibility, and the campaign invariants
 * the guided driver promises — bit-identical schedules, coverage
 * unions, corpus contents and failure counters for any job count,
 * fingerprint dedupe of repeated failures, and kind-preserving
 * minimization. Synthetic failures are planted through
 * FuzzOptions::testFailure so a correct build can exercise the
 * failure paths; the real injected-fault drill lives in
 * tests/test_fault_injection.cc.
 */

#include <gtest/gtest.h>

#include <dirent.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "cpu/core.hh"
#include "sim/corpus.hh"
#include "sim/fuzz.hh"
#include "trace/coverage.hh"

using namespace rix;

namespace
{

/** Scoped RIX_JOBS override (restores the previous value). */
class ScopedJobs
{
  public:
    explicit ScopedJobs(const char *value)
    {
        const char *old = getenv("RIX_JOBS");
        had_ = old != nullptr;
        if (had_)
            old_ = old;
        setenv("RIX_JOBS", value, /*overwrite=*/1);
    }

    ~ScopedJobs()
    {
        if (had_)
            setenv("RIX_JOBS", old_.c_str(), 1);
        else
            unsetenv("RIX_JOBS");
    }

  private:
    bool had_ = false;
    std::string old_;
};

/** Small fast programs for campaign tests. */
FuzzOptions
smallCampaign()
{
    FuzzOptions opts;
    opts.prog.itersMin = 20;
    opts.prog.itersMax = 40;
    opts.reproPath = ::testing::TempDir() + "fuzz_cov_repro.txt";
    return opts;
}

} // namespace

// ---- CoverageMap unit tests -----------------------------------------

TEST(CoverageMap, SetTestAndPopcount)
{
    CoverageMap m;
    EXPECT_EQ(m.popcount(), 0u);
    m.set(kCovRetireHalt);
    m.set(kCovSquashBranch);
    m.set(CoverageMap::kStatsBase + 5);
    EXPECT_TRUE(m.test(kCovRetireHalt));
    EXPECT_TRUE(m.test(kCovSquashBranch));
    EXPECT_FALSE(m.test(kCovSquashMemOrder));
    EXPECT_EQ(m.popcount(), 3u);

    m.clear();
    EXPECT_EQ(m.popcount(), 0u);
    EXPECT_FALSE(m.test(kCovRetireHalt));
}

TEST(CoverageMap, HexRoundTripAndEquality)
{
    CoverageMap m;
    m.set(0);
    m.set(63);
    m.set(64);
    m.set(CoverageMap::kBits - 1);
    const std::string hex = m.toHex();
    EXPECT_EQ(hex.size(), CoverageMap::kWords * 16);

    CoverageMap back;
    ASSERT_TRUE(back.fromHex(hex));
    EXPECT_TRUE(back == m);
    EXPECT_EQ(back.signature(), m.signature());

    CoverageMap bad;
    EXPECT_FALSE(bad.fromHex("zz"));
    EXPECT_FALSE(bad.fromHex(std::string(CoverageMap::kWords * 16, 'g')));
}

TEST(CoverageMap, OrIntoReportsGrowth)
{
    CoverageMap a, b;
    a.set(kCovMisintLoad);
    EXPECT_TRUE(a.orInto(b));   // b gained the bit
    EXPECT_FALSE(a.orInto(b));  // no new bits the second time
    EXPECT_TRUE(b.test(kCovMisintLoad));

    CoverageMap c;
    c.set(kCovMisintLoad);
    c.set(kCovMisintBranch);
    EXPECT_TRUE(c.orInto(b)); // one old bit, one new: still growth
    EXPECT_EQ(b.popcount(), 2u);
}

TEST(CoverageMap, FailureClassBits)
{
    CoverageMap m;
    EXPECT_EQ(m.failureClassBits(), 0u);
    DivergenceReport r;
    r.kind = "value";
    applyFailureClass(r, m);
    EXPECT_TRUE(m.test(kCovFailValue));
    r.kind = "stuck";
    r.reason = "watchdog: no retirement progress";
    applyFailureClass(r, m);
    EXPECT_TRUE(m.test(kCovFailStuckWatchdog));
    r.reason = "store to text segment";
    applyFailureClass(r, m);
    EXPECT_TRUE(m.test(kCovFailStuckTextFault));
    EXPECT_NE(m.failureClassBits(), 0u);
}

TEST(CoverageMap, FingerprintMixesKindAndEvents)
{
    CoverageMap a;
    a.set(kCovSquashBranch);
    CoverageMap b = a;
    EXPECT_EQ(failureFingerprint("value", a), failureFingerprint("value", b));
    EXPECT_NE(failureFingerprint("value", a), failureFingerprint("stuck", a));
    b.set(kCovSquashMemOrder);
    EXPECT_NE(failureFingerprint("value", a), failureFingerprint("value", b));

    // Section B (stats buckets) must NOT affect the fingerprint:
    // failures on different-size programs still dedupe.
    CoverageMap c = a;
    c.set(CoverageMap::kStatsBase + 7);
    EXPECT_EQ(failureFingerprint("value", a), failureFingerprint("value", c));
}

// ---- Zero-overhead attach and per-run determinism -------------------

TEST(CoverageCore, AttachingCoverageNeverChangesSimulation)
{
    const std::vector<ScenarioConfig> pts =
        fuzzPanel("", "base;integ.mode=reverse");
    ASSERT_EQ(pts.size(), 1u);
    RandProgConfig cfg;
    cfg.itersMin = 30;
    cfg.itersMax = 60;
    const Program prog = generateRandomProgram(7, cfg);

    Core plain(prog, pts[0].params);
    plain.run(10'000'000, 50'000'000);
    ASSERT_TRUE(plain.halted());
    const CoreStats bare = plain.stats();

    CoverageMap m1;
    Core covd(prog, pts[0].params);
    covd.setCoverage(&m1);
    covd.run(10'000'000, 50'000'000);
    ASSERT_TRUE(covd.halted());
    const CoreStats withCov = covd.stats();

    // Bit-identical microarchitectural outcome, coverage on or off.
    EXPECT_EQ(std::memcmp(&bare, &withCov, sizeof(CoreStats)), 0);
    EXPECT_GT(m1.popcount(), 0u);

    // Same run, same map — and reset() detaches the previous map.
    CoverageMap m2;
    covd.reset(prog, pts[0].params);
    covd.setCoverage(&m2);
    covd.run(10'000'000, 50'000'000);
    EXPECT_TRUE(m1 == m2);
    covd.reset(prog, pts[0].params);
    covd.run(10'000'000, 50'000'000); // must not touch m2 (detached)
    EXPECT_TRUE(m1 == m2);
}

// ---- Mutators -------------------------------------------------------

TEST(RandProgMutate, DeterministicAndValid)
{
    RandProgConfig base;
    for (u64 ms = 1; ms <= 40; ++ms) {
        const RandProgMutation m1 = mutateRandProg(99, base, ms);
        const RandProgMutation m2 = mutateRandProg(99, base, ms);
        EXPECT_EQ(m1.seed, m2.seed);
        EXPECT_STREQ(m1.mutator, m2.mutator);
        EXPECT_EQ(validateRandProgConfig(m1.cfg), "")
            << "mutator " << m1.mutator << " produced invalid config";
        // The mutated program regenerates bit-identically from the
        // (seed, cfg) pair alone — the corpus replay property.
        const Program p1 = generateRandomProgram(m1.seed, m1.cfg);
        const Program p2 = generateRandomProgram(m2.seed, m2.cfg);
        ASSERT_EQ(p1.code.size(), p2.code.size());
        for (size_t i = 0; i < p1.code.size(); ++i)
            ASSERT_TRUE(p1.code[i] == p2.code[i]);
    }
}

TEST(RandProgMutate, DefaultKnobsPreserveGeneration)
{
    // aluOpBias=0 / spliceSeed=0 must leave historical generation
    // bit-identical (golden seeds, reproducers, fuzz CI all depend on
    // it).
    RandProgConfig plain;
    RandProgConfig expl;
    expl.aluOpBias = 0;
    expl.spliceSeed = 0;
    const Program a = generateRandomProgram(21, plain);
    const Program b = generateRandomProgram(21, expl);
    ASSERT_EQ(a.code.size(), b.code.size());
    for (size_t i = 0; i < a.code.size(); ++i)
        ASSERT_TRUE(a.code[i] == b.code[i]);
}

TEST(RandProgMutate, KnobsChangeTheProgramWithinBudget)
{
    RandProgConfig cfg;
    cfg.itersMin = 20;
    cfg.itersMax = 30;
    const Program base = generateRandomProgram(5, cfg);

    RandProgConfig biased = cfg;
    biased.aluOpBias = 3;
    const Program rot = generateRandomProgram(5, biased);
    EXPECT_EQ(rot.code.size(), base.code.size())
        << "op substitution must not change program shape";
    bool differs = false;
    for (size_t i = 0; i < base.code.size() && !differs; ++i)
        differs = !(base.code[i] == rot.code[i]);
    EXPECT_TRUE(differs);

    RandProgConfig spliced = cfg;
    spliced.spliceSeed = 0xfeedbeef;
    const Program sp = generateRandomProgram(5, spliced);
    EXPECT_GT(sp.code.size(), base.code.size());
    // The native body is a prefix-preserved region: splice arms only
    // append, so the unspliced prefix stays bit-identical.
    EXPECT_LE(randProgInstBudget(cfg), randProgInstBudget(spliced));
}

// ---- Corpus ---------------------------------------------------------

TEST(Corpus, AdmitKeepsOnlyNovelCoverage)
{
    Corpus c;
    CorpusEntry e1;
    e1.seed = 1;
    e1.map.set(kCovRetireHalt);
    EXPECT_TRUE(c.admit(e1));

    CorpusEntry e2;
    e2.seed = 2;
    e2.map.set(kCovRetireHalt); // nothing new
    EXPECT_FALSE(c.admit(e2));
    EXPECT_EQ(c.size(), 1u);

    CorpusEntry e3;
    e3.seed = 3;
    e3.map.set(kCovRetireHalt);
    e3.map.set(kCovSquashBranch); // one new bit
    EXPECT_TRUE(c.admit(e3));
    EXPECT_EQ(c.size(), 2u);
    EXPECT_EQ(c.unionMap().popcount(), 2u);
}

TEST(Corpus, EntryTextRoundTrip)
{
    CorpusEntry e;
    e.seed = 0xdeadbeef;
    e.cfg.branchWeight = 5;
    e.cfg.aluOpBias = 3;
    e.cfg.spliceSeed = 0x1234567890abcdefull;
    e.mutator = "splice";
    e.map.set(kCovIntegBranch);
    e.map.set(CoverageMap::kStatsBase + 17);

    CorpusEntry back;
    ASSERT_TRUE(parseCorpusEntry(formatCorpusEntry(e), &back));
    EXPECT_EQ(back.seed, e.seed);
    EXPECT_EQ(back.cfg.branchWeight, 5u);
    EXPECT_EQ(back.cfg.aluOpBias, 3u);
    EXPECT_EQ(back.cfg.spliceSeed, e.cfg.spliceSeed);
    EXPECT_EQ(back.mutator, "splice");
    EXPECT_TRUE(back.map == e.map);

    CorpusEntry junk;
    EXPECT_FALSE(parseCorpusEntry("seed=1\n", &junk)); // no coverage
    EXPECT_FALSE(parseCorpusEntry("not a corpus file", &junk));
}

TEST(Corpus, DirectoryRoundTripPreservesUnionAndOrder)
{
    const std::string dir = ::testing::TempDir() + "rix_corpus_rt";

    Corpus a;
    for (unsigned i = 0; i < 5; ++i) {
        CorpusEntry e;
        e.seed = 100 + i;
        e.cfg.branchWeight = i;
        e.map.set(kCovIntegType + i);
        ASSERT_TRUE(a.admit(std::move(e)));
    }
    EXPECT_EQ(a.saveNew(dir), 5u);
    EXPECT_EQ(a.saveNew(dir), 0u) << "nothing new to journal";

    Corpus b;
    EXPECT_EQ(b.loadDir(dir), 5u);
    ASSERT_EQ(b.size(), a.size());
    EXPECT_TRUE(b.unionMap() == a.unionMap());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(b.entries()[i].seed, a.entries()[i].seed);
        EXPECT_TRUE(b.entries()[i].map == a.entries()[i].map);
    }

    Corpus none;
    EXPECT_EQ(none.loadDir(dir + "_missing"), 0u);
}

// ---- Panel diagnostics ----------------------------------------------

TEST(FuzzPanelDeath, EmptyPanelNamesThePanelNotTheFilter)
{
    // A spec with zero configs is unreachable through parseScenario
    // (it rejects empty config lists), but a future panel source might
    // not be — and the old code would have blamed the user's --config
    // filter for a panel that declares nothing.
    ScenarioSpec empty;
    EXPECT_EXIT({ selectPanelPoints(empty, "'broken.json'", ""); },
                ::testing::ExitedWithCode(1), "declares no configs");
}

// ---- Campaign invariants --------------------------------------------

TEST(GuidedFuzz, CleanCampaignIdenticalForAnyJobCount)
{
    if (buildHasInjectedFault())
        GTEST_SKIP() << "fault build: campaigns fail (covered below)";

    FuzzOptions opts = smallCampaign();
    opts.guided = true;
    opts.seeds = 40; // two generations
    opts.firstSeed = 11;
    opts.onlyConfig = "tiny;integ.mode=reverse";

    FuzzResult r1, r4;
    {
        ScopedJobs j("1");
        r1 = runFuzz(opts);
    }
    {
        ScopedJobs j("4");
        r4 = runFuzz(opts);
    }
    EXPECT_FALSE(r1.failed);
    EXPECT_EQ(r1.runs, 40u);
    EXPECT_GT(r1.coverage.popcount(), 0u);
    EXPECT_GT(r1.corpusEntries, 0u);

    // Bit-identical campaign for any job count.
    EXPECT_EQ(r1.runs, r4.runs);
    EXPECT_EQ(r1.truncated, r4.truncated);
    EXPECT_TRUE(r1.coverage == r4.coverage);
    EXPECT_EQ(r1.coverage.signature(), r4.coverage.signature());
    EXPECT_EQ(r1.corpusEntries, r4.corpusEntries);
    EXPECT_EQ(r1.failures, r4.failures);
    EXPECT_EQ(r1.uniqueFailures, r4.uniqueFailures);
}

TEST(GuidedFuzz, CorpusJournalRoundTripsAcrossCampaigns)
{
    if (buildHasInjectedFault())
        GTEST_SKIP() << "fault build: campaigns fail";

    const std::string dir = ::testing::TempDir() + "rix_corpus_campaign";
    // A previous run of this binary leaves its journal behind; the
    // campaign under test must start from an empty corpus.
    if (DIR *d = opendir(dir.c_str())) {
        while (struct dirent *e = readdir(d)) {
            const std::string name = e->d_name;
            if (name != "." && name != "..")
                unlink((dir + "/" + name).c_str());
        }
        closedir(d);
    }

    FuzzOptions opts = smallCampaign();
    opts.seeds = 32;
    opts.firstSeed = 7;
    opts.onlyConfig = "base;integ.mode=reverse";
    opts.corpusDir = dir; // implies guided

    const FuzzResult first = runFuzz(opts);
    EXPECT_FALSE(first.failed);
    EXPECT_EQ(first.corpusLoaded, 0u);
    EXPECT_GT(first.corpusEntries, 0u);

    // Second campaign starts from the journal: it reloads every entry
    // and its initial coverage union is the first campaign's.
    opts.firstSeed = 1007; // fresh seeds, same corpus
    const FuzzResult second = runFuzz(opts);
    EXPECT_FALSE(second.failed);
    EXPECT_EQ(second.corpusLoaded, first.corpusEntries);
    EXPECT_GE(second.corpusEntries, first.corpusEntries);
    // The second union is a superset of the first.
    CoverageMap merged = second.coverage;
    EXPECT_FALSE(first.coverage.orInto(merged));
}

TEST(BlindFuzz, PlantedFailureCountersIdenticalForAnyJobCount)
{
    // Satellite regression: the serial path stops at the first
    // failure, and the parallel path must report the *same* runs and
    // truncated counters — not drain its whole batch into them.
    FuzzOptions opts = smallCampaign();
    opts.seeds = 30;
    opts.firstSeed = 1;
    opts.minimize = false;
    opts.testFailure = [](const Program &, u64 seed,
                          const std::string &) -> std::string {
        return seed == 23 ? "value" : "";
    };

    FuzzResult r1, r4;
    {
        ScopedJobs j("1");
        r1 = runFuzz(opts);
    }
    {
        ScopedJobs j("4");
        r4 = runFuzz(opts);
    }
    ASSERT_TRUE(r1.failed);
    ASSERT_TRUE(r4.failed);
    // Seed 23 is program index 22; it fails on its first panel point,
    // so exactly 22*4 + 1 runs are counted — the serial
    // break-at-first-failure number, for any job count.
    EXPECT_EQ(r1.runs, 22u * 4u + 1u);
    EXPECT_EQ(r1.runs, r4.runs);
    EXPECT_EQ(r1.truncated, r4.truncated);
    EXPECT_EQ(r1.failures, 1u);
    EXPECT_EQ(r4.failures, 1u);
    EXPECT_EQ(r1.failure.seed, 23u);
    EXPECT_EQ(r4.failure.seed, 23u);
    EXPECT_EQ(r1.failure.configLabel, r4.failure.configLabel);
    EXPECT_EQ(r1.failure.fingerprint, r4.failure.fingerprint);
    EXPECT_TRUE(r1.coverage == r4.coverage);
    remove(opts.reproPath.c_str());
}

TEST(GuidedFuzz, RepeatedFailuresDedupeByFingerprint)
{
    FuzzOptions opts = smallCampaign();
    opts.guided = true;
    opts.seeds = 12;
    opts.firstSeed = 50;
    opts.minimize = false;
    opts.onlyConfig = "base;integ.mode=off";
    // Every run fails the same way: one unique failure, full budget.
    opts.testFailure = [](const Program &, u64, const std::string &) {
        return std::string("value");
    };

    FuzzResult r1, r4;
    {
        ScopedJobs j("1");
        r1 = runFuzz(opts);
    }
    {
        ScopedJobs j("4");
        r4 = runFuzz(opts);
    }
    ASSERT_TRUE(r1.failed);
    EXPECT_EQ(r1.runs, 12u) << "guided campaigns run the whole budget";
    EXPECT_EQ(r1.failures, 12u);
    EXPECT_EQ(r1.uniqueFailures, 1u);
    EXPECT_EQ(r1.failure.seed, 50u);

    EXPECT_EQ(r1.runs, r4.runs);
    EXPECT_EQ(r1.failures, r4.failures);
    EXPECT_EQ(r1.uniqueFailures, r4.uniqueFailures);
    EXPECT_EQ(r1.failure.seed, r4.failure.seed);
    EXPECT_EQ(r1.failure.fingerprint, r4.failure.fingerprint);
    remove(opts.reproPath.c_str());
}

TEST(GuidedFuzz, DistinctKindsAreDistinctFailures)
{
    FuzzOptions opts = smallCampaign();
    opts.guided = true;
    opts.seeds = 8;
    opts.firstSeed = 1;
    opts.minimize = false;
    opts.onlyConfig = "base;integ.mode=off";
    opts.testFailure = [](const Program &, u64 seed,
                          const std::string &) -> std::string {
        return seed % 2 ? "value" : "pc-stream";
    };

    const FuzzResult res = runFuzz(opts);
    ASSERT_TRUE(res.failed);
    EXPECT_EQ(res.failures, 8u);
    EXPECT_EQ(res.uniqueFailures, 2u);
    // First failure in program order, regardless of dedupe.
    EXPECT_EQ(res.failure.seed, 1u);
    EXPECT_EQ(res.failure.report.kind, "value");
    remove(opts.reproPath.c_str());
}

TEST(FaultBuild, MinimizerPreservesFailureKind)
{
    if (!buildHasInjectedFault())
        GTEST_SKIP() << "needs -DRIX_FAULT_INJECT=ON";

    FuzzOptions opts = smallCampaign();
    opts.seeds = 10;
    opts.reproPath = ::testing::TempDir() + "fuzz_cov_fault_repro.txt";

    const FuzzResult res = runFuzz(opts);
    ASSERT_TRUE(res.failed);
    // The minimizer only accepts candidates that reproduce the
    // original failure kind, and the confirmation run re-verifies the
    // shrunken program.
    EXPECT_EQ(res.failure.minimizedReport.kind, res.failure.report.kind);
    EXPECT_GT(res.failure.minimizeRuns, 0u);
    EXPECT_GT(res.failure.liveInsts, 0u);

    // The reproducer records both kinds.
    FILE *f = fopen(res.reproFile.c_str(), "r");
    ASSERT_NE(f, nullptr);
    std::string text;
    char buf[4096];
    size_t n;
    while ((n = fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    fclose(f);
    EXPECT_NE(text.find("# failure kind: "), std::string::npos);
    EXPECT_NE(text.find("# minimized failure kind: "), std::string::npos);
    EXPECT_NE(text.find("# fingerprint: "), std::string::npos);
    remove(res.reproFile.c_str());
}
