/**
 * @file
 * Load Integration Suppression Predictor unit tests: suppress/train,
 * LRU replacement within a set, the deliberate never-age overbias, and
 * reset(entries, assoc) geometry churn.
 */

#include <gtest/gtest.h>

#include "core/lisp.hh"

using namespace rix;

TEST(Lisp, MissUntilTrained)
{
    Lisp lisp(1024, 2);
    EXPECT_FALSE(lisp.suppress(0x1000));
    EXPECT_EQ(lisp.suppressions(), 0u);

    lisp.trainMisintegration(0x1000);
    EXPECT_EQ(lisp.trainings(), 1u);
    EXPECT_TRUE(lisp.suppress(0x1000));
    EXPECT_EQ(lisp.suppressions(), 1u);

    // Other PCs (different sets and same set) still miss.
    EXPECT_FALSE(lisp.suppress(0x1001));
    EXPECT_FALSE(lisp.suppress(0x1000 + 512)); // same set, different tag
}

TEST(Lisp, SuppressOnlyCountsHits)
{
    Lisp lisp(64, 2);
    for (InstAddr pc = 0; pc < 100; ++pc)
        lisp.suppress(pc);
    EXPECT_EQ(lisp.suppressions(), 0u);
    // A probe miss must not insert.
    for (InstAddr pc = 0; pc < 100; ++pc)
        EXPECT_FALSE(lisp.suppress(pc));
}

TEST(Lisp, TrainingIsIdempotentPerPc)
{
    // 8 entries, 2-way -> 4 sets; PCs 0, 4, 8 all land in set 0.
    Lisp lisp(8, 2);
    lisp.trainMisintegration(0);
    lisp.trainMisintegration(0); // already present: no second way used
    lisp.trainMisintegration(4);
    lisp.trainMisintegration(8); // must evict the LRU (pc 0), not pc 4
    EXPECT_FALSE(lisp.suppress(0));
    EXPECT_TRUE(lisp.suppress(4));
    EXPECT_TRUE(lisp.suppress(8));
}

TEST(Lisp, LruReplacementFollowsUse)
{
    Lisp lisp(8, 2); // 4 sets, set 0 holds two of {0, 4, 8}
    lisp.trainMisintegration(0);
    lisp.trainMisintegration(4);
    // Touch 0 so 4 becomes the LRU way.
    EXPECT_TRUE(lisp.suppress(0));
    lisp.trainMisintegration(8);
    EXPECT_TRUE(lisp.suppress(0));
    EXPECT_FALSE(lisp.suppress(4));
    EXPECT_TRUE(lisp.suppress(8));
}

TEST(Lisp, NeverAgesExceptByReplacement)
{
    // The paper's overbias: an entry stays forever unless a conflicting
    // training replaces it, no matter how much traffic goes by.
    Lisp lisp(64, 2);
    lisp.trainMisintegration(0x42);
    for (int i = 0; i < 100000; ++i) {
        lisp.suppress(InstAddr(7 + i * 8)); // misses elsewhere
        lisp.suppress(0x42);                // periodic hits
    }
    EXPECT_TRUE(lisp.suppress(0x42));
    EXPECT_EQ(lisp.trainings(), 1u);
}

TEST(Lisp, ResetClearsEntriesAndCounters)
{
    Lisp lisp(64, 2);
    lisp.trainMisintegration(1);
    EXPECT_TRUE(lisp.suppress(1));
    lisp.reset();
    EXPECT_FALSE(lisp.suppress(1));
    EXPECT_EQ(lisp.suppressions(), 0u);
    EXPECT_EQ(lisp.trainings(), 0u);
}

TEST(Lisp, GeometryChurnViaReset)
{
    // reset(entries, assoc) must fully adopt the new geometry, exactly
    // like a fresh construction (the fig6-style reuse path).
    Lisp lisp(1024, 2);
    lisp.trainMisintegration(3);
    EXPECT_TRUE(lisp.suppress(3));

    // Shrink to a direct-mapped 4-entry table: old contents gone.
    lisp.reset(4, 1);
    EXPECT_FALSE(lisp.suppress(3));
    // PCs 1 and 5 conflict (4 sets, direct-mapped).
    lisp.trainMisintegration(1);
    EXPECT_TRUE(lisp.suppress(1));
    lisp.trainMisintegration(5);
    EXPECT_FALSE(lisp.suppress(1));
    EXPECT_TRUE(lisp.suppress(5));

    // Grow to fully associative (assoc clamps to entries): 16 distinct
    // conflicting PCs all fit.
    lisp.reset(16, 64);
    for (InstAddr pc = 0; pc < 16 * 8; pc += 8)
        lisp.trainMisintegration(pc);
    for (InstAddr pc = 0; pc < 16 * 8; pc += 8)
        EXPECT_TRUE(lisp.suppress(pc)) << "pc " << pc;
    // A 17th conflicting training evicts exactly one victim.
    lisp.trainMisintegration(16 * 8);
    unsigned present = 0;
    for (InstAddr pc = 0; pc <= 16 * 8; pc += 8)
        present += lisp.suppress(pc) ? 1 : 0;
    EXPECT_EQ(present, 16u);
}

TEST(LispDeathTest, RejectsBadGeometry)
{
    EXPECT_EXIT(Lisp(100, 2), ::testing::ExitedWithCode(1),
                "LISP entries must be a power of two");
    EXPECT_EXIT(Lisp(0, 2), ::testing::ExitedWithCode(1),
                "LISP entries must be a power of two");
}
