/**
 * @file
 * The `rix fuzz` driver machinery that is testable in a correct build:
 * panel expansion through the scenario grid, the delta-debugging
 * program minimizer (driven here by an artificial failure predicate),
 * and a clean end-to-end campaign. Actual divergence detection and
 * minimization of a real pipeline fault is exercised by
 * tests/test_fault_injection.cc under -DRIX_FAULT_INJECT=ON.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "sim/fuzz.hh"

using namespace rix;

TEST(FuzzPanel, BuiltinPanelHasFourLockstepPoints)
{
    const std::vector<ScenarioConfig> pts = fuzzPanel("", "");
    ASSERT_EQ(pts.size(), 4u);
    bool sawBaseOff = false, sawTinyReverse = false;
    for (const ScenarioConfig &pt : pts) {
        EXPECT_TRUE(pt.params.check.lockstep) << pt.label;
        sawBaseOff = sawBaseOff || pt.label == "base;integ.mode=off";
        sawTinyReverse =
            sawTinyReverse || pt.label == "tiny;integ.mode=reverse";
    }
    EXPECT_TRUE(sawBaseOff);
    EXPECT_TRUE(sawTinyReverse);
}

TEST(FuzzPanel, ConfigFilterSelectsOnePoint)
{
    const std::vector<ScenarioConfig> pts =
        fuzzPanel("", "tiny;integ.mode=off");
    ASSERT_EQ(pts.size(), 1u);
    EXPECT_EQ(pts[0].label, "tiny;integ.mode=off");
    EXPECT_EQ(pts[0].params.robSize, 16u);
    EXPECT_EQ(pts[0].params.integ.mode, IntegrationMode::Off);
}

TEST(FuzzPanelDeath, UnknownConfigLabelIsFatal)
{
    EXPECT_EXIT({ fuzzPanel("", "no-such-point"); },
                ::testing::ExitedWithCode(1), "valid labels");
}

TEST(FuzzPanel, CustomPanelFileExpandsViaGrid)
{
    const std::string path = ::testing::TempDir() + "fuzz_panel.json";
    FILE *f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs(R"({
      "name": "custom-panel",
      "workloads": ["gzip"],
      "configs": [{"label": "p", "set": {"rs_size": 20}}],
      "grid": {"integ.it_assoc": [1, 2, 4]}
    })", f);
    fclose(f);

    const std::vector<ScenarioConfig> pts = fuzzPanel(path, "");
    ASSERT_EQ(pts.size(), 3u);
    EXPECT_EQ(pts[0].label, "p;integ.it_assoc=1");
    for (const ScenarioConfig &pt : pts) {
        EXPECT_EQ(pt.params.rsSize, 20u);
        EXPECT_TRUE(pt.params.check.lockstep);
    }
    remove(path.c_str());
}

TEST(Minimizer, ShrinksToThePredicateKernel)
{
    // Artificial failure criterion: the program still contains a
    // reg-reg MULQ. The minimizer must NOP everything else and trim,
    // leaving exactly one live instruction.
    const Program p = generateRandomProgram(13);
    size_t mulqs = 0;
    for (const Instruction &inst : p.code)
        mulqs += inst.op == Opcode::MULQ ? 1 : 0;
    ASSERT_GT(mulqs, 0u) << "seed 13 generates no MULQ; pick another";

    const auto stillFails = [](const Program &cand) {
        for (const Instruction &inst : cand.code)
            if (inst.op == Opcode::MULQ)
                return true;
        return false;
    };

    u64 runs = 0;
    const Program shrunk = minimizeProgram(p, stillFails, &runs);
    EXPECT_GT(runs, 0u);
    EXPECT_TRUE(stillFails(shrunk));
    EXPECT_EQ(liveInstCount(shrunk), 1u);
    EXPECT_LE(shrunk.code.size(), p.code.size());
    for (const Instruction &inst : shrunk.code) {
        if (!inst.isNop()) {
            EXPECT_EQ(inst.op, Opcode::MULQ);
        }
    }

    // Deterministic: the same input shrinks identically.
    const Program again = minimizeProgram(p, stillFails, nullptr);
    ASSERT_EQ(again.code.size(), shrunk.code.size());
    for (size_t i = 0; i < again.code.size(); ++i)
        EXPECT_TRUE(again.code[i] == shrunk.code[i]) << "slot " << i;
}

TEST(Minimizer, NothingToShrinkIsIdentity)
{
    Program p = generateRandomProgram(14);
    const size_t live = liveInstCount(p);
    u64 runs = 0;
    // A predicate that fails for every proper shrink keeps the input.
    const Program out = minimizeProgram(
        p,
        [live](const Program &cand) {
            return liveInstCount(cand) >= live;
        },
        &runs);
    EXPECT_EQ(liveInstCount(out), live);
    EXPECT_GT(runs, 0u);
}

TEST(Fuzz, CleanCampaignOnCorrectBuild)
{
    if (buildHasInjectedFault())
        GTEST_SKIP() << "fault-injection build: campaign must fail "
                        "(covered by test_fault_injection)";

    FuzzOptions opts;
    opts.seeds = 3;
    opts.firstSeed = 41;
    // Small programs keep this suite fast.
    opts.prog.itersMin = 30;
    opts.prog.itersMax = 60;
    opts.reproPath = ::testing::TempDir() + "fuzz_repro_clean.txt";
    remove(opts.reproPath.c_str());

    const FuzzResult res = runFuzz(opts);
    EXPECT_FALSE(res.failed);
    EXPECT_EQ(res.programs, 3u);
    EXPECT_EQ(res.points, 4u);
    EXPECT_EQ(res.runs, 12u);
    EXPECT_EQ(res.truncated, 0u);
    EXPECT_EQ(res.reproFile, "");

    FILE *f = fopen(opts.reproPath.c_str(), "r");
    EXPECT_EQ(f, nullptr) << "clean campaign must not write a reproducer";
    if (f)
        fclose(f);
}

TEST(Fuzz, TruncatedRunsAreCountedNotCountedAsClean)
{
    // A budget far below any generated program's length: every run
    // stops before HALT and must be reported as prefix-only coverage,
    // not silently counted as a full verification pass.
    FuzzOptions opts;
    opts.seeds = 2;
    opts.onlyConfig = "base;integ.mode=off";
    opts.maxRetired = 50;
    opts.reproPath = ::testing::TempDir() + "fuzz_repro_trunc.txt";

    const FuzzResult res = runFuzz(opts);
    EXPECT_FALSE(res.failed);
    EXPECT_EQ(res.runs, 2u);
    EXPECT_EQ(res.truncated, 2u);
}
