/**
 * @file
 * Sampled-simulation tests: plan construction and parsing, the
 * checkpoint cache's build-once/incremental-seed discipline, the
 * exactness guarantee (a single interval covering the whole run is
 * bit-identical to the full detailed simulation), and the scenario
 * subsystem's sampling expansion/merging.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "base/log.hh"
#include "sim/presets.hh"
#include "sim/sampling/checkpoint_cache.hh"
#include "sim/sampling/sampling.hh"
#include "sim/scenario.hh"
#include "workload/program_cache.hh"

using namespace rix;

namespace
{

void
expectSameCheckpoint(const Checkpoint &a, const Checkpoint &b)
{
    EXPECT_EQ(a.icount, b.icount);
    EXPECT_EQ(a.pc, b.pc);
    EXPECT_EQ(a.halted, b.halted);
    EXPECT_EQ(a.regs, b.regs);
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.diffVsImage, b.diffVsImage);
    ASSERT_EQ(a.pages.size(), b.pages.size());
    for (size_t i = 0; i < a.pages.size(); ++i) {
        EXPECT_EQ(a.pages[i].pageNumber, b.pages[i].pageNumber);
        EXPECT_EQ(memcmp(a.pages[i].bytes.data(), b.pages[i].bytes.data(),
                         Memory::pageBytes),
                  0)
            << "page " << a.pages[i].pageNumber;
    }
}

/** Bit-exact comparison of everything simulated in a report. */
void
expectIdenticalReport(const SimReport &a, const SimReport &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.halted, b.halted);
    EXPECT_EQ(memcmp(&a.core, &b.core, sizeof(CoreStats)), 0)
        << a.workload << ": some CoreStats field differs";
    EXPECT_EQ(a.l1dMisses, b.l1dMisses);
    EXPECT_EQ(a.l1iMisses, b.l1iMisses);
    EXPECT_EQ(a.l2Misses, b.l2Misses);
    EXPECT_EQ(a.dtlbMisses, b.dtlbMisses);
    EXPECT_EQ(a.itlbMisses, b.itlbMisses);
}

} // namespace

TEST(SamplingPlan, PeriodicExpansion)
{
    const SamplingPlan plan = makePeriodicPlan(900, 50, 100, 3);
    ASSERT_EQ(plan.intervals.size(), 3u);
    // Interval k starts after k periods plus its own fast-forward.
    EXPECT_EQ(plan.intervals[0].checkpointAt, 900u);
    EXPECT_EQ(plan.intervals[1].checkpointAt, 900u + 1050u);
    EXPECT_EQ(plan.intervals[2].checkpointAt, 900u + 2100u);
    for (const SamplingInterval &iv : plan.intervals) {
        EXPECT_EQ(iv.warmup, 50u);
        EXPECT_EQ(iv.measure, 100u);
    }
    EXPECT_EQ(plan.plannedWarmup(), 150u);
    EXPECT_EQ(plan.plannedMeasure(), 300u);
}

TEST(SamplingPlan, DegenerateInputsAreFatal)
{
    EXPECT_EXIT(makePeriodicPlan(0, 0, 0, 1),
                ::testing::ExitedWithCode(1), "'measure' must be >= 1");
    EXPECT_EXIT(makePeriodicPlan(0, 0, 100, 0),
                ::testing::ExitedWithCode(1), "'repeat' must be >= 1");
    EXPECT_EXIT(makePeriodicPlan(~u64(0), 1, 1, 2),
                ::testing::ExitedWithCode(1), "overflows");
}

TEST(SamplingPlan, ParseBlockForms)
{
    std::string err;
    const JsonValue periodic = JsonValue::parse(
        R"({"fast_forward": 1000, "warmup": 10, "measure": 90,
            "repeat": 2})",
        &err);
    ASSERT_EQ(err, "");
    SamplingPlan plan = parseSamplingBlock(periodic);
    ASSERT_EQ(plan.intervals.size(), 2u);
    EXPECT_EQ(plan.intervals[0].checkpointAt, 1000u);
    EXPECT_EQ(plan.intervals[1].checkpointAt, 2100u);

    // measure alone is a whole-run-from-0 single interval.
    const JsonValue minimal = JsonValue::parse(R"({"measure": 500})", &err);
    ASSERT_EQ(err, "");
    plan = parseSamplingBlock(minimal);
    ASSERT_EQ(plan.intervals.size(), 1u);
    EXPECT_EQ(plan.intervals[0].checkpointAt, 0u);
    EXPECT_EQ(plan.intervals[0].warmup, 0u);
    EXPECT_EQ(plan.intervals[0].measure, 500u);

    const JsonValue explicitList = JsonValue::parse(
        R"({"intervals": [
              {"start": 0, "measure": 100},
              {"start": 5000, "warmup": 20, "measure": 100}]})",
        &err);
    ASSERT_EQ(err, "");
    plan = parseSamplingBlock(explicitList);
    ASSERT_EQ(plan.intervals.size(), 2u);
    EXPECT_EQ(plan.intervals[0].warmup, 0u);
    EXPECT_EQ(plan.intervals[1].checkpointAt, 5000u);
    EXPECT_EQ(plan.intervals[1].warmup, 20u);

    // Back-to-back intervals (next start == previous detailed end)
    // are legal: the windows touch but never overlap.
    const JsonValue adjacent = JsonValue::parse(
        R"({"intervals": [{"start": 0, "warmup": 10, "measure": 90},
                          {"start": 100, "measure": 50}]})",
        &err);
    ASSERT_EQ(err, "");
    plan = parseSamplingBlock(adjacent);
    ASSERT_EQ(plan.intervals.size(), 2u);
}

TEST(SamplingPlan, ParseBlockRejectsMisconfigurations)
{
    auto parse = [](const char *text) {
        std::string err;
        const JsonValue v = JsonValue::parse(text, &err);
        ASSERT_EQ(err, "") << text;
        parseSamplingBlock(v);
    };
    EXPECT_EXIT(parse(R"({"bogus": 1})"), ::testing::ExitedWithCode(1),
                "unknown 'sampling' field 'bogus'");
    EXPECT_EXIT(parse(R"({"fast_forward": 5})"),
                ::testing::ExitedWithCode(1), "needs 'measure'");
    EXPECT_EXIT(parse(R"({"measure": 0})"), ::testing::ExitedWithCode(1),
                "must be >= 1");
    EXPECT_EXIT(parse(R"({"measure": 10.5})"),
                ::testing::ExitedWithCode(1), "expected an integer");
    EXPECT_EXIT(parse(R"({"measure": 10, "intervals": []})"),
                ::testing::ExitedWithCode(1),
                "cannot be combined");
    EXPECT_EXIT(parse(R"({"intervals": []})"),
                ::testing::ExitedWithCode(1), "non-empty array");
    EXPECT_EXIT(parse(R"({"intervals": [{"start": 0}]})"),
                ::testing::ExitedWithCode(1), "needs a 'measure'");
    EXPECT_EXIT(parse(R"({"intervals": [{"measure": 5}]})"),
                ::testing::ExitedWithCode(1), "needs a 'start'");
    EXPECT_EXIT(
        parse(R"({"intervals": [{"start": 100, "measure": 5},
                                {"start": 100, "measure": 5}]})"),
        ::testing::ExitedWithCode(1), "must not overlap");
    // An interval starting inside the previous detailed window would
    // double-count that stretch of the stream.
    EXPECT_EXIT(
        parse(R"({"intervals": [{"start": 0, "measure": 100000},
                                {"start": 10, "measure": 100000}]})"),
        ::testing::ExitedWithCode(1), "must not overlap");
    EXPECT_EXIT(
        parse(R"({"intervals": [
                    {"start": 0, "warmup": 50, "measure": 100},
                    {"start": 149, "measure": 100}]})"),
        ::testing::ExitedWithCode(1), "must not overlap");
    EXPECT_EXIT(parse(R"({"intervals": [{"start": 0, "measure": 5,
                                         "extra": 1}]})"),
                ::testing::ExitedWithCode(1),
                "unknown sampling interval field 'extra'");
}

TEST(CheckpointCache, BuildsOnceAndReturnsStableReferences)
{
    CheckpointCache cache;
    const Checkpoint &a = cache.get("gzip", 1, 5'000);
    const Checkpoint &b = cache.get("gzip", 1, 5'000);
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(cache.builds(), 1u);
    EXPECT_EQ(a.icount, 5'000u);

    cache.get("gzip", 1, 9'000);
    cache.get("gzip", 2, 5'000); // different scale: its own slot
    EXPECT_EQ(cache.builds(), 3u);
    EXPECT_EQ(cache.size(), 3u);
}

TEST(CheckpointCache, IncrementalSeedingIsBitIdenticalToScratch)
{
    // Warm cache: ascending gets seed each build from the previous
    // checkpoint. Cold cache: one direct fast-forward. Same snapshot.
    CheckpointCache warm;
    warm.get("mcf", 1, 2'000);
    warm.get("mcf", 1, 10'000);
    const Checkpoint &incremental = warm.get("mcf", 1, 25'000);

    CheckpointCache cold;
    const Checkpoint &scratch = cold.get("mcf", 1, 25'000);

    expectSameCheckpoint(incremental, scratch);
}

TEST(CheckpointCache, TotalInstsCountsToHaltAndHonorsCap)
{
    CheckpointCache cache;
    const Program &prog = globalProgramCache().get("gzip", 1);
    Emulator emu(prog);
    emu.run(100'000'000);
    ASSERT_TRUE(emu.halted());

    EXPECT_EQ(cache.totalInsts("gzip", 1, 100'000'000),
              emu.instsExecuted());
    EXPECT_EQ(cache.totalInsts("gzip", 1, 1'000), 1'000u);
}

TEST(CheckpointCache, PastEndOfRunCheckpointsAtHalt)
{
    CheckpointCache cache;
    const u64 total = cache.totalInsts("gzip", 1, 100'000'000);
    const Checkpoint &past = cache.get("gzip", 1, total + 1'000'000);
    EXPECT_TRUE(past.halted);
    EXPECT_EQ(past.icount, total);
}

// Acceptance criterion: a sampling plan whose single interval covers
// the entire run produces a report bit-identical to the full detailed
// run, for at least two workloads.
TEST(SampledExactness, WholeRunSingleIntervalIsBitIdentical)
{
    const CoreParams params = integrationParams(IntegrationMode::Reverse);
    for (const char *workload : {"mcf", "gzip"}) {
        const Program &prog = globalProgramCache().get(workload, 1);
        const SimReport full =
            runSimulation(prog, params, 20'000'000, 200'000'000);
        ASSERT_TRUE(full.halted) << workload;

        Emulator emu(prog);
        const Checkpoint start = emu.snapshot();

        SimContext ctx;
        const SimReport sampled = ctx.runInterval(
            prog, start, params, /*warmup=*/0,
            /*measure=*/20'000'000, /*max_cycles=*/200'000'000);
        expectIdenticalReport(full, sampled);
    }
}

TEST(SampledExactness, AdjacentIntervalsNeverDoubleCount)
{
    // Back-to-back windows partition the stream: the exact retirement
    // boundary means the first interval's final cycle cannot retire
    // instructions that belong to the second.
    const CoreParams params = integrationParams(IntegrationMode::Reverse);
    const Program &prog = globalProgramCache().get("gzip", 1);
    CheckpointCache cache;
    SimContext ctx;
    const SimReport a = ctx.runInterval(prog, cache.get("gzip", 1, 0),
                                        params, 0, 100, 1'000'000);
    const SimReport b = ctx.runInterval(prog, cache.get("gzip", 1, 100),
                                        params, 0, 100, 1'000'000);
    EXPECT_EQ(a.core.retired, 100u);
    EXPECT_EQ(b.core.retired, 100u);
}

TEST(SampledScenario, FigRendersRejectSampling)
{
    // A figure table built from sampled estimates would be
    // indistinguishable from a measured one; only the generic row
    // renders (which carry the sampled_* columns) may be sampled.
    EXPECT_EXIT(parseScenario(R"({"render": "fig5",
                                  "sampling": {"measure": 100}})"),
                ::testing::ExitedWithCode(1), "full detailed");
}

TEST(SampledScenario, PlanPastMaxRetiredIsFatal)
{
    // A detailed window beyond max_retired would measure instructions
    // the capped whole-run count never sees (coverage > 1).
    EXPECT_EXIT(parseScenario(R"({"max_retired": 1000,
                                  "sampling": {"measure": 5000}})"),
                ::testing::ExitedWithCode(1), "past max_retired");
    EXPECT_EXIT(
        parseScenario(R"({"max_retired": 100000, "sampling": {
            "fast_forward": 40000, "measure": 20000, "repeat": 2}})"),
        ::testing::ExitedWithCode(1), "past max_retired");
}

TEST(SampledScenario, PlanPastActualRunEndIsFatal)
{
    // Valid against max_retired, but gzip at scale 1 halts long
    // before the first interval: extrapolating from zero measured
    // instructions must fail loudly, not emit an all-zero row.
    const ScenarioSpec spec = parseScenario(R"({
        "name": "past_end",
        "workloads": ["gzip"],
        "scale": 1,
        "configs": [{"label": "base", "set": {}}],
        "sampling": {"fast_forward": 19000000, "measure": 1000}})");
    EXPECT_EXIT(runScenario(spec), ::testing::ExitedWithCode(1),
                "measured nothing");
}

TEST(SampledScenario, ExpandsMergesAndMatchesFullRun)
{
    // The same spec with and without a whole-run sampling block: rows
    // must be bit-identical (and the sampled one flagged exact).
    const char *base = R"({
        "name": "sampled_eq",
        "workloads": ["mcf", "gzip"],
        "scale": 1,
        "base": {"integ.mode": "reverse"},
        "configs": [{"label": "reverse", "set": {}}],
        "render": "jsonl"%s})";
    const ScenarioSpec specFull = parseScenario(strfmt(base, ""));
    const ScenarioSpec specSampled = parseScenario(
        strfmt(base, ", \"sampling\": {\"measure\": 20000000}"));
    ASSERT_EQ(specSampled.sampling.intervals.size(), 1u);

    const ScenarioResults full = runScenario(specFull);
    const ScenarioResults sampled = runScenario(specSampled);
    ASSERT_FALSE(full.isSampled());
    ASSERT_TRUE(sampled.isSampled());
    ASSERT_EQ(full.jobs.size(), sampled.jobs.size());
    for (size_t i = 0; i < full.jobs.size(); ++i) {
        expectIdenticalReport(full.jobs[i].report,
                              sampled.jobs[i].report);
        EXPECT_TRUE(sampled.sampled[i].exact);
        EXPECT_EQ(sampled.sampled[i].measuredInsts,
                  sampled.sampled[i].totalInsts);
        EXPECT_EQ(sampled.sampled[i].coverage(), 1.0);
    }
}

TEST(SampledScenario, PartialPlanMergesIntervalsAndExtrapolates)
{
    const ScenarioSpec spec = parseScenario(R"({
        "name": "sampled_partial",
        "workloads": ["gzip"],
        "scale": 1,
        "base": {"integ.mode": "reverse"},
        "configs": [{"label": "a", "set": {}},
                    {"label": "b", "set": {"rs_size": 20}}],
        "render": "jsonl",
        "sampling": {"fast_forward": 4000, "warmup": 500,
                     "measure": 2000, "repeat": 3}})");
    ASSERT_EQ(spec.sampling.intervals.size(), 3u);

    const ScenarioResults res = runScenario(spec);
    ASSERT_EQ(res.jobs.size(), 2u);          // 1 workload x 2 configs
    ASSERT_EQ(res.intervalJobs.size(), 6u);  // x 3 intervals
    ASSERT_EQ(res.sampled.size(), 2u);

    for (size_t c = 0; c < 2; ++c) {
        const SampledSummary &s = res.sampled[c];
        EXPECT_EQ(s.intervals, 3u);
        EXPECT_FALSE(s.exact);
        // Exact retirement boundaries: measured is the planned budget
        // to the instruction (no retire-width overshoot).
        EXPECT_EQ(s.measuredInsts, 3u * 2000u);
        EXPECT_GT(s.totalInsts, s.measuredInsts);
        EXPECT_GT(s.ipc(), 0.0);
        EXPECT_GT(s.cyclesExtrapolated(), double(s.measuredCycles));

        // The merged row is the sum of its intervals.
        u64 retired = 0, cycles = 0;
        for (size_t k = 0; k < 3; ++k) {
            const SimReport &iv = res.intervalJobs[c * 3 + k].report;
            retired += iv.core.retired;
            cycles += iv.core.cycles;
        }
        EXPECT_EQ(res.jobs[c].report.core.retired, retired);
        EXPECT_EQ(res.jobs[c].report.core.cycles, cycles);
        EXPECT_EQ(s.measuredInsts, retired);
        EXPECT_EQ(s.measuredCycles, cycles);
    }

    // Estimation sanity on this loop-heavy workload: the sampled IPC
    // lands within 50% of the full detailed run's.
    const Program &prog = globalProgramCache().get("gzip", 1);
    const SimReport full = runSimulation(
        prog, spec.configs[0].params, 20'000'000, 200'000'000);
    EXPECT_NEAR(res.sampled[0].ipc(), full.ipc(), full.ipc() * 0.5);
}

TEST(SampledScenario, RenderEmitsSampledColumns)
{
    const ScenarioSpec spec = parseScenario(R"({
        "name": "sampled_render",
        "workloads": ["gzip"],
        "scale": 1,
        "configs": [{"label": "base", "set": {}}],
        "render": "jsonl",
        "sampling": {"fast_forward": 8000, "measure": 1000,
                     "repeat": 2}})");
    const ScenarioResults res = runScenario(spec);

    char *buf = nullptr;
    size_t len = 0;
    FILE *mem = open_memstream(&buf, &len);
    renderScenario(spec, res, mem);
    fclose(mem);
    const std::string out(buf, len);
    free(buf);

    EXPECT_NE(out.find("\"sampled\": 1"), std::string::npos) << out;
    EXPECT_NE(out.find("sampled_intervals"), std::string::npos);
    EXPECT_NE(out.find("sampled_coverage"), std::string::npos);
    EXPECT_NE(out.find("sampled_cycles_extrapolated"), std::string::npos);
    // One merged row, not one per interval.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 1);
}
