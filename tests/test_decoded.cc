/**
 * @file
 * The pre-decoded execution core (isa/decoded.hh + the Emulator fast
 * path), tested differentially against the legacy decode-per-step loop
 * (RIX_DECODE=0), which is kept for exactly this purpose:
 *
 *  - decode-vs-raw equivalence for every opcode over varied operand
 *    shapes (rc = r31, aliased sources, negative immediates);
 *  - full StepResult-stream equality on random-program corpora, plus
 *    final architectural state (registers, memory, output);
 *  - basic-block boundary cases: branch into the middle of a block,
 *    HALT mid-program, budget expiry inside a straight-line block,
 *    pre-fired cancellation, checkpoint snapshot/restore mid-block;
 *  - DecodedProgram structural invariants (block lengths, NOP
 *    sentinel, byte accounting, cache copy/invalidations semantics);
 *  - the immutable-text guard: a store landing in the program image
 *    raises a structured EmuFault (identically on both paths) and is
 *    contained by the detailed core as a stuck stop, not a panic;
 *  - RIX_DECODE strict parsing (unset/1 -> decoded, 0 -> legacy,
 *    anything else fatal), mirroring RIX_CHECK.
 */

#include <cstdlib>
#include <gtest/gtest.h>

#include "cpu/core.hh"
#include "cpu/params.hh"
#include "emu/emulator.hh"
#include "workload/randprog.hh"

using namespace rix;

namespace
{

/** Construct an emulator pinned to the legacy decode-per-step path. */
Emulator
makeLegacy(const Program &p)
{
    setenv("RIX_DECODE", "0", 1);
    Emulator e(p);
    unsetenv("RIX_DECODE");
    return e;
}

/** Construct an emulator pinned to the decoded path (default). */
Emulator
makeDecoded(const Program &p)
{
    unsetenv("RIX_DECODE");
    return Emulator(p);
}

void
expectSameStep(const StepResult &a, const StepResult &b, const char *what)
{
    EXPECT_EQ(a.pc, b.pc) << what;
    EXPECT_EQ(a.inst, b.inst) << what;
    EXPECT_EQ(a.nextPc, b.nextPc) << what;
    EXPECT_EQ(a.wroteReg, b.wroteReg) << what;
    EXPECT_EQ(a.destReg, b.destReg) << what;
    EXPECT_EQ(a.destValue, b.destValue) << what;
    EXPECT_EQ(a.isMemAccess, b.isMemAccess) << what;
    EXPECT_EQ(a.memAddr, b.memAddr) << what;
    EXPECT_EQ(a.halted, b.halted) << what;
}

void
expectSameArchState(const Emulator &a, const Emulator &b, const char *what)
{
    EXPECT_EQ(a.pc(), b.pc()) << what;
    EXPECT_EQ(a.halted(), b.halted()) << what;
    EXPECT_EQ(a.faulted(), b.faulted()) << what;
    EXPECT_EQ(a.instsExecuted(), b.instsExecuted()) << what;
    for (unsigned r = 0; r < numLogRegs; ++r)
        EXPECT_EQ(a.reg(LogReg(r)), b.reg(LogReg(r))) << what << " r" << r;
    EXPECT_EQ(a.output(), b.output()) << what;
    EXPECT_TRUE(a.memory().contentEquals(b.memory())) << what;
}

Program
fromCode(std::vector<Instruction> code)
{
    Program p;
    p.name = "decoded-test";
    p.code = std::move(code);
    return p;
}

} // namespace

// ---------------------------------------------------------------------
// Every opcode, several operand shapes: one decoded and one legacy
// emulator execute the same single instruction from the same seeded
// register state; the StepResult and the entire architectural state
// must match bit for bit.
// ---------------------------------------------------------------------

TEST(DecodedDifferential, EveryOpcodeEveryOperandShape)
{
    for (unsigned opv = 0; opv < numOpcodes; ++opv) {
        const Opcode op = Opcode(opv);

        // Operand shapes: plain, dest = r31 (write dropped), aliased
        // sources, negative immediate, source = r31.
        Instruction shapes[5];
        for (auto &s : shapes) {
            s.op = op;
            s.ra = 1;
            s.rb = 2;
            s.rc = 3;
            s.imm = 12;
        }
        shapes[1].rc = regZero;
        shapes[2].ra = shapes[2].rb = 4;
        shapes[3].imm = -8;
        shapes[4].ra = regZero;

        for (const Instruction &inst : shapes) {
            const Program p = fromCode({inst});
            Emulator dec = makeDecoded(p);
            Emulator leg = makeLegacy(p);
            ASSERT_TRUE(dec.usesDecoded());
            ASSERT_FALSE(leg.usesDecoded());

            // Seed sources so results are nontrivial; r1 points into
            // the data segment so memory ops hit a writable address
            // (never the text segment).
            for (Emulator *e : {&dec, &leg}) {
                e->setReg(1, p.dataBase + 64);
                e->setReg(2, 7);
                e->setReg(3, 0xdeadbeef);
                e->setReg(4, u64(-3));
            }

            const StepResult a = dec.step();
            const StepResult b = leg.step();
            const std::string what =
                disassemble(inst) + " (shape ra=" +
                std::to_string(inst.ra) + " rc=" +
                std::to_string(inst.rc) + ")";
            expectSameStep(a, b, what.c_str());
            expectSameArchState(dec, leg, what.c_str());
        }
    }
}

// ---------------------------------------------------------------------
// Random-program corpora: the full StepResult stream (and final state)
// of the decoded step path equals the legacy reference, and the
// block-batched run() path lands on the same architectural state.
// ---------------------------------------------------------------------

TEST(DecodedDifferential, RandomProgramStepStreams)
{
    std::vector<RandProgConfig> shapes(3);
    shapes[1].branchWeight = 6;
    shapes[1].callDepth = 6;
    shapes[2].memWeight = 6;
    shapes[2].memFootprint = 64;

    for (size_t c = 0; c < shapes.size(); ++c) {
        for (u64 seed = 1; seed <= 4; ++seed) {
            const Program p = generateRandomProgram(seed * 17, shapes[c]);
            Emulator dec = makeDecoded(p);
            Emulator leg = makeLegacy(p);

            for (u64 i = 0; i < 200'000 && !dec.halted(); ++i) {
                const StepResult a = dec.step();
                const StepResult b = leg.step();
                expectSameStep(a, b, p.name.c_str());
                if (a.halted)
                    break;
            }
            expectSameArchState(dec, leg, p.name.c_str());
        }
    }
}

TEST(DecodedDifferential, RunMatchesLegacyRun)
{
    for (u64 seed = 1; seed <= 6; ++seed) {
        const Program p = generateRandomProgram(seed);
        Emulator dec = makeDecoded(p);
        Emulator leg = makeLegacy(p);
        const u64 na = dec.run();
        const u64 nb = leg.run();
        EXPECT_EQ(na, nb) << "seed " << seed;
        EXPECT_TRUE(dec.halted());
        expectSameArchState(dec, leg, "run()");
    }
}

// ---------------------------------------------------------------------
// Block-boundary cases.
// ---------------------------------------------------------------------

TEST(DecodedBlocks, BranchIntoMidBlock)
{
    // [0] jumps into the middle of the straight-line block [1..5];
    // the decoded run must execute exactly the block *remainder*.
    std::vector<Instruction> code;
    code.push_back(makeJump(3));
    for (int i = 0; i < 5; ++i)
        code.push_back(makeRI(Opcode::ADDQI, 1, 1, 10));
    code.push_back(makeHalt());
    const Program p = fromCode(std::move(code));

    Emulator dec = makeDecoded(p);
    Emulator leg = makeLegacy(p);
    dec.run();
    leg.run();
    EXPECT_TRUE(dec.halted());
    EXPECT_EQ(dec.reg(1), u64(30)); // slots 3,4,5 only
    expectSameArchState(dec, leg, "branch into mid-block");
}

TEST(DecodedBlocks, BudgetExpiryInsideBlock)
{
    // A single long straight-line block; every possible budget cut
    // point must leave pc/icount/regs exactly where the legacy
    // per-step loop leaves them.
    std::vector<Instruction> code;
    for (int i = 0; i < 12; ++i)
        code.push_back(makeRI(Opcode::ADDQI, 1, 1, 1));
    code.push_back(makeHalt());
    const Program p = fromCode(std::move(code));

    for (u64 budget = 0; budget <= 14; ++budget) {
        Emulator dec = makeDecoded(p);
        Emulator leg = makeLegacy(p);
        EXPECT_EQ(dec.run(budget), leg.run(budget)) << "budget " << budget;
        expectSameArchState(dec, leg, "budget cut");
        // Resuming after the cut also converges.
        dec.run();
        leg.run();
        EXPECT_TRUE(dec.halted());
        expectSameArchState(dec, leg, "after resume");
    }
}

TEST(DecodedBlocks, HaltMidProgramAndWildernessNops)
{
    // HALT in the middle: everything after it is unreachable.
    const Program p = fromCode({makeRI(Opcode::ADDQI, 1, 1, 5),
                                makeHalt(),
                                makeRI(Opcode::ADDQI, 1, 1, 99)});
    Emulator dec = makeDecoded(p);
    Emulator leg = makeLegacy(p);
    dec.run();
    leg.run();
    EXPECT_TRUE(dec.halted());
    EXPECT_EQ(dec.reg(1), u64(5));
    expectSameArchState(dec, leg, "halt mid-program");

    // Running off the end: out-of-range pc executes as NOP forever;
    // the decoded path batches the wilderness, the legacy path steps
    // it, and both land on the same pc/icount.
    const Program off = fromCode({makeRI(Opcode::ADDQI, 1, 1, 1)});
    Emulator dec2 = makeDecoded(off);
    Emulator leg2 = makeLegacy(off);
    EXPECT_EQ(dec2.run(10'000), leg2.run(10'000));
    expectSameArchState(dec2, leg2, "nop wilderness");
    EXPECT_FALSE(dec2.halted());
}

TEST(DecodedBlocks, PreFiredCancelStopsBeforeAnyStep)
{
    const Program p = generateRandomProgram(3);
    CancelToken token;
    token.arm(0);
    token.cancel();

    Emulator dec = makeDecoded(p);
    Emulator leg = makeLegacy(p);
    EXPECT_EQ(dec.run(1'000'000, &token), u64(0));
    EXPECT_EQ(leg.run(1'000'000, &token), u64(0));
    expectSameArchState(dec, leg, "pre-fired cancel");
}

TEST(DecodedBlocks, CheckpointRestoreMidBlock)
{
    const Program p = generateRandomProgram(11);
    Emulator dec = makeDecoded(p);
    // 137 is deliberately not a block multiple of anything: the
    // snapshot lands mid-block more often than not.
    dec.run(137);
    ASSERT_FALSE(dec.halted());
    const Checkpoint c = dec.snapshot();

    // Restore into a fresh decoded emulator and into a legacy one;
    // both must finish identically to the original.
    Emulator resumedDec = makeDecoded(p);
    resumedDec.restore(c);
    Emulator resumedLeg = makeLegacy(p);
    resumedLeg.restore(c);
    expectSameArchState(resumedDec, resumedLeg, "restored state");

    dec.run();
    resumedDec.run();
    resumedLeg.run();
    EXPECT_TRUE(dec.halted());
    expectSameArchState(dec, resumedDec, "resume decoded");
    expectSameArchState(dec, resumedLeg, "resume legacy");
}

// ---------------------------------------------------------------------
// DecodedProgram structural invariants.
// ---------------------------------------------------------------------

TEST(DecodedProgramForm, BlockLengthInvariants)
{
    for (u64 seed = 1; seed <= 5; ++seed) {
        const Program p = generateRandomProgram(seed * 31);
        const DecodedProgram &d = p.decoded();
        ASSERT_EQ(d.size(), p.code.size());
        for (size_t i = 0; i < d.size(); ++i) {
            const u32 len = d.at(i).blockLen;
            ASSERT_GE(len, u32(1));
            ASSERT_LE(i + len, d.size());
            // Every slot before the block's last is a non-terminator.
            for (u32 k = 0; k + 1 < len; ++k)
                ASSERT_FALSE(d.at(i + k).endsBlock());
            // The last slot terminates the block unless the block runs
            // into the end of the code segment.
            if (i + len < d.size())
                ASSERT_TRUE(d.at(i + len - 1).endsBlock());
        }
    }
}

TEST(DecodedProgramForm, SentinelAndDecodeMetadata)
{
    const Program p = fromCode({makeHalt()});
    const DecodedProgram &d = p.decoded();
    // Out-of-range fetches yield the NOP sentinel.
    const DecodedInst &nop = d.fetch(12345);
    EXPECT_EQ(Opcode(nop.handler), Opcode::NOP);
    EXPECT_FALSE(nop.writesReg());
    EXPECT_FALSE(nop.endsBlock());

    // Spot-check pre-resolved metadata.
    const DecodedInst ld = decodeInst(makeLoad(Opcode::LDL, 5, -16, 2));
    EXPECT_TRUE(ld.isLoad());
    EXPECT_TRUE(ld.writesReg());
    EXPECT_EQ(ld.size, 4u);
    EXPECT_EQ(ld.src1, u8(2));
    EXPECT_EQ(ld.dest, u8(5));
    EXPECT_EQ(ld.imm, -16);
    EXPECT_EQ(ld.issuePort(), IssuePort::LoadP);

    const DecodedInst st = decodeInst(makeStore(Opcode::STQ, 3, 8, 4));
    EXPECT_TRUE(st.isStore());
    EXPECT_FALSE(st.writesReg());
    EXPECT_EQ(st.size, 8u);
    EXPECT_EQ(st.issuePort(), IssuePort::StoreP);

    const DecodedInst br = decodeInst(makeBranch(Opcode::BNE, 1, 42));
    EXPECT_TRUE(br.isCtrl());
    EXPECT_TRUE(br.endsBlock());
    EXPECT_EQ(br.target, u32(42));
    EXPECT_EQ(br.blockLen, u32(1));

    const DecodedInst writesZero = decodeInst(makeRR(Opcode::ADDQ,
                                                     regZero, 1, 2));
    EXPECT_FALSE(writesZero.writesReg());
    EXPECT_EQ(writesZero.dest, u8(emuRegSink));
}

TEST(DecodedProgramForm, CacheSharingAndInvalidation)
{
    Program p = fromCode({makeRI(Opcode::ADDQI, 1, 1, 1), makeHalt()});
    EXPECT_EQ(p.decodedBytes(), size_t(0)); // not built yet

    const std::shared_ptr<const DecodedProgram> d1 = p.decodedShared();
    EXPECT_GT(p.decodedBytes(), size_t(0));
    EXPECT_EQ(p.decodedShared().get(), d1.get()); // cached, not rebuilt

    // Copies drop the cache (copy-to-mutate discipline).
    Program copy = p;
    EXPECT_EQ(copy.decodedBytes(), size_t(0));

    // In-place mutation + invalidate rebuilds from the new code.
    p.code[0] = makeRI(Opcode::ADDQI, 1, 1, 2);
    p.invalidateDecoded();
    EXPECT_EQ(p.decodedBytes(), size_t(0));
    const std::shared_ptr<const DecodedProgram> d2 = p.decodedShared();
    EXPECT_NE(d1.get(), d2.get());
    EXPECT_EQ(d2->at(0).imm, 2);
    // The old shared form stays alive and unchanged for holders.
    EXPECT_EQ(d1->at(0).imm, 1);
}

// ---------------------------------------------------------------------
// The immutable-text guard.
// ---------------------------------------------------------------------

TEST(TextFault, StoreIntoImageFaultsIdenticallyOnBothPaths)
{
    // r1 = 0 -> STQ writes byte address 8, inside the text segment
    // (4 instructions * 8 bytes). The store must not happen, pc and
    // icount freeze at the faulting slot, and further stepping refuses.
    const std::vector<Instruction> code = {
        makeRI(Opcode::ADDQI, 2, 31, 77), // r2 = 77 (the store data)
        makeStore(Opcode::STQ, 2, 8, 31), // M[8] = r2: text!
        makeRI(Opcode::ADDQI, 3, 31, 1),  // must never execute
        makeHalt(),
    };
    const Program p = fromCode(code);

    for (const bool decoded : {true, false}) {
        Emulator e = decoded ? makeDecoded(p) : makeLegacy(p);
        const u64 n = e.run();
        EXPECT_EQ(n, u64(1)) << "only the ADDQI retires";
        EXPECT_TRUE(e.faulted());
        EXPECT_FALSE(e.halted());
        EXPECT_EQ(e.pc(), InstAddr(1));
        EXPECT_EQ(e.fault().pc, InstAddr(1));
        EXPECT_EQ(e.fault().addr, Addr(8));
        EXPECT_NE(e.fault().describe().find("text"), std::string::npos);
        EXPECT_EQ(e.reg(3), u64(0));
        EXPECT_EQ(e.memory().read(8, 8), u64(0)) << "store suppressed";

        // Frozen: step() and run() refuse to make progress.
        const StepResult s = e.step();
        EXPECT_EQ(s.pc, InstAddr(1));
        EXPECT_EQ(e.run(100), u64(0));
        EXPECT_EQ(e.instsExecuted(), u64(1));

        // reset() clears the fault.
        e.reset();
        EXPECT_FALSE(e.faulted());
    }
}

TEST(TextFault, MidBlockStoreCountsPartialBlock)
{
    // Straight-line block whose third slot stores into text: exactly
    // the first two slots execute, on both paths.
    const std::vector<Instruction> code = {
        makeRI(Opcode::ADDQI, 1, 1, 1),
        makeRI(Opcode::ADDQI, 1, 1, 1),
        makeStore(Opcode::STL, 1, 0, 31), // M[0] = r1: text!
        makeRI(Opcode::ADDQI, 1, 1, 1),
        makeHalt(),
    };
    const Program p = fromCode(code);
    Emulator dec = makeDecoded(p);
    Emulator leg = makeLegacy(p);
    EXPECT_EQ(dec.run(), u64(2));
    EXPECT_EQ(leg.run(), u64(2));
    EXPECT_TRUE(dec.faulted());
    EXPECT_EQ(dec.fault().pc, InstAddr(2));
    expectSameArchState(dec, leg, "mid-block text fault");
}

TEST(TextFault, StoreJustPastTextSucceeds)
{
    // The first writable byte address is codeSize * instructionBytes.
    const std::vector<Instruction> code = {
        makeRI(Opcode::ADDQI, 1, 31, 24), // r1 = 3 insts * 8 bytes
        makeStore(Opcode::STQ, 1, 0, 1),  // M[24] = r1: first legal byte
        makeHalt(),
    };
    const Program p = fromCode(code);
    Emulator e = makeDecoded(p);
    e.run();
    EXPECT_TRUE(e.halted());
    EXPECT_FALSE(e.faulted());
    EXPECT_EQ(e.memory().read(24, 8), u64(24));
}

TEST(TextFault, CoreContainsFaultAsStuckStop)
{
    // The detailed pipeline retires the same faulting store: the run
    // stops as a contained stuck-job failure (not a panic, not
    // halted()), with the fault description as the reason.
    const std::vector<Instruction> code = {
        makeRI(Opcode::ADDQI, 2, 31, 5),
        makeStore(Opcode::STQ, 2, 0, 31),
        makeHalt(),
    };
    const Program p = fromCode(code);
    Core core(p, CoreParams{});
    core.run(1'000, 100'000);
    EXPECT_TRUE(core.stuck());
    EXPECT_FALSE(core.halted());
    EXPECT_NE(core.stuckReason().find("text"), std::string::npos);
    EXPECT_TRUE(core.golden().faulted());
}

// ---------------------------------------------------------------------
// RIX_DECODE parsing, strict like RIX_CHECK.
// ---------------------------------------------------------------------

TEST(DecodeEnvKnob, StrictValues)
{
    unsetenv("RIX_DECODE");
    EXPECT_TRUE(emulatorDecodeFromEnv()); // default: on
    setenv("RIX_DECODE", "1", 1);
    EXPECT_TRUE(emulatorDecodeFromEnv());
    setenv("RIX_DECODE", "0", 1);
    EXPECT_FALSE(emulatorDecodeFromEnv());
    unsetenv("RIX_DECODE");
}

TEST(DecodeEnvKnobDeath, RejectsGarbage)
{
    setenv("RIX_DECODE", "fast", 1);
    EXPECT_EXIT({ emulatorDecodeFromEnv(); },
                ::testing::ExitedWithCode(1), "RIX_DECODE must be 0 or 1");
    unsetenv("RIX_DECODE");
}
