/**
 * @file
 * Simulation driver: runs a program on the cycle-level core, collects
 * the report, and provides the architectural cross-check against the
 * pure functional emulator (the repository's end-to-end invariant).
 */

#ifndef RIX_SIM_SIMULATOR_HH
#define RIX_SIM_SIMULATOR_HH

#include <string>

#include "cpu/core.hh"
#include "sim/presets.hh"

namespace rix
{

struct SimReport
{
    std::string workload;
    CoreStats core;
    bool halted = false;
    // Substrate statistics.
    u64 l1dMisses = 0, l1iMisses = 0, l2Misses = 0;
    u64 dtlbMisses = 0, itlbMisses = 0;
    double ipc() const { return core.ipc(); }
};

/** Snapshot the report of a finished (or stopped) core. */
SimReport collectReport(Core &core, const std::string &workload);

/**
 * Fatal — printing the full divergence report, prefixed with @p what —
 * when @p core stopped on a lockstep divergence. Every driver that
 * runs a core to completion and reports its statistics must call this
 * (or inspect Core::divergence() itself, as the fuzz driver does)
 * before trusting the report: a diverged core stopped mid-program.
 */
void requireNoDivergence(const Core &core, const std::string &what);

/**
 * Counter-wise @p fin - @p base: the statistics accrued *after* the
 * @p base snapshot was taken (the sampled-interval path uses this to
 * discard detailed-warmup statistics). Non-counter fields (workload,
 * halted) come from @p fin.
 */
SimReport deltaReport(const SimReport &fin, const SimReport &base);

/** Counter-wise accumulation of @p part into @p into (interval
 *  merging); halted is OR-ed, workload must match or be empty. */
void accumulateReport(SimReport &into, const SimReport &part);

/**
 * Export everything a report carries — the pipeline stats, the Figure-5
 * breakdown arrays, and the substrate (cache/TLB) statistics — into the
 * uniform named-stat namespace used by the scenario emitters.
 */
void exportReport(const SimReport &rep, StatSet &out);

/**
 * Run @p prog on a core configured by @p params.
 * @param max_retired stop after this many retired instructions
 * @param max_cycles  hard cycle limit
 */
SimReport runSimulation(const Program &prog, const CoreParams &params,
                        u64 max_retired = ~u64(0),
                        Cycle max_cycles = ~Cycle(0));

/**
 * End-to-end verification: run @p prog both on the cycle-level core
 * and on the functional emulator, and compare final architectural
 * registers, memory, emitted output and retired instruction count.
 * The program must halt within the limits.
 *
 * @return empty string on success, else a human-readable diagnosis.
 */
std::string verifyAgainstEmulator(const Program &prog,
                                  const CoreParams &params,
                                  u64 max_insts = 10'000'000,
                                  Cycle max_cycles = 50'000'000);

} // namespace rix

#endif // RIX_SIM_SIMULATOR_HH
