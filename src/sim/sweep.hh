/**
 * @file
 * Parallel sweep engine: runs independent simulation jobs (one
 * workload x one machine configuration each) across a fixed-size
 * thread pool and collects their reports in deterministic submission
 * order.
 *
 * The paper's figure reproductions are sweeps — every (config,
 * workload) point is an independent simulation — so the engine's only
 * job is throughput, not cleverness:
 *
 *  - programs come from the process-wide ProgramCache and are shared
 *    read-only by every job (built once per (name, scale));
 *  - each worker thread owns one long-lived SimContext whose Core is
 *    reset() between jobs, reusing the instruction-pool slabs, sparse
 *    memory pages, IT lanes and predictor arrays instead of paying
 *    construction per point;
 *  - results land in a pre-sized slot per job, so the output vector
 *    order equals the submission order no matter which worker finished
 *    first, and RIX_JOBS=1 vs RIX_JOBS=N outputs are bit-identical.
 *
 * Worker count comes from the RIX_JOBS environment knob (default:
 * hardware concurrency); RIX_JOBS=1 runs everything inline on the
 * calling thread — exactly the historical serial path.
 */

#ifndef RIX_SIM_SWEEP_HH
#define RIX_SIM_SWEEP_HH

#include <functional>
#include <memory>
#include <vector>

#include "base/cancel.hh"
#include "base/fault.hh"
#include "sim/simulator.hh"

namespace rix
{

class TraceSink;
class MetricsRecorder;

/**
 * Test-only fault injection, settable per job: prove the containment
 * machinery works (timeouts fire, retries recover, a poisoned job
 * never takes the process down) without crafting a pathological
 * workload. `None` for all real simulation.
 */
enum class JobInject : u8
{
    None = 0,
    /** Busy-wait (polling the cancel token) instead of simulating:
     *  a hung job. Requires an armed watchdog; fails Crash without
     *  one rather than hanging the worker forever. */
    Hang,
    /** Throw a plain runtime_error from the job body: a permanent
     *  crash, never retried. */
    Crash,
    /** Throw TransientError on the first attempt, succeed on retry:
     *  a spurious infrastructure failure the retry policy absorbs. */
    Transient,
};

const char *jobInjectName(JobInject inject);
bool jobInjectFromName(const std::string &name, JobInject *out);

/** One point of a sweep: workload x configuration x run limits. */
struct SimJob
{
    static constexpr u64 noCheckpoint = ~u64(0);

    std::string workload;       // program-cache key (with scale)
    u64 scale = 1;
    CoreParams params;
    u64 maxRetired = 20'000'000;
    Cycle maxCycles = 200'000'000;

    JobInject inject = JobInject::None;

    // Sampled-interval mode (checkpointAt != noCheckpoint): restore
    // the architectural checkpoint taken at `checkpointAt` retired
    // instructions (built once per (workload, scale, point) in the
    // process-wide CheckpointCache), run `warmup` detailed
    // instructions with statistics discarded, then measure for
    // `maxRetired` instructions — so maxRetired is always the job's
    // *reported* instruction budget. maxCycles caps warmup+measure
    // together.
    u64 checkpointAt = noCheckpoint;
    u64 warmup = 0;

    // Observability attach points (PR 9), null/zero when off. The
    // sink/recorder are owned by the job (shared_ptr so SimJob stays
    // copyable) and attached to the worker's core for the measured
    // run; they never affect simulated state. For sampled jobs the
    // trace window indexes into the *measured* retire stream (warmup
    // is not traced). A retried attempt re-arms the metrics recorder
    // but appends to the trace sink (file sinks cannot rewind).
    std::shared_ptr<TraceSink> trace;
    u64 traceStart = 0;
    u64 traceCount = 0;
    std::shared_ptr<MetricsRecorder> metrics;

    bool sampled() const { return checkpointAt != noCheckpoint; }
};

/**
 * A job's outcome: structured status instead of process death. `report`
 * is meaningful only when ok(); on failure `error` carries a one-line
 * diagnostic and — for divergences — `divergence` the full lockstep
 * report. `attempts` counts executions including retries (1 = first
 * try succeeded or failed permanently).
 */
struct SimJobResult
{
    SimReport report;
    double wallSeconds = 0.0;
    JobStatus status = JobStatus::Ok;
    std::string error;
    unsigned attempts = 1;
    DivergenceReport divergence;

    bool ok() const { return status == JobStatus::Ok; }
};

/**
 * A contained failure reported by SimContext::run/runInterval instead
 * of rix_fatal: what went wrong, as a status plus a one-line message
 * (plus the lockstep report for divergences).
 */
struct JobFault
{
    JobStatus status = JobStatus::Ok;
    std::string message;
    DivergenceReport divergence;
};

/**
 * Optional per-run control for SimContext: a cancellation token the
 * core polls (timeouts, shutdown) and a fault sink. With a null
 * `fault`, failures are fatal — exactly the historical single-run
 * semantics every existing caller keeps.
 */
struct RunControl
{
    const CancelToken *cancel = nullptr;
    JobFault *fault = nullptr;

    // Observability taps forwarded to the core (see SimJob). Non-owning;
    // the caller keeps them alive across the run.
    TraceSink *trace = nullptr;
    u64 traceStart = 0;
    u64 traceCount = 0;
    MetricsRecorder *metrics = nullptr;
};

/**
 * A reusable simulation context: one long-lived Core that is reset
 * (not reconstructed) for every job it runs. Each sweep worker owns
 * one; single runs can use one directly.
 */
class SimContext
{
  public:
    SimContext();
    ~SimContext();

    /**
     * Run one simulation, reusing this context's core. With
     * @p ctl.fault set, divergence/stuck/timeout outcomes land there
     * (status != Ok, report still returned for whatever was simulated);
     * without it they are fatal, the historical behaviour.
     */
    SimReport run(const Program &prog, const CoreParams &params,
                  u64 max_retired, Cycle max_cycles,
                  const RunControl &ctl = {});

    /**
     * Run one sampled interval: resume the detailed pipeline from
     * @p from, run @p warmup instructions discarding statistics, then
     * measure @p measure instructions. The returned report covers
     * exactly the measured window (warmup === 0 and a checkpoint at
     * instruction 0 make it bit-identical to a full run() of the same
     * budget). @p ctl as for run().
     */
    SimReport runInterval(const Program &prog, const Checkpoint &from,
                          const CoreParams &params, u64 warmup,
                          u64 measure, Cycle max_cycles,
                          const RunControl &ctl = {});

  private:
    std::unique_ptr<Core> core;
};

/**
 * A job's inputs, pinned for the duration of the run: holding the
 * shared_ptrs keeps the program/checkpoint alive (and, for the serve
 * daemon's bounded LRU caches, un-evictable) while the core uses them.
 */
struct PinnedJobInputs
{
    std::shared_ptr<const Program> prog;
    std::shared_ptr<const Checkpoint> from; // null unless job.sampled()
};

/**
 * Where a contained job gets its program/checkpoint. Null: the
 * process-wide unbounded caches (sweeps). The serve daemon supplies
 * its byte-budgeted LRU caches instead. Called once per attempt; may
 * throw (reported as a crash status, retried only if TransientError).
 */
using JobInputSource = std::function<PinnedJobInputs(const SimJob &)>;

/**
 * Fault-contained execution of one job on the caller's context:
 * non-fatal validation, watchdog armed from policy.timeoutMs per
 * attempt, transient failures retried with exponential backoff. The
 * building block of both SweepRunner::run(jobs, policy) and the serve
 * daemon's request execution.
 */
SimJobResult runJobContained(SimContext &ctx, const SimJob &job,
                             const FaultPolicy &policy,
                             const JobInputSource &inputs = nullptr);

/**
 * Called once per job as it retires from the pool, from whichever
 * worker thread ran it (serialize internally if needed). The sweep's
 * durability hook: the result-store journal appends from here, so a
 * crashed process keeps every job that ever completed. Must not throw
 * — a journaling failure that matters should be fatal in the hook
 * itself, not misreported as a job crash.
 */
using SweepRetireHook = std::function<void(size_t job_index,
                                           const SimJobResult &result)>;

class SweepRunner
{
  public:
    /** @p num_threads 0 means "use jobsFromEnv()" (the RIX_JOBS knob). */
    explicit SweepRunner(unsigned num_threads = 0);

    /**
     * Execute every job and return results in submission order.
     * Programs are fetched from the global ProgramCache. A job that
     * throws rethrows here, after all other jobs finished — the
     * historical fail-fast contract (bench drivers, figure sweeps).
     */
    std::vector<SimJobResult> run(const std::vector<SimJob> &jobs);

    /**
     * Fault-contained execution under @p policy: every job gets a
     * structured status; K failing jobs leave the other N-K results
     * intact. Transient failures (timeouts, injected transients) are
     * retried with exponential backoff up to policy.retries; permanent
     * ones (divergence, stuck, crash) are not. With policy.strict the
     * whole sweep is fatal *after* all jobs finish, naming the first
     * failure — fail-fast restored, but still never a partial result
     * vector. @p on_retire (nullable) fires once per completed job.
     */
    std::vector<SimJobResult> run(const std::vector<SimJob> &jobs,
                                  const FaultPolicy &policy,
                                  const SweepRetireHook &on_retire = nullptr);

    unsigned threads() const { return nThreads; }

  private:
    unsigned nThreads;
};

} // namespace rix

#endif // RIX_SIM_SWEEP_HH
