/**
 * @file
 * Parallel sweep engine: runs independent simulation jobs (one
 * workload x one machine configuration each) across a fixed-size
 * thread pool and collects their reports in deterministic submission
 * order.
 *
 * The paper's figure reproductions are sweeps — every (config,
 * workload) point is an independent simulation — so the engine's only
 * job is throughput, not cleverness:
 *
 *  - programs come from the process-wide ProgramCache and are shared
 *    read-only by every job (built once per (name, scale));
 *  - each worker thread owns one long-lived SimContext whose Core is
 *    reset() between jobs, reusing the instruction-pool slabs, sparse
 *    memory pages, IT lanes and predictor arrays instead of paying
 *    construction per point;
 *  - results land in a pre-sized slot per job, so the output vector
 *    order equals the submission order no matter which worker finished
 *    first, and RIX_JOBS=1 vs RIX_JOBS=N outputs are bit-identical.
 *
 * Worker count comes from the RIX_JOBS environment knob (default:
 * hardware concurrency); RIX_JOBS=1 runs everything inline on the
 * calling thread — exactly the historical serial path.
 */

#ifndef RIX_SIM_SWEEP_HH
#define RIX_SIM_SWEEP_HH

#include <memory>
#include <vector>

#include "sim/simulator.hh"

namespace rix
{

/** One point of a sweep: workload x configuration x run limits. */
struct SimJob
{
    static constexpr u64 noCheckpoint = ~u64(0);

    std::string workload;       // program-cache key (with scale)
    u64 scale = 1;
    CoreParams params;
    u64 maxRetired = 20'000'000;
    Cycle maxCycles = 200'000'000;

    // Sampled-interval mode (checkpointAt != noCheckpoint): restore
    // the architectural checkpoint taken at `checkpointAt` retired
    // instructions (built once per (workload, scale, point) in the
    // process-wide CheckpointCache), run `warmup` detailed
    // instructions with statistics discarded, then measure for
    // `maxRetired` instructions — so maxRetired is always the job's
    // *reported* instruction budget. maxCycles caps warmup+measure
    // together.
    u64 checkpointAt = noCheckpoint;
    u64 warmup = 0;

    bool sampled() const { return checkpointAt != noCheckpoint; }
};

/** A job's report plus the host wall time the simulation took. */
struct SimJobResult
{
    SimReport report;
    double wallSeconds = 0.0;
};

/**
 * A reusable simulation context: one long-lived Core that is reset
 * (not reconstructed) for every job it runs. Each sweep worker owns
 * one; single runs can use one directly.
 */
class SimContext
{
  public:
    SimContext();
    ~SimContext();

    /** Run one simulation, reusing this context's core. */
    SimReport run(const Program &prog, const CoreParams &params,
                  u64 max_retired, Cycle max_cycles);

    /**
     * Run one sampled interval: resume the detailed pipeline from
     * @p from, run @p warmup instructions discarding statistics, then
     * measure @p measure instructions. The returned report covers
     * exactly the measured window (warmup === 0 and a checkpoint at
     * instruction 0 make it bit-identical to a full run() of the same
     * budget).
     */
    SimReport runInterval(const Program &prog, const Checkpoint &from,
                          const CoreParams &params, u64 warmup,
                          u64 measure, Cycle max_cycles);

  private:
    std::unique_ptr<Core> core;
};

class SweepRunner
{
  public:
    /** @p num_threads 0 means "use jobsFromEnv()" (the RIX_JOBS knob). */
    explicit SweepRunner(unsigned num_threads = 0);

    /**
     * Execute every job and return results in submission order.
     * Programs are fetched from the global ProgramCache. A job that
     * throws rethrows here, after all other jobs finished.
     */
    std::vector<SimJobResult> run(const std::vector<SimJob> &jobs);

    unsigned threads() const { return nThreads; }

  private:
    unsigned nThreads;
};

} // namespace rix

#endif // RIX_SIM_SWEEP_HH
