/**
 * @file
 * `rix fuzz` — differential fuzzing of the cycle-level core.
 *
 * Runs N seeded random programs (src/workload/randprog.hh) times a
 * panel of core-parameter points (expanded through the scenario grid
 * machinery) with retire-time lockstep checking forced on, in parallel
 * on the sweep thread pool. Any divergence is shrunk by a
 * delta-debugging minimizer — instruction ranges are neutralized to
 * NOPs (code addresses never shift, so branch targets stay valid) and
 * the failure re-checked — and written out as a replayable reproducer:
 * the generator seed, the exact configuration point, the divergence
 * report and the shrunken assembly listing.
 */

#ifndef RIX_SIM_FUZZ_HH
#define RIX_SIM_FUZZ_HH

#include <functional>
#include <string>
#include <vector>

#include "cpu/lockstep.hh"
#include "sim/scenario.hh"
#include "workload/randprog.hh"

namespace rix
{

struct FuzzOptions
{
    /** Number of random programs: seeds firstSeed .. firstSeed+seeds-1. */
    u64 seeds = 100;
    u64 firstSeed = 1;

    /** Random-program shape. */
    RandProgConfig prog;

    /** Scenario spec supplying the configuration panel (its "configs"
     *  and "grid" expand exactly like `rix run`; workloads/limits are
     *  ignored). Empty: the built-in 4-point panel. */
    std::string panelPath;

    /** Restrict the panel to one point label (""; all points). */
    std::string onlyConfig;

    /** Per-run limits. */
    u64 maxRetired = 10'000'000;
    Cycle maxCycles = 50'000'000;

    /** Where the reproducer is written on failure. */
    std::string reproPath = "rix_fuzz_repro.txt";

    /** Shrink the failing program before writing the reproducer. */
    bool minimize = true;
};

struct FuzzFailure
{
    u64 seed = 0;
    std::string configLabel;
    DivergenceReport report;

    /** The shrunken failing program (== the generated program when
     *  minimization is off or made no progress). */
    Program minimized;
    /** Non-NOP instructions left in the shrunken program. */
    size_t liveInsts = 0;
    /** Candidate simulations the minimizer ran. */
    u64 minimizeRuns = 0;
};

struct FuzzResult
{
    u64 programs = 0;
    size_t points = 0;
    u64 runs = 0;

    /** Runs that hit the retired/cycle budget before HALT: those
     *  verified only a prefix of the program, not the whole run.
     *  Always 0 with the default budgets (generated programs halt
     *  within randProgInstBudget()). */
    u64 truncated = 0;

    bool failed = false;
    FuzzFailure failure;      // valid when failed
    std::string reproFile;    // path written on failure
};

/**
 * Expand the configuration panel: @p panel_path through the scenario
 * parser (empty: the built-in panel), optionally filtered to
 * @p only_config, with check.lockstep forced on and every point
 * validated. Fatal on an empty selection, naming the valid labels.
 */
std::vector<ScenarioConfig> fuzzPanel(const std::string &panel_path,
                                      const std::string &only_config);

/** Non-NOP instruction count of @p p. */
size_t liveInstCount(const Program &p);

/**
 * Delta-debugging shrink: repeatedly neutralize instruction ranges of
 * @p p to NOPs (halving chunk sizes down to single instructions),
 * keeping every candidate for which @p still_fails holds, until a
 * fixed point; trailing NOPs are then trimmed. @p still_fails must be
 * deterministic. @p runs (optional) counts predicate evaluations.
 */
Program minimizeProgram(const Program &p,
                        const std::function<bool(const Program &)> &
                            still_fails,
                        u64 *runs = nullptr);

/** Run the fuzz campaign; on divergence the first failure (in
 *  deterministic seed-major, point-minor order) is minimized and a
 *  reproducer written to opts.reproPath. */
FuzzResult runFuzz(const FuzzOptions &opts);

/** True when this build compiled in the deliberate execute-stage
 *  fault (cmake -DRIX_FAULT_INJECT=ON; verification self-test). */
bool buildHasInjectedFault();

} // namespace rix

#endif // RIX_SIM_FUZZ_HH
