/**
 * @file
 * `rix fuzz` — differential fuzzing of the cycle-level core.
 *
 * Runs N seeded random programs (src/workload/randprog.hh) times a
 * panel of core-parameter points (expanded through the scenario grid
 * machinery) with retire-time lockstep checking forced on, in parallel
 * on the sweep thread pool. Any divergence is shrunk by a
 * delta-debugging minimizer — instruction ranges are neutralized to
 * NOPs (code addresses never shift, so branch targets stay valid) and
 * the failure re-checked — and written out as a replayable reproducer:
 * the generator seed, the exact configuration point, the divergence
 * report and the shrunken assembly listing.
 *
 * Two campaign modes:
 *
 *  - Blind (default): seeds firstSeed..firstSeed+N-1 in order, stop at
 *    the first failure. The classic property-testing sweep.
 *
 *  - Guided (--guided / --corpus): every run carries a CoverageMap
 *    (src/trace/coverage.hh); programs whose maps contribute new bits
 *    to the campaign union are admitted to a corpus as replayable
 *    (seed, RandProgConfig) pairs, and later generations split their
 *    budget between fresh seeds (explore) and deterministic mutations
 *    of corpus entries (exploit; src/workload/randprog.hh mutators).
 *    Guided campaigns run the whole budget, deduplicating failures by
 *    fingerprint (failure kind + section-A coverage) instead of
 *    stopping at the first one.
 *
 * Both modes are bit-reproducible for any job count: programs are
 * scheduled, counted, folded into the coverage union and admitted to
 * the corpus in program order, never thread completion order.
 */

#ifndef RIX_SIM_FUZZ_HH
#define RIX_SIM_FUZZ_HH

#include <functional>
#include <string>
#include <vector>

#include "cpu/lockstep.hh"
#include "sim/corpus.hh"
#include "sim/scenario.hh"
#include "trace/coverage.hh"
#include "workload/randprog.hh"

namespace rix
{

struct FuzzOptions
{
    /** Number of random programs: seeds firstSeed .. firstSeed+seeds-1
     *  (guided campaigns spend the same budget, but exploit slots
     *  replace the fresh seed with a corpus mutation). */
    u64 seeds = 100;
    u64 firstSeed = 1;

    /** Random-program shape. */
    RandProgConfig prog;

    /** Scenario spec supplying the configuration panel (its "configs"
     *  and "grid" expand exactly like `rix run`; workloads/limits are
     *  ignored). Empty: the built-in 4-point panel. */
    std::string panelPath;

    /** Restrict the panel to one point label (""; all points). */
    std::string onlyConfig;

    /** Per-run limits. */
    u64 maxRetired = 10'000'000;
    Cycle maxCycles = 50'000'000;

    /** Where the reproducer is written on failure. */
    std::string reproPath = "rix_fuzz_repro.txt";

    /** Shrink the failing program before writing the reproducer. */
    bool minimize = true;

    /** Coverage-guided mode (see the file comment). */
    bool guided = false;

    /** Corpus journal directory: entries are loaded before the
     *  campaign and new ones saved after it. Implies guided. */
    std::string corpusDir;

    /** Percentage of guided program slots given to fresh seeds; the
     *  rest mutate corpus entries (all slots are fresh while the
     *  corpus is empty). */
    unsigned explorePct = 50;

    /**
     * Test-only failure hook: when set, it is consulted per run
     * (program, seed, config label) before simulation; a non-empty
     * return is recorded as a synthetic failure of that kind and the
     * simulation is skipped. Lets tests exercise the campaign's
     * counting, dedupe and determinism invariants from a correct
     * build. Use with minimize = false (synthetic failures cannot be
     * re-reproduced by the minimizer).
     */
    std::function<std::string(const Program &, u64 seed,
                              const std::string &label)>
        testFailure;
};

struct FuzzFailure
{
    u64 seed = 0;
    /** Generator config of the failing program (a guided-mode mutant
     *  can differ from FuzzOptions::prog). */
    RandProgConfig cfg;
    /** Provenance: "seed" for fresh programs, else the mutator. */
    std::string mutator = "seed";
    std::string configLabel;

    /** The original detection report. */
    DivergenceReport report;

    /** Coverage of the failing run and the dedupe fingerprint
     *  (failureFingerprint of report.kind + map). */
    CoverageMap map;
    u64 fingerprint = 0;

    /** The shrunken failing program (== the generated program when
     *  minimization is off or made no progress). */
    Program minimized;
    /** Re-verification report of the minimized program — the
     *  minimizer preserves the failure kind, and one confirmation run
     *  records how the shrunken program fails. Equals `report` when
     *  minimization is off. */
    DivergenceReport minimizedReport;
    /** Non-NOP instructions left in the shrunken program. */
    size_t liveInsts = 0;
    /** Candidate simulations the minimizer ran. */
    u64 minimizeRuns = 0;
};

struct FuzzResult
{
    u64 programs = 0;
    size_t points = 0;
    u64 runs = 0;

    /** Runs that hit the retired/cycle budget before HALT: those
     *  verified only a prefix of the program, not the whole run.
     *  Always 0 with the default budgets (generated programs halt
     *  within randProgInstBudget()). */
    u64 truncated = 0;

    /** Union coverage over every counted run (plus a loaded corpus's
     *  union in guided mode). */
    CoverageMap coverage;

    /** Failing runs observed / distinct failure fingerprints among
     *  them. Blind campaigns stop at the first failure, so both are
     *  0 or 1 there; guided campaigns run the whole budget. */
    u64 failures = 0;
    u64 uniqueFailures = 0;

    /** Guided mode: corpus size at campaign end, and entries kept
     *  from the --corpus directory load. */
    size_t corpusEntries = 0;
    size_t corpusLoaded = 0;

    bool failed = false;
    FuzzFailure failure;      // valid when failed (the first failure)
    std::string reproFile;    // path written on failure
};

/**
 * Expand the configuration panel: @p panel_path through the scenario
 * parser (empty: the built-in panel), optionally filtered to
 * @p only_config, with check.lockstep forced on and every point
 * validated. Fatal on an empty selection, naming the valid labels.
 */
std::vector<ScenarioConfig> fuzzPanel(const std::string &panel_path,
                                      const std::string &only_config);

/**
 * The selection step of fuzzPanel(), split out for testability:
 * filter @p spec's configs to @p only_config (empty selects all) and
 * force lockstep on. Fatal when the panel declares no configs at all
 * (naming @p panel_name) and when the filter matches nothing (naming
 * the valid labels).
 */
std::vector<ScenarioConfig> selectPanelPoints(const ScenarioSpec &spec,
                                              const std::string &panel_name,
                                              const std::string &only_config);

/** Non-NOP instruction count of @p p. */
size_t liveInstCount(const Program &p);

/**
 * Dedupe fingerprint of a failure: FNV-1a over the failure kind and
 * the coverage map's section-A event word. Two failures with the same
 * kind that exercised the same discrete microarchitectural paths are
 * duplicates, regardless of program size (section B is excluded on
 * purpose — its magnitude buckets track program length).
 */
u64 failureFingerprint(const std::string &kind, const CoverageMap &map);

/** Set the kCovFail* class bit matching @p r in @p map. */
void applyFailureClass(const DivergenceReport &r, CoverageMap &map);

/**
 * Delta-debugging shrink: repeatedly neutralize instruction ranges of
 * @p p to NOPs (halving chunk sizes down to single instructions),
 * keeping every candidate for which @p still_fails holds, until a
 * fixed point; trailing NOPs are then trimmed. @p still_fails must be
 * deterministic. @p runs (optional) counts predicate evaluations.
 */
Program minimizeProgram(const Program &p,
                        const std::function<bool(const Program &)> &
                            still_fails,
                        u64 *runs = nullptr);

/** Run the fuzz campaign; on divergence the first failure (in
 *  deterministic program-major, point-minor order) is minimized and a
 *  reproducer written to opts.reproPath. */
FuzzResult runFuzz(const FuzzOptions &opts);

/** True when this build compiled in the deliberate execute-stage
 *  fault (cmake -DRIX_FAULT_INJECT=ON; verification self-test). */
bool buildHasInjectedFault();

} // namespace rix

#endif // RIX_SIM_FUZZ_HH
