/**
 * @file
 * Whole-configuration validation of a CoreParams set.
 *
 * Historically a bad geometry (zero or non-power-of-two entries,
 * impossible set counts) was only caught piecemeal by a rix_fatal deep
 * inside whichever substrate was constructed first (Lisp,
 * IntegrationTable, Cache, Tlb, Btb), so a bad CLI config died with a
 * single low-level message and no indication of which field to fix.
 * validateCoreParams() checks the entire parameter set up front and
 * reports every violation at once, each naming the offending field.
 * The substrate fatals remain as a defense-in-depth backstop.
 */

#ifndef RIX_SIM_VALIDATE_HH
#define RIX_SIM_VALIDATE_HH

#include <string>

#include "cpu/params.hh"

namespace rix
{

/**
 * Validate @p p as a constructible, deadlock-free machine
 * configuration.
 * @return "" when valid; otherwise one "field: problem" diagnostic per
 *         violation, newline-separated.
 */
std::string validateCoreParams(const CoreParams &p);

/** validateCoreParams + rix_fatal on failure, prefixed with @p what. */
void requireValidCoreParams(const CoreParams &p, const std::string &what);

} // namespace rix

#endif // RIX_SIM_VALIDATE_HH
