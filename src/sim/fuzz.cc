#include "sim/fuzz.hh"

#include <algorithm>
#include <memory>
#include <set>

#include "base/log.hh"
#include "base/rng.hh"
#include "base/thread_pool.hh"
#include "sim/validate.hh"

namespace rix
{

namespace
{

/**
 * The built-in configuration panel, expressed as a scenario spec so
 * the label/set/grid expansion is exactly `rix run`'s: a baseline and
 * a small-window/small-IT machine, each with integration off and with
 * the full reverse mechanism — the four points where divergences have
 * historically hidden (squash churn, IT replacement, misintegration
 * recovery, plain pipeline).
 */
const char kBuiltinPanel[] = R"json({
  "name": "fuzz-panel",
  "workloads": ["gzip"],
  "configs": [
    {"label": "base", "set": {}},
    {"label": "tiny", "set": {"rob_size": 16, "rs_size": 8,
      "max_mem_ops": 8, "fetch_queue_size": 4, "integ.it_entries": 32,
      "integ.it_assoc": 2, "integ.num_phys_regs": 128}}
  ],
  "grid": {"integ.mode": ["off", "reverse"]}
})json";

} // namespace

bool
buildHasInjectedFault()
{
#ifdef RIX_FAULT_INJECT_ADDQ
    return true;
#else
    return false;
#endif
}

std::vector<ScenarioConfig>
selectPanelPoints(const ScenarioSpec &spec, const std::string &panel_name,
                  const std::string &only_config)
{
    if (spec.configs.empty())
        rix_fatal("rix fuzz: panel %s declares no configs — there is "
                  "nothing to fuzz against", panel_name.c_str());

    std::vector<ScenarioConfig> points;
    for (const ScenarioConfig &cfg : spec.configs) {
        if (!only_config.empty() && cfg.label != only_config)
            continue;
        ScenarioConfig pt = cfg;
        pt.params.check.lockstep = true;
        requireValidCoreParams(pt.params,
                               "fuzz panel config '" + pt.label + "'");
        points.push_back(std::move(pt));
    }
    if (points.empty()) {
        std::string labels;
        for (const ScenarioConfig &cfg : spec.configs)
            labels += " '" + cfg.label + "'";
        rix_fatal("rix fuzz: --config '%s' matches no point of panel %s; "
                  "valid labels:%s", only_config.c_str(),
                  panel_name.c_str(), labels.c_str());
    }
    return points;
}

std::vector<ScenarioConfig>
fuzzPanel(const std::string &panel_path, const std::string &only_config)
{
    const std::string text = panel_path.empty()
                                 ? std::string(kBuiltinPanel)
                                 : readScenarioFile(panel_path);
    const std::string name =
        panel_path.empty() ? "builtin" : "'" + panel_path + "'";
    return selectPanelPoints(parseScenario(text), name, only_config);
}

size_t
liveInstCount(const Program &p)
{
    size_t n = 0;
    for (const Instruction &inst : p.code)
        n += inst.isNop() ? 0 : 1;
    return n;
}

u64
failureFingerprint(const std::string &kind, const CoverageMap &map)
{
    u64 h = 14695981039346656037ull;
    const auto mix = [&h](const void *p, size_t n) {
        const unsigned char *bytes =
            static_cast<const unsigned char *>(p);
        for (size_t i = 0; i < n; ++i) {
            h ^= bytes[i];
            h *= 1099511628211ull;
        }
    };
    mix(kind.data(), kind.size());
    const u64 events = map.eventWord();
    mix(&events, sizeof(events));
    return h;
}

void
applyFailureClass(const DivergenceReport &r, CoverageMap &map)
{
    if (r.kind == "value")
        map.set(kCovFailValue);
    else if (r.kind == "pc-stream")
        map.set(kCovFailPcStream);
    else if (r.kind == "shadow")
        map.set(kCovFailShadow);
    else if (r.kind == "stuck")
        map.set(r.reason.compare(0, 8, "watchdog") == 0
                    ? kCovFailStuckWatchdog
                    : kCovFailStuckTextFault);
    // Synthetic test-hook kinds carry no class bit.
}

Program
minimizeProgram(const Program &p,
                const std::function<bool(const Program &)> &still_fails,
                u64 *runs)
{
    u64 local_runs = 0;
    Program cur = p;
    const size_t n = cur.code.size();

    size_t chunk0 = 1;
    while (chunk0 * 2 <= n)
        chunk0 *= 2;

    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t chunk = chunk0; chunk >= 1; chunk /= 2) {
            for (size_t start = 0; start < n; start += chunk) {
                const size_t stop = std::min(n, start + chunk);
                Program cand = cur;
                bool any = false;
                for (size_t i = start; i < stop; ++i) {
                    if (!cand.code[i].isNop()) {
                        cand.code[i] = makeNop();
                        any = true;
                    }
                }
                if (!any)
                    continue;
                // Copying already drops the decoded cache, but the
                // NOP-stamping above is an in-place code mutation:
                // invalidate defensively so no stale decoded form can
                // ever be observed through this candidate.
                cand.invalidateDecoded();
                ++local_runs;
                if (still_fails(cand)) {
                    cur = std::move(cand);
                    changed = true;
                }
            }
        }
    }

    // Out-of-range PCs fetch as NOPs on both the core and the
    // emulator, so trailing NOP slots are semantically dead weight —
    // drop them (keeping the entry slot in range).
    while (!cur.code.empty() && cur.code.back().isNop() &&
           cur.code.size() > cur.entry + 1)
        cur.code.pop_back();

    if (runs)
        *runs += local_runs;
    return cur;
}

namespace
{

std::string
describeGenerator(const RandProgConfig &c)
{
    return strfmt("body_ops=[%u,%u] iters=[%u,%u] branch_weight=%u "
                  "mem_weight=%u call_depth=%u mem_footprint=%u "
                  "data_quads=%u alu_op_bias=%u splice_seed=%llu",
                  c.bodyOpsMin, c.bodyOpsMax, c.itersMin, c.itersMax,
                  c.branchWeight, c.memWeight, c.callDepth,
                  c.memFootprint, c.dataQuads, c.aluOpBias,
                  (unsigned long long)c.spliceSeed);
}

void
writeReproducer(const FuzzOptions &opts, const FuzzFailure &f)
{
    FILE *out = fopen(opts.reproPath.c_str(), "w");
    if (!out)
        rix_fatal("rix fuzz: cannot write reproducer '%s'",
                  opts.reproPath.c_str());

    fprintf(out, "# rix fuzz reproducer\n");
    fprintf(out, "# seed: %llu\n", (unsigned long long)f.seed);
    fprintf(out, "# config: %s\n", f.configLabel.c_str());
    fprintf(out, "# panel: %s\n",
            opts.panelPath.empty() ? "builtin" : opts.panelPath.c_str());
    fprintf(out, "# generator: %s\n", describeGenerator(f.cfg).c_str());
    fprintf(out, "# mutator: %s\n", f.mutator.c_str());
    fprintf(out, "# failure kind: %s\n", f.report.kind.c_str());
    fprintf(out, "# fingerprint: %016llx\n",
            (unsigned long long)f.fingerprint);
    fprintf(out, "# coverage: %zu bits, signature %016llx\n",
            f.map.popcount(), (unsigned long long)f.map.signature());
    fprintf(out, "# replay: rix fuzz --seeds 1 --first-seed %llu "
            "--config \"%s\"%s%s\n",
            (unsigned long long)f.seed, f.configLabel.c_str(),
            opts.panelPath.empty() ? "" : " --panel ",
            opts.panelPath.c_str());
    if (f.mutator != "seed")
        fprintf(out, "# note: mutated generator config — regenerate "
                "from the generator line above, not the CLI "
                "defaults\n");
    fprintf(out, "#\n# divergence:\n");
    fprintf(out, "%s", f.report.format().c_str());
    fprintf(out, "\n# minimized failure kind: %s\n",
            f.minimizedReport.kind.c_str());
    fprintf(out,
            "# minimized program: %zu live instructions in %zu slots "
            "(%llu shrink runs; NOP slots omitted), entry at slot %llu\n",
            f.liveInsts, f.minimized.code.size(),
            (unsigned long long)f.minimizeRuns,
            (unsigned long long)f.minimized.entry);
    for (size_t i = 0; i < f.minimized.code.size(); ++i) {
        if (f.minimized.code[i].isNop())
            continue;
        fprintf(out, "%6zu: %s\n", i,
                disassemble(f.minimized.code[i]).c_str());
    }
    fprintf(out, "# data segment: %zu bytes at 0x%llx\n",
            f.minimized.data.size(),
            (unsigned long long)f.minimized.dataBase);
    fclose(out);
}

struct Outcome
{
    bool failed = false;
    bool truncated = false; // budget hit before HALT: prefix-only
    DivergenceReport report;
    CoverageMap map;
};

/** One scheduled program: everything needed to regenerate it. */
struct RunDesc
{
    u64 seed = 0;
    RandProgConfig cfg;
    const char *mutator = "seed";
};

/**
 * One (program, panel point) simulation. Reuses one long-lived core
 * per worker thread (and one on the calling thread for the serial
 * path), reset per job — the same reusable-context discipline as the
 * sweep engine.
 */
Outcome
runOne(const FuzzOptions &opts, u64 seed, const RandProgConfig &cfg,
       const ScenarioConfig &pt)
{
    const Program prog = generateRandomProgram(seed, cfg);

    Outcome o;
    if (opts.testFailure) {
        const std::string kind = opts.testFailure(prog, seed, pt.label);
        if (!kind.empty()) {
            o.failed = true;
            o.report.diverged = true;
            o.report.kind = kind;
            o.report.reason = "synthetic failure (test hook)";
            applyFailureClass(o.report, o.map);
            return o;
        }
    }

    thread_local std::unique_ptr<Core> core;
    if (!core)
        core = std::make_unique<Core>(prog, pt.params);
    else
        core->reset(prog, pt.params);
    core->setCoverage(&o.map);
    core->run(opts.maxRetired, opts.maxCycles);
    core->setCoverage(nullptr); // o.map is about to move out
    o.map.harvestStats(core->stats());

    if (const DivergenceReport *d = core->divergence()) {
        o.failed = true;
        o.report = *d;
    } else if (core->stuck()) {
        // The forward-progress watchdog tripped (or a store hit the
        // text segment): a deadlock, livelock or wild store the fuzzer
        // provoked. As much a finding as a divergence — report and
        // minimize it; it does not kill the campaign.
        o.failed = true;
        o.report.diverged = true;
        o.report.kind = "stuck";
        o.report.icount = core->stats().retired;
        o.report.reason = core->stuckReason();
    } else if (!core->halted()) {
        o.truncated = true;
    }
    if (o.failed)
        applyFailureClass(o.report, o.map);
    return o;
}

} // namespace

FuzzResult
runFuzz(const FuzzOptions &opts)
{
    if (opts.seeds == 0)
        rix_fatal("rix fuzz: --seeds must be positive");
    if (opts.seeds > 100'000'000)
        rix_fatal("rix fuzz: --seeds %llu is unreasonably large",
                  (unsigned long long)opts.seeds);
    if (opts.explorePct > 100)
        rix_fatal("rix fuzz: --explore %u is not a percentage",
                  opts.explorePct);
    const std::string verr = validateRandProgConfig(opts.prog);
    if (!verr.empty())
        rix_fatal("rix fuzz: %s", verr.c_str());

    const std::vector<ScenarioConfig> points =
        fuzzPanel(opts.panelPath, opts.onlyConfig);
    const bool guided = opts.guided || !opts.corpusDir.empty();

    FuzzResult res;
    res.programs = opts.seeds;
    res.points = points.size();

    // First failure in deterministic program-major, point-minor order;
    // guided campaigns keep going past it, deduplicating later ones.
    std::set<u64> seenFps;
    size_t failPointIdx = 0;
    const auto recordFailure = [&](const RunDesc &d, size_t pt_idx,
                                   Outcome &o) {
        ++res.failures;
        const u64 fp = failureFingerprint(o.report.kind, o.map);
        if (!seenFps.insert(fp).second)
            return;
        ++res.uniqueFailures;
        if (res.failed)
            return;
        res.failed = true;
        FuzzFailure &f = res.failure;
        f.seed = d.seed;
        f.cfg = d.cfg;
        f.mutator = d.mutator;
        f.configLabel = points[pt_idx].label;
        f.report = std::move(o.report);
        f.map = o.map;
        f.fingerprint = fp;
        failPointIdx = pt_idx;
    };

    const u64 total = opts.seeds * points.size();
    const unsigned nThreads =
        unsigned(std::min<u64>(jobsFromEnv(), total));

    if (!guided) {
        // Blind campaign: seeds in order, stop at the first failure.
        u64 failIdx = ~u64(0);
        const auto blindDesc = [&](u64 i) {
            return RunDesc{opts.firstSeed + i / points.size(),
                           opts.prog, "seed"};
        };
        if (nThreads <= 1) {
            for (u64 i = 0; i < total; ++i) {
                const RunDesc d = blindDesc(i);
                Outcome o =
                    runOne(opts, d.seed, d.cfg, points[i % points.size()]);
                ++res.runs;
                res.truncated += o.truncated ? 1 : 0;
                o.map.orInto(res.coverage);
                if (o.failed) {
                    recordFailure(d, size_t(i % points.size()), o);
                    failIdx = i;
                    break;
                }
            }
        } else {
            // Batches bound how much work runs past a failure. Within
            // the failing batch only outcomes up to the failure index
            // are counted and folded, so runs/truncated/coverage are
            // identical to the serial break-at-first-failure path for
            // any job count.
            ThreadPool pool(nThreads);
            const u64 batch = std::max<u64>(u64(nThreads) * 8, 32);
            for (u64 b0 = 0; b0 < total && failIdx == ~u64(0);
                 b0 += batch) {
                const u64 b1 = std::min(total, b0 + batch);
                std::vector<std::future<Outcome>> futs;
                futs.reserve(size_t(b1 - b0));
                for (u64 i = b0; i < b1; ++i)
                    futs.push_back(pool.submit([&opts, &points, i]() {
                        return runOne(opts,
                                      opts.firstSeed + i / points.size(),
                                      opts.prog,
                                      points[i % points.size()]);
                    }));
                for (u64 i = b0; i < b1; ++i) {
                    Outcome o = futs[size_t(i - b0)].get();
                    if (failIdx != ~u64(0))
                        continue; // past the first failure: uncounted
                    ++res.runs;
                    res.truncated += o.truncated ? 1 : 0;
                    o.map.orInto(res.coverage);
                    if (o.failed) {
                        const RunDesc d = blindDesc(i);
                        recordFailure(d, size_t(i % points.size()), o);
                        failIdx = i;
                    }
                }
            }
        }
    } else {
        // Guided campaign: fixed-size generations; all scheduling for
        // a generation depends only on the corpus as it stood at the
        // generation barrier, and outcomes are counted, folded and
        // admitted in program order — bit-reproducible for any job
        // count. The whole budget always runs (failures dedupe
        // instead of stopping the campaign).
        constexpr u64 kGenSize = 32; // must not depend on thread count

        Corpus corpus;
        if (!opts.corpusDir.empty()) {
            res.corpusLoaded = corpus.loadDir(opts.corpusDir);
            corpus.unionMap().orInto(res.coverage);
        }

        std::unique_ptr<ThreadPool> pool;
        if (nThreads > 1)
            pool = std::make_unique<ThreadPool>(nThreads);

        for (u64 g0 = 0, gen = 0; g0 < opts.seeds;
             g0 += kGenSize, ++gen) {
            const u64 g1 = std::min(opts.seeds, g0 + kGenSize);

            // Explore/exploit split, scheduled serially per (first
            // seed, generation): fresh seeds keep their blind-mode
            // numbering; exploit slots mutate a corpus entry instead.
            Rng sched(0x9e3779b97f4a7c15ull * (opts.firstSeed + 1) +
                      0x517cc1b727220a95ull * (gen + 1));
            std::vector<RunDesc> descs;
            descs.reserve(size_t(g1 - g0));
            for (u64 p = g0; p < g1; ++p) {
                if (corpus.size() == 0 ||
                    sched.below(100) < opts.explorePct) {
                    descs.push_back(
                        {opts.firstSeed + p, opts.prog, "seed"});
                } else {
                    const CorpusEntry &e =
                        corpus.entries()[size_t(
                            sched.below(corpus.size()))];
                    const RandProgMutation m =
                        mutateRandProg(e.seed, e.cfg, sched.next());
                    descs.push_back({m.seed, m.cfg, m.mutator});
                }
            }

            std::vector<Outcome> outs(descs.size() * points.size());
            if (pool) {
                std::vector<std::future<Outcome>> futs;
                futs.reserve(outs.size());
                for (size_t di = 0; di < descs.size(); ++di)
                    for (size_t pi = 0; pi < points.size(); ++pi)
                        futs.push_back(pool->submit(
                            [&opts, &points, &descs, di, pi]() {
                                return runOne(opts, descs[di].seed,
                                              descs[di].cfg, points[pi]);
                            }));
                for (size_t k = 0; k < futs.size(); ++k)
                    outs[k] = futs[k].get();
            } else {
                for (size_t di = 0; di < descs.size(); ++di)
                    for (size_t pi = 0; pi < points.size(); ++pi)
                        outs[di * points.size() + pi] = runOne(
                            opts, descs[di].seed, descs[di].cfg,
                            points[pi]);
            }

            // Generation barrier: fold in program-major, point-minor
            // order; a program's corpus entry carries the union of its
            // coverage across the whole panel.
            for (size_t di = 0; di < descs.size(); ++di) {
                CoverageMap progMap;
                for (size_t pi = 0; pi < points.size(); ++pi) {
                    Outcome &o = outs[di * points.size() + pi];
                    ++res.runs;
                    res.truncated += o.truncated ? 1 : 0;
                    o.map.orInto(progMap);
                    o.map.orInto(res.coverage);
                    if (o.failed)
                        recordFailure(descs[di], pi, o);
                }
                corpus.admit({descs[di].seed, descs[di].cfg, progMap,
                              descs[di].mutator});
            }
        }

        res.corpusEntries = corpus.size();
        if (!opts.corpusDir.empty())
            corpus.saveNew(opts.corpusDir);
    }

    if (res.truncated)
        rix_warn("rix fuzz: %llu of %llu runs hit the retired/cycle "
                 "budget before HALT — those verified only a prefix of "
                 "their program (raise --max-retired for full coverage)",
                 (unsigned long long)res.truncated,
                 (unsigned long long)res.runs);

    if (!res.failed)
        return res;

    FuzzFailure &f = res.failure;
    const ScenarioConfig &pt = points[failPointIdx];
    f.minimized = generateRandomProgram(f.seed, f.cfg);
    f.minimizedReport = f.report;

    if (opts.minimize) {
        // Candidate budgets: divergence can only move modestly past the
        // original position when instructions are neutralized, so cap
        // each shrink run well below the full fuzz budget.
        const u64 budget_retired =
            std::min(opts.maxRetired, f.report.icount + 50'000);
        const Cycle budget_cycles =
            std::min<Cycle>(opts.maxCycles,
                            budget_retired * 20 + 100'000);
        std::unique_ptr<Core> mcore;
        const auto runCandidate = [&](const Program &cand) {
            if (!mcore)
                mcore = std::make_unique<Core>(cand, pt.params);
            else
                mcore->reset(cand, pt.params);
            mcore->run(budget_retired, budget_cycles);
        };
        // Only candidates reproducing the original failure *kind*
        // count: a divergence must not shrink into an unrelated stuck
        // program (or vice versa). Full-fingerprint equality would be
        // too strict — coverage bits vanish as instructions are
        // neutralized.
        const std::string wantKind = f.report.kind;
        const auto failsSameKind = [&](const Program &cand) {
            runCandidate(cand);
            if (const DivergenceReport *d = mcore->divergence())
                return d->kind == wantKind;
            return mcore->stuck() && wantKind == "stuck";
        };
        f.minimized =
            minimizeProgram(f.minimized, failsSameKind, &f.minimizeRuns);
        res.runs += f.minimizeRuns;

        // Confirmation run: re-verify the shrunken program once and
        // record how it fails (the reproducer embeds this report).
        runCandidate(f.minimized);
        ++res.runs;
        if (const DivergenceReport *d = mcore->divergence()) {
            f.minimizedReport = *d;
        } else if (mcore->stuck()) {
            f.minimizedReport = DivergenceReport{};
            f.minimizedReport.diverged = true;
            f.minimizedReport.kind = "stuck";
            f.minimizedReport.icount = mcore->stats().retired;
            f.minimizedReport.reason = mcore->stuckReason();
        } else {
            // The predicate held for every kept candidate, so this is
            // unreachable for a deterministic core; keep the original
            // report rather than fail the campaign.
            rix_warn("rix fuzz: minimized program did not re-fail "
                     "(non-deterministic failure?)");
        }
        if (f.minimizedReport.kind != wantKind)
            rix_warn("rix fuzz: minimized failure kind '%s' differs "
                     "from original '%s'",
                     f.minimizedReport.kind.c_str(), wantKind.c_str());
    }
    f.liveInsts = liveInstCount(f.minimized);

    writeReproducer(opts, f);
    res.reproFile = opts.reproPath;
    return res;
}

} // namespace rix
