#include "sim/fuzz.hh"

#include <algorithm>
#include <memory>

#include "base/log.hh"
#include "base/thread_pool.hh"
#include "sim/validate.hh"

namespace rix
{

namespace
{

/**
 * The built-in configuration panel, expressed as a scenario spec so
 * the label/set/grid expansion is exactly `rix run`'s: a baseline and
 * a small-window/small-IT machine, each with integration off and with
 * the full reverse mechanism — the four points where divergences have
 * historically hidden (squash churn, IT replacement, misintegration
 * recovery, plain pipeline).
 */
const char kBuiltinPanel[] = R"json({
  "name": "fuzz-panel",
  "workloads": ["gzip"],
  "configs": [
    {"label": "base", "set": {}},
    {"label": "tiny", "set": {"rob_size": 16, "rs_size": 8,
      "max_mem_ops": 8, "fetch_queue_size": 4, "integ.it_entries": 32,
      "integ.it_assoc": 2, "integ.num_phys_regs": 128}}
  ],
  "grid": {"integ.mode": ["off", "reverse"]}
})json";

} // namespace

bool
buildHasInjectedFault()
{
#ifdef RIX_FAULT_INJECT_ADDQ
    return true;
#else
    return false;
#endif
}

std::vector<ScenarioConfig>
fuzzPanel(const std::string &panel_path, const std::string &only_config)
{
    const std::string text = panel_path.empty()
                                 ? std::string(kBuiltinPanel)
                                 : readScenarioFile(panel_path);
    const ScenarioSpec spec = parseScenario(text);

    std::vector<ScenarioConfig> points;
    for (const ScenarioConfig &cfg : spec.configs) {
        if (!only_config.empty() && cfg.label != only_config)
            continue;
        ScenarioConfig pt = cfg;
        pt.params.check.lockstep = true;
        requireValidCoreParams(pt.params,
                               "fuzz panel config '" + pt.label + "'");
        points.push_back(std::move(pt));
    }
    if (points.empty()) {
        std::string labels;
        for (const ScenarioConfig &cfg : spec.configs)
            labels += " '" + cfg.label + "'";
        rix_fatal("rix fuzz: --config '%s' matches no panel point; "
                  "valid labels:%s", only_config.c_str(), labels.c_str());
    }
    return points;
}

size_t
liveInstCount(const Program &p)
{
    size_t n = 0;
    for (const Instruction &inst : p.code)
        n += inst.isNop() ? 0 : 1;
    return n;
}

Program
minimizeProgram(const Program &p,
                const std::function<bool(const Program &)> &still_fails,
                u64 *runs)
{
    u64 local_runs = 0;
    Program cur = p;
    const size_t n = cur.code.size();

    size_t chunk0 = 1;
    while (chunk0 * 2 <= n)
        chunk0 *= 2;

    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t chunk = chunk0; chunk >= 1; chunk /= 2) {
            for (size_t start = 0; start < n; start += chunk) {
                const size_t stop = std::min(n, start + chunk);
                Program cand = cur;
                bool any = false;
                for (size_t i = start; i < stop; ++i) {
                    if (!cand.code[i].isNop()) {
                        cand.code[i] = makeNop();
                        any = true;
                    }
                }
                if (!any)
                    continue;
                // Copying already drops the decoded cache, but the
                // NOP-stamping above is an in-place code mutation:
                // invalidate defensively so no stale decoded form can
                // ever be observed through this candidate.
                cand.invalidateDecoded();
                ++local_runs;
                if (still_fails(cand)) {
                    cur = std::move(cand);
                    changed = true;
                }
            }
        }
    }

    // Out-of-range PCs fetch as NOPs on both the core and the
    // emulator, so trailing NOP slots are semantically dead weight —
    // drop them (keeping the entry slot in range).
    while (!cur.code.empty() && cur.code.back().isNop() &&
           cur.code.size() > cur.entry + 1)
        cur.code.pop_back();

    if (runs)
        *runs += local_runs;
    return cur;
}

namespace
{

std::string
describeGenerator(const RandProgConfig &c)
{
    return strfmt("body_ops=[%u,%u] iters=[%u,%u] branch_weight=%u "
                  "mem_weight=%u call_depth=%u mem_footprint=%u "
                  "data_quads=%u",
                  c.bodyOpsMin, c.bodyOpsMax, c.itersMin, c.itersMax,
                  c.branchWeight, c.memWeight, c.callDepth,
                  c.memFootprint, c.dataQuads);
}

void
writeReproducer(const FuzzOptions &opts, const FuzzFailure &f)
{
    FILE *out = fopen(opts.reproPath.c_str(), "w");
    if (!out)
        rix_fatal("rix fuzz: cannot write reproducer '%s'",
                  opts.reproPath.c_str());

    fprintf(out, "# rix fuzz reproducer\n");
    fprintf(out, "# seed: %llu\n", (unsigned long long)f.seed);
    fprintf(out, "# config: %s\n", f.configLabel.c_str());
    fprintf(out, "# panel: %s\n",
            opts.panelPath.empty() ? "builtin" : opts.panelPath.c_str());
    fprintf(out, "# generator: %s\n",
            describeGenerator(opts.prog).c_str());
    fprintf(out, "# replay: rix fuzz --seeds 1 --first-seed %llu "
            "--config \"%s\"%s%s\n",
            (unsigned long long)f.seed, f.configLabel.c_str(),
            opts.panelPath.empty() ? "" : " --panel ",
            opts.panelPath.c_str());
    fprintf(out, "#\n# divergence:\n");
    fprintf(out, "%s", f.report.format().c_str());
    fprintf(out,
            "\n# minimized program: %zu live instructions in %zu slots "
            "(%llu shrink runs; NOP slots omitted), entry at slot %llu\n",
            f.liveInsts, f.minimized.code.size(),
            (unsigned long long)f.minimizeRuns,
            (unsigned long long)f.minimized.entry);
    for (size_t i = 0; i < f.minimized.code.size(); ++i) {
        if (f.minimized.code[i].isNop())
            continue;
        fprintf(out, "%6zu: %s\n", i,
                disassemble(f.minimized.code[i]).c_str());
    }
    fprintf(out, "# data segment: %zu bytes at 0x%llx\n",
            f.minimized.data.size(),
            (unsigned long long)f.minimized.dataBase);
    fclose(out);
}

} // namespace

FuzzResult
runFuzz(const FuzzOptions &opts)
{
    if (opts.seeds == 0)
        rix_fatal("rix fuzz: --seeds must be positive");
    if (opts.seeds > 100'000'000)
        rix_fatal("rix fuzz: --seeds %llu is unreasonably large",
                  (unsigned long long)opts.seeds);
    const std::string verr = validateRandProgConfig(opts.prog);
    if (!verr.empty())
        rix_fatal("rix fuzz: %s", verr.c_str());

    const std::vector<ScenarioConfig> points =
        fuzzPanel(opts.panelPath, opts.onlyConfig);

    FuzzResult res;
    res.programs = opts.seeds;
    res.points = points.size();

    const u64 total = opts.seeds * points.size();

    struct Outcome
    {
        bool failed = false;
        bool truncated = false; // budget hit before HALT: prefix-only
        DivergenceReport report;
    };

    // One long-lived core per worker thread (and one on the calling
    // thread for the serial path), reset per job — the same reusable-
    // context discipline as the sweep engine.
    const auto runJob = [&](u64 i) -> Outcome {
        const u64 seed = opts.firstSeed + i / points.size();
        const ScenarioConfig &pt = points[i % points.size()];
        const Program prog = generateRandomProgram(seed, opts.prog);

        thread_local std::unique_ptr<Core> core;
        if (!core)
            core = std::make_unique<Core>(prog, pt.params);
        else
            core->reset(prog, pt.params);
        core->run(opts.maxRetired, opts.maxCycles);

        Outcome o;
        if (const DivergenceReport *d = core->divergence()) {
            o.failed = true;
            o.report = *d;
        } else if (core->stuck()) {
            // The forward-progress watchdog tripped: a scheduling
            // deadlock or livelock the fuzzer provoked. As much a
            // finding as a divergence — report and minimize it; it no
            // longer kills the campaign.
            o.failed = true;
            o.report.diverged = true;
            o.report.kind = "stuck";
            o.report.icount = core->stats().retired;
            o.report.reason = core->stuckReason();
        } else if (!core->halted()) {
            o.truncated = true;
        }
        return o;
    };

    u64 failIdx = ~u64(0);
    Outcome fail;
    const unsigned nThreads =
        unsigned(std::min<u64>(jobsFromEnv(), total));
    if (nThreads <= 1) {
        for (u64 i = 0; i < total; ++i) {
            Outcome o = runJob(i);
            ++res.runs;
            res.truncated += o.truncated ? 1 : 0;
            if (o.failed) {
                failIdx = i;
                fail = std::move(o);
                break;
            }
        }
    } else {
        // Batches keep the first reported failure deterministic
        // (seed-major, point-minor order) while bounding how much work
        // runs past it.
        ThreadPool pool(nThreads);
        const u64 batch = std::max<u64>(u64(nThreads) * 8, 32);
        for (u64 b0 = 0; b0 < total && failIdx == ~u64(0); b0 += batch) {
            const u64 b1 = std::min(total, b0 + batch);
            std::vector<std::future<Outcome>> futs;
            futs.reserve(size_t(b1 - b0));
            for (u64 i = b0; i < b1; ++i)
                futs.push_back(pool.submit([&runJob, i]() {
                    return runJob(i);
                }));
            for (u64 i = b0; i < b1; ++i) {
                Outcome o = futs[size_t(i - b0)].get();
                ++res.runs;
                res.truncated += o.truncated ? 1 : 0;
                if (o.failed && failIdx == ~u64(0)) {
                    failIdx = i;
                    fail = std::move(o);
                }
            }
        }
    }

    if (res.truncated)
        rix_warn("rix fuzz: %llu of %llu runs hit the retired/cycle "
                 "budget before HALT — those verified only a prefix of "
                 "their program (raise --max-retired for full coverage)",
                 (unsigned long long)res.truncated,
                 (unsigned long long)res.runs);

    if (failIdx == ~u64(0))
        return res;

    res.failed = true;
    FuzzFailure &f = res.failure;
    f.seed = opts.firstSeed + failIdx / points.size();
    const ScenarioConfig &pt = points[failIdx % points.size()];
    f.configLabel = pt.label;
    f.report = fail.report;
    f.minimized = generateRandomProgram(f.seed, opts.prog);

    if (opts.minimize) {
        // Candidate budgets: divergence can only move modestly past the
        // original position when instructions are neutralized, so cap
        // each shrink run well below the full fuzz budget.
        const u64 budget_retired =
            std::min(opts.maxRetired, f.report.icount + 50'000);
        const Cycle budget_cycles =
            std::min<Cycle>(opts.maxCycles,
                            budget_retired * 20 + 100'000);
        std::unique_ptr<Core> mcore;
        const auto stillFails = [&](const Program &cand) {
            if (!mcore)
                mcore = std::make_unique<Core>(cand, pt.params);
            else
                mcore->reset(cand, pt.params);
            mcore->run(budget_retired, budget_cycles);
            // Shrink whichever failure we found: divergence or a
            // tripped forward-progress watchdog.
            return mcore->divergence() != nullptr || mcore->stuck();
        };
        f.minimized =
            minimizeProgram(f.minimized, stillFails, &f.minimizeRuns);
        res.runs += f.minimizeRuns;
    }
    f.liveInsts = liveInstCount(f.minimized);

    writeReproducer(opts, f);
    res.reproFile = opts.reproPath;
    return res;
}

} // namespace rix
