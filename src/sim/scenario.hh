/**
 * @file
 * Declarative scenario subsystem: a sweep described as data.
 *
 * A scenario spec is a small JSON document naming the workloads, the
 * workload scale, the run limits, and a list of machine configurations
 * (each a set of CoreParams overrides, optionally crossed with a grid
 * of further overrides). The engine expands the spec into SimJobs,
 * executes them on the parallel SweepRunner (sharing programs through
 * the process-wide ProgramCache), and renders the results either
 * generically — one row per (workload, config) point through the
 * StatRegistry, as JSON lines or CSV — or through one of the built-in
 * figure renderers that reproduce the paper's tables.
 *
 * Spec grammar (all fields optional unless noted):
 *
 *   {
 *     "name":        "fig4",
 *     "description": "free text",
 *     "workloads":   "all" | ["mcf", "gcc", ...],
 *     "scale":       1,            // RIX_SCALE env overrides
 *     "max_retired": 20000000,
 *     "max_cycles":  200000000,
 *     "base":        { <param overrides applied to every config> },
 *     "configs":     [ {"label": "base", "set": { ... }}, ... ],
 *     "grid":        { "integ.it_assoc": [1, 2, 4], ... },
 *     "render":      "jsonl" | "csv" | "fig4" | "fig5" | "fig6" | "fig7",
 *     "trace":       { "start": 0, "count": 100000,
 *                      "format": "konata", "out": "rix_trace.txt" },
 *     "metrics":     { "every": 10000, "out": "rix_metrics.jsonl" },
 *     "profile":     false
 *   }
 *
 * Parameter override keys are dotted snake_case paths into CoreParams
 * ("rs_size", "integ.mode", "mem.l1d.size_bytes", ...); unknown keys,
 * type mismatches and malformed JSON are fatal with the position and
 * field named. The grid's cross product (first key slowest) is
 * appended to every config; point labels read "cfg;key=value;...".
 *
 * The legacy RIX_BENCH / RIX_SCALE environment knobs override the
 * spec's workload selection and scale, so committed figure specs
 * behave exactly like the historical bench binaries under CI's
 * environment-driven harness.
 */

#ifndef RIX_SIM_SCENARIO_HH
#define RIX_SIM_SCENARIO_HH

#include <string>
#include <vector>

#include "base/json.hh"
#include "sim/sampling/sampling.hh"
#include "sim/sweep.hh"
#include "trace/metrics.hh"
#include "trace/trace.hh"

namespace rix
{

class ResultStore;

/** One machine configuration of a scenario (grid already expanded). */
struct ScenarioConfig
{
    std::string label;
    CoreParams params;
};

struct ScenarioSpec
{
    std::string name;
    std::string description;
    std::string render = "jsonl";
    std::vector<std::string> workloads; // resolved names, ordered
    u64 scale = 1;
    u64 maxRetired = 20'000'000;
    Cycle maxCycles = 200'000'000;
    std::vector<ScenarioConfig> configs;

    /**
     * Sampled-simulation plan from the spec's "sampling" block (see
     * sim/sampling/sampling.hh for the grammar). Empty: every point is
     * one full detailed run. Non-empty: every (workload, config) point
     * expands into one SimJob per interval — independently scheduled
     * across the sweep pool — whose reports are merged back into one
     * row per point, with the sampled_* rollup columns added.
     */
    SamplingPlan sampling;

    /**
     * Observability, from the spec's "trace" / "metrics" / "profile"
     * fields plus the RIX_TRACE* / RIX_METRICS_EVERY env overrides.
     * Each expanded job gets its own sink/recorder; when the spec
     * expands to more than one job, output paths are suffixed with the
     * job index (".<N>") so parallel jobs never share a file. All three
     * default off, leaving every simulated field bit-identical.
     */
    TraceConfig trace;
    MetricsConfig metrics;
    bool profile = false;

    /** Index of the config labeled @p label, or -1. */
    int configIndex(const std::string &label) const;
};

/**
 * Apply one "key: value" CoreParams override.
 * @return "" on success, else a diagnostic naming the key.
 */
std::string applyCoreParamOverride(CoreParams &p, const std::string &key,
                                   const JsonValue &v);

/**
 * Parse and fully expand a scenario spec (fatal on malformed input),
 * then apply the legacy RIX_SCALE / RIX_BENCH environment overrides.
 */
ScenarioSpec parseScenario(const std::string &json_text);

/**
 * The RIX_BENCH workload selection, validated against the registry;
 * @p dflt when the variable is unset.
 */
std::vector<std::string>
workloadSelectionFromEnv(std::vector<std::string> dflt);

/** Results of a scenario run, indexed (workload, config). */
struct ScenarioResults
{
    size_t numConfigs = 0;
    std::vector<SimJobResult> jobs; // workload-major; merged if sampled

    /** True when the run was fault-contained: rows carry the
     *  status/error/attempts columns and failed points have zeroed
     *  reports instead of having killed the process. */
    bool contained = false;

    /** Number of points with status != ok (contained runs). */
    size_t
    failures() const
    {
        size_t n = 0;
        for (const SimJobResult &j : jobs)
            n += j.ok() ? 0 : 1;
        return n;
    }

    // Sampled runs only: one rollup per (workload, config) point,
    // same indexing as jobs, plus the raw per-interval results
    // ((workload, config)-major, interval-minor).
    std::vector<SampledSummary> sampled;
    std::vector<SimJobResult> intervalJobs;

    bool isSampled() const { return !sampled.empty(); }

    const SimReport &
    report(size_t w, size_t c) const
    {
        return jobs[w * numConfigs + c].report;
    }

    double
    wallSeconds(size_t w, size_t c) const
    {
        return jobs[w * numConfigs + c].wallSeconds;
    }
};

/**
 * Validate every config (fatal with the config label on the first
 * invalid one) and execute the whole scenario across the RIX_JOBS
 * sweep pool. Historical fail-fast semantics: the first failing job
 * kills the process.
 */
ScenarioResults runScenario(const ScenarioSpec &spec);

/**
 * Fault-contained scenario execution: every (workload, config) point
 * gets a structured status; K failing points leave the other N-K rows
 * intact (a sampled point fails as a whole when any of its intervals
 * does). Only the generic row renders may consume a contained result —
 * the figure renderers have no way to mark holes, so the CLI forces
 * the fail-fast path for them. policy.strict dies after all jobs
 * finish, naming the first failure.
 */
ScenarioResults runScenario(const ScenarioSpec &spec,
                            const FaultPolicy &policy);

/**
 * Durable fault-contained execution: like runScenario(spec, policy),
 * but bound to a crash-recoverable result store. Every job already
 * journaled in @p store (matched by expanded job index, workload
 * verified) is *not* re-run — its stored result is used verbatim — and
 * every job that completes successfully is appended to the store, with
 * an fsync commit point, as it retires from the pool. An empty store
 * makes this a journaled fresh run; a partial store makes it a resume
 * whose merged results (sampled rollups included) are bit-identical in
 * every simulated field to an uninterrupted run. The store's meta must
 * match the spec's expansion (job count; checked fatal).
 */
ScenarioResults runScenario(const ScenarioSpec &spec,
                            const FaultPolicy &policy,
                            ResultStore *store);

/**
 * Expand the spec's (workload x config [x sampling interval]) cross
 * product into the sweep's job list, after fatal up-front validation
 * of every point. Job order is workload-major, config-minor, interval
 * innermost — the index a result store keys its records by.
 */
std::vector<SimJob> expandScenarioJobs(const ScenarioSpec &spec);

/** The config label of expanded job @p job_index ("" for an unlabeled
 *  single-config spec). */
const std::string &scenarioJobConfigLabel(const ScenarioSpec &spec,
                                          size_t job_index);

/** Render per the spec's "render" field onto @p out. */
void renderScenario(const ScenarioSpec &spec, const ScenarioResults &res,
                    FILE *out);

/** Slurp a spec file; fatal (naming the path) on open/read errors. */
std::string readScenarioFile(const std::string &path);

/**
 * Parse, run and render the spec at @p path onto @p out (nullptr:
 * stdout). The rendered document is buffered in memory and written in
 * one piece, so a failure mid-run never leaves a partial JSON/CSV
 * document on @p out — consumers see either the whole render or
 * nothing plus a one-line stderr diagnostic.
 *
 * @p policy null: historical fail-fast semantics. Non-null: fault
 * contained for the row renders (the figure renders always fail fast,
 * see runScenario).
 * @return process exit code: 0 when every job succeeded, 3 when the
 *         sweep completed but some points failed (their rows carry
 *         the status); spec problems are fatal.
 */
int runScenarioFile(const std::string &path, FILE *out = nullptr,
                    const FaultPolicy *policy = nullptr);

/**
 * Path of a committed scenario spec by name: $RIX_SCENARIO_DIR takes
 * precedence, else the build-time examples/scenarios directory. Used
 * by the thin figure-bench wrappers.
 */
std::string bundledScenarioPath(const std::string &name);

} // namespace rix

#endif // RIX_SIM_SCENARIO_HH
