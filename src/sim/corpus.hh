/**
 * @file
 * Seed corpus for coverage-guided fuzzing.
 *
 * A corpus entry is a (seed, RandProgConfig) pair — everything needed
 * to regenerate its program bit-identically — plus the coverage map
 * its run produced and the name of the mutator that derived it.
 * Admission is greedy: an entry is kept iff its map contributes at
 * least one bit the corpus union does not already have, and admission
 * order is part of the campaign's deterministic schedule (the fuzz
 * driver admits in program order, never thread completion order).
 *
 * Entries can be journaled to a directory as one `*.rixseed` text
 * file each (key=value lines), and reloaded in sorted filename order
 * — so a reloaded corpus reproduces the same union map and the same
 * entry sequence, and a second campaign can resume exploitation where
 * the first left off. A corpus directory should be managed by rix
 * alone; files are named by entry position.
 */

#ifndef RIX_SIM_CORPUS_HH
#define RIX_SIM_CORPUS_HH

#include <string>
#include <vector>

#include "trace/coverage.hh"
#include "workload/randprog.hh"

namespace rix
{

struct CorpusEntry
{
    u64 seed = 0;
    RandProgConfig cfg;
    CoverageMap map;
    /** Provenance: "seed" for fresh programs, else the mutator name. */
    std::string mutator = "seed";
};

/** Serialize one entry as `*.rixseed` key=value text. */
std::string formatCorpusEntry(const CorpusEntry &e);

/**
 * Parse formatCorpusEntry() output (unknown keys ignored, so newer
 * files with extra knobs still load). @return false on malformed
 * input or an invalid config.
 */
bool parseCorpusEntry(const std::string &text, CorpusEntry *out);

class Corpus
{
  public:
    /**
     * Offer @p e: its map is folded into the union, and the entry is
     * kept iff the union gained at least one bit.
     * @return true when the entry was kept.
     */
    bool admit(CorpusEntry e);

    /** Union of every admitted map (kept or not). */
    const CoverageMap &unionMap() const { return union_; }

    const std::vector<CorpusEntry> &entries() const { return entries_; }
    size_t size() const { return entries_.size(); }

    /**
     * Load every `*.rixseed` file under @p dir (sorted filename
     * order) through admit(). A missing directory loads nothing.
     * Fatal on a file that exists but does not parse.
     * @return entries kept.
     */
    size_t loadDir(const std::string &dir);

    /**
     * Write entries not yet journaled to @p dir (created if needed),
     * one `NNNNNN-<seed>.rixseed` file per entry, and mark them
     * saved. Fatal on I/O failure. @return files written.
     */
    size_t saveNew(const std::string &dir);

  private:
    std::vector<CorpusEntry> entries_;
    CoverageMap union_;
    size_t saved_ = 0; // entries_[0..saved_) are already on disk
};

} // namespace rix

#endif // RIX_SIM_CORPUS_HH
