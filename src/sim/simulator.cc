#include "sim/simulator.hh"

#include "base/log.hh"

namespace rix
{

SimReport
collectReport(Core &core, const std::string &workload)
{
    SimReport rep;
    rep.workload = workload;
    rep.core = core.stats();
    rep.halted = core.halted();
    rep.l1dMisses = core.memHierarchy().l1d().misses();
    rep.l1iMisses = core.memHierarchy().l1i().misses();
    rep.l2Misses = core.memHierarchy().l2().misses();
    rep.dtlbMisses = core.memHierarchy().dtlb().misses();
    rep.itlbMisses = core.memHierarchy().itlb().misses();
    return rep;
}

SimReport
runSimulation(const Program &prog, const CoreParams &params,
              u64 max_retired, Cycle max_cycles)
{
    Core core(prog, params);
    core.run(max_retired, max_cycles);
    return collectReport(core, prog.name);
}

std::string
verifyAgainstEmulator(const Program &prog, const CoreParams &params,
                      u64 max_insts, Cycle max_cycles)
{
    Core core(prog, params);
    core.run(max_insts, max_cycles);
    if (!core.halted())
        return strfmt("core did not halt within %llu insts / %llu cycles "
                      "(retired %llu)",
                      (unsigned long long)max_insts,
                      (unsigned long long)max_cycles,
                      (unsigned long long)core.stats().retired);

    Emulator emu(prog);
    emu.run(max_insts + 1);
    if (!emu.halted())
        return "emulator did not halt";

    if (core.stats().retired != emu.instsExecuted())
        return strfmt("retired count mismatch: core %llu vs emu %llu",
                      (unsigned long long)core.stats().retired,
                      (unsigned long long)emu.instsExecuted());

    for (unsigned r = 0; r < numLogRegs; ++r) {
        if (core.golden().reg(LogReg(r)) != emu.reg(LogReg(r)))
            return strfmt("register r%u mismatch: core %llu vs emu %llu",
                          r,
                          (unsigned long long)core.golden().reg(LogReg(r)),
                          (unsigned long long)emu.reg(LogReg(r)));
    }

    if (core.golden().output() != emu.output())
        return "program output mismatch";

    if (!core.golden().memory().contentEquals(emu.memory()))
        return "final memory image mismatch";

    return "";
}

} // namespace rix
