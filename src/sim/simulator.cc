#include "sim/simulator.hh"

#include "base/log.hh"
#include "sim/validate.hh"
#include "trace/profiler.hh"

namespace rix
{

namespace
{

/** Fig-5 style breakdown arrays, exported with self-describing names. */
template <size_t Rows>
void
exportBreakdown(StatSet &out, const char *prefix,
                const char *const (&labels)[Rows],
                const u64 (&cells)[Rows][2])
{
    for (size_t i = 0; i < Rows; ++i) {
        out.set(strfmt("%s_%s_direct", prefix, labels[i]),
                double(cells[i][0]));
        out.set(strfmt("%s_%s_reverse", prefix, labels[i]),
                double(cells[i][1]));
    }
}

} // namespace

void
exportReport(const SimReport &rep, StatSet &out)
{
    rep.core.exportTo(out);

    // Substrate statistics the figure benches never printed.
    out.set("halted", rep.halted ? 1.0 : 0.0);
    out.set("l1d_misses", double(rep.l1dMisses));
    out.set("l1i_misses", double(rep.l1iMisses));
    out.set("l2_misses", double(rep.l2Misses));
    out.set("dtlb_misses", double(rep.dtlbMisses));
    out.set("itlb_misses", double(rep.itlbMisses));

    // Figure 5 breakdowns.
    out.set("retired_sp_loads", double(rep.core.retiredSpLoads));
    static const char *const typeLabels[5] = {"load_sp", "load", "alu",
                                              "branch", "fp"};
    exportBreakdown(out, "integ_type", typeLabels, rep.core.integByType);
    static const char *const distLabels[6] = {"le4",   "le16",   "le64",
                                              "le256", "le1024", "gt1024"};
    exportBreakdown(out, "integ_dist", distLabels, rep.core.integByDistance);
    static const char *const statusLabels[4] = {"rename", "issue", "retire",
                                                "shadow"};
    exportBreakdown(out, "integ_status", statusLabels,
                    rep.core.integByStatus);
    static const char *const refLabels[4] = {"eq1", "le3", "le7", "le15"};
    exportBreakdown(out, "integ_refcount", refLabels,
                    rep.core.integByRefcount);

    // Host-phase profile, only when armed: default reports (and the
    // compare gate's describeDiff) stay byte-for-byte unchanged.
    if (hostProfiler().enabled())
        hostProfiler().exportTo(out);
}

void
requireNoDivergence(const Core &core, const std::string &what)
{
    if (const DivergenceReport *d = core.divergence())
        rix_fatal("%s: %s", what.c_str(), d->format().c_str());
}

SimReport
collectReport(Core &core, const std::string &workload)
{
    SimReport rep;
    rep.workload = workload;
    rep.core = core.stats();
    rep.halted = core.halted();
    rep.l1dMisses = core.memHierarchy().l1d().misses();
    rep.l1iMisses = core.memHierarchy().l1i().misses();
    rep.l2Misses = core.memHierarchy().l2().misses();
    rep.dtlbMisses = core.memHierarchy().dtlb().misses();
    rep.itlbMisses = core.memHierarchy().itlb().misses();
    return rep;
}

SimReport
deltaReport(const SimReport &fin, const SimReport &base)
{
    SimReport d = fin;
    CoreStats::subtract(d.core, base.core);
    d.l1dMisses -= base.l1dMisses;
    d.l1iMisses -= base.l1iMisses;
    d.l2Misses -= base.l2Misses;
    d.dtlbMisses -= base.dtlbMisses;
    d.itlbMisses -= base.itlbMisses;
    return d;
}

void
accumulateReport(SimReport &into, const SimReport &part)
{
    if (into.workload.empty())
        into.workload = part.workload;
    else if (into.workload != part.workload)
        rix_panic("accumulateReport: mixing workloads '%s' and '%s'",
                  into.workload.c_str(), part.workload.c_str());
    CoreStats::accumulate(into.core, part.core);
    into.halted = into.halted || part.halted;
    into.l1dMisses += part.l1dMisses;
    into.l1iMisses += part.l1iMisses;
    into.l2Misses += part.l2Misses;
    into.dtlbMisses += part.dtlbMisses;
    into.itlbMisses += part.itlbMisses;
}

SimReport
runSimulation(const Program &prog, const CoreParams &params,
              u64 max_retired, Cycle max_cycles)
{
    requireValidCoreParams(params, "runSimulation(" + prog.name + ")");
    Core core(prog, params);
    core.run(max_retired, max_cycles);
    requireNoDivergence(core, prog.name);
    return collectReport(core, prog.name);
}

std::string
verifyAgainstEmulator(const Program &prog, const CoreParams &params,
                      u64 max_insts, Cycle max_cycles)
{
    Core core(prog, params);
    core.run(max_insts, max_cycles);
    if (const DivergenceReport *d = core.divergence())
        return d->format();
    if (!core.halted())
        return strfmt("core did not halt within %llu insts / %llu cycles "
                      "(retired %llu)",
                      (unsigned long long)max_insts,
                      (unsigned long long)max_cycles,
                      (unsigned long long)core.stats().retired);

    Emulator emu(prog);
    emu.run(max_insts + 1);
    if (emu.faulted())
        return emu.fault().describe();
    if (!emu.halted())
        return "emulator did not halt";

    if (core.stats().retired != emu.instsExecuted())
        return strfmt("retired count mismatch: core %llu vs emu %llu",
                      (unsigned long long)core.stats().retired,
                      (unsigned long long)emu.instsExecuted());

    for (unsigned r = 0; r < numLogRegs; ++r) {
        if (core.golden().reg(LogReg(r)) != emu.reg(LogReg(r)))
            return strfmt("register r%u mismatch: core %llu vs emu %llu",
                          r,
                          (unsigned long long)core.golden().reg(LogReg(r)),
                          (unsigned long long)emu.reg(LogReg(r)));
    }

    if (core.golden().output() != emu.output())
        return "program output mismatch";

    if (!core.golden().memory().contentEquals(emu.memory()))
        return "final memory image mismatch";

    return "";
}

} // namespace rix
