#include "sim/validate.hh"

#include <cstdarg>
#include <cstdio>
#include <vector>

#include "base/bitutil.hh"
#include "base/log.hh"
#include "isa/regs.hh"

namespace rix
{

namespace
{

class Checker
{
  public:
    void
    require(bool ok, const char *field, const char *fmt, ...)
        __attribute__((format(printf, 4, 5)))
    {
        if (ok)
            return;
        va_list ap;
        va_start(ap, fmt);
        char buf[256];
        vsnprintf(buf, sizeof(buf), fmt, ap);
        va_end(ap);
        problems.push_back(std::string(field) + ": " + buf);
    }

    /** entries must be a nonzero power of two, and after clamping
     *  assoc to entries the set count must be a power of two. */
    void
    setAssocGeometry(const char *field_entries, const char *field_assoc,
                     u64 entries, u64 assoc)
    {
        require(entries > 0 && isPow2(entries), field_entries,
                "must be a nonzero power of two (got %llu)",
                (unsigned long long)entries);
        require(assoc > 0, field_assoc, "must be >= 1 (got %llu)",
                (unsigned long long)assoc);
        if (entries > 0 && isPow2(entries) && assoc > 0) {
            const u64 a = assoc >= entries ? entries : assoc;
            require(isPow2(entries / a), field_assoc,
                    "%llu entries / %llu ways leaves a non-power-of-two "
                    "set count",
                    (unsigned long long)entries, (unsigned long long)a);
        }
    }

    std::string
    result() const
    {
        std::string out;
        for (size_t i = 0; i < problems.size(); ++i)
            out += (i ? "\n" : "") + problems[i];
        return out;
    }

  private:
    std::vector<std::string> problems;
};

void
checkCache(Checker &c, const char *name, const CacheParams &p)
{
    const std::string f = std::string("mem.") + name;
    c.require(p.lineBytes > 0 && isPow2(p.lineBytes),
              (f + ".line_bytes").c_str(),
              "must be a nonzero power of two (got %u)", p.lineBytes);
    c.require(p.sizeBytes > 0 && isPow2(p.sizeBytes),
              (f + ".size_bytes").c_str(),
              "must be a nonzero power of two (got %u)", p.sizeBytes);
    c.require(p.assoc > 0, (f + ".assoc").c_str(), "must be >= 1 (got %u)",
              p.assoc);
    if (p.lineBytes > 0 && p.sizeBytes > 0 && p.assoc > 0) {
        const u64 sets = u64(p.sizeBytes) / (u64(p.lineBytes) * p.assoc);
        c.require(sets > 0 && isPow2(sets), (f + ".assoc").c_str(),
                  "%u bytes / (%u-byte lines x %u ways) leaves %llu sets; "
                  "need a nonzero power of two", p.sizeBytes, p.lineBytes,
                  p.assoc, (unsigned long long)sets);
    }
    c.require(p.numMshrs > 0, (f + ".mshrs").c_str(),
              "must be >= 1 (got %u)", p.numMshrs);
}

void
checkTlb(Checker &c, const char *name, const TlbParams &p)
{
    const std::string f = std::string("mem.") + name;
    c.require(p.entries > 0, (f + ".entries").c_str(),
              "must be >= 1 (got %u)", p.entries);
    c.require(p.assoc > 0, (f + ".assoc").c_str(), "must be >= 1 (got %u)",
              p.assoc);
    if (p.entries > 0 && p.assoc > 0) {
        const unsigned a = p.assoc >= p.entries ? p.entries : p.assoc;
        c.require(isPow2(p.entries / a), (f + ".assoc").c_str(),
                  "%u entries / %u ways leaves a non-power-of-two set "
                  "count", p.entries, a);
    }
    c.require(p.pageBytes > 0 && isPow2(p.pageBytes),
              (f + ".page_bytes").c_str(),
              "must be a nonzero power of two (got %u)", p.pageBytes);
}

} // namespace

std::string
validateCoreParams(const CoreParams &p)
{
    Checker c;

    // Pipeline widths and windows: a zero here does not crash
    // construction, it deadlocks the pipeline until the watchdog
    // panics, which is a far worse diagnostic.
    c.require(p.fetchWidth > 0, "fetch_width", "must be >= 1");
    c.require(p.renameWidth > 0, "rename_width", "must be >= 1");
    c.require(p.issueWidth > 0, "issue_width", "must be >= 1");
    c.require(p.retireWidth > 0, "retire_width", "must be >= 1");
    c.require(p.robSize > 0, "rob_size", "must be >= 1");
    c.require(p.rsSize > 0, "rs_size", "must be >= 1");
    c.require(p.fetchQueueSize > 0, "fetch_queue_size", "must be >= 1");
    c.require(p.maxMemOps > 0, "max_mem_ops", "must be >= 1");
    c.require(p.writeBufferEntries > 0, "write_buffer_entries",
              "must be >= 1");
    c.require(p.watchdogCycles > 0, "watchdog_cycles", "must be >= 1");

    // Issue ports: every instruction class must be able to issue.
    c.require(p.simpleIntSlots + p.complexSlots > 0, "simple_int_slots",
              "simple_int_slots + complex_slots must be >= 1");
    c.require(p.loadSlots > 0, "load_slots", "must be >= 1 (got %u)",
              p.loadSlots);
    if (!p.sharedLoadStorePort)
        c.require(p.storeSlots > 0, "store_slots",
                  "must be >= 1 unless shared_load_store_port is set");

    // Load-speculation collision history table: PC & (size-1) indexed.
    c.require(p.chtEntries > 0 && isPow2(p.chtEntries), "cht_entries",
              "must be a nonzero power of two (got %u)", p.chtEntries);

    // Branch prediction substrates.
    c.setAssocGeometry("bpred.btb_entries", "bpred.btb_assoc",
                       p.bpred.btbEntries, p.bpred.btbAssoc);
    c.require(p.bpred.rasEntries > 0, "bpred.ras_entries",
              "must be >= 1 (got %u)", p.bpred.rasEntries);
    c.require(p.bpred.hybrid.bimodalEntries > 0 &&
                  isPow2(p.bpred.hybrid.bimodalEntries),
              "bpred.bimodal_entries",
              "must be a nonzero power of two (got %u)",
              p.bpred.hybrid.bimodalEntries);
    c.require(p.bpred.hybrid.gshareEntries > 0 &&
                  isPow2(p.bpred.hybrid.gshareEntries),
              "bpred.gshare_entries",
              "must be a nonzero power of two (got %u)",
              p.bpred.hybrid.gshareEntries);
    c.require(p.bpred.hybrid.chooserEntries > 0 &&
                  isPow2(p.bpred.hybrid.chooserEntries),
              "bpred.chooser_entries",
              "must be a nonzero power of two (got %u)",
              p.bpred.hybrid.chooserEntries);
    c.require(p.bpred.hybrid.historyBits >= 1 &&
                  p.bpred.hybrid.historyBits <= 32,
              "bpred.history_bits", "must be in [1, 32] (got %u)",
              p.bpred.hybrid.historyBits);

    // Memory hierarchy.
    checkCache(c, "l1i", p.mem.l1i);
    checkCache(c, "l1d", p.mem.l1d);
    checkCache(c, "l2", p.mem.l2);
    checkTlb(c, "itlb", p.mem.itlb);
    checkTlb(c, "dtlb", p.mem.dtlb);
    c.require(p.mem.l2BusBytes > 0, "mem.l2_bus_bytes", "must be >= 1");
    c.require(p.mem.memBusBytes > 0, "mem.mem_bus_bytes", "must be >= 1");

    // Integration machinery: the IT, LISP and register state vector
    // are constructed for every mode (Off included), so their geometry
    // must always be sound.
    c.setAssocGeometry("integ.it_entries", "integ.it_assoc",
                       p.integ.itEntries, p.integ.itAssoc);
    c.setAssocGeometry("integ.lisp_entries", "integ.lisp_assoc",
                       p.integ.lispEntries, p.integ.lispAssoc);
    c.require(p.integ.refBits >= 1 && p.integ.refBits <= 8,
              "integ.ref_bits", "must be in [1, 8] (got %u)",
              p.integ.refBits);
    c.require(p.integ.genBits >= 1 && p.integ.genBits <= 8,
              "integ.gen_bits",
              "must be in [1, 8] (got %u); generations are stored in "
              "8-bit lanes", p.integ.genBits);
    // Rename needs a free register per in-flight instruction on top of
    // the committed map (and the pinned zero register); fewer physical
    // registers than that deadlocks rename at full ROB occupancy.
    c.require(p.integ.numPhysRegs >= numLogRegs + p.robSize + 1,
              "integ.num_phys_regs",
              "must be >= num_log_regs + rob_size + 1 = %u (got %u)",
              numLogRegs + p.robSize + 1, p.integ.numPhysRegs);
    c.require(p.integ.numPhysRegs <= 65535, "integ.num_phys_regs",
              "must fit a 16-bit physical register id (got %u)",
              p.integ.numPhysRegs);

    return c.result();
}

void
requireValidCoreParams(const CoreParams &p, const std::string &what)
{
    const std::string problems = validateCoreParams(p);
    if (!problems.empty())
        rix_fatal("%s: invalid configuration:\n%s", what.c_str(),
                  problems.c_str());
}

} // namespace rix
