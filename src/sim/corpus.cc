#include "sim/corpus.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <dirent.h>
#include <sys/stat.h>

#include "base/log.hh"

namespace rix
{

std::string
formatCorpusEntry(const CorpusEntry &e)
{
    const RandProgConfig &c = e.cfg;
    std::string out = "# rix fuzz corpus entry\n";
    out += strfmt("seed=%llu\n", (unsigned long long)e.seed);
    out += strfmt("body_ops_min=%u\n", c.bodyOpsMin);
    out += strfmt("body_ops_max=%u\n", c.bodyOpsMax);
    out += strfmt("iters_min=%u\n", c.itersMin);
    out += strfmt("iters_max=%u\n", c.itersMax);
    out += strfmt("branch_weight=%u\n", c.branchWeight);
    out += strfmt("mem_weight=%u\n", c.memWeight);
    out += strfmt("call_depth=%u\n", c.callDepth);
    out += strfmt("mem_footprint=%u\n", c.memFootprint);
    out += strfmt("data_quads=%u\n", c.dataQuads);
    out += strfmt("alu_op_bias=%u\n", c.aluOpBias);
    out += strfmt("splice_seed=%llu\n", (unsigned long long)c.spliceSeed);
    out += "mutator=" + e.mutator + "\n";
    out += "coverage=" + e.map.toHex() + "\n";
    return out;
}

namespace
{

bool
parseU64(const std::string &v, u64 *out)
{
    if (v.empty() || v.size() > 20)
        return false;
    u64 acc = 0;
    for (char c : v) {
        if (c < '0' || c > '9')
            return false;
        const u64 next = acc * 10 + u64(c - '0');
        if (next < acc)
            return false;
        acc = next;
    }
    *out = acc;
    return true;
}

bool
parseU32Field(const std::string &v, unsigned *out)
{
    u64 wide;
    if (!parseU64(v, &wide) || wide > ~0u)
        return false;
    *out = unsigned(wide);
    return true;
}

} // namespace

bool
parseCorpusEntry(const std::string &text, CorpusEntry *out)
{
    CorpusEntry e;
    bool sawSeed = false, sawCoverage = false;
    size_t pos = 0;
    while (pos < text.size()) {
        size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        const std::string line = text.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.empty() || line[0] == '#')
            continue;
        const size_t eq = line.find('=');
        if (eq == std::string::npos)
            return false;
        const std::string key = line.substr(0, eq);
        const std::string val = line.substr(eq + 1);

        bool ok = true;
        if (key == "seed") {
            ok = parseU64(val, &e.seed);
            sawSeed = ok;
        } else if (key == "body_ops_min") {
            ok = parseU32Field(val, &e.cfg.bodyOpsMin);
        } else if (key == "body_ops_max") {
            ok = parseU32Field(val, &e.cfg.bodyOpsMax);
        } else if (key == "iters_min") {
            ok = parseU32Field(val, &e.cfg.itersMin);
        } else if (key == "iters_max") {
            ok = parseU32Field(val, &e.cfg.itersMax);
        } else if (key == "branch_weight") {
            ok = parseU32Field(val, &e.cfg.branchWeight);
        } else if (key == "mem_weight") {
            ok = parseU32Field(val, &e.cfg.memWeight);
        } else if (key == "call_depth") {
            ok = parseU32Field(val, &e.cfg.callDepth);
        } else if (key == "mem_footprint") {
            ok = parseU32Field(val, &e.cfg.memFootprint);
        } else if (key == "data_quads") {
            ok = parseU32Field(val, &e.cfg.dataQuads);
        } else if (key == "alu_op_bias") {
            ok = parseU32Field(val, &e.cfg.aluOpBias);
        } else if (key == "splice_seed") {
            ok = parseU64(val, &e.cfg.spliceSeed);
        } else if (key == "mutator") {
            e.mutator = val;
        } else if (key == "coverage") {
            ok = e.map.fromHex(val);
            sawCoverage = ok;
        }
        // Unknown keys: forward compatibility, ignore.
        if (!ok)
            return false;
    }
    if (!sawSeed || !sawCoverage)
        return false;
    if (!validateRandProgConfig(e.cfg).empty())
        return false;
    *out = std::move(e);
    return true;
}

bool
Corpus::admit(CorpusEntry e)
{
    if (!e.map.orInto(union_))
        return false;
    entries_.push_back(std::move(e));
    return true;
}

size_t
Corpus::loadDir(const std::string &dir)
{
    DIR *d = opendir(dir.c_str());
    if (!d) {
        if (errno == ENOENT)
            return 0;
        rix_fatal("rix fuzz: cannot open corpus directory '%s': %s",
                  dir.c_str(), strerror(errno));
    }
    std::vector<std::string> names;
    while (const dirent *ent = readdir(d)) {
        const std::string name = ent->d_name;
        const std::string suffix = ".rixseed";
        if (name.size() > suffix.size() &&
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) == 0)
            names.push_back(name);
    }
    closedir(d);
    // Journal order == sorted order (files are named by position), so
    // a reload replays admissions exactly as the writer made them.
    std::sort(names.begin(), names.end());

    size_t kept = 0;
    for (const std::string &name : names) {
        const std::string path = dir + "/" + name;
        FILE *f = fopen(path.c_str(), "r");
        if (!f)
            rix_fatal("rix fuzz: cannot read corpus entry '%s': %s",
                      path.c_str(), strerror(errno));
        std::string text;
        char buf[4096];
        size_t n;
        while ((n = fread(buf, 1, sizeof(buf), f)) > 0)
            text.append(buf, n);
        fclose(f);

        CorpusEntry e;
        if (!parseCorpusEntry(text, &e))
            rix_fatal("rix fuzz: malformed corpus entry '%s'",
                      path.c_str());
        kept += admit(std::move(e)) ? 1 : 0;
    }
    saved_ = entries_.size();
    return kept;
}

size_t
Corpus::saveNew(const std::string &dir)
{
    if (saved_ >= entries_.size())
        return 0;
    if (mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST)
        rix_fatal("rix fuzz: cannot create corpus directory '%s': %s",
                  dir.c_str(), strerror(errno));

    size_t written = 0;
    for (; saved_ < entries_.size(); ++saved_) {
        const CorpusEntry &e = entries_[saved_];
        const std::string path =
            dir + strfmt("/%06zu-%016llx.rixseed", saved_,
                         (unsigned long long)e.seed);
        FILE *f = fopen(path.c_str(), "w");
        if (!f)
            rix_fatal("rix fuzz: cannot write corpus entry '%s': %s",
                      path.c_str(), strerror(errno));
        const std::string text = formatCorpusEntry(e);
        if (fwrite(text.data(), 1, text.size(), f) != text.size()) {
            fclose(f);
            rix_fatal("rix fuzz: short write to corpus entry '%s'",
                      path.c_str());
        }
        fclose(f);
        ++written;
    }
    return written;
}

} // namespace rix
