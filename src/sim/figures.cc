#include "sim/figures.hh"

#include <array>
#include <map>
#include <vector>

#include "base/log.hh"
#include "base/stats.hh"
#include "cpu/core_stats.hh"

namespace rix
{

namespace
{

/** Config index by label; fatal naming the missing label. */
size_t
needConfig(const ScenarioSpec &spec, const std::string &label)
{
    const int i = spec.configIndex(label);
    if (i < 0)
        rix_fatal("render=%s requires a config labeled '%s' (scenario "
                  "'%s' does not define it)",
                  spec.render.c_str(), label.c_str(), spec.name.c_str());
    return size_t(i);
}

} // namespace

// speedupPct / gmeanSpeedupPct come from base/stats (shared with the
// hand-written benches via bench/common.hh — one copy of the math).

void
printTableHeader(FILE *out, const char *title)
{
    fprintf(out, "\n==== %s ====\n", title);
}

void
printTableRowLabel(FILE *out, const std::string &name)
{
    fprintf(out, "%-8s", name.c_str());
}

// ---- Figure 4 -------------------------------------------------------
// Required config labels: "base", and "<mode>/<real|orac>" for mode in
// squash, general, opcode, reverse.

void
renderFig4(const ScenarioSpec &spec, const ScenarioResults &res, FILE *out)
{
    const std::vector<std::string> &benches = spec.workloads;
    const IntegrationMode modes[4] = {
        IntegrationMode::Squash, IntegrationMode::General,
        IntegrationMode::OpcodeIndexed, IntegrationMode::Reverse};
    const char *const modeKeys[4] = {"squash", "general", "opcode",
                                     "reverse"};

    const size_t baseCfg = needConfig(spec, "base");
    size_t cellCfg[4][2];
    for (int m = 0; m < 4; ++m)
        for (int l = 0; l < 2; ++l)
            cellCfg[m][l] = needConfig(
                spec, std::string(modeKeys[m]) + (l ? "/orac" : "/real"));

    struct Cell
    {
        double speedup[2]; // [realistic, oracle]
        double rateDirect;
        double rateReverse;
        double misintPerM;
    };

    std::map<std::string, SimReport> base;
    std::map<std::string, std::array<Cell, 4>> cells;
    std::map<std::string, SimReport> reverseReal;
    for (size_t w = 0; w < benches.size(); ++w) {
        const std::string &bm = benches[w];
        base[bm] = res.report(w, baseCfg);
        for (int m = 0; m < 4; ++m) {
            Cell c{};
            for (int l = 0; l < 2; ++l) {
                const SimReport &r = res.report(w, cellCfg[m][l]);
                c.speedup[l] = speedupPct(base[bm].ipc(), r.ipc());
                if (l == 0) {
                    c.rateDirect = 100.0 * r.core.integratedDirect /
                                   double(r.core.retired);
                    c.rateReverse = 100.0 * r.core.integratedReverse /
                                    double(r.core.retired);
                    c.misintPerM = r.core.misintPerMillion();
                    if (modes[m] == IntegrationMode::Reverse)
                        reverseReal[bm] = r;
                }
            }
            cells[bm][m] = c;
        }
    }

    printTableHeader(out, "Figure 4 (top): speedup % vs no-integration baseline");
    fprintf(out, "%-8s |", "bench");
    for (int m = 0; m < 4; ++m)
        fprintf(out, " %9s(real/orac) |", integrationModeName(modes[m]));
    fprintf(out, "\n");
    std::vector<double> gm[4][2];
    for (const auto &bm : benches) {
        printTableRowLabel(out, bm);
        fprintf(out, " |");
        for (int m = 0; m < 4; ++m) {
            const Cell &c = cells[bm][m];
            fprintf(out, "     %6.2f /%6.2f    |", c.speedup[0],
                    c.speedup[1]);
            gm[m][0].push_back(c.speedup[0]);
            gm[m][1].push_back(c.speedup[1]);
        }
        fprintf(out, "\n");
    }
    printTableRowLabel(out, "GMean");
    fprintf(out, " |");
    for (int m = 0; m < 4; ++m)
        fprintf(out, "     %6.2f /%6.2f    |", gmeanSpeedupPct(gm[m][0]),
                gmeanSpeedupPct(gm[m][1]));
    fprintf(out, "\n");

    printTableHeader(out, "Figure 4 (bottom): integration rate % "
                     "(direct+reverse) and mis-integrations per 1M retired");
    fprintf(out, "%-8s |", "bench");
    for (int m = 0; m < 4; ++m)
        fprintf(out, " %8s d+r (mi/M) |", integrationModeName(modes[m]));
    fprintf(out, "\n");
    double am[4][3] = {};
    for (const auto &bm : benches) {
        printTableRowLabel(out, bm);
        fprintf(out, " |");
        for (int m = 0; m < 4; ++m) {
            const Cell &c = cells[bm][m];
            fprintf(out, " %5.1f+%4.1f (%6.0f) |", c.rateDirect,
                    c.rateReverse, c.misintPerM);
            am[m][0] += c.rateDirect;
            am[m][1] += c.rateReverse;
            am[m][2] += c.misintPerM;
        }
        fprintf(out, "\n");
    }
    printTableRowLabel(out, "AMean");
    fprintf(out, " |");
    for (int m = 0; m < 4; ++m)
        fprintf(out, " %5.1f+%4.1f (%6.0f) |", am[m][0] / benches.size(),
                am[m][1] / benches.size(), am[m][2] / benches.size());
    fprintf(out, "\n");

    printTableHeader(out, "Section 3.2 diagnostics (base vs +reverse, realistic)");
    fprintf(out, "%-8s %14s %14s %14s %14s\n", "bench", "resolve(base)",
            "resolve(+rev)", "fetched-delta%", "rate%");
    double rl0 = 0, rl1 = 0, fd = 0;
    for (const auto &bm : benches) {
        const SimReport &b = base[bm];
        const SimReport &r = reverseReal[bm];
        const double fdelta =
            100.0 * (double(r.core.fetched) - double(b.core.fetched)) /
            double(b.core.fetched);
        fprintf(out, "%-8s %14.1f %14.1f %14.2f %14.1f\n", bm.c_str(),
                b.core.avgMispredResolveLat(),
                r.core.avgMispredResolveLat(), fdelta,
                100.0 * r.core.integrationRate());
        rl0 += b.core.avgMispredResolveLat();
        rl1 += r.core.avgMispredResolveLat();
        fd += fdelta;
    }
    fprintf(out, "%-8s %14.1f %14.1f %14.2f\n", "AMean",
            rl0 / benches.size(), rl1 / benches.size(),
            fd / benches.size());

    fprintf(out,
            "\nPaper reference: integration rate 2%% -> 10%% -> 12.3%% -> "
            "17%% across the four configurations; mean speedup 8%% "
            "(+reverse, realistic), 9%% oracle; mispredict resolution "
            "26 -> 23.5 cycles; fetched instructions -0.6%%.\n");
}

// ---- Figure 5 -------------------------------------------------------
// Required config label: "reverse" (the baseline +reverse machine).

namespace
{

template <size_t Rows>
void
printBreakdown(FILE *out, const char *title,
               const std::vector<std::string> &benches,
               const std::map<std::string, SimReport> &reports,
               const std::vector<const char *> &labels,
               u64 (CoreStats::*field)[Rows][2])
{
    const size_t rows = Rows;
    printTableHeader(out, title);
    fprintf(out, "%-11s", "");
    for (const auto &bm : benches)
        fprintf(out, " %11s", bm.c_str());
    fprintf(out, "\n%-11s", "rate%");
    for (const auto &bm : benches)
        fprintf(out, " %11.1f",
                100.0 * reports.at(bm).core.integrationRate());
    fprintf(out, "\n");
    for (size_t i = 0; i < rows; ++i) {
        fprintf(out, "%-11s", labels[i]);
        for (const auto &bm : benches) {
            const CoreStats &s = reports.at(bm).core;
            const double total = double(s.integrated());
            const u64 *cat = (s.*field)[i];
            const double d = total ? 100.0 * cat[0] / total : 0.0;
            const double r = total ? 100.0 * cat[1] / total : 0.0;
            fprintf(out, " %5.1f/%5.1f", d, r);
        }
        fprintf(out, "\n");
    }
}

} // namespace

void
renderFig5(const ScenarioSpec &spec, const ScenarioResults &res, FILE *out)
{
    const std::vector<std::string> &benches = spec.workloads;
    const size_t cfg = needConfig(spec, "reverse");

    std::map<std::string, SimReport> reports;
    for (size_t w = 0; w < benches.size(); ++w)
        reports[benches[w]] = res.report(w, cfg);

    fprintf(out,
            "All cells: percent of the benchmark's integration stream,\n"
            "direct/reverse (the paper's solid/striped split).\n");

    printBreakdown(out, "Figure 5 Type (load-sp / load / ALU / branch / FP)",
                   benches, reports,
                   {"load-sp", "load", "ALU", "branch", "FP"},
                   &CoreStats::integByType);

    printBreakdown(out, "Figure 5 Distance (renamed insts creator->user)",
                   benches, reports,
                   {"<=4", "<=16", "<=64", "<=256", "<=1024", ">1024"},
                   &CoreStats::integByDistance);

    printBreakdown(out, "Figure 5 Status at integration", benches, reports,
                   {"rename", "issue", "retire", "shadow/sq"},
                   &CoreStats::integByStatus);

    printBreakdown(out, "Figure 5 Refcount after integration", benches,
                   reports, {"==1", "<=3", "<=7", "<=15"},
                   &CoreStats::integByRefcount);

    // Per-type integration coverage (paper: loads integrate at 27%,
    // stack loads at 60%).
    printTableHeader(out, "Type coverage: integrated / retired within class");
    fprintf(out, "%-11s %10s %10s\n", "bench", "loads%", "sp-loads%");
    for (const auto &bm : benches) {
        const CoreStats &s = reports.at(bm).core;
        const u64 ld = s.integByType[0][0] + s.integByType[0][1] +
                       s.integByType[1][0] + s.integByType[1][1];
        const u64 sp = s.integByType[0][0] + s.integByType[0][1];
        fprintf(out, "%-11s %10.1f %10.1f\n", bm.c_str(),
                s.retiredLoads ? 100.0 * ld / s.retiredLoads : 0.0,
                s.retiredSpLoads ? 100.0 * sp / s.retiredSpLoads : 0.0);
    }

    fprintf(out,
            "\nPaper reference: fewer than 10%% of integrations within 4\n"
            "instructions and fewer than 20%% within 16 (integration is\n"
            "pipelinable); ~60%% of integrations find the result still\n"
            "actively mapped (refcount >= 1 before increment); most\n"
            "reverse integrations happen after the creator retired.\n");
}

// ---- Figure 6 -------------------------------------------------------
// Required config labels: "base"; "a{1,2,4,full}/{real,orac}" for the
// associativity sweep; "s{64,256,1024,4096,4096g8}/{real,orac}" for the
// size sweep. Geometry shown in row labels is read back from the
// spec's params, so the JSON stays the source of truth.

void
renderFig6(const ScenarioSpec &spec, const ScenarioResults &res, FILE *out)
{
    const std::vector<std::string> &benches = spec.workloads;

    const char *const assocKeys[4] = {"a1", "a2", "a4", "afull"};
    const char *const sizeKeys[5] = {"s64", "s256", "s1024", "s4096",
                                     "s4096g8"};

    const size_t baseCfg = needConfig(spec, "base");
    size_t assocCfg[4][2], sizeCfg[5][2];
    for (int a = 0; a < 4; ++a)
        for (int l = 0; l < 2; ++l)
            assocCfg[a][l] = needConfig(
                spec, std::string(assocKeys[a]) + (l ? "/orac" : "/real"));
    for (int s = 0; s < 5; ++s)
        for (int l = 0; l < 2; ++l)
            sizeCfg[s][l] = needConfig(
                spec, std::string(sizeKeys[s]) + (l ? "/orac" : "/real"));

    std::map<std::string, double> baseIpc;
    for (size_t w = 0; w < benches.size(); ++w)
        baseIpc[benches[w]] = res.report(w, baseCfg).ipc();

    printTableHeader(out, "Figure 6 (left): IT associativity, speedup % "
                     "(realistic/oracle)");
    fprintf(out, "%-10s", "assoc");
    for (const auto &bm : benches)
        fprintf(out, " %13s", bm.c_str());
    fprintf(out, " %13s\n", "GMean");
    for (int a = 0; a < 4; ++a) {
        const unsigned aw =
            spec.configs[assocCfg[a][0]].params.integ.itAssoc;
        fprintf(out, "%-10s",
                aw >= 1024 ? "full" : strfmt("%u-way", aw).c_str());
        std::vector<double> gp[2];
        for (size_t w = 0; w < benches.size(); ++w) {
            const std::string &bm = benches[w];
            double sp[2];
            for (int l = 0; l < 2; ++l) {
                sp[l] = speedupPct(baseIpc[bm],
                                   res.report(w, assocCfg[a][l]).ipc());
                gp[l].push_back(sp[l]);
            }
            fprintf(out, " %6.2f/%6.2f", sp[0], sp[1]);
        }
        fprintf(out, " %6.2f/%6.2f\n", gmeanSpeedupPct(gp[0]),
                gmeanSpeedupPct(gp[1]));
    }

    printTableHeader(out, "Figure 6 (right): IT size (fully assoc), speedup % "
                     "(realistic/oracle)");
    fprintf(out, "%-10s", "entries");
    for (const auto &bm : benches)
        fprintf(out, " %13s", bm.c_str());
    fprintf(out, " %13s\n", "GMean");
    for (int s = 0; s < 5; ++s) {
        const IntegrationParams &ip =
            spec.configs[sizeCfg[s][0]].params.integ;
        fprintf(out, "%-10s",
                ip.genBits == 4
                    ? strfmt("%u", ip.itEntries).c_str()
                    : strfmt("%u/g%u", ip.itEntries, ip.genBits).c_str());
        std::vector<double> gp[2];
        for (size_t w = 0; w < benches.size(); ++w) {
            const std::string &bm = benches[w];
            double sp[2];
            for (int l = 0; l < 2; ++l) {
                sp[l] = speedupPct(baseIpc[bm],
                                   res.report(w, sizeCfg[s][l]).ipc());
                gp[l].push_back(sp[l]);
            }
            fprintf(out, " %6.2f/%6.2f", sp[0], sp[1]);
        }
        fprintf(out, " %6.2f/%6.2f\n", gmeanSpeedupPct(gp[0]),
                gmeanSpeedupPct(gp[1]));
    }

    fprintf(out,
            "\nPaper reference: speedup only drops to 7%% (2-way) and 6%%\n"
            "(direct-mapped) from 8%% (4-way), and rises to just 10%% at\n"
            "full associativity -- mis-integrations dampen associativity;\n"
            "reverse integration is insensitive to associativity because\n"
            "stack-frame offsets give a natural conflict-free indexing.\n");
}

// ---- Figure 7 -------------------------------------------------------
// Required config labels: "base", and "<cfg>/<noint|real|orac>" for cfg
// in base, RS, IW, IW+RS.

void
renderFig7(const ScenarioSpec &spec, const ScenarioResults &res, FILE *out)
{
    const std::vector<std::string> &benches = spec.workloads;
    const char *const cfgNames[4] = {"base", "RS", "IW", "IW+RS"};
    const char *const lispNames[3] = {"noint", "real", "orac"};

    const size_t baseCfg = needConfig(spec, "base");
    size_t cfgIdx[4][3];
    for (int c = 0; c < 4; ++c)
        for (int l = 0; l < 3; ++l)
            cfgIdx[c][l] = needConfig(spec, std::string(cfgNames[c]) + "/" +
                                                lispNames[l]);

    std::map<std::string, SimReport> baseNoInt;
    for (size_t w = 0; w < benches.size(); ++w)
        baseNoInt[benches[w]] = res.report(w, baseCfg);

    printTableHeader(out, "Figure 7: speedup % vs base/no-integration "
                     "(noint | +reverse realistic | oracle)");
    fprintf(out, "%-8s baseIPC", "bench");
    for (const char *c : cfgNames)
        fprintf(out, " | %22s", c);
    fprintf(out, "\n");

    std::vector<double> gm[4][3];
    std::map<std::string, SimReport> baseRev;
    for (size_t w = 0; w < benches.size(); ++w) {
        const std::string &bm = benches[w];
        printTableRowLabel(out, bm);
        fprintf(out, " %7.2f", baseNoInt[bm].ipc());
        for (int c = 0; c < 4; ++c) {
            double sp[3];
            for (int l = 0; l < 3; ++l) {
                const SimReport &r = res.report(w, cfgIdx[c][l]);
                sp[l] = speedupPct(baseNoInt[bm].ipc(), r.ipc());
                gm[c][l].push_back(sp[l]);
                if (c == 0 && l == 1)
                    baseRev[bm] = r;
            }
            fprintf(out, " | %6.1f %6.1f %6.1f", sp[0], sp[1], sp[2]);
        }
        fprintf(out, "\n");
    }
    printTableRowLabel(out, "GMean");
    fprintf(out, "        ");
    for (int c = 0; c < 4; ++c)
        fprintf(out, " | %6.1f %6.1f %6.1f", gmeanSpeedupPct(gm[c][0]),
                gmeanSpeedupPct(gm[c][1]), gmeanSpeedupPct(gm[c][2]));
    fprintf(out, "\n");

    printTableHeader(out, "Section 3.5 diagnostics: execution-stream "
                     "compression (base machine, +reverse)");
    fprintf(out, "%-8s %12s %12s %12s %12s\n", "bench", "exec-delta%",
            "loads-delta%", "rsOcc(base)", "rsOcc(+rev)");
    double ed = 0, ld = 0, r0 = 0, r1 = 0;
    for (const auto &bm : benches) {
        const CoreStats &b = baseNoInt[bm].core;
        const CoreStats &r = baseRev[bm].core;
        const double de = 100.0 * (double(r.issued) - double(b.issued)) /
                          double(b.issued);
        const double dl =
            100.0 * (double(r.issuedLoads) - double(b.issuedLoads)) /
            double(b.issuedLoads);
        fprintf(out, "%-8s %12.1f %12.1f %12.1f %12.1f\n", bm.c_str(), de,
                dl, b.avgRsOccupancy(), r.avgRsOccupancy());
        ed += de;
        ld += dl;
        r0 += b.avgRsOccupancy();
        r1 += r.avgRsOccupancy();
    }
    fprintf(out, "%-8s %12.1f %12.1f %12.1f %12.1f\n", "AMean",
            ed / benches.size(), ld / benches.size(), r0 / benches.size(),
            r1 / benches.size());

    fprintf(out,
            "\nPaper reference: IW costs 12%% (eon hit hardest, -21%%),\n"
            "integration recovers to within 2%% of base; RS costs 10%%,\n"
            "integration recovers to within 1%%; IW+RS costs 18%%,\n"
            "integration recovers to within 7%%. Executed instructions\n"
            "-17%%, executed loads -27%%, RS occupancy 31 -> 27.\n");
}

} // namespace rix
