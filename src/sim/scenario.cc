#include "sim/scenario.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "base/env.hh"
#include "base/log.hh"
#include "base/thread_pool.hh"
#include "sim/figures.hh"
#include "sim/sampling/checkpoint_cache.hh"
#include "sim/validate.hh"
#include "store/result_store.hh"
#include "trace/profiler.hh"
#include "workload/workload.hh"

namespace rix
{

namespace
{

// ---- value coercion -------------------------------------------------

/** Store a non-negative integral JSON number into *out. */
std::string
coerceCount(const JsonValue &v, u64 max, u64 *out)
{
    return jsonCoerceCount(v, max, out);
}

std::string
coerceU32(const JsonValue &v, unsigned *out)
{
    u64 tmp;
    const std::string err = coerceCount(v, ~u32(0), &tmp);
    if (err.empty())
        *out = unsigned(tmp);
    return err;
}

std::string
coerceBool(const JsonValue &v, bool *out)
{
    if (!v.isBool())
        return "expected true or false";
    *out = v.asBool();
    return "";
}

std::string
coerceIntegrationMode(const JsonValue &v, IntegrationMode *out)
{
    if (!v.isString())
        return "expected a mode string";
    const std::string &s = v.asString();
    if (s == "off")
        *out = IntegrationMode::Off;
    else if (s == "squash")
        *out = IntegrationMode::Squash;
    else if (s == "general" || s == "+general")
        *out = IntegrationMode::General;
    else if (s == "opcode" || s == "+opcode")
        *out = IntegrationMode::OpcodeIndexed;
    else if (s == "reverse" || s == "+reverse")
        *out = IntegrationMode::Reverse;
    else
        return "unknown integration mode '" + s +
               "' (off|squash|general|opcode|reverse)";
    return "";
}

std::string
coerceLispMode(const JsonValue &v, LispMode *out)
{
    if (!v.isString())
        return "expected a mode string";
    const std::string &s = v.asString();
    if (s == "off")
        *out = LispMode::Off;
    else if (s == "realistic")
        *out = LispMode::Realistic;
    else if (s == "oracle")
        *out = LispMode::Oracle;
    else
        return "unknown LISP mode '" + s + "' (off|realistic|oracle)";
    return "";
}

// ---- per-substructure key dispatch ----------------------------------

std::string
applyCacheKey(CacheParams &p, const std::string &field, const JsonValue &v)
{
    if (field == "size_bytes")
        return coerceU32(v, &p.sizeBytes);
    if (field == "line_bytes")
        return coerceU32(v, &p.lineBytes);
    if (field == "assoc")
        return coerceU32(v, &p.assoc);
    if (field == "hit_latency")
        return coerceCount(v, ~u64(0), &p.hitLatency);
    if (field == "mshrs")
        return coerceU32(v, &p.numMshrs);
    return "unknown cache field";
}

std::string
applyTlbKey(TlbParams &p, const std::string &field, const JsonValue &v)
{
    if (field == "entries")
        return coerceU32(v, &p.entries);
    if (field == "assoc")
        return coerceU32(v, &p.assoc);
    if (field == "page_bytes")
        return coerceU32(v, &p.pageBytes);
    if (field == "miss_latency")
        return coerceCount(v, ~u64(0), &p.missLatency);
    return "unknown TLB field";
}

std::string
applyIntegKey(IntegrationParams &p, const std::string &field,
              const JsonValue &v)
{
    if (field == "mode")
        return coerceIntegrationMode(v, &p.mode);
    if (field == "it_entries")
        return coerceU32(v, &p.itEntries);
    if (field == "it_assoc")
        return coerceU32(v, &p.itAssoc);
    if (field == "num_phys_regs")
        return coerceU32(v, &p.numPhysRegs);
    if (field == "ref_bits")
        return coerceU32(v, &p.refBits);
    if (field == "gen_bits")
        return coerceU32(v, &p.genBits);
    if (field == "lisp")
        return coerceLispMode(v, &p.lisp);
    if (field == "lisp_entries")
        return coerceU32(v, &p.lispEntries);
    if (field == "lisp_assoc")
        return coerceU32(v, &p.lispAssoc);
    if (field == "use_call_depth_index")
        return coerceBool(v, &p.useCallDepthIndex);
    if (field == "use_gen_counters")
        return coerceBool(v, &p.useGenCounters);
    if (field == "it_write_delay")
        return coerceU32(v, &p.itWriteDelay);
    return "unknown integ field";
}

std::string
applyCheckKey(CheckParams &p, const std::string &field, const JsonValue &v)
{
    if (field == "lockstep")
        return coerceBool(v, &p.lockstep);
    return "unknown check field";
}

std::string
applyBpredKey(BranchPredictorParams &p, const std::string &field,
              const JsonValue &v)
{
    if (field == "btb_entries")
        return coerceU32(v, &p.btbEntries);
    if (field == "btb_assoc")
        return coerceU32(v, &p.btbAssoc);
    if (field == "ras_entries")
        return coerceU32(v, &p.rasEntries);
    if (field == "bimodal_entries")
        return coerceU32(v, &p.hybrid.bimodalEntries);
    if (field == "gshare_entries")
        return coerceU32(v, &p.hybrid.gshareEntries);
    if (field == "chooser_entries")
        return coerceU32(v, &p.hybrid.chooserEntries);
    if (field == "history_bits")
        return coerceU32(v, &p.hybrid.historyBits);
    return "unknown bpred field";
}

std::string
applyMemKey(MemHierarchyParams &p, const std::string &field,
            const JsonValue &v)
{
    const size_t dot = field.find('.');
    if (dot != std::string::npos) {
        const std::string unit = field.substr(0, dot);
        const std::string sub = field.substr(dot + 1);
        if (unit == "l1i")
            return applyCacheKey(p.l1i, sub, v);
        if (unit == "l1d")
            return applyCacheKey(p.l1d, sub, v);
        if (unit == "l2")
            return applyCacheKey(p.l2, sub, v);
        if (unit == "itlb")
            return applyTlbKey(p.itlb, sub, v);
        if (unit == "dtlb")
            return applyTlbKey(p.dtlb, sub, v);
        return "unknown memory unit '" + unit + "'";
    }
    if (field == "mem_latency")
        return coerceCount(v, ~u64(0), &p.memLatency);
    if (field == "l2_bus_bytes")
        return coerceU32(v, &p.l2BusBytes);
    if (field == "l2_bus_cycles_per_beat")
        return coerceU32(v, &p.l2BusCyclesPerBeat);
    if (field == "mem_bus_bytes")
        return coerceU32(v, &p.memBusBytes);
    if (field == "mem_bus_cycles_per_beat")
        return coerceU32(v, &p.memBusCyclesPerBeat);
    return "unknown mem field";
}

/** Render a grid value for use inside a point label. */
std::string
labelValue(const JsonValue &v)
{
    switch (v.kind()) {
      case JsonValue::Kind::Bool:
        return v.asBool() ? "true" : "false";
      case JsonValue::Kind::Number:
        return jsonNumber(v.asNumber());
      case JsonValue::Kind::String:
        return v.asString();
      default:
        return v.dump();
    }
}

/** Apply every member of @p set; fatal with context on a bad key. */
void
applyOverrideSet(CoreParams &p, const JsonValue &set,
                 const std::string &where)
{
    if (!set.isObject())
        rix_fatal("scenario %s: expected an object of parameter "
                  "overrides", where.c_str());
    for (const auto &[key, value] : set.members()) {
        const std::string err = applyCoreParamOverride(p, key, value);
        if (!err.empty())
            rix_fatal("scenario %s: override '%s': %s", where.c_str(),
                      key.c_str(), err.c_str());
    }
}

} // namespace

std::string
applyCoreParamOverride(CoreParams &p, const std::string &key,
                       const JsonValue &v)
{
    const size_t dot = key.find('.');
    if (dot != std::string::npos) {
        const std::string group = key.substr(0, dot);
        const std::string field = key.substr(dot + 1);
        std::string err;
        if (group == "integ")
            err = applyIntegKey(p.integ, field, v);
        else if (group == "bpred")
            err = applyBpredKey(p.bpred, field, v);
        else if (group == "mem")
            err = applyMemKey(p.mem, field, v);
        else if (group == "check")
            err = applyCheckKey(p.check, field, v);
        else
            return "unknown parameter group '" + group + "'";
        return err.empty() ? "" : "'" + key + "': " + err;
    }

    if (key == "fetch_width")
        return coerceU32(v, &p.fetchWidth);
    if (key == "rename_width")
        return coerceU32(v, &p.renameWidth);
    if (key == "issue_width")
        return coerceU32(v, &p.issueWidth);
    if (key == "retire_width")
        return coerceU32(v, &p.retireWidth);
    if (key == "fetch_stages")
        return coerceU32(v, &p.fetchStages);
    if (key == "decode_stages")
        return coerceU32(v, &p.decodeStages);
    if (key == "sched_stages")
        return coerceU32(v, &p.schedStages);
    if (key == "reg_read_stages")
        return coerceU32(v, &p.regReadStages);
    if (key == "rob_size")
        return coerceU32(v, &p.robSize);
    if (key == "max_mem_ops")
        return coerceU32(v, &p.maxMemOps);
    if (key == "rs_size")
        return coerceU32(v, &p.rsSize);
    if (key == "fetch_queue_size")
        return coerceU32(v, &p.fetchQueueSize);
    if (key == "simple_int_slots")
        return coerceU32(v, &p.simpleIntSlots);
    if (key == "complex_slots")
        return coerceU32(v, &p.complexSlots);
    if (key == "load_slots")
        return coerceU32(v, &p.loadSlots);
    if (key == "store_slots")
        return coerceU32(v, &p.storeSlots);
    if (key == "shared_load_store_port")
        return coerceBool(v, &p.sharedLoadStorePort);
    if (key == "agen_latency")
        return coerceU32(v, &p.agenLatency);
    if (key == "store_forward_latency")
        return coerceU32(v, &p.storeForwardLatency);
    if (key == "write_buffer_entries")
        return coerceU32(v, &p.writeBufferEntries);
    if (key == "cht_entries")
        return coerceU32(v, &p.chtEntries);
    if (key == "squash_penalty")
        return coerceU32(v, &p.squashPenalty);
    if (key == "misint_penalty")
        return coerceU32(v, &p.misintPenalty);
    if (key == "watchdog_cycles")
        return coerceCount(v, ~u64(0), &p.watchdogCycles);
    return "unknown parameter '" + key + "'";
}

int
ScenarioSpec::configIndex(const std::string &label) const
{
    for (size_t i = 0; i < configs.size(); ++i)
        if (configs[i].label == label)
            return int(i);
    return -1;
}

std::vector<std::string>
workloadSelectionFromEnv(std::vector<std::string> dflt)
{
    const char *sel = getenv("RIX_BENCH");
    if (!sel)
        return dflt;
    const std::vector<std::string> all = workloadNames();
    std::vector<std::string> out;
    std::string cur;
    for (const char *p = sel;; ++p) {
        if (*p == ',' || *p == '\0') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
            if (*p == '\0')
                break;
        } else {
            cur += *p;
        }
    }
    // A selection that names no valid workload would silently run an
    // empty (or full) set; reject unknown names loudly instead.
    for (const std::string &name : out) {
        if (std::find(all.begin(), all.end(), name) == all.end()) {
            fprintf(stderr,
                    "RIX_BENCH: unknown workload '%s'; valid names:",
                    name.c_str());
            for (const auto &n : all)
                fprintf(stderr, " %s", n.c_str());
            fprintf(stderr, "\n");
            exit(1);
        }
    }
    if (out.empty()) {
        fprintf(stderr,
                "RIX_BENCH is set but selects no workloads ('%s')\n", sel);
        exit(1);
    }
    return out;
}

ScenarioSpec
parseScenario(const std::string &json_text)
{
    std::string err;
    const JsonValue doc = JsonValue::parse(json_text, &err);
    if (!err.empty())
        rix_fatal("scenario spec: %s", err.c_str());
    if (!doc.isObject())
        rix_fatal("scenario spec: top-level value must be an object");

    static const char *const known[] = {
        "name",    "description", "workloads", "scale",  "max_retired",
        "max_cycles", "base",     "configs",   "grid",   "render",
        "sampling", "trace",      "metrics",   "profile"};
    for (const auto &[key, unused] : doc.members()) {
        (void)unused;
        bool ok = false;
        for (const char *k : known)
            ok = ok || key == k;
        if (!ok)
            rix_fatal("scenario spec: unknown top-level field '%s'",
                      key.c_str());
    }

    ScenarioSpec spec;
    if (const JsonValue *v = doc.find("name")) {
        if (!v->isString())
            rix_fatal("scenario spec: 'name' must be a string");
        spec.name = v->asString();
    }
    if (const JsonValue *v = doc.find("description")) {
        if (!v->isString())
            rix_fatal("scenario spec: 'description' must be a string");
        spec.description = v->asString();
    }
    if (const JsonValue *v = doc.find("render")) {
        if (!v->isString())
            rix_fatal("scenario spec: 'render' must be a string");
        spec.render = v->asString();
        static const char *const renders[] = {"jsonl", "csv",  "fig4",
                                              "fig5",  "fig6", "fig7"};
        bool ok = false;
        for (const char *r : renders)
            ok = ok || spec.render == r;
        if (!ok)
            rix_fatal("scenario spec: unknown render '%s' "
                      "(jsonl|csv|fig4|fig5|fig6|fig7)",
                      spec.render.c_str());
    }

    // Workload selection, then the legacy RIX_BENCH override.
    spec.workloads = workloadNames();
    if (const JsonValue *v = doc.find("workloads")) {
        if (v->isString()) {
            if (v->asString() != "all")
                rix_fatal("scenario spec: 'workloads' must be \"all\" or "
                          "an array of names");
        } else if (v->isArray()) {
            const std::vector<std::string> all = workloadNames();
            spec.workloads.clear();
            for (const JsonValue &item : v->items()) {
                if (!item.isString())
                    rix_fatal("scenario spec: 'workloads' entries must be "
                              "strings");
                const std::string &name = item.asString();
                if (std::find(all.begin(), all.end(), name) == all.end())
                    rix_fatal("scenario spec: unknown workload '%s'",
                              name.c_str());
                spec.workloads.push_back(name);
            }
            if (spec.workloads.empty())
                rix_fatal("scenario spec: 'workloads' selects nothing");
        } else {
            rix_fatal("scenario spec: 'workloads' must be \"all\" or an "
                      "array of names");
        }
    }
    spec.workloads = workloadSelectionFromEnv(std::move(spec.workloads));

    if (const JsonValue *v = doc.find("scale")) {
        const std::string cerr = coerceCount(*v, ~u64(0), &spec.scale);
        if (!cerr.empty() || spec.scale == 0)
            rix_fatal("scenario spec: 'scale' must be a positive integer"
                      "%s%s", cerr.empty() ? "" : ": ", cerr.c_str());
    }
    spec.scale = envPositiveCount("RIX_SCALE", spec.scale);

    if (const JsonValue *v = doc.find("max_retired")) {
        const std::string cerr = coerceCount(*v, ~u64(0), &spec.maxRetired);
        if (!cerr.empty() || spec.maxRetired == 0)
            rix_fatal("scenario spec: 'max_retired' must be a positive "
                      "integer%s%s", cerr.empty() ? "" : ": ",
                      cerr.c_str());
    }
    if (const JsonValue *v = doc.find("max_cycles")) {
        const std::string cerr = coerceCount(*v, ~u64(0), &spec.maxCycles);
        if (!cerr.empty() || spec.maxCycles == 0)
            rix_fatal("scenario spec: 'max_cycles' must be a positive "
                      "integer%s%s", cerr.empty() ? "" : ": ",
                      cerr.c_str());
    }

    if (const JsonValue *v = doc.find("sampling"))
        spec.sampling = parseSamplingBlock(*v);
    // The plan's detailed windows must fit inside the run the spec
    // actually simulates: a window past max_retired would measure
    // instructions the whole-run count (capped at max_retired) never
    // sees, silently producing coverage > 1 and a garbage
    // extrapolation.
    if (!spec.sampling.empty()) {
        const SamplingInterval &last = spec.sampling.intervals.back();
        u64 end = last.checkpointAt;
        if (__builtin_add_overflow(end, last.warmup, &end) ||
            __builtin_add_overflow(end, last.measure, &end))
            rix_fatal("scenario spec: the sampling plan's last detailed "
                      "window (start %llu + warmup %llu + measure %llu) "
                      "overflows",
                      (unsigned long long)last.checkpointAt,
                      (unsigned long long)last.warmup,
                      (unsigned long long)last.measure);
        if (end > spec.maxRetired)
            rix_fatal("scenario spec: the sampling plan's last detailed "
                      "window ends at instruction %llu, past "
                      "max_retired %llu",
                      (unsigned long long)end,
                      (unsigned long long)spec.maxRetired);
    }
    // The figure renderers print paper tables with no way to mark
    // their inputs as estimates; letting a sampled run through them
    // would present extrapolations as measurements. Only the generic
    // row renders (which carry the sampled_* columns) may be sampled.
    if (!spec.sampling.empty() && spec.render != "jsonl" &&
        spec.render != "csv")
        rix_fatal("scenario spec: render '%s' requires full detailed "
                  "runs — sampled results are estimates; use \"jsonl\" "
                  "or \"csv\"", spec.render.c_str());

    // Observability blocks, then the RIX_TRACE* / RIX_METRICS_EVERY
    // environment overrides (which can also enable either one on a
    // spec that never mentions them).
    if (const JsonValue *v = doc.find("trace")) {
        if (!v->isObject())
            rix_fatal("scenario spec: 'trace' must be an object");
        spec.trace.enabled = true;
        for (const auto &[key, val] : v->members()) {
            if (key == "start") {
                const std::string cerr =
                    coerceCount(val, ~u64(0), &spec.trace.start);
                if (!cerr.empty())
                    rix_fatal("scenario spec: 'trace.start' must be a "
                              "non-negative integer: %s", cerr.c_str());
            } else if (key == "count") {
                const std::string cerr =
                    coerceCount(val, ~u64(0), &spec.trace.count);
                if (!cerr.empty() || spec.trace.count == 0)
                    rix_fatal("scenario spec: 'trace.count' must be a "
                              "positive integer%s%s",
                              cerr.empty() ? "" : ": ", cerr.c_str());
            } else if (key == "format") {
                if (!val.isString() ||
                    !traceFormatValid(val.asString()))
                    rix_fatal("scenario spec: 'trace.format' must be "
                              "\"konata\" or \"jsonl\"");
                spec.trace.format = val.asString();
            } else if (key == "out") {
                if (!val.isString() || val.asString().empty())
                    rix_fatal("scenario spec: 'trace.out' must be a "
                              "non-empty path string");
                spec.trace.out = val.asString();
            } else {
                rix_fatal("scenario spec: unknown 'trace' field '%s'",
                          key.c_str());
            }
        }
    }
    spec.trace = applyTraceEnv(std::move(spec.trace));
    if (const JsonValue *v = doc.find("metrics")) {
        if (!v->isObject())
            rix_fatal("scenario spec: 'metrics' must be an object");
        spec.metrics.enabled = true;
        for (const auto &[key, val] : v->members()) {
            if (key == "every") {
                const std::string cerr =
                    coerceCount(val, ~u64(0), &spec.metrics.every);
                if (!cerr.empty() || spec.metrics.every == 0)
                    rix_fatal("scenario spec: 'metrics.every' must be a "
                              "positive integer%s%s",
                              cerr.empty() ? "" : ": ", cerr.c_str());
            } else if (key == "out") {
                if (!val.isString() || val.asString().empty())
                    rix_fatal("scenario spec: 'metrics.out' must be a "
                              "non-empty path string");
                spec.metrics.out = val.asString();
            } else {
                rix_fatal("scenario spec: unknown 'metrics' field '%s'",
                          key.c_str());
            }
        }
    }
    spec.metrics = applyMetricsEnv(std::move(spec.metrics));
    if (const JsonValue *v = doc.find("profile")) {
        const std::string berr = coerceBool(*v, &spec.profile);
        if (!berr.empty())
            rix_fatal("scenario spec: 'profile': %s", berr.c_str());
    }

    // Base parameters: machine defaults plus the spec's "base" set.
    CoreParams base;
    if (const JsonValue *v = doc.find("base"))
        applyOverrideSet(base, *v, "'base'");

    // Explicit configs (default: one unlabeled config of the base).
    struct ProtoConfig
    {
        std::string label;
        CoreParams params;
    };
    std::vector<ProtoConfig> protos;
    if (const JsonValue *v = doc.find("configs")) {
        if (!v->isArray())
            rix_fatal("scenario spec: 'configs' must be an array");
        for (const JsonValue &cfg : v->items()) {
            if (!cfg.isObject())
                rix_fatal("scenario spec: each config must be an object");
            for (const auto &[key, unused] : cfg.members()) {
                (void)unused;
                if (key != "label" && key != "set")
                    rix_fatal("scenario spec: unknown config field '%s'",
                              key.c_str());
            }
            ProtoConfig proto;
            proto.params = base;
            const JsonValue *label = cfg.find("label");
            if (!label || !label->isString() || label->asString().empty())
                rix_fatal("scenario spec: every config needs a non-empty "
                          "string 'label'");
            proto.label = label->asString();
            for (const ProtoConfig &prev : protos)
                if (prev.label == proto.label)
                    rix_fatal("scenario spec: duplicate config label '%s'",
                              proto.label.c_str());
            if (const JsonValue *set = cfg.find("set"))
                applyOverrideSet(proto.params, *set,
                                 "config '" + proto.label + "'");
            protos.push_back(std::move(proto));
        }
        if (protos.empty())
            rix_fatal("scenario spec: 'configs' must not be empty");
    } else {
        protos.push_back({"", base});
    }

    // Grid expansion: cross product of every "key: [values]" axis,
    // first axis slowest, appended to every explicit config.
    const JsonValue *grid = doc.find("grid");
    if (grid) {
        if (!grid->isObject() || grid->members().empty())
            rix_fatal("scenario spec: 'grid' must be a non-empty object "
                      "of \"key\": [values] axes");
        for (const auto &[key, values] : grid->members()) {
            if (!values.isArray() || values.items().empty())
                rix_fatal("scenario spec: grid axis '%s' must be a "
                          "non-empty array", key.c_str());
        }
    }

    for (const ProtoConfig &proto : protos) {
        if (!grid) {
            if (proto.label.empty())
                rix_fatal("scenario spec: a spec without 'configs' needs "
                          "a 'grid'");
            spec.configs.push_back({proto.label, proto.params});
            continue;
        }
        const auto &axes = grid->members();
        std::vector<size_t> idx(axes.size(), 0);
        while (true) {
            ScenarioConfig cfg;
            cfg.label = proto.label;
            cfg.params = proto.params;
            for (size_t a = 0; a < axes.size(); ++a) {
                const auto &[key, values] = axes[a];
                const JsonValue &v = values.items()[idx[a]];
                const std::string err2 =
                    applyCoreParamOverride(cfg.params, key, v);
                if (!err2.empty())
                    rix_fatal("scenario spec: grid axis '%s': %s",
                              key.c_str(), err2.c_str());
                cfg.label += (cfg.label.empty() ? "" : ";") + key + "=" +
                             labelValue(v);
            }
            if (spec.configIndex(cfg.label) >= 0)
                rix_fatal("scenario spec: duplicate point label '%s'",
                          cfg.label.c_str());
            spec.configs.push_back(std::move(cfg));
            // Odometer increment, last axis fastest.
            size_t a = axes.size();
            while (a > 0) {
                --a;
                if (++idx[a] < axes[a].second.items().size())
                    break;
                idx[a] = 0;
                if (a == 0)
                    goto gridDone;
            }
        }
      gridDone:;
    }

    return spec;
}

/** Expand the spec's (workload x config [x interval]) cross product
 *  into the sweep's job list, after fatal up-front validation of every
 *  point (one clear diagnostic naming the config and field, before any
 *  construction or simulation). */
std::vector<SimJob>
expandScenarioJobs(const ScenarioSpec &spec)
{
    for (const ScenarioConfig &cfg : spec.configs)
        requireValidCoreParams(cfg.params,
                               "scenario '" + spec.name + "' config '" +
                                   cfg.label + "'");

    const size_t numIntervals =
        spec.sampling.empty() ? 1 : spec.sampling.intervals.size();
    std::vector<SimJob> jobs;
    jobs.reserve(spec.workloads.size() * spec.configs.size() *
                 numIntervals);
    for (const std::string &w : spec.workloads) {
        for (const ScenarioConfig &cfg : spec.configs) {
            SimJob job;
            job.workload = w;
            job.scale = spec.scale;
            job.params = cfg.params;
            job.maxRetired = spec.maxRetired;
            job.maxCycles = spec.maxCycles;
            if (spec.sampling.empty()) {
                jobs.push_back(std::move(job));
                continue;
            }
            // One independently-schedulable job per detailed interval.
            for (SimJob &ij : expandPlan(job, spec.sampling))
                jobs.push_back(std::move(ij));
        }
    }
    return jobs;
}

const std::string &
scenarioJobConfigLabel(const ScenarioSpec &spec, size_t job_index)
{
    const size_t numIntervals =
        spec.sampling.empty() ? 1 : spec.sampling.intervals.size();
    const size_t point = job_index / numIntervals;
    return spec.configs[point % spec.configs.size()].label;
}

namespace
{

/** Per-job observability output path: the spec's path, suffixed with
 *  the expanded job index when the sweep has more than one job so
 *  parallel jobs never share a file. */
std::string
observabilityPath(const std::string &base, size_t job_index, size_t n_jobs)
{
    return n_jobs <= 1 ? base : base + strfmt(".%zu", job_index);
}

/** Arm the spec's observability on one expanded job. @p job_index is
 *  the stable expanded-sweep index (used for the file suffix), @p
 *  n_jobs the full expansion size — both invariant under resume, so a
 *  resumed sweep's file names line up with a fresh one's. */
void
attachObservabilityJob(const ScenarioSpec &spec, SimJob &job,
                       size_t job_index, size_t n_jobs)
{
    if (spec.trace.enabled) {
        std::string err;
        std::unique_ptr<TraceSink> sink = openTraceSink(
            spec.trace,
            observabilityPath(spec.trace.out, job_index, n_jobs), &err);
        if (!sink)
            rix_fatal("scenario '%s': %s", spec.name.c_str(),
                      err.c_str());
        job.trace = std::move(sink);
        job.traceStart = spec.trace.start;
        job.traceCount = spec.trace.count;
    }
    if (spec.metrics.enabled)
        job.metrics = std::make_shared<MetricsRecorder>(spec.metrics.every);
}

/** Arm every job of a fresh (non-resumed) sweep. */
void
attachObservability(const ScenarioSpec &spec, std::vector<SimJob> &jobs)
{
    if (spec.profile)
        hostProfiler().setEnabled(true);
    if (!spec.trace.enabled && !spec.metrics.enabled)
        return;
    for (size_t i = 0; i < jobs.size(); ++i)
        attachObservabilityJob(spec, jobs[i], i, jobs.size());
}

/** Write one job's metrics time series (JSON lines, suffixed like the
 *  trace outputs), labeled scenario/workload/config. */
void
writeMetricsOutputJob(const ScenarioSpec &spec, const SimJob &job,
                      size_t job_index, size_t n_jobs)
{
    if (!job.metrics)
        return;
    std::vector<std::pair<std::string, std::string>> labels;
    if (!spec.name.empty())
        labels.emplace_back("scenario", spec.name);
    labels.emplace_back("workload", job.workload);
    labels.emplace_back("config", scenarioJobConfigLabel(spec, job_index));
    std::string err;
    if (!job.metrics->writeJsonl(
            observabilityPath(spec.metrics.out, job_index, n_jobs),
            labels, &err))
        rix_fatal("scenario '%s': %s", spec.name.c_str(), err.c_str());
}

void
writeMetricsOutputs(const ScenarioSpec &spec,
                    const std::vector<SimJob> &jobs)
{
    if (!spec.metrics.enabled)
        return;
    for (size_t i = 0; i < jobs.size(); ++i)
        writeMetricsOutputJob(spec, jobs[i], i, jobs.size());
}

} // namespace

ScenarioResults
runScenario(const ScenarioSpec &spec)
{
    std::vector<SimJob> jobs = expandScenarioJobs(spec);
    attachObservability(spec, jobs);

    ScenarioResults res;
    res.numConfigs = spec.configs.size();
    if (spec.sampling.empty()) {
        res.jobs = SweepRunner().run(jobs);
        writeMetricsOutputs(spec, jobs);
        return res;
    }
    const size_t numIntervals = spec.sampling.intervals.size();

    // Build every workload's checkpoints in *ascending* order plus its
    // whole-run instruction count before the sweep — one functional
    // pass per workload, each fast-forward seeding from the previous
    // checkpoint. Dispatching the interval jobs cold instead would let
    // a parallel pool race all K builders past bestReadySeed and
    // fast-forward K times from instruction 0. Workloads are
    // independent, so this phase parallelizes across them on the same
    // RIX_JOBS knob.
    std::vector<u64> totals(spec.workloads.size());
    const auto prepareWorkload = [&](size_t w) {
        for (const SamplingInterval &iv : spec.sampling.intervals)
            globalCheckpointCache().get(spec.workloads[w], spec.scale,
                                        iv.checkpointAt);
        totals[w] = globalCheckpointCache().totalInsts(
            spec.workloads[w], spec.scale, spec.maxRetired);
    };
    const size_t nWorkloads = spec.workloads.size();
    const unsigned nThreads =
        unsigned(std::min<size_t>(jobsFromEnv(), nWorkloads));
    if (nThreads <= 1 || nWorkloads <= 1) {
        for (size_t w = 0; w < nWorkloads; ++w)
            prepareWorkload(w);
    } else {
        ThreadPool pool(nThreads);
        std::vector<std::future<void>> pendings;
        pendings.reserve(nWorkloads);
        for (size_t w = 0; w < nWorkloads; ++w)
            pendings.push_back(pool.submit([&prepareWorkload, w]() {
                prepareWorkload(w);
            }));
        for (std::future<void> &f : pendings)
            f.get();
    }

    res.intervalJobs = SweepRunner().run(jobs);
    writeMetricsOutputs(spec, jobs);

    // Merge every point's intervals back into one row.
    const size_t points = spec.workloads.size() * spec.configs.size();
    res.jobs.resize(points);
    res.sampled.resize(points);
    for (size_t w = 0; w < spec.workloads.size(); ++w) {
        // A plan tuned for one scale can land past another run's end;
        // measuring *nothing* would silently extrapolate from zero.
        bool warned = false;
        for (size_t c = 0; c < spec.configs.size(); ++c) {
            const size_t point = w * spec.configs.size() + c;
            const SimJobResult *ivs =
                &res.intervalJobs[point * numIntervals];
            res.sampled[point] = mergeIntervals(spec.sampling, ivs,
                                                totals[w],
                                                &res.jobs[point]);
            if (res.sampled[point].measuredInsts == 0)
                rix_fatal("scenario '%s': the sampling plan measured "
                          "nothing for workload '%s' — the run ends at "
                          "instruction %llu, before the first interval "
                          "(start %llu)",
                          spec.name.c_str(), spec.workloads[w].c_str(),
                          (unsigned long long)totals[w],
                          (unsigned long long)
                              spec.sampling.intervals[0].checkpointAt);
            for (size_t k = 0; !warned && k < numIntervals; ++k) {
                if (ivs[k].report.core.retired == 0) {
                    rix_warn("scenario '%s': workload '%s' ends at "
                             "instruction %llu, so sampling interval "
                             "%zu (start %llu) measured nothing — "
                             "coverage is below plan",
                             spec.name.c_str(),
                             spec.workloads[w].c_str(),
                             (unsigned long long)totals[w], k,
                             (unsigned long long)
                                 spec.sampling.intervals[k].checkpointAt);
                    warned = true;
                }
            }
        }
    }
    return res;
}

ScenarioResults
runScenario(const ScenarioSpec &spec, const FaultPolicy &policy)
{
    return runScenario(spec, policy, nullptr);
}

ScenarioResults
runScenario(const ScenarioSpec &spec, const FaultPolicy &policy,
            ResultStore *store)
{
    std::vector<SimJob> jobs = expandScenarioJobs(spec);

    // Load the journal: jobs already completed are done — their stored
    // results are the results — and everything else still runs. A
    // record that does not line up with the spec's expansion means the
    // store belongs to a different sweep; refusing loudly beats
    // silently merging apples into oranges.
    std::vector<SimJobResult> all(jobs.size());
    std::vector<char> have(jobs.size(), 0);
    if (store) {
        if (store->meta().kind != StoreKind::Sweep)
            rix_fatal("store '%s' is a serve journal, not a sweep store",
                      store->path().c_str());
        if (store->meta().numJobs != jobs.size())
            rix_fatal("store '%s' journals a sweep of %llu jobs but this "
                      "spec expands to %zu — the spec or its overrides "
                      "changed since the store was created",
                      store->path().c_str(),
                      (unsigned long long)store->meta().numJobs,
                      jobs.size());
        for (const StoreRecord &r : store->records()) {
            if (r.jobIndex >= jobs.size())
                rix_fatal("store '%s': record for job %llu is out of "
                          "range (%zu jobs)",
                          store->path().c_str(),
                          (unsigned long long)r.jobIndex, jobs.size());
            if (r.result.report.workload != jobs[r.jobIndex].workload)
                rix_fatal("store '%s': job %llu is workload '%s' in the "
                          "store but '%s' in the spec",
                          store->path().c_str(),
                          (unsigned long long)r.jobIndex,
                          r.result.report.workload.c_str(),
                          jobs[r.jobIndex].workload.c_str());
            if (!r.result.ok())
                continue; // failed attempts are journal noise: re-run
            all[r.jobIndex] = r.result;
            have[r.jobIndex] = 1;
        }
    }
    std::vector<size_t> remainingIdx;
    remainingIdx.reserve(jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i)
        if (!have[i])
            remainingIdx.push_back(i);
    std::vector<SimJob> remaining;
    remaining.reserve(remainingIdx.size());
    for (size_t i : remainingIdx)
        remaining.push_back(jobs[i]);

    // Observability attaches only to the jobs that will actually run:
    // a resumed (journaled) job keeps its stored result and gets no
    // fresh trace/metrics files. File suffixes use the stable expanded
    // index, so resumed and fresh sweeps name their outputs alike.
    if (spec.profile)
        hostProfiler().setEnabled(true);
    if (spec.trace.enabled || spec.metrics.enabled)
        for (size_t k = 0; k < remaining.size(); ++k)
            attachObservabilityJob(spec, remaining[k], remainingIdx[k],
                                   jobs.size());

    ScenarioResults res;
    res.contained = true;
    res.numConfigs = spec.configs.size();

    // Checkpoint construction stays fail-fast even under containment:
    // it is shared infrastructure (one functional pass per workload),
    // not a per-job simulation — a workload whose checkpoints cannot
    // be built poisons every point that needs them. On resume, only
    // workloads with jobs left to run need their checkpoints; the
    // whole-run totals (merge denominators) are always needed and are
    // deterministic, so recomputing them reproduces the original
    // merge bit-identically.
    std::vector<u64> totals(spec.workloads.size());
    if (!spec.sampling.empty()) {
        const size_t jobsPerWorkload =
            spec.configs.size() * spec.sampling.intervals.size();
        for (size_t w = 0; w < spec.workloads.size(); ++w) {
            bool needed = false;
            for (size_t i : remainingIdx)
                needed = needed || i / jobsPerWorkload == w;
            if (needed)
                for (const SamplingInterval &iv : spec.sampling.intervals)
                    globalCheckpointCache().get(spec.workloads[w],
                                                spec.scale,
                                                iv.checkpointAt);
            totals[w] = globalCheckpointCache().totalInsts(
                spec.workloads[w], spec.scale, spec.maxRetired);
        }
    }

    // Journal each job as it retires from the pool — the commit point
    // (write + fsync) happens before the job counts as done, so a
    // kill -9 loses at most the in-flight record, never a completed
    // result. Only clean results are journaled: a failure is worth a
    // retry on resume, not a durable tombstone.
    SweepRetireHook onRetire;
    if (store) {
        onRetire = [&](size_t k, const SimJobResult &r) {
            if (!r.ok())
                return;
            StoreRecord rec;
            rec.jobIndex = remainingIdx[k];
            rec.configLabel = scenarioJobConfigLabel(spec, rec.jobIndex);
            rec.result = r;
            const std::string err = store->append(rec);
            if (!err.empty())
                rix_fatal("cannot journal job %zu: %s", remainingIdx[k],
                          err.c_str());
        };
    }

    std::vector<SimJobResult> fresh =
        SweepRunner().run(remaining, policy, onRetire);
    for (size_t k = 0; k < remainingIdx.size(); ++k)
        all[remainingIdx[k]] = std::move(fresh[k]);
    if (spec.metrics.enabled)
        for (size_t k = 0; k < remaining.size(); ++k)
            writeMetricsOutputJob(spec, remaining[k], remainingIdx[k],
                                  jobs.size());

    if (spec.sampling.empty()) {
        res.jobs = std::move(all);
        return res;
    }
    const size_t numIntervals = spec.sampling.intervals.size();
    res.intervalJobs = std::move(all);

    // Merge each point's intervals; a point with any failed interval
    // fails as a whole (an extrapolation with a hole in it is not an
    // estimate, it is a lie) but leaves its neighbours intact.
    const size_t points = spec.workloads.size() * spec.configs.size();
    res.jobs.resize(points);
    res.sampled.resize(points);
    for (size_t w = 0; w < spec.workloads.size(); ++w) {
        for (size_t c = 0; c < spec.configs.size(); ++c) {
            const size_t point = w * spec.configs.size() + c;
            const SimJobResult *ivs =
                &res.intervalJobs[point * numIntervals];
            const SimJobResult *bad = nullptr;
            unsigned attempts = 0;
            for (size_t k = 0; k < numIntervals; ++k) {
                if (!ivs[k].ok() && !bad)
                    bad = &ivs[k];
                attempts = std::max(attempts, ivs[k].attempts);
            }
            if (bad) {
                res.jobs[point].status = bad->status;
                res.jobs[point].error = bad->error;
                res.jobs[point].divergence = bad->divergence;
                res.jobs[point].attempts = bad->attempts;
                continue;
            }
            res.sampled[point] = mergeIntervals(spec.sampling, ivs,
                                                totals[w],
                                                &res.jobs[point]);
            res.jobs[point].attempts = attempts;
            if (res.sampled[point].measuredInsts == 0) {
                res.jobs[point].status = JobStatus::Invalid;
                res.jobs[point].error = strfmt(
                    "sampling plan measured nothing: the run ends at "
                    "instruction %llu, before the first interval "
                    "(start %llu)",
                    (unsigned long long)totals[w],
                    (unsigned long long)
                        spec.sampling.intervals[0].checkpointAt);
            }
        }
    }
    return res;
}

namespace
{

void
renderRows(const ScenarioSpec &spec, const ScenarioResults &res, FILE *out,
           bool csv)
{
    StatRegistry reg;
    for (size_t w = 0; w < spec.workloads.size(); ++w) {
        for (size_t c = 0; c < spec.configs.size(); ++c) {
            StatRegistry::Row &row = reg.addRow();
            if (!spec.name.empty())
                row.label("scenario", spec.name);
            row.label("workload", spec.workloads[w]);
            row.label("config", spec.configs[c].label);
            if (res.contained) {
                // Fault-contained runs carry the per-point outcome:
                // failed points keep their row (zeroed simulation
                // columns) so N-K healthy results are never hidden by
                // K failures.
                const SimJobResult &j = res.jobs[w * res.numConfigs + c];
                row.label("status", jobStatusName(j.status));
                row.label("error", j.error);
                row.stats.set("attempts", double(j.attempts));
            }
            exportReport(res.report(w, c), row.stats);
            row.stats.set("scale", double(spec.scale));
            row.stats.set("wall_s", res.wallSeconds(w, c));
            if (res.isSampled()) {
                // Sampled rollup: how much was measured, how much the
                // whole run is, and the extrapolated estimate. When
                // sampled_exact is 1 the row IS the full detailed run.
                const SampledSummary &s =
                    res.sampled[w * spec.configs.size() + c];
                row.stats.set("sampled", 1.0);
                row.stats.set("sampled_intervals", double(s.intervals));
                row.stats.set("sampled_measured_insts",
                              double(s.measuredInsts));
                row.stats.set("sampled_warmup_insts",
                              double(s.warmupInsts));
                row.stats.set("sampled_total_insts", double(s.totalInsts));
                row.stats.set("sampled_coverage", s.coverage());
                row.stats.set("sampled_ipc", s.ipc());
                row.stats.set("sampled_cycles_extrapolated",
                              s.cyclesExtrapolated());
                row.stats.set("sampled_exact", s.exact ? 1.0 : 0.0);
            }
        }
    }
    if (csv)
        reg.writeCsv(out);
    else
        reg.writeJsonLines(out);
}

} // namespace

void
renderScenario(const ScenarioSpec &spec, const ScenarioResults &res,
               FILE *out)
{
    if (spec.render == "jsonl")
        renderRows(spec, res, out, false);
    else if (spec.render == "csv")
        renderRows(spec, res, out, true);
    else if (spec.render == "fig4")
        renderFig4(spec, res, out);
    else if (spec.render == "fig5")
        renderFig5(spec, res, out);
    else if (spec.render == "fig6")
        renderFig6(spec, res, out);
    else if (spec.render == "fig7")
        renderFig7(spec, res, out);
    else
        rix_fatal("unknown render '%s'", spec.render.c_str());
}

std::string
readScenarioFile(const std::string &path)
{
    FILE *f = fopen(path.c_str(), "rb");
    if (!f)
        rix_fatal("cannot open scenario spec '%s'", path.c_str());
    std::string text;
    char buf[4096];
    size_t n;
    while ((n = fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    const bool bad = ferror(f) != 0;
    fclose(f);
    if (bad)
        rix_fatal("error reading scenario spec '%s'", path.c_str());
    return text;
}

int
runScenarioFile(const std::string &path, FILE *out, const FaultPolicy *policy)
{
    const ScenarioSpec spec = parseScenario(readScenarioFile(path));

    // The figure renderers cannot represent a failed point (they print
    // the paper's tables), so they always run fail-fast; containment
    // applies to the generic row renders only.
    const bool rowRender = spec.render == "jsonl" || spec.render == "csv";
    const ScenarioResults res = policy && rowRender
                                    ? runScenario(spec, *policy)
                                    : runScenario(spec);

    // Render into memory first and write in one piece: a consumer of
    // stdout never sees a partial JSON/CSV document, whatever happens
    // mid-render.
    char *buf = nullptr;
    size_t bufLen = 0;
    FILE *mem = open_memstream(&buf, &bufLen);
    if (!mem)
        rix_fatal("cannot allocate render buffer");
    renderScenario(spec, res, mem);
    fclose(mem);
    FILE *dst = out ? out : stdout;
    fwrite(buf, 1, bufLen, dst);
    fflush(dst);
    free(buf);

    return res.contained && res.failures() ? 3 : 0;
}

std::string
bundledScenarioPath(const std::string &name)
{
    const char *dir = getenv("RIX_SCENARIO_DIR");
#ifdef RIX_SCENARIO_DIR_DEFAULT
    if (!dir)
        dir = RIX_SCENARIO_DIR_DEFAULT;
#endif
    if (!dir)
        dir = "examples/scenarios";
    return std::string(dir) + "/" + name + ".json";
}

} // namespace rix
