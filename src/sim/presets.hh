/**
 * @file
 * Canned machine configurations for the paper's experiments.
 */

#ifndef RIX_SIM_PRESETS_HH
#define RIX_SIM_PRESETS_HH

#include "cpu/params.hh"

namespace rix
{

/** Paper section 3.1 baseline 4-way machine, integration OFF. */
CoreParams baselineParams();

/** Baseline with the given integration mode and LISP flavour. */
CoreParams integrationParams(IntegrationMode mode,
                             LispMode lisp = LispMode::Realistic);

/** Figure 7 "RS": 20 reservation stations instead of 40. */
CoreParams reducedRsParams(const CoreParams &base);

/**
 * Figure 7 "IW": 4-wide in-order section, 3-way issue with a single
 * load/store port.
 */
CoreParams reducedIssueParams(const CoreParams &base);

} // namespace rix

#endif // RIX_SIM_PRESETS_HH
