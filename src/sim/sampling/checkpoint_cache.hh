/**
 * @file
 * Process-wide cache of architectural checkpoints.
 *
 * A sampled scenario turns one (workload, config) point into many
 * short detailed intervals, and a sweep crosses those intervals with
 * dozens of configurations — but the checkpoint at a given
 * (workload, scale, instruction-count) point is configuration-
 * independent (it is pure architectural state). This cache creates
 * each such snapshot exactly once and shares it read-only across all
 * jobs and threads, with the same per-slot std::call_once discipline
 * as the ProgramCache: two threads wanting different checkpoints
 * fast-forward concurrently, two threads wanting the same one build
 * it once.
 *
 * Builds are incremental where possible: a fast-forward to instruction
 * N starts from the furthest already-*completed* checkpoint at M <= N
 * of the same (workload, scale) instead of from instruction 0. That
 * only pays off when a plan's checkpoints are built in ascending
 * order — concurrent cold builders would each find no ready seed and
 * all fast-forward from 0 — so the scenario engine pre-builds each
 * workload's checkpoints ascending (one pooled task per workload)
 * before dispatching the interval jobs, making a K-interval plan cost
 * one functional pass per workload. The emulator is deterministic, so
 * the incremental path is bit-identical to fast-forwarding from
 * scratch (tests/test_sampling.cc enforces this).
 */

#ifndef RIX_SIM_SAMPLING_CHECKPOINT_CACHE_HH
#define RIX_SIM_SAMPLING_CHECKPOINT_CACHE_HH

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>

#include "emu/checkpoint.hh"

namespace rix
{

class CheckpointCache
{
  public:
    /**
     * The checkpoint of @p workload (at @p scale) taken after exactly
     * @p icount architectural instructions, fast-forwarding to build
     * it on first request. If the program halts earlier, the
     * checkpoint is at the halt point (an interval scheduled past the
     * end of a run measures nothing). Thread-safe; the reference stays
     * valid for the cache's lifetime.
     */
    const Checkpoint &get(const std::string &workload, u64 scale,
                          u64 icount);

    /**
     * Architectural instruction count of the whole run: to HALT, or
     * @p cap if the program does not halt within it. Cached per
     * (workload, scale, cap); used for sampled-IPC extrapolation.
     */
    u64 totalInsts(const std::string &workload, u64 scale, u64 cap);

    /** Checkpoints actually fast-forwarded (not lookups). */
    u64 builds() const { return nBuilds.load(std::memory_order_relaxed); }

    /** Distinct checkpoint slots requested so far. */
    size_t size() const;

  private:
    using Key = std::tuple<std::string, u64, u64>;

    struct Slot
    {
        std::once_flag once;
        std::atomic<bool> ready{false};
        Checkpoint ckpt;
    };

    struct CountSlot
    {
        std::once_flag once;
        u64 insts = 0;
    };

    /** Furthest completed checkpoint of (workload, scale) at an
     *  instruction count <= @p icount, or nullptr. */
    const Checkpoint *bestReadySeed(const std::string &workload,
                                    u64 scale, u64 icount) const;

    mutable std::mutex mu;
    std::map<Key, std::unique_ptr<Slot>> slots;
    std::map<Key, std::unique_ptr<CountSlot>> counts;
    std::atomic<u64> nBuilds{0};
};

/** The process-wide instance used by the sweep engine. */
CheckpointCache &globalCheckpointCache();

} // namespace rix

#endif // RIX_SIM_SAMPLING_CHECKPOINT_CACHE_HH
