#include "sim/sampling/checkpoint_cache.hh"

#include <stdexcept>

#include "emu/emulator.hh"
#include "trace/profiler.hh"
#include "workload/program_cache.hh"

namespace rix
{

const Checkpoint *
CheckpointCache::bestReadySeed(const std::string &workload, u64 scale,
                               u64 icount) const
{
    std::lock_guard<std::mutex> lk(mu);
    const auto lo = slots.lower_bound(Key{workload, scale, 0});
    const auto hi = slots.upper_bound(Key{workload, scale, icount});
    const Checkpoint *best = nullptr;
    for (auto it = lo; it != hi; ++it) {
        // ready is set (release) after ckpt is fully written; the
        // acquire load makes the snapshot safe to read here.
        if (it->second->ready.load(std::memory_order_acquire))
            best = &it->second->ckpt;
    }
    return best; // map is icount-ascending: the last ready one wins
}

const Checkpoint &
CheckpointCache::get(const std::string &workload, u64 scale, u64 icount)
{
    Slot *slot;
    {
        std::lock_guard<std::mutex> lk(mu);
        std::unique_ptr<Slot> &s = slots[Key{workload, scale, icount}];
        if (!s)
            s = std::make_unique<Slot>();
        slot = s.get();
    }
    std::call_once(slot->once, [&]() {
        const Program &prog = globalProgramCache().get(workload, scale);
        Emulator emu(prog);
        if (const Checkpoint *seed = bestReadySeed(workload, scale, icount))
            emu.restore(*seed);
        if (icount > emu.instsExecuted()) {
            ScopedPhase timer(HostPhase::FastForward);
            emu.run(icount - emu.instsExecuted());
        }
        if (emu.faulted())
            throw std::runtime_error(emu.fault().describe());
        slot->ckpt = emu.snapshot(/*diff_vs_image=*/true);
        slot->ready.store(true, std::memory_order_release);
        nBuilds.fetch_add(1, std::memory_order_relaxed);
    });
    return slot->ckpt;
}

u64
CheckpointCache::totalInsts(const std::string &workload, u64 scale, u64 cap)
{
    CountSlot *slot;
    {
        std::lock_guard<std::mutex> lk(mu);
        std::unique_ptr<CountSlot> &s = counts[Key{workload, scale, cap}];
        if (!s)
            s = std::make_unique<CountSlot>();
        slot = s.get();
    }
    std::call_once(slot->once, [&]() {
        const Program &prog = globalProgramCache().get(workload, scale);
        Emulator emu(prog);
        if (const Checkpoint *seed = bestReadySeed(workload, scale, cap))
            emu.restore(*seed);
        if (cap > emu.instsExecuted()) {
            ScopedPhase timer(HostPhase::FastForward);
            emu.run(cap - emu.instsExecuted());
        }
        if (emu.faulted())
            throw std::runtime_error(emu.fault().describe());
        slot->insts = emu.instsExecuted();
    });
    return slot->insts;
}

size_t
CheckpointCache::size() const
{
    std::lock_guard<std::mutex> lk(mu);
    return slots.size();
}

CheckpointCache &
globalCheckpointCache()
{
    static CheckpointCache cache;
    return cache;
}

} // namespace rix
