/**
 * @file
 * Sampled simulation: run short detailed intervals of a long workload
 * instead of the whole thing (the SimPoint/SMARTS idea, scoped to what
 * this repository needs).
 *
 * A SamplingPlan names the detailed intervals of one run. Each
 * interval is (checkpointAt, warmup, measure): fast-forward
 * functionally to `checkpointAt` architectural instructions (via the
 * CheckpointCache), run the detailed pipeline for `warmup`
 * instructions with statistics discarded (caches, predictors and the
 * integration table fill from the architecturally-correct state), then
 * collect statistics for `measure` instructions. Intervals are
 * independently schedulable SimJobs, so one long run parallelizes
 * across the sweep pool exactly like unrelated configurations do.
 *
 * Scenario specs declare a plan in a "sampling" block, in one of two
 * forms (counts are architectural instructions; unknown keys, zero
 * measure/repeat and overlapping intervals are fatal, field named):
 *
 *   "sampling": {            // periodic: ff N, warm W, measure M, repeat
 *     "fast_forward": 900000,    // skipped before each interval (>= 0)
 *     "warmup": 10000,           // detailed, discarded (default 0)
 *     "measure": 90000,          // detailed, measured (required, >= 1)
 *     "repeat": 5                // number of intervals (default 1)
 *   }
 *
 *   "sampling": {            // explicit interval list
 *     "intervals": [
 *       {"start": 0, "warmup": 0, "measure": 100000},
 *       {"start": 4000000, "warmup": 20000, "measure": 100000}
 *     ]
 *   }
 *
 * Estimation contract: the merged measured windows give sampled IPC =
 * sum(measured retired) / sum(measured cycles), and whole-run
 * extrapolation multiplies by the (functionally counted) total
 * instruction count. A plan whose single interval starts at 0 with no
 * warmup and measures the entire run is *exact*: its merged report is
 * bit-identical to the full detailed simulation (enforced in ctest).
 * Every other plan is an estimate.
 */

#ifndef RIX_SIM_SAMPLING_SAMPLING_HH
#define RIX_SIM_SAMPLING_SAMPLING_HH

#include <vector>

#include "base/json.hh"
#include "sim/sweep.hh"

namespace rix
{

/** One detailed interval of a sampled run. */
struct SamplingInterval
{
    u64 checkpointAt = 0; // architectural insts skipped functionally
    u64 warmup = 0;       // detailed insts, statistics discarded
    u64 measure = 0;      // detailed insts, statistics collected
};

struct SamplingPlan
{
    /** Ascending by checkpointAt; detailed windows never overlap. */
    std::vector<SamplingInterval> intervals;

    bool empty() const { return intervals.empty(); }

    /** Total detailed instructions the plan intends to discard/measure
     *  (actual counts can be lower when the run ends early). */
    u64 plannedWarmup() const;
    u64 plannedMeasure() const;
};

/**
 * Periodic plan: for each of @p repeat intervals, skip
 * @p fast_forward instructions, warm up @p warmup, measure
 * @p measure. Interval k starts at k*(ff+W+M) + ff.
 */
SamplingPlan makePeriodicPlan(u64 fast_forward, u64 warmup, u64 measure,
                              u64 repeat);

/** Parse a scenario spec's "sampling" block; fatal (naming the field)
 *  on malformed input. */
SamplingPlan parseSamplingBlock(const JsonValue &v);

/**
 * Expand @p plan into one SimJob per interval, each derived from
 * @p base: checkpointAt/warmup come from the interval and maxRetired
 * becomes the interval's measure budget (the single point where the
 * plan-to-job contract lives — the scenario engine and the benches
 * must agree on it).
 */
std::vector<SimJob> expandPlan(const SimJob &base,
                               const SamplingPlan &plan);

/** Per-point rollup of a sampled run (one (workload, config) pair). */
struct SampledSummary
{
    u64 intervals = 0;
    u64 measuredInsts = 0;  // actually retired in measured windows
    u64 measuredCycles = 0;
    u64 warmupInsts = 0;    // planned detailed warmup
    u64 totalInsts = 0;     // whole-run architectural count (capped)
    bool exact = false;     // merged report == full detailed run

    /** Sampled IPC over the measured windows. */
    double
    ipc() const
    {
        return measuredCycles ? double(measuredInsts) /
                                    double(measuredCycles)
                              : 0.0;
    }

    /** Whole-run cycle estimate: totalInsts at the sampled IPC. */
    double
    cyclesExtrapolated() const
    {
        return measuredInsts ? double(totalInsts) *
                                   double(measuredCycles) /
                                   double(measuredInsts)
                             : 0.0;
    }

    /** Fraction of the run measured in detail. */
    double
    coverage() const
    {
        return totalInsts ? double(measuredInsts) / double(totalInsts)
                          : 0.0;
    }
};

/**
 * Merge the per-interval results of one (workload, config) point:
 * counters are summed into @p merged_out (wall time too), and the
 * rollup is returned. @p results must hold plan.intervals.size()
 * entries in plan order.
 */
SampledSummary mergeIntervals(const SamplingPlan &plan,
                              const SimJobResult *results,
                              u64 total_insts, SimJobResult *merged_out);

} // namespace rix

#endif // RIX_SIM_SAMPLING_SAMPLING_HH
