#include "sim/sampling/sampling.hh"

#include "base/log.hh"

namespace rix
{

namespace
{

u64
requireCount(const JsonValue &v, const char *field)
{
    u64 out = 0;
    const std::string err = jsonCoerceCount(v, ~u64(0), &out);
    if (!err.empty())
        rix_fatal("scenario spec: 'sampling.%s': %s", field, err.c_str());
    return out;
}

} // namespace

u64
SamplingPlan::plannedWarmup() const
{
    u64 sum = 0;
    for (const SamplingInterval &iv : intervals)
        sum += iv.warmup;
    return sum;
}

u64
SamplingPlan::plannedMeasure() const
{
    u64 sum = 0;
    for (const SamplingInterval &iv : intervals)
        sum += iv.measure;
    return sum;
}

SamplingPlan
makePeriodicPlan(u64 fast_forward, u64 warmup, u64 measure, u64 repeat)
{
    if (measure == 0)
        rix_fatal("sampling plan: 'measure' must be >= 1");
    if (repeat == 0)
        rix_fatal("sampling plan: 'repeat' must be >= 1");
    u64 period = 0;
    if (__builtin_add_overflow(fast_forward, warmup, &period) ||
        __builtin_add_overflow(period, measure, &period))
        rix_fatal("sampling plan: interval period overflows");

    SamplingPlan plan;
    plan.intervals.reserve(repeat);
    for (u64 k = 0; k < repeat; ++k) {
        u64 start = 0;
        if (__builtin_mul_overflow(k, period, &start) ||
            __builtin_add_overflow(start, fast_forward, &start))
            rix_fatal("sampling plan: interval %llu start overflows",
                      (unsigned long long)k);
        plan.intervals.push_back({start, warmup, measure});
    }
    return plan;
}

SamplingPlan
parseSamplingBlock(const JsonValue &v)
{
    if (!v.isObject())
        rix_fatal("scenario spec: 'sampling' must be an object");

    static const char *const known[] = {"fast_forward", "warmup",
                                        "measure", "repeat", "intervals"};
    for (const auto &[key, unused] : v.members()) {
        (void)unused;
        bool ok = false;
        for (const char *k : known)
            ok = ok || key == k;
        if (!ok)
            rix_fatal("scenario spec: unknown 'sampling' field '%s'",
                      key.c_str());
    }

    const JsonValue *ivs = v.find("intervals");
    if (ivs) {
        // Explicit interval list: exclusive with the periodic fields.
        for (const char *k : {"fast_forward", "warmup", "measure",
                              "repeat"}) {
            if (v.find(k))
                rix_fatal("scenario spec: 'sampling.%s' cannot be "
                          "combined with 'sampling.intervals'", k);
        }
        if (!ivs->isArray() || ivs->items().empty())
            rix_fatal("scenario spec: 'sampling.intervals' must be a "
                      "non-empty array");
        SamplingPlan plan;
        for (const JsonValue &item : ivs->items()) {
            if (!item.isObject())
                rix_fatal("scenario spec: each sampling interval must "
                          "be an object");
            for (const auto &[key, unused] : item.members()) {
                (void)unused;
                if (key != "start" && key != "warmup" && key != "measure")
                    rix_fatal("scenario spec: unknown sampling interval "
                              "field '%s'", key.c_str());
            }
            SamplingInterval iv;
            const JsonValue *start = item.find("start");
            if (!start)
                rix_fatal("scenario spec: sampling interval needs a "
                          "'start'");
            iv.checkpointAt = requireCount(*start, "intervals[].start");
            if (const JsonValue *w = item.find("warmup"))
                iv.warmup = requireCount(*w, "intervals[].warmup");
            const JsonValue *measure = item.find("measure");
            if (!measure)
                rix_fatal("scenario spec: sampling interval needs a "
                          "'measure'");
            iv.measure = requireCount(*measure, "intervals[].measure");
            if (iv.measure == 0)
                rix_fatal("scenario spec: 'sampling.intervals[].measure' "
                          "must be >= 1");
            // Intervals must not overlap: an interval starting inside
            // the previous one's detailed (warmup+measure) window
            // would double-count that stretch of the instruction
            // stream and silently corrupt every sampled_* rollup.
            if (!plan.intervals.empty()) {
                const SamplingInterval &prev = plan.intervals.back();
                u64 prev_end = prev.checkpointAt;
                if (__builtin_add_overflow(prev_end, prev.warmup,
                                           &prev_end) ||
                    __builtin_add_overflow(prev_end, prev.measure,
                                           &prev_end))
                    rix_fatal("scenario spec: sampling interval at %llu "
                              "overflows its detailed window",
                              (unsigned long long)prev.checkpointAt);
                if (iv.checkpointAt < prev_end)
                    rix_fatal("scenario spec: 'sampling.intervals' must "
                              "not overlap: start %llu lies inside the "
                              "previous interval's detailed window "
                              "(ends at %llu)",
                              (unsigned long long)iv.checkpointAt,
                              (unsigned long long)prev_end);
            }
            plan.intervals.push_back(iv);
        }
        return plan;
    }

    // Periodic form: measure is the one required field.
    const JsonValue *measure = v.find("measure");
    if (!measure)
        rix_fatal("scenario spec: 'sampling' needs 'measure' (or an "
                  "'intervals' list)");
    u64 ff = 0, warmup = 0, repeat = 1;
    const u64 m = requireCount(*measure, "measure");
    if (m == 0)
        rix_fatal("scenario spec: 'sampling.measure' must be >= 1");
    if (const JsonValue *f = v.find("fast_forward"))
        ff = requireCount(*f, "fast_forward");
    if (const JsonValue *w = v.find("warmup"))
        warmup = requireCount(*w, "warmup");
    if (const JsonValue *r = v.find("repeat")) {
        repeat = requireCount(*r, "repeat");
        if (repeat == 0)
            rix_fatal("scenario spec: 'sampling.repeat' must be >= 1");
    }
    return makePeriodicPlan(ff, warmup, m, repeat);
}

std::vector<SimJob>
expandPlan(const SimJob &base, const SamplingPlan &plan)
{
    std::vector<SimJob> jobs;
    jobs.reserve(plan.intervals.size());
    for (const SamplingInterval &iv : plan.intervals) {
        SimJob job = base;
        job.checkpointAt = iv.checkpointAt;
        job.warmup = iv.warmup;
        job.maxRetired = iv.measure;
        jobs.push_back(std::move(job));
    }
    return jobs;
}

SampledSummary
mergeIntervals(const SamplingPlan &plan, const SimJobResult *results,
               u64 total_insts, SimJobResult *merged_out)
{
    SimJobResult merged;
    for (size_t i = 0; i < plan.intervals.size(); ++i) {
        accumulateReport(merged.report, results[i].report);
        merged.wallSeconds += results[i].wallSeconds;
    }

    SampledSummary s;
    s.intervals = plan.intervals.size();
    s.measuredInsts = merged.report.core.retired;
    s.measuredCycles = merged.report.core.cycles;
    s.warmupInsts = plan.plannedWarmup();
    s.totalInsts = total_insts;
    // Exact == bit-identical to the full detailed run. That demands a
    // run that *halted* inside the single from-0 interval: a run that
    // stopped on the measure budget instead ended on the sampled
    // path's exact retirement boundary, while a full run()'s stop
    // condition overshoots by up to retire-width instructions.
    s.exact = plan.intervals.size() == 1 &&
              plan.intervals[0].checkpointAt == 0 &&
              plan.intervals[0].warmup == 0 && merged.report.halted &&
              s.measuredInsts == total_insts;
    *merged_out = merged;
    return s;
}

} // namespace rix
