/**
 * @file
 * Built-in figure renderers of the scenario subsystem.
 *
 * Each renders one of the paper's evaluation tables from a finished
 * scenario run, byte-identical to the historical hand-written bench
 * binaries. The renderers locate their data points by config label
 * (documented per renderer in figures.cc); a spec missing a required
 * label fails loudly naming it. Everything else about the figure —
 * which workloads, which geometry values, which run limits — comes
 * from the spec, so the committed JSON remains the single source of
 * truth for the experiment.
 */

#ifndef RIX_SIM_FIGURES_HH
#define RIX_SIM_FIGURES_HH

#include <cstdio>

#include "sim/scenario.hh"

namespace rix
{

/** "==== title ====" section header (shared with bench/common.hh). */
void printTableHeader(FILE *out, const char *title);

/** Left-justified 8-column row label (shared with bench/common.hh). */
void printTableRowLabel(FILE *out, const std::string &name);

void renderFig4(const ScenarioSpec &spec, const ScenarioResults &res,
                FILE *out);
void renderFig5(const ScenarioSpec &spec, const ScenarioResults &res,
                FILE *out);
void renderFig6(const ScenarioSpec &spec, const ScenarioResults &res,
                FILE *out);
void renderFig7(const ScenarioSpec &spec, const ScenarioResults &res,
                FILE *out);

} // namespace rix

#endif // RIX_SIM_FIGURES_HH
