#include "sim/sweep.hh"

#include <chrono>
#include <stdexcept>
#include <thread>

#include "base/log.hh"
#include "base/thread_pool.hh"
#include "sim/sampling/checkpoint_cache.hh"
#include "sim/validate.hh"
#include "trace/metrics.hh"
#include "trace/profiler.hh"
#include "trace/trace.hh"
#include "workload/program_cache.hh"

namespace rix
{

const char *
jobInjectName(JobInject inject)
{
    switch (inject) {
      case JobInject::None: return "none";
      case JobInject::Hang: return "hang";
      case JobInject::Crash: return "crash";
      case JobInject::Transient: return "transient";
    }
    return "?";
}

bool
jobInjectFromName(const std::string &name, JobInject *out)
{
    for (JobInject i : {JobInject::None, JobInject::Hang, JobInject::Crash,
                        JobInject::Transient}) {
        if (name == jobInjectName(i)) {
            *out = i;
            return true;
        }
    }
    return false;
}

namespace
{

using Clock = std::chrono::steady_clock;

/**
 * One execution attempt. @p cancel (nullable) is the armed watchdog
 * token; @p graceful routes simulation failures into the result's
 * status instead of letting them become fatal. Exceptions escape only
 * when !graceful (the historical fail-fast sweep).
 */
SimJobResult
executeOnce(SimContext &ctx, const SimJob &job, const CancelToken *cancel,
            bool graceful, unsigned attempt, const JobInputSource &inputs)
{
    SimJobResult res;
    const auto t0 = Clock::now();
    try {
        if (job.inject == JobInject::Crash)
            throw std::runtime_error("injected crash");
        if (job.inject == JobInject::Transient && attempt == 1)
            throw TransientError("injected transient failure");
        if (job.inject == JobInject::Hang) {
            // A hung job: no forward progress, only the watchdog can
            // reap it. Cooperative (polls the token) so the test
            // proves the timeout path without leaking a real thread.
            if (!cancel)
                throw std::runtime_error(
                    "injected hang with no watchdog armed");
            while (cancel->poll() == CancelReason::None)
                std::this_thread::sleep_for(std::chrono::milliseconds(1));
            res.status = cancel->firedReason() == CancelReason::Deadline
                             ? JobStatus::Timeout
                             : JobStatus::Skipped;
            res.error = job.workload + ": injected hang reaped by watchdog";
        } else {
            // The program — and for sampled jobs the checkpoint — is
            // shared read-only across all jobs and threads; build
            // (once) outside the timed region, like the program image.
            // Default source: the process-wide unbounded caches,
            // wrapped non-owning (their entries outlive every job).
            PinnedJobInputs in;
            if (inputs) {
                in = inputs(job);
            } else {
                in.prog = std::shared_ptr<const Program>(
                    &globalProgramCache().get(job.workload, job.scale),
                    [](const Program *) {});
                if (job.sampled())
                    in.from = std::shared_ptr<const Checkpoint>(
                        &globalCheckpointCache().get(job.workload,
                                                     job.scale,
                                                     job.checkpointAt),
                        [](const Checkpoint *) {});
            }
            JobFault fault;
            RunControl ctl;
            ctl.cancel = cancel;
            ctl.fault = graceful ? &fault : nullptr;
            ctl.trace = job.trace.get();
            ctl.traceStart = job.traceStart;
            ctl.traceCount = job.traceCount;
            ctl.metrics = job.metrics.get();
            res.report =
                in.from ? ctx.runInterval(*in.prog, *in.from, job.params,
                                          job.warmup, job.maxRetired,
                                          job.maxCycles, ctl)
                        : ctx.run(*in.prog, job.params, job.maxRetired,
                                  job.maxCycles, ctl);
            if (graceful && fault.status != JobStatus::Ok) {
                res.status = fault.status;
                res.error = fault.message;
                res.divergence = fault.divergence;
            }
        }
    } catch (const TransientError &e) {
        if (!graceful)
            throw;
        res.status = JobStatus::Transient;
        res.error = e.what();
    } catch (const std::exception &e) {
        if (!graceful)
            throw;
        res.status = JobStatus::Crash;
        res.error = e.what();
    }
    res.wallSeconds = std::chrono::duration<double>(Clock::now() - t0).count();
    return res;
}

/** Historical fail-fast execution: exceptions propagate, divergence
 *  and stuck cores are fatal inside SimContext. */
SimJobResult
executeJob(SimContext &ctx, const SimJob &job)
{
    return executeOnce(ctx, job, nullptr, /*graceful=*/false,
                       /*attempt=*/1, nullptr);
}

} // namespace

/** Fault-contained execution under @p policy: pre-validate without
 *  dying, arm the watchdog per attempt, retry transient failures with
 *  exponential backoff. */
SimJobResult
runJobContained(SimContext &ctx, const SimJob &job,
                const FaultPolicy &policy, const JobInputSource &inputs)
{
    // Reject un-runnable jobs up front with the non-fatal validators;
    // SimContext's fatal checks then never fire on this path.
    SimJobResult invalid;
    invalid.status = JobStatus::Invalid;
    if (!workloadExists(job.workload)) {
        invalid.error = "unknown workload '" + job.workload + "'";
        return invalid;
    }
    if (std::string verr = validateCoreParams(job.params); !verr.empty()) {
        for (char &c : verr)
            if (c == '\n')
                c = ';';
        invalid.error = job.workload + ": " + verr;
        return invalid;
    }
    if (job.inject == JobInject::Hang && policy.timeoutMs == 0) {
        invalid.status = JobStatus::Crash;
        invalid.error = "injected hang with no watchdog armed";
        return invalid;
    }

    // One token per worker thread, re-armed per attempt.
    thread_local CancelToken token;
    for (unsigned attempt = 1;; ++attempt) {
        token.arm(policy.timeoutMs);
        SimJobResult res = executeOnce(ctx, job, &token, /*graceful=*/true,
                                       attempt, inputs);
        res.attempts = attempt;
        if (!jobStatusIsTransient(res.status) || attempt > policy.retries)
            return res;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(policy.backoffMs(attempt)));
    }
}

SimContext::SimContext() = default;
SimContext::~SimContext() = default;

namespace
{

/**
 * Translate how the core stopped into either a JobFault (contained
 * path) or the historical fatal (ctl.fault null). Divergence keeps its
 * full lockstep report; stuck keeps the watchdog's diagnosis; a fired
 * deadline is a timeout; an external cancel means the job was asked to
 * stop (shutdown) and is reported skipped.
 */
void
noteOutcome(const Core &core, const std::string &what, const RunControl &ctl)
{
    if (!ctl.fault) {
        if (core.stuck())
            rix_fatal("%s: %s", what.c_str(), core.stuckReason().c_str());
        requireNoDivergence(core, what);
        return;
    }
    JobFault &f = *ctl.fault;
    if (const DivergenceReport *d = core.divergence()) {
        f.status = JobStatus::Divergence;
        f.message = what + ": divergence (" + d->kind + ") at icount " +
                    std::to_string(d->icount);
        f.divergence = *d;
    } else if (core.stuck()) {
        f.status = JobStatus::Stuck;
        f.message = what + ": " + core.stuckReason();
    } else if (core.cancelled() == CancelReason::Deadline) {
        f.status = JobStatus::Timeout;
        f.message = what + ": wall-clock timeout after " +
                    std::to_string(core.stats().cycles) + " cycles";
    } else if (core.cancelled() == CancelReason::External) {
        f.status = JobStatus::Skipped;
        f.message = what + ": cancelled";
    }
}

} // namespace

SimReport
SimContext::run(const Program &prog, const CoreParams &params,
                u64 max_retired, Cycle max_cycles, const RunControl &ctl)
{
    requireValidCoreParams(params, "SimContext(" + prog.name + ")");
    if (!core)
        core = std::make_unique<Core>(prog, params);
    else
        core->reset(prog, params);
    core->setCancelToken(ctl.cancel);
    if (ctl.trace)
        core->setTraceSink(ctl.trace, ctl.traceStart, ctl.traceCount);
    if (ctl.metrics)
        core->setMetrics(ctl.metrics);
    {
        ScopedPhase timer(HostPhase::DetailedSim);
        core->run(max_retired, max_cycles);
    }
    if (ctl.trace)
        ctl.trace->flush();
    noteOutcome(*core, prog.name, ctl);
    return collectReport(*core, prog.name);
}

SimReport
SimContext::runInterval(const Program &prog, const Checkpoint &from,
                        const CoreParams &params, u64 warmup, u64 measure,
                        Cycle max_cycles, const RunControl &ctl)
{
    requireValidCoreParams(params, "SimContext(" + prog.name + ")");
    if (!core)
        core = std::make_unique<Core>(prog, params);
    {
        ScopedPhase timer(HostPhase::CheckpointRestore);
        core->reset(prog, params, from);
    }
    core->setCancelToken(ctl.cancel);

    // Detailed warmup: simulate but snapshot-and-subtract the
    // statistics. Both phases end on an *exact* retired-instruction
    // boundary (setRetireStop), so the interval covers precisely
    // [checkpoint, checkpoint+warmup+measure) of the architectural
    // stream and adjacent intervals never double-count instructions
    // through multi-wide retirement overshoot.
    SimReport warm;
    if (warmup) {
        ScopedPhase timer(HostPhase::DetailedSim);
        core->setRetireStop(warmup);
        core->run(warmup, max_cycles);
    }
    warm = collectReport(*core, prog.name);

    // Observability attaches after warmup: the trace window indexes
    // into the measured retire stream and the metrics series covers
    // exactly the measured (reported) interval.
    if (ctl.trace) {
        const u64 warmed0 = core->stats().retired;
        const u64 start = ctl.traceStart > ~u64(0) - warmed0
                              ? ~u64(0)
                              : warmed0 + ctl.traceStart;
        core->setTraceSink(ctl.trace, start, ctl.traceCount);
    }
    if (ctl.metrics)
        core->setMetrics(ctl.metrics);

    const u64 warmed = core->stats().retired;
    const u64 target =
        measure > ~u64(0) - warmed ? ~u64(0) : warmed + measure;
    core->setRetireStop(target);
    {
        ScopedPhase timer(HostPhase::DetailedSim);
        core->run(target, max_cycles);
    }
    if (ctl.trace)
        ctl.trace->flush();
    noteOutcome(*core, strfmt("%s (interval from %llu)", prog.name.c_str(),
                              (unsigned long long)from.icount),
                ctl);
    return deltaReport(collectReport(*core, prog.name), warm);
}

SweepRunner::SweepRunner(unsigned num_threads)
    : nThreads(num_threads ? num_threads : jobsFromEnv())
{
}

std::vector<SimJobResult>
SweepRunner::run(const std::vector<SimJob> &jobs)
{
    std::vector<SimJobResult> results(jobs.size());

    if (nThreads <= 1 || jobs.size() <= 1) {
        // Serial path: one context, inline on the calling thread.
        SimContext ctx;
        for (size_t i = 0; i < jobs.size(); ++i)
            results[i] = executeJob(ctx, jobs[i]);
        return results;
    }

    // One long-lived SimContext per worker thread: thread_local makes
    // it worker-owned without the pool knowing about simulation types.
    // The contexts die with the worker threads when the pool joins.
    ThreadPool pool(unsigned(std::min<size_t>(nThreads, jobs.size())));
    std::vector<std::future<void>> pendings;
    pendings.reserve(jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        pendings.push_back(pool.submit([&jobs, &results, i]() {
            thread_local SimContext ctx;
            results[i] = executeJob(ctx, jobs[i]);
        }));
    }

    // Collect in submission order. Let every job finish before
    // rethrowing a failure so no worker is left writing into a slot
    // while an exception unwinds the result vector.
    std::exception_ptr firstError;
    for (std::future<void> &f : pendings) {
        try {
            f.get();
        } catch (...) {
            if (!firstError)
                firstError = std::current_exception();
        }
    }
    if (firstError)
        std::rethrow_exception(firstError);
    return results;
}

std::vector<SimJobResult>
SweepRunner::run(const std::vector<SimJob> &jobs, const FaultPolicy &policy,
                 const SweepRetireHook &on_retire)
{
    std::vector<SimJobResult> results(jobs.size());

    if (nThreads <= 1 || jobs.size() <= 1) {
        SimContext ctx;
        for (size_t i = 0; i < jobs.size(); ++i) {
            results[i] = runJobContained(ctx, jobs[i], policy);
            if (on_retire)
                on_retire(i, results[i]);
        }
    } else {
        ThreadPool pool(unsigned(std::min<size_t>(nThreads, jobs.size())));
        std::vector<std::future<void>> pendings;
        pendings.reserve(jobs.size());
        for (size_t i = 0; i < jobs.size(); ++i) {
            pendings.push_back(
                pool.submit([&jobs, &results, i, &policy, &on_retire]() {
                    thread_local SimContext ctx;
                    results[i] = runJobContained(ctx, jobs[i], policy);
                    // Durability before completion: the job is not
                    // "done" until its result is journaled.
                    if (on_retire)
                        on_retire(i, results[i]);
                }));
        }
        // Containment at the collection layer too: a cancelled task's
        // broken promise becomes "skipped", anything else unexpected
        // becomes "crash" — one bad job never voids its neighbours.
        for (size_t i = 0; i < pendings.size(); ++i) {
            try {
                pendings[i].get();
            } catch (const std::future_error &) {
                results[i].status = JobStatus::Skipped;
                results[i].error = "cancelled before starting";
            } catch (const std::exception &e) {
                results[i].status = JobStatus::Crash;
                results[i].error = e.what();
            }
        }
    }

    if (policy.strict) {
        // Fail-fast semantics restored — but only after every job
        // finished, so the process never dies mid-sweep with workers
        // writing into freed result slots.
        for (size_t i = 0; i < results.size(); ++i) {
            const SimJobResult &r = results[i];
            if (!r.ok())
                rix_fatal("strict: job %zu (%s) failed: %s: %s",
                          i, jobs[i].workload.c_str(),
                          jobStatusName(r.status), r.error.c_str());
        }
    }
    return results;
}

} // namespace rix
