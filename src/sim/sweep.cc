#include "sim/sweep.hh"

#include <chrono>

#include "base/log.hh"
#include "base/thread_pool.hh"
#include "sim/sampling/checkpoint_cache.hh"
#include "sim/validate.hh"
#include "workload/program_cache.hh"

namespace rix
{

namespace
{

using Clock = std::chrono::steady_clock;

SimJobResult
executeJob(SimContext &ctx, const SimJob &job)
{
    // The program — and for sampled jobs the checkpoint — is shared
    // read-only across all jobs and threads; build (once) outside the
    // timed region, like the program image.
    const Program &prog = globalProgramCache().get(job.workload, job.scale);
    const Checkpoint *from =
        job.sampled() ? &globalCheckpointCache().get(job.workload,
                                                     job.scale,
                                                     job.checkpointAt)
                      : nullptr;

    const auto t0 = Clock::now();
    SimJobResult res;
    res.report =
        from ? ctx.runInterval(prog, *from, job.params, job.warmup,
                               job.maxRetired, job.maxCycles)
             : ctx.run(prog, job.params, job.maxRetired, job.maxCycles);
    res.wallSeconds = std::chrono::duration<double>(Clock::now() - t0).count();
    return res;
}

} // namespace

SimContext::SimContext() = default;
SimContext::~SimContext() = default;

SimReport
SimContext::run(const Program &prog, const CoreParams &params,
                u64 max_retired, Cycle max_cycles)
{
    requireValidCoreParams(params, "SimContext(" + prog.name + ")");
    if (!core)
        core = std::make_unique<Core>(prog, params);
    else
        core->reset(prog, params);
    core->run(max_retired, max_cycles);
    requireNoDivergence(*core, prog.name);
    return collectReport(*core, prog.name);
}

SimReport
SimContext::runInterval(const Program &prog, const Checkpoint &from,
                        const CoreParams &params, u64 warmup, u64 measure,
                        Cycle max_cycles)
{
    requireValidCoreParams(params, "SimContext(" + prog.name + ")");
    if (!core)
        core = std::make_unique<Core>(prog, params);
    core->reset(prog, params, from);

    // Detailed warmup: simulate but snapshot-and-subtract the
    // statistics. Both phases end on an *exact* retired-instruction
    // boundary (setRetireStop), so the interval covers precisely
    // [checkpoint, checkpoint+warmup+measure) of the architectural
    // stream and adjacent intervals never double-count instructions
    // through multi-wide retirement overshoot.
    SimReport warm;
    if (warmup) {
        core->setRetireStop(warmup);
        core->run(warmup, max_cycles);
    }
    warm = collectReport(*core, prog.name);

    const u64 warmed = core->stats().retired;
    const u64 target =
        measure > ~u64(0) - warmed ? ~u64(0) : warmed + measure;
    core->setRetireStop(target);
    core->run(target, max_cycles);
    requireNoDivergence(*core, strfmt("%s (interval from %llu)",
                                      prog.name.c_str(),
                                      (unsigned long long)from.icount));
    return deltaReport(collectReport(*core, prog.name), warm);
}

SweepRunner::SweepRunner(unsigned num_threads)
    : nThreads(num_threads ? num_threads : jobsFromEnv())
{
}

std::vector<SimJobResult>
SweepRunner::run(const std::vector<SimJob> &jobs)
{
    std::vector<SimJobResult> results(jobs.size());

    if (nThreads <= 1 || jobs.size() <= 1) {
        // Serial path: one context, inline on the calling thread.
        SimContext ctx;
        for (size_t i = 0; i < jobs.size(); ++i)
            results[i] = executeJob(ctx, jobs[i]);
        return results;
    }

    // One long-lived SimContext per worker thread: thread_local makes
    // it worker-owned without the pool knowing about simulation types.
    // The contexts die with the worker threads when the pool joins.
    ThreadPool pool(unsigned(std::min<size_t>(nThreads, jobs.size())));
    std::vector<std::future<void>> pendings;
    pendings.reserve(jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        pendings.push_back(pool.submit([&jobs, &results, i]() {
            thread_local SimContext ctx;
            results[i] = executeJob(ctx, jobs[i]);
        }));
    }

    // Collect in submission order. Let every job finish before
    // rethrowing a failure so no worker is left writing into a slot
    // while an exception unwinds the result vector.
    std::exception_ptr firstError;
    for (std::future<void> &f : pendings) {
        try {
            f.get();
        } catch (...) {
            if (!firstError)
                firstError = std::current_exception();
        }
    }
    if (firstError)
        std::rethrow_exception(firstError);
    return results;
}

} // namespace rix
