#include "sim/sweep.hh"

#include <chrono>

#include "base/thread_pool.hh"
#include "sim/validate.hh"
#include "workload/program_cache.hh"

namespace rix
{

namespace
{

using Clock = std::chrono::steady_clock;

SimJobResult
executeJob(SimContext &ctx, const SimJob &job)
{
    // The program is shared read-only across all jobs and threads;
    // build (once) outside the timed region.
    const Program &prog = globalProgramCache().get(job.workload, job.scale);

    const auto t0 = Clock::now();
    SimJobResult res;
    res.report = ctx.run(prog, job.params, job.maxRetired, job.maxCycles);
    res.wallSeconds = std::chrono::duration<double>(Clock::now() - t0).count();
    return res;
}

} // namespace

SimContext::SimContext() = default;
SimContext::~SimContext() = default;

SimReport
SimContext::run(const Program &prog, const CoreParams &params,
                u64 max_retired, Cycle max_cycles)
{
    requireValidCoreParams(params, "SimContext(" + prog.name + ")");
    if (!core)
        core = std::make_unique<Core>(prog, params);
    else
        core->reset(prog, params);
    core->run(max_retired, max_cycles);
    return collectReport(*core, prog.name);
}

SweepRunner::SweepRunner(unsigned num_threads)
    : nThreads(num_threads ? num_threads : jobsFromEnv())
{
}

std::vector<SimJobResult>
SweepRunner::run(const std::vector<SimJob> &jobs)
{
    std::vector<SimJobResult> results(jobs.size());

    if (nThreads <= 1 || jobs.size() <= 1) {
        // Serial path: one context, inline on the calling thread.
        SimContext ctx;
        for (size_t i = 0; i < jobs.size(); ++i)
            results[i] = executeJob(ctx, jobs[i]);
        return results;
    }

    // One long-lived SimContext per worker thread: thread_local makes
    // it worker-owned without the pool knowing about simulation types.
    // The contexts die with the worker threads when the pool joins.
    ThreadPool pool(unsigned(std::min<size_t>(nThreads, jobs.size())));
    std::vector<std::future<void>> pendings;
    pendings.reserve(jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        pendings.push_back(pool.submit([&jobs, &results, i]() {
            thread_local SimContext ctx;
            results[i] = executeJob(ctx, jobs[i]);
        }));
    }

    // Collect in submission order. Let every job finish before
    // rethrowing a failure so no worker is left writing into a slot
    // while an exception unwinds the result vector.
    std::exception_ptr firstError;
    for (std::future<void> &f : pendings) {
        try {
            f.get();
        } catch (...) {
            if (!firstError)
                firstError = std::current_exception();
        }
    }
    if (firstError)
        std::rethrow_exception(firstError);
    return results;
}

} // namespace rix
