#include "sim/presets.hh"

namespace rix
{

CoreParams
baselineParams()
{
    CoreParams p;   // defaults are the section 3.1 machine
    p.integ.mode = IntegrationMode::Off;
    return p;
}

CoreParams
integrationParams(IntegrationMode mode, LispMode lisp)
{
    CoreParams p = baselineParams();
    p.integ.mode = mode;
    p.integ.lisp = lisp;
    return p;
}

CoreParams
reducedRsParams(const CoreParams &base)
{
    CoreParams p = base;
    p.rsSize = 20;
    return p;
}

CoreParams
reducedIssueParams(const CoreParams &base)
{
    CoreParams p = base;
    p.issueWidth = 3;
    p.simpleIntSlots = 2;
    p.complexSlots = 1;
    p.loadSlots = 1;
    p.storeSlots = 0;
    p.sharedLoadStorePort = true;
    return p;
}

} // namespace rix
