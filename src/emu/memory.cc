#include "emu/memory.hh"

#include <cstring>

namespace rix
{

namespace
{

constexpr size_t minSlots = 64;

} // namespace

void
Memory::resetTable()
{
    slots.assign(minSlots, Slot{});
    mask = minSlots - 1;
    store.clear();
    used = 0;
    invalidateCache();
}

void
Memory::clear()
{
    // Recycle the materialized pages instead of freeing them; they are
    // zero-filled again on re-touch, so a cleared Memory is
    // indistinguishable from a fresh one.
    for (auto &p : store)
        freePages.push_back(std::move(p));
    resetTable();
}

Memory::Page *
Memory::lookupPage(u64 pn) const
{
    // Linear probe; no deletions ever happen (clear() rebuilds), so an
    // empty slot terminates the probe.
    const u64 key = pn + 1;
    for (size_t i = mix(pn) & mask;; i = (i + 1) & mask) {
        const Slot &s = slots[i];
        if (s.key == key)
            return s.page;
        if (s.key == 0)
            return nullptr;
    }
}

void
Memory::grow()
{
    std::vector<Slot> old = std::move(slots);
    slots.assign(old.size() * 2, Slot{});
    mask = slots.size() - 1;
    for (const Slot &s : old) {
        if (s.key == 0)
            continue;
        size_t i = mix(s.key - 1) & mask;
        while (slots[i].key != 0)
            i = (i + 1) & mask;
        slots[i] = s;
    }
}

Memory::Page &
Memory::touchPage(u64 pn)
{
    if (Page *p = lookupPage(pn))
        return *p;

    // Materialize: pages are zero-filled on first touch.
    if ((used + 1) * 2 > slots.size())
        grow();
    if (!freePages.empty()) {
        store.push_back(std::move(freePages.back()));
        freePages.pop_back();
    } else {
        store.push_back(std::make_unique<Page>());
    }
    Page *p = store.back().get();
    p->fill(0);

    const u64 key = pn + 1;
    size_t i = mix(pn) & mask;
    while (slots[i].key != 0)
        i = (i + 1) & mask;
    slots[i] = Slot{key, p};
    ++used;
    invalidateCache();
    return *p;
}

u64
Memory::read(Addr addr, unsigned size) const
{
    const u64 pn = addr / pageBytes;
    const unsigned off = addr % pageBytes;
    u64 val = 0;
    if (off + size <= pageBytes) {
        // Fast path: same page as the last read costs one compare.
        if (lastRead.key != pn + 1) {
            Page *p = lookupPage(pn);
            if (!p)
                return 0; // untouched memory reads as zero
            lastRead = Slot{pn + 1, p};
        }
        memcpy(&val, lastRead.page->data() + off, size);
        return val;
    }
    for (unsigned i = 0; i < size; ++i) {
        const Addr a = addr + i;
        if (const Page *p = lookupPage(a / pageBytes))
            val |= u64((*p)[a % pageBytes]) << (8 * i);
    }
    return val;
}

void
Memory::write(Addr addr, u64 value, unsigned size)
{
    const u64 pn = addr / pageBytes;
    const unsigned off = addr % pageBytes;
    if (off + size <= pageBytes) {
        if (lastWrite.key != pn + 1) {
            Page *p = &touchPage(pn); // may invalidate the cache...
            lastWrite = Slot{pn + 1, p}; // ...so (re)fill it after
        }
        memcpy(lastWrite.page->data() + off, &value, size);
        return;
    }
    for (unsigned i = 0; i < size; ++i) {
        const Addr a = addr + i;
        touchPage(a / pageBytes)[a % pageBytes] = u8(value >> (8 * i));
    }
}

void
Memory::writeBlock(Addr addr, const std::vector<u8> &bytes)
{
    for (size_t i = 0; i < bytes.size(); ++i)
        write8(addr + i, bytes[i]);
}

bool
Memory::contentEquals(const Memory &other) const
{
    static const Page zeroPage = {};
    auto covered = [](const Memory &a, const Memory &b) {
        for (const Slot &s : a.slots) {
            if (s.key == 0)
                continue;
            const Page *rhs = b.lookupPage(s.key - 1);
            if (!rhs)
                rhs = &zeroPage;
            if (memcmp(s.page->data(), rhs->data(), pageBytes) != 0)
                return false;
        }
        return true;
    };
    return covered(*this, other) && covered(other, *this);
}

} // namespace rix
