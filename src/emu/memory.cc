#include "emu/memory.hh"

#include <cstring>

namespace rix
{

const Memory::Page *
Memory::findPage(Addr addr) const
{
    auto it = pages.find(addr / pageBytes);
    return it == pages.end() ? nullptr : it->second.get();
}

Memory::Page &
Memory::touchPage(Addr addr)
{
    auto &slot = pages[addr / pageBytes];
    if (!slot) {
        slot = std::make_unique<Page>();
        slot->fill(0);
    }
    return *slot;
}

u64
Memory::read(Addr addr, unsigned size) const
{
    u64 val = 0;
    // Fast path: access within one page.
    const unsigned off = addr % pageBytes;
    if (off + size <= pageBytes) {
        if (const Page *p = findPage(addr))
            memcpy(&val, p->data() + off, size);
        return val;
    }
    for (unsigned i = 0; i < size; ++i) {
        const Addr a = addr + i;
        if (const Page *p = findPage(a))
            val |= u64((*p)[a % pageBytes]) << (8 * i);
    }
    return val;
}

void
Memory::write(Addr addr, u64 value, unsigned size)
{
    const unsigned off = addr % pageBytes;
    if (off + size <= pageBytes) {
        memcpy(touchPage(addr).data() + off, &value, size);
        return;
    }
    for (unsigned i = 0; i < size; ++i) {
        const Addr a = addr + i;
        touchPage(a)[a % pageBytes] = u8(value >> (8 * i));
    }
}

void
Memory::writeBlock(Addr addr, const std::vector<u8> &bytes)
{
    for (size_t i = 0; i < bytes.size(); ++i)
        write8(addr + i, bytes[i]);
}

bool
Memory::contentEquals(const Memory &other) const
{
    static const Page zeroPage = {};
    auto covered = [&](const Memory &a, const Memory &b) {
        for (const auto &[pn, page] : a.pages) {
            auto it = b.pages.find(pn);
            const Page &rhs = it == b.pages.end() ? zeroPage : *it->second;
            if (memcmp(page->data(), rhs.data(), pageBytes) != 0)
                return false;
        }
        return true;
    };
    return covered(*this, other) && covered(other, *this);
}

} // namespace rix
