#include "emu/memory.hh"

#include <algorithm>
#include <cstring>

namespace rix
{

namespace
{

constexpr size_t minSlots = 64;

} // namespace

void
Memory::resetTable()
{
    slots.assign(minSlots, Slot{});
    mask = minSlots - 1;
    store.clear();
    used = 0;
    invalidateCache();
}

void
Memory::clear()
{
    // Recycle the materialized pages instead of freeing them; they are
    // zero-filled again on re-touch, so a cleared Memory is
    // indistinguishable from a fresh one.
    for (auto &p : store)
        freePages.push_back(std::move(p));
    resetTable();
}

Memory::Page *
Memory::lookupPage(u64 pn) const
{
    // Linear probe; no deletions ever happen (clear() rebuilds), so an
    // empty slot terminates the probe.
    const u64 key = pn + 1;
    for (size_t i = mix(pn) & mask;; i = (i + 1) & mask) {
        const Slot &s = slots[i];
        if (s.key == key)
            return s.page;
        if (s.key == 0)
            return nullptr;
    }
}

void
Memory::grow()
{
    std::vector<Slot> old = std::move(slots);
    slots.assign(old.size() * 2, Slot{});
    mask = slots.size() - 1;
    for (const Slot &s : old) {
        if (s.key == 0)
            continue;
        size_t i = mix(s.key - 1) & mask;
        while (slots[i].key != 0)
            i = (i + 1) & mask;
        slots[i] = s;
    }
}

Memory::Page &
Memory::touchPage(u64 pn)
{
    if (Page *p = lookupPage(pn))
        return *p;

    // Materialize: pages are zero-filled on first touch.
    if ((used + 1) * 2 > slots.size())
        grow();
    if (!freePages.empty()) {
        store.push_back(std::move(freePages.back()));
        freePages.pop_back();
    } else {
        store.push_back(std::make_unique<Page>());
    }
    Page *p = store.back().get();
    p->fill(0);

    const u64 key = pn + 1;
    size_t i = mix(pn) & mask;
    while (slots[i].key != 0)
        i = (i + 1) & mask;
    slots[i] = Slot{key, p};
    ++used;
    invalidateCache();
    return *p;
}

u64
Memory::read(Addr addr, unsigned size) const
{
    const u64 pn = addr / pageBytes;
    const unsigned off = addr % pageBytes;
    u64 val = 0;
    if (off + size <= pageBytes) {
        // Fast path: same page as the last read costs one compare.
        if (lastRead.key != pn + 1) {
            Page *p = lookupPage(pn);
            if (!p)
                return 0; // untouched memory reads as zero
            lastRead = Slot{pn + 1, p};
        }
        memcpy(&val, lastRead.page->data() + off, size);
        return val;
    }
    for (unsigned i = 0; i < size; ++i) {
        const Addr a = addr + i;
        if (const Page *p = lookupPage(a / pageBytes))
            val |= u64((*p)[a % pageBytes]) << (8 * i);
    }
    return val;
}

void
Memory::write(Addr addr, u64 value, unsigned size)
{
    const u64 pn = addr / pageBytes;
    const unsigned off = addr % pageBytes;
    if (off + size <= pageBytes) {
        if (lastWrite.key != pn + 1) {
            Page *p = &touchPage(pn); // may invalidate the cache...
            lastWrite = Slot{pn + 1, p}; // ...so (re)fill it after
        }
        memcpy(lastWrite.page->data() + off, &value, size);
        return;
    }
    for (unsigned i = 0; i < size; ++i) {
        const Addr a = addr + i;
        touchPage(a / pageBytes)[a % pageBytes] = u8(value >> (8 * i));
    }
}

void
Memory::writeBlock(Addr addr, const std::vector<u8> &bytes)
{
    // Page-wise memcpy: a multi-megabyte program image is reloaded on
    // every emulator reset/restore, where the old per-byte write8()
    // loop dominated checkpoint-restore time.
    size_t i = 0;
    while (i < bytes.size()) {
        const Addr a = addr + i;
        const unsigned off = a % pageBytes;
        const size_t chunk =
            std::min<size_t>(bytes.size() - i, pageBytes - off);
        memcpy(touchPage(a / pageBytes).data() + off, bytes.data() + i,
               chunk);
        i += chunk;
    }
}

std::vector<Memory::PageImage>
Memory::exportMatching(
    const std::function<bool(u64, const Page &)> &keep) const
{
    std::vector<PageImage> out;
    out.reserve(used);
    for (const Slot &s : slots) {
        if (s.key == 0)
            continue;
        const u64 pn = s.key - 1;
        if (!keep(pn, *s.page))
            continue;
        PageImage img;
        img.pageNumber = pn;
        memcpy(img.bytes.data(), s.page->data(), pageBytes);
        out.push_back(std::move(img));
    }
    std::sort(out.begin(), out.end(),
              [](const PageImage &a, const PageImage &b) {
                  return a.pageNumber < b.pageNumber;
              });
    return out;
}

std::vector<Memory::PageImage>
Memory::exportPages() const
{
    return exportMatching([](u64, const Page &) { return true; });
}

std::vector<Memory::PageImage>
Memory::exportPagesDiffImage(Addr image_base,
                             const std::vector<u8> &image) const
{
    static const Page zeroPage = {};
    const auto allZero = [](const u8 *p, size_t n) {
        return memcmp(p, zeroPage.data(), n) == 0;
    };
    // Pristine content of a page is the overlapping slice of the
    // image, zero everywhere else — compared in place, with no
    // reference page constructed.
    return exportMatching([&](u64 pn, const Page &page) {
        const Addr page_start = pn * u64(pageBytes);
        const Addr lo = std::max(page_start, image_base);
        const Addr hi =
            std::min(page_start + pageBytes, image_base + image.size());
        if (lo >= hi) // no image overlap
            return !allZero(page.data(), pageBytes);
        const size_t a = size_t(lo - page_start);
        const size_t b = size_t(hi - page_start);
        if (memcmp(page.data() + a, image.data() + (lo - image_base),
                   b - a) != 0)
            return true;
        return !allZero(page.data(), a) ||
               !allZero(page.data() + b, pageBytes - b);
    });
}

void
Memory::importPages(const std::vector<PageImage> &pages)
{
    for (const PageImage &img : pages)
        memcpy(touchPage(img.pageNumber).data(), img.bytes.data(),
               pageBytes);
}

bool
Memory::contentEquals(const Memory &other) const
{
    static const Page zeroPage = {};
    auto covered = [](const Memory &a, const Memory &b) {
        for (const Slot &s : a.slots) {
            if (s.key == 0)
                continue;
            const Page *rhs = b.lookupPage(s.key - 1);
            if (!rhs)
                rhs = &zeroPage;
            if (memcmp(s.page->data(), rhs->data(), pageBytes) != 0)
                return false;
        }
        return true;
    };
    return covered(*this, other) && covered(other, *this);
}

} // namespace rix
