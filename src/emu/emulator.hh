/**
 * @file
 * In-order functional emulator.
 *
 * Executes a Program architecturally, one instruction per step. Three
 * consumers:
 *   1. standalone golden-model runs (tests, workload validation),
 *   2. the DIVA checker, which steps the emulator in lockstep with
 *      retirement and compares every result the out-of-order core
 *      produced (mis-integration detection),
 *   3. examples that want architectural traces.
 */

#ifndef RIX_EMU_EMULATOR_HH
#define RIX_EMU_EMULATOR_HH

#include <vector>

#include "assembler/program.hh"
#include "base/cancel.hh"
#include "emu/checkpoint.hh"
#include "emu/memory.hh"

namespace rix
{

/** Pure ALU function: computes an instruction's result value.
 *
 * @param inst the instruction (must have a destination or be a store)
 * @param a    value of src1 (ra), zero if unused
 * @param b    value of src2 (rb), zero if unused
 * @return destination value (for stores: the store data, i.e. b)
 */
u64 aluCompute(const Instruction &inst, u64 a, u64 b);

/** Branch condition evaluation for conditional branches. */
bool branchTaken(const Instruction &inst, u64 a);

/** Result of one architectural step, for tracing and DIVA comparison. */
struct StepResult
{
    InstAddr pc = 0;
    Instruction inst;
    InstAddr nextPc = 0;
    bool wroteReg = false;
    LogReg destReg = regZero;
    u64 destValue = 0;
    bool isMemAccess = false;
    Addr memAddr = 0;
    bool halted = false;
};

class Emulator
{
  public:
    explicit Emulator(const Program &prog);

    /** Reset architectural state to the program's initial image. */
    void reset();

    /** Rebind to @p prog and reset — the reusable-context path: the
     *  sparse memory's page allocations survive across programs. */
    void reset(const Program &prog);

    /**
     * Capture the full architectural state at the current point.
     * @param diff_vs_image  store only the memory pages that differ
     *        from the program's initial data image (compact; the
     *        default) instead of every materialized page
     */
    Checkpoint snapshot(bool diff_vs_image = true) const;

    /**
     * Resume from @p c (which must have been taken on this emulator's
     * current program): subsequent steps are bit-identical to the run
     * the snapshot was taken from.
     */
    void restore(const Checkpoint &c);

    /** Rebind to @p prog, then restore — the reusable-context path
     *  (a checkpoint taken on A stays restorable after reset(B)). */
    void restore(const Program &prog, const Checkpoint &c);

    /** Execute one instruction; no-op (halted result) after HALT. */
    StepResult step();

    /**
     * Compute the next step's effects without committing them (the DIVA
     * checker's comparison path). commit() applies a previewed step.
     */
    StepResult preview() const;
    void commit(const StepResult &res);

    /**
     * Run until HALT or @p max_steps; returns instructions executed.
     * When @p cancel is non-null it is polled every 4096 steps and a
     * fired token stops the run early (the watchdog's grip on
     * functional fast-forward, which can otherwise spin forever on a
     * non-halting program). Check halted()/the token to distinguish.
     */
    u64 run(u64 max_steps = 100'000'000,
            const CancelToken *cancel = nullptr);

    bool halted() const { return isHalted; }
    InstAddr pc() const { return pcReg; }
    u64 reg(LogReg r) const { return r == regZero ? 0 : regs[r]; }
    void setReg(LogReg r, u64 v);
    const Memory &memory() const { return mem; }
    Memory &memory() { return mem; }
    u64 instsExecuted() const { return icount; }

    /** Values emitted via SyscallCode::Emit, in order. */
    const std::vector<u64> &output() const { return out; }

    const Program &program() const { return *prog; }

  private:
    const Program *prog; // never null; rebindable via reset(Program)
    Memory mem;
    u64 regs[numLogRegs] = {};
    InstAddr pcReg = 0;
    bool isHalted = false;
    u64 icount = 0;
    std::vector<u64> out;
};

} // namespace rix

#endif // RIX_EMU_EMULATOR_HH
