/**
 * @file
 * In-order functional emulator.
 *
 * Executes a Program architecturally, one instruction per step. Three
 * consumers:
 *   1. standalone golden-model runs (tests, workload validation),
 *   2. the DIVA checker, which steps the emulator in lockstep with
 *      retirement and compares every result the out-of-order core
 *      produced (mis-integration detection),
 *   3. examples that want architectural traces.
 *
 * Execution core: by default every path runs on the program's
 * pre-decoded form (isa/decoded.hh) — step()/preview() read
 * pre-resolved operands instead of re-deriving traits, and run()
 * executes whole straight-line basic blocks through a dense
 * handler-indexed dispatch (computed goto under GCC/Clang, a switch
 * elsewhere), checking halt/fault/budget only at block boundaries and
 * polling the cancel token at the documented <= 4096-step granularity.
 * RIX_DECODE=0 selects the legacy decode-per-step loop (kept verbatim
 * for one release as the escape hatch and as the differential
 * reference); both produce bit-identical StepResult streams and
 * architectural state.
 *
 * Stores that land in the program image (the immutable text segment,
 * byte addresses below codeSize * instructionBytes) raise a structured
 * EmuFault instead of corrupting the decoded form: the store does not
 * happen, pc/icount freeze at the faulting instruction, and
 * step()/run() refuse to execute further. Job layers surface the fault
 * as a contained per-job failure, never a panic.
 */

#ifndef RIX_EMU_EMULATOR_HH
#define RIX_EMU_EMULATOR_HH

#include <memory>
#include <string>
#include <vector>

#include "assembler/program.hh"
#include "base/cancel.hh"
#include "emu/checkpoint.hh"
#include "emu/memory.hh"

namespace rix
{

/** Result of one architectural step, for tracing and DIVA comparison. */
struct StepResult
{
    InstAddr pc = 0;
    Instruction inst;
    InstAddr nextPc = 0;
    bool wroteReg = false;
    LogReg destReg = regZero;
    u64 destValue = 0;
    bool isMemAccess = false;
    Addr memAddr = 0;
    bool halted = false;
};

/** Structured emulator fault (JobStatus-style data, not a panic). */
struct EmuFault
{
    bool faulted = false;
    InstAddr pc = 0;   // the faulting (not executed) instruction
    Addr addr = 0;     // the offending store's effective address

    /** One-line human-readable description. */
    std::string describe() const;
};

class Emulator
{
  public:
    explicit Emulator(const Program &prog);

    /** Reset architectural state to the program's initial image. */
    void reset();

    /** Rebind to @p prog and reset — the reusable-context path: the
     *  sparse memory's page allocations survive across programs. */
    void reset(const Program &prog);

    /**
     * Capture the full architectural state at the current point.
     * @param diff_vs_image  store only the memory pages that differ
     *        from the program's initial data image (compact; the
     *        default) instead of every materialized page
     */
    Checkpoint snapshot(bool diff_vs_image = true) const;

    /**
     * Resume from @p c (which must have been taken on this emulator's
     * current program): subsequent steps are bit-identical to the run
     * the snapshot was taken from.
     */
    void restore(const Checkpoint &c);

    /** Rebind to @p prog, then restore — the reusable-context path
     *  (a checkpoint taken on A stays restorable after reset(B)). */
    void restore(const Program &prog, const Checkpoint &c);

    /** Execute one instruction; no-op (halted result) after HALT. */
    StepResult step();

    /**
     * Compute the next step's effects without committing them (the DIVA
     * checker's comparison path). commit() applies a previewed step.
     */
    StepResult preview() const;
    void commit(const StepResult &res);

    /**
     * Run until HALT or @p max_steps; returns instructions executed.
     * When @p cancel is non-null it is polled every 4096 steps and a
     * fired token stops the run early (the watchdog's grip on
     * functional fast-forward, which can otherwise spin forever on a
     * non-halting program). Check halted()/the token to distinguish.
     */
    u64 run(u64 max_steps = 100'000'000,
            const CancelToken *cancel = nullptr);

    bool halted() const { return isHalted; }
    InstAddr pc() const { return pcReg; }
    u64 reg(LogReg r) const { return r == regZero ? 0 : regs[r]; }
    void setReg(LogReg r, u64 v);
    const Memory &memory() const { return mem; }
    Memory &memory() { return mem; }
    u64 instsExecuted() const { return icount; }

    /** True after a store hit the immutable text segment; pc() names
     *  the faulting instruction, which did not execute. */
    bool faulted() const { return fault_.faulted; }
    const EmuFault &fault() const { return fault_; }

    /** Values emitted via SyscallCode::Emit, in order. */
    const std::vector<u64> &output() const { return out; }

    const Program &program() const { return *prog; }

    /** True when this emulator runs on the pre-decoded form (tests). */
    bool usesDecoded() const { return dec_ != nullptr; }

  private:
    // ---- legacy decode-per-step path (RIX_DECODE=0; also the
    //      differential reference the decoded path is tested against) ----
    StepResult previewLegacy() const;
    u64 runLegacy(u64 max_steps, const CancelToken *cancel);

    // ---- pre-decoded path ----
    StepResult previewDecoded() const;
    /** Execute up to @p limit instructions block-at-a-time; stops at
     *  HALT or fault. Updates pc/icount; returns instructions run. */
    u64 runDecoded(u64 limit);
    /** Straight-line dispatch over @p count non-control instructions
     *  starting at @p d; returns @p count, or fewer on a text fault. */
    u64 execStraight(const DecodedInst *d, u64 count);
    /** Full one-instruction dispatch (block terminators); updates
     *  pc/halt; false on a text fault. */
    bool execFull(const DecodedInst &d);
    void raiseTextFault(InstAddr at, Addr addr);

    const Program *prog; // never null; rebindable via reset(Program)
    // Keeps the decoded form alive independently of the Program's own
    // cache (null on the RIX_DECODE=0 legacy path).
    std::shared_ptr<const DecodedProgram> dec_;
    Memory mem;
    // Slot [numLogRegs] is the decoded dispatch's write sink (see
    // emuRegSink): never read, snapshotted, restored or compared.
    u64 regs[numLogRegs + 1] = {};
    InstAddr pcReg = 0;
    Addr textLimit_ = 0;
    bool isHalted = false;
    EmuFault fault_;
    u64 icount = 0;
    std::vector<u64> out;
};

} // namespace rix

#endif // RIX_EMU_EMULATOR_HH
