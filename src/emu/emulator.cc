#include "emu/emulator.hh"

#include "base/log.hh"
#include "trace/profiler.hh"

namespace rix
{

std::string
EmuFault::describe() const
{
    if (!faulted)
        return "no fault";
    return strfmt("text-write fault: store to 0x%llx at pc %llu (the "
                  "program image is immutable)",
                  (unsigned long long)addr, (unsigned long long)pc);
}

Emulator::Emulator(const Program &p) : prog(&p)
{
    reset();
}

void
Emulator::reset()
{
    mem.clear();
    mem.writeBlock(prog->dataBase, prog->data);
    for (auto &r : regs)
        r = 0;
    regs[regSp] = prog->stackBase;
    regs[regGp] = prog->dataBase;
    pcReg = prog->entry;
    isHalted = false;
    fault_ = EmuFault{};
    icount = 0;
    out.clear();
    textLimit_ = Addr(prog->code.size()) * instructionBytes;
    // The RIX_DECODE escape hatch is re-evaluated at every reset, like
    // RIX_CHECK: a reusable context honors the current environment.
    dec_ = emulatorDecodeFromEnv() ? prog->decodedShared() : nullptr;
}

void
Emulator::reset(const Program &p)
{
    prog = &p;
    reset();
}

Checkpoint
Emulator::snapshot(bool diff_vs_image) const
{
    ScopedPhase timer(HostPhase::CheckpointBuild);
    Checkpoint c;
    c.icount = icount;
    c.pc = pcReg;
    c.halted = isHalted;
    for (unsigned r = 0; r < numLogRegs; ++r)
        c.regs[r] = regs[r];
    c.output = out;
    c.diffVsImage = diff_vs_image;
    if (diff_vs_image) {
        // Diff against the pristine post-reset image: pages the run
        // never changed (the bulk of a large data segment) are
        // omitted and come back from the image on restore.
        c.pages = mem.exportPagesDiffImage(prog->dataBase, prog->data);
    } else {
        c.pages = mem.exportPages();
    }
    return c;
}

void
Emulator::restore(const Checkpoint &c)
{
    ScopedPhase timer(HostPhase::CheckpointRestore);
    if (c.diffVsImage) {
        reset(); // reload the program image...
        mem.importPages(c.pages); // ...then overlay the diff
    } else {
        mem.clear();
        mem.importPages(c.pages);
        textLimit_ = Addr(prog->code.size()) * instructionBytes;
        dec_ = emulatorDecodeFromEnv() ? prog->decodedShared() : nullptr;
        fault_ = EmuFault{};
    }
    for (unsigned r = 0; r < numLogRegs; ++r)
        regs[r] = c.regs[r];
    pcReg = c.pc;
    isHalted = c.halted;
    icount = c.icount;
    out = c.output;
}

void
Emulator::restore(const Program &p, const Checkpoint &c)
{
    prog = &p;
    restore(c);
}

void
Emulator::setReg(LogReg r, u64 v)
{
    if (r != regZero)
        regs[r] = v;
}

void
Emulator::raiseTextFault(InstAddr at, Addr addr)
{
    fault_.faulted = true;
    fault_.pc = at;
    fault_.addr = addr;
}

// ---------------------------------------------------------------------
// Preview/commit: the DIVA split. preview() computes one step's
// effects, commit() applies them; both run on the decoded form by
// default, with the legacy trait-deriving preview kept under
// RIX_DECODE=0. The two previews are bit-identical field for field.
// ---------------------------------------------------------------------

StepResult
Emulator::preview() const
{
    return dec_ ? previewDecoded() : previewLegacy();
}

StepResult
Emulator::previewDecoded() const
{
    StepResult res;
    res.pc = pcReg;
    if (isHalted) {
        res.halted = true;
        return res;
    }
    if (fault_.faulted)
        return res;

    const DecodedInst &d = dec_->fetch(pcReg);
    res.inst = d.inst;
    InstAddr next = pcReg + 1;

    // Pre-resolved sources: unused sources read the (never-written)
    // zero register, so no trait checks are needed.
    const u64 a = regs[d.src1];
    const u64 b = regs[d.src2];

    switch (InstClass(d.cls)) {
      case InstClass::SimpleInt:
      case InstClass::ComplexInt:
      case InstClass::FloatOp:
        res.destValue = aluCompute(d.inst, a, b);
        res.wroteReg = d.writesReg();
        break;
      case InstClass::Load: {
        const Addr addr = a + u64(s64(d.imm));
        res.isMemAccess = true;
        res.memAddr = addr;
        res.destValue = loadValue(d.inst.op, mem.read(addr, d.size));
        res.wroteReg = d.writesReg();
        break;
      }
      case InstClass::Store: {
        const Addr addr = a + u64(s64(d.imm));
        res.isMemAccess = true;
        res.memAddr = addr;
        res.destValue = b; // the stored data
        break;
      }
      case InstClass::Branch:
        if (branchTaken(d.inst, a))
            next = InstAddr(d.target);
        break;
      case InstClass::Jump:
        next = InstAddr(d.target);
        break;
      case InstClass::Call:
        res.destValue = pcReg + 1;
        res.wroteReg = d.writesReg();
        next = InstAddr(d.target);
        break;
      case InstClass::IndirectJump:
      case InstClass::Return:
        next = InstAddr(a);
        break;
      case InstClass::Syscall:
        res.destValue = 0;
        res.wroteReg = d.writesReg();
        break;
      case InstClass::Nop:
        break;
      case InstClass::Halt:
        res.halted = true;
        next = pcReg;
        break;
    }

    if (res.wroteReg)
        res.destReg = d.inst.rc;
    res.nextPc = next;
    return res;
}

StepResult
Emulator::previewLegacy() const
{
    StepResult res;
    res.pc = pcReg;
    if (isHalted) {
        res.halted = true;
        return res;
    }
    if (fault_.faulted)
        return res;

    const Instruction inst = prog->fetch(pcReg);
    res.inst = inst;
    InstAddr next = pcReg + 1;

    const u64 a = reg(inst.src1());
    const u64 b = reg(inst.src2());

    switch (inst.cls()) {
      case InstClass::SimpleInt:
      case InstClass::ComplexInt:
      case InstClass::FloatOp:
        res.destValue = aluCompute(inst, a, b);
        res.wroteReg = inst.writesReg();
        break;
      case InstClass::Load: {
        const Addr addr = a + u64(s64(inst.imm));
        res.isMemAccess = true;
        res.memAddr = addr;
        u64 v = mem.read(addr, inst.accessSize());
        if (inst.op == Opcode::LDL)
            v = u64(s64(s32(u32(v))));
        res.destValue = v;
        res.wroteReg = inst.writesReg();
        break;
      }
      case InstClass::Store: {
        const Addr addr = a + u64(s64(inst.imm));
        res.isMemAccess = true;
        res.memAddr = addr;
        res.destValue = b; // the stored data
        break;
      }
      case InstClass::Branch:
        if (branchTaken(inst, a))
            next = InstAddr(u32(inst.imm));
        break;
      case InstClass::Jump:
        next = InstAddr(u32(inst.imm));
        break;
      case InstClass::Call:
        res.destValue = pcReg + 1;
        res.wroteReg = inst.writesReg();
        next = InstAddr(u32(inst.imm));
        break;
      case InstClass::IndirectJump:
      case InstClass::Return:
        next = InstAddr(a);
        break;
      case InstClass::Syscall:
        res.destValue = 0;
        res.wroteReg = inst.writesReg();
        break;
      case InstClass::Nop:
        break;
      case InstClass::Halt:
        res.halted = true;
        next = pcReg;
        break;
    }

    if (res.wroteReg)
        res.destReg = inst.rc;
    res.nextPc = next;
    return res;
}

void
Emulator::commit(const StepResult &res)
{
    if (isHalted || fault_.faulted)
        return;
    const Instruction &inst = res.inst;
    if (inst.isStore()) {
        if (res.memAddr < textLimit_) {
            // Immutable text: the store does not happen; pc and icount
            // freeze at the faulting instruction.
            raiseTextFault(res.pc, res.memAddr);
            return;
        }
        mem.write(res.memAddr, res.destValue, inst.accessSize());
    } else if (inst.isSyscall() &&
               SyscallCode(inst.imm) == SyscallCode::Emit) {
        out.push_back(reg(inst.src1()));
    } else if (inst.isHalt()) {
        isHalted = true;
    }
    if (res.wroteReg)
        setReg(res.destReg, res.destValue);
    pcReg = res.nextPc;
    ++icount;
}

StepResult
Emulator::step()
{
    if (isHalted) {
        StepResult res;
        res.pc = pcReg;
        res.halted = true;
        return res;
    }
    if (fault_.faulted) {
        StepResult res;
        res.pc = pcReg;
        return res;
    }
    StepResult res = preview();
    commit(res);
    return res;
}

// ---------------------------------------------------------------------
// The run() fast path: straight-line basic-block execution over the
// decoded form. Handler bodies are generated from the same
// RIX_ALU_SEMANTICS table the out-of-line aluCompute() expands, so
// each opcode's semantics exist exactly once; dispatch is an indirect
// goto through a dense label table under GCC/Clang and a switch
// elsewhere.
// ---------------------------------------------------------------------

#if defined(__GNUC__) || defined(__clang__)
#define RIX_COMPUTED_GOTO 1
#endif

// One straight-line ALU slot: read pre-resolved sources, write the
// pre-resolved destination (the sink slot when the op has none).
#define RIX_ALU_BODY(OP, EXPR) \
    { \
        const u64 a = regs[d->src1]; \
        const u64 b = regs[d->src2]; \
        const s64 sa = s64(a); \
        const s64 sb = s64(b); \
        const s64 imm = d->imm; \
        (void)b; (void)sa; (void)sb; (void)imm; \
        regs[d->dest] = (EXPR); \
    }

u64
Emulator::execStraight(const DecodedInst *d, u64 count)
{
    if (count == 0)
        return 0;
    const DecodedInst *const start = d;
    const DecodedInst *const end = d + count;
    (void)end;

#ifdef RIX_COMPUTED_GOTO
    // Dense dispatch table, indexed by DecodedInst::handler (== the
    // opcode value; RIX_OPCODE_LIST is static_asserted to match the
    // enum order).
    static const void *const handlers[numOpcodes] = {
#define X(OP) &&handle_##OP,
        RIX_OPCODE_LIST(X)
#undef X
    };

#define RIX_NEXT() \
    do { \
        if (++d == end) \
            return count; \
        goto *handlers[d->handler]; \
    } while (0)

    goto *handlers[d->handler];

#define X(OP, EXPR) \
  handle_##OP: \
    RIX_ALU_BODY(OP, EXPR) \
    RIX_NEXT();
    RIX_ALU_SEMANTICS(X)
#undef X

  handle_LDQ: {
        const Addr addr = regs[d->src1] + u64(s64(d->imm));
        regs[d->dest] = mem.read(addr, 8);
    }
    RIX_NEXT();

  handle_LDL: {
        const Addr addr = regs[d->src1] + u64(s64(d->imm));
        regs[d->dest] = u64(s64(s32(u32(mem.read(addr, 4)))));
    }
    RIX_NEXT();

  handle_STQ: {
        const Addr addr = regs[d->src1] + u64(s64(d->imm));
        if (addr < textLimit_)
            goto text_fault;
        mem.write(addr, regs[d->src2], 8);
    }
    RIX_NEXT();

  handle_STL: {
        const Addr addr = regs[d->src1] + u64(s64(d->imm));
        if (addr < textLimit_)
            goto text_fault;
        mem.write(addr, regs[d->src2], 4);
    }
    RIX_NEXT();

  handle_SYSCALL:
    if (SyscallCode(d->imm) == SyscallCode::Emit)
        out.push_back(regs[d->src1]);
    regs[d->dest] = 0;
    RIX_NEXT();

  handle_NOP:
    RIX_NEXT();

  // Block terminators can never sit inside the straight-line portion
  // (the DecodedProgram block-length invariant).
  handle_BR:
  handle_BEQ:
  handle_BNE:
  handle_BLT:
  handle_BGE:
  handle_BGT:
  handle_BLE:
  handle_JSR:
  handle_JMP:
  handle_RET:
  handle_HALT:
    rix_panic("decoded dispatch: control opcode %s inside a "
              "straight-line block", opName(Opcode(d->handler)));

  text_fault:
    raiseTextFault(InstAddr(d - dec_->data()),
                   regs[d->src1] + u64(s64(d->imm)));
    return u64(d - start);

#undef RIX_NEXT
#else // switch fallback
    while (d != end) {
        switch (Opcode(d->handler)) {
#define X(OP, EXPR) \
          case Opcode::OP: \
            RIX_ALU_BODY(OP, EXPR) \
            break;
            RIX_ALU_SEMANTICS(X)
#undef X
          case Opcode::LDQ: {
            const Addr addr = regs[d->src1] + u64(s64(d->imm));
            regs[d->dest] = mem.read(addr, 8);
            break;
          }
          case Opcode::LDL: {
            const Addr addr = regs[d->src1] + u64(s64(d->imm));
            regs[d->dest] = u64(s64(s32(u32(mem.read(addr, 4)))));
            break;
          }
          case Opcode::STQ:
          case Opcode::STL: {
            const Addr addr = regs[d->src1] + u64(s64(d->imm));
            if (addr < textLimit_) {
                raiseTextFault(InstAddr(d - dec_->data()), addr);
                return u64(d - start);
            }
            mem.write(addr, regs[d->src2], d->size);
            break;
          }
          case Opcode::SYSCALL:
            if (SyscallCode(d->imm) == SyscallCode::Emit)
                out.push_back(regs[d->src1]);
            regs[d->dest] = 0;
            break;
          case Opcode::NOP:
            break;
          default:
            rix_panic("decoded dispatch: control opcode %s inside a "
                      "straight-line block",
                      opName(Opcode(d->handler)));
        }
        ++d;
    }
    return count;
#endif
}

bool
Emulator::execFull(const DecodedInst &d)
{
    switch (InstClass(d.cls)) {
      case InstClass::Branch: {
        const s64 sa = s64(regs[d.src1]);
        bool taken;
        switch (Opcode(d.handler)) {
#define X(OP, EXPR) \
          case Opcode::OP: taken = (EXPR); break;
            RIX_BRANCH_SEMANTICS(X)
#undef X
          default:
            rix_panic("decoded dispatch: %s is not a conditional branch",
                      opName(Opcode(d.handler)));
        }
        pcReg = taken ? InstAddr(d.target) : pcReg + 1;
        break;
      }
      case InstClass::Jump:
        pcReg = InstAddr(d.target);
        break;
      case InstClass::Call:
        regs[d.dest] = pcReg + 1; // the link value
        pcReg = InstAddr(d.target);
        break;
      case InstClass::IndirectJump:
      case InstClass::Return:
        pcReg = InstAddr(regs[d.src1]);
        break;
      case InstClass::Halt:
        isHalted = true; // pc freezes at the HALT
        break;
      default:
        // The last slot of an unterminated tail block: an ordinary
        // straight-line op, executed through the same dispatch.
        if (execStraight(&d, 1) != 1)
            return false;
        ++pcReg;
        break;
    }
    return true;
}

u64
Emulator::runDecoded(u64 limit)
{
    const DecodedInst *const base = dec_->data();
    const size_t n = dec_->size();
    u64 done = 0;
    while (done < limit && !isHalted) {
        if (pcReg >= n) {
            // Out-of-range fetch decodes as NOP forever, and the
            // 64-bit pc only ever increments out here — it can never
            // wrap back into the code segment. Batch the remaining
            // budget in one addition.
            const u64 k = limit - done;
            pcReg += k;
            done += k;
            break;
        }
        const DecodedInst &d0 = base[pcReg];
        const u64 avail = limit - done;
        u64 straight = d0.blockLen - 1;
        if (straight > avail)
            straight = avail;
        if (straight) {
            const u64 ran = execStraight(&d0, straight);
            pcReg += ran;
            done += ran;
            if (ran != straight)
                break; // text fault inside the block
        }
        if (done < limit) {
            if (!execFull(base[pcReg]))
                break; // text fault at the block end
            ++done;
        }
    }
    icount += done;
    return done;
}

u64
Emulator::run(u64 max_steps, const CancelToken *cancel)
{
    if (!dec_)
        return runLegacy(max_steps, cancel);

    const u64 start = icount;
    while (!isHalted && !fault_.faulted && icount - start < max_steps) {
        // Same documented cancel-poll bound as the legacy loop: the
        // (clock-reading) poll runs at most once per 4096 executed
        // instructions, between block batches.
        if (cancel && cancel->poll() != CancelReason::None)
            break;
        u64 chunk = max_steps - (icount - start);
        if (chunk > 4096)
            chunk = 4096;
        if (runDecoded(chunk) == 0)
            break;
    }
    return icount - start;
}

u64
Emulator::runLegacy(u64 max_steps, const CancelToken *cancel)
{
    const u64 start = icount;
    while (!isHalted && !fault_.faulted && icount - start < max_steps) {
        // ~4096-step poll granularity: functional stepping is orders
        // of magnitude faster than detailed cycles, so the deadline
        // check stays off the per-instruction path.
        if (cancel && ((icount - start) & 4095) == 0 &&
            cancel->poll() != CancelReason::None)
            break;
        step();
    }
    return icount - start;
}

} // namespace rix
