#include "emu/emulator.hh"

#include "base/log.hh"

namespace rix
{

u64
aluCompute(const Instruction &inst, u64 a, u64 b)
{
    const s64 sa = s64(a);
    const s64 sb = s64(b);
    const s64 imm = inst.imm;
    switch (inst.op) {
      case Opcode::ADDQ: return a + b;
      case Opcode::SUBQ: return a - b;
      case Opcode::AND: return a & b;
      case Opcode::BIS: return a | b;
      case Opcode::XOR: return a ^ b;
      case Opcode::SLL: return a << (b & 63);
      case Opcode::SRL: return a >> (b & 63);
      case Opcode::SRA: return u64(sa >> (b & 63));
      case Opcode::CMPEQ: return a == b;
      case Opcode::CMPLT: return sa < sb;
      case Opcode::CMPLE: return sa <= sb;
      case Opcode::ADDQI: return a + u64(imm);
      case Opcode::SUBQI: return a - u64(imm);
      case Opcode::ANDI: return a & u64(imm);
      case Opcode::BISI: return a | u64(imm);
      case Opcode::XORI: return a ^ u64(imm);
      case Opcode::SLLI: return a << (imm & 63);
      case Opcode::SRLI: return a >> (imm & 63);
      case Opcode::SRAI: return u64(sa >> (imm & 63));
      case Opcode::CMPEQI: return sa == imm;
      case Opcode::CMPLTI: return sa < imm;
      case Opcode::CMPLEI: return sa <= imm;
      case Opcode::LDA: return a + u64(imm);
      case Opcode::MULQ: return a * b;
      case Opcode::MULQI: return a * u64(imm);
      case Opcode::DIVQ:
        if (sb == 0)
            return 0;
        if (sa == INT64_MIN && sb == -1)
            return a;
        return u64(sa / sb);
      // FP-class: fixed-point substitutes (documented in DESIGN.md).
      case Opcode::FADD: return a + b;
      case Opcode::FMUL: return u64((sa * sb) >> 8);
      case Opcode::FDIV:
        if (sb == 0)
            return 0;
        if (sa == INT64_MIN && sb == -1)
            return a;
        return u64((sa << 8) / sb);
      case Opcode::JSR: return 0; // link value is PC-relative, set by caller
      case Opcode::SYSCALL: return 0;
      default:
        rix_panic("aluCompute: %s has no ALU function",
                  opName(inst.op));
    }
}

bool
branchTaken(const Instruction &inst, u64 a)
{
    const s64 sa = s64(a);
    switch (inst.op) {
      case Opcode::BEQ: return sa == 0;
      case Opcode::BNE: return sa != 0;
      case Opcode::BLT: return sa < 0;
      case Opcode::BGE: return sa >= 0;
      case Opcode::BGT: return sa > 0;
      case Opcode::BLE: return sa <= 0;
      default:
        rix_panic("branchTaken: %s is not a conditional branch",
                  opName(inst.op));
    }
}

Emulator::Emulator(const Program &p) : prog(&p)
{
    reset();
}

void
Emulator::reset()
{
    mem.clear();
    mem.writeBlock(prog->dataBase, prog->data);
    for (auto &r : regs)
        r = 0;
    regs[regSp] = prog->stackBase;
    regs[regGp] = prog->dataBase;
    pcReg = prog->entry;
    isHalted = false;
    icount = 0;
    out.clear();
}

void
Emulator::reset(const Program &p)
{
    prog = &p;
    reset();
}

Checkpoint
Emulator::snapshot(bool diff_vs_image) const
{
    Checkpoint c;
    c.icount = icount;
    c.pc = pcReg;
    c.halted = isHalted;
    for (unsigned r = 0; r < numLogRegs; ++r)
        c.regs[r] = regs[r];
    c.output = out;
    c.diffVsImage = diff_vs_image;
    if (diff_vs_image) {
        // Diff against the pristine post-reset image: pages the run
        // never changed (the bulk of a large data segment) are
        // omitted and come back from the image on restore.
        c.pages = mem.exportPagesDiffImage(prog->dataBase, prog->data);
    } else {
        c.pages = mem.exportPages();
    }
    return c;
}

void
Emulator::restore(const Checkpoint &c)
{
    if (c.diffVsImage) {
        reset(); // reload the program image...
        mem.importPages(c.pages); // ...then overlay the diff
    } else {
        mem.clear();
        mem.importPages(c.pages);
    }
    for (unsigned r = 0; r < numLogRegs; ++r)
        regs[r] = c.regs[r];
    pcReg = c.pc;
    isHalted = c.halted;
    icount = c.icount;
    out = c.output;
}

void
Emulator::restore(const Program &p, const Checkpoint &c)
{
    prog = &p;
    restore(c);
}

void
Emulator::setReg(LogReg r, u64 v)
{
    if (r != regZero)
        regs[r] = v;
}

StepResult
Emulator::preview() const
{
    StepResult res;
    res.pc = pcReg;
    if (isHalted) {
        res.halted = true;
        return res;
    }

    const Instruction inst = prog->fetch(pcReg);
    res.inst = inst;
    InstAddr next = pcReg + 1;

    const u64 a = reg(inst.src1());
    const u64 b = reg(inst.src2());

    switch (inst.cls()) {
      case InstClass::SimpleInt:
      case InstClass::ComplexInt:
      case InstClass::FloatOp:
        res.destValue = aluCompute(inst, a, b);
        res.wroteReg = inst.writesReg();
        break;
      case InstClass::Load: {
        const Addr addr = a + u64(s64(inst.imm));
        res.isMemAccess = true;
        res.memAddr = addr;
        u64 v = mem.read(addr, inst.accessSize());
        if (inst.op == Opcode::LDL)
            v = u64(s64(s32(u32(v))));
        res.destValue = v;
        res.wroteReg = inst.writesReg();
        break;
      }
      case InstClass::Store: {
        const Addr addr = a + u64(s64(inst.imm));
        res.isMemAccess = true;
        res.memAddr = addr;
        res.destValue = b; // the stored data
        break;
      }
      case InstClass::Branch:
        if (branchTaken(inst, a))
            next = InstAddr(u32(inst.imm));
        break;
      case InstClass::Jump:
        next = InstAddr(u32(inst.imm));
        break;
      case InstClass::Call:
        res.destValue = pcReg + 1;
        res.wroteReg = inst.writesReg();
        next = InstAddr(u32(inst.imm));
        break;
      case InstClass::IndirectJump:
      case InstClass::Return:
        next = InstAddr(a);
        break;
      case InstClass::Syscall:
        res.destValue = 0;
        res.wroteReg = inst.writesReg();
        break;
      case InstClass::Nop:
        break;
      case InstClass::Halt:
        res.halted = true;
        next = pcReg;
        break;
    }

    if (res.wroteReg)
        res.destReg = inst.rc;
    res.nextPc = next;
    return res;
}

void
Emulator::commit(const StepResult &res)
{
    if (isHalted)
        return;
    const Instruction &inst = res.inst;
    if (inst.isStore()) {
        mem.write(res.memAddr, res.destValue, inst.accessSize());
    } else if (inst.isSyscall() &&
               SyscallCode(inst.imm) == SyscallCode::Emit) {
        out.push_back(reg(inst.src1()));
    } else if (inst.isHalt()) {
        isHalted = true;
    }
    if (res.wroteReg)
        setReg(res.destReg, res.destValue);
    pcReg = res.nextPc;
    ++icount;
}

StepResult
Emulator::step()
{
    if (isHalted) {
        StepResult res;
        res.pc = pcReg;
        res.halted = true;
        return res;
    }
    StepResult res = preview();
    commit(res);
    return res;
}

u64
Emulator::run(u64 max_steps, const CancelToken *cancel)
{
    const u64 start = icount;
    while (!isHalted && icount - start < max_steps) {
        // ~4096-step poll granularity: functional stepping is orders
        // of magnitude faster than detailed cycles, so the deadline
        // check stays off the per-instruction path.
        if (cancel && ((icount - start) & 4095) == 0 &&
            cancel->poll() != CancelReason::None)
            break;
        step();
    }
    return icount - start;
}

} // namespace rix
