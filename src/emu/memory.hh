/**
 * @file
 * Sparse byte-addressed simulated memory.
 *
 * Backed by 4 KiB pages allocated on first touch; untouched memory reads
 * as zero. This makes wrong-path accesses (which may compute arbitrary
 * addresses) safe and deterministic.
 *
 * Hot-path layout: page lookup goes through a two-entry last-page
 * cache (one slot for the read stream, one for the write stream — the
 * I/D split of a real L0) in front of an open-addressed, power-of-two
 * flat table mapping page number -> page. The common same-page access
 * costs one compare plus the memcpy; a cache miss costs a short linear
 * probe with no allocator traffic. Page storage itself is stable (the
 * table rehash moves 16-byte slots, never the 4 KiB pages), so cached
 * page pointers survive materialization of other pages; the cache is
 * nevertheless invalidated on clear() and on every materialization.
 */

#ifndef RIX_EMU_MEMORY_HH
#define RIX_EMU_MEMORY_HH

#include <array>
#include <functional>
#include <memory>
#include <vector>

#include "base/types.hh"

namespace rix
{

class Memory
{
  public:
    static constexpr unsigned pageBytes = 4096;

    /** One materialized page in an exported snapshot. */
    struct PageImage
    {
        u64 pageNumber = 0;
        std::array<u8, pageBytes> bytes{};
    };

    Memory() { resetTable(); }

    /** Read @p size (1/2/4/8) bytes, little-endian. */
    u64 read(Addr addr, unsigned size) const;

    /** Write the low @p size bytes of @p value, little-endian. */
    void write(Addr addr, u64 value, unsigned size);

    u64 read64(Addr a) const { return read(a, 8); }
    u32 read32(Addr a) const { return u32(read(a, 4)); }
    u8 read8(Addr a) const { return u8(read(a, 1)); }
    void write64(Addr a, u64 v) { write(a, v, 8); }
    void write32(Addr a, u32 v) { write(a, v, 4); }
    void write8(Addr a, u8 v) { write(a, v, 1); }

    /** Bulk image load (program data segments). */
    void writeBlock(Addr addr, const std::vector<u8> &bytes);

    /** Number of materialized pages. */
    size_t numPages() const { return used; }

    /** Deep content comparison (only materialized, non-zero bytes). */
    bool contentEquals(const Memory &other) const;

    /**
     * Export every materialized page, sorted by page number (so the
     * result is deterministic regardless of touch order) — the full
     * (self-contained) form of a checkpoint snapshot.
     */
    std::vector<PageImage> exportPages() const;

    /**
     * Export only the pages whose content differs from a pristine
     * image of @p image loaded at @p image_base (bytes outside it
     * compare as zero) — the compact diff-vs-image checkpoint form,
     * computed in place without materializing a reference memory.
     */
    std::vector<PageImage>
    exportPagesDiffImage(Addr image_base,
                         const std::vector<u8> &image) const;

    /** Overlay @p pages onto the current content (whole-page copies;
     *  absent pages are untouched). */
    void importPages(const std::vector<PageImage> &pages);

    void clear();

  private:
    using Page = std::array<u8, pageBytes>;

    /** One open-addressing slot; key is pageNumber+1 so 0 means empty
     *  (page 0 is a perfectly valid page). */
    struct Slot
    {
        u64 key = 0;
        Page *page = nullptr;
    };

    static u64
    mix(u64 pn)
    {
        return (pn * 0x9e3779b97f4a7c15ull) >> 32;
    }

    Page *lookupPage(u64 pn) const;
    Page &touchPage(u64 pn);

    /** Shared export loop: copy out every materialized page @p keep
     *  accepts, sorted by page number. */
    std::vector<PageImage>
    exportMatching(const std::function<bool(u64, const Page &)> &keep) const;
    void resetTable();
    void grow();

    void
    invalidateCache() const
    {
        lastRead.key = 0;
        lastWrite.key = 0;
    }

    std::vector<Slot> slots; // power-of-two; load factor kept <= 1/2
    std::vector<std::unique_ptr<Page>> store; // page ownership, stable
    // Pages recycled by clear(): a reused simulation context touches
    // roughly the same working set, so the 4 KiB allocations are kept
    // and re-zeroed instead of going back to the heap per run.
    std::vector<std::unique_ptr<Page>> freePages;
    size_t mask = 0;
    size_t used = 0;

    // Last-page cache (mutable: read() is logically const).
    mutable Slot lastRead;
    mutable Slot lastWrite;
};

} // namespace rix

#endif // RIX_EMU_MEMORY_HH
