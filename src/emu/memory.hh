/**
 * @file
 * Sparse byte-addressed simulated memory.
 *
 * Backed by 4 KiB pages allocated on first touch; untouched memory reads
 * as zero. This makes wrong-path accesses (which may compute arbitrary
 * addresses) safe and deterministic.
 */

#ifndef RIX_EMU_MEMORY_HH
#define RIX_EMU_MEMORY_HH

#include <array>
#include <memory>
#include <unordered_map>
#include <vector>

#include "base/types.hh"

namespace rix
{

class Memory
{
  public:
    static constexpr unsigned pageBytes = 4096;

    /** Read @p size (1/2/4/8) bytes, little-endian. */
    u64 read(Addr addr, unsigned size) const;

    /** Write the low @p size bytes of @p value, little-endian. */
    void write(Addr addr, u64 value, unsigned size);

    u64 read64(Addr a) const { return read(a, 8); }
    u32 read32(Addr a) const { return u32(read(a, 4)); }
    u8 read8(Addr a) const { return u8(read(a, 1)); }
    void write64(Addr a, u64 v) { write(a, v, 8); }
    void write32(Addr a, u32 v) { write(a, v, 4); }
    void write8(Addr a, u8 v) { write(a, v, 1); }

    /** Bulk image load (program data segments). */
    void writeBlock(Addr addr, const std::vector<u8> &bytes);

    /** Number of materialized pages. */
    size_t numPages() const { return pages.size(); }

    /** Deep content comparison (only materialized, non-zero bytes). */
    bool contentEquals(const Memory &other) const;

    void clear() { pages.clear(); }

  private:
    using Page = std::array<u8, pageBytes>;

    const Page *findPage(Addr addr) const;
    Page &touchPage(Addr addr);

    std::unordered_map<u64, std::unique_ptr<Page>> pages;
};

} // namespace rix

#endif // RIX_EMU_MEMORY_HH
