/**
 * @file
 * Architectural checkpoint: everything needed to resume a program's
 * execution at a given point of its (deterministic) architectural
 * instruction stream — the PC, the logical register file, the halted
 * flag, the emitted-output log, and a snapshot of the sparse memory.
 *
 * Two memory forms:
 *
 *  - full: every materialized page (self-contained; restorable onto a
 *    cleared memory with no program image);
 *  - diff-vs-image (the default, and much more compact): only the
 *    pages whose content differs from the program's initial data
 *    image. Restoring first reloads the image, then overlays the diff.
 *
 * Checkpoints are produced by Emulator::snapshot() and consumed by
 * Emulator::restore() (functional resume) and by Core::reset()
 * (detailed resume: the restored emulator becomes the DIVA golden
 * state and fetch starts at the checkpoint PC). Both resume paths are
 * bit-exact: continuing from restore(snapshot()) is indistinguishable
 * from never having stopped — tests/test_checkpoint.cc enforces it.
 */

#ifndef RIX_EMU_CHECKPOINT_HH
#define RIX_EMU_CHECKPOINT_HH

#include <array>
#include <vector>

#include "emu/memory.hh"
#include "isa/regs.hh"

namespace rix
{

struct Checkpoint
{
    /** Architectural instructions executed up to this point. */
    u64 icount = 0;

    InstAddr pc = 0;
    bool halted = false;
    std::array<u64, numLogRegs> regs{};

    /** Values emitted via SyscallCode::Emit so far, in order. */
    std::vector<u64> output;

    /** True: pages are a diff against the program's initial image. */
    bool diffVsImage = false;
    std::vector<Memory::PageImage> pages;

    /** Snapshot payload size (compactness introspection; tests). */
    size_t
    memoryBytes() const
    {
        return pages.size() * sizeof(Memory::PageImage);
    }
};

} // namespace rix

#endif // RIX_EMU_CHECKPOINT_HH
