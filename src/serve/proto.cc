#include "serve/proto.hh"

#include "base/json.hh"
#include "sim/scenario.hh"

namespace rix
{

namespace
{

std::string
coerceCountField(const char *name, const JsonValue &v, u64 min, u64 *out)
{
    u64 tmp = 0;
    const std::string err = jsonCoerceCount(v, ~u64(0), &tmp);
    if (!err.empty())
        return std::string("'") + name + "': " + err;
    if (tmp < min)
        return std::string("'") + name + "': must be >= " +
               std::to_string(min);
    *out = tmp;
    return "";
}

} // namespace

std::string
parseServeRequest(const std::string &line, ServeRequest *out)
{
    std::string err;
    const JsonValue doc = JsonValue::parse(line, &err);
    if (!err.empty())
        return err;
    if (!doc.isObject())
        return "request must be a JSON object";

    const JsonValue *op = doc.find("op");
    if (!op || !op->isString())
        return "missing string 'op'";

    *out = ServeRequest{};
    if (const JsonValue *id = doc.find("id"))
        out->id = id->dump();

    const std::string &opName = op->asString();
    if (opName == "ping") {
        out->op = ServeRequest::Op::Ping;
        return "";
    }
    if (opName == "stats") {
        out->op = ServeRequest::Op::Stats;
        return "";
    }
    if (opName == "shutdown") {
        out->op = ServeRequest::Op::Shutdown;
        return "";
    }
    if (opName != "run")
        return "unknown op '" + opName + "' (ping|run|stats|shutdown)";

    out->op = ServeRequest::Op::Run;
    SimJob &job = out->job;
    bool sawWorkload = false;
    for (const auto &[key, v] : doc.members()) {
        std::string ferr;
        if (key == "op" || key == "id") {
            // handled above
        } else if (key == "workload") {
            if (!v.isString())
                return "'workload': expected a string";
            job.workload = v.asString();
            sawWorkload = true;
        } else if (key == "scale") {
            ferr = coerceCountField("scale", v, 1, &job.scale);
        } else if (key == "max_retired") {
            ferr = coerceCountField("max_retired", v, 1, &job.maxRetired);
        } else if (key == "max_cycles") {
            ferr = coerceCountField("max_cycles", v, 1, &job.maxCycles);
        } else if (key == "checkpoint_at") {
            ferr = coerceCountField("checkpoint_at", v, 0,
                                    &job.checkpointAt);
        } else if (key == "warmup") {
            ferr = coerceCountField("warmup", v, 0, &job.warmup);
        } else if (key == "timeout_ms") {
            ferr = coerceCountField("timeout_ms", v, 1, &out->timeoutMs);
            out->hasTimeoutMs = ferr.empty();
        } else if (key == "retries") {
            u64 tmp = 0;
            ferr = coerceCountField("retries", v, 0, &tmp);
            if (ferr.empty() && tmp > 100)
                ferr = "'retries': more than 100 retries is not a sane "
                       "budget";
            out->retries = unsigned(tmp);
            out->hasRetries = ferr.empty();
        } else if (key == "inject") {
            if (!v.isString() ||
                !jobInjectFromName(v.asString(), &job.inject))
                return "'inject': expected none|hang|crash|transient";
        } else if (key == "config") {
            if (!v.isObject())
                return "'config': expected an object of parameter "
                       "overrides";
            for (const auto &[ck, cv] : v.members()) {
                const std::string oerr =
                    applyCoreParamOverride(job.params, ck, cv);
                if (!oerr.empty())
                    return "'config': " + oerr;
            }
        } else {
            return "unknown field '" + key + "'";
        }
        if (!ferr.empty())
            return ferr;
    }
    if (!sawWorkload)
        return "run request needs a 'workload'";
    return "";
}

std::string
renderRunResponse(const std::string &id, const SimJob &job,
                  const SimJobResult &r)
{
    std::string s = "{\"id\": " + id + ", \"status\": \"" +
                    jobStatusName(r.status) + "\"";
    s += ", \"workload\": \"" + jsonEscape(job.workload) + "\"";
    if (r.ok()) {
        const CoreStats &c = r.report.core;
        s += ", \"retired\": " + std::to_string(c.retired);
        s += ", \"cycles\": " + std::to_string(c.cycles);
        s += ", \"ipc\": " + jsonNumber(c.ipc());
        s += ", \"halted\": ";
        s += r.report.halted ? "true" : "false";
    } else {
        s += ", \"error\": \"" + jsonEscape(r.error) + "\"";
    }
    s += ", \"attempts\": " + std::to_string(r.attempts);
    s += ", \"wall_s\": " + jsonNumber(r.wallSeconds);
    s += "}\n";
    return s;
}

std::string
renderErrorResponse(const std::string &id, const char *status,
                    const std::string &error)
{
    std::string s = "{";
    if (!id.empty())
        s += "\"id\": " + id + ", ";
    s += std::string("\"status\": \"") + status + "\"";
    if (!error.empty())
        s += ", \"error\": \"" + jsonEscape(error) + "\"";
    s += "}\n";
    return s;
}

std::string
renderAckResponse(const char *op)
{
    return std::string("{\"status\": \"ok\", \"op\": \"") + op + "\"}\n";
}

} // namespace rix
