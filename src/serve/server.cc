#include "serve/server.hh"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include "base/env.hh"
#include "base/log.hh"
#include "base/stats.hh"
#include "emu/emulator.hh"
#include "trace/profiler.hh"
#include "workload/workload.hh"

namespace rix
{

namespace
{

/** Cap on one request line; a client streaming an unbounded "line"
 *  must not be able to balloon the daemon's memory. */
constexpr size_t maxLineBytes = 1 << 20;

size_t
programFootprint(const Program &p)
{
    // decodedBytes() is nonzero only once the decoded form is built;
    // admission decodes eagerly so the charge is taken up front.
    return sizeof(Program) + p.code.size() * sizeof(Instruction) +
           p.data.size() + p.name.size() + p.decodedBytes();
}

size_t
checkpointFootprint(const Checkpoint &c)
{
    return sizeof(Checkpoint) + c.memoryBytes() +
           c.output.size() * sizeof(u64);
}

/** 1-2-5 log-spaced microsecond bounds, 1 us .. 10 s. */
std::vector<u64>
latencyBounds()
{
    std::vector<u64> b;
    for (u64 decade = 1; decade <= 1'000'000; decade *= 10)
        for (u64 m : {u64(1), u64(2), u64(5)})
            b.push_back(decade * m);
    b.push_back(10'000'000);
    return b;
}

u64
elapsedMicros(std::chrono::steady_clock::time_point t0)
{
    return u64(std::chrono::duration_cast<std::chrono::microseconds>(
                   std::chrono::steady_clock::now() - t0)
                   .count());
}

/** lat_<op>_{p50,p95,p99,mean}_us + lat_<op>_samples. */
void
exportLatency(StatSet &s, const std::string &prefix, const Histogram &h)
{
    s.set(prefix + "_p50_us", double(h.quantile(0.50)));
    s.set(prefix + "_p95_us", double(h.quantile(0.95)));
    s.set(prefix + "_p99_us", double(h.quantile(0.99)));
    s.set(prefix + "_mean_us", h.mean());
    s.set(prefix + "_samples", double(h.totalSamples()));
}

} // namespace

ServeOptions
ServeOptions::fromEnv()
{
    ServeOptions o;
    o.policy = FaultPolicy::fromEnv();
    o.cacheBytes = size_t(envPositiveCount("RIX_CACHE_BYTES",
                                           u64(o.cacheBytes)));
    o.queueDepth = size_t(envPositiveCount("RIX_QUEUE_DEPTH",
                                           u64(o.queueDepth)));
    // Strictly validated: a set-but-unusable RIX_STORE_DIR is fatal
    // (a daemon that silently ran unjournaled would defeat the knob).
    const std::string storeDir = envStoreDir();
    if (!storeDir.empty())
        o.storePath = storeDir + "/serve.rixstore";
    return o;
}

struct Server::Conn
{
    explicit Conn(int f) : fd(f) {}
    ~Conn()
    {
        if (fd >= 0)
            ::close(fd);
    }
    const int fd;
    std::mutex writeMu;
    std::atomic<bool> open{true};
};

Server::Server(const ServeOptions &options)
    : opts(options),
      progLru(options.cacheBytes / 2, programFootprint),
      ckptLru(options.cacheBytes / 2, checkpointFootprint),
      latRun(latencyBounds()), latPing(latencyBounds()),
      latStats(latencyBounds())
{
}

Server::~Server()
{
    requestShutdown();
    waitShutdown();
    if (wakePipe[0] >= 0)
        ::close(wakePipe[0]);
    if (wakePipe[1] >= 0)
        ::close(wakePipe[1]);
    if (listenFd >= 0)
        ::close(listenFd);
    if (!opts.socketPath.empty())
        ::unlink(opts.socketPath.c_str());
}

std::string
Server::start()
{
    if (opts.socketPath.empty())
        return "serve: socket path must not be empty";
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (opts.socketPath.size() >= sizeof(addr.sun_path))
        return "serve: socket path '" + opts.socketPath + "' is too long "
               "(max " + std::to_string(sizeof(addr.sun_path) - 1) +
               " bytes)";
    memcpy(addr.sun_path, opts.socketPath.c_str(),
           opts.socketPath.size() + 1);

    listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd < 0)
        return std::string("serve: socket: ") + strerror(errno);
    // The daemon owns its path: a stale file from a previous run (or
    // a typo'd collision) is replaced, never silently served beside.
    ::unlink(opts.socketPath.c_str());
    if (::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        return "serve: cannot bind '" + opts.socketPath +
               "': " + strerror(errno);
    if (::listen(listenFd, 64) != 0)
        return "serve: listen: " + std::string(strerror(errno));
    if (::pipe(wakePipe) != 0)
        return std::string("serve: pipe: ") + strerror(errno);

    if (!opts.storePath.empty()) {
        // Open-or-create the journal: a fresh daemon creates it, a
        // restarted one resumes it — recovery truncates whatever torn
        // tail the previous incarnation's death left — and record
        // indices stay monotonic across the generations.
        std::string err;
        struct stat st;
        if (::stat(opts.storePath.c_str(), &st) != 0) {
            StoreMeta meta;
            meta.kind = StoreKind::Serve;
            meta.gitRev = buildGitRev();
            meta.specName = "serve";
            store_ = ResultStore::create(opts.storePath, meta, &err);
        } else {
            ResultStore::Recovery rec;
            store_ = ResultStore::openForAppend(opts.storePath, &err,
                                                &rec);
            if (store_ && store_->meta().kind != StoreKind::Serve)
                return "serve: journal '" + opts.storePath +
                       "' is a sweep store, not a serve journal";
        }
        if (!store_)
            return "serve: cannot open journal: " + err;
        u64 next = 0;
        for (const StoreRecord &r : store_->records())
            next = std::max(next, r.jobIndex + 1);
        journalIdx_.store(next, std::memory_order_relaxed);
    }

    pool = std::make_unique<ThreadPool>(opts.workers ? opts.workers
                                                     : jobsFromEnv());
    acceptor = std::thread([this]() { acceptLoop(); });
    return "";
}

void
Server::requestShutdown()
{
    shuttingDown.store(true, std::memory_order_relaxed);
    if (wakePipe[1] >= 0) {
        // One async-signal-safe write; the accept loop does the rest.
        const char b = 'q';
        [[maybe_unused]] ssize_t n = ::write(wakePipe[1], &b, 1);
    }
}

void
Server::waitShutdown()
{
    if (acceptor.joinable())
        acceptor.join();
}

void
Server::acceptLoop()
{
    for (;;) {
        pollfd fds[2] = {{listenFd, POLLIN, 0}, {wakePipe[0], POLLIN, 0}};
        const int n = ::poll(fds, 2, -1);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (fds[1].revents)
            break; // shutdown requested
        if (!(fds[0].revents))
            continue;
        const int cfd = ::accept(listenFd, nullptr, nullptr);
        if (cfd < 0)
            continue;
        auto conn = std::make_shared<Conn>(cfd);
        std::lock_guard<std::mutex> lk(connMu);
        conns.push_back(conn);
        handlers.emplace_back([this, conn]() { handleConn(conn); });
    }

    // Graceful drain. Order matters:
    //  1. reject new work (shuttingDown is already set),
    //  2. wake the connection readers (SHUT_RD delivers EOF without
    //     closing the write side — completion responses still flow),
    //  3. join the readers,
    //  4. destroy the pool: its destructor runs every admitted job to
    //     completion, each writing its response,
    //  5. drop the connections (closes the sockets; clients see EOF
    //     after the last response).
    shuttingDown.store(true, std::memory_order_relaxed);
    // Retire the listening socket now, not at destruction: a connect
    // racing the drain must be refused, not parked forever in a
    // backlog nobody will ever accept from.
    ::close(listenFd);
    listenFd = -1;
    ::unlink(opts.socketPath.c_str());
    std::vector<std::thread> hs;
    {
        std::lock_guard<std::mutex> lk(connMu);
        for (const auto &c : conns)
            ::shutdown(c->fd, SHUT_RD);
        hs.swap(handlers);
    }
    for (std::thread &t : hs)
        t.join();
    pool.reset();
    {
        std::lock_guard<std::mutex> lk(connMu);
        conns.clear();
    }
}

void
Server::handleConn(std::shared_ptr<Conn> conn)
{
    std::string pending;
    char buf[4096];
    for (;;) {
        const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        pending.append(buf, size_t(n));
        size_t nl;
        while ((nl = pending.find('\n')) != std::string::npos) {
            std::string line = pending.substr(0, nl);
            pending.erase(0, nl + 1);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            if (!line.empty())
                handleLine(conn, line);
        }
        if (pending.size() > maxLineBytes) {
            stats_.malformed.fetch_add(1, std::memory_order_relaxed);
            writeToConn(conn, renderErrorResponse(
                                  "", "invalid",
                                  "request line exceeds 1 MiB"));
            break;
        }
    }
    conn->open.store(false, std::memory_order_relaxed);
}

void
Server::handleLine(const std::shared_ptr<Conn> &conn,
                   const std::string &line)
{
    ScopedPhase phase(HostPhase::ServeRequest);
    const auto t0 = std::chrono::steady_clock::now();
    stats_.requests.fetch_add(1, std::memory_order_relaxed);
    ServeRequest req;
    const std::string err = parseServeRequest(line, &req);
    if (!err.empty()) {
        // A malformed request poisons only itself: respond and keep
        // the connection (and daemon) alive.
        stats_.malformed.fetch_add(1, std::memory_order_relaxed);
        writeToConn(conn, renderErrorResponse(req.id, "invalid", err));
        return;
    }
    switch (req.op) {
      case ServeRequest::Op::Ping:
        writeToConn(conn, renderAckResponse("ping"));
        recordOpLatency(latPing, elapsedMicros(t0));
        return;
      case ServeRequest::Op::Stats:
        writeToConn(conn, renderStats());
        recordOpLatency(latStats, elapsedMicros(t0));
        return;
      case ServeRequest::Op::Shutdown:
        writeToConn(conn, renderAckResponse("shutdown"));
        requestShutdown();
        return;
      case ServeRequest::Op::Run:
        submitRun(conn, req);
        return;
    }
}

void
Server::submitRun(const std::shared_ptr<Conn> &conn, const ServeRequest &req)
{
    if (req.job.inject != JobInject::None && !opts.allowInject) {
        writeToConn(conn, renderErrorResponse(
                              req.id, "invalid",
                              "fault injection is not enabled "
                              "(start with --allow-inject)"));
        return;
    }
    if (shuttingDown.load(std::memory_order_relaxed)) {
        writeToConn(conn,
                    renderErrorResponse(req.id, "shutting-down",
                                        "daemon is draining"));
        return;
    }

    // Bounded admission: claim a slot or reject immediately. The
    // client owns the retry decision — the daemon's queue can never
    // grow without limit.
    const size_t prev = outstanding.fetch_add(1, std::memory_order_relaxed);
    if (prev >= opts.queueDepth) {
        outstanding.fetch_sub(1, std::memory_order_relaxed);
        stats_.overloaded.fetch_add(1, std::memory_order_relaxed);
        writeToConn(conn, renderErrorResponse(
                              req.id, "overloaded",
                              "job queue is full (" +
                                  std::to_string(opts.queueDepth) +
                                  " outstanding); resubmit later"));
        return;
    }
    u64 peak = stats_.queuePeak.load(std::memory_order_relaxed);
    while (prev + 1 > peak &&
           !stats_.queuePeak.compare_exchange_weak(
               peak, prev + 1, std::memory_order_relaxed))
        ;
    stats_.admitted.fetch_add(1, std::memory_order_relaxed);

    // Run latency covers admission to completion: queueing time is
    // part of what the client experiences under load.
    const auto admittedAt = std::chrono::steady_clock::now();
    pool->submit([this, conn, req, admittedAt]() {
        // One long-lived simulation context per pool worker, exactly
        // the sweep engine's reuse discipline.
        thread_local SimContext ctx;
        FaultPolicy policy = opts.policy;
        if (req.hasTimeoutMs)
            policy.timeoutMs = req.timeoutMs;
        if (req.hasRetries)
            policy.retries = req.retries;
        SimJobResult r;
        try {
            r = runJobContained(ctx, req.job, policy,
                                [this](const SimJob &j) {
                                    return acquireInputs(j);
                                });
        } catch (const std::exception &e) {
            // runJobContained contains everything; this is the last
            // line of defense so no exception can kill a pool worker.
            r.status = JobStatus::Crash;
            r.error = e.what();
        }
        // Journal before answering: once the client hears "ok", the
        // result is durable. Failures (worth a resubmit, not a
        // tombstone) are not journaled; a failing append degrades to
        // a warning — a full disk must not take the daemon down.
        if (store_ && r.ok()) {
            StoreRecord rec;
            rec.jobIndex =
                journalIdx_.fetch_add(1, std::memory_order_relaxed);
            rec.configLabel = req.id;
            rec.result = r;
            const std::string jerr = store_->append(rec);
            if (jerr.empty())
                stats_.journaled.fetch_add(1, std::memory_order_relaxed);
            else
                rix_warn("serve: journal append failed: %s",
                         jerr.c_str());
        }
        stats_.completed.fetch_add(1, std::memory_order_relaxed);
        stats_.byStatus[size_t(r.status) & 7].fetch_add(
            1, std::memory_order_relaxed);
        stats_.retries.fetch_add(r.attempts - 1,
                                 std::memory_order_relaxed);
        outstanding.fetch_sub(1, std::memory_order_relaxed);
        recordOpLatency(latRun, elapsedMicros(admittedAt));
        writeToConn(conn, renderRunResponse(req.id, req.job, r));
    });
}

PinnedJobInputs
Server::acquireInputs(const SimJob &job)
{
    PinnedJobInputs in;
    const std::string pkey =
        job.workload + "@" + std::to_string(job.scale);
    in.prog = progLru.get(pkey, [&job]() {
        Program p = buildWorkload(job.workload, job.scale);
        // Decode before admission: the footprint charge includes the
        // decoded form, and every job sharing this entry reuses it.
        p.decoded();
        return p;
    });
    if (job.sampled()) {
        // Checkpoints are configuration-independent architectural
        // state; key on (workload, scale, icount) and build by
        // functional fast-forward on the pinned program.
        const std::string ckey =
            pkey + "@" + std::to_string(job.checkpointAt);
        const std::shared_ptr<const Program> prog = in.prog;
        const u64 at = job.checkpointAt;
        in.from = ckptLru.get(ckey, [&prog, at]() {
            Emulator emu(*prog);
            emu.run(at);
            return emu.snapshot();
        });
    }
    return in;
}

std::string
Server::renderStats()
{
    StatRegistry reg;
    StatRegistry::Row &row = reg.addRow();
    row.label("status", "ok");
    row.label("op", "stats");
    StatSet &s = row.stats;
    s.set("requests", double(stats_.requests.load()));
    s.set("malformed", double(stats_.malformed.load()));
    s.set("admitted", double(stats_.admitted.load()));
    s.set("overloaded", double(stats_.overloaded.load()));
    s.set("completed", double(stats_.completed.load()));
    s.set("retries", double(stats_.retries.load()));
    s.set("journaled", double(stats_.journaled.load()));
    for (size_t i = 0; i < 8; ++i)
        s.set(std::string("jobs_") + jobStatusName(JobStatus(i)),
              double(stats_.byStatus[i].load()));
    s.set("queue_depth", double(outstanding.load()));
    s.set("queue_peak", double(stats_.queuePeak.load()));
    s.set("queue_limit", double(opts.queueDepth));
    s.set("workers", double(pool ? pool->size() : 0));
    s.set("prog_cache_hits", double(progLru.hits()));
    s.set("prog_cache_misses", double(progLru.misses()));
    s.set("prog_cache_evictions", double(progLru.evictions()));
    s.set("prog_cache_bytes", double(progLru.bytes()));
    s.set("ckpt_cache_hits", double(ckptLru.hits()));
    s.set("ckpt_cache_misses", double(ckptLru.misses()));
    s.set("ckpt_cache_evictions", double(ckptLru.evictions()));
    s.set("ckpt_cache_bytes", double(ckptLru.bytes()));
    s.set("cache_budget_bytes", double(opts.cacheBytes));
    {
        std::lock_guard<std::mutex> lk(latMu);
        exportLatency(s, "lat_run", latRun);
        exportLatency(s, "lat_ping", latPing);
        exportLatency(s, "lat_stats", latStats);
    }
    hostProfiler().exportTo(s);

    char *buf = nullptr;
    size_t len = 0;
    FILE *mem = open_memstream(&buf, &len);
    if (!mem)
        return renderErrorResponse("", "crash", "out of memory");
    reg.writeJsonLines(mem);
    fclose(mem);
    std::string out(buf, len);
    free(buf);
    return out;
}

void
Server::recordOpLatency(Histogram &h, u64 micros)
{
    std::lock_guard<std::mutex> lk(latMu);
    h.sample(micros);
}

void
Server::writeToConn(const std::shared_ptr<Conn> &conn,
                    const std::string &data)
{
    std::lock_guard<std::mutex> lk(conn->writeMu);
    if (!conn->open.load(std::memory_order_relaxed) && conn->fd < 0)
        return;
    size_t off = 0;
    while (off < data.size()) {
        // MSG_NOSIGNAL: a client that disconnected mid-job must not
        // SIGPIPE the daemon; the write error is simply dropped (the
        // job already ran; nobody is listening).
        const ssize_t n = ::send(conn->fd, data.data() + off,
                                 data.size() - off, MSG_NOSIGNAL);
        if (n <= 0)
            return;
        off += size_t(n);
    }
}

int
runServe(const ServeOptions &opts)
{
    static std::atomic<Server *> g_server{nullptr};

    // A daemon is a long-running host process: the phase profile is
    // always worth its one-atomic-add cost here.
    hostProfiler().setEnabled(true);

    Server server(opts);
    const std::string err = server.start();
    if (!err.empty()) {
        fprintf(stderr, "rix serve: %s\n", err.c_str());
        return 1;
    }
    g_server.store(&server);

    struct sigaction sa{};
    sa.sa_handler = [](int) {
        if (Server *s = g_server.load())
            s->requestShutdown();
    };
    sigemptyset(&sa.sa_mask);
    struct sigaction oldInt{}, oldTerm{};
    sigaction(SIGINT, &sa, &oldInt);
    sigaction(SIGTERM, &sa, &oldTerm);

    fprintf(stderr, "rix serve: listening on %s (%u workers, queue %zu, "
                    "cache %zu MiB)\n",
            opts.socketPath.c_str(),
            opts.workers ? opts.workers : jobsFromEnv(),
            opts.queueDepth, opts.cacheBytes >> 20);
    server.waitShutdown();

    sigaction(SIGINT, &oldInt, nullptr);
    sigaction(SIGTERM, &oldTerm, nullptr);
    g_server.store(nullptr);
    fprintf(stderr, "rix serve: drained, exiting\n");
    return 0;
}

} // namespace rix
