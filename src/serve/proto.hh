/**
 * @file
 * Wire protocol of the `rix serve` daemon: newline-delimited JSON over
 * a Unix-domain stream socket.
 *
 * Every request is one JSON object on one line; every response is one
 * JSON object on one line. Responses to "run" echo the request's "id"
 * verbatim, so a client may pipeline requests and match out-of-order
 * completions. Response "status" values are the JobStatus wire names
 * (base/fault.hh) plus three protocol-level ones:
 *
 *   overloaded     the job queue is full — resubmit later (backpressure)
 *   shutting-down  the daemon is draining and accepts no new work
 *   invalid        malformed request (also the JobStatus for a
 *                  well-formed but un-runnable job)
 *
 * Request grammar:
 *
 *   {"op": "ping"}
 *   {"op": "stats"}
 *   {"op": "shutdown"}
 *   {"op": "run", "id": <any>, "workload": "mcf",
 *    "scale": 1, "config": {<dotted CoreParams overrides>},
 *    "max_retired": N, "max_cycles": N,
 *    "checkpoint_at": N, "warmup": N,          // sampled interval
 *    "timeout_ms": N, "retries": N,            // per-job policy override
 *    "inject": "none|hang|crash|transient"}    // with --allow-inject only
 *
 * Parsing is structural only (types, ranges, unknown fields fatal to
 * the *request*, never the daemon); semantic validation (unknown
 * workload, bad geometry) happens in runJobContained and comes back as
 * status "invalid".
 */

#ifndef RIX_SERVE_PROTO_HH
#define RIX_SERVE_PROTO_HH

#include <string>

#include "sim/sweep.hh"

namespace rix
{

struct ServeRequest
{
    enum class Op : u8 { Ping, Run, Stats, Shutdown };

    Op op = Op::Ping;

    /** The request's "id" member re-serialized as JSON ("null" when
     *  absent) — echoed verbatim in the response. */
    std::string id = "null";

    // Run only.
    SimJob job;
    bool hasTimeoutMs = false;
    u64 timeoutMs = 0;
    bool hasRetries = false;
    unsigned retries = 0;
};

/**
 * Parse one request line.
 * @return "" and *out on success, else a one-line diagnostic (the
 *         caller wraps it in an "invalid" response; the connection
 *         survives).
 */
std::string parseServeRequest(const std::string &line, ServeRequest *out);

/** Response to a completed (or failed) run request. */
std::string renderRunResponse(const std::string &id, const SimJob &job,
                              const SimJobResult &r);

/** Protocol-level response: {"id": ..., "status": ..., "error": ...}.
 *  @p id may be empty (omitted). */
std::string renderErrorResponse(const std::string &id, const char *status,
                                const std::string &error);

/** {"status": "ok"} with the op echoed ("ping", "shutdown"). */
std::string renderAckResponse(const char *op);

} // namespace rix

#endif // RIX_SERVE_PROTO_HH
