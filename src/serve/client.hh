/**
 * @file
 * Minimal blocking client for the `rix serve` protocol: connect to the
 * daemon's Unix socket, send request lines, read response lines. Used
 * by `rix submit` and by the serve tests; deliberately dependency-free
 * so a shell script with `nc -U` remains an equally valid client.
 */

#ifndef RIX_SERVE_CLIENT_HH
#define RIX_SERVE_CLIENT_HH

#include <string>

namespace rix
{

class ServeClient
{
  public:
    ServeClient() = default;
    ~ServeClient();

    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;

    /** @return "" on success, else a one-line diagnostic (no socket,
     *          refused, path too long). */
    std::string connect(const std::string &socketPath);

    bool connected() const { return fd_ >= 0; }

    /** Send one request line (a trailing newline is appended when
     *  missing). @return true when fully written. */
    bool sendLine(const std::string &line);

    /**
     * Block until one full response line arrives.
     * @return true and *out (newline stripped), false on EOF/error
     *         (daemon gone).
     */
    bool recvLine(std::string *out);

    void close();

  private:
    int fd_ = -1;
    std::string pending_;
};

} // namespace rix

#endif // RIX_SERVE_CLIENT_HH
