/**
 * @file
 * Minimal blocking client for the `rix serve` protocol: connect to the
 * daemon's Unix socket, send request lines, read response lines. Used
 * by `rix submit` and by the serve tests; deliberately dependency-free
 * so a shell script with `nc -U` remains an equally valid client.
 */

#ifndef RIX_SERVE_CLIENT_HH
#define RIX_SERVE_CLIENT_HH

#include <functional>
#include <string>
#include <vector>

namespace rix
{

class ServeClient
{
  public:
    ServeClient() = default;
    ~ServeClient();

    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;

    /** @return "" on success, else a one-line diagnostic (no socket,
     *          refused, path too long). */
    std::string connect(const std::string &socketPath);

    bool connected() const { return fd_ >= 0; }

    /** Send one request line (a trailing newline is appended when
     *  missing). @return true when fully written. */
    bool sendLine(const std::string &line);

    /**
     * Block until one full response line arrives.
     * @return true and *out (newline stripped), false on EOF/error
     *         (daemon gone).
     */
    bool recvLine(std::string *out);

    void close();

  private:
    int fd_ = -1;
    std::string pending_;
};

/** Retry knobs for submitBatch: how hard to fight a flaky daemon
 *  connection before giving the batch up. */
struct SubmitOptions
{
    /** Consecutive failed connection attempts tolerated (including
     *  the first connect); any received response resets the budget. */
    unsigned maxAttempts = 5;
    /** Backoff before the second attempt; doubles per consecutive
     *  failure up to backoffCapMs. */
    unsigned backoffStartMs = 10;
    unsigned backoffCapMs = 1000;
};

/** What submitBatch managed to do. */
struct SubmitOutcome
{
    size_t answered = 0;     // responses delivered to the callback
    unsigned reconnects = 0; // successful re-connections after a drop
    bool complete = false;   // every request got a response
    std::string error;       // last failure when !complete
};

/**
 * Send every request line pipelined and deliver one response per
 * request to @p on_response (responses may arrive out of submission
 * order; ids match them). Transient transport failures — ECONNRESET,
 * EINTR, short writes, a daemon restart mid-batch — are absorbed by
 * reconnecting with bounded exponential backoff and resending exactly
 * the requests not yet answered, instead of failing the whole batch.
 *
 * Requests are matched to responses by their "id" member, so a
 * request whose response was lost in a connection drop is submitted
 * again: at-least-once execution. Simulation requests are idempotent,
 * so the only observable effect is the duplicate daemon-side work.
 */
SubmitOutcome submitBatch(const std::string &socket_path,
                          const std::vector<std::string> &lines,
                          const std::function<void(const std::string &)>
                              &on_response,
                          const SubmitOptions &opts = {});

} // namespace rix

#endif // RIX_SERVE_CLIENT_HH
