/**
 * @file
 * `rix serve` — a resilient simulation daemon on a Unix-domain socket.
 *
 * Accepts newline-delimited JSON requests (serve/proto.hh), executes
 * simulation jobs fault-contained on the shared ThreadPool, and writes
 * id-matched responses as jobs complete (out of order, pipelined).
 * The daemon survives anything a job does: divergence, stuck
 * pipelines, timeouts, crashes and injected faults come back as
 * structured statuses on one connection while every other request
 * proceeds untouched.
 *
 * Resource discipline:
 *
 *  - bounded admission: at most queueDepth jobs outstanding; further
 *    run requests get an immediate "overloaded" response instead of
 *    queueing without limit (explicit backpressure — the client
 *    resubmits);
 *  - bounded memory: programs and checkpoints come from ref-counted
 *    LRU caches under a byte budget (half each), so a long-running
 *    daemon's footprint stays flat under workload churn while
 *    in-flight jobs pin their inputs against eviction;
 *  - per-job watchdog and retry policy from FaultPolicy (RIX_TIMEOUT_MS
 *    / RIX_RETRIES), overridable per request;
 *  - graceful drain on shutdown (SIGTERM/SIGINT or the "shutdown" op):
 *    stop accepting, answer in-flight connections, run every admitted
 *    job to completion, then exit 0.
 *
 * Observability: the "stats" op renders the daemon's counters (request
 * and per-status job counts, retries, queue depth/peak, overload
 * rejections, cache hit/miss/eviction/bytes) as one StatRegistry row,
 * plus per-op latency distributions (lat_<op>_{p50,p95,p99,mean}_us
 * and sample counts — inline ops measure parse-to-response, run jobs
 * admission-to-completion) and the host-phase profile (host_<phase>_s;
 * the profiler is always armed under `rix serve`).
 */

#ifndef RIX_SERVE_SERVER_HH
#define RIX_SERVE_SERVER_HH

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "base/fault.hh"
#include "base/histogram.hh"
#include "base/lru_cache.hh"
#include "base/thread_pool.hh"
#include "emu/checkpoint.hh"
#include "serve/proto.hh"
#include "store/result_store.hh"

namespace rix
{

struct ServeOptions
{
    std::string socketPath;

    /** Simulation worker threads; 0 means jobsFromEnv() (RIX_JOBS). */
    unsigned workers = 0;

    /** Max outstanding (admitted, not yet completed) run jobs; further
     *  submissions are answered "overloaded". */
    size_t queueDepth = 64;

    /** Byte budget for the program + checkpoint LRU caches (half
     *  each); RIX_CACHE_BYTES overrides (positive, strictly
     *  validated). */
    size_t cacheBytes = size_t(256) << 20;

    /** Default per-job fault policy (RIX_TIMEOUT_MS / RIX_RETRIES);
     *  requests may override timeout_ms / retries individually. */
    FaultPolicy policy;

    /** Honor the "inject" request field (tests/CI fault drills only;
     *  otherwise injection requests are rejected as invalid). */
    bool allowInject = false;

    /** Journal every ok run result into the crash-recoverable result
     *  store at this path (created on first start, resumed — torn
     *  tail truncated — on later ones). Empty: no journal. Set from
     *  RIX_STORE_DIR (strictly validated) as
     *  "$RIX_STORE_DIR/serve.rixstore". */
    std::string storePath;

    /** Defaults with the environment knobs applied (fatal on invalid
     *  values, never silently defaulted). */
    static ServeOptions fromEnv();
};

/** Monotonic daemon counters (all relaxed atomics; exact only in
 *  quiescence, which is when tests read them). */
struct ServeStats
{
    std::atomic<u64> requests{0};   // parsed request lines
    std::atomic<u64> malformed{0};  // lines rejected by the parser
    std::atomic<u64> admitted{0};   // run jobs accepted into the pool
    std::atomic<u64> overloaded{0}; // run jobs rejected by backpressure
    std::atomic<u64> completed{0};  // run jobs finished (any status)
    std::atomic<u64> retries{0};    // extra attempts beyond the first
    std::atomic<u64> byStatus[8]{}; // indexed by JobStatus
    std::atomic<u64> queuePeak{0};  // max outstanding observed
    std::atomic<u64> journaled{0};  // ok results appended to the store
};

/**
 * The daemon proper, embeddable for tests: construct, start(), talk to
 * socketPath(), requestShutdown(), waitShutdown(). The CLI wrapper
 * (runServe) adds signal handling around exactly this object.
 */
class Server
{
  public:
    explicit Server(const ServeOptions &opts);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind the socket (an existing file at the path is removed — the
     * daemon owns it), start the accept loop and the worker pool.
     * @return "" on success, else a one-line diagnostic (bad path,
     *         bind failure); the server is then dead.
     */
    std::string start();

    /**
     * Begin graceful shutdown: stop accepting, reject new run
     * requests with "shutting-down", drain admitted jobs. Safe from
     * any thread and from a signal handler (one write() on a pipe);
     * idempotent.
     */
    void requestShutdown();

    /** Block until the drain finished and every thread joined. */
    void waitShutdown();

    const ServeStats &stats() const { return stats_; }
    const ServeOptions &options() const { return opts; }

    /** Current outstanding run jobs (admission gauge). */
    size_t queueDepth() const { return outstanding.load(); }

    LruCache<std::string, Program> &programCache() { return progLru; }

  private:
    struct Conn;

    void acceptLoop();
    void handleConn(std::shared_ptr<Conn> conn);
    void handleLine(const std::shared_ptr<Conn> &conn,
                    const std::string &line);
    void submitRun(const std::shared_ptr<Conn> &conn,
                   const ServeRequest &req);
    PinnedJobInputs acquireInputs(const SimJob &job);
    std::string renderStats();
    void recordOpLatency(Histogram &h, u64 micros);
    static void writeToConn(const std::shared_ptr<Conn> &conn,
                            const std::string &data);

    ServeOptions opts;
    ServeStats stats_;

    int listenFd = -1;
    int wakePipe[2] = {-1, -1}; // self-pipe: requestShutdown -> acceptLoop
    std::atomic<bool> shuttingDown{false};
    std::atomic<size_t> outstanding{0};

    std::unique_ptr<ThreadPool> pool;
    std::thread acceptor;
    std::vector<std::thread> handlers;
    std::vector<std::shared_ptr<Conn>> conns;
    std::mutex connMu; // guards handlers + conns

    LruCache<std::string, Program> progLru;
    LruCache<std::string, Checkpoint> ckptLru;

    // Per-op latency distributions (microseconds, log-spaced bounds).
    // Inline ops (ping/stats) measure parse-to-response; run measures
    // admission-to-completion. renderStats derives p50/p95/p99.
    std::mutex latMu;
    Histogram latRun, latPing, latStats;

    // RIX_STORE_DIR journal: ok run results appended (fsync commit
    // point) as they complete, indices monotonic across daemon
    // restarts.
    std::unique_ptr<ResultStore> store_;
    std::atomic<u64> journalIdx_{0};
};

/**
 * CLI entry: run a Server with SIGINT/SIGTERM wired to graceful
 * shutdown; blocks until drained.
 * @return process exit code (0 after a clean drain).
 */
int runServe(const ServeOptions &opts);

} // namespace rix

#endif // RIX_SERVE_SERVER_HH
