#include "serve/client.hh"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace rix
{

ServeClient::~ServeClient()
{
    close();
}

std::string
ServeClient::connect(const std::string &socketPath)
{
    close();
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socketPath.size() >= sizeof(addr.sun_path))
        return "socket path '" + socketPath + "' is too long";
    memcpy(addr.sun_path, socketPath.c_str(), socketPath.size() + 1);

    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0)
        return std::string("socket: ") + strerror(errno);
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        const std::string err = "cannot connect to '" + socketPath +
                                "': " + strerror(errno);
        close();
        return err;
    }
    return "";
}

bool
ServeClient::sendLine(const std::string &line)
{
    if (fd_ < 0)
        return false;
    std::string data = line;
    if (data.empty() || data.back() != '\n')
        data += '\n';
    size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::send(fd_, data.data() + off,
                                 data.size() - off, MSG_NOSIGNAL);
        if (n <= 0)
            return false;
        off += size_t(n);
    }
    return true;
}

bool
ServeClient::recvLine(std::string *out)
{
    for (;;) {
        const size_t nl = pending_.find('\n');
        if (nl != std::string::npos) {
            *out = pending_.substr(0, nl);
            pending_.erase(0, nl + 1);
            return true;
        }
        if (fd_ < 0)
            return false;
        char buf[4096];
        const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
        if (n <= 0)
            return false;
        pending_.append(buf, size_t(n));
    }
}

void
ServeClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    pending_.clear();
}

} // namespace rix
