#include "serve/client.hh"

#include <cerrno>
#include <cstring>
#include <ctime>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "base/json.hh"

namespace rix
{

ServeClient::~ServeClient()
{
    close();
}

std::string
ServeClient::connect(const std::string &socketPath)
{
    close();
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socketPath.size() >= sizeof(addr.sun_path))
        return "socket path '" + socketPath + "' is too long";
    memcpy(addr.sun_path, socketPath.c_str(), socketPath.size() + 1);

    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0)
        return std::string("socket: ") + strerror(errno);
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        const std::string err = "cannot connect to '" + socketPath +
                                "': " + strerror(errno);
        close();
        return err;
    }
    return "";
}

bool
ServeClient::sendLine(const std::string &line)
{
    if (fd_ < 0)
        return false;
    std::string data = line;
    if (data.empty() || data.back() != '\n')
        data += '\n';
    size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::send(fd_, data.data() + off,
                                 data.size() - off, MSG_NOSIGNAL);
        if (n < 0 && errno == EINTR)
            continue; // interrupted, not broken: resume the write
        if (n <= 0)
            return false;
        off += size_t(n);
    }
    return true;
}

bool
ServeClient::recvLine(std::string *out)
{
    for (;;) {
        const size_t nl = pending_.find('\n');
        if (nl != std::string::npos) {
            *out = pending_.substr(0, nl);
            pending_.erase(0, nl + 1);
            return true;
        }
        if (fd_ < 0)
            return false;
        char buf[4096];
        const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return false;
        pending_.append(buf, size_t(n));
    }
}

void
ServeClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    pending_.clear();
}

SubmitOutcome
submitBatch(const std::string &socket_path,
            const std::vector<std::string> &lines,
            const std::function<void(const std::string &)> &on_response,
            const SubmitOptions &opts)
{
    // Each request's "id" (re-serialized JSON, "null" when absent or
    // unparsable) — the daemon echoes it verbatim, so it matches a
    // response back to the request it answers.
    auto idOf = [](const std::string &line) -> std::string {
        std::string err;
        const JsonValue doc = JsonValue::parse(line, &err);
        const JsonValue *id =
            err.empty() && doc.isObject() ? doc.find("id") : nullptr;
        return id ? id->dump() : "null";
    };

    struct Item
    {
        const std::string *line;
        std::string id;
        bool answered = false;
    };
    std::vector<Item> items;
    items.reserve(lines.size());
    for (const std::string &l : lines)
        items.push_back(Item{&l, idOf(l), false});

    SubmitOutcome out;
    if (items.empty()) {
        out.complete = true;
        return out;
    }

    // Mark the first unanswered request carrying @p id answered; with
    // no id match (a malformed request echoed back as id null, or
    // duplicate ids) fall back to oldest-first — the daemon sends
    // exactly one response per request, so the count still converges.
    auto settle = [&](const std::string &id) {
        for (Item &it : items)
            if (!it.answered && it.id == id) {
                it.answered = true;
                return;
            }
        for (Item &it : items)
            if (!it.answered) {
                it.answered = true;
                return;
            }
    };

    ServeClient client;
    unsigned failures = 0; // consecutive, reset by any response
    unsigned backoffMs = opts.backoffStartMs;
    bool everConnected = false;
    size_t unanswered = items.size();
    while (unanswered > 0) {
        if (!client.connected()) {
            if (failures >= opts.maxAttempts) {
                if (out.error.empty())
                    out.error = "gave up after " +
                                std::to_string(failures) +
                                " connection attempts";
                return out;
            }
            if (failures > 0) {
                // Bounded exponential backoff between attempts: give
                // a restarting daemon time instead of hammering it.
                struct timespec ts;
                ts.tv_sec = backoffMs / 1000;
                ts.tv_nsec = long(backoffMs % 1000) * 1000000L;
                while (::nanosleep(&ts, &ts) != 0 && errno == EINTR)
                    continue;
                backoffMs = backoffMs < opts.backoffCapMs / 2
                                ? backoffMs * 2
                                : opts.backoffCapMs;
            }
            ++failures;
            const std::string err = client.connect(socket_path);
            if (!err.empty()) {
                out.error = err;
                continue;
            }
            if (everConnected)
                ++out.reconnects;
            everConnected = true;
            // Re-send exactly the unanswered requests, in submission
            // order. A send failure just drops us back into the
            // reconnect path.
            bool sendOk = true;
            for (const Item &it : items)
                if (!it.answered && !(sendOk = client.sendLine(*it.line)))
                    break;
            if (!sendOk) {
                out.error = "connection lost mid-send";
                client.close();
                continue;
            }
        }
        std::string resp;
        if (!client.recvLine(&resp)) {
            out.error = "connection lost awaiting a response";
            client.close();
            continue;
        }
        failures = 0;
        backoffMs = opts.backoffStartMs;
        settle(idOf(resp));
        --unanswered;
        ++out.answered;
        on_response(resp);
    }
    out.complete = true;
    return out;
}

} // namespace rix
