#include "assembler/program.hh"

#include "base/log.hh"
#include "trace/profiler.hh"

namespace rix
{

InstAddr
Program::codeSymbol(const std::string &sym) const
{
    auto it = codeSymbols.find(sym);
    if (it == codeSymbols.end())
        rix_fatal("undefined code symbol '%s' in program '%s'", sym.c_str(),
                  name.c_str());
    return it->second;
}

Addr
Program::dataSymbol(const std::string &sym) const
{
    auto it = dataSymbols.find(sym);
    if (it == dataSymbols.end())
        rix_fatal("undefined data symbol '%s' in program '%s'", sym.c_str(),
                  name.c_str());
    return it->second;
}

std::shared_ptr<const DecodedProgram>
Program::decodedShared() const
{
    Decoded cur = std::atomic_load_explicit(&decoded_,
                                            std::memory_order_acquire);
    if (cur && cur->size() == code.size())
        return cur;
    // (Re)build. Racing builders produce identical content; the CAS
    // loop anchors exactly one of them in the member, and every caller
    // leaves holding an anchored pointer.
    ScopedPhase timer(HostPhase::Decode);
    const Decoded fresh = std::make_shared<const DecodedProgram>(*this);
    while (true) {
        if (std::atomic_compare_exchange_weak(&decoded_, &cur, fresh))
            return fresh;
        if (cur && cur->size() == code.size())
            return cur;
    }
}

} // namespace rix
