#include "assembler/program.hh"

#include "base/log.hh"

namespace rix
{

InstAddr
Program::codeSymbol(const std::string &sym) const
{
    auto it = codeSymbols.find(sym);
    if (it == codeSymbols.end())
        rix_fatal("undefined code symbol '%s' in program '%s'", sym.c_str(),
                  name.c_str());
    return it->second;
}

Addr
Program::dataSymbol(const std::string &sym) const
{
    auto it = dataSymbols.find(sym);
    if (it == dataSymbols.end())
        rix_fatal("undefined data symbol '%s' in program '%s'", sym.c_str(),
                  name.c_str());
    return it->second;
}

} // namespace rix
