#include "assembler/parser.hh"

#include <cctype>
#include <cstring>
#include <map>
#include <sstream>
#include <vector>

#include "base/bitutil.hh"
#include "base/log.hh"
#include "isa/opcode.hh"

namespace rix
{

unsigned
parseRegister(const std::string &tok)
{
    static const std::map<std::string, unsigned> aliases = {
        {"zero", 31}, {"sp", 30}, {"gp", 29}, {"ra", 26}, {"v0", 0},
        {"a0", 16}, {"a1", 17}, {"a2", 18}, {"a3", 19}, {"a4", 20},
        {"a5", 21},
        {"s0", 9}, {"s1", 10}, {"s2", 11}, {"s3", 12}, {"s4", 13},
        {"s5", 14}, {"s6", 15},
        {"t0", 1}, {"t1", 2}, {"t2", 3}, {"t3", 4}, {"t4", 5},
        {"t5", 6}, {"t6", 7}, {"t7", 8},
        {"t8", 22}, {"t9", 23}, {"t10", 24}, {"t11", 25},
    };
    auto it = aliases.find(tok);
    if (it != aliases.end())
        return it->second;
    if (tok.size() >= 2 && tok[0] == 'r') {
        char *end = nullptr;
        long n = strtol(tok.c_str() + 1, &end, 10);
        if (end && *end == '\0' && n >= 0 && n < long(numLogRegs))
            return unsigned(n);
    }
    return numLogRegs;
}

namespace
{

struct SourceLine
{
    std::string label;
    std::string mnemonic;
    std::vector<std::string> operands;
    int lineNo = 0;
};

/** Split a source line into label / mnemonic / comma-separated operands. */
bool
tokenize(const std::string &raw, int line_no, SourceLine &out,
         std::string *error)
{
    std::string text = raw;
    // Strip comments.
    for (char c : {'#', ';'}) {
        auto pos = text.find(c);
        if (pos != std::string::npos)
            text.resize(pos);
    }
    // Label prefix.
    auto colon = text.find(':');
    if (colon != std::string::npos) {
        std::string lbl = text.substr(0, colon);
        // Trim.
        while (!lbl.empty() && isspace((unsigned char)lbl.front()))
            lbl.erase(lbl.begin());
        while (!lbl.empty() && isspace((unsigned char)lbl.back()))
            lbl.pop_back();
        if (lbl.empty() || lbl.find(' ') != std::string::npos) {
            *error = strfmt("line %d: malformed label", line_no);
            return false;
        }
        out.label = lbl;
        text.erase(0, colon + 1);
    }
    std::istringstream is(text);
    is >> out.mnemonic;
    std::string rest;
    std::getline(is, rest);
    // Split operands on commas.
    std::string cur;
    for (char c : rest) {
        if (c == ',') {
            out.operands.push_back(cur);
            cur.clear();
        } else if (!isspace((unsigned char)c)) {
            cur += c;
        }
    }
    if (!cur.empty())
        out.operands.push_back(cur);
    out.lineNo = line_no;
    return true;
}

class TextAssembler
{
  public:
    TextAssembler(const std::string &src, const std::string &name)
        : source(src)
    {
        prog.name = name;
    }

    bool
    run(std::string *error)
    {
        std::istringstream is(source);
        std::string raw;
        int line_no = 0;
        while (std::getline(is, raw)) {
            ++line_no;
            SourceLine line;
            if (!tokenize(raw, line_no, line, error))
                return false;
            if (!line.label.empty() && !bindLabel(line, error))
                return false;
            if (line.mnemonic.empty())
                continue;
            if (line.mnemonic[0] == '.') {
                if (!directive(line, error))
                    return false;
            } else if (!instruction(line, error)) {
                return false;
            }
        }
        return resolve(error);
    }

    Program take() { return std::move(prog); }

  private:
    bool
    bindLabel(const SourceLine &line, std::string *error)
    {
        if (inData) {
            if (prog.dataSymbols.count(line.label)) {
                *error = strfmt("line %d: data symbol '%s' redefined",
                                line.lineNo, line.label.c_str());
                return false;
            }
            prog.dataSymbols[line.label] = prog.dataBase + prog.data.size();
        } else {
            if (prog.codeSymbols.count(line.label)) {
                *error = strfmt("line %d: label '%s' redefined",
                                line.lineNo, line.label.c_str());
                return false;
            }
            prog.codeSymbols[line.label] = prog.code.size();
        }
        return true;
    }

    bool
    directive(const SourceLine &line, std::string *error)
    {
        const std::string &d = line.mnemonic;
        if (d == ".text") {
            inData = false;
        } else if (d == ".data") {
            inData = true;
        } else if (d == ".entry") {
            if (line.operands.size() != 1) {
                *error = strfmt("line %d: .entry needs one label",
                                line.lineNo);
                return false;
            }
            entryLabel = line.operands[0];
        } else if (d == ".space") {
            s64 n;
            if (line.operands.size() != 1 ||
                !immediate(line.operands[0], &n) || n < 0) {
                *error = strfmt("line %d: bad .space", line.lineNo);
                return false;
            }
            prog.data.resize(prog.data.size() + size_t(n), 0);
        } else if (d == ".quad") {
            for (const auto &opnd : line.operands) {
                s64 v;
                if (!immediate(opnd, &v)) {
                    *error = strfmt("line %d: bad .quad value '%s'",
                                    line.lineNo, opnd.c_str());
                    return false;
                }
                u64 uv = u64(v);
                for (int i = 0; i < 8; ++i)
                    prog.data.push_back(u8(uv >> (8 * i)));
            }
        } else if (d == ".align") {
            s64 n;
            if (line.operands.size() != 1 ||
                !immediate(line.operands[0], &n) || !isPow2(u64(n))) {
                *error = strfmt("line %d: bad .align", line.lineNo);
                return false;
            }
            prog.data.resize(alignUp(prog.data.size(), u64(n)), 0);
        } else {
            *error = strfmt("line %d: unknown directive '%s'", line.lineNo,
                            d.c_str());
            return false;
        }
        return true;
    }

    /** Parse a plain integer (decimal or 0x...). */
    static bool
    immediate(const std::string &tok, s64 *out)
    {
        if (tok.empty())
            return false;
        char *end = nullptr;
        long long v = strtoll(tok.c_str(), &end, 0);
        if (!end || *end != '\0')
            return false;
        *out = v;
        return true;
    }

    /** Immediate, data symbol, or (for branches) a code-label fixup. */
    bool
    immOrSymbol(const std::string &tok, s32 *out, bool allow_code_label,
                size_t slot)
    {
        s64 v;
        if (immediate(tok, &v)) {
            *out = s32(v);
            return true;
        }
        auto it = prog.dataSymbols.find(tok);
        if (it != prog.dataSymbols.end()) {
            *out = s32(it->second);
            return true;
        }
        if (allow_code_label) {
            fixups.push_back({slot, tok});
            *out = 0;
            return true;
        }
        // Forward data references are not supported; code labels are
        // resolved via fixups only for control instructions.
        return false;
    }

    bool
    reg(const std::string &tok, LogReg *out)
    {
        unsigned r = parseRegister(tok);
        if (r >= numLogRegs)
            return false;
        *out = LogReg(r);
        return true;
    }

    /** Parse "imm(base)" or "symbol(base)". */
    bool
    memOperand(const std::string &tok, s32 *imm, LogReg *base)
    {
        auto open = tok.find('(');
        auto close = tok.find(')');
        if (open == std::string::npos || close == std::string::npos ||
            close < open)
            return false;
        std::string immpart = tok.substr(0, open);
        std::string regpart = tok.substr(open + 1, close - open - 1);
        if (!reg(regpart, base))
            return false;
        if (immpart.empty()) {
            *imm = 0;
            return true;
        }
        s64 v;
        if (immediate(immpart, &v)) {
            *imm = s32(v);
            return true;
        }
        auto it = prog.dataSymbols.find(immpart);
        if (it == prog.dataSymbols.end())
            return false;
        *imm = s32(it->second);
        return true;
    }

    bool
    instruction(const SourceLine &line, std::string *error)
    {
        // Pseudo-instructions: mv rc, ra  and  li rc, imm.
        if (line.mnemonic == "mv" || line.mnemonic == "li") {
            Instruction inst;
            inst.op = Opcode::ADDQI;
            const auto &ops = line.operands;
            if (ops.size() != 2 || !reg(ops[0], &inst.rc)) {
                *error = strfmt("line %d: bad operands for '%s'",
                                line.lineNo, line.mnemonic.c_str());
                return false;
            }
            if (line.mnemonic == "mv") {
                if (!reg(ops[1], &inst.ra)) {
                    *error = strfmt("line %d: bad register in mv",
                                    line.lineNo);
                    return false;
                }
            } else {
                inst.ra = regZero;
                if (!immOrSymbol(ops[1], &inst.imm, false,
                                 prog.code.size())) {
                    *error = strfmt("line %d: bad immediate in li",
                                    line.lineNo);
                    return false;
                }
            }
            prog.code.push_back(inst);
            return true;
        }

        const Opcode op = opFromName(line.mnemonic.c_str());
        if (op == Opcode::NUM_OPCODES) {
            *error = strfmt("line %d: unknown mnemonic '%s'", line.lineNo,
                            line.mnemonic.c_str());
            return false;
        }
        const OpTraits &t = opTraits(op);
        Instruction inst;
        inst.op = op;
        const auto &ops = line.operands;
        auto fail = [&]() {
            *error = strfmt("line %d: bad operands for '%s'", line.lineNo,
                            line.mnemonic.c_str());
            return false;
        };
        const size_t slot = prog.code.size();

        switch (t.cls) {
          case InstClass::SimpleInt:
          case InstClass::ComplexInt:
          case InstClass::FloatOp:
            if (op == Opcode::LDA) {
                if (ops.size() != 2 || !reg(ops[0], &inst.rc) ||
                    !memOperand(ops[1], &inst.imm, &inst.ra))
                    return fail();
                break;
            }
            if (t.hasImm) {
                // Immediates may also be data symbols or code labels
                // (jump-table bases, resolved via fixups).
                if (ops.size() != 3 || !reg(ops[0], &inst.rc) ||
                    !reg(ops[1], &inst.ra) ||
                    !immOrSymbol(ops[2], &inst.imm, true, slot))
                    return fail();
            } else {
                if (ops.size() != 3 || !reg(ops[0], &inst.rc) ||
                    !reg(ops[1], &inst.ra) || !reg(ops[2], &inst.rb))
                    return fail();
            }
            break;
          case InstClass::Load:
            if (ops.size() != 2 || !reg(ops[0], &inst.rc) ||
                !memOperand(ops[1], &inst.imm, &inst.ra))
                return fail();
            break;
          case InstClass::Store:
            if (ops.size() != 2 || !reg(ops[0], &inst.rb) ||
                !memOperand(ops[1], &inst.imm, &inst.ra))
                return fail();
            break;
          case InstClass::Branch:
            if (ops.size() != 2 || !reg(ops[0], &inst.ra) ||
                !immOrSymbol(ops[1], &inst.imm, true, slot))
                return fail();
            break;
          case InstClass::Jump:
            if (ops.size() != 1 ||
                !immOrSymbol(ops[0], &inst.imm, true, slot))
                return fail();
            break;
          case InstClass::Call:
            inst.rc = regRa;
            if (ops.empty() || ops.size() > 2 ||
                !immOrSymbol(ops[0], &inst.imm, true, slot))
                return fail();
            if (ops.size() == 2 && !reg(ops[1], &inst.rc))
                return fail();
            break;
          case InstClass::IndirectJump:
            if (ops.size() != 1 || !reg(ops[0], &inst.ra))
                return fail();
            break;
          case InstClass::Return:
            inst.ra = regRa;
            if (ops.size() > 1 || (ops.size() == 1 && !reg(ops[0], &inst.ra)))
                return fail();
            break;
          case InstClass::Syscall:
            if (ops.empty() || ops.size() > 3 ||
                !immOrSymbol(ops[0], &inst.imm, false, slot))
                return fail();
            if (ops.size() >= 2 && !reg(ops[1], &inst.ra))
                return fail();
            if (ops.size() == 3 && !reg(ops[2], &inst.rc))
                return fail();
            break;
          case InstClass::Nop:
          case InstClass::Halt:
            if (!ops.empty())
                return fail();
            break;
        }
        prog.code.push_back(inst);
        return true;
    }

    bool
    resolve(std::string *error)
    {
        for (const auto &f : fixups) {
            auto it = prog.codeSymbols.find(f.label);
            if (it == prog.codeSymbols.end()) {
                *error = strfmt("undefined label '%s'", f.label.c_str());
                return false;
            }
            prog.code[f.slot].imm = s32(it->second);
        }
        if (!entryLabel.empty()) {
            auto it = prog.codeSymbols.find(entryLabel);
            if (it == prog.codeSymbols.end()) {
                *error = strfmt("undefined entry label '%s'",
                                entryLabel.c_str());
                return false;
            }
            prog.entry = it->second;
        }
        return true;
    }

    const std::string &source;
    Program prog;
    bool inData = false;
    std::string entryLabel;
    struct Fixup { size_t slot; std::string label; };
    std::vector<Fixup> fixups;
};

} // namespace

Program
assembleText(const std::string &source, const std::string &name,
             std::string *error, bool *ok)
{
    TextAssembler as(source, name);
    std::string err;
    bool good = as.run(&err);
    if (error)
        *error = err;
    if (ok)
        *ok = good;
    return good ? as.take() : Program{};
}

Program
assembleTextOrDie(const std::string &source, const std::string &name)
{
    std::string err;
    bool ok = false;
    Program p = assembleText(source, name, &err, &ok);
    if (!ok)
        rix_fatal("assembly of '%s' failed: %s", name.c_str(), err.c_str());
    return p;
}

} // namespace rix
