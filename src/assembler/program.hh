/**
 * @file
 * Linked program image: code segment, initialized data segment, entry
 * point and symbol tables. Produced by the Builder or the text
 * assembler; consumed by the functional emulator and the cycle
 * simulator's loader.
 */

#ifndef RIX_ASSEMBLER_PROGRAM_HH
#define RIX_ASSEMBLER_PROGRAM_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "isa/decoded.hh"
#include "isa/inst.hh"

namespace rix
{

/** Default load address of the data segment. */
constexpr Addr defaultDataBase = 0x10000000;

/** Default initial stack pointer (stack grows down). */
constexpr Addr defaultStackBase = 0x7fff0000;

struct Program
{
    std::string name = "anon";

    /** Code segment; PC is an index into this vector. */
    std::vector<Instruction> code;

    /** Initialized data image, loaded at dataBase. */
    std::vector<u8> data;

    Addr dataBase = defaultDataBase;
    Addr stackBase = defaultStackBase;
    InstAddr entry = 0;

    std::map<std::string, InstAddr> codeSymbols;
    std::map<std::string, Addr> dataSymbols;

    /** Code-segment size in instruction slots. */
    size_t codeSize() const { return code.size(); }

    /** Fetch a slot; out-of-range PCs decode as NOPs (wrong-path safe). */
    Instruction
    fetch(InstAddr pc) const
    {
        return pc < code.size() ? code[pc] : makeNop();
    }

    /** Look up a code symbol; fatal when missing. */
    InstAddr codeSymbol(const std::string &name) const;

    /** Look up a data symbol; fatal when missing. */
    Addr dataSymbol(const std::string &name) const;

    // ---- pre-decoded form (see isa/decoded.hh) ----
    //
    // Built lazily, exactly once, and shared read-only by every
    // emulator/core bound to this program; ProgramCache and the serve
    // daemon decode eagerly at build/admission time so the sharing
    // consumers never pay the one-time cost. Copies deliberately do
    // NOT share or carry the cache: code paths that copy a Program do
    // so to mutate the copy (the fuzz minimizer's NOP mutations), and
    // a stale decoded form must never survive that.

    Program() = default;
    Program(const Program &o) { copyFields(o); }
    Program &
    operator=(const Program &o)
    {
        if (this != &o) {
            copyFields(o);
            invalidateDecoded();
        }
        return *this;
    }
    Program(Program &&) = default;
    Program &operator=(Program &&) = default;

    /**
     * The decoded form, building it on first request (thread-safe).
     * The reference stays valid while this Program is alive and
     * neither mutated-and-invalidated nor assigned over; holders that
     * outlive those events (or the Program) take decodedShared().
     */
    const DecodedProgram &decoded() const { return *decodedShared(); }

    /** As decoded(), but sharing ownership. */
    std::shared_ptr<const DecodedProgram> decodedShared() const;

    /** Drop the decoded form after an in-place code mutation; the next
     *  decoded() call rebuilds from the current code. */
    void invalidateDecoded() { std::atomic_store(&decoded_, Decoded()); }

    /** Decoded-form heap bytes (0 until built) for cache accounting. */
    size_t
    decodedBytes() const
    {
        const Decoded d = std::atomic_load(&decoded_);
        return d ? d->bytes() : 0;
    }

  private:
    using Decoded = std::shared_ptr<const DecodedProgram>;

    void
    copyFields(const Program &o)
    {
        name = o.name;
        code = o.code;
        data = o.data;
        dataBase = o.dataBase;
        stackBase = o.stackBase;
        entry = o.entry;
        codeSymbols = o.codeSymbols;
        dataSymbols = o.dataSymbols;
    }

    /** The built decoded form; accessed only through the atomic
     *  shared_ptr free functions (C++17's pre-atomic<shared_ptr>
     *  idiom). */
    mutable Decoded decoded_;
};

} // namespace rix

#endif // RIX_ASSEMBLER_PROGRAM_HH
