/**
 * @file
 * Linked program image: code segment, initialized data segment, entry
 * point and symbol tables. Produced by the Builder or the text
 * assembler; consumed by the functional emulator and the cycle
 * simulator's loader.
 */

#ifndef RIX_ASSEMBLER_PROGRAM_HH
#define RIX_ASSEMBLER_PROGRAM_HH

#include <map>
#include <string>
#include <vector>

#include "isa/inst.hh"

namespace rix
{

/** Default load address of the data segment. */
constexpr Addr defaultDataBase = 0x10000000;

/** Default initial stack pointer (stack grows down). */
constexpr Addr defaultStackBase = 0x7fff0000;

struct Program
{
    std::string name = "anon";

    /** Code segment; PC is an index into this vector. */
    std::vector<Instruction> code;

    /** Initialized data image, loaded at dataBase. */
    std::vector<u8> data;

    Addr dataBase = defaultDataBase;
    Addr stackBase = defaultStackBase;
    InstAddr entry = 0;

    std::map<std::string, InstAddr> codeSymbols;
    std::map<std::string, Addr> dataSymbols;

    /** Code-segment size in instruction slots. */
    size_t codeSize() const { return code.size(); }

    /** Fetch a slot; out-of-range PCs decode as NOPs (wrong-path safe). */
    Instruction
    fetch(InstAddr pc) const
    {
        return pc < code.size() ? code[pc] : makeNop();
    }

    /** Look up a code symbol; fatal when missing. */
    InstAddr codeSymbol(const std::string &name) const;

    /** Look up a data symbol; fatal when missing. */
    Addr dataSymbol(const std::string &name) const;
};

} // namespace rix

#endif // RIX_ASSEMBLER_PROGRAM_HH
