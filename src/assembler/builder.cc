#include "assembler/builder.hh"

#include <cstring>

#include "base/bitutil.hh"
#include "base/log.hh"

namespace rix
{

Builder::Builder(std::string program_name)
{
    prog.name = std::move(program_name);
}

void
Builder::bind(const std::string &label)
{
    if (prog.codeSymbols.count(label))
        rix_fatal("label '%s' bound twice", label.c_str());
    prog.codeSymbols[label] = here();
}

std::string
Builder::genLabel(const std::string &prefix)
{
    return strfmt("%s$%u", prefix.c_str(), labelCounter++);
}

InstAddr
Builder::emit(const Instruction &inst)
{
    prog.code.push_back(inst);
    return prog.code.size() - 1;
}

// ALU reg-reg forms.
#define RIX_RR(fn, OP) \
    void Builder::fn(LogReg rc, LogReg ra, LogReg rb) \
    { emit(makeRR(Opcode::OP, rc, ra, rb)); }

RIX_RR(addq, ADDQ)
RIX_RR(subq, SUBQ)
RIX_RR(and_, AND)
RIX_RR(bis, BIS)
RIX_RR(xor_, XOR)
RIX_RR(sll, SLL)
RIX_RR(srl, SRL)
RIX_RR(sra, SRA)
RIX_RR(cmpeq, CMPEQ)
RIX_RR(cmplt, CMPLT)
RIX_RR(cmple, CMPLE)
RIX_RR(mulq, MULQ)
RIX_RR(divq, DIVQ)
RIX_RR(fadd, FADD)
RIX_RR(fmul, FMUL)
RIX_RR(fdiv, FDIV)
#undef RIX_RR

// ALU reg-imm forms.
#define RIX_RI(fn, OP) \
    void Builder::fn(LogReg rc, LogReg ra, s32 imm) \
    { emit(makeRI(Opcode::OP, rc, ra, imm)); }

RIX_RI(addqi, ADDQI)
RIX_RI(subqi, SUBQI)
RIX_RI(andi, ANDI)
RIX_RI(bisi, BISI)
RIX_RI(xori, XORI)
RIX_RI(slli, SLLI)
RIX_RI(srli, SRLI)
RIX_RI(srai, SRAI)
RIX_RI(cmpeqi, CMPEQI)
RIX_RI(cmplti, CMPLTI)
RIX_RI(cmplei, CMPLEI)
RIX_RI(mulqi, MULQI)
#undef RIX_RI

void
Builder::lda(LogReg rc, s32 imm, LogReg ra)
{
    emit(makeRI(Opcode::LDA, rc, ra, imm));
}

void
Builder::li(LogReg rc, s32 imm)
{
    addqi(rc, regZero, imm);
}

void
Builder::liCode(LogReg rc, const std::string &label)
{
    addqi(rc, regZero, 0);
    fixupBranch(label);
}

void
Builder::mv(LogReg rc, LogReg ra)
{
    addqi(rc, ra, 0);
}

void
Builder::nop()
{
    emit(makeNop());
}

void
Builder::ldq(LogReg rc, s32 imm, LogReg base)
{
    emit(makeLoad(Opcode::LDQ, rc, imm, base));
}

void
Builder::ldl(LogReg rc, s32 imm, LogReg base)
{
    emit(makeLoad(Opcode::LDL, rc, imm, base));
}

void
Builder::stq(LogReg data, s32 imm, LogReg base)
{
    emit(makeStore(Opcode::STQ, data, imm, base));
}

void
Builder::stl(LogReg data, s32 imm, LogReg base)
{
    emit(makeStore(Opcode::STL, data, imm, base));
}

void
Builder::fixupBranch(const std::string &label)
{
    fixups.push_back({prog.code.size() - 1, label});
}

void
Builder::br(const std::string &label)
{
    emit(makeJump(0));
    fixupBranch(label);
}

#define RIX_BCC(fn, OP) \
    void Builder::fn(LogReg ra, const std::string &label) \
    { emit(makeBranch(Opcode::OP, ra, 0)); fixupBranch(label); }

RIX_BCC(beq, BEQ)
RIX_BCC(bne, BNE)
RIX_BCC(blt, BLT)
RIX_BCC(bge, BGE)
RIX_BCC(bgt, BGT)
RIX_BCC(ble, BLE)
#undef RIX_BCC

void
Builder::jsr(const std::string &label, LogReg link)
{
    emit(makeCall(0, link));
    fixupBranch(label);
}

void
Builder::jmp(LogReg ra)
{
    emit(makeIndirect(Opcode::JMP, ra));
}

void
Builder::ret(LogReg ra)
{
    emit(makeIndirect(Opcode::RET, ra));
}

void
Builder::syscall(s32 code, LogReg arg, LogReg result)
{
    emit(makeSyscall(code, arg, result));
}

void
Builder::halt()
{
    emit(makeHalt());
}

Addr
Builder::space(const std::string &sym, size_t bytes, size_t align)
{
    if (prog.dataSymbols.count(sym))
        rix_fatal("data symbol '%s' defined twice", sym.c_str());
    size_t off = alignUp(prog.data.size(), align);
    prog.data.resize(off + bytes, 0);
    const Addr addr = prog.dataBase + off;
    prog.dataSymbols[sym] = addr;
    return addr;
}

Addr
Builder::quad(const std::string &sym, u64 value)
{
    return quads(sym, {value});
}

Addr
Builder::quads(const std::string &sym, const std::vector<u64> &values)
{
    const Addr addr = space(sym, values.size() * 8, 8);
    const size_t off = addr - prog.dataBase;
    for (size_t i = 0; i < values.size(); ++i)
        memcpy(&prog.data[off + i * 8], &values[i], 8);
    return addr;
}

Addr
Builder::randomQuads(const std::string &sym, size_t count, Rng &rng,
                     u64 bound)
{
    std::vector<u64> vals(count);
    for (auto &v : vals)
        v = bound ? rng.below(bound) : rng.next();
    return quads(sym, vals);
}

Addr
Builder::dataAddr(const std::string &sym) const
{
    return prog.dataSymbol(sym);
}

void
Builder::entry(const std::string &label)
{
    entryLabel = label;
}

Program
Builder::finish()
{
    if (finished)
        rix_fatal("Builder::finish called twice");
    finished = true;

    for (const auto &f : fixups) {
        auto it = prog.codeSymbols.find(f.label);
        if (it == prog.codeSymbols.end())
            rix_fatal("undefined label '%s' in program '%s'",
                      f.label.c_str(), prog.name.c_str());
        prog.code[f.slot].imm = s32(it->second);
    }
    if (!entryLabel.empty())
        prog.entry = prog.codeSymbol(entryLabel);
    return std::move(prog);
}

} // namespace rix
