/**
 * @file
 * Programmatic assembler: a label-resolving builder DSL.
 *
 * The synthetic workloads and most tests construct programs through this
 * interface. Labels are string-named; forward references are recorded as
 * fixups and resolved by finish(). Data-segment symbols can be used as
 * immediates anywhere (addresses fit in the 32-bit immediate field).
 */

#ifndef RIX_ASSEMBLER_BUILDER_HH
#define RIX_ASSEMBLER_BUILDER_HH

#include <string>
#include <vector>

#include "assembler/program.hh"
#include "base/rng.hh"

namespace rix
{

class Builder
{
  public:
    explicit Builder(std::string program_name = "anon");

    // ---- labels ----

    /** Bind @p label to the next emitted instruction slot. */
    void bind(const std::string &label);

    /** Current emission position. */
    InstAddr here() const { return prog.code.size(); }

    /** Generate a unique label with the given prefix. */
    std::string genLabel(const std::string &prefix = "L");

    // ---- raw emission ----

    /** Append one instruction; returns its slot index. */
    InstAddr emit(const Instruction &inst);

    // ---- ALU convenience emitters ----

    void addq(LogReg rc, LogReg ra, LogReg rb);
    void subq(LogReg rc, LogReg ra, LogReg rb);
    void and_(LogReg rc, LogReg ra, LogReg rb);
    void bis(LogReg rc, LogReg ra, LogReg rb);
    void xor_(LogReg rc, LogReg ra, LogReg rb);
    void sll(LogReg rc, LogReg ra, LogReg rb);
    void srl(LogReg rc, LogReg ra, LogReg rb);
    void sra(LogReg rc, LogReg ra, LogReg rb);
    void cmpeq(LogReg rc, LogReg ra, LogReg rb);
    void cmplt(LogReg rc, LogReg ra, LogReg rb);
    void cmple(LogReg rc, LogReg ra, LogReg rb);
    void mulq(LogReg rc, LogReg ra, LogReg rb);
    void divq(LogReg rc, LogReg ra, LogReg rb);
    void fadd(LogReg rc, LogReg ra, LogReg rb);
    void fmul(LogReg rc, LogReg ra, LogReg rb);
    void fdiv(LogReg rc, LogReg ra, LogReg rb);

    void addqi(LogReg rc, LogReg ra, s32 imm);
    void subqi(LogReg rc, LogReg ra, s32 imm);
    void andi(LogReg rc, LogReg ra, s32 imm);
    void bisi(LogReg rc, LogReg ra, s32 imm);
    void xori(LogReg rc, LogReg ra, s32 imm);
    void slli(LogReg rc, LogReg ra, s32 imm);
    void srli(LogReg rc, LogReg ra, s32 imm);
    void srai(LogReg rc, LogReg ra, s32 imm);
    void cmpeqi(LogReg rc, LogReg ra, s32 imm);
    void cmplti(LogReg rc, LogReg ra, s32 imm);
    void cmplei(LogReg rc, LogReg ra, s32 imm);
    void mulqi(LogReg rc, LogReg ra, s32 imm);

    /** lda rc, imm(ra): rc = ra + imm. */
    void lda(LogReg rc, s32 imm, LogReg ra);

    /** Load 32-bit-representable immediate: addqi rc, r31, imm. */
    void li(LogReg rc, s32 imm);

    /** Load a code label's slot index (resolved at finish). */
    void liCode(LogReg rc, const std::string &label);

    /** Register move (addqi rc, ra, 0). */
    void mv(LogReg rc, LogReg ra);

    void nop();

    // ---- memory ----

    void ldq(LogReg rc, s32 imm, LogReg base);
    void ldl(LogReg rc, s32 imm, LogReg base);
    void stq(LogReg data, s32 imm, LogReg base);
    void stl(LogReg data, s32 imm, LogReg base);

    // ---- control (label-targeted) ----

    void br(const std::string &label);
    void beq(LogReg ra, const std::string &label);
    void bne(LogReg ra, const std::string &label);
    void blt(LogReg ra, const std::string &label);
    void bge(LogReg ra, const std::string &label);
    void bgt(LogReg ra, const std::string &label);
    void ble(LogReg ra, const std::string &label);
    void jsr(const std::string &label, LogReg link = regRa);
    void jmp(LogReg ra);
    void ret(LogReg ra = regRa);
    void syscall(s32 code, LogReg arg = regZero, LogReg result = regZero);
    void halt();

    // ---- data segment ----

    /** Reserve @p bytes zeroed bytes; returns the symbol's address. */
    Addr space(const std::string &sym, size_t bytes, size_t align = 8);

    /** Emit one 64-bit data word; returns its address. */
    Addr quad(const std::string &sym, u64 value);

    /** Emit @p values as consecutive 64-bit words. */
    Addr quads(const std::string &sym, const std::vector<u64> &values);

    /** Fill @p count quads at @p sym with deterministic random values. */
    Addr randomQuads(const std::string &sym, size_t count, Rng &rng,
                     u64 bound = 0);

    /** Address of a previously defined data symbol. */
    Addr dataAddr(const std::string &sym) const;

    // ---- finalization ----

    /** Set the entry point to @p label (defaults to slot 0). */
    void entry(const std::string &label);

    /** Resolve fixups and return the finished image. */
    Program finish();

  private:
    void fixupBranch(const std::string &label);

    Program prog;
    std::string entryLabel;
    struct Fixup { size_t slot; std::string label; };
    std::vector<Fixup> fixups;
    unsigned labelCounter = 0;
    bool finished = false;
};

} // namespace rix

#endif // RIX_ASSEMBLER_BUILDER_HH
