/**
 * @file
 * Text assembler: parses ".s"-style source into a Program.
 *
 * Grammar (line oriented; '#' and ';' start comments):
 *
 *   [label:] mnemonic operands
 *   [label:] .text | .data | .entry label | .align n
 *   [label:] .space n | .quad v[, v...]
 *
 * Operands: registers (r0..r31 or ABI aliases zero/sp/ra/gp/v0/a0-a5/
 * s0-s6/t0-t11), signed immediates (decimal or 0x hex), code labels
 * (branch/jsr targets), data labels (usable as immediates), and
 * imm(base) memory forms. 'ret' with no operand defaults to r26.
 */

#ifndef RIX_ASSEMBLER_PARSER_HH
#define RIX_ASSEMBLER_PARSER_HH

#include <string>

#include "assembler/program.hh"

namespace rix
{

/**
 * Assemble @p source.
 * @param source   assembler text
 * @param name     program name for diagnostics
 * @param error    receives a message when assembly fails
 * @param ok       set to false on failure
 */
Program assembleText(const std::string &source,
                     const std::string &name,
                     std::string *error,
                     bool *ok);

/** Assemble or die: convenience for tests and examples. */
Program assembleTextOrDie(const std::string &source,
                          const std::string &name = "asm");

/** Resolve a register alias; returns numLogRegs when unknown. */
unsigned parseRegister(const std::string &token);

} // namespace rix

#endif // RIX_ASSEMBLER_PARSER_HH
