/**
 * @file
 * Physical register state vector with true reference counts (paper
 * section 2.2).
 *
 * Each physical register carries:
 *  - a saturating reference count (the number of active mappings:
 *    in-flight or retired-but-not-shadowed logical register instances),
 *  - a valid bit distinguishing the two zero-reference states: 0/F
 *    ("contains garbage", produced by a squashed instruction that never
 *    executed — integrating it would deadlock) and 0/T ("unused but
 *    useful, integration-eligible"),
 *  - a wrap-around generation counter incremented at every reallocation
 *    (the register mis-integration filter of section 2.2),
 *  - a ready bit maintained by the pipeline (value computed), which
 *    decides the 0/T vs 0/F transition on squash,
 *  - the zero-origin (squash vs overwrite), needed to restrict the
 *    squash-reuse-only mode to squashed registers.
 *
 * Free-register reclamation is circular/FIFO (the paper pairs FIFO
 * reclamation with IT LRU to approximate coordinated replacement).
 */

#ifndef RIX_CORE_REG_STATE_HH
#define RIX_CORE_REG_STATE_HH

#include <deque>
#include <vector>

#include "base/types.hh"
#include "core/params.hh"

namespace rix
{

/** Why a reference count dropped to zero. */
enum class ZeroOrigin : u8
{
    Never,      // never been mapped since reset (initial free state)
    Squashed,   // last unmapping was a mis-speculation squash
    Shadowed,   // last unmapping was an architectural overwrite at retire
};

class RegStateVector
{
  public:
    explicit RegStateVector(const IntegrationParams &params);

    /** Reconfigure and return to the power-on state (all registers
     *  free, counts zero, generations zero, FIFO queue rebuilt). */
    void reset(const IntegrationParams &params);

    /** Total physical registers. */
    unsigned numRegs() const { return unsigned(entries.size()); }

    /** Registers currently reclaimable (count == 0, not pinned). */
    unsigned freeCount() const;

    /** True when allocate() can succeed. */
    bool canAllocate() const;

    /**
     * Allocate a register in FIFO order. The register transitions to
     * count=1, valid (a mapped register is integration-eligible), not
     * ready, and its generation counter advances.
     */
    PhysReg allocate();

    /**
     * Pin a register (used for the architectural zero register): it is
     * permanently mapped and never reclaimed or integrated.
     */
    void pin(PhysReg r);

    /** Add a mapping (an integration). Count must not be saturated. */
    void addRef(PhysReg r);

    /** True when the count cannot be incremented further. */
    bool refSaturated(PhysReg r) const;

    /** Pipeline notification: the register's value has been computed. */
    void markReady(PhysReg r);

    bool ready(PhysReg r) const { return entries[r].ready; }

    /**
     * Remove a mapping because a younger instruction's retirement
     * architecturally overwrote it. On the last mapping the register
     * becomes 0/T (still integration-eligible) and reclaimable.
     */
    void releaseOverwrite(PhysReg r);

    /**
     * Remove a mapping because the mapping instruction was squashed
     * (also used to undo allocations and integrations during recovery).
     * On the last mapping the register becomes 0/T if its value was
     * computed, 0/F otherwise (deadlock-avoidance rule).
     */
    void releaseSquash(PhysReg r);

    u8 count(PhysReg r) const { return entries[r].count; }
    bool valid(PhysReg r) const { return entries[r].valid; }
    u8 gen(PhysReg r) const { return entries[r].gen; }
    ZeroOrigin zeroOrigin(PhysReg r) const { return entries[r].origin; }
    bool pinned(PhysReg r) const { return entries[r].pinnedReg; }

    /**
     * Integration-eligibility test.
     * @param r         candidate output register of an IT entry
     * @param expect_gen generation recorded in the IT entry
     * @param mode      integration mode (squash-only is restrictive)
     * @param check_gen whether generation counters participate (ablation)
     */
    bool eligible(PhysReg r, u8 expect_gen, IntegrationMode mode,
                  bool check_gen = true) const;

    /**
     * Structural invariant: every count==0 non-pinned register is
     * reachable through the free queue (no leaks). O(n); test use.
     */
    bool checkNoLeaks() const;

    /** Full-state snapshot/restore (monolithic checkpointing; tests). */
    struct Snapshot
    {
        std::vector<u8> counts, gens;
        std::vector<u8> flags;
        std::deque<PhysReg> freeQueue;
    };
    Snapshot snapshot() const;
    void restore(const Snapshot &s);

  private:
    struct Entry
    {
        u8 count = 0;
        u8 gen = 0;
        bool valid = false;
        bool ready = false;
        bool pinnedReg = false;
        ZeroOrigin origin = ZeroOrigin::Never;
    };

    void dropToZero(Entry &e, PhysReg r, ZeroOrigin why);

    std::vector<Entry> entries;
    std::deque<PhysReg> freeQueue; // FIFO reclamation order (lazy entries)
    u8 maxCount;
    u8 genMask;
};

} // namespace rix

#endif // RIX_CORE_REG_STATE_HH
