/**
 * @file
 * The integration engine: the renaming-stage decision logic of register
 * integration (paper section 2).
 *
 * The engine is pipeline-agnostic. The renamer presents each
 * instruction together with its map-table-translated source registers;
 * the engine answers "integrate this output register" or "allocate and
 * record entries". The caller owns the map table and applies the
 * decision (and can veto it, e.g. with the oracle mis-integration
 * suppressor, which needs access to values).
 *
 * Instruction classes that never integrate: stores (their execution
 * arms store-load forwarding and must happen), direct jumps (free at
 * decode), calls/returns/indirect jumps, syscalls (executed at
 * retirement), nops and halts.
 *
 * Entry creation on failed integration:
 *  - ALU ops and loads create a direct entry;
 *  - conditional branches create an outcome entry (filled at execute);
 *  - in Reverse mode, stack-pointer-based stores create the entry of
 *    the complementary load, and stack-pointer decrements create the
 *    entry of the complementary increment (with input and output
 *    registers swapped and the immediate negated).
 */

#ifndef RIX_CORE_INTEGRATION_HH
#define RIX_CORE_INTEGRATION_HH

#include <deque>

#include "core/integration_table.hh"
#include "core/lisp.hh"
#include "core/params.hh"
#include "core/reg_state.hh"
#include "isa/inst.hh"

namespace rix
{

/** A renaming instruction, as seen by the integration logic. */
struct RenameCandidate
{
    Instruction inst;
    InstAddr pc = 0;
    unsigned callDepth = 0;
    u64 seq = 0;            // rename-stream sequence number
    bool hasSrc1 = false, hasSrc2 = false;
    PhysReg src1 = invalidPhysReg, src2 = invalidPhysReg;
    u8 src1Gen = 0, src2Gen = 0;
};

/** Outcome of an integration attempt. */
struct IntegrationResult
{
    bool integrated = false;
    bool reverse = false;       // matched a reverse entry
    bool suppressed = false;    // a match existed but the LISP vetoed it

    // Register payload (non-branch integrations).
    PhysReg preg = invalidPhysReg;
    u8 gen = 0;

    // Branch payload.
    bool isBranch = false;
    bool taken = false;

    u64 producerSeq = 0;        // creator's rename seq (distance stats)
    ITHandle entryHandle;       // matched entry (for invalidation)
};

class IntegrationEngine
{
  public:
    IntegrationEngine(const IntegrationParams &params,
                      RegStateVector &reg_state);

    /** Reconfigure (same register-state binding) and return to the
     *  power-on state: empty IT, cold LISP, no pending writes. */
    void reset(const IntegrationParams &params);

    /** True when this instruction's class may integrate results. */
    static bool classIntegrates(const Instruction &inst);

    /** True when this instruction's class creates a direct entry. */
    static bool classCreatesEntry(const Instruction &inst);

    /**
     * Attempt integration. Pure decision: neither the map table nor the
     * reference counts are modified; the caller applies (or vetoes) the
     * result and then calls addRef itself.
     */
    IntegrationResult tryIntegrate(const RenameCandidate &cand);

    /**
     * Record IT entries for a renamed instruction. Call after the
     * destination register is known (allocated or integrated).
     *
     * @param cand        the renamed instruction
     * @param has_dest    instruction writes a register
     * @param dest        destination physical register
     * @param dest_gen    its generation
     * @param integrated  integration succeeded (direct entry skipped;
     *                    reverse entries are still created)
     * @return handle of the created branch-outcome entry, if any
     */
    ITHandle recordEntries(const RenameCandidate &cand, bool has_dest,
                           PhysReg dest, u8 dest_gen, bool integrated);

    /** Forward a branch outcome to its IT entry. */
    void fillBranchOutcome(const ITHandle &h, bool taken);

    IntegrationTable &table() { return it; }
    Lisp &lisp() { return lisp_; }
    const IntegrationParams &params() const { return p; }

    u64 reverseEntriesCreated() const { return nReverseEntries; }
    u64 directEntriesCreated() const { return nDirectEntries; }

    /** Entries currently buffered in the pipelined IT write stage. */
    size_t pendingWrites() const { return pending.size(); }

  private:
    ITKey keyFor(const RenameCandidate &cand) const;

    /**
     * Pipelined integration (itWriteDelay > 0): inserts are buffered
     * and become visible only once the rename stream has advanced past
     * the creator by the configured depth. Drained at the head of
     * every lookup/insert with the current stream position.
     */
    struct PendingInsert
    {
        u64 visibleAtSeq = 0;
        ITKey key;
        bool hasOut = false;
        PhysReg out = invalidPhysReg;
        u8 outGen = 0;
        bool reverse = false;
        bool isBranch = false;
        u64 createSeq = 0;
        u64 id = 0; // pending-handle id (for branch-outcome fills)
        bool outcomeValid = false;
        bool taken = false;
    };

    void drainPending(u64 now_seq);
    ITHandle enqueueOrInsert(const ITKey &key, bool has_out, PhysReg out,
                             u8 out_gen, bool reverse, bool is_branch,
                             u64 create_seq);

    IntegrationParams p;
    RegStateVector &regs;
    IntegrationTable it;
    Lisp lisp_;
    std::deque<PendingInsert> pending;
    u64 nextPendingId = 1;
    u64 nReverseEntries = 0, nDirectEntries = 0;
};

} // namespace rix

#endif // RIX_CORE_INTEGRATION_HH
