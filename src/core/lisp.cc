#include "core/lisp.hh"

#include "base/bitutil.hh"
#include "base/log.hh"

namespace rix
{

Lisp::Lisp(unsigned entries, unsigned assoc_) { reset(entries, assoc_); }

void
Lisp::reset(unsigned entries, unsigned assoc_)
{
    if (entries == 0 || !isPow2(entries))
        rix_fatal("LISP entries must be a power of two (%u)", entries);
    assoc = assoc_ >= entries ? entries : assoc_;
    sets = entries / assoc;
    if (!isPow2(sets))
        rix_fatal("LISP sets must be a power of two");
    table.assign(size_t(sets) * assoc, Entry{});
    lruClock = 0;
    nSuppressions = nTrainings = 0;
}

bool
Lisp::suppress(InstAddr pc)
{
    Entry *base = &table[size_t(indexOf(pc)) * assoc];
    for (unsigned w = 0; w < assoc; ++w) {
        Entry &e = base[w];
        if (e.valid && e.tag == pc) {
            e.lruStamp = ++lruClock;
            ++nSuppressions;
            return true;
        }
    }
    return false;
}

void
Lisp::trainMisintegration(InstAddr pc)
{
    ++nTrainings;
    Entry *base = &table[size_t(indexOf(pc)) * assoc];
    unsigned victim = 0;
    u64 best = ~u64(0);
    for (unsigned w = 0; w < assoc; ++w) {
        Entry &e = base[w];
        if (e.valid && e.tag == pc)
            return; // already present
        if (!e.valid) {
            victim = w;
            best = 0;
        } else if (e.lruStamp < best) {
            best = e.lruStamp;
            victim = w;
        }
    }
    Entry &e = base[victim];
    e.valid = true;
    e.tag = pc;
    e.lruStamp = ++lruClock;
}

void
Lisp::reset()
{
    for (auto &e : table)
        e.valid = false;
    nSuppressions = nTrainings = 0;
}

} // namespace rix
