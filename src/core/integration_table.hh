/**
 * @file
 * The Integration Table (IT).
 *
 * Stores <operation, input-preg/gen pair(s), output-preg/gen> tuples of
 * recently renamed instructions. A renaming instruction whose operation
 * and (current-map) input physical registers match an entry may
 * integrate the entry's output register instead of executing.
 *
 * Two indexing disciplines (paper section 2.3):
 *  - PC indexing (squash/general reuse): the set index and tag are the
 *    instruction's PC;
 *  - opcode indexing: the set index is a structured mix of opcode,
 *    immediate and dynamic call depth; the tag is the minimal
 *    opcode/immediate pair, so different static instructions can
 *    integrate one another's results.
 *
 * Reverse entries (section 2.4) are stored in the same unified table;
 * they are written under the *inverse* operation's key so that the
 * future inverse instruction's ordinary lookup finds them.
 *
 * Conditional branches have no output register; their entries carry the
 * branch outcome instead, filled in when the creating branch executes
 * (handles are id-checked so a reallocated entry is never corrupted).
 */

#ifndef RIX_CORE_INTEGRATION_TABLE_HH
#define RIX_CORE_INTEGRATION_TABLE_HH

#include <vector>

#include "base/stats.hh"
#include "core/params.hh"
#include "isa/opcode.hh"

namespace rix
{

struct ITEntry
{
    bool valid = false;
    bool reverse = false;   // created as a reverse entry

    // Operation identity (tag).
    Opcode op = Opcode::NOP;
    s32 imm = 0;
    u64 pcTag = 0;          // participates in the tag under PC indexing

    // Input operands as physical registers + generations.
    bool hasIn1 = false, hasIn2 = false;
    PhysReg in1 = invalidPhysReg, in2 = invalidPhysReg;
    u8 gen1 = 0, gen2 = 0;

    // Output physical register (absent for branch entries).
    bool hasOut = false;
    PhysReg out = invalidPhysReg;
    u8 outGen = 0;

    // Branch outcome payload.
    bool isBranch = false;
    bool outcomeValid = false;
    bool taken = false;

    u64 id = 0;         // unique, for outcome-fill handles
    u64 createSeq = 0;  // rename-stream position of the creator
    u64 lruStamp = 0;
};

/** Stable reference to an entry, validated by id on use. Packed to 16
 *  bytes: two of these ride in every in-flight instruction record. */
struct ITHandle
{
    u64 id = 0;
    u32 set = 0;
    u16 way = 0;
    bool valid = false;
    // Pipelined-IT support: the entry is still in the write-stage
    // buffer; `id` then names the pending record instead.
    bool isPending = false;
};

/** Everything a lookup needs to identify a match. */
struct ITKey
{
    Opcode op = Opcode::NOP;
    s32 imm = 0;
    u64 pc = 0;
    unsigned callDepth = 0;
    bool hasIn1 = false, hasIn2 = false;
    PhysReg in1 = invalidPhysReg, in2 = invalidPhysReg;
    u8 gen1 = 0, gen2 = 0;
};

class IntegrationTable
{
  public:
    explicit IntegrationTable(const IntegrationParams &params);

    /**
     * Reconfigure to @p params and return to the power-on state.
     * Reuses the probe lanes and payload array when the geometry is
     * unchanged (the long-lived-context reuse path of the sweep
     * engine).
     */
    void reset(const IntegrationParams &params);

    /**
     * Find an entry whose operation tag and inputs match @p key.
     * Updates LRU on hit. Returns nullptr on miss. The caller still
     * has to test output-register eligibility against the reference
     * vector.
     */
    ITEntry *lookup(const ITKey &key, ITHandle *handle = nullptr);

    /**
     * Insert an entry built from @p key with the given output register.
     * An exact tag+input duplicate is overwritten in place; otherwise
     * the set's LRU victim is replaced.
     */
    ITHandle insert(const ITKey &key, bool has_out, PhysReg out, u8 out_gen,
                    bool reverse, bool is_branch, u64 create_seq);

    /** Record the outcome of the branch that created @p h, if it still
     *  owns the entry. */
    void fillBranchOutcome(const ITHandle &h, bool taken);

    /** Entry behind a handle, or nullptr if reallocated since. */
    ITEntry *at(const ITHandle &h);

    /** Invalidate the entry behind @p h (mis-integration response). */
    void invalidate(const ITHandle &h);

    /** Invalidate every entry (used on mis-integration storms/tests). */
    void invalidateAll();

    unsigned numSets() const { return sets; }
    unsigned associativity() const { return assoc; }

    /** Set index for the given key (exposed for distribution tests). */
    u32 index(const ITKey &key) const;

    u64 lookups() const { return nLookups; }
    u64 hits() const { return nHits; }
    u64 inserts() const { return nInserts; }
    u64 replacements() const { return nReplacements; }

  private:
    /**
     * Everything one probe needs, computed once per key: the set index
     * mix plus the packed tag/input compare words. Shared by lookup()
     * and insert() so the mix is never recomputed for the same key.
     */
    struct Probe
    {
        u32 set;
        u64 tag;   // valid bit | opcode | immediate
        u64 input; // canonical in1/in2/gen1/gen2/has-flag pack
    };

    Probe makeProbe(const ITKey &key) const;
    u64 packInputs(bool h1, bool h2, PhysReg in1, PhysReg in2, u8 g1,
                   u8 g2) const;
    void writeLanes(size_t idx, const ITEntry &e);

    IntegrationParams params;
    unsigned sets;
    unsigned assoc;
    bool pcTagged;     // PC participates in the tag (PC indexing)
    u64 inputGenMask;  // strips gen bits when gen counters are off

    /**
     * Probe lanes in structure-of-arrays form, row-major sets x assoc.
     * lookup() scans only these three compact lanes; the fat payload
     * row in `table` is touched on a hit (and on insert/victim scan).
     * tagLane is 0 for an invalid way: a key word always carries the
     * valid bit, so one compare covers validity and operation tag.
     */
    std::vector<u64> tagLane;
    std::vector<u64> pcLane;
    std::vector<u64> inputLane;

    std::vector<ITEntry> table; // sets x assoc, row-major (payload)
    u64 lruClock = 0;
    u64 nextId = 1;
    u64 nLookups = 0, nHits = 0, nInserts = 0, nReplacements = 0;
};

} // namespace rix

#endif // RIX_CORE_INTEGRATION_TABLE_HH
