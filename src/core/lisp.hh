/**
 * @file
 * Load Integration Suppression Predictor (LISP).
 *
 * A PC-indexed tag cache (paper baseline: 1K entries, 2-way). A hit
 * suppresses the integration of the load being renamed. Entries are
 * inserted when DIVA detects a load mis-integration. The predictor is
 * deliberately overbiased: entries are never aged out except by
 * replacement, trading false suppressions for fewer mis-integrations.
 */

#ifndef RIX_CORE_LISP_HH
#define RIX_CORE_LISP_HH

#include <vector>

#include "base/types.hh"

namespace rix
{

class Lisp
{
  public:
    Lisp(unsigned entries, unsigned assoc);

    /** Should this load's integration be suppressed? (tag hit) */
    bool suppress(InstAddr pc);

    /** DIVA detected a mis-integration by the load at @p pc. */
    void trainMisintegration(InstAddr pc);

    u64 suppressions() const { return nSuppressions; }
    u64 trainings() const { return nTrainings; }

    void reset();

    /** Reconfigure geometry and return to the power-on state. */
    void reset(unsigned entries, unsigned assoc);

  private:
    struct Entry
    {
        bool valid = false;
        u64 tag = 0;
        u64 lruStamp = 0;
    };

    u32 indexOf(InstAddr pc) const { return u32(pc) & (sets - 1); }

    unsigned sets;
    unsigned assoc;
    std::vector<Entry> table;
    u64 lruClock = 0;
    u64 nSuppressions = 0, nTrainings = 0;
};

} // namespace rix

#endif // RIX_CORE_LISP_HH
