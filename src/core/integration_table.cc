#include "core/integration_table.hh"

#include "base/bitutil.hh"
#include "base/log.hh"

namespace rix
{

IntegrationTable::IntegrationTable(const IntegrationParams &p) : params(p)
{
    if (p.itEntries == 0 || !isPow2(p.itEntries))
        rix_fatal("IT entries must be a power of two (%u)", p.itEntries);
    assoc = p.itAssoc >= p.itEntries ? p.itEntries : p.itAssoc;
    sets = p.itEntries / assoc;
    if (!isPow2(sets))
        rix_fatal("IT sets must be a power of two (entries %u / assoc %u)",
                  p.itEntries, p.itAssoc);
    table.resize(size_t(sets) * assoc);
}

u32
IntegrationTable::index(const ITKey &key) const
{
    if (sets == 1)
        return 0;
    if (!modeHasOpcodeIndex(params.mode)) {
        // PC indexing: the PC distributes entries evenly by itself.
        return u32(key.pc) & (sets - 1);
    }
    // Opcode indexing: structured mix of opcode, immediate and call
    // depth (section 2.3). Immediates are folded at byte granularity as
    // well as raw so that the dense 0/8/16... stack-frame offsets spread
    // over more than a handful of sets; the call depth is scaled so
    // adjacent depths land in different regions of the table.
    u64 ix = u64(key.op) * 0x9e37u;
    ix ^= u64(u32(key.imm));
    ix ^= u64(u32(key.imm)) >> 3;
    if (params.useCallDepthIndex)
        ix ^= u64(key.callDepth) * 0x85ebu;
    return u32(ix) & (sets - 1);
}

bool
IntegrationTable::tagMatch(const ITEntry &e, const ITKey &key) const
{
    if (e.op != key.op || e.imm != key.imm)
        return false;
    if (!modeHasOpcodeIndex(params.mode) && e.pcTag != key.pc)
        return false;
    return true;
}

bool
IntegrationTable::inputsMatch(const ITEntry &e, const ITKey &key) const
{
    if (e.hasIn1 != key.hasIn1 || e.hasIn2 != key.hasIn2)
        return false;
    const bool check_gen = params.useGenCounters;
    if (e.hasIn1 &&
        (e.in1 != key.in1 || (check_gen && e.gen1 != key.gen1)))
        return false;
    if (e.hasIn2 &&
        (e.in2 != key.in2 || (check_gen && e.gen2 != key.gen2)))
        return false;
    return true;
}

ITEntry *
IntegrationTable::lookup(const ITKey &key, ITHandle *handle)
{
    ++nLookups;
    const u32 set = index(key);
    ITEntry *base = &table[size_t(set) * assoc];
    for (unsigned w = 0; w < assoc; ++w) {
        ITEntry &e = base[w];
        if (e.valid && tagMatch(e, key) && inputsMatch(e, key)) {
            e.lruStamp = ++lruClock;
            ++nHits;
            if (handle)
                *handle = ITHandle{set, w, e.id, true};
            return &e;
        }
    }
    return nullptr;
}

ITHandle
IntegrationTable::insert(const ITKey &key, bool has_out, PhysReg out,
                         u8 out_gen, bool reverse, bool is_branch,
                         u64 create_seq)
{
    ++nInserts;
    const u32 set = index(key);
    ITEntry *base = &table[size_t(set) * assoc];

    // Prefer overwriting an exact duplicate, then an invalid way, then
    // the LRU victim.
    unsigned victim = 0;
    u64 best = ~u64(0);
    bool found = false;
    for (unsigned w = 0; w < assoc && !found; ++w) {
        ITEntry &e = base[w];
        if (e.valid && tagMatch(e, key) && inputsMatch(e, key)) {
            victim = w;
            found = true;
        }
    }
    if (!found) {
        for (unsigned w = 0; w < assoc && !found; ++w) {
            if (!base[w].valid) {
                victim = w;
                found = true;
            }
        }
    }
    if (!found) {
        for (unsigned w = 0; w < assoc; ++w) {
            if (base[w].lruStamp < best) {
                best = base[w].lruStamp;
                victim = w;
            }
        }
        ++nReplacements;
    }

    ITEntry &e = base[victim];
    e.valid = true;
    e.reverse = reverse;
    e.op = key.op;
    e.imm = key.imm;
    e.pcTag = key.pc;
    e.hasIn1 = key.hasIn1;
    e.hasIn2 = key.hasIn2;
    e.in1 = key.in1;
    e.in2 = key.in2;
    e.gen1 = key.gen1;
    e.gen2 = key.gen2;
    e.hasOut = has_out;
    e.out = out;
    e.outGen = out_gen;
    e.isBranch = is_branch;
    e.outcomeValid = false;
    e.taken = false;
    e.id = nextId++;
    e.createSeq = create_seq;
    e.lruStamp = ++lruClock;

    return ITHandle{set, victim, e.id, true};
}

ITEntry *
IntegrationTable::at(const ITHandle &h)
{
    if (!h.valid)
        return nullptr;
    ITEntry &e = table[size_t(h.set) * assoc + h.way];
    return (e.valid && e.id == h.id) ? &e : nullptr;
}

void
IntegrationTable::fillBranchOutcome(const ITHandle &h, bool taken)
{
    if (ITEntry *e = at(h)) {
        if (e->isBranch) {
            e->outcomeValid = true;
            e->taken = taken;
        }
    }
}

void
IntegrationTable::invalidate(const ITHandle &h)
{
    if (ITEntry *e = at(h))
        e->valid = false;
}

void
IntegrationTable::invalidateAll()
{
    for (auto &e : table)
        e.valid = false;
}

} // namespace rix
