#include "core/integration_table.hh"

#include "base/bitutil.hh"
#include "base/log.hh"

namespace rix
{

namespace
{

constexpr u64 laneValidBit = u64(1) << 63;

/** Bit layout of the packed input-compare word. */
constexpr unsigned in2Shift = 16;
constexpr unsigned gen1Shift = 32;
constexpr unsigned gen2Shift = 40;
constexpr unsigned has1Shift = 48;
constexpr unsigned has2Shift = 49;
constexpr u64 genBits = (u64(0xff) << gen1Shift) | (u64(0xff) << gen2Shift);

} // namespace

IntegrationTable::IntegrationTable(const IntegrationParams &p)
{
    reset(p);
}

void
IntegrationTable::reset(const IntegrationParams &p)
{
    params = p;
    if (p.itEntries == 0 || !isPow2(p.itEntries))
        rix_fatal("IT entries must be a power of two (%u)", p.itEntries);
    assoc = p.itAssoc >= p.itEntries ? p.itEntries : p.itAssoc;
    sets = p.itEntries / assoc;
    if (!isPow2(sets))
        rix_fatal("IT sets must be a power of two (entries %u / assoc %u)",
                  p.itEntries, p.itAssoc);
    pcTagged = !modeHasOpcodeIndex(params.mode);
    inputGenMask = params.useGenCounters ? ~u64(0) : ~genBits;

    const size_t n = size_t(sets) * assoc;
    table.assign(n, ITEntry{});
    tagLane.assign(n, 0);
    pcLane.assign(n, 0);
    inputLane.assign(n, 0);
    lruClock = 0;
    nextId = 1;
    nLookups = nHits = nInserts = nReplacements = 0;
}

u32
IntegrationTable::index(const ITKey &key) const
{
    if (sets == 1)
        return 0;
    if (pcTagged) {
        // PC indexing: the PC distributes entries evenly by itself.
        return u32(key.pc) & (sets - 1);
    }
    // Opcode indexing: structured mix of opcode, immediate and call
    // depth (section 2.3). Immediates are folded at byte granularity as
    // well as raw so that the dense 0/8/16... stack-frame offsets spread
    // over more than a handful of sets; the call depth is scaled so
    // adjacent depths land in different regions of the table.
    u64 ix = u64(key.op) * 0x9e37u;
    ix ^= u64(u32(key.imm));
    ix ^= u64(u32(key.imm)) >> 3;
    if (params.useCallDepthIndex)
        ix ^= u64(key.callDepth) * 0x85ebu;
    return u32(ix) & (sets - 1);
}

u64
IntegrationTable::packInputs(bool h1, bool h2, PhysReg in1, PhysReg in2,
                             u8 g1, u8 g2) const
{
    // Canonical: operand fields contribute only when present, so the
    // packed compare reproduces the original field-by-field semantics
    // (absent operands match regardless of their register values).
    u64 w = (u64(h1) << has1Shift) | (u64(h2) << has2Shift);
    if (h1)
        w |= u64(in1) | (u64(g1) << gen1Shift);
    if (h2)
        w |= (u64(in2) << in2Shift) | (u64(g2) << gen2Shift);
    return w & inputGenMask;
}

IntegrationTable::Probe
IntegrationTable::makeProbe(const ITKey &key) const
{
    Probe pr;
    pr.set = index(key);
    pr.tag = laneValidBit | (u64(u8(key.op)) << 32) | u64(u32(key.imm));
    pr.input = packInputs(key.hasIn1, key.hasIn2, key.in1, key.in2,
                          key.gen1, key.gen2);
    return pr;
}

void
IntegrationTable::writeLanes(size_t idx, const ITEntry &e)
{
    tagLane[idx] = e.valid ? laneValidBit | (u64(u8(e.op)) << 32) |
                                 u64(u32(e.imm))
                           : 0;
    pcLane[idx] = e.pcTag;
    inputLane[idx] = packInputs(e.hasIn1, e.hasIn2, e.in1, e.in2, e.gen1,
                                e.gen2);
}

ITEntry *
IntegrationTable::lookup(const ITKey &key, ITHandle *handle)
{
    ++nLookups;
    const Probe pr = makeProbe(key);
    const size_t base = size_t(pr.set) * assoc;
    for (unsigned w = 0; w < assoc; ++w) {
        const size_t i = base + w;
        if (tagLane[i] != pr.tag || inputLane[i] != pr.input)
            continue;
        if (pcTagged && pcLane[i] != key.pc)
            continue;
        // Hit: only now touch the payload row.
        ITEntry &e = table[i];
        e.lruStamp = ++lruClock;
        ++nHits;
        if (handle)
            *handle = ITHandle{e.id, pr.set, u16(w), true};
        return &e;
    }
    return nullptr;
}

ITHandle
IntegrationTable::insert(const ITKey &key, bool has_out, PhysReg out,
                         u8 out_gen, bool reverse, bool is_branch,
                         u64 create_seq)
{
    ++nInserts;
    const Probe pr = makeProbe(key);
    const size_t base = size_t(pr.set) * assoc;

    // Prefer overwriting an exact duplicate, then an invalid way, then
    // the LRU victim.
    unsigned victim = 0;
    bool found = false;
    for (unsigned w = 0; w < assoc && !found; ++w) {
        const size_t i = base + w;
        if (tagLane[i] == pr.tag && inputLane[i] == pr.input &&
            (!pcTagged || pcLane[i] == key.pc)) {
            victim = w;
            found = true;
        }
    }
    if (!found) {
        for (unsigned w = 0; w < assoc && !found; ++w) {
            if (tagLane[base + w] == 0) {
                victim = w;
                found = true;
            }
        }
    }
    if (!found) {
        u64 best = ~u64(0);
        for (unsigned w = 0; w < assoc; ++w) {
            if (table[base + w].lruStamp < best) {
                best = table[base + w].lruStamp;
                victim = w;
            }
        }
        ++nReplacements;
    }

    ITEntry &e = table[base + victim];
    e.valid = true;
    e.reverse = reverse;
    e.op = key.op;
    e.imm = key.imm;
    e.pcTag = key.pc;
    e.hasIn1 = key.hasIn1;
    e.hasIn2 = key.hasIn2;
    e.in1 = key.in1;
    e.in2 = key.in2;
    e.gen1 = key.gen1;
    e.gen2 = key.gen2;
    e.hasOut = has_out;
    e.out = out;
    e.outGen = out_gen;
    e.isBranch = is_branch;
    e.outcomeValid = false;
    e.taken = false;
    e.id = nextId++;
    e.createSeq = create_seq;
    e.lruStamp = ++lruClock;
    writeLanes(base + victim, e);

    return ITHandle{e.id, pr.set, u16(victim), true};
}

ITEntry *
IntegrationTable::at(const ITHandle &h)
{
    if (!h.valid)
        return nullptr;
    ITEntry &e = table[size_t(h.set) * assoc + h.way];
    return (e.valid && e.id == h.id) ? &e : nullptr;
}

void
IntegrationTable::fillBranchOutcome(const ITHandle &h, bool taken)
{
    if (ITEntry *e = at(h)) {
        if (e->isBranch) {
            e->outcomeValid = true;
            e->taken = taken;
        }
    }
}

void
IntegrationTable::invalidate(const ITHandle &h)
{
    if (ITEntry *e = at(h)) {
        e->valid = false;
        tagLane[size_t(h.set) * assoc + h.way] = 0;
    }
}

void
IntegrationTable::invalidateAll()
{
    for (auto &e : table)
        e.valid = false;
    tagLane.assign(tagLane.size(), 0);
}

} // namespace rix
