#include "core/integration.hh"

#include "base/log.hh"

namespace rix
{

IntegrationEngine::IntegrationEngine(const IntegrationParams &params,
                                     RegStateVector &reg_state)
    : p(params), regs(reg_state), it(params),
      lisp_(params.lispEntries, params.lispAssoc)
{
}

void
IntegrationEngine::reset(const IntegrationParams &params)
{
    p = params;
    it.reset(params);
    lisp_.reset(params.lispEntries, params.lispAssoc);
    pending.clear();
    nextPendingId = 1;
    nReverseEntries = nDirectEntries = 0;
}

bool
IntegrationEngine::classIntegrates(const Instruction &inst)
{
    switch (inst.cls()) {
      case InstClass::SimpleInt:
      case InstClass::ComplexInt:
      case InstClass::FloatOp:
        return inst.writesReg();
      case InstClass::Load:
        return inst.writesReg();
      case InstClass::Branch:
        return true;
      default:
        return false;
    }
}

bool
IntegrationEngine::classCreatesEntry(const Instruction &inst)
{
    // Same classes: entries describe results that future instances (or
    // squashed-and-refetched instances) may integrate.
    return classIntegrates(inst);
}

ITKey
IntegrationEngine::keyFor(const RenameCandidate &cand) const
{
    ITKey key;
    key.op = cand.inst.op;
    key.imm = cand.inst.imm;
    key.pc = cand.pc;
    key.callDepth = cand.callDepth;
    key.hasIn1 = cand.hasSrc1;
    key.hasIn2 = cand.hasSrc2;
    key.in1 = cand.src1;
    key.in2 = cand.src2;
    key.gen1 = cand.src1Gen;
    key.gen2 = cand.src2Gen;
    return key;
}

IntegrationResult
IntegrationEngine::tryIntegrate(const RenameCandidate &cand)
{
    IntegrationResult res;
    if (!p.enabled() || !classIntegrates(cand.inst))
        return res;
    drainPending(cand.seq);

    ITHandle handle;
    ITEntry *e = it.lookup(keyFor(cand), &handle);
    if (!e)
        return res;
    res.entryHandle = handle;

    if (cand.inst.isCondBranch()) {
        if (!e->isBranch || !e->outcomeValid)
            return res;
        res.integrated = true;
        res.isBranch = true;
        res.taken = e->taken;
        res.reverse = e->reverse;
        res.producerSeq = e->createSeq;
        return res;
    }

    if (!e->hasOut)
        return res;
    if (!regs.eligible(e->out, e->outGen, p.mode, p.useGenCounters))
        return res;

    // Load mis-integration suppression (realistic LISP). The oracle
    // variant is applied by the caller, which can see values.
    if (cand.inst.isLoad() && p.lisp == LispMode::Realistic &&
        lisp_.suppress(cand.pc)) {
        res.suppressed = true;
        return res;
    }

    res.integrated = true;
    res.reverse = e->reverse;
    res.preg = e->out;
    res.gen = e->outGen;
    res.producerSeq = e->createSeq;
    return res;
}

void
IntegrationEngine::drainPending(u64 now_seq)
{
    while (!pending.empty() && pending.front().visibleAtSeq <= now_seq) {
        PendingInsert &pi = pending.front();
        ITHandle h = it.insert(pi.key, pi.hasOut, pi.out, pi.outGen,
                               pi.reverse, pi.isBranch, pi.createSeq);
        if (pi.isBranch && pi.outcomeValid)
            it.fillBranchOutcome(h, pi.taken);
        pending.pop_front();
    }
}

ITHandle
IntegrationEngine::enqueueOrInsert(const ITKey &key, bool has_out,
                                   PhysReg out, u8 out_gen, bool reverse,
                                   bool is_branch, u64 create_seq)
{
    if (p.itWriteDelay == 0)
        return it.insert(key, has_out, out, out_gen, reverse, is_branch,
                         create_seq);
    PendingInsert pi;
    pi.visibleAtSeq = create_seq + p.itWriteDelay;
    pi.key = key;
    pi.hasOut = has_out;
    pi.out = out;
    pi.outGen = out_gen;
    pi.reverse = reverse;
    pi.isBranch = is_branch;
    pi.createSeq = create_seq;
    pi.id = nextPendingId++;
    pending.push_back(pi);
    ITHandle h;
    h.valid = true;
    h.isPending = true;
    h.id = pi.id;
    return h;
}

ITHandle
IntegrationEngine::recordEntries(const RenameCandidate &cand, bool has_dest,
                                 PhysReg dest, u8 dest_gen, bool integrated)
{
    ITHandle branch_handle;
    if (!p.enabled())
        return branch_handle;
    drainPending(cand.seq);

    const Instruction &inst = cand.inst;

    // Direct entry (only when integration failed: an integrating
    // instruction's result already is the matching entry).
    if (!integrated && classCreatesEntry(inst)) {
        const bool is_branch = inst.isCondBranch();
        ITHandle h = enqueueOrInsert(keyFor(cand), has_dest, dest,
                                     dest_gen, /*reverse=*/false,
                                     is_branch, cand.seq);
        ++nDirectEntries;
        if (is_branch)
            branch_handle = h;
    }

    if (!modeHasReverse(p.mode))
        return branch_handle;

    // Reverse entry for stack-pointer-based stores: the complementary
    // load <ldq/imm, base, -> data-register>.
    if (inst.isStore() && inst.ra == regSp && cand.hasSrc1 &&
        cand.hasSrc2) {
        ITKey rkey;
        rkey.op = inverseOfStore(inst.op);
        rkey.imm = inst.imm;
        rkey.pc = cand.pc;
        rkey.callDepth = cand.callDepth;
        rkey.hasIn1 = true;
        rkey.in1 = cand.src1;        // base (stack pointer)
        rkey.gen1 = cand.src1Gen;
        enqueueOrInsert(rkey, /*has_out=*/true, cand.src2, cand.src2Gen,
                        /*reverse=*/true, /*is_branch=*/false, cand.seq);
        ++nReverseEntries;
    }

    // Reverse entry for stack-pointer decrements (frame opens): the
    // complementary increment, with the immediate negated and the input
    // and output registers swapped. Only lda/addqi sp, -k(sp) forms are
    // recognized (the canonical frame-open idiom).
    if ((inst.op == Opcode::LDA || inst.op == Opcode::ADDQI) &&
        inst.rc == regSp && inst.ra == regSp && inst.imm < 0 && has_dest &&
        cand.hasSrc1) {
        ITKey rkey;
        rkey.op = inst.op;
        rkey.imm = -inst.imm;
        rkey.pc = cand.pc;
        rkey.callDepth = cand.callDepth;
        rkey.hasIn1 = true;
        rkey.in1 = dest;          // the decremented stack pointer
        rkey.gen1 = dest_gen;
        enqueueOrInsert(rkey, /*has_out=*/true, cand.src1, cand.src1Gen,
                        /*reverse=*/true, /*is_branch=*/false, cand.seq);
        ++nReverseEntries;
    }

    return branch_handle;
}

void
IntegrationEngine::fillBranchOutcome(const ITHandle &h, bool taken)
{
    if (h.isPending) {
        for (auto &pi : pending) {
            if (pi.id == h.id) {
                pi.outcomeValid = true;
                pi.taken = taken;
                return;
            }
        }
        return; // already drained; outcome fill races the write stage
    }
    it.fillBranchOutcome(h, taken);
}

const char *
integrationModeName(IntegrationMode m)
{
    switch (m) {
      case IntegrationMode::Off: return "off";
      case IntegrationMode::Squash: return "squash";
      case IntegrationMode::General: return "+general";
      case IntegrationMode::OpcodeIndexed: return "+opcode";
      case IntegrationMode::Reverse: return "+reverse";
    }
    return "?";
}

const char *
lispModeName(LispMode m)
{
    switch (m) {
      case LispMode::Off: return "off";
      case LispMode::Realistic: return "realistic";
      case LispMode::Oracle: return "oracle";
    }
    return "?";
}

} // namespace rix
