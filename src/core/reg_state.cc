#include "core/reg_state.hh"

#include "base/bitutil.hh"
#include "base/log.hh"
#include "isa/regs.hh"

namespace rix
{

RegStateVector::RegStateVector(const IntegrationParams &params)
{
    reset(params);
}

void
RegStateVector::reset(const IntegrationParams &params)
{
    if (params.numPhysRegs < numLogRegs + 1)
        rix_fatal("too few physical registers (%u)", params.numPhysRegs);
    entries.assign(params.numPhysRegs, Entry{});
    maxCount = u8(mask(params.refBits));
    genMask = u8(mask(params.genBits));
    freeQueue.clear();
    for (PhysReg r = 0; r < entries.size(); ++r)
        freeQueue.push_back(r);
}

unsigned
RegStateVector::freeCount() const
{
    unsigned n = 0;
    for (const auto &e : entries)
        if (e.count == 0 && !e.pinnedReg)
            ++n;
    return n;
}

bool
RegStateVector::canAllocate() const
{
    for (PhysReg r : freeQueue)
        if (entries[r].count == 0 && !entries[r].pinnedReg)
            return true;
    return false;
}

PhysReg
RegStateVector::allocate()
{
    // The queue may hold stale entries for registers that were
    // resurrected by an integration after dropping to zero; skip them
    // lazily (they are re-queued when they drop to zero again).
    while (!freeQueue.empty()) {
        PhysReg r = freeQueue.front();
        freeQueue.pop_front();
        Entry &e = entries[r];
        if (e.count != 0 || e.pinnedReg)
            continue;
        e.count = 1;
        e.valid = true;       // mapped registers are integration-eligible
        e.ready = false;      // value not computed yet
        e.gen = u8((e.gen + 1) & genMask);
        e.origin = ZeroOrigin::Never;
        return r;
    }
    rix_panic("physical register file exhausted");
}

void
RegStateVector::pin(PhysReg r)
{
    Entry &e = entries[r];
    e.pinnedReg = true;
    e.count = 1;
    e.valid = false;   // never integration-eligible
    e.ready = true;    // value (zero) always available
}

void
RegStateVector::addRef(PhysReg r)
{
    Entry &e = entries[r];
    if (e.count >= maxCount)
        rix_panic("addRef on saturated register p%u", r);
    ++e.count;
    // A previously idle 0/T register is active again; its value is
    // still whatever was computed.
    e.valid = true;
}

bool
RegStateVector::refSaturated(PhysReg r) const
{
    return entries[r].count >= maxCount;
}

void
RegStateVector::markReady(PhysReg r)
{
    entries[r].ready = true;
}

void
RegStateVector::dropToZero(Entry &e, PhysReg r, ZeroOrigin why)
{
    e.origin = why;
    // Deadlock-avoidance rule: a squash-unmapped register whose value
    // was never computed must not be integrated (0/F); everything else
    // keeps its useful value (0/T).
    e.valid = (why == ZeroOrigin::Shadowed) || e.ready;
    freeQueue.push_back(r);
}

void
RegStateVector::releaseOverwrite(PhysReg r)
{
    Entry &e = entries[r];
    if (e.pinnedReg)
        return;
    if (e.count == 0)
        rix_panic("releaseOverwrite on free register p%u", r);
    if (--e.count == 0)
        dropToZero(e, r, ZeroOrigin::Shadowed);
}

void
RegStateVector::releaseSquash(PhysReg r)
{
    Entry &e = entries[r];
    if (e.pinnedReg)
        return;
    if (e.count == 0)
        rix_panic("releaseSquash on free register p%u", r);
    if (--e.count == 0)
        dropToZero(e, r, ZeroOrigin::Squashed);
}

bool
RegStateVector::eligible(PhysReg r, u8 expect_gen, IntegrationMode mode,
                         bool check_gen) const
{
    const Entry &e = entries[r];
    if (e.pinnedReg || !e.valid)
        return false;
    if (check_gen && e.gen != (expect_gen & genMask))
        return false;
    if (!modeHasGeneral(mode)) {
        // Squash reuse: only fully unmapped, squash-freed registers may
        // be integrated (the register-ownership discipline).
        return e.count == 0 && e.origin == ZeroOrigin::Squashed;
    }
    // General reuse: any valid register that can take one more mapping.
    return e.count < maxCount;
}

bool
RegStateVector::checkNoLeaks() const
{
    std::vector<bool> reachable(entries.size(), false);
    for (PhysReg r : freeQueue)
        reachable[r] = true;
    for (PhysReg r = 0; r < entries.size(); ++r) {
        const Entry &e = entries[r];
        if (e.count == 0 && !e.pinnedReg && !reachable[r])
            return false;
    }
    return true;
}

RegStateVector::Snapshot
RegStateVector::snapshot() const
{
    Snapshot s;
    s.counts.reserve(entries.size());
    s.gens.reserve(entries.size());
    s.flags.reserve(entries.size());
    for (const auto &e : entries) {
        s.counts.push_back(e.count);
        s.gens.push_back(e.gen);
        s.flags.push_back(u8(e.valid) | u8(e.ready) << 1 |
                          u8(e.pinnedReg) << 2 | u8(e.origin) << 3);
    }
    s.freeQueue = freeQueue;
    return s;
}

void
RegStateVector::restore(const Snapshot &s)
{
    for (size_t i = 0; i < entries.size(); ++i) {
        Entry &e = entries[i];
        e.count = s.counts[i];
        e.gen = s.gens[i];
        e.valid = s.flags[i] & 1;
        e.ready = (s.flags[i] >> 1) & 1;
        e.pinnedReg = (s.flags[i] >> 2) & 1;
        e.origin = ZeroOrigin((s.flags[i] >> 3) & 3);
    }
    freeQueue = s.freeQueue;
}

} // namespace rix
