/**
 * @file
 * Configuration of the register-integration machinery.
 *
 * The four cumulative modes correspond exactly to the four bars of the
 * paper's Figure 4: squash reuse only; + general reuse (reference
 * counting / simultaneous sharing); + opcode indexing (opcode ^ imm ^
 * call-depth IT index); + reverse integration (speculative memory
 * bypassing for stack saves/restores).
 */

#ifndef RIX_CORE_PARAMS_HH
#define RIX_CORE_PARAMS_HH

#include "base/types.hh"

namespace rix
{

enum class IntegrationMode : u8
{
    Off,            // no integration machinery at all
    Squash,         // baseline squash reuse (PC-indexed, squashed-only)
    General,        // + multiple simultaneous integration (ref counts)
    OpcodeIndexed,  // + opcode/immediate/call-depth IT indexing
    Reverse,        // + reverse entries (speculative memory bypassing)
};

/** True when @p mode includes general reuse. */
constexpr bool
modeHasGeneral(IntegrationMode m)
{
    return m >= IntegrationMode::General;
}

/** True when @p mode uses opcode-based IT indexing. */
constexpr bool
modeHasOpcodeIndex(IntegrationMode m)
{
    return m >= IntegrationMode::OpcodeIndexed;
}

/** True when @p mode creates reverse entries. */
constexpr bool
modeHasReverse(IntegrationMode m)
{
    return m >= IntegrationMode::Reverse;
}

const char *integrationModeName(IntegrationMode m);

/** Load-integration suppression flavour (Figure 4 light/dark bars). */
enum class LispMode : u8
{
    Off,        // never suppress
    Realistic,  // 1K-entry 2-way PC-indexed tag cache, overbiased
    Oracle,     // suppress exactly the provably-wrong integrations
};

const char *lispModeName(LispMode m);

struct IntegrationParams
{
    IntegrationMode mode = IntegrationMode::Reverse;

    // Integration table geometry (paper baseline: 1K entries, 4-way).
    unsigned itEntries = 1024;
    unsigned itAssoc = 4;

    // Physical register tracking.
    unsigned numPhysRegs = 1024;
    unsigned refBits = 4;   // reference-count width
    unsigned genBits = 4;   // generation-counter width

    // Load mis-integration suppression.
    LispMode lisp = LispMode::Realistic;
    unsigned lispEntries = 1024;
    unsigned lispAssoc = 2;

    // Ablation switches (DESIGN.md E11/E12).
    bool useCallDepthIndex = true; // call-depth component of the IT index
    bool useGenCounters = true;    // generation-counter match requirement

    // Pipelined integration (paper section 3.3 discussion): separate
    // IT read and write stages by N renamed instructions. A new entry
    // becomes visible only N renames after its creator, losing the
    // closest-range reuse (the paper bounds the loss at ~20% of
    // integrations for a 4-stage pipeline on a 4-wide machine).
    unsigned itWriteDelay = 0;

    bool enabled() const { return mode != IntegrationMode::Off; }
    bool fullyAssociativeIt() const { return itAssoc >= itEntries; }
};

} // namespace rix

#endif // RIX_CORE_PARAMS_HH
