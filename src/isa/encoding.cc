#include "isa/encoding.hh"

#include "base/bitutil.hh"

namespace rix
{

u64
encode(const Instruction &inst)
{
    u64 w = 0;
    w |= (u64(inst.op) & mask(8)) << 56;
    w |= (u64(inst.ra) & mask(5)) << 51;
    w |= (u64(inst.rb) & mask(5)) << 46;
    w |= (u64(inst.rc) & mask(5)) << 41;
    w |= u64(u32(inst.imm));
    return w;
}

Instruction
decode(u64 word, bool *ok)
{
    Instruction inst;
    const u64 opfield = bits(word, 63, 56);
    const bool valid = opfield < numOpcodes;
    if (ok)
        *ok = valid;
    if (!valid)
        return makeNop();
    inst.op = Opcode(opfield);
    inst.ra = LogReg(bits(word, 55, 51));
    inst.rb = LogReg(bits(word, 50, 46));
    inst.rc = LogReg(bits(word, 45, 41));
    inst.imm = s32(u32(bits(word, 31, 0)));
    return inst;
}

} // namespace rix
