/**
 * @file
 * Static instruction representation.
 *
 * Code memory holds decoded Instruction records directly (the packed
 * 64-bit machine encoding lives in isa/decoded.hh and round-trips
 * losslessly). PCs are instruction-slot indices; branch/jump targets are
 * absolute slot indices resolved by the assembler.
 */

#ifndef RIX_ISA_INST_HH
#define RIX_ISA_INST_HH

#include <string>

#include "base/types.hh"
#include "isa/opcode.hh"
#include "isa/regs.hh"

namespace rix
{

/**
 * One static instruction.
 *
 * Field conventions by format:
 *  - reg-reg ALU:  rc = ra op rb
 *  - reg-imm ALU:  rc = ra op imm          (lda rc, imm(ra) included)
 *  - load:         rc = M[ra + imm]
 *  - store:        M[ra + imm] = rb
 *  - branch:       if cond(ra) goto imm    (absolute slot index)
 *  - jsr:          rc = link; goto imm
 *  - jmp/ret:      goto ra
 *  - syscall:      rc = sys(imm, ra)
 */
struct Instruction
{
    Opcode op = Opcode::NOP;
    LogReg ra = regZero;
    LogReg rb = regZero;
    LogReg rc = regZero;
    s32 imm = 0;

    const OpTraits &traits() const { return opTraits(op); }
    InstClass cls() const { return traits().cls; }

    bool isLoad() const { return cls() == InstClass::Load; }
    bool isStore() const { return cls() == InstClass::Store; }
    bool isMem() const { return isLoad() || isStore(); }
    bool isCondBranch() const { return cls() == InstClass::Branch; }
    bool isDirectJump() const { return cls() == InstClass::Jump; }
    bool isCall() const { return cls() == InstClass::Call; }
    bool isReturn() const { return cls() == InstClass::Return; }
    bool isIndirectJump() const { return cls() == InstClass::IndirectJump; }
    bool isSyscall() const { return cls() == InstClass::Syscall; }
    bool isHalt() const { return cls() == InstClass::Halt; }
    bool isNop() const { return cls() == InstClass::Nop; }

    /** Any instruction that can redirect the PC. */
    bool
    isControl() const
    {
        switch (cls()) {
          case InstClass::Branch:
          case InstClass::Jump:
          case InstClass::IndirectJump:
          case InstClass::Call:
          case InstClass::Return:
            return true;
          default:
            return false;
        }
    }

    /** Writes an architectural register (and the write is not to r31). */
    bool
    writesReg() const
    {
        return traits().hasDest && rc != regZero;
    }

    /** First source register, or regZero when unused. */
    LogReg src1() const { return traits().readsRa ? ra : regZero; }

    /** Second source register, or regZero when unused. */
    LogReg src2() const { return traits().readsRb ? rb : regZero; }

    bool hasSrc1() const { return traits().readsRa; }
    bool hasSrc2() const { return traits().readsRb; }

    /** Memory access size; only valid for loads/stores. */
    unsigned accessSize() const { return memAccessSize(op); }

    bool
    operator==(const Instruction &o) const
    {
        return op == o.op && ra == o.ra && rb == o.rb && rc == o.rc &&
               imm == o.imm;
    }
    bool operator!=(const Instruction &o) const { return !(*this == o); }
};

/** Render one instruction as assembler text. */
std::string disassemble(const Instruction &inst);

// --- Construction helpers (used by the builder, tests and examples) ---

Instruction makeRR(Opcode op, LogReg rc, LogReg ra, LogReg rb);
Instruction makeRI(Opcode op, LogReg rc, LogReg ra, s32 imm);
Instruction makeLoad(Opcode op, LogReg rc, s32 imm, LogReg base);
Instruction makeStore(Opcode op, LogReg data, s32 imm, LogReg base);
Instruction makeBranch(Opcode op, LogReg ra, s32 target);
Instruction makeJump(s32 target);
Instruction makeCall(s32 target, LogReg link = regRa);
Instruction makeIndirect(Opcode op, LogReg ra);
Instruction makeSyscall(s32 code, LogReg arg = regZero,
                        LogReg result = regZero);
Instruction makeNop();
Instruction makeHalt();

} // namespace rix

#endif // RIX_ISA_INST_HH
