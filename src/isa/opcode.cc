#include "isa/opcode.hh"

#include <cstring>

#include "base/log.hh"

namespace rix
{

namespace detail
{

// Order must match the Opcode enumeration exactly.
const OpTraits traitsTable[numOpcodes] = {
    // mnemonic  class                  lat dst  ra     rb     imm
    {"addq",    InstClass::SimpleInt,   1, true,  true,  true,  false},
    {"subq",    InstClass::SimpleInt,   1, true,  true,  true,  false},
    {"and",     InstClass::SimpleInt,   1, true,  true,  true,  false},
    {"bis",     InstClass::SimpleInt,   1, true,  true,  true,  false},
    {"xor",     InstClass::SimpleInt,   1, true,  true,  true,  false},
    {"sll",     InstClass::SimpleInt,   1, true,  true,  true,  false},
    {"srl",     InstClass::SimpleInt,   1, true,  true,  true,  false},
    {"sra",     InstClass::SimpleInt,   1, true,  true,  true,  false},
    {"cmpeq",   InstClass::SimpleInt,   1, true,  true,  true,  false},
    {"cmplt",   InstClass::SimpleInt,   1, true,  true,  true,  false},
    {"cmple",   InstClass::SimpleInt,   1, true,  true,  true,  false},
    {"addqi",   InstClass::SimpleInt,   1, true,  true,  false, true},
    {"subqi",   InstClass::SimpleInt,   1, true,  true,  false, true},
    {"andi",    InstClass::SimpleInt,   1, true,  true,  false, true},
    {"bisi",    InstClass::SimpleInt,   1, true,  true,  false, true},
    {"xori",    InstClass::SimpleInt,   1, true,  true,  false, true},
    {"slli",    InstClass::SimpleInt,   1, true,  true,  false, true},
    {"srli",    InstClass::SimpleInt,   1, true,  true,  false, true},
    {"srai",    InstClass::SimpleInt,   1, true,  true,  false, true},
    {"cmpeqi",  InstClass::SimpleInt,   1, true,  true,  false, true},
    {"cmplti",  InstClass::SimpleInt,   1, true,  true,  false, true},
    {"cmplei",  InstClass::SimpleInt,   1, true,  true,  false, true},
    {"lda",     InstClass::SimpleInt,   1, true,  true,  false, true},
    {"mulq",    InstClass::ComplexInt,  3, true,  true,  true,  false},
    {"mulqi",   InstClass::ComplexInt,  3, true,  true,  false, true},
    {"divq",    InstClass::ComplexInt, 12, true,  true,  true,  false},
    {"fadd",    InstClass::FloatOp,     2, true,  true,  true,  false},
    {"fmul",    InstClass::FloatOp,     4, true,  true,  true,  false},
    {"fdiv",    InstClass::FloatOp,    12, true,  true,  true,  false},
    {"ldq",     InstClass::Load,        1, true,  true,  false, true},
    {"ldl",     InstClass::Load,        1, true,  true,  false, true},
    {"stq",     InstClass::Store,       1, false, true,  true,  true},
    {"stl",     InstClass::Store,       1, false, true,  true,  true},
    {"br",      InstClass::Jump,        1, false, false, false, true},
    {"beq",     InstClass::Branch,      1, false, true,  false, true},
    {"bne",     InstClass::Branch,      1, false, true,  false, true},
    {"blt",     InstClass::Branch,      1, false, true,  false, true},
    {"bge",     InstClass::Branch,      1, false, true,  false, true},
    {"bgt",     InstClass::Branch,      1, false, true,  false, true},
    {"ble",     InstClass::Branch,      1, false, true,  false, true},
    {"jsr",     InstClass::Call,        1, true,  false, false, true},
    {"jmp",     InstClass::IndirectJump,1, false, true,  false, false},
    {"ret",     InstClass::Return,      1, false, true,  false, false},
    {"syscall", InstClass::Syscall,     1, true,  true,  false, true},
    {"nop",     InstClass::Nop,         1, false, false, false, false},
    {"halt",    InstClass::Halt,        1, false, false, false, false},
};

void
badOpcode(unsigned idx)
{
    rix_panic("opTraits: bad opcode %u", idx);
}

} // namespace detail

const char *
opName(Opcode op)
{
    return opTraits(op).mnemonic;
}

Opcode
opFromName(const char *name)
{
    for (unsigned i = 0; i < numOpcodes; ++i) {
        if (strcmp(detail::traitsTable[i].mnemonic, name) == 0)
            return Opcode(i);
    }
    return Opcode::NUM_OPCODES;
}

} // namespace rix
