/**
 * @file
 * Pre-decoded program form: the single source of truth for instruction
 * semantics and static metadata.
 *
 * Every static instruction is decoded exactly once — when a Program's
 * DecodedProgram is built — into a fixed-layout DecodedInst: a dense
 * handler index for threaded dispatch, pre-resolved operand registers
 * (the zero register substituted for unused sources, a write sink for
 * absent destinations), the immediate, the resolved control-flow
 * target, per-class issue metadata for the detailed pipeline, and the
 * length of the straight-line basic block starting at that pc. The
 * emulator's fast run loop, its preview/commit (DIVA) path, and the
 * detailed pipeline's rename/issue/execute stages all consume this one
 * form; nothing outside this layer re-derives operands or re-decodes
 * raw instruction words.
 *
 * Opcode semantics live here too, as X-macro tables
 * (RIX_ALU_SEMANTICS / RIX_BRANCH_SEMANTICS) expanded by both the
 * out-of-line aluCompute()/branchTaken() used by the detailed pipeline
 * and the emulator's per-opcode dispatch handlers — one definition per
 * opcode, several specialized expansions.
 *
 * The 64-bit machine encoding (encode()/decode(), formerly
 * isa/encoding.{hh,cc}) is folded in as well: it is the only code in
 * the tree that touches raw instruction words.
 */

#ifndef RIX_ISA_DECODED_HH
#define RIX_ISA_DECODED_HH

#include <vector>

#include "isa/inst.hh"

namespace rix
{

struct Program;

/** Bytes one instruction slot occupies in the fetch address space
 *  (pc * instructionBytes is the i-cache byte address; the byte range
 *  [0, codeSize * instructionBytes) is the immutable text segment). */
constexpr unsigned instructionBytes = 8;

/**
 * Register-file slot used as the write target of instructions with no
 * architectural destination (and of writes to the hard-wired zero
 * register): dispatch handlers can then write their result
 * unconditionally. The emulator's register array has numLogRegs + 1
 * entries; the sink is the extra one and is never read, snapshotted or
 * compared.
 */
constexpr unsigned emuRegSink = numLogRegs;

/** Issue-port class of an instruction (the detailed core's port mix:
 *  2 simple-int, 2 FP/complex, 1 load, 1 store). */
enum class IssuePort : u8 { Simple, Complex, LoadP, StoreP };

/** DecodedInst::flags bits. */
enum : u16
{
    DFlagWritesReg = 1 << 0, // writes an architectural register (not r31)
    DFlagLoad      = 1 << 1,
    DFlagStore     = 1 << 2,
    DFlagCtrl      = 1 << 3, // can redirect the pc
    DFlagEndsBlock = 1 << 4, // control or HALT: basic-block terminator
    DFlagPriority  = 1 << 5, // issue-priority class (loads/branches/FP)
    DFlagNeedsRs   = 1 << 6, // occupies a reservation station
    DFlagReadsRa   = 1 << 7,
    DFlagReadsRb   = 1 << 8,
};

/**
 * One pre-decoded instruction. Fixed 32-byte layout; the first 16
 * bytes are everything the emulator's dispatch loop touches.
 */
struct DecodedInst
{
    u8 handler = u8(Opcode::NOP); // dense dispatch index == opcode value
    u8 src1 = regZero;  // resolved first source (regZero when unused)
    u8 src2 = regZero;  // resolved second source (regZero when unused)
    u8 dest = emuRegSink; // resolved destination (sink when none)
    u8 size = 0;        // memory access bytes (loads/stores only)
    u8 cls = 0;         // InstClass
    u8 port = 0;        // IssuePort
    u8 pad_ = 0;
    s32 imm = 0;
    u32 target = 0;     // resolved branch/jump/call target slot
    u32 blockLen = 1;   // insts from this pc through its block terminator
    u16 flags = 0;
    u16 latency = 1;    // execute latency in cycles
    Instruction inst;   // the original static instruction (8 bytes)

    bool writesReg() const { return flags & DFlagWritesReg; }
    bool isLoad() const { return flags & DFlagLoad; }
    bool isStore() const { return flags & DFlagStore; }
    bool isMem() const { return flags & (DFlagLoad | DFlagStore); }
    bool isCtrl() const { return flags & DFlagCtrl; }
    bool endsBlock() const { return flags & DFlagEndsBlock; }
    bool priority() const { return flags & DFlagPriority; }
    bool needsRs() const { return flags & DFlagNeedsRs; }
    bool readsRa() const { return flags & DFlagReadsRa; }
    bool readsRb() const { return flags & DFlagReadsRb; }
    InstClass instClass() const { return InstClass(cls); }
    IssuePort issuePort() const { return IssuePort(port); }
};

static_assert(sizeof(DecodedInst) == 32,
              "DecodedInst must stay a fixed 32-byte record");

/** Decode one static instruction (no block-length information). */
DecodedInst decodeInst(const Instruction &inst);

/**
 * A Program's code segment decoded once, shared read-only by every
 * emulator and core bound to that program. Invariant used by the
 * emulator's straight-line block executor: for every pc, the
 * blockLen - 1 instructions before the block terminator are neither
 * control instructions nor HALT (so they can execute with no pc or
 * halt checks); the instruction at pc + blockLen - 1 is executed with
 * full dispatch. blockLen is exact per-pc (a branch into the middle of
 * a block sees the correctly shortened remainder).
 */
class DecodedProgram
{
  public:
    explicit DecodedProgram(const Program &prog);

    size_t size() const { return insts.size(); }
    const DecodedInst *data() const { return insts.data(); }
    const DecodedInst &at(InstAddr pc) const { return insts[pc]; }

    /** Out-of-range PCs decode as NOPs (wrong-path safe), mirroring
     *  Program::fetch(). */
    const DecodedInst &
    fetch(InstAddr pc) const
    {
        return pc < insts.size() ? insts[pc] : nopSentinel();
    }

    /** First byte address past the text segment: stores below this
     *  land in the program image (the immutable-text fault). */
    Addr textLimit() const { return textLimit_; }

    /** Heap footprint, for cache byte accounting. */
    size_t
    bytes() const
    {
        return sizeof(DecodedProgram) +
               insts.capacity() * sizeof(DecodedInst);
    }

    /** The shared decoded NOP every out-of-range fetch returns. */
    static const DecodedInst &nopSentinel();

  private:
    std::vector<DecodedInst> insts;
    Addr textLimit_ = 0;
};

/**
 * The RIX_DECODE environment knob: the escape hatch selecting the
 * legacy decode-per-step emulator loop for one release. Unset or "1"
 * selects the pre-decoded core (the default), "0" the legacy loop;
 * anything else is fatal (same strictness as RIX_CHECK).
 */
bool emulatorDecodeFromEnv();

// ---------------------------------------------------------------------
// Opcode semantics: defined exactly once, as X-macro tables.
//
// Each RIX_ALU_SEMANTICS entry is (OPCODE, result-expression) over
//   a, b     the u64 source values (src1/src2; zero when unused),
//   sa, sb   their signed views,
//   imm      the signed immediate.
// Expanded by aluCompute() (detailed pipeline, integration oracle,
// legacy emulator loop) and by the emulator's per-opcode dispatch
// handlers. RIX_BRANCH_SEMANTICS entries are (OPCODE, taken-predicate)
// over sa.
// ---------------------------------------------------------------------

namespace detail
{

/** Signed division with the ISA's quotient conventions: divide by
 *  zero yields 0, INT64_MIN / -1 yields the dividend. */
inline u64
divToZero(s64 sa, s64 sb)
{
    if (sb == 0)
        return 0;
    if (sa == INT64_MIN && sb == -1)
        return u64(sa);
    return u64(sa / sb);
}

/** FDIV's fixed-point datapath substitute (8.8 scaling), same guard
 *  conventions as divToZero. */
inline u64
fixDiv(s64 sa, s64 sb)
{
    if (sb == 0)
        return 0;
    if (sa == INT64_MIN && sb == -1)
        return u64(sa);
    return u64((sa << 8) / sb);
}

} // namespace detail

#define RIX_ALU_SEMANTICS(X) \
    X(ADDQ,   a + b) \
    X(SUBQ,   a - b) \
    X(AND,    a & b) \
    X(BIS,    a | b) \
    X(XOR,    a ^ b) \
    X(SLL,    a << (b & 63)) \
    X(SRL,    a >> (b & 63)) \
    X(SRA,    u64(sa >> (b & 63))) \
    X(CMPEQ,  u64(a == b)) \
    X(CMPLT,  u64(sa < sb)) \
    X(CMPLE,  u64(sa <= sb)) \
    X(ADDQI,  a + u64(imm)) \
    X(SUBQI,  a - u64(imm)) \
    X(ANDI,   a & u64(imm)) \
    X(BISI,   a | u64(imm)) \
    X(XORI,   a ^ u64(imm)) \
    X(SLLI,   a << (imm & 63)) \
    X(SRLI,   a >> (imm & 63)) \
    X(SRAI,   u64(sa >> (imm & 63))) \
    X(CMPEQI, u64(sa == imm)) \
    X(CMPLTI, u64(sa < imm)) \
    X(CMPLEI, u64(sa <= imm)) \
    X(LDA,    a + u64(imm)) \
    X(MULQ,   a * b) \
    X(MULQI,  a * u64(imm)) \
    X(DIVQ,   detail::divToZero(sa, sb)) \
    X(FADD,   a + b) \
    X(FMUL,   u64((sa * sb) >> 8)) \
    X(FDIV,   detail::fixDiv(sa, sb))

#define RIX_BRANCH_SEMANTICS(X) \
    X(BEQ, sa == 0) \
    X(BNE, sa != 0) \
    X(BLT, sa < 0) \
    X(BGE, sa >= 0) \
    X(BGT, sa > 0) \
    X(BLE, sa <= 0)

/**
 * Every opcode, in enum order — the dispatch-table generator. The
 * static_asserts below guarantee the list and the Opcode enum agree,
 * so a table built by expanding this macro is indexable directly by
 * DecodedInst::handler.
 */
#define RIX_OPCODE_LIST(X) \
    X(ADDQ) X(SUBQ) X(AND) X(BIS) X(XOR) X(SLL) X(SRL) X(SRA) \
    X(CMPEQ) X(CMPLT) X(CMPLE) \
    X(ADDQI) X(SUBQI) X(ANDI) X(BISI) X(XORI) X(SLLI) X(SRLI) X(SRAI) \
    X(CMPEQI) X(CMPLTI) X(CMPLEI) \
    X(LDA) X(MULQ) X(MULQI) X(DIVQ) \
    X(FADD) X(FMUL) X(FDIV) \
    X(LDQ) X(LDL) X(STQ) X(STL) \
    X(BR) X(BEQ) X(BNE) X(BLT) X(BGE) X(BGT) X(BLE) \
    X(JSR) X(JMP) X(RET) \
    X(SYSCALL) X(NOP) X(HALT)

namespace detail
{

constexpr Opcode opcodeListOrder[] = {
#define X(OP) Opcode::OP,
    RIX_OPCODE_LIST(X)
#undef X
};

constexpr bool
opcodeListDense()
{
    for (unsigned i = 0; i < numOpcodes; ++i)
        if (unsigned(opcodeListOrder[i]) != i)
            return false;
    return true;
}

static_assert(sizeof(opcodeListOrder) / sizeof(opcodeListOrder[0]) ==
                  numOpcodes,
              "RIX_OPCODE_LIST must name every opcode exactly once");
static_assert(opcodeListDense(),
              "RIX_OPCODE_LIST must match the Opcode enum order");

} // namespace detail

/** Pure ALU function: computes an instruction's result value.
 *
 * @param inst the instruction (must have a destination or be a store)
 * @param a    value of src1 (ra), zero if unused
 * @param b    value of src2 (rb), zero if unused
 * @return destination value (for stores: the store data, i.e. b)
 */
u64 aluCompute(const Instruction &inst, u64 a, u64 b);

/** Branch condition evaluation for conditional branches. */
bool branchTaken(const Instruction &inst, u64 a);

/** Fix up a raw little-endian memory read into the architectural load
 *  result (LDL sign-extends; everything else passes through). */
inline u64
loadValue(Opcode op, u64 raw)
{
    return op == Opcode::LDL ? u64(s64(s32(u32(raw)))) : raw;
}

// ---------------------------------------------------------------------
// 64-bit machine encoding (folded in from isa/encoding.{hh,cc}).
//
// Layout (EV6-like fixed width, widened to hold 32-bit immediates):
//
//   [63:56] opcode   [55:51] ra   [50:46] rb   [45:41] rc
//   [40:32] reserved (zero)       [31:0]  immediate (two's complement)
//
// Round-trips losslessly with decode(); used by the assembler's binary
// output path and by encode/decode conformance tests. decode() is the
// only function in the tree that parses a raw instruction word.
// ---------------------------------------------------------------------

/** Pack an instruction into its 64-bit machine word. */
u64 encode(const Instruction &inst);

/**
 * Unpack a machine word.
 * @param word the encoded instruction
 * @param ok   set false when the opcode field is invalid
 */
Instruction decode(u64 word, bool *ok = nullptr);

} // namespace rix

#endif // RIX_ISA_DECODED_HH
