#include "isa/decoded.hh"

#include <cstdlib>
#include <cstring>

#include "assembler/program.hh"
#include "base/bitutil.hh"
#include "base/log.hh"

namespace rix
{

namespace
{

IssuePort
portOfClass(InstClass cls)
{
    switch (cls) {
      case InstClass::ComplexInt:
      case InstClass::FloatOp:
        return IssuePort::Complex;
      case InstClass::Load:
        return IssuePort::LoadP;
      case InstClass::Store:
        return IssuePort::StoreP;
      default:
        return IssuePort::Simple; // ALU, branches, returns, indirect jumps
    }
}

bool
priorityClassOf(InstClass cls)
{
    switch (cls) {
      case InstClass::Load:
      case InstClass::Branch:
      case InstClass::IndirectJump:
      case InstClass::Return:
      case InstClass::FloatOp:
        return true;
      default:
        return false;
    }
}

/** Does this class occupy a reservation station? Direct jumps and
 *  calls execute for free at decode; nops, halts and syscalls never
 *  enter the window. */
bool
needsRsOf(InstClass cls)
{
    switch (cls) {
      case InstClass::SimpleInt:
      case InstClass::ComplexInt:
      case InstClass::FloatOp:
      case InstClass::Load:
      case InstClass::Store:
      case InstClass::Branch:
      case InstClass::IndirectJump:
      case InstClass::Return:
        return true;
      default:
        return false;
    }
}

bool
isControlClass(InstClass cls)
{
    switch (cls) {
      case InstClass::Branch:
      case InstClass::Jump:
      case InstClass::IndirectJump:
      case InstClass::Call:
      case InstClass::Return:
        return true;
      default:
        return false;
    }
}

} // namespace

DecodedInst
decodeInst(const Instruction &inst)
{
    const OpTraits &t = opTraits(inst.op);
    DecodedInst d;
    d.inst = inst;
    d.handler = u8(inst.op);
    d.src1 = t.readsRa ? inst.ra : regZero;
    d.src2 = t.readsRb ? inst.rb : regZero;
    d.dest = (t.hasDest && inst.rc != regZero) ? inst.rc : u8(emuRegSink);
    d.imm = inst.imm;
    d.cls = u8(t.cls);
    d.port = u8(portOfClass(t.cls));
    d.latency = t.latency;
    d.size = 0;
    d.target = 0;
    d.blockLen = 1;

    u16 flags = 0;
    if (t.hasDest && inst.rc != regZero)
        flags |= DFlagWritesReg;
    if (t.readsRa)
        flags |= DFlagReadsRa;
    if (t.readsRb)
        flags |= DFlagReadsRb;
    if (priorityClassOf(t.cls))
        flags |= DFlagPriority;
    if (needsRsOf(t.cls))
        flags |= DFlagNeedsRs;
    if (isControlClass(t.cls))
        flags |= DFlagCtrl;
    if (isControlClass(t.cls) || t.cls == InstClass::Halt)
        flags |= DFlagEndsBlock;

    switch (t.cls) {
      case InstClass::Load:
        flags |= DFlagLoad;
        d.size = u8(memAccessSize(inst.op));
        break;
      case InstClass::Store:
        flags |= DFlagStore;
        d.size = u8(memAccessSize(inst.op));
        break;
      case InstClass::Branch:
      case InstClass::Jump:
      case InstClass::Call:
        d.target = u32(inst.imm);
        break;
      default:
        break;
    }
    d.flags = flags;
    return d;
}

DecodedProgram::DecodedProgram(const Program &prog)
{
    const size_t n = prog.code.size();
    insts.resize(n);
    textLimit_ = Addr(n) * instructionBytes;
    for (size_t i = 0; i < n; ++i)
        insts[i] = decodeInst(prog.code[i]);

    // Block lengths, computed backward: a terminator (or the last slot
    // of an unterminated tail) is a 1-instruction block; every other
    // slot extends the block starting right after it. Each pc carries
    // the length of the block *starting there*, so a branch into the
    // middle of a block sees exactly its straight-line remainder.
    for (size_t i = n; i-- > 0;) {
        if (!insts[i].endsBlock() && i + 1 < n)
            insts[i].blockLen = insts[i + 1].blockLen + 1;
    }
}

const DecodedInst &
DecodedProgram::nopSentinel()
{
    static const DecodedInst nop = decodeInst(makeNop());
    return nop;
}

bool
emulatorDecodeFromEnv()
{
    const char *v = getenv("RIX_DECODE");
    if (!v)
        return true;
    if (strcmp(v, "0") == 0)
        return false;
    if (strcmp(v, "1") == 0)
        return true;
    rix_fatal("RIX_DECODE must be 0 or 1 (got '%s')", v);
}

u64
aluCompute(const Instruction &inst, u64 a, u64 b)
{
    const s64 sa = s64(a);
    const s64 sb = s64(b);
    const s64 imm = inst.imm;
    (void)sb;
    (void)imm;
    switch (inst.op) {
#define X(OP, EXPR) \
      case Opcode::OP: return EXPR;
        RIX_ALU_SEMANTICS(X)
#undef X
      case Opcode::JSR: return 0; // link value is PC-relative, set by caller
      case Opcode::SYSCALL: return 0;
      default:
        rix_panic("aluCompute: %s has no ALU function",
                  opName(inst.op));
    }
}

bool
branchTaken(const Instruction &inst, u64 a)
{
    const s64 sa = s64(a);
    switch (inst.op) {
#define X(OP, EXPR) \
      case Opcode::OP: return EXPR;
        RIX_BRANCH_SEMANTICS(X)
#undef X
      default:
        rix_panic("branchTaken: %s is not a conditional branch",
                  opName(inst.op));
    }
}

u64
encode(const Instruction &inst)
{
    u64 w = 0;
    w |= (u64(inst.op) & mask(8)) << 56;
    w |= (u64(inst.ra) & mask(5)) << 51;
    w |= (u64(inst.rb) & mask(5)) << 46;
    w |= (u64(inst.rc) & mask(5)) << 41;
    w |= u64(u32(inst.imm));
    return w;
}

Instruction
decode(u64 word, bool *ok)
{
    Instruction inst;
    const u64 opfield = bits(word, 63, 56);
    const bool valid = opfield < numOpcodes;
    if (ok)
        *ok = valid;
    if (!valid)
        return makeNop();
    inst.op = Opcode(opfield);
    inst.ra = LogReg(bits(word, 55, 51));
    inst.rb = LogReg(bits(word, 50, 46));
    inst.rc = LogReg(bits(word, 45, 41));
    inst.imm = s32(u32(bits(word, 31, 0)));
    return inst;
}

} // namespace rix
