/**
 * @file
 * Architectural register conventions.
 *
 * The ISA is Alpha-flavoured: 32 64-bit integer registers, with r31
 * hard-wired to zero, r30 the stack pointer and r26 the return address.
 * Registers r9-r15 are callee-saved ("s" registers) and r1-r8 / r16-r25
 * caller-saved, mirroring the conventions the paper's stack save/restore
 * idioms (register fills and spills) depend on.
 */

#ifndef RIX_ISA_REGS_HH
#define RIX_ISA_REGS_HH

#include "base/types.hh"

namespace rix
{

/** Number of architectural integer registers. */
constexpr unsigned numLogRegs = 32;

/** Hard-wired zero register. */
constexpr LogReg regZero = 31;

/** Stack pointer: the register reverse integration keys on. */
constexpr LogReg regSp = 30;

/** Return address (link) register. */
constexpr LogReg regRa = 26;

/** Global/data-segment base pointer by convention. */
constexpr LogReg regGp = 29;

/** First function-argument register (a0..a5 = r16..r21). */
constexpr LogReg regA0 = 16;

/** Function return-value register. */
constexpr LogReg regV0 = 0;

/** First callee-saved register (s0..s6 = r9..r15). */
constexpr LogReg regS0 = 9;

/** First caller-saved temporary (t0.. = r1..). */
constexpr LogReg regT0 = 1;

/** True for callee-saved ("s") registers. */
constexpr bool
isCalleeSaved(LogReg r)
{
    return r >= 9 && r <= 15;
}

} // namespace rix

#endif // RIX_ISA_REGS_HH
