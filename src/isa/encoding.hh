/**
 * @file
 * 64-bit machine encoding of instructions.
 *
 * Layout (EV6-like fixed width, widened to hold 32-bit immediates):
 *
 *   [63:56] opcode   [55:51] ra   [50:46] rb   [45:41] rc
 *   [40:32] reserved (zero)       [31:0]  immediate (two's complement)
 *
 * Round-trips losslessly with decode(); used by the assembler's binary
 * output path and by encode/decode conformance tests.
 */

#ifndef RIX_ISA_ENCODING_HH
#define RIX_ISA_ENCODING_HH

#include "isa/inst.hh"

namespace rix
{

/** Pack an instruction into its 64-bit machine word. */
u64 encode(const Instruction &inst);

/**
 * Unpack a machine word.
 * @param word the encoded instruction
 * @param ok   set false when the opcode field is invalid
 */
Instruction decode(u64 word, bool *ok = nullptr);

} // namespace rix

#endif // RIX_ISA_ENCODING_HH
