/**
 * @file
 * Opcode enumeration and static per-opcode traits.
 *
 * The opcode set is a compact Alpha-EV6-like 64-bit integer ISA plus a
 * small "FP-class" group (fixed-point substitutes that occupy the
 * complex-operation issue ports, documented in DESIGN.md). The traits
 * table drives decode, functional execution, issue-port selection and
 * the integration policy (which classes integrate, which create reverse
 * entries).
 */

#ifndef RIX_ISA_OPCODE_HH
#define RIX_ISA_OPCODE_HH

#include <cstdint>

#include "base/types.hh"

namespace rix
{

enum class Opcode : u8
{
    // Simple integer, register-register: rc = ra op rb.
    ADDQ, SUBQ, AND, BIS, XOR, SLL, SRL, SRA,
    CMPEQ, CMPLT, CMPLE,
    // Simple integer, register-immediate: rc = ra op imm.
    ADDQI, SUBQI, ANDI, BISI, XORI, SLLI, SRLI, SRAI,
    CMPEQI, CMPLTI, CMPLEI,
    // Load address: rc = ra + imm (Alpha lda rc, imm(ra)).
    LDA,
    // Complex integer.
    MULQ, MULQI, DIVQ,
    // FP-class (complex ports; fixed-point datapath substitutes).
    FADD, FMUL, FDIV,
    // Memory: loads rc = M[ra + imm]; stores M[ra + imm] = rb.
    LDQ, LDL, STQ, STL,
    // Control. Conditional branches test ra against zero.
    BR, BEQ, BNE, BLT, BGE, BGT, BLE,
    JSR,    // direct call, link into rc
    JMP,    // indirect jump through ra
    RET,    // function return through ra (pops RAS)
    // Misc.
    SYSCALL, NOP, HALT,

    NUM_OPCODES
};

constexpr unsigned numOpcodes = unsigned(Opcode::NUM_OPCODES);

/** Syscall function codes (SYSCALL immediate field). */
enum class SyscallCode : s32
{
    Emit = 1,   // append ra's value to the program output channel
    Nop = 2,    // no effect (models an OS round trip)
};

/** Functional-unit / issue-port class of an instruction. */
enum class InstClass : u8
{
    SimpleInt,  // 2 issue slots/cycle in the baseline
    ComplexInt, // shares the 2 "FP or complex" slots
    FloatOp,    // shares the 2 "FP or complex" slots
    Load,       // 1 slot
    Store,      // 1 slot
    Branch,     // conditional; executes on a simple-int slot
    Jump,       // unconditional direct (executed at decode, free)
    IndirectJump,
    Call,
    Return,
    Syscall,    // executed at retirement
    Nop,
    Halt,
};

/** Static properties of one opcode. */
struct OpTraits
{
    const char *mnemonic;
    InstClass cls;
    u8 latency;     // execute latency in cycles
    bool hasDest;   // writes rc
    bool readsRa;
    bool readsRb;
    bool hasImm;
};

namespace detail
{
extern const OpTraits traitsTable[numOpcodes];
[[noreturn]] void badOpcode(unsigned idx);
} // namespace detail

/** Look up the traits of @p op (inline: this sits under every
 *  cls()/isLoad()/latency query in the simulation hot loop). */
inline const OpTraits &
opTraits(Opcode op)
{
    const auto idx = unsigned(op);
    if (idx >= numOpcodes)
        detail::badOpcode(idx);
    return detail::traitsTable[idx];
}

/** Mnemonic string of @p op. */
const char *opName(Opcode op);

/** Parse a mnemonic; returns NUM_OPCODES when unknown. */
Opcode opFromName(const char *name);

constexpr bool
isLoadOp(Opcode op)
{
    return op == Opcode::LDQ || op == Opcode::LDL;
}

constexpr bool
isStoreOp(Opcode op)
{
    return op == Opcode::STQ || op == Opcode::STL;
}

/** Memory access size in bytes for a load/store opcode. */
constexpr unsigned
memAccessSize(Opcode op)
{
    return (op == Opcode::LDQ || op == Opcode::STQ) ? 8 : 4;
}

/** The complementary load opcode for a store (reverse integration). */
constexpr Opcode
inverseOfStore(Opcode op)
{
    return op == Opcode::STQ ? Opcode::LDQ : Opcode::LDL;
}

/**
 * True when the opcode has an arithmetic inverse usable for reverse
 * integration of the stack pointer (add/sub with immediate, lda).
 */
constexpr bool
hasArithmeticInverse(Opcode op)
{
    return op == Opcode::ADDQI || op == Opcode::SUBQI || op == Opcode::LDA;
}

} // namespace rix

#endif // RIX_ISA_OPCODE_HH
