#include "isa/inst.hh"

#include "base/log.hh"

namespace rix
{

std::string
disassemble(const Instruction &inst)
{
    const OpTraits &t = inst.traits();
    switch (inst.cls()) {
      case InstClass::Load:
        return strfmt("%s r%u, %d(r%u)", t.mnemonic, inst.rc, inst.imm,
                      inst.ra);
      case InstClass::Store:
        return strfmt("%s r%u, %d(r%u)", t.mnemonic, inst.rb, inst.imm,
                      inst.ra);
      case InstClass::Branch:
        return strfmt("%s r%u, @%d", t.mnemonic, inst.ra, inst.imm);
      case InstClass::Jump:
        return strfmt("%s @%d", t.mnemonic, inst.imm);
      case InstClass::Call:
        return strfmt("%s @%d, r%u", t.mnemonic, inst.imm, inst.rc);
      case InstClass::IndirectJump:
      case InstClass::Return:
        return strfmt("%s r%u", t.mnemonic, inst.ra);
      case InstClass::Syscall:
        return strfmt("%s %d", t.mnemonic, inst.imm);
      case InstClass::Nop:
      case InstClass::Halt:
        return t.mnemonic;
      default:
        break;
    }
    if (t.hasImm) {
        if (inst.op == Opcode::LDA)
            return strfmt("%s r%u, %d(r%u)", t.mnemonic, inst.rc, inst.imm,
                          inst.ra);
        return strfmt("%s r%u, r%u, %d", t.mnemonic, inst.rc, inst.ra,
                      inst.imm);
    }
    return strfmt("%s r%u, r%u, r%u", t.mnemonic, inst.rc, inst.ra, inst.rb);
}

Instruction
makeRR(Opcode op, LogReg rc, LogReg ra, LogReg rb)
{
    Instruction i;
    i.op = op;
    i.rc = rc;
    i.ra = ra;
    i.rb = rb;
    return i;
}

Instruction
makeRI(Opcode op, LogReg rc, LogReg ra, s32 imm)
{
    Instruction i;
    i.op = op;
    i.rc = rc;
    i.ra = ra;
    i.imm = imm;
    return i;
}

Instruction
makeLoad(Opcode op, LogReg rc, s32 imm, LogReg base)
{
    Instruction i;
    i.op = op;
    i.rc = rc;
    i.ra = base;
    i.imm = imm;
    return i;
}

Instruction
makeStore(Opcode op, LogReg data, s32 imm, LogReg base)
{
    Instruction i;
    i.op = op;
    i.rb = data;
    i.ra = base;
    i.imm = imm;
    return i;
}

Instruction
makeBranch(Opcode op, LogReg ra, s32 target)
{
    Instruction i;
    i.op = op;
    i.ra = ra;
    i.imm = target;
    return i;
}

Instruction
makeJump(s32 target)
{
    Instruction i;
    i.op = Opcode::BR;
    i.imm = target;
    return i;
}

Instruction
makeCall(s32 target, LogReg link)
{
    Instruction i;
    i.op = Opcode::JSR;
    i.rc = link;
    i.imm = target;
    return i;
}

Instruction
makeIndirect(Opcode op, LogReg ra)
{
    Instruction i;
    i.op = op;
    i.ra = ra;
    return i;
}

Instruction
makeSyscall(s32 code, LogReg arg, LogReg result)
{
    Instruction i;
    i.op = Opcode::SYSCALL;
    i.imm = code;
    i.ra = arg;
    i.rc = result;
    return i;
}

Instruction
makeNop()
{
    return Instruction{};
}

Instruction
makeHalt()
{
    Instruction i;
    i.op = Opcode::HALT;
    return i;
}

} // namespace rix
