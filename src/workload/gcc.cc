/**
 * @file
 * gcc-like workload: optimization passes over a synthetic IR.
 *
 * Character profile: branch-dense kind dispatch (a computed-goto region
 * for common kinds plus a compare cascade for the rest — both
 * mispredict on the data-dependent kind stream, feeding squash reuse),
 * moderate calls into a folding helper, stores back into the IR array,
 * and a backward dead-code-marking pass.
 */

#include "workload/kit.hh"
#include "workload/workload.hh"

namespace rix
{

Program
buildGcc(const WorkloadParams &wp)
{
    Builder b("gcc");
    Rng rng(0x6cc);
    const s32 nir = 1024;
    // Each IR record: [kind (0..7), operand] as two quads.
    {
        std::vector<u64> ir(size_t(nir) * 2);
        for (s32 i = 0; i < nir; ++i) {
            ir[size_t(i) * 2] = rng.below(8);
            ir[size_t(i) * 2 + 1] = rng.below(65536);
        }
        b.quads("ir", ir);
    }
    b.space("marks", nir * 8);

    const LogReg v0 = 0;
    const LogReg t0 = 1, t1 = 2, t2 = 3, t4 = 5, t5 = 6, t6 = 7;
    const LogReg s0 = 9, s1 = 10, s4 = 13;
    const LogReg a0 = 16, a1 = 17;

    b.br("main");

    // fold(a0 = kind, a1 = operand) -> v0: constant-folding helper.
    b.bind("fold");
    {
        FnFrame f(b, {s0});
        f.prologue();
        b.mv(s0, a1);
        b.andi(t0, a0, 3);
        b.mulqi(t1, s0, 3);
        b.addq(t1, t1, t0);
        b.xori(t1, t1, 0x55);
        b.srli(t2, t1, 4);
        b.addq(v0, t1, t2);
        f.epilogue();
    }

    // pass_fold() -> v0: forward walk with kind dispatch.
    b.bind("pass_fold");
    {
        FnFrame f(b, {s0, s1});
        f.prologue();
        b.addqi(s0, regGp, s32(b.dataAddr("ir") - defaultDataBase));
        b.li(s1, 0); // accumulator
        emitCountedLoop(b, t5, nir, [&] {
            b.ldq(t0, 0, s0); // kind
            b.ldq(t1, 8, s0); // operand
            b.cmplti(t2, t0, 4);
            b.beq(t2, "gcc_cascade");
            // Computed goto over kinds 0..3 (BTB-hostile dispatch).
            b.liCode(t4, "gcc_kdisp");
            b.addq(t4, t4, t0);
            b.jmp(t4);
            b.bind("gcc_kdisp");
            b.br("gcc_k0");
            b.br("gcc_k1");
            b.br("gcc_k2");
            b.br("gcc_k3");
            b.bind("gcc_k0");
            b.xor_(s1, s1, t1);
            b.br("gcc_join");
            b.bind("gcc_k1");
            b.addq(s1, s1, t1);
            b.br("gcc_join");
            b.bind("gcc_k2");
            b.mv(a0, t0);
            b.mv(a1, t1);
            b.jsr("fold");
            b.addq(s1, s1, v0);
            b.br("gcc_join");
            b.bind("gcc_k3");
            b.slli(t2, t1, 1);
            b.stq(t2, 8, s0); // strength-reduce in place
            b.br("gcc_join");
            // Compare cascade for kinds 4..7.
            b.bind("gcc_cascade");
            b.cmpeqi(t2, t0, 4);
            const std::string n4 = b.genLabel("n4");
            b.beq(t2, n4);
            b.addqi(s1, s1, 3);
            b.br("gcc_join");
            b.bind(n4);
            b.cmpeqi(t2, t0, 5);
            const std::string n5 = b.genLabel("n5");
            b.beq(t2, n5);
            b.srli(t2, s1, 1);
            b.addq(s1, t2, t1);
            b.br("gcc_join");
            b.bind(n5);
            b.cmpeqi(t2, t0, 6);
            const std::string n6 = b.genLabel("n6");
            b.beq(t2, n6);
            b.mv(a0, t0);
            b.mv(a1, t1);
            b.jsr("fold");
            b.xor_(s1, s1, v0);
            b.bind(n6); // kind 7: dead instruction, nothing to do
            b.bind("gcc_join");
            b.addqi(s0, s0, 16);
        });
        b.mv(v0, s1);
        f.epilogue();
    }

    // pass_mark(): backward liveness marking.
    b.bind("pass_mark");
    {
        FnFrame f(b, {s0});
        f.prologue();
        b.addqi(s0, regGp,
                s32(b.dataAddr("ir") - defaultDataBase + (nir - 1) * 16));
        b.li(t4, nir - 1);
        emitCountedLoop(b, t5, nir, [&] {
            // Unhoisted marks-base recomputation: integrable.
            b.addqi(t6, regGp, s32(b.dataAddr("marks") - defaultDataBase));
            b.ldq(t0, 0, s0);
            b.cmpeqi(t1, t0, 7);
            b.xori(t1, t1, 1); // live = kind != 7
            b.slli(t2, t4, 3);
            b.addq(t2, t6, t2);
            b.stq(t1, 0, t2);
            b.subqi(s0, s0, 16);
            b.subqi(t4, t4, 1);
        });
        f.epilogue();
    }

    b.bind("main");
    b.li(s4, 0);
    emitCountedLoop(b, 15, s32(2 * wp.scale), [&] {
        b.jsr("pass_fold");
        b.xor_(s4, s4, v0);
        b.jsr("pass_mark");
    });
    b.syscall(s32(SyscallCode::Emit), s4);
    b.halt();

    b.entry("main");
    return b.finish();
}

} // namespace rix
