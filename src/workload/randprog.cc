#include "workload/randprog.hh"

#include <vector>

#include "assembler/builder.hh"
#include "base/bitutil.hh"
#include "base/log.hh"

namespace rix
{

std::string
validateRandProgConfig(const RandProgConfig &c)
{
    if (c.bodyOpsMin == 0 || c.bodyOpsMin > c.bodyOpsMax)
        return strfmt("body_ops range [%u, %u] is empty or zero",
                      c.bodyOpsMin, c.bodyOpsMax);
    if (c.bodyOpsMax > 100'000)
        return strfmt("body_ops_max %u is unreasonably large "
                      "(max 100000)", c.bodyOpsMax);
    if (c.itersMin == 0 || c.itersMin > c.itersMax)
        return strfmt("iters range [%u, %u] is empty or zero", c.itersMin,
                      c.itersMax);
    if (c.itersMax > 1'000'000)
        return strfmt("iters_max %u is unreasonably large (max 1000000)",
                      c.itersMax);
    if (c.memFootprint < 16 || !isPow2(c.memFootprint))
        return strfmt("mem_footprint must be a power of two >= 16 "
                      "(got %u)", c.memFootprint);
    if (c.memFootprint > (1u << 26))
        return strfmt("mem_footprint %u is unreasonably large "
                      "(max 64 MiB)", c.memFootprint);
    if (c.dataQuads < 8)
        return strfmt("data_quads must be >= 8 (got %u; the spill arm "
                      "writes the first 8 quads)", c.dataQuads);
    if (c.dataQuads > 1'000'000)
        return strfmt("data_quads %u is unreasonably large "
                      "(max 1000000)", c.dataQuads);
    if (c.callDepth > 16)
        return strfmt("call_depth %u too deep (max 16)", c.callDepth);
    if (c.aluOpBias > 8)
        return strfmt("alu_op_bias %u too large (max 8)", c.aluOpBias);
    return "";
}

u64
randProgInstBudget(const RandProgConfig &c)
{
    // Worst case per arm: the call arm runs the whole chain (~12
    // instructions per level), every other arm emits at most 7.
    // Splicing appends a second run of arms to every iteration.
    const u64 perArm = 8 + 12ull * c.callDepth;
    const u64 arms = u64(c.bodyOpsMax) * (c.spliceSeed ? 2 : 1);
    const u64 perIter = 4 + arms * perArm;
    return 64 + u64(c.itersMax) * perIter;
}

Program
generateRandomProgram(u64 seed, const RandProgConfig &cfg)
{
    const std::string verr = validateRandProgConfig(cfg);
    if (!verr.empty())
        rix_fatal("randprog: %s", verr.c_str());

    Rng rng(seed);
    Builder b(strfmt("rand%llu", (unsigned long long)seed));
    b.randomQuads("data", cfg.dataQuads, rng);
    b.space("scratch", cfg.memFootprint);
    // Masking into [0, footprint) keeps every generated address inside
    // the scratch region, 8-aligned.
    const s32 scratchMask = s32(cfg.memFootprint - 8);

    const LogReg regs[] = {1, 2, 3, 4, 5, 6, 7, 8, 16, 17, 22, 23};
    auto regFrom = [&](Rng &r) { return regs[r.below(std::size(regs))]; };
    auto reg = [&]() { return regFrom(rng); };

    b.br("main");

    // A chain of functions with proper frames: fn0 calls fn1 calls ...
    // fn(D-1); the body's call arm enters at fn0. Termination is
    // structural — the chain is finite and acyclic.
    for (unsigned d = 0; d < cfg.callDepth; ++d) {
        b.bind(strfmt("fn%u", d));
        b.lda(regSp, -16, regSp);
        b.stq(regRa, 0, regSp);
        const unsigned ops = 1 + unsigned(rng.below(3));
        for (unsigned i = 0; i < ops; ++i)
            b.emit(makeRI(Opcode::ADDQI, 16, 16, s32(rng.range(-9, 9))));
        if (d + 1 < cfg.callDepth)
            b.jsr(strfmt("fn%u", d + 1));
        b.mulqi(0, 16, 3);
        b.ldq(regRa, 0, regSp);
        b.lda(regSp, 16, regSp);
        b.ret();
    }

    b.bind("main");
    // Outer bounded loop: the only back edge, so termination is
    // structural.
    const s32 iters =
        s32(cfg.itersMin + rng.below(cfg.itersMax - cfg.itersMin + 1));
    b.li(14, iters); // s5 = loop counter
    b.li(13, 0);     // s4 = checksum
    b.bind("top");

    // Weighted arm lottery; the knobs are ticket counts.
    enum class Arm : u8
    {
        AluRR, AluRI, Load, Store, Branch, Call, Spill, Checksum
    };
    std::vector<Arm> tickets;
    for (int i = 0; i < 3; ++i)
        tickets.push_back(Arm::AluRR);
    for (int i = 0; i < 3; ++i)
        tickets.push_back(Arm::AluRI);
    for (unsigned i = 0; i < cfg.memWeight; ++i) {
        tickets.push_back(Arm::Load);
        tickets.push_back(Arm::Store);
    }
    for (unsigned i = 0; i < cfg.branchWeight; ++i)
        tickets.push_back(Arm::Branch);
    if (cfg.callDepth > 0)
        tickets.push_back(Arm::Call);
    tickets.push_back(Arm::Spill);
    tickets.push_back(Arm::Checksum);

    // One lottery arm, drawing every random decision from @p r. The
    // main body uses the program rng; splicing replays the same arm
    // machinery against an independent stream, so a spliced program's
    // main body stays bit-identical to the unspliced one.
    auto emitArm = [&](Rng &r) {
        auto reg = [&]() { return regFrom(r); };
        switch (tickets[r.below(tickets.size())]) {
          case Arm::AluRR:
          {
            static const Opcode ops[] = {Opcode::ADDQ, Opcode::SUBQ,
                                         Opcode::AND, Opcode::BIS,
                                         Opcode::XOR, Opcode::CMPLT,
                                         Opcode::MULQ};
            // The bias rotates which opcode a given draw lands on
            // (op substitution) without disturbing the draw stream.
            // The draw stays inside the call expression: hoisting it
            // would reorder it against the reg() draws (argument
            // evaluation order) and change every historical program.
            b.emit(makeRR(ops[(r.below(std::size(ops)) +
                               cfg.aluOpBias) % std::size(ops)],
                          reg(), reg(), reg()));
            break;
          }
          case Arm::AluRI:
          {
            // Dense immediates stress the IT index.
            static const Opcode ops[] = {Opcode::ADDQI, Opcode::SUBQI,
                                         Opcode::ANDI, Opcode::XORI,
                                         Opcode::SLLI, Opcode::SRLI};
            const size_t pick =
                (r.below(std::size(ops)) + cfg.aluOpBias) %
                std::size(ops);
            Opcode op = ops[pick];
            s32 imm = (op == Opcode::SLLI || op == Opcode::SRLI)
                          ? s32(r.below(63))
                          : s32(r.range(-64, 64));
            b.emit(makeRI(op, reg(), reg(), imm));
            break;
          }
          case Arm::Load:
          {
            LogReg addr = reg();
            b.andi(addr, addr, scratchMask);
            b.addqi(addr, addr, s32(b.dataAddr("scratch")));
            b.ldq(reg(), 0, addr);
            break;
          }
          case Arm::Store:
          {
            LogReg addr = reg();
            b.andi(addr, addr, scratchMask);
            b.addqi(addr, addr, s32(b.dataAddr("scratch")));
            b.stq(reg(), 0, addr);
            break;
          }
          case Arm::Branch: // forward data-dependent, reconvergent
          {
            const std::string skip = b.genLabel("skip");
            LogReg c = reg();
            b.andi(c, c, s32(1 + r.below(3)));
            switch (r.below(4)) {
              case 0: b.beq(c, skip); break;
              case 1: b.bne(c, skip); break;
              case 2: b.bgt(c, skip); break;
              default: b.ble(c, skip); break;
            }
            for (unsigned k = 0; k < 1 + r.below(4); ++k)
                b.emit(makeRI(Opcode::ADDQI, reg(), reg(),
                              s32(r.range(-5, 5))));
            b.bind(skip);
            break;
          }
          case Arm::Call:
            b.emit(makeRI(Opcode::ADDQI, 16, 16, 1));
            b.jsr("fn0");
            b.xor_(13, 13, 0);
            break;
          case Arm::Spill: // spill-slot style store+reload via gp
            b.stq(reg(), s32(r.below(8)) * 8, regGp);
            b.ldq(reg(), s32(r.below(8)) * 8, regGp);
            break;
          case Arm::Checksum:
            b.xor_(13, 13, reg());
            break;
        }
    };

    const unsigned body =
        cfg.bodyOpsMin + unsigned(rng.below(cfg.bodyOpsMax -
                                            cfg.bodyOpsMin + 1));
    for (unsigned i = 0; i < body; ++i)
        emitArm(rng);

    if (cfg.spliceSeed != 0) {
        // Body splicing: graft a second run of arms — drawn from the
        // donor stream — onto every iteration, after the native body.
        Rng donor(cfg.spliceSeed);
        const unsigned grafted =
            cfg.bodyOpsMin + unsigned(donor.below(cfg.bodyOpsMax -
                                                  cfg.bodyOpsMin + 1));
        for (unsigned i = 0; i < grafted; ++i)
            emitArm(donor);
    }

    b.subqi(14, 14, 1);
    b.bne(14, "top");
    b.syscall(s32(SyscallCode::Emit), 13);
    b.halt();
    b.entry("main");
    return b.finish();
}

RandProgMutation
mutateRandProg(u64 base_seed, const RandProgConfig &base, u64 mut_seed)
{
    RandProgMutation out{base_seed, base, "reseed"};
    Rng m(mut_seed);
    switch (m.below(7)) {
      case 0: // op substitution: rotate the ALU opcode tables
        out.cfg.aluOpBias = unsigned(1 + m.below(6));
        out.mutator = "op-subst";
        break;
      case 1: // branch-density perturbation
        out.cfg.branchWeight = unsigned(m.below(6));
        out.mutator = "branch-weight";
        break;
      case 2: // memory-density perturbation
        out.cfg.memWeight = unsigned(m.below(6));
        out.mutator = "mem-weight";
        break;
      case 3: // splice a donor body into every iteration
        out.cfg.spliceSeed = m.next() | 1; // any non-zero stream
        out.mutator = "splice";
        break;
      case 4: // scratch-footprint shift (aliasing pressure)
        out.cfg.memFootprint = 64u << m.below(7);
        out.mutator = "footprint";
        break;
      case 5: // call-chain depth shift (RAS / reverse-entry pressure)
        out.cfg.callDepth = unsigned(m.below(5));
        out.mutator = "call-depth";
        break;
      default: // fresh program, same shape
        out.seed = m.next();
        out.mutator = "reseed";
        break;
    }
    return out;
}

} // namespace rix
