#include "workload/randprog.hh"

#include <vector>

#include "assembler/builder.hh"
#include "base/bitutil.hh"
#include "base/log.hh"

namespace rix
{

std::string
validateRandProgConfig(const RandProgConfig &c)
{
    if (c.bodyOpsMin == 0 || c.bodyOpsMin > c.bodyOpsMax)
        return strfmt("body_ops range [%u, %u] is empty or zero",
                      c.bodyOpsMin, c.bodyOpsMax);
    if (c.bodyOpsMax > 100'000)
        return strfmt("body_ops_max %u is unreasonably large "
                      "(max 100000)", c.bodyOpsMax);
    if (c.itersMin == 0 || c.itersMin > c.itersMax)
        return strfmt("iters range [%u, %u] is empty or zero", c.itersMin,
                      c.itersMax);
    if (c.itersMax > 1'000'000)
        return strfmt("iters_max %u is unreasonably large (max 1000000)",
                      c.itersMax);
    if (c.memFootprint < 16 || !isPow2(c.memFootprint))
        return strfmt("mem_footprint must be a power of two >= 16 "
                      "(got %u)", c.memFootprint);
    if (c.memFootprint > (1u << 26))
        return strfmt("mem_footprint %u is unreasonably large "
                      "(max 64 MiB)", c.memFootprint);
    if (c.dataQuads < 8)
        return strfmt("data_quads must be >= 8 (got %u; the spill arm "
                      "writes the first 8 quads)", c.dataQuads);
    if (c.dataQuads > 1'000'000)
        return strfmt("data_quads %u is unreasonably large "
                      "(max 1000000)", c.dataQuads);
    if (c.callDepth > 16)
        return strfmt("call_depth %u too deep (max 16)", c.callDepth);
    return "";
}

u64
randProgInstBudget(const RandProgConfig &c)
{
    // Worst case per arm: the call arm runs the whole chain (~12
    // instructions per level), every other arm emits at most 7.
    const u64 perArm = 8 + 12ull * c.callDepth;
    const u64 perIter = 4 + u64(c.bodyOpsMax) * perArm;
    return 64 + u64(c.itersMax) * perIter;
}

Program
generateRandomProgram(u64 seed, const RandProgConfig &cfg)
{
    const std::string verr = validateRandProgConfig(cfg);
    if (!verr.empty())
        rix_fatal("randprog: %s", verr.c_str());

    Rng rng(seed);
    Builder b(strfmt("rand%llu", (unsigned long long)seed));
    b.randomQuads("data", cfg.dataQuads, rng);
    b.space("scratch", cfg.memFootprint);
    // Masking into [0, footprint) keeps every generated address inside
    // the scratch region, 8-aligned.
    const s32 scratchMask = s32(cfg.memFootprint - 8);

    const LogReg regs[] = {1, 2, 3, 4, 5, 6, 7, 8, 16, 17, 22, 23};
    auto reg = [&]() { return regs[rng.below(std::size(regs))]; };

    b.br("main");

    // A chain of functions with proper frames: fn0 calls fn1 calls ...
    // fn(D-1); the body's call arm enters at fn0. Termination is
    // structural — the chain is finite and acyclic.
    for (unsigned d = 0; d < cfg.callDepth; ++d) {
        b.bind(strfmt("fn%u", d));
        b.lda(regSp, -16, regSp);
        b.stq(regRa, 0, regSp);
        const unsigned ops = 1 + unsigned(rng.below(3));
        for (unsigned i = 0; i < ops; ++i)
            b.emit(makeRI(Opcode::ADDQI, 16, 16, s32(rng.range(-9, 9))));
        if (d + 1 < cfg.callDepth)
            b.jsr(strfmt("fn%u", d + 1));
        b.mulqi(0, 16, 3);
        b.ldq(regRa, 0, regSp);
        b.lda(regSp, 16, regSp);
        b.ret();
    }

    b.bind("main");
    // Outer bounded loop: the only back edge, so termination is
    // structural.
    const s32 iters =
        s32(cfg.itersMin + rng.below(cfg.itersMax - cfg.itersMin + 1));
    b.li(14, iters); // s5 = loop counter
    b.li(13, 0);     // s4 = checksum
    b.bind("top");

    // Weighted arm lottery; the knobs are ticket counts.
    enum class Arm : u8
    {
        AluRR, AluRI, Load, Store, Branch, Call, Spill, Checksum
    };
    std::vector<Arm> tickets;
    for (int i = 0; i < 3; ++i)
        tickets.push_back(Arm::AluRR);
    for (int i = 0; i < 3; ++i)
        tickets.push_back(Arm::AluRI);
    for (unsigned i = 0; i < cfg.memWeight; ++i) {
        tickets.push_back(Arm::Load);
        tickets.push_back(Arm::Store);
    }
    for (unsigned i = 0; i < cfg.branchWeight; ++i)
        tickets.push_back(Arm::Branch);
    if (cfg.callDepth > 0)
        tickets.push_back(Arm::Call);
    tickets.push_back(Arm::Spill);
    tickets.push_back(Arm::Checksum);

    const unsigned body =
        cfg.bodyOpsMin + unsigned(rng.below(cfg.bodyOpsMax -
                                            cfg.bodyOpsMin + 1));
    for (unsigned i = 0; i < body; ++i) {
        switch (tickets[rng.below(tickets.size())]) {
          case Arm::AluRR:
          {
            static const Opcode ops[] = {Opcode::ADDQ, Opcode::SUBQ,
                                         Opcode::AND, Opcode::BIS,
                                         Opcode::XOR, Opcode::CMPLT,
                                         Opcode::MULQ};
            b.emit(makeRR(ops[rng.below(std::size(ops))], reg(), reg(),
                          reg()));
            break;
          }
          case Arm::AluRI:
          {
            // Dense immediates stress the IT index.
            static const Opcode ops[] = {Opcode::ADDQI, Opcode::SUBQI,
                                         Opcode::ANDI, Opcode::XORI,
                                         Opcode::SLLI, Opcode::SRLI};
            Opcode op = ops[rng.below(std::size(ops))];
            s32 imm = (op == Opcode::SLLI || op == Opcode::SRLI)
                          ? s32(rng.below(63))
                          : s32(rng.range(-64, 64));
            b.emit(makeRI(op, reg(), reg(), imm));
            break;
          }
          case Arm::Load:
          {
            LogReg addr = reg();
            b.andi(addr, addr, scratchMask);
            b.addqi(addr, addr, s32(b.dataAddr("scratch")));
            b.ldq(reg(), 0, addr);
            break;
          }
          case Arm::Store:
          {
            LogReg addr = reg();
            b.andi(addr, addr, scratchMask);
            b.addqi(addr, addr, s32(b.dataAddr("scratch")));
            b.stq(reg(), 0, addr);
            break;
          }
          case Arm::Branch: // forward data-dependent, reconvergent
          {
            const std::string skip = b.genLabel("skip");
            LogReg c = reg();
            b.andi(c, c, s32(1 + rng.below(3)));
            switch (rng.below(4)) {
              case 0: b.beq(c, skip); break;
              case 1: b.bne(c, skip); break;
              case 2: b.bgt(c, skip); break;
              default: b.ble(c, skip); break;
            }
            for (unsigned k = 0; k < 1 + rng.below(4); ++k)
                b.emit(makeRI(Opcode::ADDQI, reg(), reg(),
                              s32(rng.range(-5, 5))));
            b.bind(skip);
            break;
          }
          case Arm::Call:
            b.emit(makeRI(Opcode::ADDQI, 16, 16, 1));
            b.jsr("fn0");
            b.xor_(13, 13, 0);
            break;
          case Arm::Spill: // spill-slot style store+reload via gp
            b.stq(reg(), s32(rng.below(8)) * 8, regGp);
            b.ldq(reg(), s32(rng.below(8)) * 8, regGp);
            break;
          case Arm::Checksum:
            b.xor_(13, 13, reg());
            break;
        }
    }

    b.subqi(14, 14, 1);
    b.bne(14, "top");
    b.syscall(s32(SyscallCode::Emit), 13);
    b.halt();
    b.entry("main");
    return b.finish();
}

} // namespace rix
