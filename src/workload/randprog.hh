/**
 * @file
 * Seeded random-program generator (the property-testing and fuzzing
 * workload source).
 *
 * Emits random-but-well-formed programs: one structurally bounded
 * outer loop, data-dependent forward branches, loads/stores confined
 * to a scratch region, and a proper-frame call chain — so every
 * generated program provably halts, while still sweeping arbitrary
 * register dataflow, immediate mixes, reconvergence shapes and
 * accidental integration-table collisions.
 *
 * Generation is a pure function of (seed, config): the same pair
 * always yields a bit-identical Program, which is what makes fuzz
 * reproducers replayable from just the seed. The config knobs change
 * the program's *shape* — body size, trip count, branch density,
 * call-chain depth, scratch footprint — and tests/test_randprog.cc
 * pins each knob's observable effect.
 */

#ifndef RIX_WORKLOAD_RANDPROG_HH
#define RIX_WORKLOAD_RANDPROG_HH

#include <string>

#include "assembler/program.hh"
#include "base/types.hh"

namespace rix
{

struct RandProgConfig
{
    /** Instruction-generating arms per loop iteration, drawn
     *  uniformly from [bodyOpsMin, bodyOpsMax]. */
    unsigned bodyOpsMin = 12;
    unsigned bodyOpsMax = 31;

    /** Outer-loop trip count, drawn uniformly from
     *  [itersMin, itersMax]; the only back edge in the program. */
    unsigned itersMin = 200;
    unsigned itersMax = 499;

    /** Branchiness: forward-branch tickets in the arm lottery
     *  (0 disables data-dependent branches entirely). */
    unsigned branchWeight = 2;

    /** Scratch load/store tickets (each) in the arm lottery. */
    unsigned memWeight = 2;

    /** Depth of the proper-frame call chain (0: no calls at all). */
    unsigned callDepth = 1;

    /** Scratch-region size in bytes; must be a power of two >= 16
     *  (all generated addresses are masked into it). */
    unsigned memFootprint = 512;

    /** Random 64-bit words in the initialized data segment (also the
     *  gp-relative spill area; minimum 8). */
    unsigned dataQuads = 64;

    /** ALU opcode-table rotation (the op-substitution mutator): arm
     *  lotteries draw the same indices but land on rotated opcodes.
     *  0 is the canonical table order. */
    unsigned aluOpBias = 0;

    /** When non-zero, splice a second run of body arms — drawn from an
     *  independent Rng(spliceSeed) stream — into every loop iteration
     *  (the body-splicing mutator). 0 disables splicing, and the
     *  emitted program is bit-identical to pre-splice generation. */
    u64 spliceSeed = 0;
};

/** Config sanity check: "" when valid, else a diagnostic. */
std::string validateRandProgConfig(const RandProgConfig &c);

/**
 * Upper bound on the architectural instructions any (seed, @p c)
 * program executes before HALT — generated programs are structurally
 * bounded, and tests enforce this budget.
 */
u64 randProgInstBudget(const RandProgConfig &c);

/**
 * Generate the program for (@p seed, @p cfg). Deterministic and
 * bit-identical across calls; fatal on an invalid config.
 */
Program generateRandomProgram(u64 seed, const RandProgConfig &cfg = {});

/**
 * One deterministic mutation of a (seed, config) corpus entry: the
 * mutated pair plus the name of the mutator that produced it. The
 * mutated program remains a pure function of (seed, cfg), so corpus
 * entries stay replayable from the pair alone.
 */
struct RandProgMutation
{
    u64 seed;
    RandProgConfig cfg;
    const char *mutator;
};

/**
 * Mutate (@p base_seed, @p base) under mutation seed @p mut_seed.
 * Pure: the same triple always picks the same mutator and parameters,
 * and the result always passes validateRandProgConfig().
 */
RandProgMutation mutateRandProg(u64 base_seed, const RandProgConfig &base,
                                u64 mut_seed);

} // namespace rix

#endif // RIX_WORKLOAD_RANDPROG_HH
