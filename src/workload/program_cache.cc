#include "workload/program_cache.hh"

namespace rix
{

namespace
{

Program
defaultBuild(const std::string &name, u64 scale)
{
    return buildWorkload(name, scale);
}

} // namespace

ProgramCache::ProgramCache(Builder b) : builder(b ? b : defaultBuild) {}

const Program &
ProgramCache::get(const std::string &name, u64 scale)
{
    Slot *slot;
    {
        std::lock_guard<std::mutex> lk(mu);
        std::unique_ptr<Slot> &s = slots[{name, scale}];
        if (!s)
            s = std::make_unique<Slot>();
        slot = s.get();
    }
    std::call_once(slot->once, [&]() {
        slot->prog = builder(name, scale);
        // Decode eagerly while still inside the once-guard: every
        // consumer of this shared slot gets the pre-built decoded form
        // instead of racing to build it on first execution.
        slot->prog.decoded();
        nBuilds.fetch_add(1, std::memory_order_relaxed);
    });
    return slot->prog;
}

size_t
ProgramCache::size() const
{
    std::lock_guard<std::mutex> lk(mu);
    return slots.size();
}

ProgramCache &
globalProgramCache()
{
    static ProgramCache cache;
    return cache;
}

} // namespace rix
