/**
 * @file
 * mcf-like workload: network-simplex pointer chasing.
 *
 * Character profile: a dependent load chain over a 4MB arc structure
 * (twice the 2MB L2), so most hops miss the entire cache hierarchy.
 * The paper singles mcf out as the benchmark whose execution time is
 * dominated by memory, benefiting least from integration — the shape
 * this program reproduces (lowest IPC of the suite, smallest speedup).
 */

#include "workload/kit.hh"
#include "workload/workload.hh"

namespace rix
{

Program
buildMcf(const WorkloadParams &wp)
{
    Builder b("mcf");
    Rng rng(0x3cf);
    const s32 nodes = 262144; // 2MB of next-pointers
    // Single random cycle (Sattolo's algorithm) so the chase never
    // revisits early and never gets stuck.
    {
        std::vector<u64> next(nodes);
        std::vector<u64> order(nodes);
        for (s32 i = 0; i < nodes; ++i)
            order[i] = u64(i);
        for (s32 i = nodes - 1; i > 0; --i)
            std::swap(order[i], order[rng.below(u64(i))]);
        for (s32 i = 0; i < nodes; ++i)
            next[order[i]] = order[(i + 1) % nodes];
        b.quads("arcs", next);
    }
    b.randomQuads("cost", nodes, rng, 1 << 20); // another 2MB

    const LogReg t0 = 1, t1 = 2, t2 = 3, t6 = 7;
    const LogReg s0 = 9, s1 = 10, s2 = 11, s3 = 12, s4 = 13, s5 = 14;
    const LogReg chains[4] = {s0, s2, s3, s5};

    b.bind("main");
    b.li(s4, 0);
    // Four independent chases spread around the cycle: the
    // memory-level parallelism a real network-simplex walk exposes.
    b.li(s0, 0);
    b.li(s2, s32(nodes / 4));
    b.li(s3, s32(nodes / 2));
    b.li(s5, s32(3 * (nodes / 4)));
    b.addqi(s1, regGp, s32(b.dataAddr("arcs") - defaultDataBase));
    emitCountedLoop(b, 15, s32(700 * wp.scale), [&] {
        for (int c = 0; c < 4; ++c) {
            const LogReg cur = chains[c];
            // Dependent pointer hop (the L2-busting load).
            b.slli(t0, cur, 3);
            b.addq(t0, s1, t0);
            b.ldq(cur, 0, t0);
            // Reduced-cost computation on the visited arc; the
            // cost-base recomputation is loop-invariant.
            b.addqi(t6, regGp,
                    s32(b.dataAddr("cost") - defaultDataBase));
            b.slli(t1, cur, 3);
            b.addq(t1, t6, t1);
            b.ldq(t2, 0, t1);
            b.subqi(t2, t2, 1100000);
            // Heavily biased negative-cost branch (predictable, so
            // the four chases overlap in the window).
            const std::string pos = b.genLabel("pos");
            b.bge(t2, pos);
            b.addq(s4, s4, t2);
            b.bind(pos);
            b.xor_(s4, s4, cur);
        }
    });
    b.syscall(s32(SyscallCode::Emit), s4);
    b.halt();

    b.entry("main");
    return b.finish();
}

} // namespace rix
