/**
 * @file
 * twolf-like workload: standard-cell placement by simulated annealing.
 *
 * Character profile: a dominant loop with data-dependent accept/reject
 * branches near 50/50 (the mispredict + squash-reuse generator),
 * random-pair position loads and conditional swap stores, a temperature
 * kept in a spilled stack slot and reloaded each iteration (load
 * mis-integration fodder), and almost no calls — twolf gains little
 * from opcode indexing or reverse integration in the paper.
 */

#include "workload/kit.hh"
#include "workload/workload.hh"

namespace rix
{

Program
buildTwolf(const WorkloadParams &wp)
{
    Builder b("twolf");
    Rng rng(0x201f);
    const s32 cells = 512;
    b.randomQuads("cellx", cells, rng, 4096);
    b.randomQuads("celly", cells, rng, 4096);

    const LogReg t0 = 1, t1 = 2, t2 = 3, t3 = 4, t4 = 5, t6 = 7, t7 = 8;
    const LogReg s0 = 9, s1 = 10, s4 = 13, s5 = 14;

    b.bind("main");
    b.lda(regSp, -32, regSp);
    b.li(t0, 4096);
    b.stq(t0, 16, regSp); // temperature local

    b.li(s4, 0);
    b.li(s5, 0x70f3);
    b.addqi(s0, regGp, s32(b.dataAddr("cellx") - defaultDataBase));
    b.addqi(s1, regGp, s32(b.dataAddr("celly") - defaultDataBase));
    emitCountedLoop(b, 15, s32(2100 * wp.scale), [&] {
        // Pick a random pair of cells.
        emitLcg(b, s5);
        emitLcgBits(b, t0, s5, 9);
        b.srli(t1, s5, 32);
        b.andi(t1, t1, cells - 1);
        b.slli(t0, t0, 3);
        b.slli(t1, t1, 3);
        // Load the four coordinates.
        b.addq(t2, s0, t0);
        b.ldq(t3, 0, t2);      // xa
        b.addq(t4, s0, t1);
        b.ldq(t6, 0, t4);      // xb
        // |xa - xb| branch-free.
        b.subq(t7, t3, t6);
        b.srai(t3, t7, 63);
        b.xor_(t7, t7, t3);
        b.subq(t7, t7, t3);
        // Temperature reload from the spill slot (usually integrable,
        // stale right after the periodic decay below).
        b.ldq(t3, 16, regSp);
        // Accept when delta < temperature: near-random direction.
        b.cmplt(t6, t7, t3);
        const std::string reject = b.genLabel("reject");
        b.beq(t6, reject);
        // Accept: swap the x coordinates (stores).
        b.ldq(t3, 0, t2);
        b.ldq(t6, 0, t4);
        b.stq(t6, 0, t2);
        b.stq(t3, 0, t4);
        b.addqi(s4, s4, 1);
        b.bind(reject);
        // Periodic temperature decay (updates the spilled local).
        b.andi(t6, s4, 127);
        const std::string nodecay = b.genLabel("nodecay");
        b.bne(t6, nodecay);
        b.ldq(t6, 16, regSp);
        b.mulqi(t6, t6, 255);
        b.srli(t6, t6, 8);
        b.addqi(t6, t6, 1);
        b.stq(t6, 16, regSp);
        b.bind(nodecay);
        // Touch the y array too (more load traffic).
        b.addq(t2, s1, t0);
        b.ldq(t3, 0, t2);
        b.xor_(s4, s4, t3);
    });
    b.lda(regSp, 32, regSp);
    b.syscall(s32(SyscallCode::Emit), s4);
    b.halt();

    b.entry("main");
    return b.finish();
}

} // namespace rix
