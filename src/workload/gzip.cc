/**
 * @file
 * gzip-like workload: LZ-style hash-chain matching.
 *
 * Character profile: a single dominant loop, almost no calls, dense
 * same-opcode/same-immediate traffic — the configuration for which the
 * paper reports opcode indexing *hurting* (poor IT distribution with no
 * call-depth variety) and reverse integration doing nothing. Includes
 * the spill-slot reload idiom (a stack local updated on match and
 * reloaded every iteration) that produces genuine load mis-integrations
 * for the LISP to learn.
 */

#include "workload/kit.hh"
#include "workload/workload.hh"

namespace rix
{

Program
buildGzip(const WorkloadParams &wp)
{
    Builder b("gzip");
    Rng rng(0x6219);
    const s32 wquads = 2048; // 16KB window
    b.randomQuads("window", wquads, rng, 64); // low-entropy bytes
    b.space("htab", 256 * 8);

    const LogReg v0 = 0;
    const LogReg t0 = 1, t1 = 2, t2 = 3, t3 = 4, t6 = 7;
    const LogReg s0 = 9, s1 = 10, s4 = 13;
    (void)v0;

    b.bind("main");
    // Manual frame in main so spill-slot reloads hit the stack.
    b.lda(regSp, -32, regSp);
    b.li(t0, 0);
    b.stq(t0, 16, regSp); // best match length local

    b.li(s4, 0);
    b.addqi(s0, regGp, s32(b.dataAddr("window") - defaultDataBase));
    b.li(s1, 0); // position
    emitCountedLoop(b, 15, s32(1700 * wp.scale), [&] {
        // Load the current window quad (position advances).
        b.andi(t0, s1, wquads - 1);
        b.slli(t0, t0, 3);
        b.addq(t0, s0, t0);
        b.ldq(t1, 0, t0);
        // Hash it. The htab base recomputation is loop-invariant.
        b.mulqi(t2, t1, 0x9e3b);
        b.srli(t2, t2, 18);
        b.andi(t2, t2, 255);
        b.slli(t2, t2, 3);
        b.addqi(t6, regGp, s32(b.dataAddr("htab") - defaultDataBase));
        b.addq(t2, t6, t2);
        b.ldq(t3, 0, t2);       // chain head
        // Spill-slot reload: usually integrable, stale after a match.
        b.ldq(t6, 16, regSp);
        // Match check (data-dependent branch).
        b.cmpeq(t3, t3, t1);
        const std::string nomatch = b.genLabel("nomatch");
        b.beq(t3, nomatch);
        b.xor_(s4, s4, t1);
        b.addqi(t6, t6, 1);
        b.stq(t6, 16, regSp);   // update the local: next reload is stale
        b.bind(nomatch);
        b.stq(t1, 0, t2);       // install new chain head
        b.addqi(s1, s1, 1);
    });
    b.ldq(t0, 16, regSp);
    b.addq(s4, s4, t0);
    b.lda(regSp, 32, regSp);
    b.syscall(s32(SyscallCode::Emit), s4);
    b.halt();

    b.entry("main");
    return b.finish();
}

} // namespace rix
