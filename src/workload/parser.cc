/**
 * @file
 * parser-like workload: recursive-descent expression parsing with
 * dictionary probing.
 *
 * Character profile: frequent small-function calls with varying
 * recursion depth (parenthesized sub-expressions), caller-saved spills
 * around calls (the Figure 3 "t0" idiom), a cursor variable kept in
 * memory and reloaded around calls (an occasional load mis-integration
 * source), and hash probes per identifier token.
 */

#include "workload/kit.hh"
#include "workload/workload.hh"

namespace rix
{

namespace
{

/** Host-side token generator for expr := term ('+' term)*;
 *  term := factor ('*' factor)*; factor := NUM | '(' expr ')'. */
void
genExpr(std::vector<u64> &toks, Rng &rng, int depth);

void
genFactor(std::vector<u64> &toks, Rng &rng, int depth)
{
    if (depth < 4 && rng.chance(280)) {
        toks.push_back(3); // '('
        genExpr(toks, rng, depth + 1);
        toks.push_back(4); // ')'
    } else {
        toks.push_back(0); // NUM
        toks.push_back(rng.below(997)); // its value token
    }
}

void
genTerm(std::vector<u64> &toks, Rng &rng, int depth)
{
    genFactor(toks, rng, depth);
    while (rng.chance(300)) {
        toks.push_back(2); // '*'
        genFactor(toks, rng, depth);
    }
}

void
genExpr(std::vector<u64> &toks, Rng &rng, int depth)
{
    genTerm(toks, rng, depth);
    while (rng.chance(350)) {
        toks.push_back(1); // '+'
        genTerm(toks, rng, depth);
    }
}

} // namespace

Program
buildParser(const WorkloadParams &wp)
{
    Builder b("parser");
    Rng rng(0xbad5eed);

    std::vector<u64> toks;
    while (toks.size() < 380) {
        genExpr(toks, rng, 0);
        toks.push_back(5); // sentence terminator
    }
    toks.push_back(6); // END of stream
    b.quads("tokens", toks);
    b.quad("pos", 0); // cursor kept in memory
    b.randomQuads("dict", 128, rng, 1 << 16);

    const LogReg v0 = 0;
    const LogReg t0 = 1, t1 = 2, t2 = 3, t6 = 7;
    const LogReg s0 = 9, s4 = 13;
    const s32 posOff = s32(b.dataAddr("pos") - defaultDataBase);

    b.br("main");

    // next_token() -> v0: load tokens[pos++] (memory cursor).
    b.bind("next_token");
    {
        FnFrame f(b, {});
        f.prologue();
        b.ldq(t0, posOff, regGp);
        b.slli(t1, t0, 3);
        b.addqi(t6, regGp, s32(b.dataAddr("tokens") - defaultDataBase));
        b.addq(t1, t6, t1);
        b.ldq(v0, 0, t1);
        b.addqi(t0, t0, 1);
        b.stq(t0, posOff, regGp);
        f.epilogue();
    }

    // peek_token() -> v0: the reload that integration may serve stale
    // after next_token stored a new cursor (load mis-integrations).
    b.bind("peek_token");
    {
        FnFrame f(b, {});
        f.prologue();
        b.ldq(t0, posOff, regGp);
        b.slli(t1, t0, 3);
        b.addqi(t6, regGp, s32(b.dataAddr("tokens") - defaultDataBase));
        b.addq(t1, t6, t1);
        b.ldq(v0, 0, t1);
        f.epilogue();
    }

    // dict_probe(a0 = value) -> v0: hash lookup per identifier.
    b.bind("dict_probe");
    {
        FnFrame f(b, {});
        f.prologue();
        b.mulqi(t0, 16, 0x85eb);
        b.srli(t0, t0, 9);
        b.andi(t0, t0, 127);
        b.slli(t0, t0, 3);
        b.addqi(t6, regGp, s32(b.dataAddr("dict") - defaultDataBase));
        b.addq(t0, t6, t0);
        b.ldq(v0, 0, t0);
        b.xor_(v0, v0, 16);
        f.epilogue();
    }

    // parse_factor() -> v0.
    b.bind("parse_factor");
    {
        FnFrame f(b, {s0}, 16);
        f.prologue();
        b.jsr("next_token");
        b.cmpeqi(t0, v0, 3); // '('?
        b.beq(t0, "pf_num");
        b.jsr("parse_expr");  // recurse
        b.mv(s0, v0);
        b.jsr("next_token"); // consume ')'
        b.mv(v0, s0);
        f.epilogue();
        b.bind("pf_num");
        b.jsr("next_token"); // the NUM's value token
        b.mv(16, v0);
        b.jsr("dict_probe");
        f.epilogue();
    }

    // parse_term() -> v0.
    b.bind("parse_term");
    {
        FnFrame f(b, {s0}, 16);
        f.prologue();
        b.jsr("parse_factor");
        b.mv(s0, v0);
        b.bind("pt_loop");
        b.jsr("peek_token");
        b.cmpeqi(t0, v0, 2); // '*'?
        b.beq(t0, "pt_done");
        b.jsr("next_token"); // consume '*'
        b.jsr("parse_factor");
        b.mulq(s0, s0, v0);
        b.srai(s0, s0, 2);
        b.br("pt_loop");
        b.bind("pt_done");
        b.mv(v0, s0);
        f.epilogue();
    }

    // parse_expr() -> v0.
    b.bind("parse_expr");
    {
        FnFrame f(b, {s0}, 16);
        f.prologue();
        b.jsr("parse_term");
        b.mv(s0, v0);
        b.bind("pe_loop");
        b.jsr("peek_token");
        b.cmpeqi(t0, v0, 1); // '+'?
        b.beq(t0, "pe_done");
        b.jsr("next_token"); // consume '+'
        b.jsr("parse_term");
        b.addq(s0, s0, v0);
        b.br("pe_loop");
        b.bind("pe_done");
        b.mv(v0, s0);
        f.epilogue();
    }

    b.bind("main");
    b.li(s4, 0);
    const s32 sentences = s32(toks.size() ? 64 : 64);
    (void)sentences;
    emitCountedLoop(b, 15, s32(3 * wp.scale), [&] {
        // Rewind the cursor and parse the whole stream.
        b.li(t0, 0);
        b.stq(t0, posOff, regGp);
        b.bind(b.genLabel("stream"));
        const std::string stream_top = b.genLabel("stop");
        b.bind(stream_top);
        b.jsr("peek_token");
        b.cmpeqi(t2, v0, 6); // END?
        const std::string done = b.genLabel("sdone");
        b.bne(t2, done);
        b.jsr("parse_expr");
        b.xor_(s4, s4, v0);
        b.jsr("next_token"); // consume the sentence terminator
        b.br(stream_top);
        b.bind(done);
    });
    b.syscall(s32(SyscallCode::Emit), s4);
    b.halt();

    b.entry("main");
    return b.finish();
}

} // namespace rix
