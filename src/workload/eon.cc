/**
 * @file
 * eon-like workloads: fixed-point ray tracing, three shading variants
 * (cook, kajiya, rushmeier) mirroring SPEC's three eon inputs.
 *
 * Character profile: the heaviest memory mix of the suite (the paper
 * notes loads+stores are 45% of eon's dynamic instructions, which is
 * why it is hit hardest by losing a load/store port in Figure 7),
 * FP-class (complex-port) arithmetic chains, per-ray call frames.
 * kajiya adds one recursive bounce per ray; rushmeier enlarges the
 * object set.
 */

#include "workload/kit.hh"
#include "workload/workload.hh"

namespace rix
{

namespace
{

struct EonCfg
{
    const char *name;
    s32 rays;
    s32 objects;
    int bounces;
    int shadeOps;
};

Program
buildEon(const EonCfg &cfg, const WorkloadParams &wp)
{
    Builder b(cfg.name);
    Rng r2(0xe01 + u64(cfg.objects));
    b.randomQuads("centers", size_t(cfg.objects) * 4, r2, 4096);
    b.randomQuads("dirs", 48, r2, 512);
    b.space("pixels", 1024 * 8);

    const LogReg v0 = 0;
    const LogReg t0 = 1, t1 = 2, t2 = 3, t3 = 4, t4 = 5, t6 = 7;
    const LogReg s0 = 9, s1 = 10, s2 = 11, s3 = 12, s4 = 13, s5 = 14;
    const LogReg a0 = 16, a1 = 17;

    b.br("main");

    // trace(a0 = ray index, a1 = bounces left) -> v0 = shaded value.
    b.bind("trace");
    {
        FnFrame f(b, {s0, s1, s2, s3});
        f.prologue();
        b.mv(s0, a0);
        b.mv(s3, a1);

        // Ray origin/direction from the direction table (loads).
        b.andi(t0, s0, 15);
        b.slli(t0, t0, 3);
        b.addqi(t6, regGp, s32(b.dataAddr("dirs") - defaultDataBase));
        b.addq(t0, t6, t0);
        b.ldq(s1, 0, t0);     // dir
        b.ldq(t1, 8, t0);
        b.addq(s1, s1, t1);

        // Intersection loop over the object set.
        b.li(s2, 0x7ffff); // best distance
        b.addqi(t4, regGp, s32(b.dataAddr("centers") - defaultDataBase));
        const std::string oloop = b.genLabel("oloop");
        b.bind(oloop);
        {
            b.ldq(t0, 0, t4);   // cx
            b.ldq(t1, 8, t4);   // cy
            b.ldq(t2, 16, t4);  // cz
            b.ldq(t6, 24, t4);  // radius
            // Scene constant reloaded per object (never stored to:
            // a clean load-integration target).
            b.ldq(t3, 0, regGp);
            b.subq(t0, t0, s1);
            b.subq(t1, t1, s1);
            b.fmul(t0, t0, t0);
            b.fmul(t1, t1, t1);
            b.fadd(t0, t0, t1);
            b.fmul(t2, t2, t2);
            b.fadd(t0, t0, t2); // squared distance
            b.subq(t0, t0, t6); // compare against the radius
            b.addq(t0, t0, t3); // bias by the scene constant
            // Data-dependent nearest-object update.
            b.cmplt(t1, t0, s2);
            const std::string far = b.genLabel("far");
            b.beq(t1, far);
            b.mv(s2, t0);
            b.bind(far);
            // Hit-record update: the store traffic real eon is full of.
            b.stq(s2, 8, regGp);
            b.addqi(t4, t4, 32);
            // Unhoisted end-of-objects bound off the stable gp.
            b.addqi(t3, regGp,
                    s32(b.dataAddr("centers") - defaultDataBase +
                        cfg.objects * 32));
            b.cmplt(t3, t4, t3);
            b.bne(t3, oloop);
        }

        // Shading chain (FP-class, serial).
        b.mv(v0, s2);
        for (int i = 0; i < cfg.shadeOps; ++i) {
            if (i % 3 == 2)
                b.fmul(v0, v0, s1);
            else
                b.fadd(v0, v0, s2);
        }

        // Secondary bounce (kajiya).
        if (cfg.bounces > 0) {
            const std::string nob = b.genLabel("nobounce");
            b.beq(s3, nob);
            b.addqi(a0, s0, 7);
            b.subqi(a1, s3, 1);
            b.mv(s2, v0);
            b.jsr("trace");
            b.addq(v0, v0, s2);
            b.bind(nob);
        }

        // Store the pixel (stores are what eon is made of).
        b.andi(t0, s0, 1023);
        b.slli(t0, t0, 3);
        b.addqi(t6, regGp, s32(b.dataAddr("pixels") - defaultDataBase));
        b.addq(t0, t6, t0);
        b.stq(v0, 0, t0);
        f.epilogue();
    }

    b.bind("main");
    b.li(s4, 0);
    b.li(s5, 0);
    emitCountedLoop(b, 15, s32(cfg.rays * s64(wp.scale)), [&] {
        b.mv(a0, s5);
        b.li(a1, cfg.bounces);
        b.jsr("trace");
        b.xor_(s4, s4, v0);
        b.addqi(s5, s5, 1);
    });
    b.syscall(s32(SyscallCode::Emit), s4);
    b.halt();

    b.entry("main");
    return b.finish();
}

} // namespace

Program
buildEonCook(const WorkloadParams &wp)
{
    return buildEon({"eon.c", 260, 8, 0, 9}, wp);
}

Program
buildEonKajiya(const WorkloadParams &wp)
{
    return buildEon({"eon.k", 150, 8, 1, 8}, wp);
}

Program
buildEonRushmeier(const WorkloadParams &wp)
{
    return buildEon({"eon.r", 190, 14, 0, 6}, wp);
}

} // namespace rix
