/**
 * @file
 * crafty-like workload: recursive game-tree search.
 *
 * Character profile: deep recursion (call depth varies dynamically),
 * bitboard-style ALU chains, several static call sites inside one
 * function computing identical expressions (the cross-static-
 * instruction reuse that opcode indexing exposes — the paper reports
 * crafty gaining ~10% integration rate from it), callee-saved
 * spill/fill traffic for reverse integration, and data-dependent
 * best-move branches that mispredict (squash reuse).
 */

#include "workload/kit.hh"
#include "workload/workload.hh"

namespace rix
{

Program
buildCrafty(const WorkloadParams &wp)
{
    Builder b("crafty");
    Rng rng(0xc4af);
    b.randomQuads("zobrist", 128, rng);

    const LogReg v0 = 0;
    const LogReg t0 = 1, t1 = 2, t2 = 3, t3 = 4, t6 = 7;
    const LogReg s0 = 9, s1 = 10, s2 = 11, s4 = 13, s5 = 14;
    const LogReg a0 = 16, a1 = 17;

    b.br("main");

    // evaluate(a1 = position hash) -> v0: bitboard-flavoured mixing.
    b.bind("evaluate");
    {
        FnFrame f(b, {});
        f.prologue();
        // Unhoisted table-base computation (general-reuse fodder).
        b.addqi(t6, regGp, s32(b.dataAddr("zobrist") - defaultDataBase));
        b.srli(t0, a1, 13);
        b.xor_(t0, t0, a1);
        b.andi(t1, t0, 127);
        b.slli(t1, t1, 3);
        b.addq(t1, t6, t1);
        b.ldq(t2, 0, t1);          // zobrist probe
        b.xor_(t0, t0, t2);
        b.slli(t3, t0, 7);
        b.xor_(t0, t0, t3);
        b.srli(t3, t0, 17);
        b.xor_(t0, t0, t3);
        b.andi(v0, t0, 1023);
        f.epilogue();
    }

    // search(a0 = depth, a1 = position) -> v0 = best score.
    b.bind("search");
    {
        FnFrame f(b, {s0, s1, s2});
        f.prologue();
        b.mv(s0, a0);
        b.mv(s1, a1);
        b.bne(a0, "search_interior");
        // Leaf: evaluate and return.
        b.jsr("evaluate");
        f.epilogue();

        b.bind("search_interior");
        b.li(s2, 0); // best score so far
        // Three unrolled move sites. The repeated `subqi a0, s0, 1`
        // at distinct PCs is exactly what opcode indexing integrates.
        for (int m = 0; m < 3; ++m) {
            b.srli(t0, s1, 7);
            b.xor_(t0, t0, s1);
            b.mulqi(t1, t0, 0x9e3b);
            b.addqi(a1, t1, s32(m * 977));
            b.subqi(a0, s0, 1);
            b.jsr("search");
            // Data-dependent best update (mispredictable).
            b.cmplt(t2, s2, v0);
            const std::string skip = b.genLabel("nobest");
            b.beq(t2, skip);
            b.mv(s2, v0);
            b.bind(skip);
        }
        b.mv(v0, s2);
        f.epilogue();
    }

    b.bind("main");
    b.li(s4, 0);
    b.li(s5, 0x517c);
    emitCountedLoop(b, 15, s32(wp.scale), [&] {
        emitLcg(b, s5);
        b.mv(a1, s5);
        b.li(a0, 6); // search depth: 3^6 tree
        b.jsr("search");
        b.xor_(s4, s4, v0);
    });
    b.syscall(s32(SyscallCode::Emit), s4);
    b.halt();

    b.entry("main");
    return b.finish();
}

} // namespace rix
