/**
 * @file
 * perlbmk-like workloads: a bytecode interpreter, two input mixes
 * (diffmail, splitmail).
 *
 * Character profile: indirect-jump dispatch through a handler table
 * (BTB-hostile), a VM operand stack in memory, runtime helper calls
 * with frames. The paper reports perl.s among the biggest winners from
 * opcode indexing and reverse integration (call-rich, repeated
 * helpers); diffmail leans arithmetic, splitmail leans string-ish byte
 * traffic with more helper calls.
 */

#include "workload/kit.hh"
#include "workload/workload.hh"

namespace rix
{

namespace
{

enum VmOp : u64
{
    VM_PUSHC = 0, // operand follows in the next slot
    VM_ADD = 1,
    VM_XOR = 2,
    VM_DUP = 3,
    VM_HELPER = 4, // call a runtime helper on the top of stack
    VM_STR = 5,    // string-ish op: byte loads/stores via helper
    VM_DROP = 6,
    VM_NOP = 7,
};

/** Generate a balanced bytecode program. */
std::vector<u64>
genBytecode(Rng &rng, size_t len, unsigned helper_permille,
            unsigned str_permille)
{
    std::vector<u64> code;
    int depth = 0;
    while (code.size() < len) {
        if (depth < 2) {
            code.push_back(VM_PUSHC);
            code.push_back(rng.below(100000));
            ++depth;
            continue;
        }
        if (rng.chance(str_permille)) {
            code.push_back(VM_STR);
        } else if (rng.chance(helper_permille)) {
            code.push_back(VM_HELPER);
        } else {
            switch (rng.below(5)) {
              case 0: code.push_back(VM_ADD); --depth; break;
              case 1: code.push_back(VM_XOR); --depth; break;
              case 2: code.push_back(VM_DUP); ++depth; break;
              case 3:
                if (depth > 1) {
                    code.push_back(VM_DROP);
                    --depth;
                } else {
                    code.push_back(VM_NOP);
                }
                break;
              default: code.push_back(VM_NOP); break;
            }
        }
        if (depth > 12) {
            code.push_back(VM_DROP);
            --depth;
        }
    }
    // Drain to a small, fixed depth.
    while (depth > 1) {
        code.push_back(VM_DROP);
        --depth;
    }
    return code;
}

Program
buildPerl(const char *name, u64 seed, unsigned helper_permille,
          unsigned str_permille, const WorkloadParams &wp)
{
    Builder b(name);
    Rng rng(seed);
    const std::vector<u64> code = genBytecode(rng, 700, helper_permille,
                                              str_permille);
    // Dispatch count: PUSHC consumes an extra operand slot.
    s32 n_ops = 0;
    for (size_t i = 0; i < code.size(); ++i) {
        ++n_ops;
        if (code[i] == VM_PUSHC)
            ++i;
    }
    b.quads("bytecode", code);
    b.space("vmstack", 64 * 8);
    b.space("strbuf", 64 * 8);
    b.quad("profctr", 0);

    const LogReg v0 = 0;
    const LogReg t0 = 1, t1 = 2, t2 = 3, t4 = 5, t6 = 7;
    const LogReg s0 = 9, s1 = 10, s4 = 13;
    const LogReg a0 = 16;

    b.br("main");

    // helper(a0 = x) -> v0: the runtime routine perl dips into.
    b.bind("vm_helper");
    {
        FnFrame f(b, {s0});
        f.prologue();
        b.mv(s0, a0);
        b.mulqi(t0, s0, 2654435);
        b.srli(t1, t0, 11);
        b.xor_(v0, t0, t1);
        b.andi(v0, v0, 0xffff);
        f.epilogue();
    }

    // strop(a0 = x) -> v0: byte shuffling through a buffer.
    b.bind("vm_strop");
    {
        FnFrame f(b, {s0});
        f.prologue();
        b.mv(s0, a0);
        b.addqi(t6, regGp, s32(b.dataAddr("strbuf") - defaultDataBase));
        b.andi(t0, s0, 63);
        b.slli(t0, t0, 3);
        b.addq(t0, t6, t0);
        b.ldq(t1, 0, t0);
        b.addq(t1, t1, s0);
        b.stq(t1, 0, t0);
        b.srli(v0, t1, 3);
        f.epilogue();
    }

    b.bind("main");
    // s0 = instruction pointer, s1 = VM stack pointer (in memory).
    b.li(s4, 0);
    emitCountedLoop(b, 15, s32(4 * wp.scale), [&] {
        b.addqi(s0, regGp, s32(b.dataAddr("bytecode") - defaultDataBase));
        b.addqi(s1, regGp, s32(b.dataAddr("vmstack") - defaultDataBase));
        emitCountedLoop(b, 14, n_ops, [&] {
            b.ldq(t0, 0, s0);      // opcode
            b.addqi(s0, s0, 8);
            // Interpreter bookkeeping: profiling counter RMW (its
            // reload is the canonical load mis-integration source)
            // and an unhoisted stack-overflow guard.
            b.ldq(t1, s32(b.dataAddr("profctr") - defaultDataBase),
                  regGp);
            b.addqi(t1, t1, 1);
            b.stq(t1, s32(b.dataAddr("profctr") - defaultDataBase),
                  regGp);
            b.addqi(t2, regGp,
                    s32(b.dataAddr("vmstack") - defaultDataBase + 504));
            b.cmplt(t2, t2, s1);
            b.bne(t2, "pm_overflow");
            // Dispatch: handler stubs are one slot apart.
            b.liCode(t4, "pm_disp");
            b.addq(t4, t4, t0);
            b.jmp(t4);
            b.bind("pm_disp");
            b.br("pm_pushc");
            b.br("pm_add");
            b.br("pm_xor");
            b.br("pm_dup");
            b.br("pm_helper");
            b.br("pm_str");
            b.br("pm_drop");
            b.br("pm_join"); // NOP

            b.bind("pm_pushc");
            b.ldq(t1, 0, s0);  // inline operand
            b.addqi(s0, s0, 8);
            b.stq(t1, 0, s1);
            b.addqi(s1, s1, 8);
            // Consuming the operand shortens the counted stream: burn
            // one dispatch credit by looping via a no-op path.
            b.br("pm_join");

            b.bind("pm_add");
            b.ldq(t1, -8, s1);
            b.ldq(t2, -16, s1);
            b.addq(t1, t1, t2);
            b.stq(t1, -16, s1);
            b.subqi(s1, s1, 8);
            b.br("pm_join");

            b.bind("pm_xor");
            b.ldq(t1, -8, s1);
            b.ldq(t2, -16, s1);
            b.xor_(t1, t1, t2);
            b.stq(t1, -16, s1);
            b.subqi(s1, s1, 8);
            b.br("pm_join");

            b.bind("pm_dup");
            b.ldq(t1, -8, s1);
            b.stq(t1, 0, s1);
            b.addqi(s1, s1, 8);
            b.br("pm_join");

            b.bind("pm_helper");
            b.ldq(a0, -8, s1);
            b.jsr("vm_helper");
            b.stq(v0, -8, s1);
            b.br("pm_join");

            b.bind("pm_str");
            b.ldq(a0, -8, s1);
            b.jsr("vm_strop");
            b.stq(v0, -8, s1);
            b.br("pm_join");

            b.bind("pm_drop");
            b.subqi(s1, s1, 8);

            b.bind("pm_join");
        });
        b.br("pm_noflow");
        b.bind("pm_overflow");
        b.halt(); // VM stack overflow: never reached
        b.bind("pm_noflow");
        // Fold the surviving stack slot into the checksum.
        b.ldq(t0, 0, s1);
        b.xor_(s4, s4, t0);
        b.ldq(t0, -8, s1);
        b.addq(s4, s4, t0);
    });
    b.syscall(s32(SyscallCode::Emit), s4);
    b.halt();

    b.entry("main");
    return b.finish();
}

} // namespace

Program
buildPerlDiffmail(const WorkloadParams &wp)
{
    return buildPerl("perl.d", 0xbead1, 120, 60, wp);
}

Program
buildPerlSplitmail(const WorkloadParams &wp)
{
    return buildPerl("perl.s", 0xbead2, 160, 240, wp);
}

} // namespace rix
