/**
 * @file
 * gap-like workload: computer-algebra vector kernels behind small
 * functions.
 *
 * Character profile: moderate call intensity (four leaf kernels invoked
 * from a driver loop), complex-integer multiply traffic, unhoisted
 * loop-bound/base recomputation inside the kernels (general reuse), and
 * permutation-indexed loads.
 */

#include "workload/kit.hh"
#include "workload/workload.hh"

namespace rix
{

Program
buildGap(const WorkloadParams &wp)
{
    Builder b("gap");
    Rng rng(0x6a9);
    const s32 len = 64;
    b.randomQuads("va", len, rng, 100000);
    b.randomQuads("vb", len, rng, 100000);
    b.space("vc", len * 8);
    // Permutation table: a shuffled 0..len-1.
    {
        std::vector<u64> perm(len);
        for (s32 i = 0; i < len; ++i)
            perm[i] = u64(i);
        for (s32 i = len - 1; i > 0; --i)
            std::swap(perm[i], perm[rng.below(u64(i + 1))]);
        b.quads("perm", perm);
    }

    const LogReg v0 = 0;
    const LogReg t0 = 1, t1 = 2, t2 = 3, t5 = 6, t6 = 7;
    const LogReg s0 = 9, s4 = 13, s5 = 14;
    const LogReg a0 = 16, a1 = 17, a2 = 18;

    b.br("main");

    // vec_add(a0 = dst, a1 = x, a2 = y).
    b.bind("vec_add");
    {
        FnFrame f(b, {s0});
        f.prologue();
        b.mv(s0, a0); // stable base in a callee-saved register
        const std::string top = b.genLabel("vadd");
        b.bind(top);
        b.ldq(t0, 0, a1);
        b.ldq(t1, 0, a2);
        b.addq(t0, t0, t1);
        b.stq(t0, 0, a0);
        b.addqi(a0, a0, 8);
        b.addqi(a1, a1, 8);
        b.addqi(a2, a2, 8);
        b.addqi(t6, s0, len * 8); // unhoisted bound recompute
        b.cmplt(t5, a0, t6);
        b.bne(t5, top);
        f.epilogue();
    }

    // vec_scale(a0 = dst/src, a1 = scalar).
    b.bind("vec_scale");
    {
        FnFrame f(b, {s0});
        f.prologue();
        b.mv(s0, a0);
        const std::string top = b.genLabel("vscale");
        b.bind(top);
        b.ldq(t0, 0, a0);
        b.mulq(t0, t0, a1);
        b.srai(t0, t0, 3);
        b.stq(t0, 0, a0);
        b.addqi(a0, a0, 8);
        b.addqi(t6, s0, len * 8); // unhoisted bound recompute
        b.cmplt(t5, a0, t6);
        b.bne(t5, top);
        f.epilogue();
    }

    // inner(a0 = x, a1 = y) -> v0.
    b.bind("inner");
    {
        FnFrame f(b, {s0});
        f.prologue();
        b.li(v0, 0);
        b.mv(s0, a0);
        const std::string top = b.genLabel("inner");
        b.bind(top);
        b.ldq(t0, 0, a0);
        b.ldq(t1, 0, a1);
        b.mulq(t0, t0, t1);
        b.addq(v0, v0, t0);
        b.addqi(a0, a0, 8);
        b.addqi(a1, a1, 8);
        b.addqi(t6, s0, len * 8); // unhoisted bound recompute
        b.cmplt(t5, a0, t6);
        b.bne(t5, top);
        f.epilogue();
    }

    // permute(a0 = src, a1 = dst): dst[i] = src[perm[i]].
    b.bind("permute");
    {
        FnFrame f(b, {s0});
        f.prologue();
        b.mv(s0, a1); // stable destination base
        b.addqi(t2, regGp, s32(b.dataAddr("perm") - defaultDataBase));
        emitCountedLoop(b, t5, len, [&] {
            // Invariant base recomputation inside the loop.
            b.addqi(t6, regGp,
                    s32(b.dataAddr("perm") - defaultDataBase));
            b.ldq(t0, 0, t2);
            b.slli(t0, t0, 3);
            b.addq(t0, a0, t0);
            b.ldq(t1, 0, t0);
            b.stq(t1, 0, a1);
            b.addqi(a1, a1, 8);
            b.addqi(t2, t2, 8);
        });
        f.epilogue();
    }

    b.bind("main");
    b.li(s4, 0);
    b.li(s5, 3);
    const s32 va = s32(b.dataAddr("va"));
    const s32 vb = s32(b.dataAddr("vb"));
    const s32 vc = s32(b.dataAddr("vc"));
    emitCountedLoop(b, 15, s32(22 * wp.scale), [&] {
        b.li(a0, vc);
        b.li(a1, va);
        b.li(a2, vb);
        b.jsr("vec_add");
        b.li(a0, vc);
        b.mv(a1, s5);
        b.jsr("vec_scale");
        b.li(a0, vc);
        b.li(a1, va);
        b.jsr("inner");
        b.xor_(s4, s4, v0);
        b.li(a0, vb);
        b.li(a1, vc);
        b.jsr("permute");
    });
    b.syscall(s32(SyscallCode::Emit), s4);
    b.halt();

    b.entry("main");
    return b.finish();
}

} // namespace rix
