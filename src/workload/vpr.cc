/**
 * @file
 * vpr-like workloads: FPGA placement (vpr.p) and routing (vpr.r).
 *
 * Character profile: placement is annealing-flavoured like twolf but
 * over a 2-D grid with a cost call per move; routing is a maze
 * wavefront expansion — a store/load/branch loop with essentially no
 * calls, the second benchmark (with gzip) for which the paper reports
 * opcode indexing *losing* integration rate to IT conflicts.
 */

#include "workload/kit.hh"
#include "workload/workload.hh"

namespace rix
{

Program
buildVprPlace(const WorkloadParams &wp)
{
    Builder b("vpr.p");
    Rng rng(0x0b97);
    const s32 ncells = 400;
    b.randomQuads("px", 512, rng, 64);
    b.randomQuads("py", 512, rng, 64);

    const LogReg v0 = 0;
    const LogReg t0 = 1, t1 = 2, t2 = 3, t3 = 4, t6 = 7;
    const LogReg s0 = 9, s1 = 10, s4 = 13, s5 = 14;
    const LogReg a0 = 16, a1 = 17;
    (void)s1;
    (void)ncells;

    b.br("main");

    // bbox_cost(a0 = cell i, a1 = cell j) -> v0: wiring cost estimate.
    b.bind("vp_cost");
    {
        FnFrame f(b, {s0});
        f.prologue();
        b.slli(t0, a0, 3);
        b.slli(t1, a1, 3);
        b.addqi(t6, regGp, s32(b.dataAddr("px") - defaultDataBase));
        b.addq(t2, t6, t0);
        b.ldq(s0, 0, t2);
        b.addq(t2, t6, t1);
        b.ldq(t3, 0, t2);
        b.subq(s0, s0, t3);
        b.srai(t3, s0, 63);
        b.xor_(s0, s0, t3);
        b.subq(s0, s0, t3); // |dx|
        b.addqi(t6, regGp, s32(b.dataAddr("py") - defaultDataBase));
        b.addq(t2, t6, t0);
        b.ldq(t3, 0, t2);
        b.addq(t2, t6, t1);
        b.ldq(t2, 0, t2);
        b.subq(t3, t3, t2);
        b.srai(t2, t3, 63);
        b.xor_(t3, t3, t2);
        b.subq(t3, t3, t2); // |dy|
        b.addq(v0, s0, t3);
        f.epilogue();
    }

    b.bind("main");
    b.lda(regSp, -32, regSp);
    b.li(t0, 96);
    b.stq(t0, 16, regSp); // acceptance threshold local

    b.li(s4, 0);
    b.li(s5, 0x9e37);
    emitCountedLoop(b, 15, s32(1500 * wp.scale), [&] {
        emitLcg(b, s5);
        emitLcgBits(b, a0, s5, 9);
        b.srli(a1, s5, 33);
        b.andi(a1, a1, 511);
        b.jsr("vp_cost");
        // Threshold reload (spill-slot idiom).
        b.ldq(t1, 16, regSp);
        b.cmplt(t2, v0, t1);
        const std::string rej = b.genLabel("rej");
        b.beq(t2, rej);
        // Accept: commit the move (swap x coordinates).
        b.slli(t0, a0, 3);
        b.addqi(t6, regGp, s32(b.dataAddr("px") - defaultDataBase));
        b.addq(t0, t6, t0);
        b.ldq(t1, 0, t0);
        b.addqi(t1, t1, 1);
        b.stq(t1, 0, t0);
        b.addqi(s4, s4, 1);
        b.bind(rej);
        // Cooling schedule every 256 accepts.
        b.andi(t0, s4, 255);
        const std::string nocool = b.genLabel("nocool");
        b.bne(t0, nocool);
        b.ldq(t0, 16, regSp);
        b.mulqi(t0, t0, 253);
        b.srli(t0, t0, 8);
        b.addqi(t0, t0, 2);
        b.stq(t0, 16, regSp);
        b.bind(nocool);
        b.xor_(s4, s4, v0);
    });
    b.lda(regSp, 32, regSp);
    b.syscall(s32(SyscallCode::Emit), s4);
    b.halt();

    b.entry("main");
    return b.finish();
}

Program
buildVprRoute(const WorkloadParams &wp)
{
    Builder b("vpr.r");
    Rng rng(0x0b98);
    const s32 dim = 64; // 64x64 routing grid
    b.space("visited", dim * dim * 8);
    b.space("queue", 4096 * 8);

    const LogReg t0 = 1, t1 = 2, t2 = 3, t3 = 4, t4 = 5, t6 = 7;
    const LogReg s0 = 9, s1 = 10, s2 = 11, s3 = 12, s4 = 13, s5 = 14;

    b.bind("main");
    b.li(s4, 0);
    b.li(s5, 1);          // epoch (also the visited marker)
    b.li(s0, 0);          // queue head
    b.li(s1, 0);          // queue tail
    b.addqi(s2, regGp, s32(b.dataAddr("queue") - defaultDataBase));
    b.addqi(s3, regGp, s32(b.dataAddr("visited") - defaultDataBase));

    emitCountedLoop(b, 15, s32(1300 * wp.scale), [&] {
        // Re-seed with a fresh source when the wavefront drained.
        b.cmpeq(t0, s0, s1);
        const std::string noseed = b.genLabel("noseed");
        b.beq(t0, noseed);
        b.addqi(s5, s5, 1); // new epoch invalidates old marks
        b.mulqi(t1, s5, 37);
        b.andi(t1, t1, dim * dim - 1);
        b.slli(t2, s1, 3);
        b.andi(t2, t2, 4095 * 8);
        b.addq(t2, s2, t2);
        b.stq(t1, 0, t2);
        b.addqi(s1, s1, 1);
        b.bind(noseed);

        // Pop the head cell.
        b.slli(t0, s0, 3);
        b.andi(t0, t0, 4095 * 8);
        b.addq(t0, s2, t0);
        b.ldq(t1, 0, t0); // current cell
        b.addqi(s0, s0, 1);

        // Expand the four neighbours (unrolled; bounds-checked).
        const int deltas[4] = {1, -1, dim, -dim};
        for (int d = 0; d < 4; ++d) {
            b.addqi(t2, t1, deltas[d]);
            const std::string skip = b.genLabel("skip");
            b.blt(t2, skip);
            b.cmplti(t3, t2, dim * dim);
            b.beq(t3, skip);
            // Visited check for this epoch.
            b.slli(t4, t2, 3);
            b.addq(t4, s3, t4);
            b.ldq(t6, 0, t4);
            b.cmpeq(t6, t6, s5);
            b.bne(t6, skip);
            b.stq(s5, 0, t4); // mark
            // Enqueue.
            b.slli(t6, s1, 3);
            b.andi(t6, t6, 4095 * 8);
            b.addq(t6, s2, t6);
            b.stq(t2, 0, t6);
            b.addqi(s1, s1, 1);
            b.addqi(s4, s4, 1);
            b.bind(skip);
        }
        b.xor_(s4, s4, t1);
    });
    b.syscall(s32(SyscallCode::Emit), s4);
    b.halt();

    b.entry("main");
    return b.finish();
}

} // namespace rix
