/**
 * @file
 * Workload construction kit: the compiler-like idioms shared by every
 * synthetic SPEC2000int-like benchmark.
 *
 * The kit deliberately reproduces the code shapes register integration
 * feeds on:
 *  - FnFrame emits the canonical Alpha calling convention (frame open
 *    `lda sp,-k(sp)`, return-address and callee-saved spills/fills) —
 *    the save/restore pairs reverse integration targets;
 *  - emitLcg is the deterministic in-ISA random source used for
 *    data-dependent (mispredictable) branches, which create the squash
 *    reuse opportunities;
 *  - loop emitters leave loop-invariant address computations unhoisted,
 *    feeding general reuse.
 */

#ifndef RIX_WORKLOAD_KIT_HH
#define RIX_WORKLOAD_KIT_HH

#include <vector>

#include "assembler/builder.hh"

namespace rix
{

/**
 * Stack frame helper. Usage inside a function body:
 *
 *   FnFrame frame(b, {regS0, regS1}, 16);
 *   frame.prologue();   // open frame, spill ra + s0 + s1
 *   ...body (locals at frame.localOffset(0..))...
 *   frame.epilogue();   // fill, close frame, ret
 */
class FnFrame
{
  public:
    FnFrame(Builder &b, std::vector<LogReg> callee_saves,
            int local_bytes = 0);

    void prologue();
    void epilogue();

    int frameBytes() const { return frame; }

    /** sp-relative offset of the i-th 8-byte local slot. */
    int localOffset(int i) const { return saveBytes + 8 * i; }

  private:
    Builder &b;
    std::vector<LogReg> saves;
    int saveBytes;
    int frame;
};

/** LCG step in registers: state = state * 1103515245 + 12345. */
void emitLcg(Builder &b, LogReg state);

/** dst = (state >> 16) & (2^bits - 1): a usable pseudo-random field. */
void emitLcgBits(Builder &b, LogReg dst, LogReg state, unsigned bits);

/**
 * Emit a counted loop skeleton:
 *   counter = iters; label: <body via callback>; counter--; bne label
 * The callback receives the builder; the counter register must not be
 * clobbered by the body.
 */
template <typename BodyFn>
void
emitCountedLoop(Builder &b, LogReg counter, s32 iters, BodyFn &&body)
{
    b.li(counter, iters);
    const std::string top = b.genLabel("loop");
    b.bind(top);
    body();
    b.subqi(counter, counter, 1);
    b.bne(counter, top);
}

} // namespace rix

#endif // RIX_WORKLOAD_KIT_HH
