/**
 * @file
 * Workload registry: 16 synthetic programs, one per benchmark instance
 * of the paper's SPEC2000 integer evaluation (bzip2, crafty, eon.cook,
 * eon.kajiya, eon.rushmeier, gap, gcc, gzip, mcf, parser, perl.diffmail,
 * perl.splitmail, twolf, vortex, vpr.place, vpr.route).
 *
 * Each program is written in the repository's Alpha-flavoured ISA and
 * engineered to exhibit that benchmark's published characteristics:
 * call intensity and depth, load/store fraction, branch predictability,
 * loop-invariant redundancy and stack save/restore traffic — the
 * properties that determine its integration behaviour (DESIGN.md
 * explains the substitution for the real SPEC binaries).
 *
 * All programs are deterministic, self-checking (they emit a checksum
 * through the Emit syscall) and halt after an amount of work scaled by
 * WorkloadParams::scale.
 */

#ifndef RIX_WORKLOAD_WORKLOAD_HH
#define RIX_WORKLOAD_WORKLOAD_HH

#include <string>
#include <vector>

#include "assembler/program.hh"

namespace rix
{

struct WorkloadParams
{
    u64 scale = 1; // multiplies the dynamic instruction count
};

using WorkloadBuilderFn = Program (*)(const WorkloadParams &);

struct WorkloadInfo
{
    const char *name;
    WorkloadBuilderFn build;
    const char *description;
};

/** The 16 benchmark instances in the paper's reporting order. */
const std::vector<WorkloadInfo> &allWorkloads();

/** Names only, in order. */
std::vector<std::string> workloadNames();

/** Build one workload by name; fatal on unknown names. */
Program buildWorkload(const std::string &name, u64 scale = 1);

/** True when @p name is a registered workload (the non-fatal check a
 *  request validator runs before buildWorkload's fatal path). */
bool workloadExists(const std::string &name);

// Individual builders.
Program buildBzip2(const WorkloadParams &);
Program buildCrafty(const WorkloadParams &);
Program buildEonCook(const WorkloadParams &);
Program buildEonKajiya(const WorkloadParams &);
Program buildEonRushmeier(const WorkloadParams &);
Program buildGap(const WorkloadParams &);
Program buildGcc(const WorkloadParams &);
Program buildGzip(const WorkloadParams &);
Program buildMcf(const WorkloadParams &);
Program buildParser(const WorkloadParams &);
Program buildPerlDiffmail(const WorkloadParams &);
Program buildPerlSplitmail(const WorkloadParams &);
Program buildTwolf(const WorkloadParams &);
Program buildVortex(const WorkloadParams &);
Program buildVprPlace(const WorkloadParams &);
Program buildVprRoute(const WorkloadParams &);

} // namespace rix

#endif // RIX_WORKLOAD_WORKLOAD_HH
