#include "workload/kit.hh"

#include "base/bitutil.hh"

namespace rix
{

FnFrame::FnFrame(Builder &builder, std::vector<LogReg> callee_saves,
                 int local_bytes)
    : b(builder), saves(std::move(callee_saves))
{
    saveBytes = 8 * int(saves.size() + 1); // + return address
    frame = int(alignUp(u64(saveBytes + local_bytes), 16));
}

void
FnFrame::prologue()
{
    // Frame open: the stack-pointer decrement that creates the reverse
    // IT entry for the matching increment in the epilogue.
    b.lda(regSp, -frame, regSp);
    b.stq(regRa, 0, regSp);
    for (size_t i = 0; i < saves.size(); ++i)
        b.stq(saves[i], s32(8 * (i + 1)), regSp);
}

void
FnFrame::epilogue()
{
    // Register fills: the loads reverse integration short-circuits.
    for (size_t i = 0; i < saves.size(); ++i)
        b.ldq(saves[i], s32(8 * (i + 1)), regSp);
    b.ldq(regRa, 0, regSp);
    b.lda(regSp, frame, regSp);
    b.ret();
}

void
emitLcg(Builder &b, LogReg state)
{
    b.mulqi(state, state, 1103515245);
    b.addqi(state, state, 12345);
}

void
emitLcgBits(Builder &b, LogReg dst, LogReg state, unsigned bits)
{
    b.srli(dst, state, 16);
    b.andi(dst, dst, s32((1u << bits) - 1));
}

} // namespace rix
