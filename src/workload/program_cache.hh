/**
 * @file
 * Process-wide cache of built workload programs.
 *
 * A figure sweep runs the same workload under dozens of machine
 * configurations; the Program (mcf's data image alone is ~4MB, and the
 * generators are not free) is identical across all of them. This cache
 * generates and assembles each (name, scale) program exactly once and
 * hands out a const reference that every config point — on any thread —
 * shares read-only.
 *
 * Concurrency: the slot map is guarded by a mutex held only for
 * lookup/insert of the (small) slot record; the expensive build runs
 * under a per-slot std::call_once, so two threads wanting *different*
 * workloads build concurrently while two threads wanting the *same*
 * workload build it once and share. Returned references are stable for
 * the cache's lifetime (slots are heap-allocated and never erased).
 */

#ifndef RIX_WORKLOAD_PROGRAM_CACHE_HH
#define RIX_WORKLOAD_PROGRAM_CACHE_HH

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "workload/workload.hh"

namespace rix
{

class ProgramCache
{
  public:
    using Builder = Program (*)(const std::string &name, u64 scale);

    /** @p builder defaults to buildWorkload; tests inject counters. */
    explicit ProgramCache(Builder builder = nullptr);

    /**
     * The program for (name, scale), building it on first request.
     * Thread-safe; the reference stays valid for the cache's lifetime.
     */
    const Program &get(const std::string &name, u64 scale);

    /** Number of programs actually constructed (not lookups). */
    u64 builds() const { return nBuilds.load(std::memory_order_relaxed); }

    /** Number of distinct (name, scale) slots requested so far. */
    size_t size() const;

  private:
    struct Slot
    {
        std::once_flag once;
        Program prog;
    };

    Builder builder;
    mutable std::mutex mu;
    std::map<std::pair<std::string, u64>, std::unique_ptr<Slot>> slots;
    std::atomic<u64> nBuilds{0};
};

/** The process-wide instance used by the sweep engine and benches. */
ProgramCache &globalProgramCache();

} // namespace rix

#endif // RIX_WORKLOAD_PROGRAM_CACHE_HH
