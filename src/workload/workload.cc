#include "workload/workload.hh"

#include "base/log.hh"

namespace rix
{

const std::vector<WorkloadInfo> &
allWorkloads()
{
    static const std::vector<WorkloadInfo> table = {
        {"bzip2", buildBzip2,
         "block compression: tight RLE/histogram loops, few calls"},
        {"crafty", buildCrafty,
         "game-tree search: deep recursion, bitboard ALU, call-heavy"},
        {"eon.c", buildEonCook,
         "ray tracer (cook): fixed-point vector math, 45% memory ops"},
        {"eon.k", buildEonKajiya,
         "ray tracer (kajiya): adds a bounce recursion level"},
        {"eon.r", buildEonRushmeier,
         "ray tracer (rushmeier): larger object set"},
        {"gap", buildGap,
         "computer algebra: vector arithmetic kernels behind small calls"},
        {"gcc", buildGcc,
         "compiler passes over a synthetic IR: branchy, moderate calls"},
        {"gzip", buildGzip,
         "LZ compression: hash-chain matching, loop-dominated, few calls"},
        {"mcf", buildMcf,
         "network simplex: pointer chasing over an L2-busting arc array"},
        {"parser", buildParser,
         "link grammar: recursive descent, dictionary probing"},
        {"perl.d", buildPerlDiffmail,
         "perl interpreter (diffmail): indirect dispatch, arith ops"},
        {"perl.s", buildPerlSplitmail,
         "perl interpreter (splitmail): indirect dispatch, string ops"},
        {"twolf", buildTwolf,
         "standard-cell placement: annealing with data-dependent accepts"},
        {"vortex", buildVortex,
         "OO database: layered small functions, deepest call chains"},
        {"vpr.p", buildVprPlace,
         "FPGA placement: annealing over a grid"},
        {"vpr.r", buildVprRoute,
         "FPGA routing: maze expansion, loop-dominated, few calls"},
    };
    return table;
}

std::vector<std::string>
workloadNames()
{
    std::vector<std::string> names;
    for (const auto &w : allWorkloads())
        names.push_back(w.name);
    return names;
}

Program
buildWorkload(const std::string &name, u64 scale)
{
    WorkloadParams wp;
    wp.scale = scale;
    for (const auto &w : allWorkloads())
        if (name == w.name)
            return w.build(wp);
    rix_fatal("unknown workload '%s'", name.c_str());
}

bool
workloadExists(const std::string &name)
{
    for (const auto &w : allWorkloads())
        if (name == w.name)
            return true;
    return false;
}

} // namespace rix
