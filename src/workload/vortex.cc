/**
 * @file
 * vortex-like workload: an object-oriented in-memory database.
 *
 * Character profile: the deepest and most frequent call chains of the
 * suite (main -> operation -> validate -> hash -> slot, plus field
 * copy/compare leaf loops), heavy callee-save traffic, and duplicate
 * address-expression sites within functions. The paper reports vortex
 * among the biggest beneficiaries of both opcode indexing (~10% extra)
 * and reverse integration (~10% reverse rate).
 */

#include "workload/kit.hh"
#include "workload/workload.hh"

namespace rix
{

Program
buildVortex(const WorkloadParams &wp)
{
    Builder b("vortex");
    Rng rng(0x4073);
    const s32 nobjs = 256;
    const s32 fields = 8;
    b.randomQuads("objects", size_t(nobjs) * fields, rng, 1 << 20);
    b.space("table", 256 * 8);
    b.space("scratch", fields * 8);

    const LogReg v0 = 0;
    const LogReg t0 = 1, t1 = 2, t2 = 3, t5 = 6, t6 = 7;
    const LogReg s0 = 9, s1 = 10, s4 = 13, s5 = 14;
    const LogReg a0 = 16, a1 = 17;
    (void)a1;

    b.br("main");

    // validate(a0 = id) -> v0 = clamped id.
    b.bind("vx_validate");
    {
        FnFrame f(b, {});
        f.prologue();
        b.andi(v0, a0, nobjs - 1);
        f.epilogue();
    }

    // hash(a0 = id) -> v0 = bucket index.
    b.bind("vx_hash");
    {
        FnFrame f(b, {});
        f.prologue();
        b.mulqi(t0, a0, 0x9e3b);
        b.srli(t1, t0, 13);
        b.xor_(t0, t0, t1);
        b.andi(v0, t0, 255);
        f.epilogue();
    }

    // slot(a0 = bucket) -> v0 = &table[bucket].
    b.bind("vx_slot");
    {
        FnFrame f(b, {});
        f.prologue();
        b.slli(t0, a0, 3);
        b.addqi(t6, regGp, s32(b.dataAddr("table") - defaultDataBase));
        b.addq(v0, t6, t0);
        f.epilogue();
    }

    // copy_fields(a0 = src obj base): copy into scratch.
    b.bind("vx_copy");
    {
        FnFrame f(b, {s0});
        f.prologue();
        b.mv(s0, a0);
        b.addqi(t2, regGp, s32(b.dataAddr("scratch") - defaultDataBase));
        emitCountedLoop(b, t5, fields, [&] {
            // Duplicate address-expression site #1.
            b.addqi(t6, regGp,
                    s32(b.dataAddr("scratch") - defaultDataBase));
            b.ldq(t0, 0, s0);
            b.stq(t0, 0, t2);
            b.addqi(s0, s0, 8);
            b.addqi(t2, t2, 8);
        });
        f.epilogue();
    }

    // compare_fields(a0 = obj base) -> v0 = mismatch count vs scratch.
    b.bind("vx_compare");
    {
        FnFrame f(b, {s0});
        f.prologue();
        b.mv(s0, a0);
        b.addqi(t2, regGp, s32(b.dataAddr("scratch") - defaultDataBase));
        b.li(v0, 0);
        emitCountedLoop(b, t5, fields, [&] {
            // Duplicate address-expression site #2 (same op/imm/input
            // as site #1 in vx_copy: opcode indexing integrates these
            // across the two static instructions).
            b.addqi(t6, regGp,
                    s32(b.dataAddr("scratch") - defaultDataBase));
            b.ldq(t0, 0, s0);
            b.ldq(t1, 0, t2);
            b.cmpeq(t0, t0, t1);
            b.xori(t0, t0, 1);
            b.addq(v0, v0, t0);
            b.addqi(s0, s0, 8);
            b.addqi(t2, t2, 8);
        });
        f.epilogue();
    }

    // obj_insert(a0 = id) -> v0.
    b.bind("vx_insert");
    {
        FnFrame f(b, {s0, s1});
        f.prologue();
        b.jsr("vx_validate");
        b.mv(s0, v0);
        b.mv(a0, s0);
        b.jsr("vx_hash");
        b.mv(a0, v0);
        b.jsr("vx_slot");
        b.mv(s1, v0);
        b.stq(s0, 0, s1);
        // Object base = objects + id * fields * 8.
        b.slli(t0, s0, 6);
        b.addqi(t6, regGp, s32(b.dataAddr("objects") - defaultDataBase));
        b.addq(a0, t6, t0);
        b.jsr("vx_copy");
        b.mv(v0, s0);
        f.epilogue();
    }

    // obj_lookup(a0 = id) -> v0 = mismatch count.
    b.bind("vx_lookup");
    {
        FnFrame f(b, {s0, s1});
        f.prologue();
        b.jsr("vx_validate");
        b.mv(s0, v0);
        b.mv(a0, s0);
        b.jsr("vx_hash");
        b.mv(a0, v0);
        b.jsr("vx_slot");
        b.ldq(s1, 0, v0);   // stored id
        b.slli(t0, s1, 6);
        b.addqi(t6, regGp, s32(b.dataAddr("objects") - defaultDataBase));
        b.addq(a0, t6, t0);
        b.jsr("vx_compare");
        f.epilogue();
    }

    b.bind("main");
    b.li(s4, 0);
    b.li(s5, 0x9a7);
    emitCountedLoop(b, 15, s32(260 * wp.scale), [&] {
        emitLcg(b, s5);
        emitLcgBits(b, a0, s5, 10);
        b.jsr("vx_insert");
        b.xor_(s4, s4, v0);
        emitLcgBits(b, a0, s5, 9);
        b.jsr("vx_lookup");
        b.addq(s4, s4, v0);
    });
    b.syscall(s32(SyscallCode::Emit), s4);
    b.halt();

    b.entry("main");
    return b.finish();
}

} // namespace rix
