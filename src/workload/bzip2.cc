/**
 * @file
 * bzip2-like workload: block compression kernels.
 *
 * Character profile (drives the integration behaviour the paper reports
 * for bzip2): tight loop-dominated kernels (run-length scan, byte
 * histogram, prefix sum) over a 4KB block, very few calls and a shallow
 * call graph — so opcode/call-depth indexing and reverse integration
 * give it little, while PC-based general reuse of unhoisted loop bounds
 * and address constants works.
 *
 * The kernels use pointer-bound loop exits with the bound recomputed
 * every iteration from a stable base register — the classic
 * "loop-invariant instruction not hoisted by the compiler" pattern the
 * paper names as general-reuse fodder.
 */

#include "workload/kit.hh"
#include "workload/workload.hh"

namespace rix
{

Program
buildBzip2(const WorkloadParams &wp)
{
    Builder b("bzip2");
    Rng rng(0xb21f);
    const s32 quads = 512; // one 4KB block

    b.randomQuads("src", quads, rng, 256);
    b.space("freq", 256 * 8);
    b.space("out", quads * 8);

    const LogReg s0 = 9, s4 = 13;
    const LogReg t0 = 1, t1 = 2, t2 = 3, t3 = 4, t5 = 6;
    const LogReg a0 = 16, a1 = 17;
    const LogReg v0 = 0;

    b.br("main");

    // rle_scan(a0 = block base) -> v0 = number of runs.
    b.bind("rle_scan");
    {
        FnFrame f(b, {s0});
        f.prologue();
        b.mv(s0, a0);
        b.li(v0, 0);
        b.li(t2, -1); // previous value
        const std::string top = b.genLabel("rle");
        b.bind(top);
        b.ldq(t0, 0, s0);
        b.cmpeq(t1, t0, t2);
        const std::string same = b.genLabel("same");
        b.bne(t1, same);
        b.addqi(v0, v0, 1);
        b.mv(t2, t0);
        b.bind(same);
        b.addqi(s0, s0, 8);
        b.addqi(t5, a0, quads * 8); // unhoisted bound recompute
        b.cmplt(t3, s0, t5);
        b.bne(t3, top);
        f.epilogue();
    }

    // histogram(a0 = block base, a1 = freq base): read-modify-write
    // counter updates (store->load traffic within the window).
    b.bind("histogram");
    {
        FnFrame f(b, {s0});
        f.prologue();
        b.mv(s0, a0);
        const std::string top = b.genLabel("hist");
        b.bind(top);
        b.ldq(t0, 0, s0);
        b.andi(t0, t0, 255);
        b.slli(t0, t0, 3);
        b.addq(t0, a1, t0);
        b.ldq(t1, 0, t0);
        b.addqi(t1, t1, 1);
        b.stq(t1, 0, t0);
        b.addqi(s0, s0, 8);
        b.addqi(t5, a0, quads * 8); // unhoisted bound recompute
        b.cmplt(t3, s0, t5);
        b.bne(t3, top);
        f.epilogue();
    }

    // prefix_sum(a0 = freq base) -> v0 = grand total (serial chain).
    b.bind("prefix_sum");
    {
        FnFrame f(b, {});
        f.prologue();
        b.mv(t2, a0); // stable base copy
        b.li(v0, 0);
        const std::string top = b.genLabel("pfx");
        b.bind(top);
        b.ldq(t0, 0, a0);
        b.addq(v0, v0, t0);
        b.stq(v0, 0, a0);
        b.addqi(a0, a0, 8);
        b.addqi(t5, t2, 256 * 8); // unhoisted bound recompute
        b.cmplt(t3, a0, t5);
        b.bne(t3, top);
        f.epilogue();
    }

    b.bind("main");
    const s32 blocks = s32(4 * wp.scale);
    b.li(s4, 0); // checksum
    emitCountedLoop(b, 15, blocks, [&] {
        b.li(a0, s32(b.dataAddr("src")));
        b.jsr("rle_scan");
        b.xor_(s4, s4, v0);
        b.li(a0, s32(b.dataAddr("src")));
        b.li(a1, s32(b.dataAddr("freq")));
        b.jsr("histogram");
        b.li(a0, s32(b.dataAddr("freq")));
        b.jsr("prefix_sum");
        b.addq(s4, s4, v0);
    });
    b.syscall(s32(SyscallCode::Emit), s4);
    b.halt();

    b.entry("main");
    return b.finish();
}

} // namespace rix
