/**
 * @file
 * Set-associative, non-blocking, write-back cache timing model.
 *
 * The model is latency-compositional: an access returns the cycle at
 * which its data is available. Misses allocate MSHRs (merging with an
 * outstanding miss to the same line); when all MSHRs are busy the
 * access waits for the earliest one to free. Fills insert the line
 * eagerly with a `fillDone` timestamp, so hits under outstanding fills
 * are delayed to the fill's completion — non-blocking, hit-under-miss
 * behaviour with up to `numMshrs` outstanding misses.
 */

#ifndef RIX_MEM_CACHE_HH
#define RIX_MEM_CACHE_HH

#include <functional>
#include <string>
#include <vector>

#include "base/types.hh"

namespace rix
{

struct CacheParams
{
    std::string name = "cache";
    u32 sizeBytes = 32 * 1024;
    u32 lineBytes = 32;
    u32 assoc = 2;
    Cycle hitLatency = 2;
    u32 numMshrs = 16;

    u32 numSets() const { return sizeBytes / (lineBytes * assoc); }
};

struct CacheAccessResult
{
    Cycle ready = 0;  // data-available cycle
    bool hit = false; // tag hit (even if the fill is still in flight)
};

class Cache
{
  public:
    /**
     * Miss handler: given the missing line address and the cycle the
     * miss is issued, returns the cycle the fill data arrives.
     */
    using MissHandler = std::function<Cycle(Addr line_addr, Cycle now)>;

    /** Writeback handler: a dirty victim leaves for the next level. */
    using WritebackHandler = std::function<void(Addr line_addr, Cycle now)>;

    explicit Cache(const CacheParams &params);

    /**
     * Reconfigure to @p params and return to the power-on state
     * (all lines invalid, counters zero). Reuses the line and MSHR
     * arrays when the geometry is unchanged.
     */
    void reset(const CacheParams &params);

    /**
     * Perform one access.
     * @param addr      byte address (the whole access must fit the line)
     * @param is_write  stores mark the line dirty (write-allocate)
     * @param now       issue cycle
     * @param on_miss   charged once per allocated (non-merged) miss
     * @param on_wb     invoked for dirty evictions (may be null)
     */
    CacheAccessResult access(Addr addr, bool is_write, Cycle now,
                             const MissHandler &on_miss,
                             const WritebackHandler &on_wb = nullptr);

    /**
     * Hit-only fast path: on a tag hit, applies the hit side effects
     * (LRU, dirty marking, stats, hit-under-fill delay) and returns
     * true with *ready set; on a miss returns false with no state
     * change. access() delegates its hit path here; calling it
     * directly lets callers skip constructing the miss/writeback
     * closures on the overwhelmingly common hit path.
     */
    bool
    tryHit(Addr addr, bool is_write, Cycle now, Cycle *ready)
    {
        const Addr la = lineAddrOf(addr);
        Line *base = &lines[size_t(setOf(la)) * p.assoc];
        for (u32 w = 0; w < p.assoc; ++w) {
            Line &line = base[w];
            if (line.valid && line.tag == tagOf(la)) {
                line.lruStamp = ++lruClock;
                if (is_write)
                    line.dirty = true;
                ++nHits;
                const Cycle start =
                    now > line.fillDone ? now : line.fillDone;
                *ready = start + p.hitLatency;
                return true;
            }
        }
        return false;
    }

    /** True if @p addr currently hits (no state change; tests). */
    bool probe(Addr addr) const;

    void invalidateAll();

    const CacheParams &params() const { return p; }
    u64 hits() const { return nHits; }
    u64 misses() const { return nMisses; }
    u64 mshrMerges() const { return nMerges; }
    u64 writebacks() const { return nWritebacks; }
    u64 mshrStallCycles() const { return nMshrStallCycles; }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        u64 tag = 0;
        Cycle fillDone = 0;
        u64 lruStamp = 0;
    };

    struct Mshr
    {
        Addr lineAddr = 0;
        Cycle ready = 0;
        bool busy = false;
    };

    Addr lineAddrOf(Addr a) const { return a / p.lineBytes; }
    u32 setOf(Addr line_addr) const { return u32(line_addr) & (sets - 1); }
    u64 tagOf(Addr line_addr) const { return line_addr >> setShift; }

    CacheParams p;
    u32 sets;
    u32 setShift;
    std::vector<Line> lines;
    std::vector<Mshr> mshrs;
    u64 lruClock = 0;
    u64 nHits = 0, nMisses = 0, nMerges = 0, nWritebacks = 0;
    u64 nMshrStallCycles = 0;
};

} // namespace rix

#endif // RIX_MEM_CACHE_HH
