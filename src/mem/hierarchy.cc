#include "mem/hierarchy.hh"

namespace rix
{

MemHierarchy::MemHierarchy(const MemHierarchyParams &params)
    : p(params), l1iCache(p.l1i), l1dCache(p.l1d), l2Cache(p.l2),
      itlbUnit(p.itlb), dtlbUnit(p.dtlb),
      backsideBus(p.l2BusBytes, p.l2BusCyclesPerBeat),
      memoryBus(p.memBusBytes, p.memBusCyclesPerBeat)
{
}

void
MemHierarchy::reset(const MemHierarchyParams &params)
{
    p = params;
    l1iCache.reset(p.l1i);
    l1dCache.reset(p.l1d);
    l2Cache.reset(p.l2);
    itlbUnit.reset(p.itlb);
    dtlbUnit.reset(p.dtlb);
    backsideBus.reset(p.l2BusBytes, p.l2BusCyclesPerBeat);
    memoryBus.reset(p.memBusBytes, p.memBusCyclesPerBeat);
}

Cycle
MemHierarchy::fillFromMemory(Addr l2_line_addr, Cycle now)
{
    // The request travels on the (separate, uncontended) address path;
    // only the returning line occupies the data bus. Misses therefore
    // overlap up to the data-bus bandwidth, which is what lets the
    // model expose memory-level parallelism.
    const Addr byte_addr = l2_line_addr * p.l2.lineBytes;
    (void)byte_addr;
    const Cycle data_ready = now + p.memLatency;
    return memoryBus.transfer(data_ready, p.l2.lineBytes);
}

Cycle
MemHierarchy::fillFromL2(Addr l1_line_addr, Cycle now,
                         unsigned l1_line_bytes)
{
    const Addr byte_addr = l1_line_addr * l1_line_bytes;
    auto l2_miss = [this](Addr line, Cycle t) {
        return fillFromMemory(line, t);
    };
    auto l2_wb = [this](Addr, Cycle t) {
        // Dirty L2 victims occupy the memory data bus.
        memoryBus.transfer(t, p.l2.lineBytes);
    };
    const CacheAccessResult r =
        l2Cache.access(byte_addr, false, now, l2_miss, l2_wb);
    // Line returns to L1 over the backside bus.
    return backsideBus.transfer(r.ready, l1_line_bytes);
}

Cycle
MemHierarchy::ifetch(Addr addr, Cycle now)
{
    const Cycle tlb_lat = itlbUnit.access(addr);
    const Cycle start = now + tlb_lat;
    Cycle ready;
    if (l1iCache.tryHit(addr, false, start, &ready))
        return ready;
    auto miss = [this](Addr line, Cycle t) {
        return fillFromL2(line, t, p.l1i.lineBytes);
    };
    auto wb = [this](Addr line, Cycle t) {
        backsideBus.transfer(t, p.l1i.lineBytes);
        l2Cache.access(line * p.l1i.lineBytes, true, t, nullptr, nullptr);
    };
    return l1iCache.access(addr, false, start, miss, wb).ready;
}

Cycle
MemHierarchy::read(Addr addr, Cycle now)
{
    const Cycle tlb_lat = dtlbUnit.access(addr);
    const Cycle start = now + tlb_lat;
    Cycle ready;
    if (l1dCache.tryHit(addr, false, start, &ready))
        return ready;
    auto miss = [this](Addr line, Cycle t) {
        return fillFromL2(line, t, p.l1d.lineBytes);
    };
    auto wb = [this](Addr line, Cycle t) {
        backsideBus.transfer(t, p.l1d.lineBytes);
        l2Cache.access(line * p.l1d.lineBytes, true, t, nullptr, nullptr);
    };
    return l1dCache.access(addr, false, start, miss, wb).ready;
}

Cycle
MemHierarchy::write(Addr addr, Cycle now)
{
    const Cycle tlb_lat = dtlbUnit.access(addr);
    const Cycle start = now + tlb_lat;
    Cycle ready;
    if (l1dCache.tryHit(addr, true, start, &ready))
        return ready;
    auto miss = [this](Addr line, Cycle t) {
        return fillFromL2(line, t, p.l1d.lineBytes);
    };
    auto wb = [this](Addr line, Cycle t) {
        backsideBus.transfer(t, p.l1d.lineBytes);
        l2Cache.access(line * p.l1d.lineBytes, true, t, nullptr, nullptr);
    };
    return l1dCache.access(addr, true, start, miss, wb).ready;
}

} // namespace rix
