/**
 * @file
 * Retirement-side store write buffer (paper: 16 entries).
 *
 * Committed stores enter the buffer and drain to the data cache one per
 * cycle. Retirement stalls when the buffer is full. Purely a timing
 * structure: the architectural memory write happens at retirement.
 */

#ifndef RIX_MEM_WRITE_BUFFER_HH
#define RIX_MEM_WRITE_BUFFER_HH

#include <deque>

#include "base/types.hh"

namespace rix
{

class WriteBuffer
{
  public:
    explicit WriteBuffer(unsigned capacity) : cap(capacity) {}

    bool full() const { return q.size() >= cap; }
    size_t occupancy() const { return q.size(); }

    /** Enqueue a committed store. Caller must check full() first. */
    void
    push(Addr addr, Cycle now)
    {
        q.push_back({addr, now});
        ++nPushes;
    }

    /**
     * Drain up to one store into the cache this cycle.
     * @param drain invoked with the store's address; performs the
     *              timing access to the data cache.
     */
    template <typename DrainFn>
    void
    tick(Cycle now, DrainFn &&drain)
    {
        if (q.empty())
            return;
        if (q.front().enqueueCycle >= now)
            return; // entered this cycle; drains next cycle at earliest
        drain(q.front().addr);
        q.pop_front();
        ++nDrains;
    }

    u64 pushes() const { return nPushes; }
    u64 drains() const { return nDrains; }

    void clear() { q.clear(); }

    /** Reconfigure and return to the power-on state. */
    void
    reset(unsigned capacity)
    {
        cap = capacity;
        q.clear();
        nPushes = nDrains = 0;
    }

  private:
    struct Entry
    {
        Addr addr;
        Cycle enqueueCycle;
    };

    unsigned cap;
    std::deque<Entry> q;
    u64 nPushes = 0, nDrains = 0;
};

} // namespace rix

#endif // RIX_MEM_WRITE_BUFFER_HH
