/**
 * @file
 * Three-level memory hierarchy wired per the paper's section 3.1:
 *
 *  - 64KB / 32B / 2-way L1 instruction cache
 *  - 32KB / 32B / 2-way / 2-cycle write-back L1 data cache, 16 MSHRs
 *  - 64-entry 4-way ITLB, 128-entry 4-way DTLB, 30-cycle hardware walks
 *  - unified 2MB / 64B / 4-way / 6-cycle on-chip L2
 *  - infinite main memory, 80-cycle access
 *  - 32-byte backside (L1<->L2) bus at processor frequency
 *  - 32-byte memory bus at one-quarter processor frequency
 */

#ifndef RIX_MEM_HIERARCHY_HH
#define RIX_MEM_HIERARCHY_HH

#include "mem/bus.hh"
#include "mem/cache.hh"
#include "mem/tlb.hh"

namespace rix
{

struct MemHierarchyParams
{
    CacheParams l1i{"l1i", 64 * 1024, 32, 2, /*hitLat=*/1, 8};
    CacheParams l1d{"l1d", 32 * 1024, 32, 2, /*hitLat=*/2, 16};
    CacheParams l2{"l2", 2 * 1024 * 1024, 64, 4, /*hitLat=*/6, 16};
    TlbParams itlb{64, 4, 8192, 30};
    TlbParams dtlb{128, 4, 8192, 30};
    Cycle memLatency = 80;
    unsigned l2BusBytes = 32;
    unsigned l2BusCyclesPerBeat = 1;
    unsigned memBusBytes = 32;
    unsigned memBusCyclesPerBeat = 4;
};

class MemHierarchy
{
  public:
    explicit MemHierarchy(const MemHierarchyParams &params);

    /** Reconfigure every level and return to the power-on state. */
    void reset(const MemHierarchyParams &params);

    /** Instruction fetch of the line containing @p addr. */
    Cycle ifetch(Addr addr, Cycle now);

    /** Data read; returns data-available cycle. */
    Cycle read(Addr addr, Cycle now);

    /** Data write (write-allocate); returns completion cycle. */
    Cycle write(Addr addr, Cycle now);

    Cache &l1i() { return l1iCache; }
    Cache &l1d() { return l1dCache; }
    Cache &l2() { return l2Cache; }
    Tlb &itlb() { return itlbUnit; }
    Tlb &dtlb() { return dtlbUnit; }
    Bus &l2Bus() { return backsideBus; }
    Bus &memBus() { return memoryBus; }

    const MemHierarchyParams &params() const { return p; }

  private:
    /** L1 miss handler: access L2 and transfer the line back. */
    Cycle fillFromL2(Addr l1_line_addr, Cycle now, unsigned l1_line_bytes);

    /** L2 miss handler: access memory over the memory bus. */
    Cycle fillFromMemory(Addr l2_line_addr, Cycle now);

    MemHierarchyParams p;
    Cache l1iCache, l1dCache, l2Cache;
    Tlb itlbUnit, dtlbUnit;
    Bus backsideBus, memoryBus;
};

} // namespace rix

#endif // RIX_MEM_HIERARCHY_HH
