/**
 * @file
 * Cycle-level bus occupancy model.
 *
 * A bus moves `widthBytes` per beat, one beat every `cyclesPerBeat` CPU
 * cycles. Transfers are serialized: a request issued while the bus is
 * busy waits for the bus to drain. This reproduces the paper's
 * "backside bus 32 bytes at processor frequency / memory bus 32 bytes
 * at one-quarter processor frequency, utilization modeled at the cycle
 * level".
 */

#ifndef RIX_MEM_BUS_HH
#define RIX_MEM_BUS_HH

#include "base/types.hh"

namespace rix
{

class Bus
{
  public:
    Bus(unsigned width_bytes, unsigned cycles_per_beat)
        : widthBytes(width_bytes), cyclesPerBeat(cycles_per_beat)
    {
    }

    /** Reconfigure and return to the power-on state. */
    void
    reset(unsigned width_bytes, unsigned cycles_per_beat)
    {
        widthBytes = width_bytes;
        cyclesPerBeat = cycles_per_beat;
        nextFree = 0;
        busyCycles = 0;
        nTransfers = 0;
    }

    /** Cycles needed to move @p bytes. */
    Cycle
    transferCycles(unsigned bytes) const
    {
        const unsigned beats = (bytes + widthBytes - 1) / widthBytes;
        return Cycle(beats) * cyclesPerBeat;
    }

    /**
     * Schedule a transfer of @p bytes at or after @p now.
     * @return the cycle at which the transfer completes.
     */
    Cycle
    transfer(Cycle now, unsigned bytes)
    {
        const Cycle start = now > nextFree ? now : nextFree;
        const Cycle done = start + transferCycles(bytes);
        nextFree = done;
        busyCycles += done - start;
        ++nTransfers;
        return done;
    }

    Cycle busyUntil() const { return nextFree; }
    u64 totalBusyCycles() const { return busyCycles; }
    u64 transfers() const { return nTransfers; }

  private:
    unsigned widthBytes;
    unsigned cyclesPerBeat;
    Cycle nextFree = 0;
    u64 busyCycles = 0;
    u64 nTransfers = 0;
};

} // namespace rix

#endif // RIX_MEM_BUS_HH
