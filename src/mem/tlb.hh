/**
 * @file
 * Set-associative TLB. Translation is identity (no paging is
 * simulated); the TLB exists purely for its timing behaviour: a miss
 * costs a fixed hardware-walk latency (30 cycles in the paper's
 * configuration).
 */

#ifndef RIX_MEM_TLB_HH
#define RIX_MEM_TLB_HH

#include <vector>

#include "base/types.hh"

namespace rix
{

struct TlbParams
{
    unsigned entries = 128;
    unsigned assoc = 4;
    unsigned pageBytes = 8192; // Alpha-style 8K pages
    Cycle missLatency = 30;
};

class Tlb
{
  public:
    explicit Tlb(const TlbParams &params);

    /** Reconfigure and return to the power-on state. */
    void reset(const TlbParams &params);

    /**
     * Translate the page containing @p addr.
     * @return extra latency: 0 on hit, missLatency on miss (the entry
     *         is filled). Inline hit loop: this runs for every ifetch
     *         group and every issued load/store.
     */
    Cycle
    access(Addr addr)
    {
        const u64 vpn = vpnOf(addr);
        const unsigned assoc = unsigned(table.size()) / sets;
        Entry *base = &table[std::size_t(setOf(vpn)) * assoc];
        for (unsigned w = 0; w < assoc; ++w) {
            Entry &e = base[w];
            if (e.valid && e.vpn == vpn) {
                e.lruStamp = ++lruClock;
                ++nHits;
                return 0;
            }
        }
        return fillOnMiss(vpn, base, assoc);
    }

    bool probe(Addr addr) const;

    u64 hits() const { return nHits; }
    u64 misses() const { return nMisses; }

    void flush();

  private:
    struct Entry
    {
        bool valid = false;
        u64 vpn = 0;
        u64 lruStamp = 0;
    };

    u64 vpnOf(Addr a) const { return a / p.pageBytes; }
    u32 setOf(u64 vpn) const { return u32(vpn) & (sets - 1); }

    /** Miss path: victim selection and refill. */
    Cycle fillOnMiss(u64 vpn, Entry *base, unsigned assoc);

    TlbParams p;
    unsigned sets;
    std::vector<Entry> table;
    u64 lruClock = 0;
    u64 nHits = 0, nMisses = 0;
};

} // namespace rix

#endif // RIX_MEM_TLB_HH
