#include "mem/cache.hh"

#include "base/bitutil.hh"
#include "base/log.hh"

namespace rix
{

Cache::Cache(const CacheParams &params) { reset(params); }

void
Cache::reset(const CacheParams &params)
{
    p = params;
    if (!isPow2(p.lineBytes) || !isPow2(p.sizeBytes))
        rix_fatal("%s: size and line must be powers of two",
                  p.name.c_str());
    sets = p.numSets();
    if (sets == 0 || !isPow2(sets))
        rix_fatal("%s: set count %u is not a power of two", p.name.c_str(),
                  sets);
    setShift = floorLog2(sets);
    lines.assign(size_t(sets) * p.assoc, Line{});
    mshrs.assign(p.numMshrs, Mshr{});
    lruClock = 0;
    nHits = nMisses = nMerges = nWritebacks = nMshrStallCycles = 0;
}

bool
Cache::probe(Addr addr) const
{
    const Addr la = lineAddrOf(addr);
    const Line *base = &lines[size_t(setOf(la)) * p.assoc];
    for (u32 w = 0; w < p.assoc; ++w)
        if (base[w].valid && base[w].tag == tagOf(la))
            return true;
    return false;
}

CacheAccessResult
Cache::access(Addr addr, bool is_write, Cycle now,
              const MissHandler &on_miss, const WritebackHandler &on_wb)
{
    Cycle hit_ready;
    if (tryHit(addr, is_write, now, &hit_ready))
        return {hit_ready, true};

    const Addr la = lineAddrOf(addr);
    Line *base = &lines[size_t(setOf(la)) * p.assoc];

    ++nMisses;

    // Merge with an outstanding miss to the same line.
    for (auto &m : mshrs) {
        if (m.busy && m.ready <= now)
            m.busy = false;
        if (m.busy && m.lineAddr == la) {
            ++nMerges;
            return {m.ready > now + p.hitLatency ? m.ready
                                                 : now + p.hitLatency,
                    false};
        }
    }

    // Allocate an MSHR; if all are busy, wait for the earliest.
    Mshr *free_mshr = nullptr;
    Cycle earliest = invalidCycle;
    for (auto &m : mshrs) {
        if (!m.busy) {
            free_mshr = &m;
            break;
        }
        if (m.ready < earliest)
            earliest = m.ready;
    }
    Cycle issue = now + p.hitLatency; // tag-check time before going out
    if (!free_mshr) {
        nMshrStallCycles += earliest - now;
        issue = earliest > issue ? earliest : issue;
        for (auto &m : mshrs) {
            if (m.ready <= issue) {
                m.busy = false;
                free_mshr = &m;
            }
        }
        if (!free_mshr)
            rix_panic("%s: MSHR accounting broken", p.name.c_str());
    }

    const Cycle fill_done = on_miss ? on_miss(la, issue) : issue;

    free_mshr->busy = true;
    free_mshr->lineAddr = la;
    free_mshr->ready = fill_done;

    // Victim selection: invalid first, else LRU.
    u32 victim = 0;
    u64 best = ~u64(0);
    bool found = false;
    for (u32 w = 0; w < p.assoc && !found; ++w) {
        if (!base[w].valid) {
            victim = w;
            found = true;
        }
    }
    if (!found) {
        for (u32 w = 0; w < p.assoc; ++w) {
            if (base[w].lruStamp < best) {
                best = base[w].lruStamp;
                victim = w;
            }
        }
    }

    Line &line = base[victim];
    if (line.valid && line.dirty) {
        ++nWritebacks;
        if (on_wb)
            on_wb(line.tag << setShift | setOf(la), issue);
    }
    line.valid = true;
    line.dirty = is_write;
    line.tag = tagOf(la);
    line.fillDone = fill_done;
    line.lruStamp = ++lruClock;

    return {fill_done, false};
}

void
Cache::invalidateAll()
{
    for (auto &l : lines)
        l.valid = false;
    for (auto &m : mshrs)
        m.busy = false;
}

} // namespace rix
