#include "mem/tlb.hh"

#include "base/bitutil.hh"
#include "base/log.hh"

namespace rix
{

Tlb::Tlb(const TlbParams &params) { reset(params); }

void
Tlb::reset(const TlbParams &params)
{
    p = params;
    if (p.entries == 0 || p.assoc == 0)
        rix_fatal("TLB: bad geometry");
    unsigned a = p.assoc >= p.entries ? p.entries : p.assoc;
    sets = p.entries / a;
    if (!isPow2(sets))
        rix_fatal("TLB: set count must be a power of two");
    table.assign(size_t(sets) * a, Entry{});
    lruClock = 0;
    nHits = nMisses = 0;
}

bool
Tlb::probe(Addr addr) const
{
    const u64 vpn = vpnOf(addr);
    const unsigned assoc = unsigned(table.size()) / sets;
    const Entry *base = &table[size_t(setOf(vpn)) * assoc];
    for (unsigned w = 0; w < assoc; ++w)
        if (base[w].valid && base[w].vpn == vpn)
            return true;
    return false;
}

Cycle
Tlb::fillOnMiss(u64 vpn, Entry *base, unsigned assoc)
{
    ++nMisses;
    unsigned victim = 0;
    u64 best = ~u64(0);
    for (unsigned w = 0; w < assoc; ++w) {
        if (!base[w].valid) {
            victim = w;
            break;
        }
        if (base[w].lruStamp < best) {
            best = base[w].lruStamp;
            victim = w;
        }
    }
    Entry &e = base[victim];
    e.valid = true;
    e.vpn = vpn;
    e.lruStamp = ++lruClock;
    return p.missLatency;
}

void
Tlb::flush()
{
    for (auto &e : table)
        e.valid = false;
}

} // namespace rix
