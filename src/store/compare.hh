/**
 * @file
 * `rix compare` — the regression gate over two journaled sweeps.
 *
 * Two result stores of the *same* sweep (equal spec hash, so their
 * job indices line up) produced by two revisions are diffed in two
 * tiers:
 *
 *  - simulated fields (the raw CoreStats counters, the substrate
 *    miss counters, the halted flag) must be bit-identical per job —
 *    any difference is a simulation regression, exit 2;
 *  - throughput (aggregate KIPS over the common jobs) may drift with
 *    the host and the build, so it gates only beyond a configurable
 *    fractional tolerance, exit 1.
 *
 * Alongside the verdict, compare renders both sweeps' throughput in
 * the BENCH_throughput.json trajectory format (one JSON line per
 * workload plus an "aggregate" line, each tagged with the store's
 * revision), so a CI history of compare outputs is a throughput
 * trajectory across revisions.
 *
 * Exit codes: 0 identical (within tolerance), 1 throughput drift,
 * 2 simulated-field divergence, 3 operational error (unreadable or
 * mismatched stores, no comparable jobs, --require-complete unmet).
 * Divergence dominates drift.
 */

#ifndef RIX_STORE_COMPARE_HH
#define RIX_STORE_COMPARE_HH

#include <cstdio>
#include <string>

namespace rix
{

struct CompareOptions
{
    /** Allowed fractional aggregate-KIPS drift (0.25 = 25%). */
    double tolerance = 0.25;
    /** Gate on simulated fields only — skip the throughput tier
     *  entirely (noisy shared CI hosts). */
    bool simOnly = false;
    /** Demand every expanded job journaled ok in both stores;
     *  otherwise only the intersection is compared. */
    bool requireComplete = false;
};

/**
 * Diff the sweeps journaled at @p path_a (baseline) and @p path_b
 * (candidate), writing the throughput trajectory to @p out (nullptr:
 * stdout) and diagnostics to stderr.
 * @return the process exit code (see file comment).
 */
int compareStores(const std::string &path_a, const std::string &path_b,
                  const CompareOptions &opts, FILE *out);

} // namespace rix

#endif // RIX_STORE_COMPARE_HH
