#include "store/result_store.hh"

#include <array>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "base/env.hh"
#include "base/log.hh"
#include "trace/profiler.hh"

namespace rix
{

namespace
{

constexpr char storeMagic[8] = {'R', 'I', 'X', 'S', 'T', 'O', 'R', '1'};

// An individual record is one job's counters plus three short strings;
// anything near this bound is a corrupt length field, not a record.
constexpr u32 maxFrameBytes = u32(1) << 24;

// ---- payload serialization ------------------------------------------
//
// Native-endian, explicitly offset (see the header comment): a fixed
// numeric block first, variable-length strings after it.

void
putBytes(std::string &out, const void *p, size_t n)
{
    out.append(reinterpret_cast<const char *>(p), n);
}

void putU8(std::string &out, u8 v) { putBytes(out, &v, 1); }
void putU16(std::string &out, u16 v) { putBytes(out, &v, 2); }
void putU32(std::string &out, u32 v) { putBytes(out, &v, 4); }
void putU64(std::string &out, u64 v) { putBytes(out, &v, 8); }
void putF64(std::string &out, double v) { putBytes(out, &v, 8); }

void
putStr(std::string &out, const std::string &s)
{
    putU32(out, u32(s.size()));
    out.append(s);
}

/** Bounds-checked sequential reader over a payload. */
struct Reader
{
    const char *p;
    size_t left;
    bool ok = true;

    bool
    take(void *dst, size_t n)
    {
        if (!ok || left < n) {
            ok = false;
            return false;
        }
        memcpy(dst, p, n);
        p += n;
        left -= n;
        return true;
    }

    u8 getU8() { u8 v = 0; take(&v, 1); return v; }
    u16 getU16() { u16 v = 0; take(&v, 2); return v; }
    u32 getU32() { u32 v = 0; take(&v, 4); return v; }
    u64 getU64() { u64 v = 0; take(&v, 8); return v; }
    double getF64() { double v = 0; take(&v, 8); return v; }

    std::string
    getStr()
    {
        const u32 n = getU32();
        if (!ok || left < n) {
            ok = false;
            return "";
        }
        std::string s(p, n);
        p += n;
        left -= n;
        return s;
    }
};

std::string
serializeMeta(const StoreMeta &m)
{
    std::string out;
    putU8(out, u8(m.kind));
    putU64(out, m.specHash);
    putU64(out, m.scale);
    putU64(out, m.numJobs);
    putStr(out, m.gitRev);
    putStr(out, m.specName);
    putStr(out, m.workloadsCsv);
    putStr(out, m.specText);
    return out;
}

bool
parseMeta(const std::string &payload, StoreMeta *m)
{
    Reader r{payload.data(), payload.size()};
    m->kind = StoreKind(r.getU8());
    m->specHash = r.getU64();
    m->scale = r.getU64();
    m->numJobs = r.getU64();
    m->gitRev = r.getStr();
    m->specName = r.getStr();
    m->workloadsCsv = r.getStr();
    m->specText = r.getStr();
    return r.ok && r.left == 0;
}

std::string
serializeRecord(const StoreRecord &rec)
{
    const SimJobResult &res = rec.result;
    std::string out;
    putU64(out, rec.jobIndex);                       // off 0
    putU32(out, res.attempts);                       // off 8
    putU8(out, u8(res.status));                      // off 12
    putU8(out, res.report.halted ? 1 : 0);           // off 13
    putU16(out, 0);                                  // off 14 (reserved)
    putF64(out, res.wallSeconds);                    // off 16
    putU64(out, res.report.l1dMisses);               // off 24
    putU64(out, res.report.l1iMisses);
    putU64(out, res.report.l2Misses);
    putU64(out, res.report.dtlbMisses);
    putU64(out, res.report.itlbMisses);
    // The raw counters, exactly as simulated (bit-exactness is the
    // whole point of the store); the static_assert in core_stats.hh
    // pins the layout to 66 plain u64 fields.
    putBytes(out, &res.report.core, sizeof(CoreStats)); // off 64
    putStr(out, res.report.workload);                // off 592
    putStr(out, rec.configLabel);
    putStr(out, res.error);
    return out;
}

bool
parseRecord(const std::string &payload, StoreRecord *rec)
{
    Reader r{payload.data(), payload.size()};
    SimJobResult &res = rec->result;
    rec->jobIndex = r.getU64();
    res.attempts = r.getU32();
    res.status = JobStatus(r.getU8());
    res.report.halted = r.getU8() != 0;
    r.getU16();
    res.wallSeconds = r.getF64();
    res.report.l1dMisses = r.getU64();
    res.report.l1iMisses = r.getU64();
    res.report.l2Misses = r.getU64();
    res.report.dtlbMisses = r.getU64();
    res.report.itlbMisses = r.getU64();
    if (!r.take(&res.report.core, sizeof(CoreStats)))
        return false;
    res.report.workload = r.getStr();
    rec->configLabel = r.getStr();
    res.error = r.getStr();
    return r.ok && r.left == 0;
}

/** One framed blob: u32 length, u32 crc32(payload), payload. */
std::string
frame(const std::string &payload)
{
    std::string out;
    putU32(out, u32(payload.size()));
    putU32(out, storeCrc32(payload.data(), payload.size()));
    out += payload;
    return out;
}

/**
 * Unframe the blob at @p data[off..len): validate length and checksum.
 * @return true and advances *off past the frame, with *payload set;
 *         false on a torn/corrupt frame (*off untouched).
 */
bool
unframe(const char *data, size_t len, size_t *off, std::string *payload)
{
    if (len - *off < 8)
        return false;
    u32 plen, crc;
    memcpy(&plen, data + *off, 4);
    memcpy(&crc, data + *off + 4, 4);
    if (plen > maxFrameBytes || plen > len - *off - 8)
        return false;
    if (storeCrc32(data + *off + 8, plen) != crc)
        return false;
    payload->assign(data + *off + 8, plen);
    *off += 8 + size_t(plen);
    return true;
}

bool
writeAll(int fd, const char *p, size_t n)
{
    while (n > 0) {
        const ssize_t w = ::write(fd, p, n);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += w;
        n -= size_t(w);
    }
    return true;
}

/** fsync the directory containing @p path, so a just-renamed or
 *  just-created entry survives a crash of the whole machine. Best
 *  effort: some filesystems refuse directory fsync. */
void
syncParentDir(const std::string &path)
{
    const size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash);
    const int fd = ::open(dir.empty() ? "/" : dir.c_str(),
                          O_RDONLY | O_DIRECTORY);
    if (fd >= 0) {
        ::fsync(fd);
        ::close(fd);
    }
}

} // namespace

u32
storeCrc32(const void *data, size_t len)
{
    static const auto table = []() {
        std::array<u32, 256> t{};
        for (u32 i = 0; i < 256; ++i) {
            u32 c = i;
            for (int k = 0; k < 8; ++k)
                c = (c >> 1) ^ (0xEDB88320u & (~(c & 1) + 1));
            t[i] = c;
        }
        return t;
    }();
    u32 crc = ~u32(0);
    const u8 *p = static_cast<const u8 *>(data);
    for (size_t i = 0; i < len; ++i)
        crc = table[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
    return ~crc;
}

const char *
buildGitRev()
{
#ifdef RIX_GIT_REV
    return RIX_GIT_REV;
#else
    return "unknown";
#endif
}

ResultStore::~ResultStore()
{
    if (fd_ >= 0)
        ::close(fd_);
}

std::unique_ptr<ResultStore>
ResultStore::create(const std::string &path, const StoreMeta &meta,
                    std::string *err)
{
    err->clear();
    if (::access(path.c_str(), F_OK) == 0) {
        *err = "store '" + path + "' already exists (use `rix resume` "
               "to continue it, or remove it first)";
        return nullptr;
    }

    // Build the complete header in a temp file and commit it with an
    // atomic rename: the store either exists fully formed or not at
    // all — no reader ever sees a half-written header.
    const std::string tmp =
        path + ".tmp." + std::to_string(u64(::getpid()));
    const int tfd =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (tfd < 0) {
        *err = "cannot create '" + tmp + "': " + strerror(errno);
        return nullptr;
    }
    std::string head(storeMagic, sizeof(storeMagic));
    const u32 ver = formatVersion;
    putU32(head, ver);
    head += frame(serializeMeta(meta));
    const bool wrote = writeAll(tfd, head.data(), head.size()) &&
                       ::fsync(tfd) == 0;
    ::close(tfd);
    if (!wrote || ::rename(tmp.c_str(), path.c_str()) != 0) {
        *err = "cannot commit store '" + path + "': " + strerror(errno);
        ::unlink(tmp.c_str());
        return nullptr;
    }
    syncParentDir(path);

    std::unique_ptr<ResultStore> s(new ResultStore);
    s->path_ = path;
    s->meta_ = meta;
    s->fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND);
    if (s->fd_ < 0) {
        *err = "cannot reopen store '" + path + "': " + strerror(errno);
        return nullptr;
    }
    return s;
}

std::unique_ptr<ResultStore>
ResultStore::openImpl(const std::string &path, bool for_append,
                      std::string *err, Recovery *rec)
{
    err->clear();
    if (rec)
        *rec = Recovery{};

    FILE *f = fopen(path.c_str(), "rb");
    if (!f) {
        *err = "cannot open store '" + path + "': " + strerror(errno);
        return nullptr;
    }
    std::string data;
    char buf[1 << 16];
    size_t n;
    while ((n = fread(buf, 1, sizeof(buf), f)) > 0)
        data.append(buf, n);
    const bool readErr = ferror(f) != 0;
    fclose(f);
    if (readErr) {
        *err = "error reading store '" + path + "'";
        return nullptr;
    }

    // Header: the one part with nothing to recover from. An empty or
    // foreign file, a wrong version, or a torn header are errors.
    if (data.size() < sizeof(storeMagic) + 4 ||
        memcmp(data.data(), storeMagic, sizeof(storeMagic)) != 0) {
        *err = "'" + path + "' is not a rix result store (" +
               (data.empty() ? "empty file" : "bad magic") + ")";
        return nullptr;
    }
    u32 ver;
    memcpy(&ver, data.data() + sizeof(storeMagic), 4);
    if (ver != formatVersion) {
        *err = strfmt("store '%s': wrong version header %u (this build "
                      "reads version %u)",
                      path.c_str(), ver, formatVersion);
        return nullptr;
    }
    size_t off = sizeof(storeMagic) + 4;
    std::string payload;
    std::unique_ptr<ResultStore> s(new ResultStore);
    if (!unframe(data.data(), data.size(), &off, &payload) ||
        !parseMeta(payload, &s->meta_)) {
        *err = "store '" + path + "': corrupt header";
        return nullptr;
    }

    // Record stream: keep exactly the valid prefix. The first frame
    // whose length, checksum or payload shape does not verify ends the
    // stream — everything after it is unreachable (frame lengths chain
    // the stream together) and is dropped, never fatal.
    while (off < data.size()) {
        const size_t frameStart = off;
        StoreRecord r;
        if (!unframe(data.data(), data.size(), &off, &payload) ||
            !parseRecord(payload, &r)) {
            off = frameStart;
            break;
        }
        s->records_.push_back(std::move(r));
    }
    const u64 dropped = u64(data.size() - off);
    if (rec) {
        rec->validRecords = s->records_.size();
        rec->droppedBytes = dropped;
    }
    if (dropped)
        rix_warn("store '%s': dropped %llu torn/corrupt tail bytes; "
                 "recovered %zu records",
                 path.c_str(), (unsigned long long)dropped,
                 s->records_.size());

    s->path_ = path;
    if (for_append) {
        s->fd_ = ::open(path.c_str(), O_WRONLY);
        if (s->fd_ < 0) {
            *err =
                "cannot append to store '" + path + "': " + strerror(errno);
            return nullptr;
        }
        if (::ftruncate(s->fd_, off_t(off)) != 0 ||
            ::lseek(s->fd_, 0, SEEK_END) < 0) {
            *err = "cannot truncate torn tail of '" + path +
                   "': " + strerror(errno);
            return nullptr;
        }
    }
    return s;
}

std::unique_ptr<ResultStore>
ResultStore::openForAppend(const std::string &path, std::string *err,
                           Recovery *rec)
{
    return openImpl(path, /*for_append=*/true, err, rec);
}

std::unique_ptr<ResultStore>
ResultStore::openReadOnly(const std::string &path, std::string *err,
                          Recovery *rec)
{
    return openImpl(path, /*for_append=*/false, err, rec);
}

std::string
ResultStore::append(const StoreRecord &rec)
{
    ScopedPhase timer(HostPhase::StoreJournal);
    std::lock_guard<std::mutex> lock(appendMutex_);
    if (fd_ < 0)
        return "store '" + path_ + "' is read-only";
    const std::string blob = frame(serializeRecord(rec));
    if (!writeAll(fd_, blob.data(), blob.size()))
        return "write to store '" + path_ + "' failed: " +
               strerror(errno);
    if (::fsync(fd_) != 0)
        return "fsync of store '" + path_ + "' failed: " +
               strerror(errno);
    records_.push_back(rec);
    return "";
}

std::string
envStoreDir()
{
    const char *dir = getenv("RIX_STORE_DIR");
    if (!dir)
        return "";
    if (!*dir)
        rix_fatal("RIX_STORE_DIR: empty value; expected a writable "
                  "directory");
    struct stat st;
    if (::stat(dir, &st) != 0)
        rix_fatal("RIX_STORE_DIR: cannot access '%s': %s", dir,
                  strerror(errno));
    if (!S_ISDIR(st.st_mode))
        rix_fatal("RIX_STORE_DIR: '%s' is not a directory", dir);
    if (::access(dir, W_OK | X_OK) != 0)
        rix_fatal("RIX_STORE_DIR: directory '%s' is not writable", dir);
    return dir;
}

void
requireStorePathUsable(const char *what, const std::string &path)
{
    if (path.empty())
        rix_fatal("%s: empty path", what);
    struct stat st;
    if (::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode))
        rix_fatal("%s: '%s' is a directory, not a store file", what,
                  path.c_str());
    const size_t slash = path.find_last_of('/');
    const std::string parent =
        slash == std::string::npos
            ? "."
            : (slash == 0 ? "/" : path.substr(0, slash));
    if (::stat(parent.c_str(), &st) != 0)
        rix_fatal("%s: parent directory '%s' does not exist", what,
                  parent.c_str());
    if (!S_ISDIR(st.st_mode))
        rix_fatal("%s: '%s' is not a directory", what, parent.c_str());
    if (::access(parent.c_str(), W_OK | X_OK) != 0)
        rix_fatal("%s: directory '%s' is not writable", what,
                  parent.c_str());
}

} // namespace rix
