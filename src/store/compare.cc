#include "store/compare.hh"

#include <cmath>
#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "sim/simulator.hh"
#include "store/result_store.hh"

namespace rix
{

namespace
{

/** Per-store view: the last ok record per job index. */
struct StoreView
{
    std::unique_ptr<ResultStore> store;
    std::vector<const StoreRecord *> byIndex; // null: not journaled ok
};

bool
loadView(const std::string &path, StoreView *v)
{
    std::string err;
    v->store = ResultStore::openReadOnly(path, &err);
    if (!v->store) {
        fprintf(stderr, "rix compare: %s\n", err.c_str());
        return false;
    }
    if (v->store->meta().kind != StoreKind::Sweep) {
        fprintf(stderr, "rix compare: '%s' is a serve journal, not a "
                        "sweep store\n", path.c_str());
        return false;
    }
    v->byIndex.assign(v->store->meta().numJobs, nullptr);
    for (const StoreRecord &r : v->store->records()) {
        if (r.jobIndex >= v->byIndex.size()) {
            fprintf(stderr, "rix compare: '%s': record for job %llu "
                            "out of range (%llu jobs)\n",
                    path.c_str(), (unsigned long long)r.jobIndex,
                    (unsigned long long)v->store->meta().numJobs);
            return false;
        }
        if (r.result.ok())
            v->byIndex[r.jobIndex] = &r;
    }
    return true;
}

/**
 * Bit-identity of everything simulated: the raw CoreStats counter
 * block (plain u64s, no padding — pinned by the static_assert in
 * core_stats.hh, so memcmp is exact), the substrate miss counters,
 * and the halted flag. Wall time is deliberately excluded: it is
 * host noise, the drift tier's business.
 */
bool
simFieldsIdentical(const SimReport &a, const SimReport &b)
{
    return memcmp(&a.core, &b.core, sizeof(CoreStats)) == 0 &&
           a.halted == b.halted && a.l1dMisses == b.l1dMisses &&
           a.l1iMisses == b.l1iMisses && a.l2Misses == b.l2Misses &&
           a.dtlbMisses == b.dtlbMisses && a.itlbMisses == b.itlbMisses;
}

/** Name up to @p limit differing stats, via the export namespace. */
std::string
describeDiff(const SimReport &a, const SimReport &b, size_t limit)
{
    StatSet sa, sb;
    exportReport(a, sa);
    exportReport(b, sb);
    std::string s;
    size_t n = 0;
    for (const auto &kv : sa.all()) {
        const double vb = sb.get(kv.first);
        if (kv.second == vb)
            continue;
        if (n++ >= limit) {
            s += " ...";
            break;
        }
        char buf[160];
        snprintf(buf, sizeof(buf), "%s %s=%.0f->%.0f",
                 n > 1 ? "," : "", kv.first.c_str(), kv.second, vb);
        s += buf;
    }
    if (a.halted != b.halted)
        s += std::string(s.empty() ? "" : ",") + " halted=" +
             (a.halted ? "1->0" : "0->1");
    return s.empty() ? " (differs)" : s;
}

/** Sums over one store's share of the common jobs. */
struct Totals
{
    u64 retired = 0;
    u64 cycles = 0;
    double wall = 0.0;

    void
    add(const SimJobResult &r)
    {
        retired += r.report.core.retired;
        cycles += r.report.core.cycles;
        wall += r.wallSeconds;
    }

    double kips() const { return wall > 0 ? retired / wall / 1e3 : 0.0; }
    double ipc() const { return cycles ? double(retired) / cycles : 0.0; }
};

/**
 * One store's throughput over the common jobs, in the
 * BENCH_throughput.json trajectory shape: one line per workload plus
 * an "aggregate" line, each tagged with the producing revision.
 */
void
renderTrajectory(const StoreView &v, const std::vector<size_t> &common,
                 FILE *out)
{
    const char *rev = v.store->meta().gitRev.c_str();
    std::map<std::string, Totals> perBench; // sorted, so stable output
    Totals agg;
    for (size_t i : common) {
        const StoreRecord &r = *v.byIndex[i];
        perBench[r.result.report.workload].add(r.result);
        agg.add(r.result);
    }
    for (const auto &kv : perBench)
        fprintf(out,
                "{\"bench\": \"%s\", \"rev\": \"%s\", \"kips\": %.1f, "
                "\"cycles\": %llu, \"retired\": %llu, \"ipc\": %.4f, "
                "\"wall_s\": %.3f}\n",
                kv.first.c_str(), rev, kv.second.kips(),
                (unsigned long long)kv.second.cycles,
                (unsigned long long)kv.second.retired, kv.second.ipc(),
                kv.second.wall);
    fprintf(out,
            "{\"bench\": \"aggregate\", \"rev\": \"%s\", \"kips\": %.1f, "
            "\"cycles\": %llu, \"retired\": %llu, \"ipc\": %.4f, "
            "\"wall_s\": %.3f, \"jobs\": %zu}\n",
            rev, agg.kips(), (unsigned long long)agg.cycles,
            (unsigned long long)agg.retired, agg.ipc(), agg.wall,
            common.size());
}

} // namespace

int
compareStores(const std::string &path_a, const std::string &path_b,
              const CompareOptions &opts, FILE *out)
{
    if (!out)
        out = stdout;

    StoreView a, b;
    if (!loadView(path_a, &a) || !loadView(path_b, &b))
        return 3;
    const StoreMeta &ma = a.store->meta(), &mb = b.store->meta();
    if (ma.specHash != mb.specHash) {
        fprintf(stderr,
                "rix compare: stores journal different sweeps: '%s' is "
                "spec '%s' (%016llx), '%s' is spec '%s' (%016llx)\n",
                path_a.c_str(), ma.specName.c_str(),
                (unsigned long long)ma.specHash, path_b.c_str(),
                mb.specName.c_str(), (unsigned long long)mb.specHash);
        return 3;
    }
    if (ma.numJobs != mb.numJobs) {
        // Same hash but different expansion cannot happen unless a
        // store header was hand-edited; refuse rather than index out
        // of bounds.
        fprintf(stderr, "rix compare: job counts differ (%llu vs %llu) "
                        "despite equal spec hashes\n",
                (unsigned long long)ma.numJobs,
                (unsigned long long)mb.numJobs);
        return 3;
    }

    std::vector<size_t> common;
    size_t missing = 0;
    for (size_t i = 0; i < a.byIndex.size(); ++i) {
        if (a.byIndex[i] && b.byIndex[i])
            common.push_back(i);
        else
            ++missing;
    }
    if (opts.requireComplete && missing) {
        fprintf(stderr, "rix compare: --require-complete: %zu of %llu "
                        "jobs not journaled ok in both stores\n",
                missing, (unsigned long long)ma.numJobs);
        return 3;
    }
    if (common.empty()) {
        fprintf(stderr, "rix compare: no jobs journaled ok in both "
                        "stores — nothing to compare\n");
        return 3;
    }
    if (missing)
        fprintf(stderr, "rix compare: comparing the %zu jobs common to "
                        "both stores (%zu missing from one side)\n",
                common.size(), missing);

    renderTrajectory(a, common, out);
    renderTrajectory(b, common, out);
    fflush(out);

    // Tier 1: simulated fields must be bit-identical per job.
    size_t divergences = 0;
    for (size_t i : common) {
        const StoreRecord &ra = *a.byIndex[i], &rb = *b.byIndex[i];
        if (ra.result.report.workload != rb.result.report.workload) {
            fprintf(stderr, "rix compare: job %zu is workload '%s' in "
                            "'%s' but '%s' in '%s'\n",
                    i, ra.result.report.workload.c_str(), path_a.c_str(),
                    rb.result.report.workload.c_str(), path_b.c_str());
            return 3;
        }
        if (simFieldsIdentical(ra.result.report, rb.result.report))
            continue;
        if (divergences < 10)
            fprintf(stderr,
                    "rix compare: DIVERGENCE job %zu (%s, config "
                    "'%s'):%s\n",
                    i, ra.result.report.workload.c_str(),
                    ra.configLabel.c_str(),
                    describeDiff(ra.result.report, rb.result.report, 4)
                        .c_str());
        ++divergences;
    }
    if (divergences) {
        fprintf(stderr, "rix compare: %zu of %zu jobs diverge in "
                        "simulated fields (%s -> %s)\n",
                divergences, common.size(), ma.gitRev.c_str(),
                mb.gitRev.c_str());
        return 2;
    }

    // Tier 2: aggregate throughput drift.
    Totals ta, tb;
    for (size_t i : common) {
        ta.add(a.byIndex[i]->result);
        tb.add(b.byIndex[i]->result);
    }
    if (opts.simOnly) {
        fprintf(stderr, "rix compare: %zu jobs bit-identical in every "
                        "simulated field (%s -> %s; --sim-only, "
                        "throughput not gated)\n",
                common.size(), ma.gitRev.c_str(), mb.gitRev.c_str());
        return 0;
    }
    if (ta.wall <= 0 || tb.wall <= 0) {
        fprintf(stderr, "rix compare: stored wall times are zero — "
                        "cannot gate throughput\n");
        return 3;
    }
    const double drift = (tb.kips() - ta.kips()) / ta.kips();
    fprintf(stderr,
            "rix compare: %zu jobs bit-identical in every simulated "
            "field; aggregate %.1f -> %.1f KIPS (%+.1f%%, tolerance "
            "%.0f%%) (%s -> %s)\n",
            common.size(), ta.kips(), tb.kips(), 100 * drift,
            100 * opts.tolerance, ma.gitRev.c_str(), mb.gitRev.c_str());
    return std::fabs(drift) > opts.tolerance ? 1 : 0;
}

} // namespace rix
