/**
 * @file
 * Binding between the scenario engine and the crash-recoverable
 * result store: spec hashing, store creation for `rix run --store`,
 * and `rix resume` — re-expanding a journaled sweep and running
 * exactly the jobs the journal is missing.
 *
 * The store is self-contained: its header embeds the full spec text
 * plus the *resolved* scale and workload selection, so resuming needs
 * nothing but the store file. Resume re-installs the resolved knobs
 * into the environment, re-parses the embedded spec, verifies the
 * recomputed spec hash against the journaled one, and hands the store
 * to runScenario(spec, policy, store) — whose merged output is
 * bit-identical in every simulated field to an uninterrupted run.
 */

#ifndef RIX_STORE_SWEEP_STORE_HH
#define RIX_STORE_SWEEP_STORE_HH

#include <cstdio>
#include <string>

#include "sim/scenario.hh"
#include "store/result_store.hh"

namespace rix
{

/**
 * The sweep identity a store is keyed by: FNV-1a over the spec text
 * plus the resolved scale and resolved workload selection — exactly
 * the inputs that determine the job expansion. Two runs with the same
 * hash expand to the same (workload, config, interval) job list in
 * the same order.
 */
u64 scenarioSpecHash(const std::string &spec_text, const ScenarioSpec &spec);

/** The spec's resolved workload selection as a comma-joined list. */
std::string scenarioWorkloadsCsv(const ScenarioSpec &spec);

/** Store metadata describing one sweep of @p spec. */
StoreMeta makeSweepMeta(const std::string &spec_text,
                        const ScenarioSpec &spec);

/**
 * `rix run --store`: run the spec at @p spec_path journaled into a
 * *new* store at @p store_path (an existing file is fatal — resuming
 * is `rix resume`'s job), rendering onto @p out (nullptr: stdout).
 * Journaling requires a row render (jsonl/csv): the figure renderers
 * are fail-fast and bypass containment, so a spec rendering a figure
 * is fatal here. @return as runScenarioFile (0 ok, 3 partial).
 */
int runScenarioFileStored(const std::string &spec_path,
                          const std::string &store_path, FILE *out,
                          const FaultPolicy &policy);

struct ResumeOptions
{
    /** Tolerate a store produced by a different git revision (the
     *  mismatch is fatal by default; a rev of "unknown" on either
     *  side only warns). */
    bool ignoreRev = false;
};

/**
 * `rix resume`: open the store at @p store_path (recovering any torn
 * tail), re-expand its embedded spec, run exactly the jobs not yet
 * journaled, and render the merged results onto @p out (nullptr:
 * stdout). A store with every job journaled just re-renders.
 * @return as runScenarioFile (0 ok, 3 partial); mismatched spec hash,
 *         job count, or git revision are fatal.
 */
int resumeStoreFile(const std::string &store_path, FILE *out,
                    const FaultPolicy &policy,
                    const ResumeOptions &opts = {});

} // namespace rix

#endif // RIX_STORE_SWEEP_STORE_HH
