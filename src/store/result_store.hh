/**
 * @file
 * Crash-recoverable sweep result store.
 *
 * An append-only, per-record-checksummed file of simulation results,
 * keyed by (git revision, spec hash, config label, job index). The
 * point is durability: `rix run --store` journals every completed job
 * as it retires from the sweep pool, so a killed process loses at most
 * the record being written — never the sweep — and `rix resume` /
 * `rix compare` re-evaluate cheaply from the journal instead of
 * re-simulating (FLOX's record-once replay/backtest split).
 *
 * On-disk format (single-host: native endianness, documented here and
 * versioned so a reader never guesses):
 *
 *   magic   "RIXSTOR1"            8 bytes
 *   version u32                   format version (currently 1)
 *   header  u32 len, u32 crc32, payload   (StoreMeta, see below)
 *   records u32 len, u32 crc32, payload   repeated, one per append()
 *
 * Durability contract:
 *  - create() builds the header in a temp file, fsyncs it, and commits
 *    it with an atomic rename — a store file either exists with a
 *    fully valid header or does not exist at all;
 *  - append() writes one framed record and fsyncs before returning —
 *    the commit point; a `kill -9` at any byte offset leaves at worst
 *    a torn tail that recovery truncates;
 *  - open*() replays the record stream, stops at the first frame whose
 *    length or checksum does not verify, and (for the append mode)
 *    truncates the file back to the last valid record. Recovery keeps
 *    exactly the valid prefix and is never fatal; only a missing or
 *    unrecognizable header (empty file, wrong magic/version) is an
 *    error, because there is nothing to recover from.
 *
 * Record payloads carry a fixed-offset numeric block first (status,
 * wall time, substrate misses, the raw CoreStats counters) and the
 * variable-length strings (workload, config label, error) after it, so
 * external tools can patch or audit records without a full parser.
 */

#ifndef RIX_STORE_RESULT_STORE_HH
#define RIX_STORE_RESULT_STORE_HH

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sim/sweep.hh"

namespace rix
{

/** What kind of job stream a store holds. */
enum class StoreKind : u8
{
    /** A scenario sweep: numJobs fixed by the spec expansion, records
     *  keyed by expanded job index (interval-level for sampled specs). */
    Sweep = 0,
    /** A serve daemon's journal: unbounded, indices monotonic. */
    Serve = 1,
};

/** Store-wide metadata, written once at create(). */
struct StoreMeta
{
    StoreKind kind = StoreKind::Sweep;
    std::string gitRev;       // revision of the producing build
    std::string specName;     // scenario name ("serve" for journals)
    u64 specHash = 0;         // hash of (spec text, scale, workloads)
    u64 scale = 1;            // resolved workload scale
    std::string workloadsCsv; // resolved workload selection, ordered
    u64 numJobs = 0;          // expanded job count (0: unbounded)
    std::string specText;     // full spec JSON (resume re-expands it)
};

/** One journaled result. The workload name lives in
 *  result.report.workload; configLabel is the scenario point label
 *  (or the request id for serve journals). */
struct StoreRecord
{
    u64 jobIndex = 0;
    std::string configLabel;
    SimJobResult result;
};

class ResultStore
{
  public:
    static constexpr u32 formatVersion = 1;

    ~ResultStore();

    ResultStore(const ResultStore &) = delete;
    ResultStore &operator=(const ResultStore &) = delete;

    /**
     * Create a new store at @p path (must not exist). The header is
     * committed via write-then-fsync-then-atomic-rename.
     * @return the store, or null with *err set to a one-line
     *         diagnostic.
     */
    static std::unique_ptr<ResultStore> create(const std::string &path,
                                               const StoreMeta &meta,
                                               std::string *err);

    /** Bytes of recovery detail from an open. */
    struct Recovery
    {
        u64 validRecords = 0;
        u64 droppedBytes = 0; // torn/corrupt tail discarded
    };

    /**
     * Open an existing store for appending: replay the record stream,
     * truncate any torn/corrupt tail back to the last valid record
     * (never fatal), and position for append.
     * @return null with *err on a missing/unrecognizable header.
     */
    static std::unique_ptr<ResultStore>
    openForAppend(const std::string &path, std::string *err,
                  Recovery *rec = nullptr);

    /** Read-only open: same recovery semantics, but the file is left
     *  untouched (the torn tail is ignored, not truncated). */
    static std::unique_ptr<ResultStore>
    openReadOnly(const std::string &path, std::string *err,
                 Recovery *rec = nullptr);

    const StoreMeta &meta() const { return meta_; }
    const std::vector<StoreRecord> &records() const { return records_; }
    const std::string &path() const { return path_; }

    /**
     * Append one record and fsync — the commit point. Thread-safe
     * (journaling happens from sweep workers as jobs retire).
     * @return "" on success, else a one-line diagnostic; on failure
     *         nothing was committed.
     */
    std::string append(const StoreRecord &rec);

  private:
    ResultStore() = default;

    static std::unique_ptr<ResultStore> openImpl(const std::string &path,
                                                 bool for_append,
                                                 std::string *err,
                                                 Recovery *rec);

    std::string path_;
    StoreMeta meta_;
    std::vector<StoreRecord> records_;
    int fd_ = -1; // < 0: read-only
    std::mutex appendMutex_;
};

/** CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of @p data. */
u32 storeCrc32(const void *data, size_t len);

/** The git revision this binary was built from ("unknown" outside a
 *  git checkout). */
const char *buildGitRev();

/**
 * Strict validation of the RIX_STORE_DIR knob, following the
 * base/env.cc pattern: unset returns ""; set but empty, nonexistent,
 * not a directory, or not writable is fatal with a one-line
 * diagnostic naming the variable.
 */
std::string envStoreDir();

/**
 * Strict validation of a --store file path: fatal (naming @p what)
 * when empty, an existing directory, or inside a missing/non-writable
 * parent directory. Does not require the file itself to exist.
 */
void requireStorePathUsable(const char *what, const std::string &path);

} // namespace rix

#endif // RIX_STORE_RESULT_STORE_HH
