#include "store/sweep_store.hh"

#include <cstdlib>
#include <cstring>

#include "base/log.hh"

namespace rix
{

namespace
{

bool
rowRender(const ScenarioSpec &spec)
{
    return spec.render == "jsonl" || spec.render == "csv";
}

/** Buffered render + exit code, shared with runScenarioFile: the
 *  consumer sees either the whole document or nothing. */
int
renderBuffered(const ScenarioSpec &spec, const ScenarioResults &res,
               FILE *out)
{
    char *buf = nullptr;
    size_t bufLen = 0;
    FILE *mem = open_memstream(&buf, &bufLen);
    if (!mem)
        rix_fatal("cannot allocate render buffer");
    renderScenario(spec, res, mem);
    fclose(mem);
    FILE *dst = out ? out : stdout;
    fwrite(buf, 1, bufLen, dst);
    fflush(dst);
    free(buf);
    return res.contained && res.failures() ? 3 : 0;
}

} // namespace

u64
scenarioSpecHash(const std::string &spec_text, const ScenarioSpec &spec)
{
    // FNV-1a 64 over (spec text, resolved scale, resolved workloads):
    // the exact inputs of expandScenarioJobs. NUL separators keep
    // "ab"+"c" distinct from "a"+"bc".
    std::string key = spec_text;
    key += '\0';
    key += std::to_string(spec.scale);
    key += '\0';
    key += scenarioWorkloadsCsv(spec);

    u64 h = 14695981039346656037ull;
    for (unsigned char c : key) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

std::string
scenarioWorkloadsCsv(const ScenarioSpec &spec)
{
    std::string csv;
    for (const std::string &w : spec.workloads) {
        if (!csv.empty())
            csv += ',';
        csv += w;
    }
    return csv;
}

StoreMeta
makeSweepMeta(const std::string &spec_text, const ScenarioSpec &spec)
{
    StoreMeta meta;
    meta.kind = StoreKind::Sweep;
    meta.gitRev = buildGitRev();
    meta.specName = spec.name;
    meta.specHash = scenarioSpecHash(spec_text, spec);
    meta.scale = spec.scale;
    meta.workloadsCsv = scenarioWorkloadsCsv(spec);
    meta.numJobs = expandScenarioJobs(spec).size();
    meta.specText = spec_text;
    return meta;
}

int
runScenarioFileStored(const std::string &spec_path,
                      const std::string &store_path, FILE *out,
                      const FaultPolicy &policy)
{
    requireStorePathUsable("rix run --store", store_path);

    const std::string text = readScenarioFile(spec_path);
    const ScenarioSpec spec = parseScenario(text);
    if (!rowRender(spec))
        rix_fatal("rix run --store: spec '%s' renders '%s', but a "
                  "journaled run requires a row render (jsonl/csv) — "
                  "the figure renderers are fail-fast",
                  spec_path.c_str(), spec.render.c_str());

    std::string err;
    std::unique_ptr<ResultStore> store =
        ResultStore::create(store_path, makeSweepMeta(text, spec), &err);
    if (!store)
        rix_fatal("rix run --store: %s", err.c_str());

    const ScenarioResults res = runScenario(spec, policy, store.get());
    return renderBuffered(spec, res, out);
}

int
resumeStoreFile(const std::string &store_path, FILE *out,
                const FaultPolicy &policy, const ResumeOptions &opts)
{
    std::string err;
    ResultStore::Recovery rec;
    std::unique_ptr<ResultStore> store =
        ResultStore::openForAppend(store_path, &err, &rec);
    if (!store)
        rix_fatal("rix resume: %s", err.c_str());
    const StoreMeta &meta = store->meta();
    if (meta.kind != StoreKind::Sweep)
        rix_fatal("rix resume: '%s' is a serve journal, not a sweep "
                  "store", store_path.c_str());

    // A store from a different build journals a different simulator:
    // silently mixing its results with freshly simulated ones would
    // defeat the whole bit-identity contract. "unknown" (a build
    // outside a git checkout) cannot be checked, so it only warns.
    const std::string selfRev = buildGitRev();
    if (meta.gitRev != selfRev) {
        if (meta.gitRev == "unknown" || selfRev == "unknown")
            rix_warn("rix resume: store revision '%s' vs build '%s' — "
                     "cannot verify they match",
                     meta.gitRev.c_str(), selfRev.c_str());
        else if (opts.ignoreRev)
            rix_warn("rix resume: store was written by revision %s, "
                     "this build is %s (--ignore-rev)",
                     meta.gitRev.c_str(), selfRev.c_str());
        else
            rix_fatal("rix resume: store '%s' was written by revision "
                      "%s, this build is %s — results would mix "
                      "revisions (--ignore-rev to override)",
                      store_path.c_str(), meta.gitRev.c_str(),
                      selfRev.c_str());
    }

    // Reinstall the resolved knobs the store was created under, then
    // re-expand its embedded spec: the expansion this process computes
    // must be the one the records are keyed by, and the recomputed
    // hash proves it (a changed workload registry or spec grammar
    // would silently re-key the job indices otherwise).
    setenv("RIX_SCALE", std::to_string(meta.scale).c_str(),
           /*overwrite=*/1);
    setenv("RIX_BENCH", meta.workloadsCsv.c_str(), /*overwrite=*/1);
    const ScenarioSpec spec = parseScenario(meta.specText);
    const u64 hash = scenarioSpecHash(meta.specText, spec);
    if (hash != meta.specHash)
        rix_fatal("rix resume: store '%s' hashes its spec as "
                  "%016llx but this build computes %016llx — the spec "
                  "expansion changed; re-run the sweep instead",
                  store_path.c_str(),
                  (unsigned long long)meta.specHash,
                  (unsigned long long)hash);

    const size_t done = store->records().size();
    fprintf(stderr,
            "rix resume: %s: %zu of %llu jobs journaled (%llu torn "
            "bytes recovered)\n",
            store_path.c_str(), done,
            (unsigned long long)meta.numJobs,
            (unsigned long long)rec.droppedBytes);

    const ScenarioResults res = runScenario(spec, policy, store.get());
    return renderBuffered(spec, res, out);
}

} // namespace rix
