#include "trace/profiler.hh"

#include "base/stats.hh"

namespace rix
{

const char *
hostPhaseName(HostPhase phase)
{
    switch (phase) {
      case HostPhase::Decode: return "decode";
      case HostPhase::CheckpointBuild: return "checkpoint_build";
      case HostPhase::CheckpointRestore: return "checkpoint_restore";
      case HostPhase::FastForward: return "fast_forward";
      case HostPhase::DetailedSim: return "detailed_sim";
      case HostPhase::StoreJournal: return "store_journal";
      case HostPhase::ServeRequest: return "serve_request";
    }
    return "?";
}

void
HostProfiler::reset()
{
    for (unsigned i = 0; i < numHostPhases; ++i) {
        ns_[i].store(0, std::memory_order_relaxed);
        calls_[i].store(0, std::memory_order_relaxed);
    }
}

void
HostProfiler::exportTo(StatSet &out) const
{
    for (unsigned i = 0; i < numHostPhases; ++i) {
        const HostPhase p = HostPhase(i);
        out.set(std::string("host_") + hostPhaseName(p) + "_s",
                double(nanos(p)) / 1e9);
        out.set(std::string("host_") + hostPhaseName(p) + "_calls",
                double(calls(p)));
    }
}

HostProfiler &
hostProfiler()
{
    static HostProfiler prof;
    return prof;
}

} // namespace rix
