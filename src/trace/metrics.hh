/**
 * @file
 * Interval time-series metrics: periodic CoreStats-delta sampling.
 *
 * End-of-run aggregates can't show *when* a configuration wins — a
 * burst of misintegrations in one phase looks identical to a uniform
 * trickle. The recorder snapshots the full CoreStats block (plus the
 * substrate miss counters) every N simulated cycles and keeps the
 * per-interval deltas; each interval renders as one StatRegistry row
 * (JSON lines), so the time series uses the exact same column names as
 * the end-of-run export and the rows sum to the aggregate counters
 * (enforced by tests/test_trace.cc).
 *
 * Attachment mirrors the trace sink: the Core holds a null recorder
 * pointer when metrics are off and pays one pointer test per cycle in
 * the run loop (next to the cancellation poll). Sampling reads
 * counters the simulation already maintains; simulated state is
 * untouched.
 *
 * Spec block (scenario JSON) / env override:
 *
 *   "metrics": { "every": 10000, "out": "metrics.jsonl" }
 *
 * RIX_METRICS_EVERY overrides (and enables) the interval; it must be a
 * strictly positive decimal (garbage, 0, trailing junk: fatal).
 */

#ifndef RIX_TRACE_METRICS_HH
#define RIX_TRACE_METRICS_HH

#include <string>
#include <vector>

#include "cpu/core_stats.hh"

namespace rix
{

class StatRegistry;

/** Substrate miss counters sampled alongside CoreStats. */
struct MetricsMemCounters
{
    u64 l1d = 0;
    u64 l1i = 0;
    u64 l2 = 0;
    u64 dtlb = 0;
    u64 itlb = 0;
};

/**
 * Accumulates one run's interval deltas. Single-run, single-thread
 * (each SimJob owns its own); begin() re-arms it, so a retried job
 * attempt starts a fresh series.
 */
class MetricsRecorder
{
  public:
    explicit MetricsRecorder(u64 every);

    u64 every() const { return every_; }

    struct Interval
    {
        u64 cycleStart = 0;
        u64 cycleEnd = 0;       // exclusive
        CoreStats delta;        // counter deltas over [start, end)
        MetricsMemCounters mem; // miss deltas over [start, end)
    };

    /** Re-arm at the current counters: deltas accumulate from here. */
    void begin(const CoreStats &now, const MetricsMemCounters &mem);

    /**
     * Close the interval ending at the current counters. A no-op when
     * no cycles elapsed since the previous sample (run-exit flush
     * after an exact boundary sample).
     */
    void sample(const CoreStats &now, const MetricsMemCounters &mem);

    const std::vector<Interval> &intervals() const { return rows_; }

    /**
     * Append one row per interval to @p reg, labeled with the caller's
     * (label, value) pairs plus "interval"; stats are the CoreStats
     * export of the delta plus cycle_start/cycle_end and the miss
     * deltas — the same names as the end-of-run report columns.
     */
    void exportRows(
        StatRegistry &reg,
        const std::vector<std::pair<std::string, std::string>> &labels)
        const;

    /**
     * Render the rows as JSON lines into @p path.
     * @return false with *err set on I/O failure.
     */
    bool writeJsonl(
        const std::string &path,
        const std::vector<std::pair<std::string, std::string>> &labels,
        std::string *err) const;

  private:
    u64 every_;
    CoreStats prev_{};
    MetricsMemCounters prevMem_{};
    std::vector<Interval> rows_;
};

/** Metrics block of a scenario spec, after parsing and env overrides. */
struct MetricsConfig
{
    bool enabled = false;
    u64 every = 10'000;     // simulated cycles per interval
    std::string out = "rix_metrics.jsonl";
};

/** Apply the RIX_METRICS_EVERY knob (strict positive) over @p cfg. */
MetricsConfig applyMetricsEnv(MetricsConfig cfg);

} // namespace rix

#endif // RIX_TRACE_METRICS_HH
