/**
 * @file
 * Microarchitectural coverage maps for coverage-guided fuzzing.
 *
 * A CoverageMap is a fixed-size bitmap summarizing which
 * microarchitectural paths one simulation actually exercised. It has
 * two sections:
 *
 *  - Section A (word 0): discrete event bits set by live taps inside
 *    the core — integration outcomes by type/distance/status/refcount
 *    at retirement, LISP and oracle suppressions, branch-outcome
 *    integration and rename-time redirects, mis-integration kinds,
 *    squash causes, direction-predictor (predicted, actual) edges at
 *    retirement, and retire/writeback edge cases (sp-base loads, CHT
 *    decrements, write-buffer stalls, HALT, text-segment faults).
 *    The top bits classify how a fuzz run failed; the fuzz driver
 *    sets them after the run from the structured outcome.
 *
 *  - Section B (bits kStatsBase..): one-hot log2 buckets of the
 *    CoreStats counters, folded in by harvestStats() after the run —
 *    order-of-magnitude coverage of squash churn, mispredict volume,
 *    integration rates and the like, without per-event hot-path cost.
 *
 * A Core carries a nullable CoverageMap pointer with the same
 * zero-overhead discipline as the tracer and the lockstep checker:
 * when detached the only hot-path cost is one pointer test at the tap
 * sites, and attaching a map never changes simulated state — cycles,
 * retired counts and every CoreStats field are bit-identical with
 * coverage on or off.
 *
 * Maps order/equality/signature are pure functions of the run, which
 * is what makes guided fuzz campaigns bit-reproducible across job
 * counts: maps are folded into the campaign union in deterministic
 * program order, never in thread completion order.
 */

#ifndef RIX_TRACE_COVERAGE_HH
#define RIX_TRACE_COVERAGE_HH

#include <cstddef>
#include <string>

#include "base/types.hh"

namespace rix
{

struct CoreStats;

/** Section-A event bits (word 0 of the map). */
enum CovEvent : unsigned
{
    // Integration outcome at retirement, [bucket][0=direct 1=reverse].
    kCovIntegType = 0,      // 10 bits: type (5 Figure-5 classes) * 2 + r
    kCovIntegDistance = 10, // 12 bits: distance bucket (6) * 2 + r
    kCovIntegStatus = 22,   //  8 bits: status (4) * 2 + r
    kCovIntegRefcount = 30, //  8 bits: refcount bucket (4) * 2 + r

    // Rename-time integration paths.
    kCovLispSuppress = 38,   // realistic LISP vetoed a candidate
    kCovOracleSuppress = 39, // oracle vetoed a provably wrong match
    kCovIntegBranch = 40,    // branch-outcome integration fired
    kCovRenameRedirect = 41, // integrated branch redirected fetch

    // Mis-integration recovery at retirement.
    kCovMisintLoad = 42,
    kCovMisintBranch = 43,
    kCovMisintRegister = 44,
    kCovLispTrain = 45, // realistic LISP trained on a misint load

    // Squash causes.
    kCovSquashBranch = 46,
    kCovSquashMemOrder = 47,
    kCovSquashMisint = 48,

    // Direction-predictor edges observed at retirement:
    // predTaken * 2 + actualTaken.
    kCovBranchEdge = 49, // 4 bits
    kCovMispredictRetired = 53,

    // Retire/writeback edge cases.
    kCovRetireSpLoad = 54,
    kCovRetireChtDecrement = 55, // speculative-past-store load retired
    kCovRetireWbStall = 56,      // store retire stalled on write buffer
    kCovRetireHalt = 57,
    kCovTextFault = 58, // retiring store hit the text segment

    // Failure classes (set by the fuzz driver from the run outcome).
    kCovFailValue = 59,
    kCovFailPcStream = 60,
    kCovFailShadow = 61,
    kCovFailStuckWatchdog = 62,
    kCovFailStuckTextFault = 63,

    kCovEventBits = 64, // end of section A
};

class CoverageMap
{
  public:
    static constexpr size_t kBits = 512;
    static constexpr size_t kWords = kBits / 64;

    /** First Section-B bit; each harvested counter owns 16 bits. */
    static constexpr unsigned kStatsBase = kCovEventBits;
    static constexpr unsigned kBitsPerCounter = 16;

    void clear();

    void
    set(unsigned bit)
    {
        words_[bit / 64] |= u64(1) << (bit % 64);
    }

    bool
    test(unsigned bit) const
    {
        return (words_[bit / 64] >> (bit % 64)) & 1;
    }

    /** Fold the log2-bucketed CoreStats counters into section B. */
    void harvestStats(const CoreStats &s);

    /**
     * OR this map into @p into.
     * @return true when @p into gained at least one new bit.
     */
    bool orInto(CoverageMap &into) const;

    /** Number of set bits. */
    size_t popcount() const;

    /** FNV-1a hash of the whole map (campaign determinism checks). */
    u64 signature() const;

    /** The five failure-class bits (kCovFailValue..), as a small int. */
    unsigned failureClassBits() const;

    /** Section A (the discrete event bits) as one word — the stable
     *  part failure fingerprints hash (section B's magnitude buckets
     *  vary with program size and would defeat dedupe). */
    u64 eventWord() const { return words_[0]; }

    /** Fixed-width lowercase hex rendering (kWords * 16 digits). */
    std::string toHex() const;

    /** Parse toHex() output. @return false on malformed input. */
    bool fromHex(const std::string &hex);

    bool operator==(const CoverageMap &o) const;
    bool operator!=(const CoverageMap &o) const { return !(*this == o); }

  private:
    u64 words_[kWords] = {};
};

} // namespace rix

#endif // RIX_TRACE_COVERAGE_HH
