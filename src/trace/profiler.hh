/**
 * @file
 * Host-phase profiler: where does `rix` itself spend wall time?
 *
 * The simulated machine has the stats registry; the *host* process had
 * nothing — a slow sweep could be decode-bound, checkpoint-bound or
 * journal-bound and look identical from the outside. This profiler
 * aggregates wall time into a handful of coarse phases (program decode,
 * checkpoint build/restore, functional fast-forward, detailed
 * simulation, store journaling, serve request handling) behind scoped
 * RAII timers.
 *
 * Discipline matches the other observability taps: disabled by default,
 * and a disarmed ScopedPhase costs one relaxed atomic load — no clock
 * reads, no stores. Phases are attributed where the work happens, so
 * they can nest (a serve request contains decode + sim time); the
 * columns answer "how much wall time did phase X consume", not "do the
 * phases sum to the run time".
 *
 * Enabled by the scenario spec's `"profile": true`, by `rix serve`
 * (always — the daemon is long-lived, the cost is a clock read per
 * phase entry), or programmatically. Exported as `host_<phase>_s` /
 * `host_<phase>_calls` through exportReport (when enabled) and the
 * serve `stats` op.
 */

#ifndef RIX_TRACE_PROFILER_HH
#define RIX_TRACE_PROFILER_HH

#include <atomic>
#include <chrono>

#include "base/types.hh"

namespace rix
{

class StatSet;

enum class HostPhase : unsigned
{
    Decode,            // Program -> DecodedProgram build
    CheckpointBuild,   // Emulator::snapshot
    CheckpointRestore, // Emulator::restore (golden, lockstep, ff seed)
    FastForward,       // functional emulation up to a checkpoint icount
    DetailedSim,       // Core::run (warmup + measure)
    StoreJournal,      // result-store append + commit
    ServeRequest,      // serve request handling, admission to response
};

constexpr unsigned numHostPhases = 7;

const char *hostPhaseName(HostPhase phase);

/** Process-wide aggregation: per-phase total nanoseconds and entries. */
class HostProfiler
{
  public:
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    void
    setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }

    void
    add(HostPhase phase, u64 nanos)
    {
        const auto i = unsigned(phase);
        ns_[i].fetch_add(nanos, std::memory_order_relaxed);
        calls_[i].fetch_add(1, std::memory_order_relaxed);
    }

    u64
    nanos(HostPhase phase) const
    {
        return ns_[unsigned(phase)].load(std::memory_order_relaxed);
    }

    u64
    calls(HostPhase phase) const
    {
        return calls_[unsigned(phase)].load(std::memory_order_relaxed);
    }

    void reset();

    /** "host_<phase>_s" (seconds) and "host_<phase>_calls" per phase. */
    void exportTo(StatSet &out) const;

  private:
    std::atomic<bool> enabled_{false};
    std::atomic<u64> ns_[numHostPhases]{};
    std::atomic<u64> calls_[numHostPhases]{};
};

/** The process-wide profiler every ScopedPhase reports into. */
HostProfiler &hostProfiler();

/** RAII timer attributing its scope's wall time to one phase. */
class ScopedPhase
{
  public:
    explicit ScopedPhase(HostPhase phase)
    {
        if (hostProfiler().enabled()) {
            active_ = true;
            phase_ = phase;
            t0_ = std::chrono::steady_clock::now();
        }
    }

    ~ScopedPhase()
    {
        if (active_) {
            const auto dt = std::chrono::steady_clock::now() - t0_;
            hostProfiler().add(
                phase_,
                u64(std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                        .count()));
        }
    }

    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

  private:
    bool active_ = false;
    HostPhase phase_ = HostPhase::Decode;
    std::chrono::steady_clock::time_point t0_;
};

} // namespace rix

#endif // RIX_TRACE_PROFILER_HH
