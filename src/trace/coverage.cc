#include "trace/coverage.hh"

#include <cstring>

#include "cpu/core_stats.hh"

namespace rix
{

void
CoverageMap::clear()
{
    std::memset(words_, 0, sizeof(words_));
}

namespace
{

/** 0 for a zero counter, else 1 + floor(log2(v)) clamped to 15. */
unsigned
logBucket(u64 v)
{
    if (v == 0)
        return 0;
    unsigned b = 0;
    while (v >>= 1)
        ++b;
    return b >= 15 ? 15 : b + 1;
}

} // namespace

void
CoverageMap::harvestStats(const CoreStats &s)
{
    // One 16-bit region per counter, in a fixed order; appending to
    // this list is compatible with old maps (new bits only).
    const u64 counters[] = {
        s.cycles,          s.fetched,
        s.renamed,         s.issued,
        s.issuedLoads,     s.retired,
        s.retiredLoads,    s.retiredStores,
        s.retiredBranches, s.integratedDirect,
        s.integratedReverse, s.retiredSpLoads,
        s.misintegrations, s.oracleSuppressions,
        s.lispFalseCandidates, s.branchMispredicts,
        s.retiredMispredicts, s.memOrderViolations,
        s.squashedInsts,   s.squashesBranch,
        s.squashesMemOrder, s.squashesMisint,
    };
    static_assert(kStatsBase +
                      (sizeof(counters) / sizeof(counters[0])) *
                          kBitsPerCounter <=
                  kBits,
                  "coverage map too small for the harvested counters");
    unsigned base = kStatsBase;
    for (u64 v : counters) {
        set(base + logBucket(v));
        base += kBitsPerCounter;
    }
}

bool
CoverageMap::orInto(CoverageMap &into) const
{
    bool grew = false;
    for (size_t w = 0; w < kWords; ++w) {
        const u64 merged = into.words_[w] | words_[w];
        grew = grew || merged != into.words_[w];
        into.words_[w] = merged;
    }
    return grew;
}

size_t
CoverageMap::popcount() const
{
    size_t n = 0;
    for (u64 w : words_)
        n += size_t(__builtin_popcountll(w));
    return n;
}

u64
CoverageMap::signature() const
{
    // FNV-1a over the words in index order, byte by byte — the same
    // construction the result store uses for spec hashes.
    u64 h = 14695981039346656037ull;
    for (u64 w : words_) {
        for (int b = 0; b < 8; ++b) {
            h ^= (w >> (8 * b)) & 0xff;
            h *= 1099511628211ull;
        }
    }
    return h;
}

unsigned
CoverageMap::failureClassBits() const
{
    return unsigned(words_[kCovFailValue / 64] >> (kCovFailValue % 64)) &
           0x1f;
}

std::string
CoverageMap::toHex() const
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(kWords * 16);
    for (u64 w : words_)
        for (int shift = 60; shift >= 0; shift -= 4)
            out.push_back(digits[(w >> shift) & 0xf]);
    return out;
}

bool
CoverageMap::fromHex(const std::string &hex)
{
    if (hex.size() != kWords * 16)
        return false;
    u64 parsed[kWords] = {};
    for (size_t i = 0; i < hex.size(); ++i) {
        const char c = hex[i];
        unsigned v;
        if (c >= '0' && c <= '9')
            v = unsigned(c - '0');
        else if (c >= 'a' && c <= 'f')
            v = unsigned(c - 'a' + 10);
        else
            return false;
        parsed[i / 16] = (parsed[i / 16] << 4) | v;
    }
    std::memcpy(words_, parsed, sizeof(words_));
    return true;
}

bool
CoverageMap::operator==(const CoverageMap &o) const
{
    return std::memcmp(words_, o.words_, sizeof(words_)) == 0;
}

} // namespace rix
