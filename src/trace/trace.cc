#include "trace/trace.hh"

#include <algorithm>
#include <cstdlib>

#include "base/env.hh"
#include "base/log.hh"

namespace rix
{

const char *
squashCauseName(SquashCause cause)
{
    switch (cause) {
      case SquashCause::None: return "none";
      case SquashCause::Branch: return "branch";
      case SquashCause::MemOrder: return "mem_order";
      case SquashCause::Misintegration: return "misintegration";
    }
    return "?";
}

TraceEvent
makeTraceEvent(const DynInst &di, Cycle now, bool retired,
               SquashCause cause, u64 retire_index)
{
    TraceEvent ev;
    ev.seq = di.seq;
    ev.pc = di.pc;
    ev.inst = di.inst;

    // Clamp into a monotone staircase: a stage an instruction never
    // reached (or that was stamped in the same cycle as its
    // predecessor) inherits the previous stage's cycle. The raw stamps
    // stay untouched on the DynInst.
    ev.fetch = di.fetchCycle;
    ev.decode = std::max(ev.fetch, di.renameReadyCycle);
    ev.rename = std::max(ev.decode, di.renameCycle);
    ev.issue = std::max(ev.rename, di.issueCycle);
    ev.complete = std::max(ev.issue, di.completeCycle);
    ev.retire = std::max(ev.complete, now);

    ev.retired = retired;
    ev.retireIndex = retired ? retire_index : 0;
    ev.cause = retired ? SquashCause::None : cause;

    ev.issued = di.issued;
    ev.integrated = di.integrated;
    ev.reverseIntegrated = di.reverseIntegrated;
    ev.integStatus = di.integStatus;
    ev.mispredicted = di.mispredicted;
    return ev;
}

FileTraceSink::~FileTraceSink()
{
    if (f_)
        fclose(f_);
}

void
FileTraceSink::flush()
{
    if (f_)
        fflush(f_);
}

void
KonataTraceSink::write(const TraceEvent &ev)
{
    fprintf(f_, "O3PipeView:fetch:%llu:0x%08llx:0:%llu:%s\n",
            (unsigned long long)ev.fetch, (unsigned long long)ev.pc,
            (unsigned long long)ev.seq, disassemble(ev.inst).c_str());
    fprintf(f_, "O3PipeView:decode:%llu\n", (unsigned long long)ev.decode);
    fprintf(f_, "O3PipeView:rename:%llu\n", (unsigned long long)ev.rename);
    fprintf(f_, "O3PipeView:dispatch:%llu\n",
            (unsigned long long)ev.rename);
    fprintf(f_, "O3PipeView:issue:%llu\n", (unsigned long long)ev.issue);
    fprintf(f_, "O3PipeView:complete:%llu\n",
            (unsigned long long)ev.complete);
    // Retire cycle 0 marks a flushed (squashed) instruction — the
    // viewer's convention for wrong-path work.
    fprintf(f_, "O3PipeView:retire:%llu:store:0\n",
            (unsigned long long)(ev.retired ? ev.retire : 0));
}

namespace
{

/** Minimal JSON string escape (disassembly is plain ASCII). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if ((unsigned char)c < 0x20) {
            char buf[8];
            snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
            continue;
        }
        out += c;
    }
    return out;
}

const char *
integKindName(const TraceEvent &ev)
{
    if (!ev.integrated)
        return "none";
    return ev.reverseIntegrated ? "reverse" : "direct";
}

const char *
integStatusName(IntegStatus st)
{
    switch (st) {
      case IntegStatus::None: return "none";
      case IntegStatus::Rename: return "rename";
      case IntegStatus::Issue: return "issue";
      case IntegStatus::Retire: return "retire";
      case IntegStatus::ShadowSquash: return "shadow";
    }
    return "?";
}

} // namespace

void
JsonlTraceSink::write(const TraceEvent &ev)
{
    fprintf(f_,
            "{\"seq\": %llu, \"pc\": %llu, \"disasm\": \"%s\", "
            "\"fetch\": %llu, \"decode\": %llu, \"rename\": %llu, "
            "\"issue\": %llu, \"complete\": %llu, \"retire\": %llu, "
            "\"retired\": %s, \"retire_index\": %llu, "
            "\"squash_cause\": \"%s\", \"issued\": %s, "
            "\"integ\": \"%s\", \"integ_status\": \"%s\", "
            "\"mispredicted\": %s}\n",
            (unsigned long long)ev.seq, (unsigned long long)ev.pc,
            jsonEscape(disassemble(ev.inst)).c_str(),
            (unsigned long long)ev.fetch, (unsigned long long)ev.decode,
            (unsigned long long)ev.rename, (unsigned long long)ev.issue,
            (unsigned long long)ev.complete,
            (unsigned long long)ev.retire, ev.retired ? "true" : "false",
            (unsigned long long)ev.retireIndex, squashCauseName(ev.cause),
            ev.issued ? "true" : "false", integKindName(ev),
            integStatusName(ev.integStatus),
            ev.mispredicted ? "true" : "false");
}

bool
traceFormatValid(const std::string &format)
{
    return format == "konata" || format == "jsonl";
}

std::unique_ptr<TraceSink>
openTraceSink(const TraceConfig &cfg, const std::string &path,
              std::string *err)
{
    FILE *f = fopen(path.c_str(), "w");
    if (!f) {
        if (err)
            *err = "cannot open trace output '" + path + "'";
        return nullptr;
    }
    if (cfg.format == "jsonl")
        return std::make_unique<JsonlTraceSink>(f);
    return std::make_unique<KonataTraceSink>(f);
}

namespace
{

/** True iff @p path names a JSON-lines trace by extension. */
bool
endsWithJsonl(const std::string &path)
{
    static const std::string ext = ".jsonl";
    return path.size() >= ext.size() &&
           path.compare(path.size() - ext.size(), ext.size(), ext) == 0;
}

} // namespace

TraceConfig
applyTraceEnv(TraceConfig cfg)
{
    if (const char *v = getenv("RIX_TRACE")) {
        if (!*v)
            rix_fatal("RIX_TRACE must name a trace output file "
                      "(got an empty value)");
        cfg.enabled = true;
        cfg.out = v;
        cfg.format = endsWithJsonl(cfg.out) ? "jsonl" : "konata";
    }
    if (const char *v = getenv("RIX_TRACE_START"))
        cfg.start = parseNonNegativeCount("RIX_TRACE_START", v);
    if (const char *v = getenv("RIX_TRACE_COUNT"))
        cfg.count = parsePositiveCount("RIX_TRACE_COUNT", v);
    return cfg;
}

} // namespace rix
