#include "trace/metrics.hh"

#include <cstdlib>

#include "base/env.hh"
#include "base/log.hh"

namespace rix
{

MetricsRecorder::MetricsRecorder(u64 every) : every_(every)
{
    if (!every_)
        rix_fatal("MetricsRecorder: interval must be positive");
}

void
MetricsRecorder::begin(const CoreStats &now, const MetricsMemCounters &mem)
{
    prev_ = now;
    prevMem_ = mem;
    rows_.clear();
}

void
MetricsRecorder::sample(const CoreStats &now, const MetricsMemCounters &mem)
{
    if (now.cycles == prev_.cycles)
        return; // exact-boundary flush: nothing elapsed
    Interval iv;
    iv.cycleStart = prev_.cycles;
    iv.cycleEnd = now.cycles;
    iv.delta = now;
    CoreStats::subtract(iv.delta, prev_);
    iv.mem.l1d = mem.l1d - prevMem_.l1d;
    iv.mem.l1i = mem.l1i - prevMem_.l1i;
    iv.mem.l2 = mem.l2 - prevMem_.l2;
    iv.mem.dtlb = mem.dtlb - prevMem_.dtlb;
    iv.mem.itlb = mem.itlb - prevMem_.itlb;
    rows_.push_back(std::move(iv));
    prev_ = now;
    prevMem_ = mem;
}

void
MetricsRecorder::exportRows(
    StatRegistry &reg,
    const std::vector<std::pair<std::string, std::string>> &labels) const
{
    for (size_t i = 0; i < rows_.size(); ++i) {
        const Interval &iv = rows_[i];
        StatRegistry::Row &row = reg.addRow();
        for (const auto &kv : labels)
            row.label(kv.first, kv.second);
        row.label("interval", std::to_string(i));
        iv.delta.exportTo(row.stats);
        row.stats.set("cycle_start", double(iv.cycleStart));
        row.stats.set("cycle_end", double(iv.cycleEnd));
        row.stats.set("l1d_misses", double(iv.mem.l1d));
        row.stats.set("l1i_misses", double(iv.mem.l1i));
        row.stats.set("l2_misses", double(iv.mem.l2));
        row.stats.set("dtlb_misses", double(iv.mem.dtlb));
        row.stats.set("itlb_misses", double(iv.mem.itlb));
    }
}

bool
MetricsRecorder::writeJsonl(
    const std::string &path,
    const std::vector<std::pair<std::string, std::string>> &labels,
    std::string *err) const
{
    StatRegistry reg;
    exportRows(reg, labels);
    FILE *f = fopen(path.c_str(), "w");
    if (!f) {
        if (err)
            *err = "cannot open metrics output '" + path + "'";
        return false;
    }
    reg.writeJsonLines(f);
    const bool ok = fflush(f) == 0 && !ferror(f);
    fclose(f);
    if (!ok && err)
        *err = "write failed on metrics output '" + path + "'";
    return ok;
}

MetricsConfig
applyMetricsEnv(MetricsConfig cfg)
{
    if (const char *v = getenv("RIX_METRICS_EVERY")) {
        cfg.every = parsePositiveCount("RIX_METRICS_EVERY", v);
        cfg.enabled = true;
    }
    return cfg;
}

} // namespace rix
