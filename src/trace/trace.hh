/**
 * @file
 * Per-instruction pipeline tracing.
 *
 * Every DynInst already carries its stage timestamps (fetch, decode
 * exit, rename, issue, complete) as part of normal simulation; the
 * tracer adds no hot-path writes. When a sink is attached to a Core,
 * each instruction leaving the pipeline — retired at the ROB head or
 * squashed on a recovery walk — is folded into one TraceEvent and
 * emitted, bounded by a retired-instruction window [start, start+count)
 * so trace files stay finite on long runs.
 *
 * Two exporters:
 *
 *  - KonataTraceSink: gem5 O3PipeView-compatible text, directly
 *    loadable by the Konata pipeline viewer. One record per
 *    instruction:
 *
 *        O3PipeView:fetch:<cycle>:0x<pc>:0:<seq>:<disasm>
 *        O3PipeView:decode:<cycle>
 *        O3PipeView:rename:<cycle>
 *        O3PipeView:dispatch:<cycle>
 *        O3PipeView:issue:<cycle>
 *        O3PipeView:complete:<cycle>
 *        O3PipeView:retire:<cycle>:store:0
 *
 *    Squashed instructions carry retire cycle 0 (the viewer renders
 *    them as flushed).
 *
 *  - JsonlTraceSink: one self-describing JSON object per line, with
 *    the integration / LISP / DIVA annotations (integration kind and
 *    producer status, misintegration flag, squash cause) for tooling.
 *
 * Zero-overhead when off: the Core holds a null sink pointer and pays
 * one pointer test per retired instruction — the same discipline as
 * the lockstep checker. Tracing never touches simulated state; cycles,
 * retired counts and every other CoreStats field are bit-identical
 * with tracing on or off (enforced by tests/test_trace.cc and the CI
 * zero-overhead guard).
 */

#ifndef RIX_TRACE_TRACE_HH
#define RIX_TRACE_TRACE_HH

#include <cstdio>
#include <memory>
#include <string>

#include "cpu/dyn_inst.hh"

namespace rix
{

/** One instruction leaving the pipeline, with clamped stage cycles. */
struct TraceEvent
{
    InstSeqNum seq = 0;
    InstAddr pc = 0;
    Instruction inst;

    // Stage cycles, normalized to be monotonically non-decreasing
    // (fetch <= decode <= rename <= issue <= complete <= retire).
    // Instructions that skipped a stage (integrated instructions never
    // issue; squashed ones may die before rename) inherit the previous
    // stage's cycle; `issued` distinguishes a real issue from the
    // integration shortcut.
    Cycle fetch = 0;
    Cycle decode = 0;
    Cycle rename = 0;
    Cycle issue = 0;
    Cycle complete = 0;
    Cycle retire = 0;

    bool retired = false;      // false: squashed on a recovery walk
    u64 retireIndex = 0;       // 0-based retire-stream position (retired)
    SquashCause cause = SquashCause::None; // squashed only

    // Annotations: register integration (paper mechanism), DIVA.
    bool issued = false;
    bool integrated = false;
    bool reverseIntegrated = false;
    IntegStatus integStatus = IntegStatus::None;
    bool mispredicted = false;
};

/** Build the (monotonic) event for an instruction leaving at @p now. */
TraceEvent makeTraceEvent(const DynInst &di, Cycle now, bool retired,
                          SquashCause cause, u64 retire_index);

/**
 * Where trace events go. emit() keeps per-sink counters and forwards
 * to the format-specific write(); sinks are single-run, single-thread
 * objects (each SimJob owns its own).
 */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    void
    emit(const TraceEvent &ev)
    {
        ++nEvents_;
        if (ev.retired)
            ++nRetired_;
        else
            ++nSquashed_;
        write(ev);
    }

    virtual void flush() {}

    u64 numEvents() const { return nEvents_; }
    u64 numRetired() const { return nRetired_; }
    u64 numSquashed() const { return nSquashed_; }

  protected:
    virtual void write(const TraceEvent &ev) = 0;

  private:
    u64 nEvents_ = 0;
    u64 nRetired_ = 0;
    u64 nSquashed_ = 0;
};

/** Shared FILE-owning base of the two text exporters. */
class FileTraceSink : public TraceSink
{
  public:
    ~FileTraceSink() override;
    void flush() override;

  protected:
    explicit FileTraceSink(FILE *f) : f_(f) {}
    FILE *f_;
};

/** Konata / gem5-O3PipeView text. */
class KonataTraceSink : public FileTraceSink
{
  public:
    /** Takes ownership of @p f (also accepts stdout-like handles the
     *  caller keeps via `owns=false` semantics of open()). */
    explicit KonataTraceSink(FILE *f) : FileTraceSink(f) {}

  protected:
    void write(const TraceEvent &ev) override;
};

/** One JSON object per event. */
class JsonlTraceSink : public FileTraceSink
{
  public:
    explicit JsonlTraceSink(FILE *f) : FileTraceSink(f) {}

  protected:
    void write(const TraceEvent &ev) override;
};

/**
 * Trace block of a scenario spec / the `rix trace` subcommand, after
 * parsing and env overrides.
 */
struct TraceConfig
{
    bool enabled = false;
    u64 start = 0;          // first retired-instruction index to trace
    u64 count = 100'000;    // window length in retired instructions
    std::string format = "konata"; // "konata" | "jsonl"
    std::string out = "rix_trace.txt";

    /** start + count, saturating. */
    u64
    end() const
    {
        return count > ~u64(0) - start ? ~u64(0) : start + count;
    }
};

/** True iff @p format names a known exporter. */
bool traceFormatValid(const std::string &format);

/**
 * Open a file sink per @p cfg at @p path (usually cfg.out, possibly
 * suffixed per job). Returns null with *err set on open failure.
 */
std::unique_ptr<TraceSink> openTraceSink(const TraceConfig &cfg,
                                         const std::string &path,
                                         std::string *err);

/**
 * Apply the RIX_TRACE / RIX_TRACE_START / RIX_TRACE_COUNT environment
 * knobs over @p cfg. RIX_TRACE names the output file and enables
 * tracing (fatal when empty); a ".jsonl" suffix selects the JSON-lines
 * exporter, anything else Konata text. START must be a non-negative
 * and COUNT a strictly positive decimal — garbage, trailing junk, and
 * COUNT=0 are fatal, naming the variable (base/env conventions).
 */
TraceConfig applyTraceEnv(TraceConfig cfg);

} // namespace rix

#endif // RIX_TRACE_TRACE_HH
