/**
 * @file
 * Statistics collected by the out-of-order core — everything the
 * paper's evaluation section reports: integration rates by kind/type/
 * distance/status/refcount (Figures 4 and 5), mis-integration counts,
 * mispredict resolution latency, reservation-station occupancy, fetch
 * and execution stream sizes.
 */

#ifndef RIX_CPU_CORE_STATS_HH
#define RIX_CPU_CORE_STATS_HH

#include "base/stats.hh"
#include "base/types.hh"

namespace rix
{

struct CoreStats
{
    // Progress.
    u64 cycles = 0;
    u64 fetched = 0;
    u64 renamed = 0;
    u64 issued = 0;          // instructions executed by the OoO engine
    u64 issuedLoads = 0;
    u64 retired = 0;
    u64 retiredLoads = 0;
    u64 retiredStores = 0;
    u64 retiredBranches = 0;

    // Integration, counted at retirement (paper methodology).
    u64 integratedDirect = 0;
    u64 integratedReverse = 0;

    // Figure 5 breakdowns: [category][0=direct, 1=reverse].
    // Type: 0 load-sp, 1 load, 2 ALU, 3 branch, 4 FP.
    u64 integByType[5][2] = {};
    // Distance buckets: <=4, <=16, <=64, <=256, <=1024, >1024.
    u64 integByDistance[6][2] = {};
    // Status: 0 rename, 1 issue, 2 retire, 3 shadow/squash.
    u64 integByStatus[4][2] = {};
    // Refcount-after buckets: ==1, <=3, <=7, <=15.
    u64 integByRefcount[4][2] = {};

    // Retired loads that used the stack pointer as base (type denom).
    u64 retiredSpLoads = 0;

    // Mis-integration accounting.
    u64 misintegrations = 0;
    u64 misintLoads = 0;
    u64 misintRegisters = 0;
    u64 misintBranches = 0;
    u64 oracleSuppressions = 0;
    u64 lispFalseCandidates = 0; // matches vetoed by the realistic LISP

    // Speculation.
    u64 branchMispredicts = 0;       // detected at resolution
    u64 retiredMispredicts = 0;      // mispredicted branches that retired
    u64 mispredResolveLatSum = 0;    // fetch->resolution cycles, retired
    u64 memOrderViolations = 0;
    u64 squashedInsts = 0;
    u64 squashesBranch = 0;
    u64 squashesMemOrder = 0;
    u64 squashesMisint = 0;

    // Occupancy (per-cycle sums; divide by cycles).
    u64 rsOccupancySum = 0;
    u64 robOccupancySum = 0;

    double
    ipc() const
    {
        return cycles ? double(retired) / double(cycles) : 0.0;
    }

    u64
    integrated() const
    {
        return integratedDirect + integratedReverse;
    }

    /** Retired-instruction integration rate (fraction, 0..1). */
    double
    integrationRate() const
    {
        return retired ? double(integrated()) / double(retired) : 0.0;
    }

    double
    misintPerMillion() const
    {
        return retired ? 1e6 * double(misintegrations) / double(retired)
                       : 0.0;
    }

    double
    avgMispredResolveLat() const
    {
        return retiredMispredicts
                   ? double(mispredResolveLatSum) /
                         double(retiredMispredicts)
                   : 0.0;
    }

    double
    avgRsOccupancy() const
    {
        return cycles ? double(rsOccupancySum) / double(cycles) : 0.0;
    }

    /** Export everything into a named StatSet. */
    void exportTo(StatSet &out) const;

    /**
     * Apply @p op to every (a-field, b-field) counter pair — the one
     * place the field list is spelled out, shared by the sampled-
     * simulation delta (discard warmup stats) and merge (sum measured
     * intervals) paths. Every field is a plain u64 counter/sum, so
     * subtraction and addition are both exact.
     */
    template <class Op>
    static void
    zip(CoreStats &a, const CoreStats &b, Op op)
    {
        op(a.cycles, b.cycles);
        op(a.fetched, b.fetched);
        op(a.renamed, b.renamed);
        op(a.issued, b.issued);
        op(a.issuedLoads, b.issuedLoads);
        op(a.retired, b.retired);
        op(a.retiredLoads, b.retiredLoads);
        op(a.retiredStores, b.retiredStores);
        op(a.retiredBranches, b.retiredBranches);
        op(a.integratedDirect, b.integratedDirect);
        op(a.integratedReverse, b.integratedReverse);
        for (int i = 0; i < 5; ++i)
            for (int j = 0; j < 2; ++j)
                op(a.integByType[i][j], b.integByType[i][j]);
        for (int i = 0; i < 6; ++i)
            for (int j = 0; j < 2; ++j)
                op(a.integByDistance[i][j], b.integByDistance[i][j]);
        for (int i = 0; i < 4; ++i)
            for (int j = 0; j < 2; ++j)
                op(a.integByStatus[i][j], b.integByStatus[i][j]);
        for (int i = 0; i < 4; ++i)
            for (int j = 0; j < 2; ++j)
                op(a.integByRefcount[i][j], b.integByRefcount[i][j]);
        op(a.retiredSpLoads, b.retiredSpLoads);
        op(a.misintegrations, b.misintegrations);
        op(a.misintLoads, b.misintLoads);
        op(a.misintRegisters, b.misintRegisters);
        op(a.misintBranches, b.misintBranches);
        op(a.oracleSuppressions, b.oracleSuppressions);
        op(a.lispFalseCandidates, b.lispFalseCandidates);
        op(a.branchMispredicts, b.branchMispredicts);
        op(a.retiredMispredicts, b.retiredMispredicts);
        op(a.mispredResolveLatSum, b.mispredResolveLatSum);
        op(a.memOrderViolations, b.memOrderViolations);
        op(a.squashedInsts, b.squashedInsts);
        op(a.squashesBranch, b.squashesBranch);
        op(a.squashesMemOrder, b.squashesMemOrder);
        op(a.squashesMisint, b.squashesMisint);
        op(a.rsOccupancySum, b.rsOccupancySum);
        op(a.robOccupancySum, b.robOccupancySum);
    }

    /** In-place a -= b (counters accumulated before @p b are kept). */
    static void
    subtract(CoreStats &a, const CoreStats &b)
    {
        zip(a, b, [](u64 &x, const u64 &y) { x -= y; });
    }

    /** In-place a += b. */
    static void
    accumulate(CoreStats &a, const CoreStats &b)
    {
        zip(a, b, [](u64 &x, const u64 &y) { x += y; });
    }
};

// zip() must name every counter: adding a CoreStats field without
// extending it would silently corrupt sampled-interval reports.
static_assert(sizeof(CoreStats) == 66 * sizeof(u64),
              "CoreStats changed: update CoreStats::zip()");

} // namespace rix

#endif // RIX_CPU_CORE_STATS_HH
