#include "cpu/core.hh"

#include <cstdio>

#include "base/log.hh"
#include "trace/metrics.hh"
#include "trace/trace.hh"

namespace rix
{

Core::Core(const Program &program, const CoreParams &params)
    : prog(&program), deco_(program.decodedShared()), p(params),
      golden_(program), mem(p.mem),
      bpred(p.bpred), regState(p.integ), integ(p.integ, regState),
      writeBuffer(p.writeBufferEntries),
      cht(p.chtEntries, SatCounter(2, 0)),
      pregValue(p.integ.numPhysRegs, 0),
      pool(size_t(p.robSize) + p.fetchQueueSize + 1),
      fetchQueue(p.fetchQueueSize), rob(p.robSize),
      integWaiters(p.integ.numPhysRegs),
      operandWaiters(p.integ.numPhysRegs)
{
    initArchState();
    resetLockstep(nullptr);
}

void
Core::reset(const Program &program, const CoreParams &params)
{
    golden_.reset(program);
    resetMicroarch(program, params);
    resetLockstep(nullptr);
}

void
Core::reset(const Program &program, const CoreParams &params,
            const Checkpoint &from)
{
    golden_.restore(program, from);
    resetMicroarch(program, params);
    resetLockstep(&from);
}

void
Core::resetLockstep(const Checkpoint *from)
{
    if (!p.check.lockstep && !lockstepCheckFromEnv()) {
        lockstep_.reset();
        return;
    }
    if (!lockstep_)
        lockstep_ = std::make_unique<LockstepChecker>();
    if (from)
        lockstep_->reset(*prog, *from);
    else
        lockstep_->reset(*prog);
}

void
Core::resetMicroarch(const Program &program, const CoreParams &params)
{
    prog = &program;
    deco_ = program.decodedShared();
    p = params;

    // Substrates: reconfigure in place, reusing their arrays.
    mem.reset(p.mem);
    bpred.reset(p.bpred);
    regState.reset(p.integ);
    integ.reset(p.integ);
    writeBuffer.reset(p.writeBufferEntries);
    cht.assign(p.chtEntries, SatCounter(2, 0));

    // Register state and windows.
    pregValue.assign(p.integ.numPhysRegs, 0);
    pool.reset(size_t(p.robSize) + p.fetchQueueSize + 1);
    fetchQueue.reset(p.fetchQueueSize);
    rob.reset(p.robSize);
    sq.clear();
    lq.clear();
    rsBusy = 0;

    // Event plumbing and issue scratch.
    completionEvents = decltype(completionEvents)();
    integWaiters.resize(p.integ.numPhysRegs);
    for (auto &w : integWaiters)
        w.clear();
    operandWaiters.resize(p.integ.numPhysRegs);
    for (auto &w : operandWaiters)
        w.clear();
    issuePrio.clear();
    issueRest.clear();
    rsList.clear();
    wokenList.clear();
    rsScratch.clear();

    // Scalar bookkeeping back to the constructed defaults.
    fetchPc = 0;
    fetchStallUntil = 0;
    oldestUnresolvedStore = ~InstSeqNum(0);
    retireStopAt = ~u64(0);
    nextSeq = 1;
    renameStreamPos = 0;
    cycle = 0;
    done = false;
    diverged_ = false;
    stuck_ = false;
    stuckReason_.clear();
    cancel_ = nullptr;
    cancelled_ = CancelReason::None;
    lastProgressCycle = 0;
    stats_ = CoreStats{};
    trace_ = nullptr;
    traceStart_ = 0;
    traceEnd_ = 0;
    metrics_ = nullptr;
    metricsNext_ = ~Cycle(0);
    cov_ = nullptr;

    initArchState();
}

void
Core::initArchState()
{
    // Pin the zero register's physical register.
    zeroPreg = regState.allocate();
    regState.pin(zeroPreg);
    pregValue[zeroPreg] = 0;
    map[regZero] = {zeroPreg, regState.gen(zeroPreg)};

    // Map every other architectural register to a fresh, ready
    // physical register holding its initial value.
    for (unsigned r = 0; r < numLogRegs; ++r) {
        if (r == regZero)
            continue;
        PhysReg preg = regState.allocate();
        regState.markReady(preg);
        pregValue[preg] = golden_.reg(LogReg(r));
        map[r] = {preg, regState.gen(preg)};
    }

    // Fetch starts wherever the golden (architectural) state stands:
    // the program entry for a fresh run, the checkpoint PC for a
    // sampled resume. A checkpoint taken at/after HALT leaves nothing
    // to simulate.
    fetchPc = golden_.pc();
    done = golden_.halted();
}

Core::Mapping
Core::lookupMap(LogReg r) const
{
    return map[r];
}

const DynInst *
Core::findInst(InstSeqNum seq) const
{
    // The ROB holds strictly increasing sequence numbers (with gaps
    // from squashes), so a handle-ring binary search replaces the old
    // per-inst hash-map maintenance.
    size_t lo = 0, hi = rob.size();
    while (lo < hi) {
        const size_t mid = lo + (hi - lo) / 2;
        const DynInst &di = pool.get(rob[mid]);
        if (di.seq == seq)
            return &di;
        if (di.seq < seq)
            lo = mid + 1;
        else
            hi = mid;
    }
    return nullptr;
}

u64
Core::memReadOverlay(Addr addr, unsigned size, InstSeqNum before) const
{
    u64 value = golden_.memory().read(addr, size);
    // Overlay bytes from older resolved stores, oldest to youngest, so
    // the youngest writer of each byte wins.
    for (const SqEntry &e : sq) {
        if (e.seq >= before)
            break;
        if (!e.resolved)
            continue;
        const Addr lo = e.addr > addr ? e.addr : addr;
        const Addr hi_a = addr + size;
        const Addr hi_b = e.addr + e.size;
        const Addr hi = hi_a < hi_b ? hi_a : hi_b;
        for (Addr b = lo; b < hi; ++b) {
            const u64 byte = (e.data >> (8 * (b - e.addr))) & 0xff;
            const unsigned shift = unsigned(8 * (b - addr));
            value = (value & ~(u64(0xff) << shift)) | (byte << shift);
        }
    }
    return value;
}

void
Core::tick()
{
    retireStage();
    if (done)
        return;
    writebackStage();
    issueStage();
    renameStage();
    fetchStage();

    // Write-buffer drain: one committed store per cycle into the cache
    // (timing only).
    writeBuffer.tick(cycle, [this](Addr a) { mem.write(a, cycle); });

    stats_.rsOccupancySum += rsBusy;
    stats_.robOccupancySum += rob.size();
    ++cycle;
    ++stats_.cycles;

    if (cycle - lastProgressCycle > p.watchdogCycles) {
        // Contained failure, not process death: record why and stop.
        // The job layer reports this core as "stuck"; other jobs in
        // the same sweep (or daemon) are unaffected.
        char buf[160];
        snprintf(buf, sizeof(buf),
                 "watchdog: no retirement progress for %llu cycles "
                 "(pc=%llu rob=%zu)",
                 (unsigned long long)p.watchdogCycles,
                 (unsigned long long)(rob.empty()
                                          ? fetchPc
                                          : pool.get(rob.front()).pc),
                 rob.size());
        stuckReason_ = buf;
        stuck_ = true;
        done = true;
    }
}

Core::RunResult
Core::run(u64 max_retired, Cycle max_cycles)
{
    while (!done && stats_.retired < max_retired &&
           stats_.cycles < max_cycles) {
        // Cooperative cancellation: one pointer test per cycle when no
        // token is attached; the (clock-reading) poll itself only every
        // 1024 cycles. Cancellation stops *between* cycles, leaving the
        // core mid-run with consistent state.
        if (cancel_ && (stats_.cycles & 1023) == 0) {
            const CancelReason why = cancel_->poll();
            if (why != CancelReason::None) {
                cancelled_ = why;
                break;
            }
        }
        // Interval metrics: one pointer test per cycle when detached
        // (the cancel-token discipline). Sampling only reads counters
        // the simulation maintains anyway.
        if (metrics_ && stats_.cycles >= metricsNext_)
            sampleMetrics();
        tick();
    }
    // Close the final (possibly partial) interval so the series always
    // sums to the run's aggregate counters.
    if (metrics_)
        sampleMetrics();
    return {stats_.retired, stats_.cycles, done};
}

void
Core::setTraceSink(TraceSink *sink, u64 start, u64 count)
{
    trace_ = sink;
    if (!sink) {
        traceStart_ = traceEnd_ = 0;
        return;
    }
    traceStart_ = start;
    traceEnd_ = count > ~u64(0) - start ? ~u64(0) : start + count;
}

void
Core::setMetrics(MetricsRecorder *recorder)
{
    metrics_ = recorder;
    if (!recorder) {
        metricsNext_ = ~Cycle(0);
        return;
    }
    MetricsMemCounters mc;
    mc.l1d = mem.l1d().misses();
    mc.l1i = mem.l1i().misses();
    mc.l2 = mem.l2().misses();
    mc.dtlb = mem.dtlb().misses();
    mc.itlb = mem.itlb().misses();
    recorder->begin(stats_, mc);
    metricsNext_ = stats_.cycles + recorder->every();
}

void
Core::sampleMetrics()
{
    MetricsMemCounters mc;
    mc.l1d = mem.l1d().misses();
    mc.l1i = mem.l1i().misses();
    mc.l2 = mem.l2().misses();
    mc.dtlb = mem.dtlb().misses();
    mc.itlb = mem.itlb().misses();
    metrics_->sample(stats_, mc);
    metricsNext_ = stats_.cycles + metrics_->every();
}

void
Core::traceRetired(const DynInst &di)
{
    // recordRetireStats already counted this instruction; its
    // retire-stream index is retired-1.
    const u64 idx = stats_.retired - 1;
    if (idx < traceStart_ || idx >= traceEnd_)
        return;
    trace_->emit(
        makeTraceEvent(di, cycle, /*retired=*/true, SquashCause::None, idx));
}

void
Core::traceSquashed(const DynInst &di, SquashCause cause)
{
    trace_->emit(makeTraceEvent(di, cycle, /*retired=*/false, cause, 0));
}

void
CoreStats::exportTo(StatSet &out) const
{
    out.set("cycles", double(cycles));
    out.set("fetched", double(fetched));
    out.set("renamed", double(renamed));
    out.set("issued", double(issued));
    out.set("issued_loads", double(issuedLoads));
    out.set("retired", double(retired));
    out.set("retired_loads", double(retiredLoads));
    out.set("retired_stores", double(retiredStores));
    out.set("retired_branches", double(retiredBranches));
    out.set("ipc", ipc());
    out.set("integrated_direct", double(integratedDirect));
    out.set("integrated_reverse", double(integratedReverse));
    out.set("integration_rate", integrationRate());
    out.set("misintegrations", double(misintegrations));
    out.set("misint_loads", double(misintLoads));
    out.set("misint_registers", double(misintRegisters));
    out.set("misint_branches", double(misintBranches));
    out.set("misint_per_million", misintPerMillion());
    out.set("branch_mispredicts", double(branchMispredicts));
    out.set("mispred_resolve_lat", avgMispredResolveLat());
    out.set("mem_order_violations", double(memOrderViolations));
    out.set("squashed_insts", double(squashedInsts));
    out.set("rs_occupancy", avgRsOccupancy());
    out.set("rob_occupancy",
            cycles ? double(robOccupancySum) / double(cycles) : 0.0);
}

} // namespace rix
