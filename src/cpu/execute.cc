/**
 * @file
 * Scheduling, execution and writeback.
 *
 * Issue selects up to issueWidth ready reservation-station instructions
 * per cycle under the port mix (2 simple-int, 2 FP/complex, 1 load, 1
 * store), with loads/branches/FP prioritized and age as tie-break
 * (section 3.1). Loads issue speculatively past unresolved older store
 * addresses unless the collision history table predicts a conflict;
 * store-address resolution checks younger executed loads and triggers a
 * full squash on a memory-order violation.
 */

#include <algorithm>
#include <iterator>

#include "base/log.hh"
#include "cpu/core.hh"

namespace rix
{

namespace
{

bool
rangesOverlap(Addr a, unsigned asize, Addr b, unsigned bsize)
{
    return a < b + bsize && b < a + asize;
}

} // namespace

bool
Core::checkReadyOrPark(DynInst &di)
{
    if (di.hasSrc1 && !regState.ready(di.psrc1)) {
        di.waitingOperand = true;
        operandWaiters[di.psrc1].push_back({di.selfHandle, di.seq});
        return false;
    }
    if (di.hasSrc2 && !regState.ready(di.psrc2)) {
        di.waitingOperand = true;
        operandWaiters[di.psrc2].push_back({di.selfHandle, di.seq});
        return false;
    }
    if (di.retryCycle > cycle)
        return false;
    if (di.isLoad()) {
        const SatCounter &c = cht[di.pc & (cht.size() - 1)];
        if (c.predictTaken() && oldestUnresolvedStore < di.seq)
            return false;
    }
    return true;
}

void
Core::wakeOperandWaiters(PhysReg preg)
{
    std::vector<InstRef> &waiters = operandWaiters[preg];
    if (waiters.empty())
        return;
    for (const InstRef &r : waiters) {
        DynInst &w = pool.get(r.h);
        if (w.seq == r.seq && w.waitingOperand) {
            w.waitingOperand = false;
            wokenList.push_back(r); // merged back before the next scan
        }
    }
    waiters.clear(); // keeps capacity for reuse
}

void
Core::scheduleCompletion(DynInst &di, Cycle when)
{
    completionEvents.push(CompletionEvent{
        when > cycle ? when : cycle + 1, di.seq, di.selfHandle});
}

void
Core::completeNow(DynInst &di, Cycle when)
{
    di.completed = true;
    di.completeCycle = when;
}

void
Core::executeAlu(DynInst &di)
{
    const Instruction &inst = di.inst;
    const u64 a = di.hasSrc1 ? pregValue[di.psrc1] : 0;
    const u64 b = di.hasSrc2 ? pregValue[di.psrc2] : 0;

    switch (inst.cls()) {
      case InstClass::Branch:
        di.actualTaken = branchTaken(inst, a);
        di.actualTarget = InstAddr(u32(inst.imm));
        di.resolved = true;
        break;
      case InstClass::IndirectJump:
      case InstClass::Return:
        di.actualTaken = true;
        di.actualTarget = InstAddr(a);
        di.resolved = true;
        break;
      default:
        if (di.hasDest) {
            u64 v = aluCompute(inst, a, b);
#ifdef RIX_FAULT_INJECT_ADDQ
            // Deliberate, build-time-gated execute-stage bug (cmake
            // -DRIX_FAULT_INJECT=ON): flip one bit of every ADDQ
            // result. Exists solely so the differential-verification
            // subsystem can prove it actually detects and minimizes a
            // real pipeline fault; never enabled in normal builds.
            if (inst.op == Opcode::ADDQ)
                v ^= u64(1) << 17;
#endif
            pregValue[di.pdest] = v;
        }
        break;
    }
    scheduleCompletion(di, cycle + di.dec->latency);
}

bool
Core::executeLoad(DynInst &di)
{
    const Instruction &inst = di.inst;
    const Addr addr = pregValue[di.psrc1] + u64(s64(inst.imm));
    const unsigned size = di.dec->size;

    // Scan older stores, youngest first.
    bool unresolved_older = false;
    bool forwarded = false;
    bool partial_conflict = false;
    InstSeqNum forwarded_from = 0;
    bool overlap_found = false;
    for (auto it = sq.rbegin(); it != sq.rend(); ++it) {
        const SqEntry &e = *it;
        if (e.seq >= di.seq)
            continue;
        if (!e.resolved) {
            unresolved_older = true;
            continue;
        }
        if (!overlap_found && rangesOverlap(addr, size, e.addr, e.size)) {
            overlap_found = true;
            if (e.addr == addr && e.size == size) {
                forwarded = true;
                forwarded_from = e.seq;
            } else {
                partial_conflict = true;
            }
        }
    }

    if (partial_conflict) {
        // Conservative: a partially overlapping resolved store cannot
        // forward; retry until the store drains at retirement.
        di.retryCycle = cycle + 1;
        return false;
    }

    di.effAddr = addr;
    di.addrValid = true;
    di.speculativePastStore = unresolved_older;

    const u64 value = loadValue(inst.op, memReadOverlay(addr, size, di.seq));
    if (di.hasDest)
        pregValue[di.pdest] = value;

    for (auto &e : lq) {
        if (e.seq == di.seq) {
            e.addr = addr;
            e.size = size;
            e.resolved = true;
            e.forwardedFrom = forwarded_from;
            break;
        }
    }

    const Cycle agen_done = cycle + p.agenLatency;
    const Cycle done = forwarded
                           ? agen_done + p.storeForwardLatency
                           : mem.read(addr, agen_done);
    if (getenv("RIX_TRACE_LOADS") && di.seq < 600)
        fprintf(stderr, "load seq=%llu issue=%llu addr=%llx done=%llu\n",
                (unsigned long long)di.seq, (unsigned long long)cycle,
                (unsigned long long)addr, (unsigned long long)done);
    scheduleCompletion(di, done);
    return true;
}

void
Core::checkStoreViolation(DynInst &store_inst)
{
    // Oldest violating load wins; everything from it onward re-executes.
    for (const LqEntry &e : lq) {
        if (e.seq <= store_inst.seq || !e.resolved)
            continue;
        if (!rangesOverlap(store_inst.effAddr, store_inst.dec->size,
                           e.addr, e.size))
            continue;
        if (e.forwardedFrom >= store_inst.seq)
            continue; // load already saw this store (or a younger one)

        DynInst *ld = &pool.get(e.owner);
        if (ld->seq != e.seq)
            rix_panic("LQ entry without ROB entry (seq %llu)",
                      (unsigned long long)e.seq);
        ++stats_.memOrderViolations;
        ++stats_.squashesMemOrder;
        // Train the collision predictor strongly.
        SatCounter &c = cht[ld->pc & (cht.size() - 1)];
        c.increment();
        c.increment();
        squashFrom(*ld, /*include_boundary=*/true, ld->pc,
                   p.squashPenalty, SquashCause::MemOrder);
        return;
    }
}

void
Core::executeStore(DynInst &di)
{
    const Instruction &inst = di.inst;
    const Addr addr = pregValue[di.psrc1] + u64(s64(inst.imm));
    di.effAddr = addr;
    di.addrValid = true;
    di.storeData = pregValue[di.psrc2];

    for (auto &e : sq) {
        if (e.seq == di.seq) {
            e.addr = addr;
            e.size = di.dec->size;
            e.data = di.storeData;
            e.resolved = true;
            break;
        }
    }

    scheduleCompletion(di, cycle + p.agenLatency);
    checkStoreViolation(di);
}

void
Core::issueStage()
{
    unsigned slots_simple = p.simpleIntSlots;
    unsigned slots_complex = p.complexSlots;
    unsigned slots_load = p.loadSlots;
    unsigned slots_store = p.storeSlots;
    unsigned total = p.issueWidth;

    auto try_issue = [&](DynInst &di) -> bool {
        if (total == 0)
            return false;
        unsigned *slot = nullptr;
        switch (di.dec->issuePort()) {
          case IssuePort::Simple: slot = &slots_simple; break;
          case IssuePort::Complex: slot = &slots_complex; break;
          case IssuePort::LoadP: slot = &slots_load; break;
          case IssuePort::StoreP:
            slot = p.sharedLoadStorePort ? &slots_load : &slots_store;
            break;
        }
        if (*slot == 0)
            return true; // port busy; keep scanning other classes

        bool issued = true;
        if (di.isLoad())
            issued = executeLoad(di);
        else if (di.isStore())
            executeStore(di);
        else
            executeAlu(di);

        if (issued) {
            di.issued = true;
            di.issueCycle = cycle;
            if (di.inRs) {
                di.inRs = false;
                --rsBusy;
            }
            --*slot;
            --total;
            ++stats_.issued;
            if (di.isLoad())
                ++stats_.issuedLoads;
        }
        return true;
    };

    // A store-set squash during issue invalidates ROB positions;
    // collect candidates first, re-validate by sequence number. The
    // scratch vectors are members reused every cycle (no allocation
    // once their high-water capacity is reached). Candidates come from
    // the age-ordered RS list, not a full ROB walk; entries that left
    // the RS (issued or squashed, including recycled handles) are
    // compacted away as the scan passes them.
    std::vector<InstRef> &prio = issuePrio, &rest = issueRest;
    prio.clear();
    rest.clear();
    oldestUnresolvedStore = ~InstSeqNum(0);
    for (const SqEntry &e : sq) {
        if (!e.resolved) {
            oldestUnresolvedStore = e.seq; // sq is age-ordered
            break;
        }
    }
    // Fold instructions woken since the last scan back into the
    // age-ordered list (both sides sorted by seq; merge is linear).
    if (!wokenList.empty()) {
        std::sort(wokenList.begin(), wokenList.end(),
                  [](const InstRef &a, const InstRef &b) {
                      return a.seq < b.seq;
                  });
        rsScratch.clear();
        std::merge(rsList.begin(), rsList.end(), wokenList.begin(),
                   wokenList.end(), std::back_inserter(rsScratch),
                   [](const InstRef &a, const InstRef &b) {
                       return a.seq < b.seq;
                   });
        rsList.swap(rsScratch);
        wokenList.clear();
    }

    size_t live = 0;
    for (size_t i = 0, n = rsList.size(); i < n; ++i) {
        const auto [h, seq] = rsList[i];
        DynInst &di = pool.get(h);
        if (di.seq != seq || !di.inRs || di.issued)
            continue; // left the RS; drop the stale entry
        if (di.earliestIssue <= cycle) {
            if (checkReadyOrPark(di))
                (di.dec->priority() ? prio : rest).push_back({h, seq});
            else if (di.waitingOperand)
                continue; // parked: lives on a waiter list until woken
        }
        if (live != i)
            rsList[live] = rsList[i];
        ++live;
    }
    rsList.resize(live);

    for (const auto *bucket : {&prio, &rest}) {
        for (const InstRef &r : *bucket) {
            if (total == 0)
                return;
            DynInst &di = pool.get(r.h);
            if (di.seq != r.seq || di.issued || !di.inRs)
                continue; // squashed meanwhile
            if (!try_issue(di))
                return;
        }
    }
}

void
Core::resolveControl(DynInst &di)
{
    if (di.inst.isCondBranch())
        integ.fillBranchOutcome(di.createdEntry, di.actualTaken);

    if (di.actualNextPc() != di.predictedNextPc()) {
        di.mispredicted = true;
        ++stats_.branchMispredicts;
        ++stats_.squashesBranch;
        squashFrom(di, /*include_boundary=*/false, di.actualNextPc(),
                   p.squashPenalty, SquashCause::Branch);
    }
}

void
Core::writebackStage()
{
    while (!completionEvents.empty() &&
           completionEvents.top().when <= cycle) {
        const CompletionEvent ev = completionEvents.top();
        const Cycle when = ev.when;
        completionEvents.pop();

        DynInst *di = &pool.get(ev.h);
        if (di->seq != ev.seq)
            continue; // squashed in flight (slot recycled)

        completeNow(*di, when > cycle ? when : cycle);

        if (di->hasDest && !di->integrated) {
            regState.markReady(di->pdest);
            wakeOperandWaiters(di->pdest);
            std::vector<InstRef> &waiters = integWaiters[di->pdest];
            if (!waiters.empty()) {
                for (const InstRef &r : waiters) {
                    DynInst &waiter = pool.get(r.h);
                    if (waiter.seq == r.seq && waiter.integrated &&
                        !waiter.completed)
                        completeNow(waiter, cycle);
                }
                waiters.clear(); // keeps capacity for reuse
            }
        }

        if (di->isCtrl && di->resolved)
            resolveControl(*di);
    }
}

} // namespace rix
