#include "cpu/lockstep.hh"

#include <cstdlib>
#include <cstring>

#include "base/log.hh"

namespace rix
{

bool
lockstepCheckFromEnv()
{
    const char *v = getenv("RIX_CHECK");
    if (!v)
        return false;
    if (strcmp(v, "0") == 0)
        return false;
    if (strcmp(v, "1") == 0)
        return true;
    rix_fatal("RIX_CHECK must be 0 or 1 (got '%s')", v);
}

std::string
formatArchState(const Emulator &e)
{
    std::string out = strfmt("  pc=%llu icount=%llu halted=%d\n",
                             (unsigned long long)e.pc(),
                             (unsigned long long)e.instsExecuted(),
                             e.halted() ? 1 : 0);
    for (unsigned r = 0; r < numLogRegs; r += 4) {
        out += " ";
        for (unsigned i = r; i < r + 4; ++i)
            out += strfmt(" r%-2u=%016llx", i,
                          (unsigned long long)e.reg(LogReg(i)));
        out += "\n";
    }
    return out;
}

std::string
DivergenceReport::format() const
{
    if (!diverged)
        return "no divergence";
    std::string out;
    out += strfmt("lockstep divergence (%s) at instruction %llu, pc %llu\n",
                  kind.c_str(), (unsigned long long)icount,
                  (unsigned long long)pc);
    out += "  inst:   " + disasm + "\n";
    out += "  reason: " + reason + "\n";
    out += "golden (committed) architectural state:\n" + goldenState;
    out += "shadow emulator architectural state:\n" + shadowState;
    return out;
}

const Program &
LockstepChecker::emptyProgram()
{
    static const Program empty;
    return empty;
}

void
LockstepChecker::reset(const Program &prog)
{
    shadow_.reset(prog);
    report_ = DivergenceReport{};
}

void
LockstepChecker::reset(const Program &prog, const Checkpoint &from)
{
    shadow_.restore(prog, from);
    report_ = DivergenceReport{};
}

void
LockstepChecker::finishReport(const Emulator &golden)
{
    report_.diverged = true;
    report_.goldenState = formatArchState(golden);
    report_.shadowState = formatArchState(shadow_);
}

void
LockstepChecker::recordStreamMismatch(const DynInst &di,
                                      const Emulator &golden)
{
    report_.kind = "pc-stream";
    report_.icount = golden.instsExecuted();
    report_.pc = di.pc;
    report_.disasm = disassemble(di.inst);
    report_.reason =
        strfmt("pipeline retires pc %llu but the architectural stream "
               "is at pc %llu",
               (unsigned long long)di.pc,
               (unsigned long long)golden.pc());
    finishReport(golden);
}

void
LockstepChecker::recordValueMismatch(const DynInst &di,
                                     const StepResult &expected,
                                     const Emulator &golden, u64 pipe_dest)
{
    report_.kind = "value";
    report_.icount = golden.instsExecuted();
    report_.pc = di.pc;
    report_.disasm = disassemble(di.inst);

    // Re-run the DIVA comparisons to name exactly what mismatched.
    std::string why;
    if (di.hasDest && pipe_dest != expected.destValue)
        why = strfmt("destination value %016llx, architecturally %016llx",
                     (unsigned long long)pipe_dest,
                     (unsigned long long)expected.destValue);
    else if (di.isStore() && di.effAddr != expected.memAddr)
        why = strfmt("store address %llx, architecturally %llx",
                     (unsigned long long)di.effAddr,
                     (unsigned long long)expected.memAddr);
    else if (di.isStore() && di.storeData != expected.destValue)
        why = strfmt("store data %016llx, architecturally %016llx",
                     (unsigned long long)di.storeData,
                     (unsigned long long)expected.destValue);
    else if (di.isLoad() && di.effAddr != expected.memAddr)
        why = strfmt("load address %llx, architecturally %llx",
                     (unsigned long long)di.effAddr,
                     (unsigned long long)expected.memAddr);
    else if (di.isCtrl && di.actualNextPc() != expected.nextPc)
        why = strfmt("next pc %llu, architecturally %llu",
                     (unsigned long long)di.actualNextPc(),
                     (unsigned long long)expected.nextPc);
    else
        why = "DIVA mismatch (unclassified)";
    report_.reason = "pipeline produced " + why;
    finishReport(golden);
}

bool
LockstepChecker::checkShadowStep(const StepResult &expected,
                                 const Emulator &golden)
{
    // The shadow runs through its ordinary step() path — a fully
    // independent second execution of the instruction the golden model
    // just committed via preview()/commit().
    const StepResult got = shadow_.step();

    std::string why;
    if (got.pc != expected.pc)
        why = strfmt("stepped pc %llu, golden committed pc %llu",
                     (unsigned long long)got.pc,
                     (unsigned long long)expected.pc);
    else if (got.nextPc != expected.nextPc)
        why = strfmt("next pc %llu, golden %llu",
                     (unsigned long long)got.nextPc,
                     (unsigned long long)expected.nextPc);
    else if (got.wroteReg != expected.wroteReg ||
             (got.wroteReg && (got.destReg != expected.destReg ||
                               got.destValue != expected.destValue)))
        why = strfmt("dest r%u=%016llx, golden r%u=%016llx",
                     unsigned(got.destReg),
                     (unsigned long long)got.destValue,
                     unsigned(expected.destReg),
                     (unsigned long long)expected.destValue);
    else if (got.isMemAccess != expected.isMemAccess ||
             (got.isMemAccess &&
              (got.memAddr != expected.memAddr ||
               (got.inst.isStore() &&
                got.destValue != expected.destValue))))
        why = strfmt("memory access addr %llx data %016llx, golden addr "
                     "%llx data %016llx",
                     (unsigned long long)got.memAddr,
                     (unsigned long long)got.destValue,
                     (unsigned long long)expected.memAddr,
                     (unsigned long long)expected.destValue);
    else if (got.halted != expected.halted)
        why = strfmt("halted=%d, golden halted=%d", got.halted ? 1 : 0,
                     expected.halted ? 1 : 0);
    else
        return true;

    report_.kind = "shadow";
    report_.icount = golden.instsExecuted() - 1;
    report_.pc = expected.pc;
    report_.disasm = disassemble(expected.inst);
    report_.reason = "shadow emulator " + why;
    finishReport(golden);
    return false;
}

} // namespace rix
