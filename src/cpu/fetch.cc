/**
 * @file
 * Fetch stage: up to fetchWidth instructions per cycle from the
 * instruction cache, within one 32-byte line (four 8-byte slots),
 * stopping at a predicted-taken control instruction. Fetched
 * instructions become rename-eligible frontLatency() cycles later
 * (the 3 fetch + 1 decode stages).
 */

#include "base/log.hh"
#include "cpu/core.hh"

namespace rix
{

namespace
{

constexpr unsigned instBytes = instructionBytes;

} // namespace

void
Core::fetchStage()
{
    if (cycle < fetchStallUntil)
        return;

    const unsigned line_insts = p.mem.l1i.lineBytes / instBytes;

    // Instruction cache access for the current line.
    const Addr byte_addr = fetchPc * instBytes;
    const Cycle ready = mem.ifetch(byte_addr, cycle);
    if (ready > cycle + p.mem.l1i.hitLatency) {
        // Miss: fetch resumes when the line arrives.
        fetchStallUntil = ready;
        return;
    }

    unsigned fetched = 0;
    while (fetched < p.fetchWidth && !fetchQueue.full()) {
        const InstHandle h = pool.alloc();
        DynInst &di = pool.get(h);
        di.seq = nextSeq++;
        di.pc = fetchPc;
        di.inst = prog->fetch(fetchPc);
        di.dec = &deco_->fetch(fetchPc); // NOP sentinel when wrong-path
        di.fetchCycle = cycle;
        di.renameReadyCycle = cycle + p.frontLatency();
        di.isCtrl = di.dec->isCtrl();

        const InstAddr next = bpred.predict(di.inst, fetchPc, &di.pred);

        ++fetched;
        ++stats_.fetched;
        const bool taken_ctrl = di.pred.isControl && di.pred.predTaken;
        fetchQueue.push_back(h);
        fetchPc = next;

        if (taken_ctrl)
            break; // redirect: next group starts next cycle
        if (fetchPc % line_insts == 0)
            break; // crossed into the next cache line
    }
}

} // namespace rix
