/**
 * @file
 * Retire-time lockstep checking: the differential-verification hook.
 *
 * The DIVA golden emulator already re-executes every retiring
 * instruction architecturally; historically any mismatch on a
 * non-integrated instruction (a genuine simulator bug, as opposed to a
 * mis-integration) was a panic that aborted the process. The lockstep
 * checker turns that abort into *data*: when enabled, the core carries
 * a second, fully independent shadow Emulator that is stepped once per
 * retired instruction through its ordinary step() path (exercising
 * fetch/decode/execute/commit end to end, not the preview/commit split
 * the DIVA checker uses), and every would-be panic — retire-stream PC
 * divergence, a wrong destination value, wrong store traffic, a wrong
 * branch target, or the shadow disagreeing with the committed golden
 * stream — is captured as a DivergenceReport carrying the architectural
 * instruction index, the disassembly, the mismatching values and both
 * architectural register files, and the core stops instead of
 * aborting. That report is what `rix fuzz` minimizes into a
 * reproducer.
 *
 * Enablement: per-configuration via CoreParams::check.lockstep (spec
 * key "check.lockstep") or process-wide via RIX_CHECK=1. When off the
 * core carries no checker object at all — the only cost is a null
 * pointer test per retired instruction.
 *
 * The checker composes with the sampled-simulation paths: resuming a
 * core from an architectural checkpoint seeds the shadow emulator from
 * the same checkpoint, and reused (reset) core contexts re-seed the
 * shadow exactly like a freshly constructed one.
 */

#ifndef RIX_CPU_LOCKSTEP_HH
#define RIX_CPU_LOCKSTEP_HH

#include <string>

#include "cpu/dyn_inst.hh"
#include "emu/emulator.hh"

namespace rix
{

/** First divergence found by the lockstep checker. */
struct DivergenceReport
{
    bool diverged = false;

    /** What diverged: "pc-stream", "value", or "shadow". */
    std::string kind;

    /**
     * 0-based index of the diverging instruction in the architectural
     * stream (counted from the program start — a core resumed from a
     * checkpoint reports absolute positions, not window offsets).
     */
    u64 icount = 0;

    InstAddr pc = 0;
    std::string disasm;

    /** Human-readable description of the mismatching values. */
    std::string reason;

    /** Committed architectural state (the DIVA golden emulator). */
    std::string goldenState;

    /** The independent shadow emulator's architectural state. */
    std::string shadowState;

    /** Multi-line human-readable rendering of the whole report. */
    std::string format() const;
};

/**
 * The RIX_CHECK environment knob: unset or "0" disables, "1" enables,
 * anything else is fatal (same strictness as the other RIX_* knobs).
 */
bool lockstepCheckFromEnv();

/** One-line-per-4-registers dump of @p e's architectural state. */
std::string formatArchState(const Emulator &e);

class LockstepChecker
{
  public:
    /** (Re)seed the shadow from @p prog's initial state. */
    void reset(const Program &prog);

    /** (Re)seed the shadow from @p from (taken on @p prog) — the
     *  checkpoint-resume path. */
    void reset(const Program &prog, const Checkpoint &from);

    /**
     * Record the retire-stream check failure golden.pc() != di.pc
     * (the pipeline is about to retire an instruction the
     * architectural stream never reaches).
     */
    void recordStreamMismatch(const DynInst &di, const Emulator &golden);

    /**
     * Record a DIVA value-check failure on a non-integrated
     * instruction: the pipeline-produced result (@p pipe_dest for
     * register writers; di.effAddr / di.storeData / actualNextPc()
     * for memory and control) disagrees with the golden preview
     * @p expected.
     */
    void recordValueMismatch(const DynInst &di, const StepResult &expected,
                             const Emulator &golden, u64 pipe_dest);

    /**
     * Step the shadow emulator once (the instruction the golden model
     * just committed as @p expected) and cross-check pc / next pc /
     * destination register / store traffic.
     * @return true when the shadow agrees; false after recording a
     *         divergence.
     */
    bool checkShadowStep(const StepResult &expected,
                         const Emulator &golden);

    bool diverged() const { return report_.diverged; }
    const DivergenceReport &report() const { return report_; }
    const Emulator &shadow() const { return shadow_; }

  private:
    void finishReport(const Emulator &golden);

    Emulator shadow_{emptyProgram()};
    DivergenceReport report_;

    /** Placeholder program for the default-constructed shadow; every
     *  use path reset()s onto a real program first. */
    static const Program &emptyProgram();
};

} // namespace rix

#endif // RIX_CPU_LOCKSTEP_HH
